#include "src/cpu/cpu.h"

#include <chrono>
#include <unordered_map>

#include "src/isa/encoding.h"
#include "src/kernel/baseline_defenses.h"
#include "src/rerand/quiesce.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace krx {

namespace {
// Cap on predecoded-block length. Straight-line runs longer than this are
// split into consecutive blocks; correctness is unaffected.
constexpr size_t kMaxBlockInsts = 64;
}  // namespace

void InstMix::Count(Opcode op) {
  switch (op) {
    case Opcode::kLoad:
    case Opcode::kAddRM:
    case Opcode::kCmpRM:
    case Opcode::kCmpMI:
      ++loads;
      break;
    case Opcode::kXorMR:
      ++loads;  // read-modify-write: counts as a load and a store
      ++stores;
      break;
    case Opcode::kStore:
    case Opcode::kStoreImm:
      ++stores;
      break;
    case Opcode::kLea:
      ++lea;
      break;
    case Opcode::kJcc:
      ++branches;
      break;
    case Opcode::kJmpRel:
    case Opcode::kJmpR:
    case Opcode::kJmpM:
      ++jumps;
      break;
    case Opcode::kCallRel:
    case Opcode::kCallR:
    case Opcode::kCallM:
      ++calls;
      break;
    case Opcode::kRet:
      ++rets;
      break;
    case Opcode::kPushR:
    case Opcode::kPopR:
      ++pushpop;
      break;
    case Opcode::kPushfq:
      ++pushfq;
      break;
    case Opcode::kPopfq:
      ++popfq;
      break;
    case Opcode::kBndcu:
      ++bndcu;
      break;
    case Opcode::kMovsq:
    case Opcode::kLodsq:
    case Opcode::kStosq:
    case Opcode::kCmpsq:
    case Opcode::kScasq:
      ++string_ops;
      break;
    case Opcode::kMovRR:
    case Opcode::kMovRI:
    case Opcode::kAddRR:
    case Opcode::kAddRI:
    case Opcode::kSubRR:
    case Opcode::kSubRI:
    case Opcode::kAndRR:
    case Opcode::kAndRI:
    case Opcode::kOrRR:
    case Opcode::kOrRI:
    case Opcode::kXorRR:
    case Opcode::kXorRI:
    case Opcode::kShlRI:
    case Opcode::kShrRI:
    case Opcode::kImulRR:
    case Opcode::kCmpRR:
    case Opcode::kCmpRI:
    case Opcode::kTestRR:
    case Opcode::kMaskRI:
      ++alu;
      break;
    default:
      ++other;
      break;
  }
}

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kReturned: return "returned";
    case StopReason::kHalted: return "halted";
    case StopReason::kException: return "exception";
    case StopReason::kStepLimit: return "step-limit";
    case StopReason::kHostError: return "host-error";
    case StopReason::kDeadlineExceeded: return "deadline-exceeded";
  }
  return "??";
}

const char* ExceptionKindName(ExceptionKind kind) {
  switch (kind) {
    case ExceptionKind::kNone: return "none";
    case ExceptionKind::kPageFault: return "#PF";
    case ExceptionKind::kBoundRange: return "#BR";
    case ExceptionKind::kBreakpoint: return "#BP(int3)";
    case ExceptionKind::kInvalidOpcode: return "#UD";
    case ExceptionKind::kGeneralProtection: return "#GP";
  }
  return "??";
}

Cpu::Cpu(KernelImage* image, CostModel cost, CpuOptions options)
    : image_(image),
      mmu_(&image->phys(), &image->page_table()),
      cost_(cost),
      options_(options) {
  // Inherit the image's hardening switches; from here on this CPU's private
  // MMU view is authoritative for this CPU (per-run fault record and TLB
  // counters must not be shared between concurrently executing CPUs).
  mmu_.set_smep(image_->mmu().smep());
  mmu_.set_smap(image_->mmu().smap());

  auto stack = image_->AllocDataPages(options_.stack_pages);
  if (!stack.ok()) {
    // Degrade instead of aborting the host: the failure surfaces as a
    // kHostError result on the first CallFunction.
    init_error_ = "kernel stack allocation failed: " + stack.status().ToString();
  } else {
    stack_base_ = *stack;
    stack_top_ = stack_base_ + options_.stack_pages * kPageSize;
  }

  RefreshKrxHandlerRange();
}

void Cpu::RefreshKrxHandlerRange() {
  int32_t h = image_->symbols().Find(kKrxHandlerName);
  if (h >= 0 && image_->symbols().at(h).defined) {
    krx_handler_lo_ = image_->symbols().at(h).address;
    krx_handler_hi_ = krx_handler_lo_ + std::max<uint64_t>(image_->symbols().at(h).size, 1);
  }
}

uint64_t Cpu::EffectiveAddress(const MemOperand& mem, uint64_t rip_next) const {
  if (mem.rip_relative) {
    return rip_next + static_cast<uint64_t>(mem.disp);
  }
  uint64_t ea = static_cast<uint64_t>(mem.disp);
  if (mem.has_base()) {
    ea += regs_[RegIndex(mem.base)];
  }
  if (mem.has_index()) {
    ea += regs_[RegIndex(mem.index)] * mem.scale;
  }
  return ea;
}

bool Cpu::DataRead64(uint64_t vaddr, uint64_t* value) {
  auto v = mmu_.Read64(vaddr);
  if (v.ok() && image_->destructive_code_reads()) {
    // Heisenbyte baseline (§8): a successful data read of executable bytes
    // destroys them in place, so disclosed gadgets crash when reused.
    for (int i = 0; i < 8; ++i) {
      const Pte* pte = image_->page_table().Lookup(vaddr + static_cast<uint64_t>(i));
      if (pte != nullptr && pte->flags.present && !pte->flags.nx) {
        image_->phys().Write8((pte->frame << kPageShift) |
                                  PageOffset(vaddr + static_cast<uint64_t>(i)),
                              0xD7);
      }
    }
  }
  if (!v.ok()) {
    // XnR baseline: a data access faulting on a protected code page is a
    // detected disclosure attempt — the #PF handler terminates.
    if (image_->xnr() != nullptr && image_->xnr()->IsDisclosureAttempt(vaddr)) {
      pending_.xnr_violation = true;
    }
    RaiseException(ExceptionKind::kPageFault, vaddr);
    return false;
  }
  *value = *v;
  return true;
}

bool Cpu::DataWrite64(uint64_t vaddr, uint64_t value) {
  Status s = mmu_.Write64(vaddr, value);
  if (!s.ok()) {
    RaiseException(ExceptionKind::kPageFault, vaddr);
    return false;
  }
  // Self-modifying code: a guest store that lands on a frame backing
  // executable pages (e.g. through a writable physmap synonym under the
  // vanilla layout) invalidates any predecode of those bytes — in this CPU
  // and in every other CPU sharing the image.
  if (image_->VaddrAliasesCode(vaddr)) {
    image_->BumpTextGeneration();
  }
  return true;
}

void Cpu::SetFlagsSub(uint64_t a, uint64_t b) {
  uint64_t res = a - b;
  rflags_.zf = res == 0;
  rflags_.sf = (res >> 63) != 0;
  rflags_.cf = a < b;
  rflags_.of = (((a ^ b) & (a ^ res)) >> 63) != 0;
}

void Cpu::SetFlagsAdd(uint64_t a, uint64_t b) {
  uint64_t res = a + b;
  rflags_.zf = res == 0;
  rflags_.sf = (res >> 63) != 0;
  rflags_.cf = res < a;
  rflags_.of = ((~(a ^ b) & (a ^ res)) >> 63) != 0;
}

void Cpu::SetFlagsLogic(uint64_t result) {
  rflags_.zf = result == 0;
  rflags_.sf = (result >> 63) != 0;
  rflags_.cf = false;
  rflags_.of = false;
}

bool Cpu::EvalCond(Cond c) const {
  switch (c) {
    case Cond::kE: return rflags_.zf;
    case Cond::kNe: return !rflags_.zf;
    case Cond::kA: return !rflags_.cf && !rflags_.zf;
    case Cond::kAe: return !rflags_.cf;
    case Cond::kB: return rflags_.cf;
    case Cond::kBe: return rflags_.cf || rflags_.zf;
    case Cond::kG: return !rflags_.zf && rflags_.sf == rflags_.of;
    case Cond::kGe: return rflags_.sf == rflags_.of;
    case Cond::kL: return rflags_.sf != rflags_.of;
    case Cond::kLe: return rflags_.zf || rflags_.sf != rflags_.of;
    case Cond::kS: return rflags_.sf;
    case Cond::kNs: return !rflags_.sf;
  }
  return false;
}

void Cpu::RaiseException(ExceptionKind kind, uint64_t addr) {
  pending_.reason = StopReason::kException;
  pending_.exception = kind;
  pending_.fault_addr = addr;
  stopped_ = true;
}

bool Cpu::FetchDecode(Instruction* inst, uint8_t* inst_size) {
  // Fetch + decode, servicing XnR instruction-fetch faults: both for the
  // page at %rip and for the next page when an instruction straddles the
  // boundary (a partial fetch that truncates the decode).
  uint8_t buf[16];
  for (int attempt = 0;; ++attempt) {
    if (attempt > 2) {
      RaiseException(ExceptionKind::kPageFault, rip_);
      return false;
    }
    auto fetched = mmu_.FetchCode(rip_, buf, sizeof(buf));
    if (!fetched.ok()) {
      if (image_->xnr() != nullptr && image_->xnr()->HandleFetchFault(rip_)) {
        continue;  // serviced; retry
      }
      RaiseException(ExceptionKind::kPageFault, rip_);
      return false;
    }
    auto dec = DecodeInstruction(buf, *fetched, 0);
    if (!dec.ok()) {
      if (dec.status().code() == StatusCode::kOutOfRange && *fetched < sizeof(buf)) {
        // Truncated by an unmapped boundary: the fetch of the *next* page
        // is what faults.
        uint64_t next_page = rip_ + *fetched;
        if (image_->xnr() != nullptr && image_->xnr()->HandleFetchFault(next_page)) {
          continue;
        }
        RaiseException(ExceptionKind::kPageFault, next_page);
        return false;
      }
      RaiseException(ExceptionKind::kInvalidOpcode, rip_);
      return false;
    }
    *inst = dec->inst;
    *inst_size = dec->size;
    return true;
  }
}

bool Cpu::ExecuteInst(const Instruction& in, uint8_t inst_size) {
  const uint64_t rip_next = rip_ + inst_size;
  uint64_t next = rip_next;

  ++pending_.instructions;
  pending_.mix.Count(in.op);
  if (in.op == Opcode::kLoad && in.mem.rip_relative) {
    pending_.deci_cycles += cost_.load_riprel;
  } else {
    pending_.deci_cycles += cost_.CostOf(in.op);
  }

  auto reg = [&](Reg r) -> uint64_t& { return regs_[RegIndex(r)]; };
  auto goto_target = [&](uint64_t target) {
    if (target == kReturnSentinel) {
      pending_.reason = StopReason::kReturned;
      pending_.rax = reg(Reg::kRax);
      stopped_ = true;
      return;
    }
    next = target;
  };

  switch (in.op) {
    case Opcode::kNop:
    case Opcode::kWrmsr:
    case Opcode::kSyscall:
    case Opcode::kSysret:
      break;
    case Opcode::kHlt:
      pending_.reason = StopReason::kHalted;
      stopped_ = true;
      break;
    case Opcode::kInt3:
      RaiseException(ExceptionKind::kBreakpoint, rip_);
      break;
    case Opcode::kUd2:
      RaiseException(ExceptionKind::kInvalidOpcode, rip_);
      break;

    case Opcode::kMovRR:
      reg(in.r1) = reg(in.r2);
      break;
    case Opcode::kMovRI:
      reg(in.r1) = static_cast<uint64_t>(in.imm);
      break;
    case Opcode::kLoad: {
      uint64_t v;
      if (!DataRead64(EffectiveAddress(in.mem, rip_next), &v)) {
        break;
      }
      reg(in.r1) = v;
      break;
    }
    case Opcode::kStore:
      DataWrite64(EffectiveAddress(in.mem, rip_next), reg(in.r1));
      break;
    case Opcode::kStoreImm:
      DataWrite64(EffectiveAddress(in.mem, rip_next), static_cast<uint64_t>(in.imm));
      break;
    case Opcode::kLea:
      reg(in.r1) = EffectiveAddress(in.mem, rip_next);
      break;
    case Opcode::kPushR:
      reg(Reg::kRsp) -= 8;
      DataWrite64(reg(Reg::kRsp), reg(in.r1));
      break;
    case Opcode::kPopR: {
      uint64_t v;
      if (!DataRead64(reg(Reg::kRsp), &v)) {
        break;
      }
      reg(in.r1) = v;
      reg(Reg::kRsp) += 8;
      break;
    }
    case Opcode::kPushfq:
      reg(Reg::kRsp) -= 8;
      DataWrite64(reg(Reg::kRsp), rflags_.ToBits());
      break;
    case Opcode::kPopfq: {
      uint64_t v;
      if (!DataRead64(reg(Reg::kRsp), &v)) {
        break;
      }
      rflags_.FromBits(v);
      reg(Reg::kRsp) += 8;
      break;
    }

    case Opcode::kAddRR:
      SetFlagsAdd(reg(in.r1), reg(in.r2));
      reg(in.r1) += reg(in.r2);
      break;
    case Opcode::kAddRI:
      SetFlagsAdd(reg(in.r1), static_cast<uint64_t>(in.imm));
      reg(in.r1) += static_cast<uint64_t>(in.imm);
      break;
    case Opcode::kSubRR:
      SetFlagsSub(reg(in.r1), reg(in.r2));
      reg(in.r1) -= reg(in.r2);
      break;
    case Opcode::kSubRI:
      SetFlagsSub(reg(in.r1), static_cast<uint64_t>(in.imm));
      reg(in.r1) -= static_cast<uint64_t>(in.imm);
      break;
    case Opcode::kAndRR:
      reg(in.r1) &= reg(in.r2);
      SetFlagsLogic(reg(in.r1));
      break;
    case Opcode::kAndRI:
      reg(in.r1) &= static_cast<uint64_t>(in.imm);
      SetFlagsLogic(reg(in.r1));
      break;
    case Opcode::kOrRR:
      reg(in.r1) |= reg(in.r2);
      SetFlagsLogic(reg(in.r1));
      break;
    case Opcode::kOrRI:
      reg(in.r1) |= static_cast<uint64_t>(in.imm);
      SetFlagsLogic(reg(in.r1));
      break;
    case Opcode::kXorRR:
      reg(in.r1) ^= reg(in.r2);
      SetFlagsLogic(reg(in.r1));
      break;
    case Opcode::kXorRI:
      reg(in.r1) ^= static_cast<uint64_t>(in.imm);
      SetFlagsLogic(reg(in.r1));
      break;
    case Opcode::kShlRI: {
      uint64_t k = static_cast<uint64_t>(in.imm) & 63;
      uint64_t v = reg(in.r1);
      rflags_.cf = k > 0 && ((v >> (64 - k)) & 1) != 0;
      v <<= k;
      reg(in.r1) = v;
      rflags_.zf = v == 0;
      rflags_.sf = (v >> 63) != 0;
      rflags_.of = false;
      break;
    }
    case Opcode::kShrRI: {
      uint64_t k = static_cast<uint64_t>(in.imm) & 63;
      uint64_t v = reg(in.r1);
      rflags_.cf = k > 0 && ((v >> (k - 1)) & 1) != 0;
      v >>= k;
      reg(in.r1) = v;
      rflags_.zf = v == 0;
      rflags_.sf = false;
      rflags_.of = false;
      break;
    }
    case Opcode::kImulRR: {
      uint64_t v = reg(in.r1) * reg(in.r2);
      reg(in.r1) = v;
      SetFlagsLogic(v);
      break;
    }
    case Opcode::kCmpRR:
      SetFlagsSub(reg(in.r1), reg(in.r2));
      break;
    case Opcode::kCmpRI:
      SetFlagsSub(reg(in.r1), static_cast<uint64_t>(in.imm));
      break;
    case Opcode::kTestRR:
      SetFlagsLogic(reg(in.r1) & reg(in.r2));
      break;

    case Opcode::kAddRM: {
      uint64_t v;
      if (!DataRead64(EffectiveAddress(in.mem, rip_next), &v)) {
        break;
      }
      SetFlagsAdd(reg(in.r1), v);
      reg(in.r1) += v;
      break;
    }
    case Opcode::kCmpRM: {
      uint64_t v;
      if (!DataRead64(EffectiveAddress(in.mem, rip_next), &v)) {
        break;
      }
      SetFlagsSub(reg(in.r1), v);
      break;
    }
    case Opcode::kCmpMI: {
      uint64_t v;
      if (!DataRead64(EffectiveAddress(in.mem, rip_next), &v)) {
        break;
      }
      SetFlagsSub(v, static_cast<uint64_t>(in.imm));
      break;
    }
    case Opcode::kXorMR: {
      uint64_t ea = EffectiveAddress(in.mem, rip_next);
      uint64_t v;
      if (!DataRead64(ea, &v)) {
        break;
      }
      v ^= reg(in.r1);
      SetFlagsLogic(v);
      DataWrite64(ea, v);
      break;
    }

    case Opcode::kJmpRel:
      goto_target(rip_next + static_cast<uint64_t>(in.imm));
      break;
    case Opcode::kJcc: {
      const bool taken = EvalCond(in.cond);
      if (options_.spec.enabled) {
        ++spec_stats_.predictions;
        const bool predicted = predictor_.PredictTaken(rip_);
        if (predicted != taken) {
          // Misprediction: the frontend already steered down the wrong path.
          // Simulate it against shadow state up to the window depth, then
          // discard everything but the cache footprint.
          ++spec_stats_.mispredictions;
          SpeculateWrongPath(predicted ? rip_next + static_cast<uint64_t>(in.imm)
                                       : rip_next);
        }
        predictor_.Update(rip_, taken);
      }
      if (taken) {
        goto_target(rip_next + static_cast<uint64_t>(in.imm));
      }
      break;
    }
    case Opcode::kJmpR:
      goto_target(reg(in.r1));
      break;
    case Opcode::kJmpM: {
      uint64_t v;
      if (!DataRead64(EffectiveAddress(in.mem, rip_next), &v)) {
        break;
      }
      goto_target(v);
      break;
    }
    case Opcode::kCallRel:
      reg(Reg::kRsp) -= 8;
      if (!DataWrite64(reg(Reg::kRsp), rip_next)) {
        break;
      }
      goto_target(rip_next + static_cast<uint64_t>(in.imm));
      break;
    case Opcode::kCallR:
      reg(Reg::kRsp) -= 8;
      if (!DataWrite64(reg(Reg::kRsp), rip_next)) {
        break;
      }
      goto_target(reg(in.r1));
      break;
    case Opcode::kCallM: {
      uint64_t v;
      if (!DataRead64(EffectiveAddress(in.mem, rip_next), &v)) {
        break;
      }
      reg(Reg::kRsp) -= 8;
      if (!DataWrite64(reg(Reg::kRsp), rip_next)) {
        break;
      }
      goto_target(v);
      break;
    }
    case Opcode::kRet: {
      uint64_t v;
      if (!DataRead64(reg(Reg::kRsp), &v)) {
        break;
      }
      reg(Reg::kRsp) += 8;
      goto_target(v);
      break;
    }

    case Opcode::kMovsq:
    case Opcode::kLodsq:
    case Opcode::kStosq:
    case Opcode::kCmpsq:
    case Opcode::kScasq: {
      const int64_t step = rflags_.df ? -8 : 8;
      auto one = [&]() -> bool {
        uint64_t v;
        switch (in.op) {
          case Opcode::kMovsq:
            if (!DataRead64(reg(Reg::kRsi), &v) || !DataWrite64(reg(Reg::kRdi), v)) {
              return false;
            }
            reg(Reg::kRsi) += static_cast<uint64_t>(step);
            reg(Reg::kRdi) += static_cast<uint64_t>(step);
            return true;
          case Opcode::kLodsq:
            if (!DataRead64(reg(Reg::kRsi), &v)) {
              return false;
            }
            reg(Reg::kRax) = v;
            reg(Reg::kRsi) += static_cast<uint64_t>(step);
            return true;
          case Opcode::kStosq:
            if (!DataWrite64(reg(Reg::kRdi), reg(Reg::kRax))) {
              return false;
            }
            reg(Reg::kRdi) += static_cast<uint64_t>(step);
            return true;
          case Opcode::kCmpsq: {
            uint64_t w;
            if (!DataRead64(reg(Reg::kRsi), &v) || !DataRead64(reg(Reg::kRdi), &w)) {
              return false;
            }
            SetFlagsSub(v, w);
            reg(Reg::kRsi) += static_cast<uint64_t>(step);
            reg(Reg::kRdi) += static_cast<uint64_t>(step);
            return true;
          }
          case Opcode::kScasq:
            if (!DataRead64(reg(Reg::kRdi), &v)) {
              return false;
            }
            SetFlagsSub(reg(Reg::kRax), v);
            reg(Reg::kRdi) += static_cast<uint64_t>(step);
            return true;
          default:
            return false;
        }
      };
      if (!in.rep) {
        pending_.deci_cycles += cost_.string_per_iter;
        one();
      } else {
        const bool conditional = in.op == Opcode::kCmpsq || in.op == Opcode::kScasq;
        // A corrupted or hostile image can enter a rep with an enormous
        // %rcx; bound the host-side loop by the run's step budget so the
        // interpreter always terminates (the run ends as kStepLimit).
        uint64_t iterations = 0;
        while (reg(Reg::kRcx) != 0 && !stopped_) {
          if (++iterations > max_steps_) {
            pending_.reason = StopReason::kStepLimit;
            stopped_ = true;
            break;
          }
          pending_.deci_cycles += cost_.string_per_iter;
          if (!one()) {
            break;
          }
          reg(Reg::kRcx) -= 1;
          if (conditional && !rflags_.zf) {  // repe semantics
            break;
          }
        }
      }
      break;
    }

    case Opcode::kBndcu: {
      uint64_t ea = EffectiveAddress(in.mem, rip_next);
      if (ea > bnd0_ub_) {
        RaiseException(ExceptionKind::kBoundRange, ea);
      }
      break;
    }
    case Opcode::kLoadBnd0:
      bnd0_ub_ = static_cast<uint64_t>(in.imm);
      break;

    case Opcode::kSpecFence:
      // Architecturally a serializing nop; the window-kill semantics live in
      // SpeculateWrongPath.
      break;
    case Opcode::kMaskRI: {
      uint64_t v = reg(in.r1);
      reg(in.r1) = v > static_cast<uint64_t>(in.imm) ? 0 : v;
      break;
    }

    case Opcode::kNumOpcodes:
      RaiseException(ExceptionKind::kInvalidOpcode, rip_);
      break;
  }

  if (stopped_) {
    return false;
  }
  rip_ = next;
  if (sample_pc_slot_ != nullptr) {
    sample_pc_slot_->store(next, std::memory_order_relaxed);
  }
  if (heartbeat_slot_ != nullptr) {
    // Watchdog heartbeat: pending_.instructions is never zero here (it was
    // incremented when this instruction retired), so a nonzero-and-frozen
    // slot across ticks distinguishes "wedged" from "idle" (slot == 0).
    heartbeat_slot_->store(pending_.instructions, std::memory_order_relaxed);
  }
  if (step_observer_) {
    step_observer_(*this);
  }
  return true;
}

// Simulates the wrong path of a mispredicted conditional branch. Everything
// runs against copies (registers, flags, %bnd0) and a store overlay; the
// only effects that survive are the SideChannelObserver's cache-line
// records and the spec.* counters. Accounting deliberately never touches
// pending_: a run with the window enabled must produce a RunResult
// bit-identical to the same run with it disabled (the fuzz-differential
// spec axis pins this down).
//
// Transient semantics that differ from the architectural path:
//  - kSpecFence kills the window (that IS the spec-barrier mitigation);
//  - a failing kBndcu defers its #BR past the window instead of trapping —
//    the dependent load still issues (the MPX transient bypass);
//  - nested kJcc follows the predictor (the machine is already speculating,
//    so it speculates again) and consumes window depth without rollback;
//  - faults (unmapped/forbidden translations, undecodable bytes) and
//    serializing/privileged/microcoded ops (hlt, int3, ud2, syscall,
//    sysret, wrmsr, bndmov, string ops) end the window silently.
void Cpu::SpeculateWrongPath(uint64_t wrong_rip) {
  ++spec_stats_.windows_opened;

  // Shadow state: wrong-path execution sees the architectural state at the
  // branch, plus its own stores (via the overlay, a model of the store
  // buffer — never drained to memory).
  uint64_t regs[kNumGpRegs];
  for (int i = 0; i < kNumGpRegs; ++i) regs[i] = regs_[i];
  RFlags fl = rflags_;
  uint64_t bnd0 = bnd0_ub_;
  uint64_t rip = wrong_rip;
  std::unordered_map<uint64_t, uint64_t> overlay;

  const PageTable& pt = image_->page_table();
  const PhysMem& phys = image_->phys();
  const bool smap = mmu_.smap();
  const bool smep = mmu_.smep();

  // Side-effect-free data translation: straight page-table walk + physical
  // read, bypassing Mmu::Read64 (no TLB counters, no fault record, no
  // destructive-code-read byte-smashing, no XnR disclosure handling).
  auto data_paddr = [&](uint64_t vaddr, uint64_t* paddr) -> bool {
    const Pte* pte = pt.Lookup(vaddr);
    if (pte == nullptr || !pte->flags.present) return false;
    if (smap && pte->flags.user) return false;
    const uint64_t frame = pte->has_data_frame ? pte->data_frame : pte->frame;
    *paddr = (frame << kPageShift) | PageOffset(vaddr);
    return true;
  };
  auto touch = [&](uint64_t paddr) {
    if (side_channel_ != nullptr) {
      side_channel_->Touch(paddr);
    }
    ++spec_stats_.lines_touched;
  };
  auto shadow_read = [&](uint64_t vaddr, uint64_t* value) -> bool {
    uint64_t p_lo, p_hi;
    if (!data_paddr(vaddr, &p_lo) || !data_paddr(vaddr + 7, &p_hi)) {
      return false;
    }
    touch(p_lo);
    touch(p_hi);
    auto it = overlay.find(vaddr);
    if (it != overlay.end()) {
      *value = it->second;
      return true;
    }
    if (PageOffset(vaddr) <= kPageSize - 8) {
      *value = phys.Read64(p_lo);
    } else {
      uint64_t v = 0;
      for (uint64_t i = 0; i < 8; ++i) {
        uint64_t p;
        if (!data_paddr(vaddr + i, &p)) return false;
        v |= static_cast<uint64_t>(phys.Read8(p)) << (8 * i);
      }
      *value = v;
    }
    return true;
  };
  auto shadow_write = [&](uint64_t vaddr, uint64_t value) -> bool {
    uint64_t p;
    if (!data_paddr(vaddr, &p)) return false;
    touch(p);
    overlay[vaddr] = value;
    return true;
  };
  // Wrong-path instruction fetch: present, executable, SMEP-permitted
  // pages only; fetches always use the instruction frame (not the XnR data
  // frame) and leave no I-cache record — the observer models the D-side
  // channel only.
  auto shadow_fetch = [&](uint64_t vaddr, uint8_t* buf) -> size_t {
    size_t n = 0;
    for (; n < 16; ++n) {
      const Pte* pte = pt.Lookup(vaddr + n);
      if (pte == nullptr || !pte->flags.present || pte->flags.nx) break;
      if (smep && pte->flags.user) break;
      buf[n] = phys.Read8((pte->frame << kPageShift) | PageOffset(vaddr + n));
    }
    return n;
  };

  auto flags_sub = [&](uint64_t a, uint64_t b) {
    const uint64_t res = a - b;
    fl.zf = res == 0;
    fl.sf = (res >> 63) != 0;
    fl.cf = a < b;
    fl.of = (((a ^ b) & (a ^ res)) >> 63) != 0;
  };
  auto flags_add = [&](uint64_t a, uint64_t b) {
    const uint64_t res = a + b;
    fl.zf = res == 0;
    fl.sf = (res >> 63) != 0;
    fl.cf = res < a;
    fl.of = ((~(a ^ b) & (a ^ res)) >> 63) != 0;
  };
  auto flags_logic = [&](uint64_t result) {
    fl.zf = result == 0;
    fl.sf = (result >> 63) != 0;
    fl.cf = false;
    fl.of = false;
  };

  auto r = [&](Reg rg) -> uint64_t& { return regs[RegIndex(rg)]; };
  auto ea_of = [&](const MemOperand& mem, uint64_t rip_next) -> uint64_t {
    if (mem.rip_relative) {
      return rip_next + static_cast<uint64_t>(mem.disp);
    }
    uint64_t ea = static_cast<uint64_t>(mem.disp);
    if (mem.has_base()) ea += regs[RegIndex(mem.base)];
    if (mem.has_index()) ea += regs[RegIndex(mem.index)] * mem.scale;
    return ea;
  };

  for (uint32_t depth = 0; depth < options_.spec.window_depth; ++depth) {
    if (rip == kReturnSentinel) {
      break;  // the wrong path speculated out of the kernel
    }
    uint8_t buf[16];
    const size_t fetched = shadow_fetch(rip, buf);
    if (fetched == 0) {
      ++spec_stats_.transient_faults;
      break;
    }
    auto dec = DecodeInstruction(buf, fetched, 0);
    if (!dec.ok()) {
      ++spec_stats_.transient_faults;
      break;
    }
    const Instruction& in = dec->inst;
    const uint64_t rip_next = rip + dec->size;
    uint64_t next = rip_next;
    ++spec_stats_.wrong_path_insts;

    bool kill = false;
    auto mem_fault = [&]() {
      ++spec_stats_.transient_faults;
      kill = true;
    };
    switch (in.op) {
      case Opcode::kNop:
        break;
      case Opcode::kSpecFence:
        ++spec_stats_.fence_kills;
        kill = true;
        break;
      case Opcode::kHlt:
      case Opcode::kInt3:
      case Opcode::kUd2:
      case Opcode::kSyscall:
      case Opcode::kSysret:
      case Opcode::kWrmsr:
      case Opcode::kLoadBnd0:
      case Opcode::kMovsq:
      case Opcode::kLodsq:
      case Opcode::kStosq:
      case Opcode::kCmpsq:
      case Opcode::kScasq:
        kill = true;
        break;

      case Opcode::kMovRR:
        r(in.r1) = r(in.r2);
        break;
      case Opcode::kMovRI:
        r(in.r1) = static_cast<uint64_t>(in.imm);
        break;
      case Opcode::kLoad: {
        uint64_t v;
        if (!shadow_read(ea_of(in.mem, rip_next), &v)) {
          mem_fault();
          break;
        }
        r(in.r1) = v;
        break;
      }
      case Opcode::kStore:
        if (!shadow_write(ea_of(in.mem, rip_next), r(in.r1))) mem_fault();
        break;
      case Opcode::kStoreImm:
        if (!shadow_write(ea_of(in.mem, rip_next), static_cast<uint64_t>(in.imm))) {
          mem_fault();
        }
        break;
      case Opcode::kLea:
        r(in.r1) = ea_of(in.mem, rip_next);
        break;
      case Opcode::kPushR:
        r(Reg::kRsp) -= 8;
        if (!shadow_write(r(Reg::kRsp), r(in.r1))) mem_fault();
        break;
      case Opcode::kPopR: {
        uint64_t v;
        if (!shadow_read(r(Reg::kRsp), &v)) {
          mem_fault();
          break;
        }
        r(in.r1) = v;
        r(Reg::kRsp) += 8;
        break;
      }
      case Opcode::kPushfq:
        r(Reg::kRsp) -= 8;
        if (!shadow_write(r(Reg::kRsp), fl.ToBits())) mem_fault();
        break;
      case Opcode::kPopfq: {
        uint64_t v;
        if (!shadow_read(r(Reg::kRsp), &v)) {
          mem_fault();
          break;
        }
        fl.FromBits(v);
        r(Reg::kRsp) += 8;
        break;
      }

      case Opcode::kAddRR:
        flags_add(r(in.r1), r(in.r2));
        r(in.r1) += r(in.r2);
        break;
      case Opcode::kAddRI:
        flags_add(r(in.r1), static_cast<uint64_t>(in.imm));
        r(in.r1) += static_cast<uint64_t>(in.imm);
        break;
      case Opcode::kSubRR:
        flags_sub(r(in.r1), r(in.r2));
        r(in.r1) -= r(in.r2);
        break;
      case Opcode::kSubRI:
        flags_sub(r(in.r1), static_cast<uint64_t>(in.imm));
        r(in.r1) -= static_cast<uint64_t>(in.imm);
        break;
      case Opcode::kAndRR:
        r(in.r1) &= r(in.r2);
        flags_logic(r(in.r1));
        break;
      case Opcode::kAndRI:
        r(in.r1) &= static_cast<uint64_t>(in.imm);
        flags_logic(r(in.r1));
        break;
      case Opcode::kOrRR:
        r(in.r1) |= r(in.r2);
        flags_logic(r(in.r1));
        break;
      case Opcode::kOrRI:
        r(in.r1) |= static_cast<uint64_t>(in.imm);
        flags_logic(r(in.r1));
        break;
      case Opcode::kXorRR:
        r(in.r1) ^= r(in.r2);
        flags_logic(r(in.r1));
        break;
      case Opcode::kXorRI:
        r(in.r1) ^= static_cast<uint64_t>(in.imm);
        flags_logic(r(in.r1));
        break;
      case Opcode::kShlRI: {
        const uint64_t k = static_cast<uint64_t>(in.imm) & 63;
        uint64_t v = r(in.r1);
        fl.cf = k > 0 && ((v >> (64 - k)) & 1) != 0;
        v <<= k;
        r(in.r1) = v;
        fl.zf = v == 0;
        fl.sf = (v >> 63) != 0;
        fl.of = false;
        break;
      }
      case Opcode::kShrRI: {
        const uint64_t k = static_cast<uint64_t>(in.imm) & 63;
        uint64_t v = r(in.r1);
        fl.cf = k > 0 && ((v >> (k - 1)) & 1) != 0;
        v >>= k;
        r(in.r1) = v;
        fl.zf = v == 0;
        fl.sf = false;
        fl.of = false;
        break;
      }
      case Opcode::kImulRR: {
        const uint64_t v = r(in.r1) * r(in.r2);
        r(in.r1) = v;
        flags_logic(v);
        break;
      }
      case Opcode::kCmpRR:
        flags_sub(r(in.r1), r(in.r2));
        break;
      case Opcode::kCmpRI:
        flags_sub(r(in.r1), static_cast<uint64_t>(in.imm));
        break;
      case Opcode::kTestRR:
        flags_logic(r(in.r1) & r(in.r2));
        break;
      case Opcode::kMaskRI: {
        const uint64_t v = r(in.r1);
        r(in.r1) = v > static_cast<uint64_t>(in.imm) ? 0 : v;
        break;
      }

      case Opcode::kAddRM: {
        uint64_t v;
        if (!shadow_read(ea_of(in.mem, rip_next), &v)) {
          mem_fault();
          break;
        }
        flags_add(r(in.r1), v);
        r(in.r1) += v;
        break;
      }
      case Opcode::kCmpRM: {
        uint64_t v;
        if (!shadow_read(ea_of(in.mem, rip_next), &v)) {
          mem_fault();
          break;
        }
        flags_sub(r(in.r1), v);
        break;
      }
      case Opcode::kCmpMI: {
        uint64_t v;
        if (!shadow_read(ea_of(in.mem, rip_next), &v)) {
          mem_fault();
          break;
        }
        flags_sub(v, static_cast<uint64_t>(in.imm));
        break;
      }
      case Opcode::kXorMR: {
        const uint64_t ea = ea_of(in.mem, rip_next);
        uint64_t v;
        if (!shadow_read(ea, &v)) {
          mem_fault();
          break;
        }
        v ^= r(in.r1);
        flags_logic(v);
        if (!shadow_write(ea, v)) mem_fault();
        break;
      }

      case Opcode::kJmpRel:
        next = rip_next + static_cast<uint64_t>(in.imm);
        break;
      case Opcode::kJcc:
        // Nested speculation: follow the predictor (not the shadow flags)
        // and consume window depth; the bounded window never unwinds
        // nested levels individually.
        ++spec_stats_.nested_branches;
        if (predictor_.PredictTaken(rip)) {
          next = rip_next + static_cast<uint64_t>(in.imm);
        }
        break;
      case Opcode::kJmpR:
        next = r(in.r1);
        break;
      case Opcode::kJmpM: {
        uint64_t v;
        if (!shadow_read(ea_of(in.mem, rip_next), &v)) {
          mem_fault();
          break;
        }
        next = v;
        break;
      }
      case Opcode::kCallRel:
        r(Reg::kRsp) -= 8;
        if (!shadow_write(r(Reg::kRsp), rip_next)) {
          mem_fault();
          break;
        }
        next = rip_next + static_cast<uint64_t>(in.imm);
        break;
      case Opcode::kCallR:
        r(Reg::kRsp) -= 8;
        if (!shadow_write(r(Reg::kRsp), rip_next)) {
          mem_fault();
          break;
        }
        next = r(in.r1);
        break;
      case Opcode::kCallM: {
        uint64_t v;
        if (!shadow_read(ea_of(in.mem, rip_next), &v)) {
          mem_fault();
          break;
        }
        r(Reg::kRsp) -= 8;
        if (!shadow_write(r(Reg::kRsp), rip_next)) {
          mem_fault();
          break;
        }
        next = v;
        break;
      }
      case Opcode::kRet: {
        uint64_t v;
        if (!shadow_read(r(Reg::kRsp), &v)) {
          mem_fault();
          break;
        }
        r(Reg::kRsp) += 8;
        next = v;
        break;
      }

      case Opcode::kBndcu: {
        const uint64_t ea = ea_of(in.mem, rip_next);
        if (ea > bnd0) {
          // The #BR is deferred to retirement — which never comes for a
          // wrong-path instruction. The dependent load still issues: this
          // is the MPX transient bypass.
          ++spec_stats_.transient_br_deferred;
        }
        break;
      }

      case Opcode::kNumOpcodes:
        kill = true;
        break;
    }
    if (kill) {
      break;
    }
    rip = next;
  }
  // Rollback: shadow registers, flags, and the store overlay are simply
  // dropped. Only the observer's line records (and these counters) remain.
}

bool Cpu::Step() {
  if (krx_handler_lo_ != 0 && rip_ >= krx_handler_lo_ && rip_ < krx_handler_hi_) {
    pending_.krx_violation = true;
  }
  Instruction in;
  uint8_t inst_size = 0;
  if (!FetchDecode(&in, &inst_size)) {
    return false;
  }
  return ExecuteInst(in, inst_size);
}

DecodedBlock Cpu::BuildBlock(uint64_t start) {
  DecodedBlock block;
  block.start = start;
  uint64_t rip = start;
  uint8_t buf[16];
  while (block.insts.size() < kMaxBlockInsts) {
    auto fetched = mmu_.FetchCode(rip, buf, sizeof(buf));
    if (!fetched.ok()) {
      break;
    }
    auto dec = DecodeInstruction(buf, *fetched, 0);
    if (!dec.ok()) {
      // Undecodable (or truncated-at-unmapped-boundary) bytes terminate the
      // block; execution reaching this %rip falls back to the canonical
      // single-step path, which raises the identical exception.
      break;
    }
    block.insts.push_back(PredecodedInst{dec->inst, dec->size});
    if (EndsBlock(dec->inst.op)) {
      break;
    }
    rip += dec->size;
  }
  return block;
}

bool Cpu::PreemptDue(uint64_t step) {
  if (preempt_.load(std::memory_order_acquire)) {
    return true;
  }
  return deadline_armed_ && (step & 1023) == 0 &&
         std::chrono::steady_clock::now() >= deadline_;
}

RunResult Cpu::RunCached() {
  uint64_t steps = 0;
  while (steps < max_steps_) {
    if (PreemptDue(0)) {  // block boundary: preempt + deadline check
      pending_.reason = StopReason::kDeadlineExceeded;
      return pending_;
    }
    const uint64_t generation = image_->text_generation();
    const DecodedBlock* block = cache_.Lookup(rip_, generation);
    const bool replaying = block != nullptr;
    if (block == nullptr) {
      DecodedBlock built = BuildBlock(rip_);
      if (built.insts.empty()) {
        // Unfetchable or undecodable bytes at %rip: take the canonical
        // single-step path so the fault surfaces exactly as uncached.
        if (!Step()) {
          return pending_;
        }
        ++steps;
        continue;
      }
      block = cache_.Insert(std::move(built));
    }
    uint64_t executed = 0;
    bool stop = false;
    for (const PredecodedInst& pi : block->insts) {
      if (steps >= max_steps_) {
        break;
      }
      if (krx_handler_lo_ != 0 && rip_ >= krx_handler_lo_ && rip_ < krx_handler_hi_) {
        pending_.krx_violation = true;
      }
      ++steps;
      ++executed;
      if (!ExecuteInst(pi.inst, pi.size)) {
        stop = true;
        break;
      }
      // A store into the code region (self-modifying code through a synonym,
      // a module load triggered by the run, ...) bumped the image's text
      // generation: the rest of this predecode is stale, re-decode at %rip.
      if (image_->text_generation() != generation) {
        break;
      }
    }
    if (replaying) {
      cache_.CountReplayed(executed);
    }
    if (stop) {
      return pending_;
    }
  }
  pending_.reason = StopReason::kStepLimit;
  return pending_;
}

RunResult Cpu::Run(const RunOptions& options, bool entered_via_call) {
  KRX_TRACE_SPAN_SCOPED("cpu.run");
  RunResult result = RunInner(options, entered_via_call);
  if (sample_pc_slot_ != nullptr) {
    // Idle marker: between runs the profiler must not re-attribute the last
    // guest %rip of a finished run.
    sample_pc_slot_->store(0, std::memory_order_relaxed);
  }
  if (heartbeat_slot_ != nullptr) {
    // Idle marker: the watchdog must not report a lockup between runs.
    heartbeat_slot_->store(0, std::memory_order_relaxed);
  }
  PublishRunTelemetry(result);
  return result;
}

void Cpu::PublishRunTelemetry(const RunResult& result) {
#if defined(KRX_TELEMETRY_DISABLED)
  (void)result;
#else
  // Per-run speculation deltas (stats are cumulative per Cpu, like the
  // block-cache counters). Computed up front: both the metrics and trace
  // branches consume them.
  const uint64_t spec_windows_delta =
      spec_stats_.windows_opened - published_spec_stats_.windows_opened;
  const uint64_t spec_wrong_delta =
      spec_stats_.wrong_path_insts - published_spec_stats_.wrong_path_insts;
  if (telemetry::MetricsEnabled()) {
    KRX_COUNTER_ADD("cpu.runs", 1);
    KRX_COUNTER_ADD("cpu.instructions", result.instructions);
    KRX_COUNTER_ADD("cpu.checks.bndcu", result.mix.bndcu);
    if (result.reason == StopReason::kException) {
      telemetry::MetricsRegistry::Global()
          .GetCounter(std::string("cpu.trap.") + ExceptionKindName(result.exception))
          .Increment();
    }
    if (result.krx_violation) {
      KRX_COUNTER_ADD("cpu.krx_violations", 1);
    }
    if (result.xnr_violation) {
      KRX_COUNTER_ADD("cpu.xnr_violations", 1);
    }
    if (result.reason == StopReason::kDeadlineExceeded) {
      KRX_COUNTER_ADD("cpu.deadline_exceeded", 1);
    }
    const BlockCacheStats& s = cache_.stats();
    KRX_COUNTER_ADD("cpu.block_cache.hits", s.hits - published_cache_stats_.hits);
    KRX_COUNTER_ADD("cpu.block_cache.misses", s.misses - published_cache_stats_.misses);
    KRX_COUNTER_ADD("cpu.block_cache.flushes", s.flushes - published_cache_stats_.flushes);
    KRX_COUNTER_ADD("cpu.block_cache.decoded_insts",
                    s.decoded_insts - published_cache_stats_.decoded_insts);
    KRX_COUNTER_ADD("cpu.block_cache.replayed_insts",
                    s.replayed_insts - published_cache_stats_.replayed_insts);
    published_cache_stats_ = s;
    const SuperblockStats& sb = sb_cache_.stats();
    KRX_COUNTER_ADD("sb.chains_built", sb.chains_built - published_sb_stats_.chains_built);
    KRX_COUNTER_ADD("sb.blocks_chained",
                    sb.blocks_chained - published_sb_stats_.blocks_chained);
    KRX_COUNTER_ADD("sb.predecoded_insts",
                    sb.predecoded_insts - published_sb_stats_.predecoded_insts);
    KRX_COUNTER_ADD("sb.entries", sb.entries - published_sb_stats_.entries);
    KRX_COUNTER_ADD("sb.chain_breaks", sb.chain_breaks - published_sb_stats_.chain_breaks);
    KRX_COUNTER_ADD("sb.flushes", sb.flushes - published_sb_stats_.flushes);
    KRX_COUNTER_ADD("sb.executed_insts",
                    sb.executed_insts - published_sb_stats_.executed_insts);
    KRX_COUNTER_ADD("sb.fastpath_insts",
                    sb.fastpath_insts - published_sb_stats_.fastpath_insts);
    KRX_COUNTER_ADD("sb.tlb_hits", sb.tlb_hits - published_sb_stats_.tlb_hits);
    KRX_COUNTER_ADD("sb.tlb_misses", sb.tlb_misses - published_sb_stats_.tlb_misses);
    published_sb_stats_ = sb;
    if (options_.spec.enabled) {
      const SpecStats& sp = spec_stats_;
      KRX_COUNTER_ADD("spec.predictions",
                      sp.predictions - published_spec_stats_.predictions);
      KRX_COUNTER_ADD("spec.mispredictions",
                      sp.mispredictions - published_spec_stats_.mispredictions);
      KRX_COUNTER_ADD("spec.windows", spec_windows_delta);
      KRX_COUNTER_ADD("spec.wrong_path_insts", spec_wrong_delta);
      KRX_COUNTER_ADD("spec.nested_branches",
                      sp.nested_branches - published_spec_stats_.nested_branches);
      KRX_COUNTER_ADD("spec.fence_kills",
                      sp.fence_kills - published_spec_stats_.fence_kills);
      KRX_COUNTER_ADD("spec.transient_br_deferred",
                      sp.transient_br_deferred - published_spec_stats_.transient_br_deferred);
      KRX_COUNTER_ADD("spec.transient_faults",
                      sp.transient_faults - published_spec_stats_.transient_faults);
      KRX_COUNTER_ADD("spec.lines_touched",
                      sp.lines_touched - published_spec_stats_.lines_touched);
      published_spec_stats_ = sp;
    }
  }
  if (telemetry::TraceEnabled()) {
    if (options_.spec.enabled && spec_windows_delta > 0) {
      // One aggregated misspeculation span per run — the per-instruction
      // discipline (DESIGN.md §11) rules out per-window events.
      telemetry::EmitEvent(telemetry::TraceEventType::kSpecWindow, "spec_windows",
                           spec_windows_delta, spec_wrong_delta);
    }
    if (result.reason == StopReason::kException) {
      telemetry::EmitEvent(telemetry::TraceEventType::kCpuTrap,
                           ExceptionKindName(result.exception),
                           static_cast<uint64_t>(result.exception), result.fault_addr);
    }
    if (result.krx_violation) {
      telemetry::EmitEvent(telemetry::TraceEventType::kKrxViolation, "krx_violation",
                           result.fault_addr, 0);
    }
    telemetry::EmitEvent(telemetry::TraceEventType::kCheckOutcome, "run_checks",
                         result.mix.bndcu, result.mix.loads);
  }
#endif
}

RunResult Cpu::RunInner(const RunOptions& options, bool entered_via_call) {
  pending_ = RunResult();
  stopped_ = false;
  max_steps_ = options.max_steps;
  // A preempt request targets the in-flight run; one landing between runs
  // must not kill the next run before it starts.
  preempt_.store(false, std::memory_order_release);
  deadline_armed_ = options.deadline_us > 0;
  if (deadline_armed_) {
    deadline_ = std::chrono::steady_clock::now() + std::chrono::microseconds(options.deadline_us);
  }
  const bool charge = options.mode_switch == RunOptions::ModeSwitch::kAuto
                          ? entered_via_call
                          : options.mode_switch == RunOptions::ModeSwitch::kCharge;
  if (charge) {
    pending_.deci_cycles += cost_.mode_switch;
    if (options_.mpx_enabled) {
      pending_.deci_cycles += cost_.mpx_mode_switch_extra;
    }
  }
  // The step observer must fire at every single-stepped instruction
  // boundary; XnR turns fetch faults into the defense mechanism itself;
  // destructive code reads mutate text bytes without a paging event; and
  // the speculation window must observe every conditional branch as it
  // retires. All four force the canonical fetch-decode-execute path,
  // whichever engine the run asked for.
  const bool cacheable = step_observer_ == nullptr && image_->xnr() == nullptr &&
                         !image_->destructive_code_reads() && !options_.spec.enabled;
  ExecEngine engine = options.engine;
  if (engine == ExecEngine::kAuto) {
    engine = options.use_block_cache ? ExecEngine::kBlockCache : ExecEngine::kSingleStep;
  }
  if (!cacheable) {
    engine = ExecEngine::kSingleStep;
  }
  if (engine == ExecEngine::kSuperblock) {
    return RunSuperblocked();
  }
  if (engine == ExecEngine::kBlockCache) {
    return RunCached();
  }
  for (uint64_t i = 0; i < max_steps_; ++i) {
    if (PreemptDue(i)) {
      pending_.reason = StopReason::kDeadlineExceeded;
      return pending_;
    }
    if (!Step()) {
      return pending_;
    }
  }
  pending_.reason = StopReason::kStepLimit;
  return pending_;
}

RunResult Cpu::CallFunctionImpl(uint64_t entry, const std::vector<uint64_t>& args,
                                const RunOptions& options) {
  static constexpr Reg kArgRegs[6] = {Reg::kRdi, Reg::kRsi, Reg::kRdx,
                                      Reg::kRcx, Reg::kR8,  Reg::kR9};
  auto host_error = [](std::string message) {
    RunResult r;
    r.reason = StopReason::kHostError;
    r.host_error = std::move(message);
    return r;
  };
  if (!init_error_.empty()) {
    return host_error(init_error_);
  }
  if (args.size() > 6) {
    return host_error("CallFunction supports at most 6 register arguments, got " +
                      std::to_string(args.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    set_reg(kArgRegs[i], args[i]);
  }
  // Kernel entry: fresh stack top, sentinel return address. %r11 carries a
  // harness pseudo-tripwire so decoy-instrumented callees have a value to
  // store (the real syscall entry stub is itself instrumented).
  set_reg(Reg::kRsp, stack_top_ - 24);
  Status sentinel = mmu_.Write64(reg(Reg::kRsp), kReturnSentinel);
  if (!sentinel.ok()) {
    return host_error("sentinel push failed: " + sentinel.ToString());
  }
  set_reg(Reg::kR11, kReturnSentinel);
  bnd0_ub_ = options_.mpx_enabled ? image_->krx_edata() : ~0ULL;
  rip_ = entry;
  return Run(options, /*entered_via_call=*/true);
}

// The public entry points below are the quiescence safe points: each one
// holds the gate for the whole run and acquires it exactly once (nested
// acquisition would deadlock against a waiting epoch, which has writer
// priority). Symbol resolution happens inside the gated scope so a name
// resolves against the layout the run will actually execute — resolving
// before the gate could race a concurrent epoch and hand back a stale
// address.

RunResult Cpu::CallFunction(uint64_t entry, const std::vector<uint64_t>& args,
                            const RunOptions& options) {
  QuiesceRunScope scope(quiesce_gate_);
  return CallFunctionImpl(entry, args, options);
}

RunResult Cpu::CallFunction(const std::string& symbol, const std::vector<uint64_t>& args,
                            const RunOptions& options) {
  QuiesceRunScope scope(quiesce_gate_);
  auto addr = image_->symbols().AddressOf(symbol);
  if (!addr.ok()) {
    RunResult r;
    r.reason = StopReason::kHostError;
    r.host_error = "unresolvable entry symbol '" + symbol + "': " + addr.status().ToString();
    return r;
  }
  return CallFunctionImpl(*addr, args, options);
}

RunResult Cpu::RunAt(uint64_t rip, const RunOptions& options) {
  QuiesceRunScope scope(quiesce_gate_);
  rip_ = rip;
  return Run(options, /*entered_via_call=*/false);
}

}  // namespace krx
