#include "src/cpu/block_cache.h"

#include "src/telemetry/telemetry.h"

namespace krx {

bool EndsBlock(Opcode op) {
  switch (op) {
    case Opcode::kJmpRel:
    case Opcode::kJcc:
    case Opcode::kJmpR:
    case Opcode::kJmpM:
    case Opcode::kCallRel:
    case Opcode::kCallR:
    case Opcode::kCallM:
    case Opcode::kRet:
    case Opcode::kHlt:
    case Opcode::kInt3:
    case Opcode::kUd2:
      return true;
    default:
      return false;
  }
}

const DecodedBlock* BlockCache::Lookup(uint64_t rip, uint64_t generation) {
  if (generation != generation_) {
    if (!blocks_.empty()) {
      blocks_.clear();
      ++stats_.flushes;
      KRX_TRACE_EVENT(kBlockCacheFlush, "block_cache_flush", generation, 0);
    }
    generation_ = generation;
  }
  auto it = blocks_.find(rip);
  if (it == blocks_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

const DecodedBlock* BlockCache::Insert(DecodedBlock block) {
  stats_.decoded_insts += block.insts.size();
  auto [it, inserted] = blocks_.insert_or_assign(block.start, std::move(block));
  (void)inserted;
  return &it->second;
}

void BlockCache::Flush() {
  if (!blocks_.empty()) {
    blocks_.clear();
    ++stats_.flushes;
    KRX_TRACE_EVENT(kBlockCacheFlush, "block_cache_flush", 0, 0);
  }
}

}  // namespace krx
