// Cycle cost model for the krx64 interpreter.
//
// All costs are expressed in deci-cycles (tenths of a CPU cycle) so that
// sub-cycle costs — e.g. an MPX bounds check that retires on an otherwise
// idle port — are representable without floating point. The absolute values
// are a documented approximation of a Skylake-class core (the paper's
// testbed is an i7-6700K); the experiments report *relative* overheads, so
// what matters is the ordering: popfq is expensive (serializing flag
// restore), loads dominate ALU ops, and bndcu is nearly free.
#ifndef KRX_SRC_CPU_COST_MODEL_H_
#define KRX_SRC_CPU_COST_MODEL_H_

#include <cstdint>

#include "src/isa/opcode.h"

namespace krx {

struct CostModel {
  // Deci-cycles per opcode class.
  uint64_t alu = 3;          // mov rr/ri, add, sub, logic, cmp, test, shifts
  uint64_t imul = 30;
  uint64_t lea = 5;
  uint64_t load = 40;        // L1 hit
  uint64_t load_riprel = 15; // constant-address load (xkey fetch): trivially prefetched
  uint64_t store = 10;       // store-buffer absorbed
  uint64_t rmw = 20;         // xor (%rsp),reg: store-forwarded read-modify-write
  uint64_t push = 15;
  uint64_t pop = 15;
  uint64_t pushfq = 30;
  uint64_t popfq = 210;      // flag restore is serializing
  uint64_t branch = 8;       // predicted conditional
  uint64_t jmp = 6;
  uint64_t call = 25;
  uint64_t ret = 25;
  uint64_t indirect = 35;    // indirect call/jmp through reg/mem
  uint64_t string_per_iter = 35;
  uint64_t string_setup = 20;
  uint64_t bndcu = 3;        // retires on a free port
  uint64_t bnd_load = 50;
  uint64_t int3 = 10;
  uint64_t nop = 3;
  uint64_t wrmsr = 600;
  uint64_t hlt = 10;
  uint64_t spec_fence = 40;  // lfence: drains the load queue before retiring

  // Mode-switch costs (syscall entry + sysret exit, deci-cycles).
  uint64_t mode_switch = 1500;
  // Extra per-switch cost when the kernel reserves %bnd0: spill and fill of
  // the user-mode bounds register (§5.1.3).
  uint64_t mpx_mode_switch_extra = 14;

  // Cost of one dynamic instruction (excluding per-iteration string costs,
  // which the interpreter adds per element).
  uint64_t CostOf(Opcode op) const;
};

}  // namespace krx

#endif  // KRX_SRC_CPU_COST_MODEL_H_
