// The krx64 interpreter.
//
// Executes code out of a KernelImage through the MMU: instruction fetches
// are Exec accesses, data accesses are Read/Write accesses, so page
// permissions (with x86 semantics) apply exactly as they would on hardware.
// The CPU carries the MPX %bnd0 bounds register; bndcu raises #BR, int3
// raises a breakpoint exception (the tripwire mechanism), and translation
// failures surface as page faults. Cycle accounting follows CostModel.
//
// Two execution engines share one instruction-execution path:
//   - single-step: fetch + decode + execute every retired instruction;
//   - block-cached (default): predecode straight-line basic blocks once and
//     replay them (src/cpu/block_cache.h), bit-identical results, decode
//     cost amortized away. A step observer, XnR, or destructive code reads
//     force single-step mode (see RunOptions::use_block_cache).
//
// Each Cpu owns its own Mmu view (translation state, fault record, TLB
// counters) over the image's shared page table and physical memory, so many
// Cpus can execute concurrently on one immutable image (the parallel bench
// driver) without sharing mutable per-run state.
#ifndef KRX_SRC_CPU_CPU_H_
#define KRX_SRC_CPU_CPU_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/cpu/block_cache.h"
#include "src/cpu/cost_model.h"
#include "src/cpu/superblock/superblock.h"
#include "src/kernel/image.h"
#include "src/spec/spec.h"

namespace krx {

class QuiesceGate;

struct RFlags {
  bool zf = false;
  bool sf = false;
  bool cf = false;
  bool of = false;
  bool df = false;

  uint64_t ToBits() const {
    return (zf ? 1ULL << 6 : 0) | (sf ? 1ULL << 7 : 0) | (cf ? 1ULL << 0 : 0) |
           (of ? 1ULL << 11 : 0) | (df ? 1ULL << 10 : 0) | 0x2;  // bit1 always set
  }
  void FromBits(uint64_t v) {
    cf = v & (1ULL << 0);
    zf = v & (1ULL << 6);
    sf = v & (1ULL << 7);
    df = v & (1ULL << 10);
    of = v & (1ULL << 11);
  }
};

enum class ExceptionKind : uint8_t {
  kNone = 0,
  kPageFault,        // #PF
  kBoundRange,       // #BR (bndcu failure)
  kBreakpoint,       // int3 (tripwire)
  kInvalidOpcode,    // #UD / undecodable bytes
  kGeneralProtection,
};

const char* ExceptionKindName(ExceptionKind kind);

enum class StopReason : uint8_t {
  kReturned = 0,   // popped the harness sentinel return address
  kHalted,         // hlt
  kException,      // see exception field
  kStepLimit,
  kHostError,      // the harness could not start the run; see host_error
  kDeadlineExceeded,  // preempted: RunOptions deadline or RequestPreempt
};

const char* StopReasonName(StopReason reason);

// Dynamic instruction mix of a run — the telemetry the overhead-breakdown
// bench uses to attribute cycles to instrumentation classes.
struct InstMix {
  uint64_t loads = 0;        // explicit data loads (incl. rmw reads)
  uint64_t stores = 0;
  uint64_t alu = 0;
  uint64_t lea = 0;
  uint64_t branches = 0;     // conditional
  uint64_t jumps = 0;        // unconditional + indirect
  uint64_t calls = 0;
  uint64_t rets = 0;
  uint64_t pushpop = 0;
  uint64_t pushfq = 0;
  uint64_t popfq = 0;
  uint64_t bndcu = 0;
  uint64_t string_ops = 0;
  uint64_t other = 0;

  void Count(Opcode op);

  bool operator==(const InstMix&) const = default;
};

struct RunResult {
  StopReason reason = StopReason::kReturned;
  ExceptionKind exception = ExceptionKind::kNone;
  uint64_t fault_addr = 0;   // faulting rip or data address
  uint64_t rax = 0;          // return value when kReturned
  uint64_t instructions = 0;
  uint64_t deci_cycles = 0;  // includes mode-switch cost for CallFunction
  InstMix mix;
  // True when execution ended inside krx_handler: the SFI instrumentation
  // detected an R^X violation and stopped the machine.
  bool krx_violation = false;
  // True when the XnR baseline defense detected a data access to a
  // non-resident code page (see src/kernel/baseline_defenses.h).
  bool xnr_violation = false;
  // Populated when reason == kHostError: why the harness could not run the
  // call (bad symbol, too many arguments, unmapped stack, ...). Host-side
  // failures degrade into an error result instead of aborting the process.
  std::string host_error;

  double cycles() const { return static_cast<double>(deci_cycles) / 10.0; }
};

struct CpuOptions {
  bool mpx_enabled = false;  // kernel reserves %bnd0 = [_krx_edata]
  uint64_t stack_pages = 4;  // 16KB kernel stack, like THREAD_SIZE
  // Transient-execution window (src/spec/spec.h). Off by default; enabling
  // it forces single-step execution and makes every mispredicted
  // conditional branch simulate a bounded wrong path against shadow state.
  SpecConfig spec;
};

// Default per-run retired-instruction budget (was a duplicated 2'000'000
// literal at every call site).
inline constexpr uint64_t kDefaultMaxSteps = 2'000'000;

// Which execution engine a run uses. All three retire instructions through
// the same semantics and produce bit-identical RunResults (the
// fuzz-differential engine axis pins this down); they differ only in how
// much decode/dispatch work is amortized:
//   - kSingleStep: fetch + decode + execute every retired instruction;
//   - kBlockCache: predecode straight-line blocks once, replay them;
//   - kSuperblock: chain predecoded blocks across static and well-predicted
//     transfers, dispatch through per-instruction handler pointers, and
//     serve in-page data accesses from an inline translation cache
//     (src/cpu/superblock/superblock.h).
// kAuto preserves the legacy RunOptions::use_block_cache mapping. Runs that
// are ineligible for cached execution (step observer, XnR, destructive code
// reads, speculation window) fall back to single-step regardless.
enum class ExecEngine : uint8_t { kAuto = 0, kSingleStep, kBlockCache, kSuperblock };

// Per-run knobs, shared by CallFunction and RunAt.
struct RunOptions {
  uint64_t max_steps = kDefaultMaxSteps;
  // Whether the run is charged the user->kernel mode-switch cost. kAuto
  // preserves the historical contract: CallFunction (a simulated syscall
  // entry) charges it, RunAt (a hijacked raw control transfer) does not.
  enum class ModeSwitch : uint8_t { kAuto, kCharge, kSkip };
  ModeSwitch mode_switch = ModeSwitch::kAuto;
  // Execute through the predecoded-block cache. Forced off for the whole
  // run when a step observer is installed (the observer must see every
  // single-stepped instruction boundary), under XnR (fetch faults are the
  // defense) and under destructive code reads (decoded bytes self-destruct).
  bool use_block_cache = true;
  // Wall-clock budget for the run in microseconds; 0 = unbounded. A run
  // past its deadline is preempted at the next block boundary (cached) or
  // within 1024 instructions (single-step) into a kDeadlineExceeded result
  // — the supervision layer's answer to runaway-but-progressing guests.
  uint64_t deadline_us = 0;
  // Engine selection; kAuto maps use_block_cache (above) so existing call
  // sites keep their historical behavior. Setting this to a concrete engine
  // makes use_block_cache irrelevant.
  ExecEngine engine = ExecEngine::kAuto;
};

class Cpu {
 public:
  Cpu(KernelImage* image, CostModel cost = CostModel(), CpuOptions options = CpuOptions());

  uint64_t reg(Reg r) const { return regs_[RegIndex(r)]; }
  void set_reg(Reg r, uint64_t v) { regs_[RegIndex(r)] = v; }
  RFlags& rflags() { return rflags_; }
  uint64_t rip() const { return rip_; }
  uint64_t stack_base() const { return stack_base_; }
  uint64_t stack_top() const { return stack_top_; }
  uint64_t bnd0_ub() const { return bnd0_ub_; }
  KernelImage* image() { return image_; }
  const KernelImage* image() const { return image_; }

  // This CPU's private translation context (fault record, TLB counters,
  // SMEP/SMAP switches) over the image's shared page table.
  Mmu& mmu() { return mmu_; }
  const Mmu& mmu() const { return mmu_; }

  // This CPU's predecoded-block cache (hit/decode telemetry for the bench
  // driver; entries are invalidated by the image's text generation).
  const BlockCache& block_cache() const { return cache_; }

  // This CPU's superblock cache (chain/fastpath/inline-TLB telemetry and
  // the per-superblock usage counters the per-function tables aggregate).
  const SuperblockCache& superblock_cache() const { return sb_cache_; }

  // Non-empty when construction failed to allocate a kernel stack; every
  // CallFunction on such a CPU returns a kHostError result.
  const std::string& init_error() const { return init_error_; }

  // Simulates a user->kernel mode switch and a call of the function at
  // `entry` with up to 6 arguments (SysV order: rdi, rsi, rdx, rcx, r8,
  // r9). Returns when the function returns to the harness sentinel.
  RunResult CallFunction(uint64_t entry, const std::vector<uint64_t>& args,
                         const RunOptions& options = RunOptions());

  RunResult CallFunction(const std::string& symbol, const std::vector<uint64_t>& args,
                         const RunOptions& options = RunOptions());

  // Raw execution starting at `rip` with current register state — the
  // primitive a hijacked control transfer gives an attacker. Under
  // ModeSwitch::kAuto no mode-switch cost is added and the stack is left
  // wherever %rsp points.
  RunResult RunAt(uint64_t rip, const RunOptions& options = RunOptions());

  // Sentinel return address that terminates a CallFunction run.
  static constexpr uint64_t kReturnSentinel = 0xFFFF5E17DEAD7A80ULL;

  // Invoked after every retired instruction (when set). Used by the §5.3
  // race-hazard measurement: an arbitrarily fast attacker inspecting the
  // machine between any two instructions. Installing an observer forces
  // single-step (uncached) execution so the observer sees state at every
  // instruction boundary, exactly as without the block cache.
  void set_step_observer(std::function<void(const Cpu&)> observer) {
    step_observer_ = std::move(observer);
  }

  // Quiescence gate (src/rerand/quiesce.h): when set, every CallFunction /
  // RunAt runs inside the gate, making run boundaries the safe points the
  // re-randomization engine quiesces to. Null (the default) = ungated.
  void set_quiesce_gate(QuiesceGate* gate) { quiesce_gate_ = gate; }

  // Re-resolves the cached krx_handler extent from the symbol table. The
  // re-randomization engine calls this after an epoch moves the handler.
  void RefreshKrxHandlerRange();

  // Sampling-profiler hook (src/telemetry/profiler.h): while a slot is
  // installed the Cpu publishes its %rip with one relaxed store per retired
  // instruction; the slot is zeroed at the end of each run (idle marker).
  // The default (null) costs only this pointer test per instruction —
  // telemetry's sole per-instruction hook, see DESIGN.md §11.
  void set_sample_pc_slot(std::atomic<uint64_t>* slot) { sample_pc_slot_ = slot; }

  // Watchdog heartbeat hook (src/supervise/watchdog.h): while a slot is
  // installed the Cpu publishes its retired-instruction count with one
  // relaxed store per instruction and zeroes the slot at run end (idle
  // marker) — the same discipline and cost as the profiler slot above. A
  // nonzero, frozen heartbeat across watchdog ticks means the run's host
  // thread is wedged (lockup); an advancing one is the deadline's problem.
  void set_heartbeat_slot(std::atomic<uint64_t>* slot) { heartbeat_slot_ = slot; }

  // Cross-thread preemption: the in-flight run (the request is cleared at
  // the start of each run) stops at its next boundary with
  // StopReason::kDeadlineExceeded. Safe from any thread — this is how a
  // watchdog's hard-lockup callback unwedges a stuck Cpu.
  void RequestPreempt() { preempt_.store(true, std::memory_order_release); }

  // Side-channel observer (src/spec/spec.h): when set, physical cache
  // lines touched by wrong-path data accesses are recorded there and
  // survive window rollback — the transient adversary's evidence. The
  // observer is only consulted while options.spec.enabled.
  void set_side_channel_observer(SideChannelObserver* observer) {
    side_channel_ = observer;
  }

  // Cumulative speculation counters (never reset; deltas are published to
  // the metrics registry at run end as spec.*).
  const SpecStats& spec_stats() const { return spec_stats_; }

  // The trainable branch predictor persists across runs on this Cpu —
  // that persistence is what lets an attacker train a victim's branch with
  // benign calls and then steer the mispredicted path.
  BranchPredictor& predictor() { return predictor_; }

  // Architectural state snapshot for checkpoint/restore
  // (src/supervise/checkpoint.h). Memory lives in the image; this is only
  // the per-Cpu register file.
  struct ArchState {
    uint64_t regs[kNumGpRegs] = {};
    uint64_t rip = 0;
    uint64_t rflags = 0;
    uint64_t bnd0_ub = 0;
  };
  ArchState SaveArch() const {
    ArchState s;
    for (int i = 0; i < kNumGpRegs; ++i) s.regs[i] = regs_[i];
    s.rip = rip_;
    s.rflags = rflags_.ToBits();
    s.bnd0_ub = bnd0_ub_;
    return s;
  }
  void RestoreArch(const ArchState& s) {
    for (int i = 0; i < kNumGpRegs; ++i) regs_[i] = s.regs[i];
    rip_ = s.rip;
    rflags_.FromBits(s.rflags);
    bnd0_ub_ = s.bnd0_ub;
  }

 private:
  // Specialized superblock instruction handlers (src/cpu/superblock/
  // sb_exec.cc); nested so they share the Cpu's private execution state.
  struct SbOps;

  RunResult CallFunctionImpl(uint64_t entry, const std::vector<uint64_t>& args,
                             const RunOptions& options);
  RunResult Run(const RunOptions& options, bool entered_via_call);
  RunResult RunInner(const RunOptions& options, bool entered_via_call);
  RunResult RunCached();
  // Superblock engine: chained dispatch loop and chain construction
  // (src/cpu/superblock/sb_exec.cc).
  RunResult RunSuperblocked();
  Superblock BuildSuperblock(uint64_t entry);
  // Run-end metrics/events: run + trap counters, block-cache stat deltas.
  void PublishRunTelemetry(const RunResult& result);
  // Executes one instruction the canonical way (fetch + decode + execute);
  // returns false if execution must stop (fills pending_).
  bool Step();
  // The fetch+decode half of Step (XnR-fault-servicing included).
  bool FetchDecode(Instruction* inst, uint8_t* inst_size);
  // The execute half: retires one decoded instruction at the current %rip.
  bool ExecuteInst(const Instruction& in, uint8_t inst_size);
  // Predecodes the straight-line block starting at `start` (may be empty).
  DecodedBlock BuildBlock(uint64_t start);

  uint64_t EffectiveAddress(const MemOperand& mem, uint64_t rip_next) const;
  bool DataRead64(uint64_t vaddr, uint64_t* value);
  bool DataWrite64(uint64_t vaddr, uint64_t value);
  void SetFlagsSub(uint64_t a, uint64_t b);
  void SetFlagsAdd(uint64_t a, uint64_t b);
  void SetFlagsLogic(uint64_t result);
  bool EvalCond(Cond c) const;
  void RaiseException(ExceptionKind kind, uint64_t addr);
  // Preempt request pending, or (when armed, sampled every 1024th step) the
  // run's wall-clock deadline passed.
  bool PreemptDue(uint64_t step);

  // Transient execution: simulates the wrong path starting at `wrong_rip`
  // against shadow register/memory state for up to spec.window_depth
  // instructions, recording touched data lines into the observer, then
  // discards everything. Architectural state is untouched by construction.
  void SpeculateWrongPath(uint64_t wrong_rip);

  KernelImage* image_;
  Mmu mmu_;
  CostModel cost_;
  CpuOptions options_;

  uint64_t regs_[kNumGpRegs] = {};
  uint64_t rip_ = 0;
  RFlags rflags_;
  uint64_t bnd0_ub_ = ~0ULL;

  uint64_t stack_base_ = 0;  // lowest address
  uint64_t stack_top_ = 0;   // initial %rsp

  // Run bookkeeping.
  RunResult pending_;
  bool stopped_ = false;
  uint64_t max_steps_ = 0;  // current run's budget; also bounds rep iterations
  std::string init_error_;
  uint64_t krx_handler_lo_ = 0;
  uint64_t krx_handler_hi_ = 0;
  std::function<void(const Cpu&)> step_observer_;
  QuiesceGate* quiesce_gate_ = nullptr;
  std::atomic<uint64_t>* sample_pc_slot_ = nullptr;
  std::atomic<uint64_t>* heartbeat_slot_ = nullptr;
  std::atomic<bool> preempt_{false};
  bool deadline_armed_ = false;  // current run only
  std::chrono::steady_clock::time_point deadline_{};
  BlockCache cache_;
  // Block-cache stats already published to the metrics registry; the
  // per-run delta is what gets added (stats are cumulative per Cpu).
  BlockCacheStats published_cache_stats_;
  SuperblockCache sb_cache_;
  // The superblock the dispatch loop is currently walking — the handlers'
  // route to its inline TLB. Null outside RunSuperblocked.
  Superblock* sb_current_ = nullptr;
  // Same published-delta discipline as the block-cache stats above.
  SuperblockStats published_sb_stats_;

  // Transient-execution engine state (src/spec). The predictor and stats
  // are cumulative per Cpu; the observer is externally owned.
  BranchPredictor predictor_;
  SideChannelObserver* side_channel_ = nullptr;
  SpecStats spec_stats_;
  SpecStats published_spec_stats_;
};

}  // namespace krx

#endif  // KRX_SRC_CPU_CPU_H_
