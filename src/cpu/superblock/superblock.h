// Superblock translate-and-chain execution engine — the third krx64 engine,
// one step past the predecoded block cache (src/cpu/block_cache.h).
//
// Where the block cache replays one straight-line block per dispatch and
// returns to a hash lookup at every control transfer, a superblock chains
// basic blocks across statically known transfers (jmp/call rel32, the
// fall-through of a length-split block) and across *predicted* conditional
// branches (backward-taken/forward-not-taken). Each chained transfer carries
// the predicted successor %rip; at run time a one-compare guard
// (`rip_ != expected_next`) detects a misprediction and exits the chain, so
// execution is bit-identical to the single-step interpreter by construction.
// A conditional branch whose predicted edge targets an earlier block of the
// same superblock closes an internal loop edge: inner loops iterate entirely
// inside one superblock with zero per-iteration lookups.
//
// Each superblock additionally carries:
//  - a per-instruction handler pointer (function-pointer-table dispatch):
//    the hottest ops (SFI cmp/ja and mask clamps, mov rr/ri/load/store,
//    call/ret, the xkey RA xor) retire through specialized handlers with
//    precomputed costs; everything else falls back to the generic
//    fetchless ExecuteInst path;
//  - an inline MMU translation cache (SbTlb): direct-mapped per-superblock
//    entries mapping a virtual page to its data-view physical base,
//    validated on every hit against the PageTable's atomic page-generation
//    counter — so rerand epochs, module load/unload, XnR residency flips
//    and checkpoint restores invalidate exactly the stale translations.
//
// Invalidation mirrors the block cache: entries are tagged with the image
// text generation and flushed wholesale on mismatch; the dispatcher
// re-checks the generation after every retired instruction so guest SMC
// never replays stale predecode mid-chain.
#ifndef KRX_SRC_CPU_SUPERBLOCK_SUPERBLOCK_H_
#define KRX_SRC_CPU_SUPERBLOCK_SUPERBLOCK_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/isa/instruction.h"
#include "src/mem/phys_mem.h"

namespace krx {

class Cpu;
struct SbInst;

// Retires one predecoded instruction (accounting included). Returns false
// when the run must stop — the handler has filled Cpu::pending_.
using SbHandler = bool (*)(Cpu&, const SbInst&);

// Chain-exit successor index.
inline constexpr int32_t kSbExit = -1;

// Construction budgets: a superblock chains at most this many basic blocks
// / total instructions. Correctness is unaffected by the caps — execution
// falling off the end of a chain re-enters the dispatcher at the next %rip.
inline constexpr size_t kMaxSuperblockBlocks = 16;
inline constexpr size_t kMaxSuperblockInsts = 256;

// One predecoded + scheduled instruction of a superblock.
struct SbInst {
  Instruction inst;
  uint8_t size = 0;
  // True after the last instruction of each chained basic block: the
  // dispatcher validates the chain guard and samples preempt/deadline there
  // (at least once per chained block, same cadence as RunCached).
  bool end_of_block = false;
  // Retired through a specialized handler (vs the generic ExecuteInst
  // fallback) — the fastpath-share telemetry.
  bool fast = false;
  uint64_t rip = 0;       // address of this instruction
  uint64_t rip_next = 0;  // rip + size (fall-through)
  // Predicted %rip after this instruction retires (only meaningful when
  // end_of_block and next != kSbExit): the chain guard compares the actual
  // %rip against it. For jmp/call rel32 this is the exact static target.
  uint64_t expected_next = 0;
  // Index of the successor SbInst when the guard holds; kSbExit leaves the
  // superblock. A backward index is an internal loop edge.
  int32_t next = kSbExit;
  // Precomputed deci-cycle cost (including the rip-relative-load special
  // case) — consumed by the specialized handlers; the generic fallback
  // recomputes it inside ExecuteInst.
  uint32_t cost = 0;
  SbHandler handler = nullptr;
};

// Inline MMU translation cache entry: virtual page -> data-view physical
// page base, tagged with the page generation it was filled under.
struct SbTlbEntry {
  uint64_t vpage = ~0ULL;
  uint64_t page_gen = 0;
  uint64_t paddr_base = 0;  // (data) frame << kPageShift
  bool writable = false;
  // The frame backs executable pages: a store through this entry is
  // (possibly synonym-mediated) self-modification and must bump the image
  // text generation, exactly like Cpu::DataWrite64.
  bool aliases_code = false;
};

inline constexpr size_t kSbTlbEntries = 8;  // direct-mapped, per superblock

struct SbTlb {
  SbTlbEntry entries[kSbTlbEntries];

  SbTlbEntry& EntryFor(uint64_t vaddr) {
    return entries[(vaddr >> kPageShift) & (kSbTlbEntries - 1)];
  }
};

struct SuperblockStats {
  uint64_t chains_built = 0;    // superblocks constructed
  uint64_t blocks_chained = 0;  // basic blocks folded into chains
  uint64_t predecoded_insts = 0;
  uint64_t entries = 0;         // superblock dispatches
  uint64_t chain_breaks = 0;    // guard mispredicts (chain left early)
  uint64_t flushes = 0;         // wholesale invalidations (text generation)
  uint64_t executed_insts = 0;  // instructions retired through superblocks
  uint64_t fastpath_insts = 0;  // ... through specialized handlers
  uint64_t tlb_hits = 0;        // inline-TLB data accesses served
  uint64_t tlb_misses = 0;      // fills + canonical-path fallbacks

  double fastpath_share() const {
    return executed_insts == 0
               ? 0.0
               : static_cast<double>(fastpath_insts) / static_cast<double>(executed_insts);
  }
  double tlb_hit_rate() const {
    const uint64_t total = tlb_hits + tlb_misses;
    return total == 0 ? 0.0 : static_cast<double>(tlb_hits) / static_cast<double>(total);
  }
};

struct Superblock {
  uint64_t entry = 0;
  uint32_t blocks = 0;  // basic blocks chained in
  std::vector<SbInst> insts;
  SbTlb tlb;
  // Per-entry-point usage counters, aggregated by symbol extent for the
  // per-function chain/fastpath tables (krx_trace top, krx_objdump --stats).
  uint64_t entered = 0;
  uint64_t total_insts = 0;
  uint64_t fast_insts = 0;
};

// Owned by a single Cpu, like the BlockCache (no internal locking;
// cross-thread invalidation rides on the image's atomic text generation and
// the page table's atomic page generation).
class SuperblockCache {
 public:
  // Returns the superblock entered at `rip`, or nullptr on a miss. A
  // generation mismatch drops every entry (and its inline TLB) first.
  Superblock* Lookup(uint64_t rip, uint64_t generation);

  // Inserts a freshly built superblock and returns its stable address.
  Superblock* Insert(Superblock sb);

  void Flush();
  size_t size() const { return blocks_.size(); }
  const std::unordered_map<uint64_t, std::unique_ptr<Superblock>>& entries() const {
    return blocks_;
  }
  SuperblockStats& stats() { return stats_; }
  const SuperblockStats& stats() const { return stats_; }

 private:
  // unique_ptr values: Superblock addresses stay stable across rehashes
  // (the dispatcher holds one across an entire chain walk).
  std::unordered_map<uint64_t, std::unique_ptr<Superblock>> blocks_;
  uint64_t generation_ = 0;
  SuperblockStats stats_;
};

}  // namespace krx

#endif  // KRX_SRC_CPU_SUPERBLOCK_SUPERBLOCK_H_
