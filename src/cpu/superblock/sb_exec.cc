// Superblock engine: chain construction, the chained dispatch loop, and the
// specialized per-opcode handlers (Cpu::SbOps).
//
// Bit-identicality discipline: every fast handler is a line-for-line replica
// of the matching ExecuteInst case — same accounting prologue (instruction
// count, mix bucket, deci-cycle cost), same fault ordering (e.g. the push
// %rsp decrement persists when the store faults), same retirement epilogue
// (stopped check, %rip update, profiler/heartbeat slot stores). The step
// observer is never consulted: installing one makes the run ineligible for
// this engine, exactly as for the block cache. Anything without a fast
// handler retires through Generic, which delegates wholesale to ExecuteInst
// (which does its own accounting — the dispatcher accounts nothing).
#include "src/cpu/cpu.h"

namespace krx {

// Specialized handlers. A nested struct (not a namespace) so the handlers
// see Cpu's private state without widening its public surface.
struct Cpu::SbOps {
  // Accounting prologue shared by the fast handlers: the mix bucket is a
  // compile-time member pointer (the opcode is known per handler) and the
  // deci-cycle cost was precomputed at build time (including the
  // rip-relative-load special case).
  template <uint64_t InstMix::*Bucket>
  static void Account(Cpu& c, const SbInst& si) {
    ++c.pending_.instructions;
    ++(c.pending_.mix.*Bucket);
    c.pending_.deci_cycles += si.cost;
  }

  // Retirement epilogue, identical to the tail of ExecuteInst (minus the
  // step observer, which forces single-step and is null here).
  static bool Retire(Cpu& c, uint64_t next) {
    if (c.stopped_) {
      return false;
    }
    c.rip_ = next;
    if (c.sample_pc_slot_ != nullptr) {
      c.sample_pc_slot_->store(next, std::memory_order_relaxed);
    }
    if (c.heartbeat_slot_ != nullptr) {
      c.heartbeat_slot_->store(c.pending_.instructions, std::memory_order_relaxed);
    }
    return true;
  }

  // goto_target's sentinel arm: control transferred to the harness sentinel.
  static bool ReturnToHost(Cpu& c) {
    c.pending_.reason = StopReason::kReturned;
    c.pending_.rax = c.regs_[RegIndex(Reg::kRax)];
    c.stopped_ = true;
    return false;
  }

  // Fills a direct-mapped TLB slot for the page containing `vaddr`.
  // `gen` must have been read from the page table *before* the Lookup: a
  // concurrent remap between the two then leaves the entry conservatively
  // stale (it revalidates against the newer generation and misses) instead
  // of dangerously fresh. User pages are never cached — the canonical path
  // owns SMAP fault semantics.
  static bool FillTlb(Cpu& c, SbTlbEntry& e, uint64_t vaddr, uint64_t gen) {
    const Pte* pte = c.image_->page_table().Lookup(vaddr);
    if (pte == nullptr || !pte->flags.present || pte->flags.user) {
      return false;
    }
    const uint64_t frame = pte->has_data_frame ? pte->data_frame : pte->frame;
    e.vpage = vaddr >> kPageShift;
    e.page_gen = gen;
    e.paddr_base = frame << kPageShift;
    e.writable = pte->flags.writable;
    // Page-granular and exact for in-page accesses: vaddr and vaddr+7 share
    // the page, so DataWrite64's VaddrAliasesCode(vaddr) answer is a
    // property of the page alone.
    e.aliases_code = c.image_->VaddrAliasesCode(PageFloor(vaddr), 1);
    return true;
  }

  // 8-byte data read through the inline TLB. Page-crossing accesses and
  // uncacheable/unmapped pages take Cpu::DataRead64, which owns the exact
  // fault semantics (and the XnR/destructive hooks, both disabled under
  // superblock eligibility).
  static bool ReadMem(Cpu& c, uint64_t vaddr, uint64_t* value) {
    if (PageOffset(vaddr) + 8 <= kPageSize) {
      SbTlbEntry& e = c.sb_current_->tlb.EntryFor(vaddr);
      const uint64_t gen = c.image_->page_table().generation();
      const bool valid = e.vpage == (vaddr >> kPageShift) && e.page_gen == gen;
      if (valid || FillTlb(c, e, vaddr, gen)) {
        ++(valid ? c.sb_cache_.stats().tlb_hits : c.sb_cache_.stats().tlb_misses);
        *value = c.image_->phys().Read64(e.paddr_base | PageOffset(vaddr));
        return true;
      }
    }
    ++c.sb_cache_.stats().tlb_misses;
    return c.DataRead64(vaddr, value);
  }

  // 8-byte data write through the inline TLB. A hit on a read-only page
  // falls back so the write-protect #PF surfaces exactly as uncached; a hit
  // on a code-aliasing page bumps the text generation, exactly like
  // Cpu::DataWrite64 (the SMC hook the dispatcher's mid-chain generation
  // re-check depends on).
  static bool WriteMem(Cpu& c, uint64_t vaddr, uint64_t value) {
    if (PageOffset(vaddr) + 8 <= kPageSize) {
      SbTlbEntry& e = c.sb_current_->tlb.EntryFor(vaddr);
      const uint64_t gen = c.image_->page_table().generation();
      const bool valid = e.vpage == (vaddr >> kPageShift) && e.page_gen == gen;
      if ((valid || FillTlb(c, e, vaddr, gen)) && e.writable) {
        ++(valid ? c.sb_cache_.stats().tlb_hits : c.sb_cache_.stats().tlb_misses);
        c.image_->phys().Write64(e.paddr_base | PageOffset(vaddr), value);
        if (e.aliases_code) {
          c.image_->BumpTextGeneration();
        }
        return true;
      }
    }
    ++c.sb_cache_.stats().tlb_misses;
    return c.DataWrite64(vaddr, value);
  }

  static uint64_t& R(Cpu& c, Reg r) { return c.regs_[RegIndex(r)]; }

  // --- Fast handlers (hottest ops by bench instruction mix) ---

  static bool Nop(Cpu& c, const SbInst& si) {
    Account<&InstMix::other>(c, si);
    return Retire(c, si.rip_next);
  }

  static bool MovRR(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    R(c, si.inst.r1) = R(c, si.inst.r2);
    return Retire(c, si.rip_next);
  }

  static bool MovRI(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    R(c, si.inst.r1) = static_cast<uint64_t>(si.inst.imm);
    return Retire(c, si.rip_next);
  }

  static bool Lea(Cpu& c, const SbInst& si) {
    Account<&InstMix::lea>(c, si);
    R(c, si.inst.r1) = c.EffectiveAddress(si.inst.mem, si.rip_next);
    return Retire(c, si.rip_next);
  }

  static bool Load(Cpu& c, const SbInst& si) {
    Account<&InstMix::loads>(c, si);
    uint64_t v;
    if (ReadMem(c, c.EffectiveAddress(si.inst.mem, si.rip_next), &v)) {
      R(c, si.inst.r1) = v;
    }
    return Retire(c, si.rip_next);
  }

  static bool Store(Cpu& c, const SbInst& si) {
    Account<&InstMix::stores>(c, si);
    WriteMem(c, c.EffectiveAddress(si.inst.mem, si.rip_next), R(c, si.inst.r1));
    return Retire(c, si.rip_next);
  }

  static bool StoreImm(Cpu& c, const SbInst& si) {
    Account<&InstMix::stores>(c, si);
    WriteMem(c, c.EffectiveAddress(si.inst.mem, si.rip_next),
             static_cast<uint64_t>(si.inst.imm));
    return Retire(c, si.rip_next);
  }

  static bool PushR(Cpu& c, const SbInst& si) {
    Account<&InstMix::pushpop>(c, si);
    // The %rsp decrement persists when the store faults (ExecuteInst order).
    R(c, Reg::kRsp) -= 8;
    WriteMem(c, R(c, Reg::kRsp), R(c, si.inst.r1));
    return Retire(c, si.rip_next);
  }

  static bool PopR(Cpu& c, const SbInst& si) {
    Account<&InstMix::pushpop>(c, si);
    uint64_t v;
    if (ReadMem(c, R(c, Reg::kRsp), &v)) {
      R(c, si.inst.r1) = v;
      R(c, Reg::kRsp) += 8;
    }
    return Retire(c, si.rip_next);
  }

  static bool AddRR(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    c.SetFlagsAdd(R(c, si.inst.r1), R(c, si.inst.r2));
    R(c, si.inst.r1) += R(c, si.inst.r2);
    return Retire(c, si.rip_next);
  }

  static bool AddRI(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    c.SetFlagsAdd(R(c, si.inst.r1), static_cast<uint64_t>(si.inst.imm));
    R(c, si.inst.r1) += static_cast<uint64_t>(si.inst.imm);
    return Retire(c, si.rip_next);
  }

  static bool SubRR(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    c.SetFlagsSub(R(c, si.inst.r1), R(c, si.inst.r2));
    R(c, si.inst.r1) -= R(c, si.inst.r2);
    return Retire(c, si.rip_next);
  }

  static bool SubRI(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    c.SetFlagsSub(R(c, si.inst.r1), static_cast<uint64_t>(si.inst.imm));
    R(c, si.inst.r1) -= static_cast<uint64_t>(si.inst.imm);
    return Retire(c, si.rip_next);
  }

  static bool CmpRR(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    c.SetFlagsSub(R(c, si.inst.r1), R(c, si.inst.r2));
    return Retire(c, si.rip_next);
  }

  // The SFI range-check compare (cmp %reg, $_krx_edata).
  static bool CmpRI(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    c.SetFlagsSub(R(c, si.inst.r1), static_cast<uint64_t>(si.inst.imm));
    return Retire(c, si.rip_next);
  }

  static bool TestRR(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    c.SetFlagsLogic(R(c, si.inst.r1) & R(c, si.inst.r2));
    return Retire(c, si.rip_next);
  }

  // The O2/O3 SFI address-mask clamp.
  static bool MaskRI(Cpu& c, const SbInst& si) {
    Account<&InstMix::alu>(c, si);
    const uint64_t v = R(c, si.inst.r1);
    R(c, si.inst.r1) = v > static_cast<uint64_t>(si.inst.imm) ? 0 : v;
    return Retire(c, si.rip_next);
  }

  // The MPX bounds check.
  static bool Bndcu(Cpu& c, const SbInst& si) {
    Account<&InstMix::bndcu>(c, si);
    const uint64_t ea = c.EffectiveAddress(si.inst.mem, si.rip_next);
    if (ea > c.bnd0_ub_) {
      c.RaiseException(ExceptionKind::kBoundRange, ea);
    }
    return Retire(c, si.rip_next);
  }

  // The SFI check's ja-to-handler (and every other conditional branch).
  // Spec-window interplay needs no replica: speculation forces single-step.
  static bool Jcc(Cpu& c, const SbInst& si) {
    Account<&InstMix::branches>(c, si);
    uint64_t next = si.rip_next;
    if (c.EvalCond(si.inst.cond)) {
      const uint64_t target = si.rip_next + static_cast<uint64_t>(si.inst.imm);
      if (target == kReturnSentinel) {
        return ReturnToHost(c);
      }
      next = target;
    }
    return Retire(c, next);
  }

  static bool JmpRel(Cpu& c, const SbInst& si) {
    Account<&InstMix::jumps>(c, si);
    const uint64_t target = si.rip_next + static_cast<uint64_t>(si.inst.imm);
    if (target == kReturnSentinel) {
      return ReturnToHost(c);
    }
    return Retire(c, target);
  }

  static bool CallRel(Cpu& c, const SbInst& si) {
    Account<&InstMix::calls>(c, si);
    R(c, Reg::kRsp) -= 8;
    if (!WriteMem(c, R(c, Reg::kRsp), si.rip_next)) {
      return Retire(c, si.rip_next);  // stopped_: surfaces the fault
    }
    const uint64_t target = si.rip_next + static_cast<uint64_t>(si.inst.imm);
    if (target == kReturnSentinel) {
      return ReturnToHost(c);
    }
    return Retire(c, target);
  }

  // Return — including the xkey-decoded variety: under -fret-xkey the
  // decode is a separate kXorMR on (%rsp) retired just before this.
  static bool Ret(Cpu& c, const SbInst& si) {
    Account<&InstMix::rets>(c, si);
    uint64_t v;
    if (!ReadMem(c, R(c, Reg::kRsp), &v)) {
      return Retire(c, si.rip_next);  // stopped_: surfaces the fault
    }
    R(c, Reg::kRsp) += 8;
    if (v == kReturnSentinel) {
      return ReturnToHost(c);
    }
    return Retire(c, v);
  }

  // The xkey return-address encode/decode (xor %key, (%rsp)): a
  // read-modify-write, so it accounts a load and a store.
  static bool XorMR(Cpu& c, const SbInst& si) {
    ++c.pending_.instructions;
    ++c.pending_.mix.loads;
    ++c.pending_.mix.stores;
    c.pending_.deci_cycles += si.cost;
    const uint64_t ea = c.EffectiveAddress(si.inst.mem, si.rip_next);
    uint64_t v;
    if (ReadMem(c, ea, &v)) {
      v ^= R(c, si.inst.r1);
      c.SetFlagsLogic(v);
      WriteMem(c, ea, v);
    }
    return Retire(c, si.rip_next);
  }

  // Everything else: delegate to the canonical decoded-execute path, which
  // does its own accounting and retirement (the dispatcher adds nothing).
  static bool Generic(Cpu& c, const SbInst& si) {
    return c.ExecuteInst(si.inst, si.size);
  }

  static SbHandler HandlerFor(Opcode op) {
    switch (op) {
      case Opcode::kNop: return &Nop;
      case Opcode::kMovRR: return &MovRR;
      case Opcode::kMovRI: return &MovRI;
      case Opcode::kLea: return &Lea;
      case Opcode::kLoad: return &Load;
      case Opcode::kStore: return &Store;
      case Opcode::kStoreImm: return &StoreImm;
      case Opcode::kPushR: return &PushR;
      case Opcode::kPopR: return &PopR;
      case Opcode::kAddRR: return &AddRR;
      case Opcode::kAddRI: return &AddRI;
      case Opcode::kSubRR: return &SubRR;
      case Opcode::kSubRI: return &SubRI;
      case Opcode::kCmpRR: return &CmpRR;
      case Opcode::kCmpRI: return &CmpRI;
      case Opcode::kTestRR: return &TestRR;
      case Opcode::kMaskRI: return &MaskRI;
      case Opcode::kBndcu: return &Bndcu;
      case Opcode::kJcc: return &Jcc;
      case Opcode::kJmpRel: return &JmpRel;
      case Opcode::kCallRel: return &CallRel;
      case Opcode::kRet: return &Ret;
      case Opcode::kXorMR: return &XorMR;
      default: return &Generic;
    }
  }
};

// Chains predecoded basic blocks starting at `entry`. Chain continuation:
//  - jmp/call rel32: always, to the exact static target;
//  - jcc: the BTFN-predicted direction (backward displacement => taken) —
//    the static heuristic that makes loop back-edges chain;
//  - a block split by the predecode length cap: its fall-through;
//  - indirect transfers, ret, traps: never (the chain exits).
// A predicted edge landing on an already-chained block start becomes an
// internal loop edge (the superblock's whole point); anything else appends
// the target block, within the block/instruction budgets.
Superblock Cpu::BuildSuperblock(uint64_t entry) {
  Superblock sb;
  sb.entry = entry;
  // Block start rip -> index of its first SbInst, for closing loop edges.
  std::unordered_map<uint64_t, int32_t> starts;
  uint64_t rip = entry;
  while (sb.blocks < kMaxSuperblockBlocks) {
    DecodedBlock block = BuildBlock(rip);
    if (block.insts.empty() ||
        sb.insts.size() + block.insts.size() > kMaxSuperblockInsts) {
      break;
    }
    starts.emplace(rip, static_cast<int32_t>(sb.insts.size()));
    ++sb.blocks;
    uint64_t r = rip;
    for (const PredecodedInst& pi : block.insts) {
      SbInst si;
      si.inst = pi.inst;
      si.size = pi.size;
      si.rip = r;
      si.rip_next = r + pi.size;
      si.cost = (pi.inst.op == Opcode::kLoad && pi.inst.mem.rip_relative)
                    ? cost_.load_riprel
                    : cost_.CostOf(pi.inst.op);
      si.handler = SbOps::HandlerFor(pi.inst.op);
      si.fast = si.handler != &SbOps::Generic;
      si.next = static_cast<int32_t>(sb.insts.size()) + 1;  // straight-line
      sb.insts.push_back(si);
      r = si.rip_next;
    }
    SbInst& last = sb.insts.back();
    last.end_of_block = true;
    const Instruction& in = last.inst;
    uint64_t target = 0;
    bool chain = false;
    if (in.op == Opcode::kJmpRel || in.op == Opcode::kCallRel) {
      target = last.rip_next + static_cast<uint64_t>(in.imm);
      chain = true;
    } else if (in.op == Opcode::kJcc) {
      target = in.imm < 0 ? last.rip_next + static_cast<uint64_t>(in.imm)
                          : last.rip_next;
      chain = true;
    } else if (!EndsBlock(in.op)) {
      target = last.rip_next;  // length-split block: chain its fall-through
      chain = true;
    }
    if (!chain || target == kReturnSentinel) {
      last.next = kSbExit;
      break;
    }
    last.expected_next = target;
    if (auto it = starts.find(target); it != starts.end()) {
      last.next = it->second;  // internal loop edge
      break;
    }
    last.next = static_cast<int32_t>(sb.insts.size());  // appended next
    rip = target;
  }
  // A budget-terminated construction leaves the final transfer pointing one
  // past the end; it exits the chain instead.
  if (!sb.insts.empty()) {
    SbInst& last = sb.insts.back();
    if (last.next == static_cast<int32_t>(sb.insts.size())) {
      last.next = kSbExit;
    }
    last.end_of_block = true;
  }
  return sb;
}

// The chained dispatch loop. Contracts mirrored from RunCached:
//  - krx_handler extent checked at every instruction's %rip (violation
//    latching must not depend on the engine);
//  - step budget counted per retired instruction (rep iterations are
//    bounded inside ExecuteInst, as everywhere);
//  - preempt/deadline sampled at the top (superblock entry) and at every
//    chain continuation — at least once per chained block;
//  - the image text generation is re-checked after every retired
//    instruction; a mid-chain bump (guest SMC, a module load triggered by
//    the run) abandons the stale predecode and re-looks-up, which flushes;
//  - unfetchable/undecodable bytes at %rip take one canonical Step() so the
//    fault surfaces exactly as single-stepped.
RunResult Cpu::RunSuperblocked() {
  SuperblockStats& st = sb_cache_.stats();
  uint64_t steps = 0;
  while (steps < max_steps_) {
    if (PreemptDue(0)) {
      pending_.reason = StopReason::kDeadlineExceeded;
      return pending_;
    }
    const uint64_t generation = image_->text_generation();
    Superblock* sb = sb_cache_.Lookup(rip_, generation);
    if (sb == nullptr) {
      Superblock built = BuildSuperblock(rip_);
      if (built.insts.empty()) {
        if (!Step()) {
          return pending_;
        }
        ++steps;
        continue;
      }
      sb = sb_cache_.Insert(std::move(built));
    }
    ++st.entries;
    ++sb->entered;
    sb_current_ = sb;
    int32_t i = 0;
    bool stop = false;
    while (steps < max_steps_) {
      const SbInst& si = sb->insts[static_cast<size_t>(i)];
      if (krx_handler_lo_ != 0 && rip_ >= krx_handler_lo_ && rip_ < krx_handler_hi_) {
        pending_.krx_violation = true;
      }
      ++steps;
      ++st.executed_insts;
      ++sb->total_insts;
      if (si.fast) {
        ++st.fastpath_insts;
        ++sb->fast_insts;
      }
      if (!si.handler(*this, si)) {
        stop = true;
        break;
      }
      if (image_->text_generation() != generation) {
        break;  // predecode went stale mid-chain; re-lookup flushes
      }
      if (!si.end_of_block) {
        ++i;
        continue;
      }
      if (si.next == kSbExit) {
        break;
      }
      if (rip_ != si.expected_next) {
        ++st.chain_breaks;  // guard mispredict: leave the chain
        break;
      }
      if (PreemptDue(0)) {  // chain continuation: block-boundary cadence
        pending_.reason = StopReason::kDeadlineExceeded;
        sb_current_ = nullptr;
        return pending_;
      }
      i = si.next;
    }
    sb_current_ = nullptr;
    if (stop) {
      return pending_;
    }
  }
  pending_.reason = StopReason::kStepLimit;
  return pending_;
}

}  // namespace krx
