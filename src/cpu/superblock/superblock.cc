#include "src/cpu/superblock/superblock.h"

#include "src/telemetry/telemetry.h"

namespace krx {

Superblock* SuperblockCache::Lookup(uint64_t rip, uint64_t generation) {
  if (generation != generation_) {
    if (!blocks_.empty()) {
      blocks_.clear();
      ++stats_.flushes;
      KRX_TRACE_EVENT(kSuperblockFlush, "superblock_flush", generation, 0);
    }
    generation_ = generation;
  }
  auto it = blocks_.find(rip);
  if (it == blocks_.end()) {
    return nullptr;
  }
  return it->second.get();
}

Superblock* SuperblockCache::Insert(Superblock sb) {
  ++stats_.chains_built;
  stats_.blocks_chained += sb.blocks;
  stats_.predecoded_insts += sb.insts.size();
  KRX_TRACE_EVENT(kSuperblockBuild, "superblock_build", sb.entry, sb.insts.size());
  uint64_t entry = sb.entry;
  auto [it, inserted] =
      blocks_.insert_or_assign(entry, std::make_unique<Superblock>(std::move(sb)));
  (void)inserted;
  return it->second.get();
}

void SuperblockCache::Flush() {
  if (!blocks_.empty()) {
    blocks_.clear();
    ++stats_.flushes;
    KRX_TRACE_EVENT(kSuperblockFlush, "superblock_flush", 0, 0);
  }
}

}  // namespace krx
