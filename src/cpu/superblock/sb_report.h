// Per-function attribution of superblock usage — the reporting side of the
// translate-and-chain engine, shared by the telemetry tools (`krx_trace top`
// and `krx_objdump --stats`).
//
// A SuperblockCache keys chains by entry %rip; every chain rooted inside a
// function symbol's extent attributes its usage counters (dispatches,
// retired instructions, fastpath retirements) to that function. Chains
// rooted outside any defined function symbol are collapsed into one
// "<unattributed>" row so the totals stay honest.
#ifndef KRX_SRC_CPU_SUPERBLOCK_SB_REPORT_H_
#define KRX_SRC_CPU_SUPERBLOCK_SB_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/superblock/superblock.h"
#include "src/kernel/object.h"

namespace krx {

struct SbFunctionUsage {
  std::string name;
  uint64_t chains = 0;   // distinct superblocks rooted in the function
  uint64_t entered = 0;  // chain dispatches
  uint64_t insts = 0;    // instructions retired through those chains
  uint64_t fast = 0;     // ... via the specialized fastpath handlers

  double fast_share() const {
    return insts == 0 ? 0.0 : static_cast<double>(fast) / static_cast<double>(insts);
  }
};

// Buckets every cached superblock by the defined function symbol whose
// extent contains its entry address. Rows are sorted by retired
// instructions, descending (ties by name), so the hottest chained
// functions lead the table.
std::vector<SbFunctionUsage> AggregateSuperblocksBySymbol(const SuperblockCache& cache,
                                                          const SymbolTable& symbols);

}  // namespace krx

#endif  // KRX_SRC_CPU_SUPERBLOCK_SB_REPORT_H_
