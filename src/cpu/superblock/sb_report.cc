#include "src/cpu/superblock/sb_report.h"

#include <algorithm>
#include <map>

namespace krx {

std::vector<SbFunctionUsage> AggregateSuperblocksBySymbol(const SuperblockCache& cache,
                                                          const SymbolTable& symbols) {
  // Extent table once, not a symbol scan per chain: sorted by start address
  // so each entry resolves with one upper_bound probe.
  struct Extent {
    uint64_t lo, hi;
    const std::string* name;
  };
  std::vector<Extent> extents;
  for (size_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols.at(static_cast<int32_t>(i));
    if (!sym.defined || sym.kind != SymbolKind::kFunction || sym.size == 0) {
      continue;
    }
    extents.push_back({sym.address, sym.address + sym.size, &sym.name});
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.lo < b.lo; });

  std::map<std::string, SbFunctionUsage> by_fn;
  for (const auto& [entry, sb] : cache.entries()) {
    static const std::string kUnattributed = "<unattributed>";
    const std::string* name = &kUnattributed;
    auto it = std::upper_bound(
        extents.begin(), extents.end(), entry,
        [](uint64_t addr, const Extent& e) { return addr < e.lo; });
    if (it != extents.begin() && entry < std::prev(it)->hi) {
      name = std::prev(it)->name;
    }
    SbFunctionUsage& u = by_fn[*name];
    u.name = *name;
    ++u.chains;
    u.entered += sb->entered;
    u.insts += sb->total_insts;
    u.fast += sb->fast_insts;
  }

  std::vector<SbFunctionUsage> rows;
  rows.reserve(by_fn.size());
  for (auto& [name, usage] : by_fn) {
    rows.push_back(std::move(usage));
  }
  std::sort(rows.begin(), rows.end(), [](const SbFunctionUsage& a, const SbFunctionUsage& b) {
    return a.insts != b.insts ? a.insts > b.insts : a.name < b.name;
  });
  return rows;
}

}  // namespace krx
