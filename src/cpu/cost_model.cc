#include "src/cpu/cost_model.h"

namespace krx {

uint64_t CostModel::CostOf(Opcode op) const {
  switch (op) {
    case Opcode::kNop:
      return nop;
    case Opcode::kHlt:
      return hlt;
    case Opcode::kInt3:
    case Opcode::kUd2:
      return int3;
    case Opcode::kMovRR:
    case Opcode::kMovRI:
    case Opcode::kAddRR:
    case Opcode::kAddRI:
    case Opcode::kSubRR:
    case Opcode::kSubRI:
    case Opcode::kAndRR:
    case Opcode::kAndRI:
    case Opcode::kOrRR:
    case Opcode::kOrRI:
    case Opcode::kXorRR:
    case Opcode::kXorRI:
    case Opcode::kShlRI:
    case Opcode::kShrRI:
    case Opcode::kCmpRR:
    case Opcode::kCmpRI:
    case Opcode::kTestRR:
      return alu;
    case Opcode::kImulRR:
      return imul;
    case Opcode::kLea:
      return lea;
    case Opcode::kLoad:
    case Opcode::kAddRM:
    case Opcode::kCmpRM:
    case Opcode::kCmpMI:
      return load;
    case Opcode::kStore:
    case Opcode::kStoreImm:
      return store;
    case Opcode::kXorMR:
      return rmw;
    case Opcode::kPushR:
      return push;
    case Opcode::kPopR:
      return pop;
    case Opcode::kPushfq:
      return pushfq;
    case Opcode::kPopfq:
      return popfq;
    case Opcode::kJcc:
      return branch;
    case Opcode::kJmpRel:
      return jmp;
    case Opcode::kJmpR:
    case Opcode::kJmpM:
      return indirect;
    case Opcode::kCallRel:
      return call;
    case Opcode::kCallR:
    case Opcode::kCallM:
      return indirect;
    case Opcode::kRet:
      return ret;
    case Opcode::kMovsq:
    case Opcode::kLodsq:
    case Opcode::kStosq:
    case Opcode::kCmpsq:
    case Opcode::kScasq:
      return string_setup;
    case Opcode::kBndcu:
      return bndcu;
    case Opcode::kLoadBnd0:
      return bnd_load;
    case Opcode::kSyscall:
    case Opcode::kSysret:
      return mode_switch / 2;
    case Opcode::kWrmsr:
      return wrmsr;
    case Opcode::kSpecFence:
      return spec_fence;
    case Opcode::kMaskRI:
      return alu;
    case Opcode::kNumOpcodes:
      break;
  }
  return alu;
}

}  // namespace krx
