// Predecoded basic-block cache — the trace-cache-style fast path of the
// krx64 interpreter.
//
// The uncached interpreter re-fetches and re-decodes the raw bytes of every
// retired instruction. The block cache decodes a straight-line run of
// instructions once (up to the first control transfer) and replays the
// predecoded micro-ops on every subsequent visit to the same %rip. Replay is
// bit-identical to single-stepping: execution, cost accounting and exception
// semantics go through the same Execute path; only the redundant
// fetch+decode work is elided.
//
// Invalidation contract: every entry is tagged with the KernelImage
// text-generation counter observed at decode time. The image bumps that
// counter on any event that can change fetched bytes or fetchability —
// host-side code pokes (module loader, fault injector, tests), section
// placement/removal (module load/unload), new executable mappings, and
// guest stores that land on a frame backing executable pages (self-modifying
// code through a physmap synonym). A generation mismatch flushes the cache
// wholesale on the next lookup; mid-block invalidation is handled by the
// interpreter, which re-checks the generation after every replayed store.
#ifndef KRX_SRC_CPU_BLOCK_CACHE_H_
#define KRX_SRC_CPU_BLOCK_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/isa/instruction.h"

namespace krx {

// One predecoded instruction: the decoded form plus its encoded length
// (needed to compute the fall-through %rip during replay).
struct PredecodedInst {
  Instruction inst;
  uint8_t size = 0;
};

// A straight-line run of predecoded instructions starting at `start`.
// Control-transfer instructions (and traps) only ever appear last.
struct DecodedBlock {
  uint64_t start = 0;
  std::vector<PredecodedInst> insts;
};

struct BlockCacheStats {
  uint64_t hits = 0;        // block lookups served from the cache
  uint64_t misses = 0;      // lookups that forced a fresh decode
  uint64_t flushes = 0;     // wholesale invalidations (generation changes)
  uint64_t decoded_insts = 0;   // instructions decoded into blocks
  uint64_t replayed_insts = 0;  // instructions executed from cached blocks
  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

// Owned by a single Cpu (one cache per interpreter; no internal locking —
// cross-thread invalidation rides on the image's atomic generation counter).
class BlockCache {
 public:
  // Returns the cached block starting at `rip`, or nullptr on a miss. If
  // `generation` differs from the generation the cache was filled under,
  // every entry is dropped first (stale predecode must never replay).
  const DecodedBlock* Lookup(uint64_t rip, uint64_t generation);

  // Inserts a freshly decoded block (its instructions were decoded under
  // `generation`, as passed to the preceding Lookup) and returns it.
  const DecodedBlock* Insert(DecodedBlock block);

  void Flush();
  size_t blocks() const { return blocks_.size(); }
  const BlockCacheStats& stats() const { return stats_; }
  void CountReplayed(uint64_t n) { stats_.replayed_insts += n; }

 private:
  std::unordered_map<uint64_t, DecodedBlock> blocks_;
  uint64_t generation_ = 0;
  BlockCacheStats stats_;
};

// True for opcodes that must terminate a predecoded block: control
// transfers (the next %rip is data-dependent) and trap-like instructions.
bool EndsBlock(Opcode op);

}  // namespace krx

#endif  // KRX_SRC_CPU_BLOCK_CACHE_H_
