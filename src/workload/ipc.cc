#include "src/workload/ipc.h"

#include "src/ir/builder.h"

namespace krx {
namespace {

struct RingSyms {
  int32_t ring;
  int32_t head;  // monotonically increasing write counter
  int32_t tail;  // monotonically increasing read counter
};

RingSyms InternRing(KernelSource* src, const std::string& prefix) {
  return RingSyms{
      src->symbols.Intern(prefix + "_ring", SymbolKind::kData),
      src->symbols.Intern(prefix + "_head", SymbolKind::kData),
      src->symbols.Intern(prefix + "_tail", SymbolKind::kData),
  };
}

void AddRingObjects(KernelSource* src, const std::string& prefix, int64_t qwords) {
  DataObject ring;
  ring.name = prefix + "_ring";
  ring.kind = SectionKind::kData;
  ring.bytes.assign(static_cast<size_t>(qwords) * 8, 0);
  src->data_objects.push_back(std::move(ring));
  for (const char* counter : {"_head", "_tail"}) {
    DataObject obj;
    obj.name = prefix + counter;
    obj.kind = SectionKind::kData;
    obj.bytes.assign(8, 0);
    src->data_objects.push_back(std::move(obj));
  }
}

// Emits the element-copy loop shared by the ring producers/consumers:
//   for (i = 0; i < count; ++i)
//     {ring[(counter+i) & mask] = src[i]}  or  {dst[i] = ring[(counter+i) & mask]}
// Registers: rax = i (clobbered), rcx = counter value, rsi = count,
// rdi = user buffer, rbx/r8/rdx scratch.
void EmitRingCopy(FunctionBuilder& b, int32_t ring_sym, int64_t mask, bool to_ring) {
  const int32_t loop = b.ReserveBlock();
  const int32_t done = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Bind(loop);
  b.Emit(Instruction::CmpRR(Reg::kRax, Reg::kRsi));
  b.Emit(Instruction::JccBlock(Cond::kE, done));
  b.Emit(Instruction::MovRR(Reg::kR8, Reg::kRcx));
  b.Emit(Instruction::AddRR(Reg::kR8, Reg::kRax));
  b.Emit(Instruction::AndRI(Reg::kR8, mask));
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(ring_sym)));
  if (to_ring) {
    b.Emit(Instruction::Load(Reg::kRdx, MemOperand::BaseIndex(Reg::kRdi, Reg::kRax, 8, 0)));
    b.Emit(Instruction::Store(MemOperand::BaseIndex(Reg::kRbx, Reg::kR8, 8, 0), Reg::kRdx));
  } else {
    b.Emit(Instruction::Load(Reg::kRdx, MemOperand::BaseIndex(Reg::kRbx, Reg::kR8, 8, 0)));
    b.Emit(Instruction::Store(MemOperand::BaseIndex(Reg::kRdi, Reg::kRax, 8, 0), Reg::kRdx));
  }
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Emit(Instruction::JmpBlock(loop));
  b.Bind(done);
}

// pipe_write(src=rdi, qwords=rsi) / pipe_read(dst=rdi, qwords=rsi).
void EmitPipeEnd(KernelSource* src, const RingSyms& syms, bool writer) {
  FunctionBuilder b(writer ? "pipe_write" : "pipe_read");
  const int32_t fail = b.ReserveBlock();
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(syms.head)));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::RipRelSym(syms.tail)));
  if (writer) {
    // free = capacity - (head - tail); fail if free < qwords.
    b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRcx));
    b.Emit(Instruction::SubRR(Reg::kRax, Reg::kRdx));
    b.Emit(Instruction::MovRI(Reg::kR8, kPipeRingQwords));
    b.Emit(Instruction::SubRR(Reg::kR8, Reg::kRax));
    b.Emit(Instruction::CmpRR(Reg::kR8, Reg::kRsi));
    b.Emit(Instruction::JccBlock(Cond::kB, fail));
  } else {
    // buffered = head - tail; fail if buffered < qwords; copy from tail.
    b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRcx));
    b.Emit(Instruction::SubRR(Reg::kRax, Reg::kRdx));
    b.Emit(Instruction::CmpRR(Reg::kRax, Reg::kRsi));
    b.Emit(Instruction::JccBlock(Cond::kB, fail));
    b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdx));  // copy cursor = tail
  }
  EmitRingCopy(b, syms.ring, kPipeRingQwords - 1, /*to_ring=*/writer);
  // Advance the counter.
  int32_t counter = writer ? syms.head : syms.tail;
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(counter)));
  b.Emit(Instruction::AddRR(Reg::kRcx, Reg::kRsi));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(counter), Reg::kRcx));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRsi));
  b.Emit(Instruction::Ret());
  b.Bind(fail);
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern(writer ? "pipe_write" : "pipe_read");
}

// Checksum loop: rax = sum of qwords at [rdi + i*8), i < rsi; r9 is the
// loop counter so the caller's registers survive.
void EmitChecksum(FunctionBuilder& b) {
  const int32_t loop = b.ReserveBlock();
  const int32_t done = b.ReserveBlock();
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::MovRI(Reg::kR9, 0));
  b.Bind(loop);
  b.Emit(Instruction::CmpRR(Reg::kR9, Reg::kRsi));
  b.Emit(Instruction::JccBlock(Cond::kE, done));
  b.Emit(Instruction::AddRM(Reg::kRax, MemOperand::BaseIndex(Reg::kRdi, Reg::kR9, 8, 0)));
  b.Emit(Instruction::AddRI(Reg::kR9, 1));
  b.Emit(Instruction::JmpBlock(loop));
  b.Bind(done);
}

// sock_send(src=rdi, qwords=rsi): header {qwords, csum} + payload.
void EmitSockSend(KernelSource* src, const RingSyms& syms) {
  FunctionBuilder b("sock_send");
  const int32_t fail = b.ReserveBlock();
  b.Emit(Instruction::SubRI(Reg::kRsp, 16));
  // Space check: need qwords + 2 header slots.
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(syms.head)));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::RipRelSym(syms.tail)));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRcx));
  b.Emit(Instruction::SubRR(Reg::kRax, Reg::kRdx));
  b.Emit(Instruction::MovRI(Reg::kR8, kSockRingQwords));
  b.Emit(Instruction::SubRR(Reg::kR8, Reg::kRax));
  b.Emit(Instruction::MovRR(Reg::kRdx, Reg::kRsi));
  b.Emit(Instruction::AddRI(Reg::kRdx, 2));
  b.Emit(Instruction::CmpRR(Reg::kR8, Reg::kRdx));
  b.Emit(Instruction::JccBlock(Cond::kB, fail));
  // Checksum the payload (clobbers rax, r9).
  EmitChecksum(b);
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 0), Reg::kRax));  // csum
  // Header slot 0: length.
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(syms.head)));
  b.Emit(Instruction::MovRR(Reg::kR8, Reg::kRcx));
  b.Emit(Instruction::AndRI(Reg::kR8, kSockRingQwords - 1));
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(syms.ring)));
  b.Emit(Instruction::Store(MemOperand::BaseIndex(Reg::kRbx, Reg::kR8, 8, 0), Reg::kRsi));
  // Header slot 1: checksum.
  b.Emit(Instruction::AddRI(Reg::kRcx, 1));
  b.Emit(Instruction::MovRR(Reg::kR8, Reg::kRcx));
  b.Emit(Instruction::AndRI(Reg::kR8, kSockRingQwords - 1));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRsp, 0)));
  b.Emit(Instruction::Store(MemOperand::BaseIndex(Reg::kRbx, Reg::kR8, 8, 0), Reg::kRdx));
  // Payload.
  b.Emit(Instruction::AddRI(Reg::kRcx, 1));
  EmitRingCopy(b, syms.ring, kSockRingQwords - 1, /*to_ring=*/true);
  // head += qwords + 2.
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(syms.head)));
  b.Emit(Instruction::AddRR(Reg::kRcx, Reg::kRsi));
  b.Emit(Instruction::AddRI(Reg::kRcx, 2));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(syms.head), Reg::kRcx));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRsi));
  b.Emit(Instruction::AddRI(Reg::kRsp, 16));
  b.Emit(Instruction::Ret());
  b.Bind(fail);
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::AddRI(Reg::kRsp, 16));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("sock_send");
}

// sock_recv(dst=rdi): reads one datagram; -1 when empty, -2 on checksum
// mismatch (the validation branch every network stack has).
void EmitSockRecv(KernelSource* src, const RingSyms& syms) {
  FunctionBuilder b("sock_recv");
  const int32_t empty = b.ReserveBlock();
  const int32_t bad = b.ReserveBlock();
  b.Emit(Instruction::SubRI(Reg::kRsp, 24));
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(syms.head)));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::RipRelSym(syms.tail)));
  b.Emit(Instruction::CmpRR(Reg::kRcx, Reg::kRdx));
  b.Emit(Instruction::JccBlock(Cond::kE, empty));
  // Length and checksum from the header.
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(syms.ring)));
  b.Emit(Instruction::MovRR(Reg::kR8, Reg::kRdx));
  b.Emit(Instruction::AndRI(Reg::kR8, kSockRingQwords - 1));
  b.Emit(Instruction::Load(Reg::kRsi, MemOperand::BaseIndex(Reg::kRbx, Reg::kR8, 8, 0)));
  b.Emit(Instruction::AddRI(Reg::kRdx, 1));
  b.Emit(Instruction::MovRR(Reg::kR8, Reg::kRdx));
  b.Emit(Instruction::AndRI(Reg::kR8, kSockRingQwords - 1));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::BaseIndex(Reg::kRbx, Reg::kR8, 8, 0)));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 0), Reg::kRax));   // expected csum
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 8), Reg::kRsi));   // length
  // Copy payload to dst.
  b.Emit(Instruction::AddRI(Reg::kRdx, 1));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdx));
  EmitRingCopy(b, syms.ring, kSockRingQwords - 1, /*to_ring=*/false);
  // Validate: checksum what landed in dst.
  EmitChecksum(b);
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRsp, 0)));
  b.Emit(Instruction::CmpRR(Reg::kRax, Reg::kRdx));
  b.Emit(Instruction::JccBlock(Cond::kNe, bad));
  // tail += length + 2.
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(syms.tail)));
  b.Emit(Instruction::Load(Reg::kRsi, MemOperand::Base(Reg::kRsp, 8)));
  b.Emit(Instruction::AddRR(Reg::kRcx, Reg::kRsi));
  b.Emit(Instruction::AddRI(Reg::kRcx, 2));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(syms.tail), Reg::kRcx));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRsi));
  b.Emit(Instruction::AddRI(Reg::kRsp, 24));
  b.Emit(Instruction::Ret());
  b.Bind(empty);
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::AddRI(Reg::kRsp, 24));
  b.Emit(Instruction::Ret());
  b.Bind(bad);
  b.Emit(Instruction::MovRI(Reg::kRax, -2));
  b.Emit(Instruction::AddRI(Reg::kRsp, 24));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("sock_recv");
}

}  // namespace

void AddIpc(KernelSource* source) {
  AddRingObjects(source, "ipc_pipe", kPipeRingQwords);
  AddRingObjects(source, "ipc_sock", kSockRingQwords);
  RingSyms pipe = InternRing(source, "ipc_pipe");
  RingSyms sock = InternRing(source, "ipc_sock");
  EmitPipeEnd(source, pipe, /*writer=*/true);
  EmitPipeEnd(source, pipe, /*writer=*/false);
  EmitSockSend(source, sock);
  EmitSockRecv(source, sock);
}

}  // namespace krx
