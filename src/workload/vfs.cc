#include "src/workload/vfs.h"

#include <map>

#include "src/base/math_util.h"
#include "src/ir/builder.h"

namespace krx {
namespace {

// Dentry field offsets (64-byte records).
constexpr int64_t kDeHash = 0;
constexpr int64_t kDeInode = 8;
constexpr int64_t kDeFirstChild = 16;
constexpr int64_t kDeNextSibling = 24;
constexpr int64_t kDeParent = 32;
constexpr int64_t kDeFlags = 40;  // bit 0: directory

// Inode field offsets (32-byte records).
constexpr int64_t kInSize = 0;
constexpr int64_t kInData = 8;  // pointer slot into vfs_page_cache
constexpr int64_t kInPerms = 16;

struct HostDentry {
  uint64_t hash = 0;
  int64_t inode = -1;
  int64_t first_child = -1;
  int64_t next_sibling = -1;
  int64_t parent = 0;
  uint64_t flags = 0;
};

struct HostInode {
  uint64_t size = 0;
  uint64_t cache_offset = 0;
  uint64_t perms = 0644;
};

void Put64(std::vector<uint8_t>& bytes, uint64_t off, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[off + static_cast<uint64_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
  }
}

std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : path) {
    if (c == '/') {
      if (!cur.empty()) {
        parts.push_back(cur);
      }
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) {
    parts.push_back(cur);
  }
  KRX_CHECK(!parts.empty() && parts.size() <= 3);
  return parts;
}

// ---- IR emission ----

void EmitVfsLookup(KernelSource* src) {
  int32_t dentries = src->symbols.Intern("vfs_dentries", SymbolKind::kData);
  FunctionBuilder b("vfs_lookup");
  const int32_t loop = b.ReserveBlock();
  const int32_t done = b.ReserveBlock();
  const int32_t next = b.ReserveBlock();
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(dentries)));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdi));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 6));
  b.Emit(Instruction::AddRR(Reg::kRcx, Reg::kRbx));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRcx, kDeFirstChild)));
  b.Bind(loop);
  b.Emit(Instruction::CmpRI(Reg::kRax, -1));
  b.Emit(Instruction::JccBlock(Cond::kE, done));  // end of sibling chain: rax = -1
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRax));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 6));
  b.Emit(Instruction::AddRR(Reg::kRcx, Reg::kRbx));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRcx, kDeHash)));
  b.Emit(Instruction::CmpRR(Reg::kRdx, Reg::kRsi));
  b.Emit(Instruction::JccBlock(Cond::kNe, next));
  b.Emit(Instruction::Ret());  // found: rax is the dentry index
  b.Bind(next);
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRcx, kDeNextSibling)));
  b.Emit(Instruction::JmpBlock(loop));
  b.Bind(done);
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("vfs_lookup");
}

void EmitVfsFdAlloc(KernelSource* src) {
  int32_t bitmap = src->symbols.Intern("vfs_fd_bitmap", SymbolKind::kData);
  FunctionBuilder b("vfs_fd_alloc");
  const int32_t loop = b.ReserveBlock();
  const int32_t found = b.ReserveBlock();
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(bitmap)));  // safe read
  b.Emit(Instruction::MovRI(Reg::kRdx, 1));
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Bind(loop);
  b.Emit(Instruction::MovRR(Reg::kR8, Reg::kRcx));
  b.Emit(Instruction::AndRR(Reg::kR8, Reg::kRdx));
  b.Emit(Instruction::CmpRI(Reg::kR8, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, found));
  b.Emit(Instruction::ShlRI(Reg::kRdx, 1));
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Emit(Instruction::CmpRI(Reg::kRax, kVfsMaxFds));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));
  b.Emit(Instruction::MovRI(Reg::kRax, -1));  // all fds in use
  b.Emit(Instruction::Ret());
  b.Bind(found);
  b.Emit(Instruction::OrRR(Reg::kRcx, Reg::kRdx));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(bitmap), Reg::kRcx));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("vfs_fd_alloc");
}

void EmitVfsOpen(KernelSource* src) {
  int32_t dentries = src->symbols.Intern("vfs_dentries", SymbolKind::kData);
  int32_t fd_table = src->symbols.Intern("vfs_fd_table", SymbolKind::kData);
  FunctionBuilder b("vfs_open");
  const int32_t have_dentry = b.ReserveBlock();
  const int32_t fail = b.ReserveBlock();
  b.Emit(Instruction::SubRI(Reg::kRsp, 32));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 0), Reg::kRsi));   // h2
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 8), Reg::kRdx));   // h3
  // Component 1: lookup(root=0, h1).
  b.Emit(Instruction::MovRR(Reg::kRsi, Reg::kRdi));
  b.Emit(Instruction::MovRI(Reg::kRdi, 0));
  b.Emit(Instruction::CallSym(src->symbols.Intern("vfs_lookup")));
  b.Emit(Instruction::CmpRI(Reg::kRax, -1));
  b.Emit(Instruction::JccBlock(Cond::kE, fail));
  // Component 2 (h2 == 0 means the path ended).
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
  b.Emit(Instruction::CmpRI(Reg::kRcx, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, have_dentry));
  b.Emit(Instruction::MovRR(Reg::kRdi, Reg::kRax));
  b.Emit(Instruction::MovRR(Reg::kRsi, Reg::kRcx));
  b.Emit(Instruction::CallSym(src->symbols.Intern("vfs_lookup")));
  b.Emit(Instruction::CmpRI(Reg::kRax, -1));
  b.Emit(Instruction::JccBlock(Cond::kE, fail));
  // Component 3.
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 8)));
  b.Emit(Instruction::CmpRI(Reg::kRcx, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, have_dentry));
  b.Emit(Instruction::MovRR(Reg::kRdi, Reg::kRax));
  b.Emit(Instruction::MovRR(Reg::kRsi, Reg::kRcx));
  b.Emit(Instruction::CallSym(src->symbols.Intern("vfs_lookup")));
  b.Emit(Instruction::CmpRI(Reg::kRax, -1));
  b.Emit(Instruction::JccBlock(Cond::kE, fail));
  b.Bind(have_dentry);
  // inode = dentries[rax].inode; directories cannot be opened.
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(dentries)));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRax));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 6));
  b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kRcx));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRbx, kDeInode)));
  b.Emit(Instruction::CmpRI(Reg::kRdx, -1));
  b.Emit(Instruction::JccBlock(Cond::kE, fail));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 16), Reg::kRdx));
  b.Emit(Instruction::CallSym(src->symbols.Intern("vfs_fd_alloc")));
  b.Emit(Instruction::CmpRI(Reg::kRax, -1));
  b.Emit(Instruction::JccBlock(Cond::kE, fail));
  // fd_table[fd] = inode + 1 (0 marks a free slot).
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(fd_table)));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRax));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 3));
  b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kRcx));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRsp, 16)));
  b.Emit(Instruction::AddRI(Reg::kRdx, 1));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRbx, 0), Reg::kRdx));
  b.Emit(Instruction::AddRI(Reg::kRsp, 32));
  b.Emit(Instruction::Ret());
  b.Bind(fail);
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::AddRI(Reg::kRsp, 32));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("vfs_open");
}

void EmitVfsClose(KernelSource* src) {
  int32_t fd_table = src->symbols.Intern("vfs_fd_table", SymbolKind::kData);
  int32_t bitmap = src->symbols.Intern("vfs_fd_bitmap", SymbolKind::kData);
  FunctionBuilder b("vfs_close");
  const int32_t fail = b.ReserveBlock();
  const int32_t shift = b.ReserveBlock();
  const int32_t shifted = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRdi, kVfsMaxFds - 1));
  b.Emit(Instruction::JccBlock(Cond::kA, fail));  // unsigned: also catches "negative" fds
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(fd_table)));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdi));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 3));
  b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kRcx));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRbx, 0)));
  b.Emit(Instruction::CmpRI(Reg::kRdx, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, fail));  // not open
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRbx, 0), Reg::kRax));
  // mask = 1 << fd, by repeated shifts (the ISA has immediate shifts only).
  b.Emit(Instruction::MovRI(Reg::kRdx, 1));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdi));
  b.Bind(shift);
  b.Emit(Instruction::CmpRI(Reg::kRcx, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, shifted));
  b.Emit(Instruction::ShlRI(Reg::kRdx, 1));
  b.Emit(Instruction::SubRI(Reg::kRcx, 1));
  b.Emit(Instruction::JmpBlock(shift));
  b.Bind(shifted);
  b.Emit(Instruction::XorRI(Reg::kRdx, -1));  // ~mask
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(bitmap)));
  b.Emit(Instruction::AndRR(Reg::kRcx, Reg::kRdx));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(bitmap), Reg::kRcx));
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::Ret());
  b.Bind(fail);
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("vfs_close");
}

void EmitVfsRead(KernelSource* src) {
  int32_t fd_table = src->symbols.Intern("vfs_fd_table", SymbolKind::kData);
  int32_t inodes = src->symbols.Intern("vfs_inodes", SymbolKind::kData);
  FunctionBuilder b("vfs_read");
  const int32_t fail_early = b.ReserveBlock();
  const int32_t fail_frame = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRdi, kVfsMaxFds - 1));
  b.Emit(Instruction::JccBlock(Cond::kA, fail_early));
  b.Emit(Instruction::SubRI(Reg::kRsp, 16));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 0), Reg::kRdx));  // qwords
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(fd_table)));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdi));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 3));
  b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kRcx));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRbx, 0)));  // inode + 1
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, fail_frame));
  b.Emit(Instruction::SubRI(Reg::kRax, 1));
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(inodes)));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRax));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 5));
  b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kRcx));
  b.Emit(Instruction::Load(Reg::kR8, MemOperand::Base(Reg::kRbx, kInData)));  // page-cache ptr
  // Copy: dst = rsi (arg), src = page cache.
  b.Emit(Instruction::MovRR(Reg::kRdi, Reg::kRsi));
  b.Emit(Instruction::MovRR(Reg::kRsi, Reg::kR8));
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 0)));
  b.Emit(Instruction::Movsq(/*rep_prefix=*/true));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRsp, 0)));
  b.Emit(Instruction::AddRI(Reg::kRsp, 16));
  b.Emit(Instruction::Ret());
  b.Bind(fail_frame);
  b.Emit(Instruction::AddRI(Reg::kRsp, 16));
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::Ret());
  b.Bind(fail_early);
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("vfs_read");
}

void EmitVfsFstat(KernelSource* src) {
  int32_t fd_table = src->symbols.Intern("vfs_fd_table", SymbolKind::kData);
  int32_t inodes = src->symbols.Intern("vfs_inodes", SymbolKind::kData);
  FunctionBuilder b("vfs_fstat");
  const int32_t fail = b.ReserveBlock();
  b.Emit(Instruction::CmpRI(Reg::kRdi, kVfsMaxFds - 1));
  b.Emit(Instruction::JccBlock(Cond::kA, fail));
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(fd_table)));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdi));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 3));
  b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kRcx));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRbx, 0)));
  b.Emit(Instruction::CmpRI(Reg::kRax, 0));
  b.Emit(Instruction::JccBlock(Cond::kE, fail));
  b.Emit(Instruction::SubRI(Reg::kRax, 1));
  b.Emit(Instruction::Lea(Reg::kRbx, MemOperand::RipRelSym(inodes)));
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRax));
  b.Emit(Instruction::ShlRI(Reg::kRcx, 5));
  b.Emit(Instruction::AddRR(Reg::kRbx, Reg::kRcx));
  // The stat-struct copy: a run of same-base reads (coalescible under O3).
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRbx, kInSize)));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRbx, kInPerms)));
  b.Emit(Instruction::Load(Reg::kR8, MemOperand::Base(Reg::kRbx, kInData)));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsi, 0), Reg::kRcx));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsi, 8), Reg::kRdx));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsi, 16), Reg::kRax));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsi, 24), Reg::kR8));
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::Ret());
  b.Bind(fail);
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("vfs_fstat");
}

}  // namespace

uint64_t VfsNameHash(const std::string& name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ULL;
  }
  return h == 0 ? 1 : h;  // 0 is the "no component" sentinel
}

VfsPathHashes HashPath(const std::string& path) {
  std::vector<std::string> parts = SplitPath(path);
  VfsPathHashes h;
  h.h1 = VfsNameHash(parts[0]);
  if (parts.size() > 1) {
    h.h2 = VfsNameHash(parts[1]);
  }
  if (parts.size() > 2) {
    h.h3 = VfsNameHash(parts[2]);
  }
  return h;
}

std::vector<VfsFile> DefaultVfsImage() {
  return {
      {"etc/passwd", "root:x:0:0:root:/root:/bin/sh\nuser:x:1000:1000::/home/user\n"},
      {"etc/hosts", "127.0.0.1 localhost\n"},
      {"usr/bin/sh", "#!ELF shell image bytes"},
      {"usr/bin/id", "#!ELF id image bytes"},
      {"var/log/dmesg", "[0.000] kR^X: phantom guard armed\n[0.001] kR^X: xkeys replenished\n"},
      {"proc/version", "krx64 kernel 3.19-reproduction\n"},
  };
}

int AddVfs(KernelSource* source, const std::vector<VfsFile>& files) {
  // ---- Build the tree host-side. ----
  std::vector<HostDentry> dentries(1);  // dentry 0 = root directory
  dentries[0].flags = 1;
  std::vector<HostInode> inodes;
  std::vector<uint8_t> page_cache;

  // (parent, hash) -> dentry idx for shared directories.
  std::map<std::pair<int64_t, uint64_t>, int64_t> index;
  auto child_of = [&](int64_t parent, const std::string& name, bool dir) {
    uint64_t hash = VfsNameHash(name);
    auto key = std::make_pair(parent, hash);
    auto it = index.find(key);
    if (it != index.end()) {
      return it->second;
    }
    HostDentry d;
    d.hash = hash;
    d.parent = parent;
    d.flags = dir ? 1 : 0;
    // Prepend to the parent's child list.
    d.next_sibling = dentries[static_cast<size_t>(parent)].first_child;
    int64_t idx = static_cast<int64_t>(dentries.size());
    dentries[static_cast<size_t>(parent)].first_child = idx;
    dentries.push_back(d);
    index[key] = idx;
    return idx;
  };

  for (const VfsFile& file : files) {
    std::vector<std::string> parts = SplitPath(file.path);
    int64_t cur = 0;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
      cur = child_of(cur, parts[i], /*dir=*/true);
    }
    int64_t leaf = child_of(cur, parts.back(), /*dir=*/false);
    // Content into the page cache, 8-byte aligned.
    uint64_t off = AlignUp(page_cache.size(), 8);
    page_cache.resize(off, 0);
    page_cache.insert(page_cache.end(), file.content.begin(), file.content.end());
    page_cache.resize(AlignUp(page_cache.size(), 8), 0);
    HostInode inode;
    inode.size = file.content.size();
    inode.cache_offset = off;
    inodes.push_back(inode);
    dentries[static_cast<size_t>(leaf)].inode = static_cast<int64_t>(inodes.size()) - 1;
  }

  // ---- Serialize into data objects. ----
  int32_t cache_sym = source->symbols.Intern("vfs_page_cache", SymbolKind::kData);
  {
    DataObject obj;
    obj.name = "vfs_dentries";
    obj.kind = SectionKind::kRodata;  // dcache entries are constified here
    obj.bytes.assign(dentries.size() * kVfsDentryBytes, 0);
    for (size_t i = 0; i < dentries.size(); ++i) {
      uint64_t base = i * kVfsDentryBytes;
      const HostDentry& d = dentries[i];
      Put64(obj.bytes, base + kDeHash, d.hash);
      Put64(obj.bytes, base + kDeInode, static_cast<uint64_t>(d.inode));
      Put64(obj.bytes, base + kDeFirstChild, static_cast<uint64_t>(d.first_child));
      Put64(obj.bytes, base + kDeNextSibling, static_cast<uint64_t>(d.next_sibling));
      Put64(obj.bytes, base + kDeParent, static_cast<uint64_t>(d.parent));
      Put64(obj.bytes, base + kDeFlags, d.flags);
    }
    source->data_objects.push_back(std::move(obj));
  }
  {
    DataObject obj;
    obj.name = "vfs_inodes";
    obj.kind = SectionKind::kRodata;
    obj.bytes.assign(inodes.size() * kVfsInodeBytes, 0);
    for (size_t i = 0; i < inodes.size(); ++i) {
      uint64_t base = i * kVfsInodeBytes;
      Put64(obj.bytes, base + kInSize, inodes[i].size);
      Put64(obj.bytes, base + kInPerms, inodes[i].perms);
      obj.pointer_slots.push_back(
          {base + kInData, cache_sym, static_cast<int64_t>(inodes[i].cache_offset)});
    }
    source->data_objects.push_back(std::move(obj));
  }
  {
    DataObject obj;
    obj.name = "vfs_page_cache";
    obj.kind = SectionKind::kData;
    obj.bytes = std::move(page_cache);
    source->data_objects.push_back(std::move(obj));
  }
  {
    DataObject obj;
    obj.name = "vfs_fd_bitmap";
    obj.kind = SectionKind::kData;
    obj.bytes.assign(8, 0);
    source->data_objects.push_back(std::move(obj));
  }
  {
    DataObject obj;
    obj.name = "vfs_fd_table";
    obj.kind = SectionKind::kData;
    obj.bytes.assign(kVfsMaxFds * 8, 0);
    source->data_objects.push_back(std::move(obj));
  }

  EmitVfsLookup(source);
  EmitVfsFdAlloc(source);
  EmitVfsOpen(source);
  EmitVfsClose(source);
  EmitVfsRead(source);
  EmitVfsFstat(source);
  return static_cast<int>(dentries.size());
}

}  // namespace krx
