// A miniature in-kernel VFS, built entirely out of krx64 IR and kernel data
// objects: a static dentry tree, an inode table whose data pointers resolve
// into a page cache, a file-descriptor bitmap + table, and the syscalls
// that operate on them.
//
// Unlike the profile-generated LMBench ops, these are *real* kernel code
// paths — pointer-chasing hash lookups over the dentry tree, first-fit
// bitmap scans, struct copies, page-cache rep-copies — and they run
// unchanged under every kR^X protection column (bench/vfs_ops).
//
// Exported kernel symbols:
//   vfs_lookup(parent_dentry, name_hash) -> dentry | -1
//   vfs_fd_alloc()                       -> fd | -1 (64 fds)
//   vfs_open(h1, h2, h3)                 -> fd | -1 (3-component path walk)
//   vfs_close(fd)                        -> 0 | -1
//   vfs_read(fd, dst, qwords)            -> qwords | -1
//   vfs_fstat(fd, statbuf)               -> 0 | -1 (fills 4 qwords)
// Data objects: vfs_dentries, vfs_inodes, vfs_page_cache, vfs_fd_bitmap,
// vfs_fd_table.
#ifndef KRX_SRC_WORKLOAD_VFS_H_
#define KRX_SRC_WORKLOAD_VFS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/plugin/pipeline.h"

namespace krx {

// Host-side description of the filesystem image baked into the kernel.
struct VfsFile {
  std::string path;     // "etc/passwd" — up to 3 components
  std::string content;  // lands in the page cache
};

// FNV-1a — the hash the lookup code compares dentry names against. The
// "user" computes it in libc; the kernel only ever sees hashes.
uint64_t VfsNameHash(const std::string& name);

// Adds the VFS functions + data objects to `source`. Returns the number of
// dentries created. Paths share intermediate directories.
int AddVfs(KernelSource* source, const std::vector<VfsFile>& files);

// The default image used by tests/benches: a handful of /etc, /usr/bin and
// /var/log files.
std::vector<VfsFile> DefaultVfsImage();

// Host-side convenience mirroring the user-space stub: splits `path` into
// up to 3 component hashes (missing components hash the empty string, which
// the walk treats as "stop here").
struct VfsPathHashes {
  uint64_t h1 = 0;
  uint64_t h2 = 0;
  uint64_t h3 = 0;
};
VfsPathHashes HashPath(const std::string& path);

inline constexpr int kVfsMaxFds = 64;
inline constexpr uint64_t kVfsDentryBytes = 64;
inline constexpr uint64_t kVfsInodeBytes = 32;

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_VFS_H_
