// The synthetic kernel "source tree".
//
// MakeBaseSource() builds the parts every experiment shares:
//   - commit_creds / current_cred: the privilege-escalation witness,
//   - debugfs_leak_read: the retrofitted arbitrary-read vulnerability (§7.3),
//   - sys_deep_call: a call chain that leaves stack remnants for indirect
//     JIT-ROP harvesting,
//   - deliberately gadget-bearing utility routines (pop-reg epilogues,
//     store helpers) so ROP material exists by construction,
//   - a population of generated utility functions with a realistic shape
//     distribution (~12% single-basic-block, §5.2.1),
//   - sys_call_table: a .rodata dispatch table of function pointers — the
//     readable code-pointer source indirect attacks start from,
//   - spec_victim / spec_array: the Spectre-v1 bounds-check-bypass gadget
//     driven by the transient-execution evaluation (src/attack/spectre.h).
//
// LMBench/Phoronix kernel ops (src/workload/ops.h) are added on top.
#ifndef KRX_SRC_WORKLOAD_CORPUS_H_
#define KRX_SRC_WORKLOAD_CORPUS_H_

#include <cstdint>

#include "src/plugin/pipeline.h"

namespace krx {

struct CorpusOptions {
  uint64_t seed = 0xC0DE;
  int utility_functions = 48;  // generated filler routines
  int deep_call_depth = 10;
};

KernelSource MakeBaseSource(const CorpusOptions& options = CorpusOptions());

// Initializes the shared scratch buffer the generated ops read from and
// returns its kernel virtual address.
Result<uint64_t> SetUpOpBuffer(KernelImage& image, uint64_t seed);

// (Re)fills an already-allocated op buffer with the deterministic contents
// SetUpOpBuffer would give it — lets a caller reuse one buffer across many
// runs (the fault campaign) instead of leaking 16 pages per run.
Status FillOpBuffer(KernelImage& image, uint64_t buffer_vaddr, uint64_t seed);

// §6 "Legitimate Code Reads": the tracing/probing machinery needs to read
// kernel code, so the corpus carries cloned, uninstrumented copies of the
// read routines (the analogue of the paper's ten cloned get_next/peek_next/
// memcpy/... functions) plus the instrumented originals:
//   krx_memcpy        — instrumented: reading code through it dies.
//   krx_memcpy_clone  — exempt clone: ftrace/kprobes use it.
//   kprobe_fetch_insn — copies 16 code bytes via the clone into a buffer.
// The clone names must be passed as `exempt_functions` when compiling;
// DefaultExemptFunctions() returns that set.
std::set<std::string> DefaultExemptFunctions();

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_CORPUS_H_
