// The 11 Phoronix Test Suite rows of Table 2.
//
// A macro benchmark spends (1 - f) of its time in user mode (unaffected by
// kernel hardening) and f in the kernel, exercising a benchmark-specific
// mix of kernel ops. The harness measures the kernel mix on the vanilla and
// protected builds and reports the end-to-end overhead:
//
//   total(variant) = user + kernel(variant),  user = kernel(vanilla)*(1-f)/f
//
// PostMark's f ≈ 0.83 comes straight from the paper ("spends ~83% of its
// time in kernel mode"); the other fractions are documented estimates.
#ifndef KRX_SRC_WORKLOAD_PHORONIX_H_
#define KRX_SRC_WORKLOAD_PHORONIX_H_

#include <string>
#include <vector>

#include "src/workload/harness.h"

namespace krx {

// Column order of Table 2 (subset of Table 1's columns).
enum Table2Column : int {
  kColT2Sfi = 0,
  kColT2Mpx,
  kColT2SfiD,
  kColT2SfiX,
  kColT2MpxD,
  kColT2MpxX,
  kNumTable2Columns,
};

extern const char* const kTable2ColumnNames[kNumTable2Columns];

struct PhoronixRow {
  std::string name;
  std::string metric;       // what PTS reports (Req/s, Trans/s, sec, ...)
  double kernel_fraction;   // share of runtime spent in kernel mode
  // Kernel-op mix: (op symbol, weight).
  std::vector<std::pair<std::string, int>> ops;
  double paper[kNumTable2Columns];  // Table 2 reference values (% overhead)
};

const std::vector<PhoronixRow>& PhoronixRows();

struct Table2Matrix {
  std::vector<std::string> row_names;
  std::vector<std::string> column_names;
  std::vector<std::vector<double>> percent;  // [row][column]
  std::vector<double> average;               // per column
};

Result<Table2Matrix> RunTable2(uint64_t seed);

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_PHORONIX_H_
