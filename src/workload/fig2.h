// The paper's running example (Figure 2): the body of
// nhm_uncore_msr_enable_event() from Linux v3.19, with its three memory
// reads off %rsi (0x154, 0x140, 0x130).
#ifndef KRX_SRC_WORKLOAD_FIG2_H_
#define KRX_SRC_WORKLOAD_FIG2_H_

#include "src/ir/function.h"

namespace krx {

// Builds:
//   cmpl $0x7,0x154(%rsi)
//   mov  0x140(%rsi),%rcx
//   jg   L1
//   mov  0x130(%rsi),%rax
//   or   $0x400000,%rax
//   mov  %rax,%rdx
//   shr  $0x20,%rdx
//   jmp  L2
// L1: xor %edx,%edx
//   mov  $0x1,%eax
// L2: wrmsr
//   retq
Function MakeFig2Function();

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_FIG2_H_
