// The 23 LMBench rows of Table 1, each backed by a synthetic kernel op.
//
// Row profiles encode what the corresponding kernel path is made of (path
// walks are pointer chases, fstat is a coalescible struct copy, fork is
// bulk page copying plus deep call chains, bandwidth rows are dominated by
// rep-string copies, ...). Paper reference numbers are carried along so the
// bench harness can print paper-vs-measured side by side.
#ifndef KRX_SRC_WORKLOAD_LMBENCH_H_
#define KRX_SRC_WORKLOAD_LMBENCH_H_

#include <string>
#include <vector>

#include "src/workload/ops.h"

namespace krx {

// Column order of Table 1 (and of LmbenchRow::paper).
enum Table1Column : int {
  kColSfiO0 = 0,
  kColSfiO1,
  kColSfiO2,
  kColSfiO3,
  kColMpx,
  kColD,
  kColX,
  kColSfiD,
  kColSfiX,
  kColMpxD,
  kColMpxX,
  // Reproduction extension past the paper's columns (appended so the
  // 11-value paper rows keep their positional initializers): SFI at the O4
  // cross-block-elision level. Its `paper` reference falls back to SFI(-O3)
  // — the paper has no O4 column, and O4 can only remove checks.
  kColSfiO4,
  kNumTable1Columns,
};

extern const char* const kTable1ColumnNames[kNumTable1Columns];

struct LmbenchRow {
  std::string display_name;       // e.g. "open()/close()"
  bool bandwidth = false;         // latency vs. bandwidth section of Table 1
  OpProfile profile;
  double paper[kNumTable1Columns] = {};  // Table 1 reference values (% overhead)
};

const std::vector<LmbenchRow>& LmbenchRows();

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_LMBENCH_H_
