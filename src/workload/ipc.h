// In-kernel IPC substrate: a pipe ring buffer and a checksummed datagram
// socket, built from krx64 IR — the honest analogue of the pipe/socket
// LMBench rows (wrap-around ring indexing, header validation, payload
// copies), runnable under every kR^X protection column.
//
// Exported kernel symbols:
//   pipe_write(src, qwords) -> qwords | -1 (ring full)
//   pipe_read(dst, qwords)  -> qwords | -1 (not enough buffered)
//   sock_send(src, qwords)  -> qwords | -1 (ring full)
//   sock_recv(dst)          -> qwords | -1 (empty) | -2 (checksum mismatch)
// Data objects: ipc_pipe_ring/head/tail, ipc_sock_ring/head/tail/seq.
#ifndef KRX_SRC_WORKLOAD_IPC_H_
#define KRX_SRC_WORKLOAD_IPC_H_

#include "src/plugin/pipeline.h"

namespace krx {

// Ring capacities in qwords (power of two; the kernel code masks with
// capacity-1).
inline constexpr int64_t kPipeRingQwords = 512;
inline constexpr int64_t kSockRingQwords = 512;

// Adds the IPC functions + data objects to `source`.
void AddIpc(KernelSource* source);

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_IPC_H_
