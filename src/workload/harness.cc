#include "src/workload/harness.h"

#include "src/base/math_util.h"
#include "src/workload/corpus.h"

namespace krx {

std::vector<Column> Table1Columns(uint64_t seed) {
  std::vector<Column> cols;
  cols.push_back({"SFI(-O0)", ProtectionConfig::SfiOnly(SfiLevel::kO0), LayoutKind::kKrx});
  cols.push_back({"SFI(-O1)", ProtectionConfig::SfiOnly(SfiLevel::kO1), LayoutKind::kKrx});
  cols.push_back({"SFI(-O2)", ProtectionConfig::SfiOnly(SfiLevel::kO2), LayoutKind::kKrx});
  cols.push_back({"SFI(-O3)", ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  cols.push_back({"MPX", ProtectionConfig::MpxOnly(), LayoutKind::kKrx});
  cols.push_back({"D", ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, seed), LayoutKind::kKrx});
  cols.push_back(
      {"X", ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, seed), LayoutKind::kKrx});
  cols.push_back({"SFI+D", ProtectionConfig::Full(false, RaScheme::kDecoy, seed),
                  LayoutKind::kKrx});
  cols.push_back({"SFI+X", ProtectionConfig::Full(false, RaScheme::kEncrypt, seed),
                  LayoutKind::kKrx});
  cols.push_back({"MPX+D", ProtectionConfig::Full(true, RaScheme::kDecoy, seed),
                  LayoutKind::kKrx});
  cols.push_back({"MPX+X", ProtectionConfig::Full(true, RaScheme::kEncrypt, seed),
                  LayoutKind::kKrx});
  cols.push_back({"SFI(-O4)", ProtectionConfig::SfiOnly(SfiLevel::kO4), LayoutKind::kKrx});
  return cols;
}

bool ParseConfigName(const std::string& name, uint64_t seed, ProtectionConfig* config,
                     LayoutKind* layout) {
  *layout = LayoutKind::kKrx;
  if (name == "vanilla") {
    *config = ProtectionConfig::Vanilla();
    *layout = LayoutKind::kVanilla;
  } else if (name == "sfi-o0") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO0);
  } else if (name == "sfi-o1") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO1);
  } else if (name == "sfi-o2") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO2);
  } else if (name == "sfi-o3" || name == "sfi") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  } else if (name == "sfi-o4") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO4);
  } else if (name == "mpx") {
    *config = ProtectionConfig::MpxOnly();
  } else if (name == "mpx-o4") {
    *config = ProtectionConfig::MpxOnly();
    config->sfi = SfiLevel::kO4;
  } else if (name == "d") {
    *config = ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, seed);
  } else if (name == "x") {
    *config = ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, seed);
  } else if (name == "sfi+d") {
    *config = ProtectionConfig::Full(false, RaScheme::kDecoy, seed);
  } else if (name == "sfi+x") {
    *config = ProtectionConfig::Full(false, RaScheme::kEncrypt, seed);
  } else if (name == "spec-barrier") {
    *config = ProtectionConfig::SpecHardened(SpecMitigation::kBarrier);
  } else if (name == "spec-mask") {
    *config = ProtectionConfig::SpecHardened(SpecMitigation::kMask);
  } else if (name == "mpx+d") {
    *config = ProtectionConfig::Full(true, RaScheme::kDecoy, seed);
  } else if (name == "mpx+x") {
    *config = ProtectionConfig::Full(true, RaScheme::kEncrypt, seed);
  } else {
    return false;
  }
  return true;
}

KernelSource MakeBenchSource(uint64_t seed) {
  CorpusOptions opts;
  opts.seed = seed;
  KernelSource src = MakeBaseSource(opts);
  for (const LmbenchRow& row : LmbenchRows()) {
    EmitKernelOp(&src, row.profile);
  }
  return src;
}

Result<RowMeasurement> MeasureOp(Cpu& cpu, uint64_t buffer_vaddr, const std::string& op_symbol) {
  auto entry = cpu.image()->symbols().AddressOf(op_symbol);
  if (!entry.ok()) {
    return entry.status();
  }
  RunResult r = cpu.CallFunction(*entry, {buffer_vaddr}, RunOptions{.max_steps = 50'000'000});
  if (r.reason != StopReason::kReturned) {
    return InternalError(op_symbol + " did not return cleanly: " +
                         std::string(ExceptionKindName(r.exception)) +
                         (r.krx_violation ? " (krx violation)" : ""));
  }
  RowMeasurement m;
  m.row = op_symbol;
  m.deci_cycles = r.deci_cycles;
  m.instructions = r.instructions;
  m.rax = r.rax;
  return m;
}

Result<std::vector<RowMeasurement>> MeasureAllRows(CompiledKernel& kernel,
                                                   uint64_t buffer_seed) {
  CpuOptions copts;
  copts.mpx_enabled = kernel.config.mpx;
  Cpu cpu(kernel.image.get(), CostModel(), copts);
  auto buf = SetUpOpBuffer(*kernel.image, buffer_seed);
  if (!buf.ok()) {
    return buf.status();
  }
  std::vector<RowMeasurement> out;
  for (const LmbenchRow& row : LmbenchRows()) {
    auto m = MeasureOp(cpu, *buf, "sys_" + row.profile.name);
    if (!m.ok()) {
      return m.status();
    }
    m->row = row.display_name;
    out.push_back(*m);
  }
  return out;
}

Result<OverheadMatrix> RunTable1(uint64_t seed, int randomized_builds) {
  KernelSource source = MakeBenchSource(seed);

  auto vanilla = CompileKernel(source, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  if (!vanilla.ok()) {
    return vanilla.status();
  }
  auto base = MeasureAllRows(*vanilla);
  if (!base.ok()) {
    return base.status();
  }

  OverheadMatrix matrix;
  for (const auto& m : *base) {
    matrix.row_names.push_back(m.row);
    matrix.baseline.push_back(m.deci_cycles);
  }
  matrix.percent.assign(matrix.row_names.size(), {});

  for (const Column& col : Table1Columns(seed)) {
    matrix.column_names.push_back(col.name);
    // Diversified builds are randomized: average over several seeds, as the
    // paper does across its ten identically-configured compiles.
    const int samples = col.config.diversify ? std::max(randomized_builds, 1) : 1;
    std::vector<double> total(matrix.row_names.size(), 0.0);
    for (int sample = 0; sample < samples; ++sample) {
      ProtectionConfig config = col.config;
      config.seed = seed + static_cast<uint64_t>(sample) * 0x9E3779B9ULL;
      auto kernel = CompileKernel(source, {config, col.layout});
      if (!kernel.ok()) {
        return kernel.status();
      }
      auto rows = MeasureAllRows(*kernel);
      if (!rows.ok()) {
        return rows.status();
      }
      for (size_t i = 0; i < rows->size(); ++i) {
        // Semantic witness: every variant must compute the same result.
        if ((*rows)[i].rax != (*base)[i].rax) {
          return InternalError("variant " + col.name + " diverged on row " +
                               matrix.row_names[i]);
        }
        total[i] += static_cast<double>((*rows)[i].deci_cycles);
      }
    }
    for (size_t i = 0; i < matrix.row_names.size(); ++i) {
      matrix.percent[i].push_back(OverheadPercent(static_cast<double>(matrix.baseline[i]),
                                                  total[i] / samples));
    }
  }
  return matrix;
}

}  // namespace krx
