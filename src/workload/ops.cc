#include "src/workload/ops.h"

#include "src/ir/builder.h"

namespace krx {
namespace {

constexpr Reg kBuf = Reg::kRdi;
constexpr Reg kAcc = Reg::kR8;
constexpr Reg kCounter = Reg::kR9;
constexpr Reg kTmp = Reg::kRcx;

// Frame slots of the generated entry function.
constexpr int64_t kSlotBuf = 0;
constexpr int64_t kSlotAcc = 8;
constexpr int64_t kSlotCounter = 16;
constexpr int64_t kSlotStringSave = 24;
constexpr int64_t kSlotConst = 32;
constexpr int64_t kFrameBytes = 48;

std::string LeafName(const OpProfile& p, int depth) {
  return "sys_" + p.name + "_leaf" + std::to_string(depth);
}

// Kernel global the generated ops read rip-relatively (a "jiffies"): the
// paper's safe reads — encoded addresses, exempt from range checks.
constexpr const char* kGlobalName = "krx_jiffies";
constexpr uint64_t kGlobalValue = 0x4A1F;

int32_t EnsureGlobal(KernelSource* source) {
  int32_t sym = source->symbols.Intern(kGlobalName, SymbolKind::kData);
  for (const DataObject& obj : source->data_objects) {
    if (obj.name == kGlobalName) {
      return sym;
    }
  }
  DataObject obj;
  obj.name = kGlobalName;
  obj.kind = SectionKind::kData;
  obj.bytes.assign(8, 0);
  for (int i = 0; i < 8; ++i) {
    obj.bytes[static_cast<size_t>(i)] = static_cast<uint8_t>(kGlobalValue >> (8 * i));
  }
  source->data_objects.push_back(std::move(obj));
  return sym;
}

void EmitLeafChain(KernelSource* source, const OpProfile& p) {
  for (int d = 0; d < p.leaf_depth; ++d) {
    FunctionBuilder b(LeafName(p, d));
    b.Emit(Instruction::SubRI(Reg::kRsp, 16));
    b.Emit(Instruction::MovRI(Reg::kRax, 0));
    for (int j = 0; j < p.leaf_reads; ++j) {
      // Structure walks: each read dereferences a freshly computed pointer,
      // so the checks cannot coalesce (as in real kernel object traversal).
      b.Emit(Instruction::Lea(kTmp, MemOperand::Base(kBuf, 1024 + 8 * (j % 32))));
      b.Emit(Instruction::AddRM(Reg::kRax, MemOperand::Base(kTmp, 0)));
    }
    b.Emit(Instruction::XorRI(Reg::kRax, 0x5a5a));
    {
      // A little control flow so leaves are not single-block routines.
      const int32_t skip = b.ReserveBlock();
      b.Emit(Instruction::CmpRI(Reg::kRax, 0x100000));
      b.Emit(Instruction::JccBlock(Cond::kL, skip));
      b.Emit(Instruction::AddRI(Reg::kRax, 1));
      b.Bind(skip);
    }
    if (d + 1 < p.leaf_depth) {
      b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 8), Reg::kRax));
      b.Emit(Instruction::CallSym(source->symbols.Intern(LeafName(p, d + 1))));
      b.Emit(Instruction::Load(kTmp, MemOperand::Base(Reg::kRsp, 8)));
      b.Emit(Instruction::AddRR(Reg::kRax, kTmp));
    }
    b.Emit(Instruction::AddRI(Reg::kRsp, 16));
    b.Emit(Instruction::Ret());
    source->functions.push_back(b.Build());
    source->symbols.Intern(LeafName(p, d));
  }
}

}  // namespace

std::string EmitKernelOp(KernelSource* source, const OpProfile& p) {
  const int32_t global_sym = EnsureGlobal(source);
  EmitLeafChain(source, p);

  const std::string entry_name = "sys_" + p.name;
  FunctionBuilder b(entry_name);

  // Prologue: frame, spills, constants.
  b.Emit(Instruction::SubRI(Reg::kRsp, kFrameBytes));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, kSlotBuf), kBuf));
  b.Emit(Instruction::MovRI(kTmp, 0x1234));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, kSlotConst), kTmp));
  b.Emit(Instruction::MovRI(kAcc, 0));
  b.Emit(Instruction::MovRI(kCounter, p.loop_iters));

  const int32_t loop = b.ReserveBlock();
  b.Bind(loop);

  // Coalescible reads: one long-lived base, many displacements.
  for (int k = 0; k < p.coalescible_reads; ++k) {
    b.Emit(Instruction::AddRM(kAcc, MemOperand::Base(kBuf, 8 * (k % 64))));
  }
  // Pointer-chase-style reads: each via a freshly computed base register.
  for (int k = 0; k < p.chased_reads; ++k) {
    b.Emit(Instruction::Lea(kTmp, MemOperand::Base(kBuf, 8 * (k % 61) + 2048)));
    b.Emit(Instruction::AddRM(kAcc, MemOperand::Base(kTmp, 0)));
  }
  // Indexed reads: scaled-index operands need the lea check form.
  for (int k = 0; k < p.indexed_reads; ++k) {
    b.Emit(Instruction::AddRM(kAcc, MemOperand::BaseIndex(kBuf, kCounter, 8, 0)));
  }
  // Reads between a flags definition and its use: the O1 liveness analysis
  // must keep the pushfq/popfq wrapper for these at every optimization
  // level. The base is freshly computed so coalescing cannot absorb them.
  for (int k = 0; k < p.flagful_reads; ++k) {
    const int32_t skip = b.ReserveBlock();
    b.Emit(Instruction::Lea(Reg::kRdx, MemOperand::Base(kBuf, 256 + 8 * (k % 32))));
    b.Emit(Instruction::CmpRI(kAcc, 1000 + k));
    b.Emit(Instruction::Load(kTmp, MemOperand::Base(Reg::kRdx, 0)));
    b.Emit(Instruction::JccBlock(Cond::kG, skip));
    b.Emit(Instruction::AddRI(kAcc, 1));
    b.Bind(skip);
    b.Emit(Instruction::AddRR(kAcc, kTmp));
  }
  // Stores.
  for (int k = 0; k < p.writes; ++k) {
    b.Emit(Instruction::Store(MemOperand::Base(kBuf, 512 + 8 * (k % 64)), kAcc));
  }
  // Register-only work.
  for (int k = 0; k < p.alu; ++k) {
    switch (k % 3) {
      case 0:
        b.Emit(Instruction::XorRI(kAcc, 0x9e37));
        break;
      case 1:
        b.Emit(Instruction::AddRI(kAcc, 0x7f));
        break;
      default:
        b.Emit(Instruction::OrRI(kAcc, 0x101));
        break;
    }
  }
  // Exempt reads of the function's own stack slots.
  for (int k = 0; k < p.rsp_reads; ++k) {
    b.Emit(Instruction::Load(kTmp, MemOperand::Base(Reg::kRsp, kSlotConst)));
    b.Emit(Instruction::XorRR(kAcc, kTmp));
  }
  // Safe reads: rip-relative loads of a kernel global.
  for (int k = 0; k < p.global_reads; ++k) {
    b.Emit(Instruction::Load(kTmp, MemOperand::RipRelSym(global_sym)));
    b.Emit(Instruction::XorRR(kAcc, kTmp));
  }
  // Bulk copy: one rep movsq, range-checked once, after the fact.
  if (p.rep_movs_qwords > 0) {
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, kSlotStringSave), kBuf));
    b.Emit(Instruction::MovRR(Reg::kRsi, kBuf));
    b.Emit(Instruction::AddRI(kBuf, 4096));
    b.Emit(Instruction::MovRI(Reg::kRcx, p.rep_movs_qwords));
    b.Emit(Instruction::Movsq(/*rep_prefix=*/true));
    b.Emit(Instruction::Load(kBuf, MemOperand::Base(Reg::kRsp, kSlotStringSave)));
  }
  // Bulk fill: rep stosq (write-only, no read check).
  if (p.rep_stos_qwords > 0) {
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, kSlotStringSave), kBuf));
    b.Emit(Instruction::AddRI(kBuf, 8192));
    b.Emit(Instruction::MovRI(Reg::kRax, 0));
    b.Emit(Instruction::MovRI(Reg::kRcx, p.rep_stos_qwords));
    b.Emit(Instruction::Stosq(/*rep_prefix=*/true));
    b.Emit(Instruction::Load(kBuf, MemOperand::Base(Reg::kRsp, kSlotStringSave)));
  }
  // Call chain.
  for (int k = 0; k < p.calls && p.leaf_depth > 0; ++k) {
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, kSlotAcc), kAcc));
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, kSlotCounter), kCounter));
    b.Emit(Instruction::CallSym(source->symbols.Intern(LeafName(p, 0))));
    b.Emit(Instruction::Load(kBuf, MemOperand::Base(Reg::kRsp, kSlotBuf)));
    b.Emit(Instruction::Load(kAcc, MemOperand::Base(Reg::kRsp, kSlotAcc)));
    b.Emit(Instruction::Load(kCounter, MemOperand::Base(Reg::kRsp, kSlotCounter)));
    b.Emit(Instruction::AddRR(kAcc, Reg::kRax));
  }

  b.Emit(Instruction::SubRI(kCounter, 1));
  b.Emit(Instruction::JccBlock(Cond::kNe, loop));

  b.Emit(Instruction::MovRR(Reg::kRax, kAcc));
  b.Emit(Instruction::AddRI(Reg::kRsp, kFrameBytes));
  if (p.tail_call_leaf && p.leaf_depth > 0) {
    b.Emit(Instruction::JmpSym(source->symbols.Intern(LeafName(p, 0))));
  } else {
    b.Emit(Instruction::Ret());
  }
  source->functions.push_back(b.Build());
  source->symbols.Intern(entry_name);
  return entry_name;
}

}  // namespace krx
