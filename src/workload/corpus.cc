#include "src/workload/corpus.h"

#include "src/base/rng.h"
#include "src/ir/builder.h"
#include "src/mem/phys_mem.h"
#include "src/workload/ops.h"

namespace krx {
namespace {

// commit_creds(cred): current_cred = cred.
Function MakeCommitCreds(SymbolTable& symbols) {
  int32_t cred = symbols.Intern("current_cred", SymbolKind::kData);
  FunctionBuilder b("commit_creds");
  b.Emit(Instruction::Store(MemOperand::RipRelSym(cred), Reg::kRdi));
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::Ret());
  return b.Build();
}

// The retrofitted debugfs vulnerability: dereferences a user-supplied
// kernel pointer and returns 8 bytes (§7.3 footnote 11). The read is a
// plain (%rdi) load, so the kR^X instrumentation range-checks it.
Function MakeLeakRead() {
  FunctionBuilder b("debugfs_leak_read");
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));
  b.Emit(Instruction::Ret());
  return b.Build();
}

// sys_deep_call -> deep_1 -> ... -> deep_{n-1}: leaves a ladder of frames
// (and, under the decoy scheme, {real, decoy} pairs) on the kernel stack.
void MakeDeepCallChain(KernelSource* src, int depth) {
  for (int d = depth - 1; d >= 0; --d) {
    std::string name = d == 0 ? "sys_deep_call" : "deep_" + std::to_string(d);
    FunctionBuilder b(name);
    b.Emit(Instruction::SubRI(Reg::kRsp, 24));
    b.Emit(Instruction::MovRI(Reg::kRcx, 0xAB00 + d));
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 8), Reg::kRcx));
    if (d + 1 < depth) {
      b.Emit(Instruction::CallSym(src->symbols.Intern("deep_" + std::to_string(d + 1))));
      b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsp, 8)));
      b.Emit(Instruction::AddRR(Reg::kRax, Reg::kRcx));
    } else {
      b.Emit(Instruction::MovRI(Reg::kRax, 0xD0));
    }
    {
      // A conditional hop so the chain is not made of single-block routines.
      int32_t done = b.ReserveBlock();
      b.Emit(Instruction::CmpRI(Reg::kRax, 0));
      b.Emit(Instruction::JccBlock(Cond::kE, done));
      b.Emit(Instruction::AddRI(Reg::kRax, 0));
      b.Bind(done);
    }
    b.Emit(Instruction::AddRI(Reg::kRsp, 24));
    b.Emit(Instruction::Ret());
    src->functions.push_back(b.Build());
    src->symbols.Intern(name);
  }
}

// Routines that legitimately end in pop-reg epilogues — ROP raw material
// that realistic kernels are full of.
void MakeGadgetBearers(KernelSource* src) {
  {
    FunctionBuilder b("restore_args_rdi");
    b.Emit(Instruction::PushR(Reg::kRdi));
    b.Emit(Instruction::AddRI(Reg::kRax, 1));
    b.Emit(Instruction::PopR(Reg::kRdi));
    b.Emit(Instruction::Ret());
    src->functions.push_back(b.Build());
  }
  {
    FunctionBuilder b("restore_args_rsi");
    b.Emit(Instruction::PushR(Reg::kRsi));
    b.Emit(Instruction::XorRI(Reg::kRax, 3));
    b.Emit(Instruction::PopR(Reg::kRsi));
    b.Emit(Instruction::Ret());
    src->functions.push_back(b.Build());
  }
  {
    // mov %rsi, (%rdi); ret — an arbitrary-write primitive when reused.
    FunctionBuilder b("store_word_helper");
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kRdi, 0), Reg::kRsi));
    b.Emit(Instruction::Ret());
    src->functions.push_back(b.Build());
  }
  {
    FunctionBuilder b("mov_ret_helper");
    b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRdi));
    b.Emit(Instruction::Ret());
    src->functions.push_back(b.Build());
  }
  for (const char* n :
       {"restore_args_rdi", "restore_args_rsi", "store_word_helper", "mov_ret_helper"}) {
    src->symbols.Intern(n);
  }
}

// Generated utility routines with a realistic shape distribution.
void MakeUtilityFunctions(KernelSource* src, int count, Rng& rng) {
  for (int i = 0; i < count; ++i) {
    std::string name = "util_" + std::to_string(i);
    FunctionBuilder b(name);
    uint64_t shape = rng.NextBelow(100);
    if (shape < 12) {
      // Single basic block (~12% of kernel routines, §5.2.1).
      b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRdi));
      b.Emit(Instruction::XorRI(Reg::kRax, static_cast<int64_t>(rng.NextBelow(1 << 16))));
      b.Emit(Instruction::Ret());
    } else if (shape < 45) {
      // Read + branch.
      int32_t skip = b.ReserveBlock();
      b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 8 * (i % 16))));
      b.Emit(Instruction::CmpRI(Reg::kRax, 0x40));
      b.Emit(Instruction::JccBlock(Cond::kL, skip));
      b.Emit(Instruction::AddRI(Reg::kRax, 7));
      b.Bind(skip);
      b.Emit(Instruction::Ret());
    } else if (shape < 60) {
      // Struct copy: a run of same-base reads (coalescible at O3).
      b.Emit(Instruction::MovRI(Reg::kRax, 0));
      uint64_t run = 6 + rng.NextBelow(10);
      for (uint64_t k = 0; k < run; ++k) {
        b.Emit(Instruction::AddRM(Reg::kRax, MemOperand::Base(Reg::kRdi, 8 * (k % 32))));
      }
      b.Emit(Instruction::CmpRI(Reg::kRax, 0));
      int32_t done = b.ReserveBlock();
      b.Emit(Instruction::JccBlock(Cond::kE, done));
      b.Emit(Instruction::XorRI(Reg::kRax, 0x33));
      b.Bind(done);
      b.Emit(Instruction::Ret());
    } else if (shape < 74) {
      // Small loop.
      b.Emit(Instruction::MovRI(Reg::kRcx, 1 + rng.NextBelow(6)));
      b.Emit(Instruction::MovRI(Reg::kRax, 0));
      int32_t loop = b.ReserveBlock();
      b.Bind(loop);
      b.Emit(Instruction::AddRM(Reg::kRax, MemOperand::Base(Reg::kRdi, 8 * (i % 8))));
      b.Emit(Instruction::SubRI(Reg::kRcx, 1));
      b.Emit(Instruction::JccBlock(Cond::kNe, loop));
      b.Emit(Instruction::Ret());
    } else if (shape < 90 && i > 0) {
      // Calls an earlier utility.
      b.Emit(Instruction::SubRI(Reg::kRsp, 8));
      b.Emit(Instruction::CallSym(
          src->symbols.Intern("util_" + std::to_string(rng.NextBelow(static_cast<uint64_t>(i))))));
      b.Emit(Instruction::AddRI(Reg::kRax, 1));
      b.Emit(Instruction::AddRI(Reg::kRsp, 8));
      b.Emit(Instruction::Ret());
    } else {
      // Pop-reg epilogue (extra gadget surface).
      Reg r = rng.NextBool() ? Reg::kRdx : Reg::kRbx;
      b.Emit(Instruction::PushR(r));
      b.Emit(Instruction::AddRI(Reg::kRax, static_cast<int64_t>(rng.NextBelow(32))));
      b.Emit(Instruction::PopR(r));
      b.Emit(Instruction::Ret());
    }
    src->functions.push_back(b.Build());
    src->symbols.Intern(name);
  }
}

// memcpy(dst=rdi, src=rsi, qwords=rdx): the body emitted twice — once as
// the instrumented original, once as the exempt clone the tracing
// subsystems use to legitimately read code (§6).
Function MakeMemcpyBody(const std::string& name) {
  FunctionBuilder b(name);
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kRdx));
  b.Emit(Instruction::Movsq(/*rep_prefix=*/true));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRdi));
  b.Emit(Instruction::Ret());
  return b.Build();
}

// spec_victim(idx=rdi, probe_base=rsi): the Spectre-v1 gadget of the
// transient-execution evaluation (src/attack/spectre.cc). Architecturally
// impeccable: the read is guarded by the victim's own bounds check AND by
// whatever range check the kR^X instrumentation adds. The attack trains
// the jae not-taken, then calls with idx = <code address> - spec_array, so
// the wrong path computes an address above _krx_edata and — unless the
// config speculation-hardens its checks — issues the read transiently,
// leaving arr[idx]'s value encoded as a touched probe cache line.
Function MakeSpecVictim(SymbolTable& symbols) {
  int32_t len_sym = symbols.Intern("spec_array_len", SymbolKind::kData);
  int32_t arr_sym = symbols.Intern("spec_array", SymbolKind::kData);
  FunctionBuilder b("spec_victim");
  int32_t out = b.ReserveBlock();
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(len_sym)));  // safe read
  b.Emit(Instruction::CmpRR(Reg::kRdi, Reg::kRcx));
  b.Emit(Instruction::JccBlock(Cond::kAe, out));  // idx >= len: reject
  b.Emit(Instruction::Lea(Reg::kRcx, MemOperand::RipRelSym(arr_sym)));
  b.Emit(Instruction::AddRR(Reg::kRcx, Reg::kRdi));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRcx, 0)));  // checked read
  b.Emit(Instruction::AndRI(Reg::kRax, 0xFF));
  b.Emit(Instruction::ShlRI(Reg::kRax, 6));  // one cache line per byte value
  b.Emit(Instruction::AddRR(Reg::kRax, Reg::kRsi));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRax, 0)));  // probe touch
  b.Emit(Instruction::MovRI(Reg::kRax, 1));
  b.Emit(Instruction::Ret());
  b.Bind(out);
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Emit(Instruction::Ret());
  return b.Build();
}

// kprobe_fetch_insn(dst=rdi, probe_addr=rsi): copies 16 bytes of kernel
// code into a data buffer through the exempt clone — the primitive KProbes
// needs to save the original instruction at a probe point.
Function MakeKprobeFetch(SymbolTable& symbols) {
  FunctionBuilder b("kprobe_fetch_insn");
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));
  b.Emit(Instruction::MovRI(Reg::kRdx, 2));  // 2 qwords = 16 bytes
  b.Emit(Instruction::CallSym(symbols.Intern("krx_memcpy_clone")));
  b.Emit(Instruction::AddRI(Reg::kRsp, 8));
  b.Emit(Instruction::Ret());
  return b.Build();
}

}  // namespace

std::set<std::string> DefaultExemptFunctions() { return {"krx_memcpy_clone"}; }

KernelSource MakeBaseSource(const CorpusOptions& options) {
  KernelSource src;
  Rng rng(options.seed);

  src.functions.push_back(MakeCommitCreds(src.symbols));
  src.symbols.Intern("commit_creds");
  src.functions.push_back(MakeLeakRead());
  src.symbols.Intern("debugfs_leak_read");
  MakeDeepCallChain(&src, options.deep_call_depth);
  MakeGadgetBearers(&src);
  src.functions.push_back(MakeMemcpyBody("krx_memcpy"));
  src.symbols.Intern("krx_memcpy");
  src.functions.push_back(MakeMemcpyBody("krx_memcpy_clone"));
  src.symbols.Intern("krx_memcpy_clone");
  src.functions.push_back(MakeKprobeFetch(src.symbols));
  src.symbols.Intern("kprobe_fetch_insn");
  src.functions.push_back(MakeSpecVictim(src.symbols));
  src.symbols.Intern("spec_victim");
  MakeUtilityFunctions(&src, options.utility_functions, rng);

  // spec_array (+ its length): the in-bounds accessible array the Spectre
  // victim indexes. 64 distinct bytes so in-bounds calls have a witness.
  {
    DataObject arr;
    arr.name = "spec_array";
    arr.kind = SectionKind::kData;
    for (int i = 0; i < 64; ++i) {
      arr.bytes.push_back(static_cast<uint8_t>(0xA0 ^ i));
    }
    src.data_objects.push_back(std::move(arr));
    DataObject len;
    len.name = "spec_array_len";
    len.kind = SectionKind::kData;
    len.bytes = {64, 0, 0, 0, 0, 0, 0, 0};
    src.data_objects.push_back(std::move(len));
  }

  // current_cred: 8 bytes, initially unprivileged (0x1000).
  DataObject cred;
  cred.name = "current_cred";
  cred.kind = SectionKind::kData;
  cred.bytes = {0x00, 0x10, 0, 0, 0, 0, 0, 0};
  src.data_objects.push_back(std::move(cred));

  // sys_call_table: .rodata function-pointer table; slot 0 = commit_creds.
  DataObject table;
  table.name = "sys_call_table";
  table.kind = SectionKind::kRodata;
  std::vector<std::string> entries = {"commit_creds", "debugfs_leak_read", "sys_deep_call",
                                      "restore_args_rdi", "store_word_helper",
                                      "mov_ret_helper"};
  for (int i = 0; i < 10; ++i) {
    entries.push_back("util_" + std::to_string(i % options.utility_functions));
  }
  table.bytes.assign(entries.size() * 8, 0);
  for (size_t i = 0; i < entries.size(); ++i) {
    table.pointer_slots.push_back({8 * i, src.symbols.Intern(entries[i])});
  }
  src.data_objects.push_back(std::move(table));

  // notifier_hook: a *writable* function pointer (notifier chains, ops
  // structs) + run_notifier(arg), the kernel path that dereferences it.
  // This is the §7.3 residual surface: under full kR^X an attacker can
  // still overwrite it with the entry point of a whole function of
  // compatible arity (data-only attack).
  {
    DataObject hook;
    hook.name = "notifier_hook";
    hook.kind = SectionKind::kData;
    hook.bytes.assign(8, 0);
    hook.pointer_slots.push_back({0, src.symbols.Intern("mov_ret_helper"), 0});
    src.data_objects.push_back(std::move(hook));

    FunctionBuilder b("run_notifier");
    b.Emit(Instruction::SubRI(Reg::kRsp, 8));
    b.Emit(Instruction::CallM(MemOperand::RipRelSym(
        src.symbols.Intern("notifier_hook", SymbolKind::kData))));
    b.Emit(Instruction::AddRI(Reg::kRsp, 8));
    b.Emit(Instruction::Ret());
    src.functions.push_back(b.Build());
    src.symbols.Intern("run_notifier");
  }

  // __ex_table: exception-fixup pairs (fault site, handler) — a table of
  // code pointers. Under kR^X-KAS it lands in the execute-only region
  // (footnote 5), so indirect JIT-ROP cannot harvest it.
  DataObject extable;
  extable.name = "__ex_table";
  extable.kind = SectionKind::kExTable;
  extable.bytes.assign(8 * 8, 0);
  for (int i = 0; i < 8; ++i) {
    extable.pointer_slots.push_back(
        {8 * static_cast<uint64_t>(i),
         src.symbols.Intern("util_" + std::to_string((i * 3) % options.utility_functions))});
  }
  src.data_objects.push_back(std::move(extable));

  return src;
}

Result<uint64_t> SetUpOpBuffer(KernelImage& image, uint64_t seed) {
  auto buf = image.AllocDataPages(kOpBufferBytes >> kPageShift);
  if (!buf.ok()) {
    return buf.status();
  }
  KRX_RETURN_IF_ERROR(FillOpBuffer(image, *buf, seed));
  return *buf;
}

Status FillOpBuffer(KernelImage& image, uint64_t buffer_vaddr, uint64_t seed) {
  Rng rng(seed);
  for (uint64_t off = 0; off < kOpBufferBytes; off += 8) {
    // Small values so accumulators stay well-behaved.
    KRX_RETURN_IF_ERROR(image.Poke64(buffer_vaddr + off, rng.NextBelow(1 << 20)));
  }
  return Status::Ok();
}

}  // namespace krx
