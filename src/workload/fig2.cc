#include "src/workload/fig2.h"

#include "src/ir/builder.h"

namespace krx {

Function MakeFig2Function() {
  FunctionBuilder b("nhm_uncore_msr_enable_event");
  const int32_t l1 = b.ReserveBlock();
  const int32_t l2 = b.ReserveBlock();
  b.Emit(Instruction::CmpMI(MemOperand::Base(Reg::kRsi, 0x154), 0x7));
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::Base(Reg::kRsi, 0x140)));
  b.Emit(Instruction::JccBlock(Cond::kG, l1));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRsi, 0x130)));
  b.Emit(Instruction::OrRI(Reg::kRax, 0x400000));
  b.Emit(Instruction::MovRR(Reg::kRdx, Reg::kRax));
  b.Emit(Instruction::ShrRI(Reg::kRdx, 0x20));
  b.Emit(Instruction::JmpBlock(l2));
  b.Bind(l1);
  b.Emit(Instruction::XorRR(Reg::kRdx, Reg::kRdx));
  b.Emit(Instruction::MovRI(Reg::kRax, 0x1));
  b.Emit(Instruction::JmpBlock(l2));
  b.Bind(l2);
  b.Emit(Instruction::Wrmsr());
  b.Emit(Instruction::Ret());
  return b.Build();
}

}  // namespace krx
