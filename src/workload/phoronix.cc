#include "src/workload/phoronix.h"

#include <map>

#include "src/base/math_util.h"
#include "src/workload/corpus.h"

namespace krx {

const char* const kTable2ColumnNames[kNumTable2Columns] = {
    "SFI", "MPX", "SFI+D", "SFI+X", "MPX+D", "MPX+X",
};

namespace {

std::vector<PhoronixRow> BuildRows() {
  std::vector<PhoronixRow> rows;
  auto add = [&rows](std::string name, std::string metric, double fraction,
                     std::vector<std::pair<std::string, int>> ops,
                     std::initializer_list<double> paper) {
    PhoronixRow r;
    r.name = std::move(name);
    r.metric = std::move(metric);
    r.kernel_fraction = fraction;
    r.ops = std::move(ops);
    int i = 0;
    for (double v : paper) {
      r.paper[i++] = v;
    }
    rows.push_back(std::move(r));
  };

  add("Apache", "Req/s", 0.04,
      {{"sys_tcp_sock_lat", 3}, {"sys_read_write", 2}, {"sys_open_close", 1}},
      {0.54, 0.48, 0.97, 1.00, 0.81, 0.68});
  add("PostgreSQL", "Trans/s", 0.25,
      {{"sys_read_write", 3}, {"sys_select_10", 2}, {"sys_fstat", 1}, {"sys_unix_sock_lat", 2}},
      {3.36, 1.06, 6.15, 6.02, 3.45, 4.74});
  add("Kbuild", "sec", 0.14,
      {{"sys_open_close", 2},
       {"sys_read_write", 3},
       {"sys_fork_execve", 1},
       {"sys_mmap_munmap", 1},
       {"sys_fstat", 1}},
      {1.48, 0.03, 3.21, 3.50, 2.82, 3.52});
  add("Kextract", "sec", 0.15, {{"sys_file_io_bw", 3}},
      {0.52, 0.0, 0.0, 0.0, 0.0, 0.0});
  add("GnuPG", "sec", 0.01, {{"sys_read_write", 1}, {"sys_null_syscall", 2}},
      {0.15, 0.0, 0.15, 0.15, 0.0, 0.0});
  add("OpenSSL", "Sign/s", 0.002, {{"sys_null_syscall", 1}},
      {0.0, 0.0, 0.03, 0.0, 0.01, 0.0});
  add("PyBench", "msec", 0.005, {{"sys_null_syscall", 1}, {"sys_mmap_munmap", 1}},
      {0.0, 0.0, 0.0, 0.15, 0.0, 0.0});
  add("PHPBench", "Score", 0.005, {{"sys_null_syscall", 2}, {"sys_fstat", 1}},
      {0.06, 0.0, 0.03, 0.50, 0.66, 0.0});
  add("IOzone", "MB/s", 0.45, {{"sys_file_io_bw", 1}, {"sys_read_write", 8}},
      {4.65, 0.0, 8.96, 8.59, 3.25, 4.26});
  add("DBench", "MB/s", 0.20,
      {{"sys_file_io_bw", 1}, {"sys_open_close", 2}, {"sys_read_write", 4}, {"sys_fstat", 2}},
      {0.86, 0.0, 4.98, 0.0, 4.28, 3.54});
  // PostMark "spends ~83% of its time in kernel mode, mainly executing
  // read()/write() and open()/close()" (§7.2).
  add("PostMark", "Trans/s", 0.83,
      {{"sys_read_write", 4}, {"sys_open_close", 1}},
      {13.51, 1.81, 19.99, 19.98, 10.09, 12.07});
  return rows;
}

// Weighted kernel-mode cycles of one row's op mix.
Result<double> MixCycles(CompiledKernel& kernel, const PhoronixRow& row, uint64_t buffer_seed) {
  CpuOptions copts;
  copts.mpx_enabled = kernel.config.mpx;
  Cpu cpu(kernel.image.get(), CostModel(), copts);
  auto buf = SetUpOpBuffer(*kernel.image, buffer_seed);
  if (!buf.ok()) {
    return buf.status();
  }
  double total = 0;
  for (const auto& [op, weight] : row.ops) {
    auto m = MeasureOp(cpu, *buf, op);
    if (!m.ok()) {
      return m.status();
    }
    total += static_cast<double>(m->deci_cycles) * weight;
  }
  return total;
}

}  // namespace

const std::vector<PhoronixRow>& PhoronixRows() {
  static const std::vector<PhoronixRow>* rows = new std::vector<PhoronixRow>(BuildRows());
  return *rows;
}

Result<Table2Matrix> RunTable2(uint64_t seed) {
  const auto& rows = PhoronixRows();
  KernelSource source = MakeBenchSource(seed);

  auto vanilla = CompileKernel(source, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  if (!vanilla.ok()) {
    return vanilla.status();
  }

  std::vector<Column> columns = {
      {"SFI", ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx},
      {"MPX", ProtectionConfig::MpxOnly(), LayoutKind::kKrx},
      {"SFI+D", ProtectionConfig::Full(false, RaScheme::kDecoy, seed), LayoutKind::kKrx},
      {"SFI+X", ProtectionConfig::Full(false, RaScheme::kEncrypt, seed), LayoutKind::kKrx},
      {"MPX+D", ProtectionConfig::Full(true, RaScheme::kDecoy, seed), LayoutKind::kKrx},
      {"MPX+X", ProtectionConfig::Full(true, RaScheme::kEncrypt, seed), LayoutKind::kKrx},
  };

  Table2Matrix matrix;
  for (const PhoronixRow& row : rows) {
    matrix.row_names.push_back(row.name);
  }
  matrix.percent.assign(rows.size(), {});

  // Vanilla kernel-mode cycles per row.
  std::vector<double> base_kernel;
  for (const PhoronixRow& row : rows) {
    auto c = MixCycles(*vanilla, row, seed);
    if (!c.ok()) {
      return c.status();
    }
    base_kernel.push_back(*c);
  }

  matrix.average.assign(columns.size(), 0.0);
  for (size_t ci = 0; ci < columns.size(); ++ci) {
    matrix.column_names.push_back(columns[ci].name);
    auto kernel = CompileKernel(source, {columns[ci].config, columns[ci].layout});
    if (!kernel.ok()) {
      return kernel.status();
    }
    for (size_t ri = 0; ri < rows.size(); ++ri) {
      auto c = MixCycles(*kernel, rows[ri], seed);
      if (!c.ok()) {
        return c.status();
      }
      double f = rows[ri].kernel_fraction;
      double user = base_kernel[ri] * (1.0 - f) / f;
      double total_base = user + base_kernel[ri];
      double total_new = user + *c;
      double pct = OverheadPercent(total_base, total_new);
      matrix.percent[ri].push_back(pct);
      matrix.average[ci] += pct / static_cast<double>(rows.size());
    }
  }
  return matrix;
}

}  // namespace krx
