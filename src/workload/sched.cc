#include "src/workload/sched.h"

#include "src/ir/builder.h"
#include "src/mem/phys_mem.h"

namespace krx {
namespace {

// Task struct offsets (exported via sched.h for the oops supervisor).
constexpr int64_t kTaskState = kSchedTaskStateOffset;
constexpr int64_t kTaskRsp = kSchedTaskRspOffset;
constexpr int64_t kTaskStackTop = kSchedTaskStackTopOffset;

constexpr int64_t kStateFree = kSchedStateFree;
constexpr int64_t kStateReady = kSchedStateReady;
constexpr int64_t kStateDone = kSchedStateDone;

// The six registers the context switch preserves (SysV callee-saved).
constexpr Reg kSavedRegs[] = {Reg::kRbx, Reg::kRbp, Reg::kR12,
                              Reg::kR13, Reg::kR14, Reg::kR15};
constexpr int64_t kSwitchFrameBytes = kSchedSwitchFrameBytes;

// Loads the address of sched_tasks[index_reg] into dst (clobbers scratch).
void EmitTaskAddr(FunctionBuilder& b, int32_t tasks_sym, Reg dst, Reg index, Reg scratch) {
  b.Emit(Instruction::Lea(dst, MemOperand::RipRelSym(tasks_sym)));
  b.Emit(Instruction::MovRR(scratch, index));
  b.Emit(Instruction::ShlRI(scratch, 6));
  b.Emit(Instruction::AddRR(dst, scratch));
}

// task_switch(prev=rdi, next=rsi): the switch_to analogue. Exempt from all
// passes: its ret "returns" into whatever context the next task saved (or
// the entry trampoline a fresh task was spawned with).
void EmitTaskSwitch(KernelSource* src) {
  int32_t tasks = src->symbols.Intern("sched_tasks", SymbolKind::kData);
  int32_t current = src->symbols.Intern("sched_current", SymbolKind::kData);
  FunctionBuilder b("task_switch");
  for (Reg r : kSavedRegs) {
    b.Emit(Instruction::PushR(r));
  }
  EmitTaskAddr(b, tasks, Reg::kRbx, Reg::kRdi, Reg::kRcx);
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRbx, kTaskRsp), Reg::kRsp));
  EmitTaskAddr(b, tasks, Reg::kRbx, Reg::kRsi, Reg::kRcx);
  b.Emit(Instruction::Load(Reg::kRsp, MemOperand::Base(Reg::kRbx, kTaskRsp)));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(current), Reg::kRsi));
  for (int i = 5; i >= 0; --i) {
    b.Emit(Instruction::PopR(kSavedRegs[i]));
  }
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("task_switch");
}

// sched_yield(): round-robin to the next READY task (task 0, the init
// context, is always schedulable).
void EmitSchedYield(KernelSource* src) {
  int32_t tasks = src->symbols.Intern("sched_tasks", SymbolKind::kData);
  int32_t current = src->symbols.Intern("sched_current", SymbolKind::kData);
  FunctionBuilder b("sched_yield");
  const int32_t scan = b.ReserveBlock();
  const int32_t self = b.ReserveBlock();
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));
  b.Emit(Instruction::Load(Reg::kRdi, MemOperand::RipRelSym(current)));
  b.Emit(Instruction::MovRR(Reg::kRsi, Reg::kRdi));
  b.Bind(scan);
  b.Emit(Instruction::AddRI(Reg::kRsi, 1));
  b.Emit(Instruction::AndRI(Reg::kRsi, kSchedMaxTasks - 1));
  b.Emit(Instruction::Lea(Reg::kRcx, MemOperand::RipRelSym(tasks)));
  b.Emit(Instruction::MovRR(Reg::kRdx, Reg::kRsi));
  b.Emit(Instruction::ShlRI(Reg::kRdx, 6));
  b.Emit(Instruction::AddRR(Reg::kRcx, Reg::kRdx));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRcx, kTaskState)));
  b.Emit(Instruction::CmpRI(Reg::kRdx, kStateReady));
  b.Emit(Instruction::JccBlock(Cond::kNe, scan));
  b.Emit(Instruction::CmpRR(Reg::kRsi, Reg::kRdi));
  b.Emit(Instruction::JccBlock(Cond::kE, self));
  b.Emit(Instruction::CallSym(src->symbols.Intern("task_switch")));
  b.Bind(self);
  b.Emit(Instruction::AddRI(Reg::kRsp, 8));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("sched_yield");
}

// sys_spawn(entry_slot=rdi) -> task index | -1. Crafts the initial stack so
// that the first task_switch into the task "returns" into its entry.
void EmitSysSpawn(KernelSource* src, int64_t num_entries) {
  int32_t tasks = src->symbols.Intern("sched_tasks", SymbolKind::kData);
  int32_t entries = src->symbols.Intern("task_entries", SymbolKind::kData);
  FunctionBuilder b("sys_spawn");
  const int32_t scan = b.ReserveBlock();
  const int32_t found = b.ReserveBlock();
  const int32_t fail = b.ReserveBlock();
  // Validate the entry slot against the dispatch-table size.
  b.Emit(Instruction::CmpRI(Reg::kRdi, num_entries - 1));
  b.Emit(Instruction::JccBlock(Cond::kA, fail));
  // Find a free slot (1..7; slot 0 is init).
  b.Emit(Instruction::MovRI(Reg::kRax, 0));
  b.Bind(scan);
  b.Emit(Instruction::AddRI(Reg::kRax, 1));
  b.Emit(Instruction::CmpRI(Reg::kRax, kSchedMaxTasks));
  b.Emit(Instruction::JccBlock(Cond::kE, fail));
  EmitTaskAddr(b, tasks, Reg::kRbx, Reg::kRax, Reg::kRcx);
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRbx, kTaskState)));
  b.Emit(Instruction::CmpRI(Reg::kRdx, kStateFree));
  b.Emit(Instruction::JccBlock(Cond::kNe, scan));
  b.Emit(Instruction::JmpBlock(found));
  b.Bind(found);
  // entry = task_entries[slot].
  b.Emit(Instruction::Lea(Reg::kRcx, MemOperand::RipRelSym(entries)));
  b.Emit(Instruction::MovRR(Reg::kRdx, Reg::kRdi));
  b.Emit(Instruction::ShlRI(Reg::kRdx, 3));
  b.Emit(Instruction::AddRR(Reg::kRcx, Reg::kRdx));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRcx, 0)));
  // Craft the initial frame below the stack top: six zeroed saved
  // registers, then the entry as the switch's return address.
  b.Emit(Instruction::Load(Reg::kR8, MemOperand::Base(Reg::kRbx, kTaskStackTop)));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kR8, -8), Reg::kRdx));
  b.Emit(Instruction::MovRI(Reg::kRcx, 0));
  for (int i = 2; i <= 7; ++i) {
    b.Emit(Instruction::Store(MemOperand::Base(Reg::kR8, -8 * i), Reg::kRcx));
  }
  b.Emit(Instruction::MovRR(Reg::kRcx, Reg::kR8));
  b.Emit(Instruction::SubRI(Reg::kRcx, kSwitchFrameBytes));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRbx, kTaskRsp), Reg::kRcx));
  b.Emit(Instruction::MovRI(Reg::kRcx, kStateReady));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRbx, kTaskState), Reg::kRcx));
  b.Emit(Instruction::Ret());  // rax = task index
  b.Bind(fail);
  b.Emit(Instruction::MovRI(Reg::kRax, -1));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("sys_spawn");
}

// sched_run(limit=rdi): the init task's loop — yield until the shared
// counter reaches the limit (i.e. until the workers finish).
void EmitSchedRun(KernelSource* src) {
  int32_t counter = src->symbols.Intern("sched_counter", SymbolKind::kData);
  FunctionBuilder b("sched_run");
  const int32_t loop = b.ReserveBlock();
  b.Emit(Instruction::SubRI(Reg::kRsp, 16));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRsp, 0), Reg::kRdi));
  b.Bind(loop);
  b.Emit(Instruction::CallSym(src->symbols.Intern("sched_yield")));
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(counter)));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::Base(Reg::kRsp, 0)));
  b.Emit(Instruction::CmpRR(Reg::kRcx, Reg::kRdx));
  b.Emit(Instruction::JccBlock(Cond::kB, loop));
  b.Emit(Instruction::MovRR(Reg::kRax, Reg::kRcx));
  b.Emit(Instruction::AddRI(Reg::kRsp, 16));
  b.Emit(Instruction::Ret());
  src->functions.push_back(b.Build());
  src->symbols.Intern("sched_run");
}

// A worker: bump the shared counter and its own run count, yield, repeat;
// when the counter passes 64, mark itself done and park.
void EmitWorker(KernelSource* src, const std::string& name, const std::string& run_counter) {
  int32_t counter = src->symbols.Intern("sched_counter", SymbolKind::kData);
  int32_t runs = src->symbols.Intern(run_counter, SymbolKind::kData);
  int32_t tasks = src->symbols.Intern("sched_tasks", SymbolKind::kData);
  int32_t current = src->symbols.Intern("sched_current", SymbolKind::kData);
  FunctionBuilder b(name);
  const int32_t loop = b.ReserveBlock();
  const int32_t park = b.ReserveBlock();
  const int32_t done = b.ReserveBlock();
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));  // tasks never return; keep a frame anyway
  b.Bind(loop);
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(counter)));
  b.Emit(Instruction::AddRI(Reg::kRcx, 1));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(counter), Reg::kRcx));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::RipRelSym(runs)));
  b.Emit(Instruction::AddRI(Reg::kRdx, 1));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(runs), Reg::kRdx));
  b.Emit(Instruction::CallSym(src->symbols.Intern("sched_yield")));
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(counter)));
  b.Emit(Instruction::CmpRI(Reg::kRcx, 64));
  b.Emit(Instruction::JccBlock(Cond::kAe, done));
  b.Emit(Instruction::JmpBlock(loop));
  b.Bind(done);
  // Mark self done; never scheduled again.
  b.Emit(Instruction::Load(Reg::kRdi, MemOperand::RipRelSym(current)));
  EmitTaskAddr(b, tasks, Reg::kRbx, Reg::kRdi, Reg::kRcx);
  b.Emit(Instruction::MovRI(Reg::kRcx, kStateDone));
  b.Emit(Instruction::Store(MemOperand::Base(Reg::kRbx, kTaskState), Reg::kRcx));
  b.Bind(park);
  b.Emit(Instruction::CallSym(src->symbols.Intern("sched_yield")));
  b.Emit(Instruction::JmpBlock(park));
  src->functions.push_back(b.Build());
  src->symbols.Intern(name);
}

// A rogue worker: behaves like a normal worker for its first two runs,
// then performs a wild register-based read of kernel text (_text). Under a
// range-check config that read traps into krx_handler (or raises #BR under
// MPX) — the injected in-kernel fault the kill-task policy must survive.
void EmitRogueWorker(KernelSource* src, const std::string& name,
                     const std::string& run_counter) {
  int32_t counter = src->symbols.Intern("sched_counter", SymbolKind::kData);
  int32_t runs = src->symbols.Intern(run_counter, SymbolKind::kData);
  int32_t text = src->symbols.Intern("_text", SymbolKind::kData);
  FunctionBuilder b(name);
  const int32_t loop = b.ReserveBlock();
  const int32_t behave = b.ReserveBlock();
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));
  b.Bind(loop);
  b.Emit(Instruction::Load(Reg::kRcx, MemOperand::RipRelSym(counter)));
  b.Emit(Instruction::AddRI(Reg::kRcx, 1));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(counter), Reg::kRcx));
  b.Emit(Instruction::Load(Reg::kRdx, MemOperand::RipRelSym(runs)));
  b.Emit(Instruction::AddRI(Reg::kRdx, 1));
  b.Emit(Instruction::Store(MemOperand::RipRelSym(runs), Reg::kRdx));
  b.Emit(Instruction::CmpRI(Reg::kRdx, 3));
  b.Emit(Instruction::JccBlock(Cond::kB, behave));
  // Third run: read kernel text through a computed base — a disclosure
  // attempt the R^X instrumentation must detect.
  b.Emit(Instruction::Lea(Reg::kRdi, MemOperand::RipRelSym(text)));
  b.Emit(Instruction::Load(Reg::kRdi, MemOperand::Base(Reg::kRdi, 0)));
  b.Bind(behave);
  b.Emit(Instruction::CallSym(src->symbols.Intern("sched_yield")));
  b.Emit(Instruction::JmpBlock(loop));
  src->functions.push_back(b.Build());
  src->symbols.Intern(name);
}

}  // namespace

std::set<std::string> SchedExemptFunctions() { return {"task_switch"}; }

void AddSched(KernelSource* src, bool with_rogue_worker) {
  std::vector<const char*> globals = {"sched_tasks", "sched_current", "sched_counter",
                                      "worker_a_runs", "worker_b_runs"};
  if (with_rogue_worker) {
    globals.push_back("worker_c_runs");
  }
  for (const char* name : globals) {
    DataObject obj;
    obj.name = name;
    obj.kind = SectionKind::kData;
    obj.bytes.assign(std::string(name) == "sched_tasks"
                         ? kSchedMaxTasks * kSchedTaskBytes
                         : 8,
                     0);
    src->data_objects.push_back(std::move(obj));
  }
  EmitTaskSwitch(src);
  EmitSchedYield(src);
  EmitSysSpawn(src, with_rogue_worker ? 3 : 2);
  EmitSchedRun(src);
  EmitWorker(src, "worker_a", "worker_a_runs");
  EmitWorker(src, "worker_b", "worker_b_runs");
  if (with_rogue_worker) {
    EmitRogueWorker(src, "worker_c", "worker_c_runs");
  }

  DataObject entries;
  entries.name = "task_entries";
  entries.kind = SectionKind::kRodata;
  entries.bytes.assign(with_rogue_worker ? 24 : 16, 0);
  entries.pointer_slots.push_back({0, src->symbols.Intern("worker_a"), 0});
  entries.pointer_slots.push_back({8, src->symbols.Intern("worker_b"), 0});
  if (with_rogue_worker) {
    entries.pointer_slots.push_back({16, src->symbols.Intern("worker_c"), 0});
  }
  src->data_objects.push_back(std::move(entries));
}

Status SetUpTaskStacks(KernelImage& image) {
  auto tasks = image.symbols().AddressOf("sched_tasks");
  if (!tasks.ok()) {
    return tasks.status();
  }
  // Task 0 is the init context: no stack of its own (it saves the
  // caller's). Tasks 1..7 get 2-page kernel stacks.
  for (int i = 1; i < kSchedMaxTasks; ++i) {
    auto stack = image.AllocDataPages(2);
    if (!stack.ok()) {
      return stack.status();
    }
    KRX_RETURN_IF_ERROR(image.Poke64(
        *tasks + static_cast<uint64_t>(i) * kSchedTaskBytes + kTaskStackTop,
        *stack + 2 * kPageSize - 16));
  }
  // Init task (0) is READY; it is the current task.
  KRX_RETURN_IF_ERROR(image.Poke64(*tasks + kTaskState, kStateReady));
  auto current = image.symbols().AddressOf("sched_current");
  if (!current.ok()) {
    return current.status();
  }
  return image.Poke64(*current, 0);
}

Result<std::vector<std::pair<uint64_t, uint64_t>>> SchedLiveStackRanges(
    const KernelImage& image) {
  auto tasks = image.symbols().AddressOf("sched_tasks");
  if (!tasks.ok()) {
    return tasks.status();
  }
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  // Task 0 (init) runs on the harness Cpu's own stack; when an epoch fires
  // the init context is at a run boundary with nothing live below it, so
  // only the suspended tasks 1..7 carry in-flight frames.
  for (int i = 1; i < kSchedMaxTasks; ++i) {
    const uint64_t task = *tasks + static_cast<uint64_t>(i) * kSchedTaskBytes;
    auto state = image.Peek64(task + kTaskState);
    KRX_RETURN_IF_ERROR(state.status());
    if (static_cast<int64_t>(*state) != kStateReady) continue;
    auto rsp = image.Peek64(task + kTaskRsp);
    KRX_RETURN_IF_ERROR(rsp.status());
    auto top = image.Peek64(task + kTaskStackTop);
    KRX_RETURN_IF_ERROR(top.status());
    // A READY task that has never run yet still has a synthetic switch frame
    // below its saved %rsp; a zero saved %rsp means spawn never initialized
    // it (not a live stack).
    if (*top == 0 || *rsp == 0 || *rsp >= *top) continue;
    ranges.emplace_back(*rsp, *top);
  }
  return ranges;
}

}  // namespace krx
