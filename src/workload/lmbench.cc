#include "src/workload/lmbench.h"

namespace krx {

const char* const kTable1ColumnNames[kNumTable1Columns] = {
    "SFI(-O0)", "SFI(-O1)", "SFI(-O2)", "SFI(-O3)", "MPX",      "D", "X",
    "SFI+D",    "SFI+X",    "MPX+D",    "MPX+X",    "SFI(-O4)",
};

namespace {

OpProfile P(std::string name) {
  OpProfile p;
  p.name = std::move(name);
  return p;
}

std::vector<LmbenchRow> BuildRows() {
  std::vector<LmbenchRow> rows;

  auto add = [&rows](std::string display, bool bandwidth, OpProfile p,
                     std::initializer_list<double> paper) {
    LmbenchRow row;
    row.display_name = std::move(display);
    row.bandwidth = bandwidth;
    row.profile = std::move(p);
    int i = 0;
    for (double v : paper) {
      row.paper[i++] = v;
    }
    row.paper[kColSfiO4] = row.paper[kColSfiO3];  // no paper number for O4
    rows.push_back(std::move(row));
  };

  {
    OpProfile p = P("null_syscall");
    p.loop_iters = 1;
    p.coalescible_reads = 4;
    p.chased_reads = 18;
    p.flagful_reads = 1;
    p.writes = 1;
    p.alu = 10;
    p.rsp_reads = 1;
    add("syscall()", false, p,
        {126.90, 13.41, 13.44, 12.74, 0.49, 0.62, 2.70, 13.67, 15.91, 2.24, 2.92});
  }
  {
    // Path walk: pointer chases over dentries, permission checks, fd setup.
    OpProfile p = P("open_close");
    p.loop_iters = 6;
    p.coalescible_reads = 4;
    p.chased_reads = 20;
    p.indexed_reads = 1;
    p.flagful_reads = 2;
    p.writes = 3;
    p.alu = 6;
    p.calls = 4;
    p.leaf_depth = 3;
    p.leaf_reads = 3;
    add("open()/close()", false, p,
        {306.24, 39.01, 37.45, 24.82, 3.47, 15.03, 18.30, 40.68, 44.56, 19.44, 22.79});
  }
  {
    OpProfile p = P("read_write");
    p.loop_iters = 4;
    p.coalescible_reads = 6;
    p.chased_reads = 16;
    p.flagful_reads = 1;
    p.writes = 2;
    p.alu = 4;
    p.calls = 2;
    p.leaf_depth = 2;
    p.leaf_reads = 2;
    p.rep_movs_qwords = 64;
    add("read()/write()", false, p,
        {215.04, 22.05, 19.51, 18.11, 0.63, 7.67, 10.74, 29.37, 34.88, 9.61, 12.43});
  }
  {
    OpProfile p = P("select_10");
    p.loop_iters = 10;
    p.coalescible_reads = 3;
    p.chased_reads = 5;
    p.alu = 8;
    add("select(10 fds)", false, p,
        {119.33, 10.24, 9.93, 10.25, 1.26, 3.00, 5.49, 15.05, 16.96, 4.59, 6.37});
  }
  {
    // Long fd-scan loop off one base register: O3 coalescing collapses it.
    OpProfile p = P("select_100_tcp");
    p.loop_iters = 100;
    p.coalescible_reads = 16;
    p.alu = 4;
    p.rsp_reads = 2;
    add("select(100 TCP fds)", false, p,
        {1037.33, 59.03, 49.00, 0.0, 0.0, 0.0, 5.08, 1.78, 9.29, 0.39, 7.43});
  }
  {
    // stat-struct copy: many same-base reads.
    OpProfile p = P("fstat");
    p.loop_iters = 2;
    p.coalescible_reads = 14;
    p.chased_reads = 5;
    p.alu = 4;
    p.calls = 2;
    p.leaf_depth = 2;
    p.leaf_reads = 4;
    add("fstat()", false, p,
        {489.79, 15.31, 13.22, 7.91, 0.0, 4.46, 12.92, 16.30, 26.68, 8.36, 14.64});
  }
  {
    OpProfile p = P("mmap_munmap");
    p.loop_iters = 8;
    p.coalescible_reads = 2;
    p.chased_reads = 1;
    p.writes = 6;
    p.alu = 8;
    p.calls = 2;
    p.leaf_depth = 2;
    p.leaf_reads = 1;
    p.rep_stos_qwords = 128;
    add("mmap()/munmap()", false, p,
        {180.88, 7.24, 6.62, 1.97, 1.12, 4.83, 5.89, 7.57, 8.71, 6.86, 8.27});
  }
  {
    OpProfile p = P("fork_exit");
    p.loop_iters = 2;
    p.coalescible_reads = 6;
    p.chased_reads = 12;
    p.writes = 4;
    p.calls = 10;
    p.leaf_depth = 5;
    p.leaf_reads = 3;
    p.rep_movs_qwords = 192;
    p.rep_stos_qwords = 128;
    add("fork()+exit()", false, p,
        {208.86, 14.32, 14.26, 7.22, 0.0, 12.37, 16.57, 24.03, 21.48, 13.77, 11.64});
  }
  {
    OpProfile p = P("fork_execve");
    p.loop_iters = 2;
    p.coalescible_reads = 4;
    p.chased_reads = 20;
    p.flagful_reads = 2;
    p.writes = 4;
    p.calls = 10;
    p.leaf_depth = 5;
    p.leaf_reads = 4;
    p.rep_movs_qwords = 128;
    add("fork()+execve()", false, p,
        {191.83, 10.30, 21.75, 23.15, 0.0, 13.93, 16.38, 29.91, 34.18, 17.00, 17.42});
  }
  {
    OpProfile p = P("fork_binsh");
    p.loop_iters = 3;
    p.coalescible_reads = 4;
    p.chased_reads = 14;
    p.flagful_reads = 1;
    p.writes = 4;
    p.calls = 9;
    p.leaf_depth = 5;
    p.leaf_reads = 3;
    p.rep_movs_qwords = 192;
    add("fork()+/bin/sh", false, p,
        {113.77, 11.62, 19.22, 12.98, 6.27, 12.37, 15.44, 23.66, 22.94, 18.40, 16.66});
  }
  {
    OpProfile p = P("sigaction");
    p.loop_iters = 1;
    p.coalescible_reads = 2;
    p.chased_reads = 1;
    p.writes = 2;
    p.alu = 24;
    add("sigaction()", false, p,
        {63.49, 0.19, 0.0, 0.16, 1.01, 0.59, 2.20, 0.46, 2.27, 0.95, 2.43});
  }
  {
    OpProfile p = P("signal_delivery");
    p.loop_iters = 1;
    p.coalescible_reads = 4;
    p.chased_reads = 8;
    p.writes = 3;
    p.alu = 6;
    p.calls = 1;
    p.leaf_depth = 2;
    p.leaf_reads = 2;
    p.rep_movs_qwords = 32;
    add("Signal delivery", false, p,
        {123.29, 18.05, 16.74, 7.81, 1.12, 3.49, 4.94, 11.39, 13.31, 5.37, 6.52});
  }
  {
    OpProfile p = P("protection_fault");
    p.loop_iters = 1;
    p.coalescible_reads = 2;
    p.chased_reads = 2;
    p.alu = 20;
    p.rsp_reads = 1;
    add("Protection fault", false, p,
        {13.40, 1.26, 0.97, 1.33, 0.0, 1.69, 3.27, 3.34, 5.73, 1.60, 3.39});
  }
  {
    OpProfile p = P("page_fault");
    p.loop_iters = 1;
    p.coalescible_reads = 4;
    p.chased_reads = 10;
    p.writes = 4;
    p.alu = 6;
    p.calls = 1;
    p.leaf_depth = 2;
    p.leaf_reads = 3;
    p.rep_stos_qwords = 64;
    add("Page fault", false, p,
        {202.84, 0.0, 0.0, 7.38, 1.64, 7.83, 9.40, 15.69, 17.30, 10.80, 12.11});
  }
  {
    OpProfile p = P("pipe_lat");
    p.loop_iters = 2;
    p.coalescible_reads = 6;
    p.chased_reads = 12;
    p.calls = 3;
    p.leaf_depth = 2;
    p.leaf_reads = 2;
    p.rep_movs_qwords = 96;
    add("Pipe I/O", false, p,
        {126.26, 22.91, 21.39, 15.12, 0.42, 4.30, 6.89, 19.39, 22.39, 6.07, 7.62});
  }
  {
    OpProfile p = P("unix_sock_lat");
    p.loop_iters = 2;
    p.coalescible_reads = 6;
    p.chased_reads = 12;
    p.flagful_reads = 1;
    p.calls = 3;
    p.leaf_depth = 2;
    p.leaf_reads = 2;
    p.rep_movs_qwords = 96;
    add("UNIX socket I/O", false, p,
        {148.11, 12.39, 17.31, 11.69, 4.74, 7.34, 10.04, 16.09, 16.64, 6.88, 8.80});
  }
  {
    OpProfile p = P("tcp_sock_lat");
    p.loop_iters = 3;
    p.coalescible_reads = 6;
    p.chased_reads = 16;
    p.flagful_reads = 1;
    p.writes = 2;
    p.calls = 3;
    p.leaf_depth = 3;
    p.leaf_reads = 2;
    p.rep_movs_qwords = 96;
    add("TCP socket I/O", false, p,
        {171.93, 25.15, 20.85, 16.33, 1.91, 4.83, 8.30, 21.63, 24.43, 8.20, 9.71});
  }
  {
    OpProfile p = P("udp_sock_lat");
    p.loop_iters = 3;
    p.coalescible_reads = 6;
    p.chased_reads = 16;
    p.flagful_reads = 1;
    p.writes = 3;
    p.calls = 3;
    p.leaf_depth = 3;
    p.leaf_reads = 2;
    p.rep_movs_qwords = 96;
    add("UDP socket I/O", false, p,
        {208.75, 25.71, 30.89, 16.96, 0.0, 7.38, 12.76, 24.98, 26.80, 11.22, 13.28});
  }

  // ---- Bandwidth section: dominated by bulk copies. ----
  {
    OpProfile p = P("pipe_bw");
    p.loop_iters = 4;
    p.coalescible_reads = 2;
    p.calls = 1;
    p.leaf_depth = 1;
    p.leaf_reads = 1;
    p.rep_movs_qwords = 2048;
    add("Pipe I/O (bw)", true, p,
        {46.70, 0.96, 1.62, 0.68, 0.0, 0.59, 1.00, 2.80, 3.53, 0.78, 1.61});
  }
  {
    OpProfile p = P("unix_sock_bw");
    p.loop_iters = 16;
    p.coalescible_reads = 6;
    p.chased_reads = 6;
    p.calls = 1;
    p.leaf_depth = 1;
    p.leaf_reads = 2;
    p.rep_movs_qwords = 192;
    add("UNIX socket I/O (bw)", true, p,
        {35.77, 3.54, 4.81, 6.43, 1.43, 2.79, 3.39, 5.71, 7.00, 3.17, 3.41});
  }
  {
    OpProfile p = P("tcp_sock_bw");
    p.loop_iters = 16;
    p.coalescible_reads = 8;
    p.chased_reads = 5;
    p.flagful_reads = 1;
    p.calls = 1;
    p.leaf_depth = 1;
    p.leaf_reads = 2;
    p.rep_movs_qwords = 192;
    add("TCP socket I/O (bw)", true, p,
        {53.96, 10.90, 10.25, 6.05, 0.0, 3.71, 4.40, 9.82, 9.85, 3.64, 4.87});
  }
  {
    // mmap'd I/O: no kernel-side copy at all.
    OpProfile p = P("mmap_io_bw");
    p.loop_iters = 4;
    p.alu = 30;
    p.rsp_reads = 2;
    add("mmap() I/O (bw)", true, p, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  }
  {
    OpProfile p = P("file_io_bw");
    p.loop_iters = 4;
    p.coalescible_reads = 4;
    p.chased_reads = 2;
    p.rep_movs_qwords = 1024;
    add("File I/O (bw)", true, p,
        {23.57, 0.0, 0.0, 0.67, 0.28, 1.21, 1.46, 1.81, 2.23, 1.74, 1.92});
  }

  return rows;
}

}  // namespace

const std::vector<LmbenchRow>& LmbenchRows() {
  static const std::vector<LmbenchRow>* rows = new std::vector<LmbenchRow>(BuildRows());
  return *rows;
}

}  // namespace krx
