// A cooperative in-kernel scheduler with genuine stack switching, written
// in krx64 IR: task structs, per-task kernel stacks, a switch_to-style
// context switch, round-robin yield, and spawn-by-dispatch-table.
//
// task_switch is the reproduction's "hand-written assembly": like Linux's
// switch_to, it manipulates %rsp directly and its return address changes
// identity across the switch, so it must be *exempt* from the kR^X passes
// (§6: the RTL plugins cannot instrument assembly). SchedExemptFunctions()
// returns the set to merge into ProtectionConfig::exempt_functions.
//
// Exported kernel symbols:
//   task_switch(prev, next)      — save/switch/restore (assembly-style)
//   sched_yield()                — round-robin to the next READY task
//   sys_spawn(entry_slot)        — create a task running task_entries[slot]
//   sched_run(counter_limit)     — init-task loop: yield until the shared
//                                  counter reaches the limit
// Data: sched_tasks (8 x 64B: state, saved rsp, stack top), sched_current,
// sched_counter, worker_a_runs, worker_b_runs, task_entries (fn pointers).
// Task states: 0 = free, 1 = ready, 2 = done.
#ifndef KRX_SRC_WORKLOAD_SCHED_H_
#define KRX_SRC_WORKLOAD_SCHED_H_

#include <set>
#include <string>

#include "src/plugin/pipeline.h"

namespace krx {

inline constexpr int kSchedMaxTasks = 8;
inline constexpr uint64_t kSchedTaskBytes = 64;

// Adds the scheduler + two worker tasks to the source.
void AddSched(KernelSource* source);

// Must be merged into the protection config of any kernel using AddSched.
std::set<std::string> SchedExemptFunctions();

// Allocates per-task kernel stacks and initializes the task table: task 0
// becomes the caller's (init) context. Call once after CompileKernel.
Status SetUpTaskStacks(KernelImage& image);

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_SCHED_H_
