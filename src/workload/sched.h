// A cooperative in-kernel scheduler with genuine stack switching, written
// in krx64 IR: task structs, per-task kernel stacks, a switch_to-style
// context switch, round-robin yield, and spawn-by-dispatch-table.
//
// task_switch is the reproduction's "hand-written assembly": like Linux's
// switch_to, it manipulates %rsp directly and its return address changes
// identity across the switch, so it must be *exempt* from the kR^X passes
// (§6: the RTL plugins cannot instrument assembly). SchedExemptFunctions()
// returns the set to merge into ProtectionConfig::exempt_functions.
//
// Exported kernel symbols:
//   task_switch(prev, next)      — save/switch/restore (assembly-style)
//   sched_yield()                — round-robin to the next READY task
//   sys_spawn(entry_slot)        — create a task running task_entries[slot]
//   sched_run(counter_limit)     — init-task loop: yield until the shared
//                                  counter reaches the limit
// Data: sched_tasks (8 x 64B: state, saved rsp, stack top), sched_current,
// sched_counter, worker_a_runs, worker_b_runs, task_entries (fn pointers).
// Task states: 0 = free, 1 = ready, 2 = done.
#ifndef KRX_SRC_WORKLOAD_SCHED_H_
#define KRX_SRC_WORKLOAD_SCHED_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/plugin/pipeline.h"

namespace krx {

inline constexpr int kSchedMaxTasks = 8;
inline constexpr uint64_t kSchedTaskBytes = 64;

// Task struct offsets and states, shared with the oops-recovery supervisor
// (src/fault/recovery.h) which reaps tasks and restores saved contexts.
inline constexpr int64_t kSchedTaskStateOffset = 0;
inline constexpr int64_t kSchedTaskRspOffset = 8;
inline constexpr int64_t kSchedTaskStackTopOffset = 16;
inline constexpr int64_t kSchedStateFree = 0;
inline constexpr int64_t kSchedStateReady = 1;
inline constexpr int64_t kSchedStateDone = 2;
// The task_switch frame below a saved %rsp: r15, r14, r13, r12, rbp, rbx,
// then the return address (the saved regs are pushed rbx-first).
inline constexpr int64_t kSchedSwitchFrameBytes = 8 * (6 + 1);

// Adds the scheduler + two worker tasks to the source. With
// `with_rogue_worker`, a third dispatch-table entry ("worker_c" /
// worker_c_runs) is added whose third iteration performs a wild read of
// kernel text — the in-kernel fault the kill-task oops policy must survive.
void AddSched(KernelSource* source, bool with_rogue_worker = false);

// Must be merged into the protection config of any kernel using AddSched.
std::set<std::string> SchedExemptFunctions();

// Allocates per-task kernel stacks and initializes the task table: task 0
// becomes the caller's (init) context. Call once after CompileKernel.
Status SetUpTaskStacks(KernelImage& image);

// The live stack extents of every suspended READY task: [saved %rsp,
// stack top) for tasks 1..7 whose saved context is valid. This is the
// scheduler's RerandEngine stack-range provider — the words in these
// ranges include saved in-flight (encrypted) return addresses that an
// epoch's xkey rotation must rewrite.
Result<std::vector<std::pair<uint64_t, uint64_t>>> SchedLiveStackRanges(
    const KernelImage& image);

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_SCHED_H_
