// Parameterized synthetic kernel operations.
//
// Each LMBench row of Table 1 is backed by one generated kernel entry point
// whose instruction mix is described by an OpProfile. The mix controls
// exactly the properties the kR^X instrumentation is sensitive to:
//   - reads off one long-lived base register => O3 coalescing collapses them,
//   - reads via freshly computed bases       => one check each (uncoalescible),
//   - reads between a flags def and its use  => the pushfq/popfq wrapper stays,
//   - indexed reads                          => lea-form checks (no O2 form),
//   - rep string copies                      => a single postmortem check,
//   - plain %rsp reads                       => exempt (guard-covered),
//   - call chains                            => return-address protection costs.
#ifndef KRX_SRC_WORKLOAD_OPS_H_
#define KRX_SRC_WORKLOAD_OPS_H_

#include <cstdint>
#include <string>

#include "src/plugin/pipeline.h"

namespace krx {

struct OpProfile {
  std::string name;          // entry symbol becomes "sys_<name>"
  int loop_iters = 8;        // main-loop trip count
  int coalescible_reads = 0; // loads [buf + 8k] off the same base
  int chased_reads = 0;      // loads via a freshly computed base (kills coalescing)
  int indexed_reads = 0;     // loads [buf + idx*8] (lea-form checks)
  int flagful_reads = 0;     // loads sandwiched between cmp and jcc (wrapper kept)
  int writes = 0;            // stores [buf + 8k]
  int alu = 0;               // register-only work
  int rsp_reads = 0;         // reads of own stack slots (exempt)
  int global_reads = 1;      // rip-relative reads of a kernel global (safe reads)
  int calls = 0;             // calls to the leaf chain, per iteration
  int leaf_depth = 0;        // length of the leaf call chain
  int leaf_reads = 2;        // loads per leaf
  int rep_movs_qwords = 0;   // bulk copy per iteration (one rep movsq)
  int rep_stos_qwords = 0;   // bulk fill per iteration (one rep stosq)
  bool tail_call_leaf = false;  // end with a tail call instead of ret
};

// Emits the op's entry function (named "sys_<profile.name>") plus its leaf
// chain into `source`. The entry takes the scratch-buffer address in %rdi
// and returns a value in %rax that depends only on the buffer contents —
// which makes vanilla and instrumented builds directly comparable.
std::string EmitKernelOp(KernelSource* source, const OpProfile& profile);

// Size (bytes) of the scratch buffer the generated ops expect.
inline constexpr uint64_t kOpBufferBytes = 64 * 1024;

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_OPS_H_
