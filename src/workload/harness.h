// Measurement harness: builds the 12 kernel variants (vanilla baseline plus
// the 11 Table-1 columns) from one source tree and measures cycle counts.
#ifndef KRX_SRC_WORKLOAD_HARNESS_H_
#define KRX_SRC_WORKLOAD_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/plugin/pipeline.h"
#include "src/workload/lmbench.h"

namespace krx {

struct Column {
  std::string name;
  ProtectionConfig config;
  LayoutKind layout = LayoutKind::kKrx;
};

// The 11 protection columns of Tables 1 and 2, in kTable1ColumnNames order.
std::vector<Column> Table1Columns(uint64_t seed);

// CLI-style config names shared by krx_objdump and krx_verify:
//   vanilla | sfi-o0..sfi-o4 | sfi | mpx | mpx-o4 | spec-barrier | spec-mask
//   | d | x | sfi+d | sfi+x | mpx+d | mpx+x. Returns false on an unknown
//   name.
bool ParseConfigName(const std::string& name, uint64_t seed, ProtectionConfig* config,
                     LayoutKind* layout);

// The accepted names, for usage messages.
inline constexpr const char* kConfigNamesUsage =
    "vanilla|sfi-o0..o4|mpx|mpx-o4|spec-barrier|spec-mask|d|x|sfi+d|sfi+x|mpx+d|mpx+x";

// Base corpus + one kernel op per LMBench row.
KernelSource MakeBenchSource(uint64_t seed);

// Per-row measurement of one kernel build: calls each row's op through a
// simulated mode switch and records deci-cycles. All rows must return
// cleanly; a range-check violation or exception is a build bug.
struct RowMeasurement {
  std::string row;
  uint64_t deci_cycles = 0;
  uint64_t instructions = 0;
  uint64_t rax = 0;  // semantic witness: must match across variants
};

Result<std::vector<RowMeasurement>> MeasureAllRows(CompiledKernel& kernel,
                                                   uint64_t buffer_seed = 0xB0F);

// Measures one op symbol on an already-set-up CPU/buffer.
Result<RowMeasurement> MeasureOp(Cpu& cpu, uint64_t buffer_vaddr, const std::string& op_symbol);

// Full Table-1 style matrix: overhead % per row per column vs. vanilla.
struct OverheadMatrix {
  std::vector<std::string> row_names;
  std::vector<std::string> column_names;
  // [row][column] -> % overhead
  std::vector<std::vector<double>> percent;
  // Vanilla per-row baselines (deci-cycles).
  std::vector<uint64_t> baseline;
};

// `randomized_builds`: diversified columns are measured over this many
// differently-seeded builds and averaged — the paper compiles the kernel
// ten times with identical configuration and averages (§7). The default of
// 3 keeps the harness fast while still smoothing permutation jitter.
Result<OverheadMatrix> RunTable1(uint64_t seed, int randomized_builds = 3);

}  // namespace krx

#endif  // KRX_SRC_WORKLOAD_HARNESS_H_
