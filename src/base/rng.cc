#include "src/base/rng.h"

namespace krx {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  KRX_CHECK(bound > 0);
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `bound` representable in 64 bits.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  KRX_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<int64_t>(Next());
  }
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextDouble() {
  // 53 uniform mantissa bits.
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xA3C59AC2ULL); }

}  // namespace krx
