// Small math helpers shared by the diversifier and the benchmarks.
#ifndef KRX_SRC_BASE_MATH_UTIL_H_
#define KRX_SRC_BASE_MATH_UTIL_H_

#include <cmath>
#include <cstdint>

namespace krx {

// Randomization entropy, in bits, of permuting `blocks` code blocks:
// lg(blocks!) computed via lgamma to stay exact for large block counts.
inline double PermutationEntropyBits(uint64_t blocks) {
  if (blocks < 2) {
    return 0.0;
  }
  return std::lgamma(static_cast<double>(blocks) + 1.0) / std::log(2.0);
}

// Smallest number of blocks whose permutation yields at least `bits` bits of
// entropy (i.e. min B with lg(B!) >= bits).
inline uint64_t BlocksForEntropyBits(double bits) {
  uint64_t b = 1;
  while (PermutationEntropyBits(b) < bits) {
    ++b;
  }
  return b;
}

// Percentage helper: 100 * (value - base) / base; 0 when base == 0.
inline double OverheadPercent(double base, double value) {
  if (base == 0.0) {
    return 0.0;
  }
  return 100.0 * (value - base) / base;
}

// Rounds a size up to the next multiple of `align` (align must be a power
// of two).
inline uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

inline bool IsAligned(uint64_t value, uint64_t align) { return (value & (align - 1)) == 0; }

}  // namespace krx

#endif  // KRX_SRC_BASE_MATH_UTIL_H_
