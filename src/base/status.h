// Lightweight status / result types used across the kR^X reproduction.
//
// The library avoids exceptions for control flow (per the kernel-systems
// guides): fallible operations return Status or Result<T>. Programming errors
// (violated preconditions) abort via KRX_CHECK.
#ifndef KRX_SRC_BASE_STATUS_H_
#define KRX_SRC_BASE_STATUS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace krx {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kPermissionDenied,
};

// Human-readable name of a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A status is a code plus an optional diagnostic message. Statuses are cheap
// to copy in the OK case and carry a heap string only on error.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
inline Status ResourceExhaustedError(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status PermissionDeniedError(std::string msg) {
  return Status(StatusCode::kPermissionDenied, std::move(msg));
}

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (std::get<Status>(data_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) {
      return Status::Ok();
    }
    return std::get<Status>(data_);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

// Fatal assertion for programming errors; always enabled.
#define KRX_CHECK(expr)                                         \
  do {                                                          \
    if (!(expr)) {                                              \
      ::krx::internal::CheckFailed(__FILE__, __LINE__, #expr);  \
    }                                                           \
  } while (0)

#define KRX_CHECK_OK(status_expr)                                              \
  do {                                                                         \
    const ::krx::Status krx_check_status_ = (status_expr);                     \
    if (!krx_check_status_.ok()) {                                             \
      std::fprintf(stderr, "status not ok: %s\n",                              \
                   krx_check_status_.ToString().c_str());                      \
      ::krx::internal::CheckFailed(__FILE__, __LINE__, #status_expr);          \
    }                                                                          \
  } while (0)

// Propagates an error status from an expression returning Status.
#define KRX_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::krx::Status krx_status_ = (expr);       \
    if (!krx_status_.ok()) {                  \
      return krx_status_;                     \
    }                                         \
  } while (0)

}  // namespace krx

#endif  // KRX_SRC_BASE_STATUS_H_
