// Deterministic pseudo-random number generation.
//
// All randomized components of the reproduction (code diversification, xkey
// replenishment, workload generation, attack guessing) draw from Rng so that
// every experiment is reproducible from a seed. The generator is
// xoshiro256** seeded via splitmix64, which is the standard seeding recipe.
#ifndef KRX_SRC_BASE_RNG_H_
#define KRX_SRC_BASE_RNG_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"

namespace krx {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  // Uniform double in [0, 1).
  double NextDouble();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) {
      return;
    }
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  // Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace krx

#endif  // KRX_SRC_BASE_RNG_H_
