// Deterministic pseudo-random number generation.
//
// All randomized components of the reproduction (code diversification, xkey
// replenishment, workload generation, attack guessing) draw from Rng so that
// every experiment is reproducible from a seed. The generator is
// xoshiro256** seeded via splitmix64, which is the standard seeding recipe.
//
// Thread-safety contract: Rng is thread-COMPATIBLE, not thread-safe. Every
// draw mutates the four state words with no synchronization, so concurrent
// use of one Rng is a data race (torn state, repeated or corrupted outputs).
// The safe patterns are:
//   - one Rng per thread, derived up front via Fork() (what the pipeline
//     and the bench driver do), or
//   - a LockedRng (below) when a single stream genuinely must be shared,
//     e.g. the re-randomization epoch thread drawing entropy while Cpus run.
#ifndef KRX_SRC_BASE_RNG_H_
#define KRX_SRC_BASE_RNG_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/base/status.h"

namespace krx {

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  // avoid modulo bias.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Bernoulli trial with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  // Uniform double in [0, 1).
  double NextDouble();

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    if (items.size() < 2) {
      return;
    }
    for (size_t i = items.size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  // Derives an independent child generator (for per-component streams).
  Rng Fork();

 private:
  uint64_t state_[4];
};

// Mutex-wrapped Rng for streams that must be shared across threads. Each
// call atomically consumes exactly one (or, for Fork, one seeding) draw
// from the underlying sequence, so the *multiset* of values handed out is
// deterministic for a given seed and draw count even though the
// interleaving across threads is not.
class LockedRng {
 public:
  explicit LockedRng(uint64_t seed) : rng_(seed) {}

  uint64_t Next() {
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.Next();
  }
  uint64_t NextBelow(uint64_t bound) {
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.NextBelow(bound);
  }
  bool NextBool(double p = 0.5) {
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.NextBool(p);
  }
  // Hands out an independent unsynchronized child stream — the cheap way
  // for a thread to leave the lock behind after a single synchronized draw.
  Rng Fork() {
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.Fork();
  }

 private:
  std::mutex mu_;
  Rng rng_;
};

}  // namespace krx

#endif  // KRX_SRC_BASE_RNG_H_
