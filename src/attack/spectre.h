// Spectre-v1-style transient read-check bypass against the kR^X range
// checks (reproduction extension; src/spec has the execution model).
//
// The architectural contract of every sfi-*/mpx config is that a read whose
// effective address exceeds _krx_edata never retires: the cmp/ja pair jumps
// to krx_handler, bndcu raises #BR. The transient adversary sidesteps the
// contract without breaking it: it trains the victim's bounds branch (and,
// incidentally, the instrumentation's own check branches) not-taken, then
// calls the victim with idx = <code address> - spec_array. The
// architectural path rejects the index; the mispredicted wrong path runs
// the guarded load anyway, and the secret byte survives rollback as a
// touched probe cache line in the SideChannelObserver.
//
// The secret read is kernel *code* above _krx_edata — exactly the R^X
// read-confinement boundary §4 erects against JIT-ROP — so a successful
// leak is a direct transient breach of the paper's invariant. The
// spec-barrier and spec-mask config axes must drive the leak to zero.
#ifndef KRX_SRC_ATTACK_SPECTRE_H_
#define KRX_SRC_ATTACK_SPECTRE_H_

#include <cstddef>
#include <cstdint>

#include "src/attack/experiments.h"
#include "src/plugin/pipeline.h"

namespace krx {

struct SpectreV1Result {
  AttackOutcome outcome;          // success = >= 1 secret byte reconstructed
  uint64_t bytes_attempted = 0;
  uint64_t bytes_leaked = 0;      // probe lines matching the ground truth
  uint64_t windows_opened = 0;    // speculation windows during the attack
  uint64_t fence_kills = 0;       // windows killed by lfence (spec-barrier)
  uint64_t transient_faults = 0;  // windows killed by shadow faults (spec-mask)
};

// Runs the attack against `kernel` on a fresh speculation-enabled Cpu:
// leaks `secret_bytes` bytes of commit_creds' code through the spec_victim
// gadget and scores them against the image's ground truth.
SpectreV1Result SpectreV1Attack(CompiledKernel& kernel, size_t secret_bytes = 8);

}  // namespace krx

#endif  // KRX_SRC_ATTACK_SPECTRE_H_
