#include "src/attack/disclosure.h"

namespace krx {

DisclosureOracle::DisclosureOracle(Cpu* cpu, std::string leak_symbol) : cpu_(cpu) {
  auto addr = cpu_->image()->symbols().AddressOf(leak_symbol);
  KRX_CHECK(addr.ok());
  leak_entry_ = *addr;
}

Result<uint64_t> DisclosureOracle::Leak(uint64_t vaddr) {
  if (kernel_killed_) {
    return FailedPreconditionError("kernel halted by kR^X; no further interaction possible");
  }
  ++leaks_performed_;
  RunResult r = cpu_->CallFunction(leak_entry_, {vaddr});
  if (r.krx_violation) {
    kernel_killed_ = true;
    return PermissionDeniedError("R^X violation: read of execute-only memory detected");
  }
  if (r.xnr_violation) {
    kernel_killed_ = true;
    return PermissionDeniedError("XnR: data access to a non-resident code page detected");
  }
  switch (r.reason) {
    case StopReason::kReturned:
      return r.rax;
    case StopReason::kException:
      // An unmapped address (e.g. an unmapped physmap synonym of kernel
      // code): the kernel oopses on this access but survives in our model.
      return NotFoundError(std::string("leak faulted: ") + ExceptionKindName(r.exception));
    default:
      kernel_killed_ = true;
      return InternalError("kernel wedged during leak");
  }
}

Status DisclosureOracle::LeakBytes(uint64_t vaddr, uint64_t len, std::vector<uint8_t>* out) {
  out->clear();
  out->reserve(len);
  for (uint64_t off = 0; off < len; off += 8) {
    auto word = Leak(vaddr + off);
    if (!word.ok()) {
      return word.status();
    }
    for (int i = 0; i < 8 && off + static_cast<uint64_t>(i) < len; ++i) {
      out->push_back(static_cast<uint8_t>(*word >> (8 * i)));
    }
  }
  return Status::Ok();
}

}  // namespace krx
