#include "src/attack/experiments.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "src/base/rng.h"
#include "src/isa/encoding.h"
#include "src/kernel/layout.h"

namespace krx {
namespace {

// Corpus contract (see src/workload/corpus.h): sys_call_table slot 0 holds
// commit_creds; sys_deep_call leaves a deep stack of frames behind.
constexpr int kCommitCredsSlot = 0;
constexpr const char* kDeepSyscallName = "sys_deep_call";

CpuOptions LabCpuOptions(bool mpx) {
  CpuOptions o;
  o.mpx_enabled = mpx;
  return o;
}

bool InCodeRange(const ExploitLab& lab, uint64_t v) {
  // Region bases are architectural constants; only the *code layout inside*
  // is randomized (fine-grained KASLR), so the attacker knows the ranges.
  // Under kR^X-KAS the code region runs from __START_KERNEL_map to the top
  // of the address space (modules_text ends exactly at 2^64).
  (void)lab;
  return v >= kKrxCodeBase || (v >= kImageBase && v < kImageBase + (512ULL << 20));
}

}  // namespace

ExploitLab::ExploitLab(CompiledKernel* kernel)
    : kernel_(kernel),
      cpu_(kernel->image.get(), CostModel(), LabCpuOptions(kernel->config.mpx)) {
  auto buf = image().AllocDataPages(1);
  KRX_CHECK(buf.ok());
  payload_buf_ = *buf;
  ResetCreds();
}

void ExploitLab::ResetCreds() {
  auto addr = image().symbols().AddressOf(kCurrentCredName);
  KRX_CHECK(addr.ok());
  KRX_CHECK(image().Poke64(*addr, kUnprivilegedCred).ok());
}

bool ExploitLab::IsRoot() const {
  auto addr = image().symbols().AddressOf(kCurrentCredName);
  KRX_CHECK(addr.ok());
  auto v = image().Peek64(*addr);
  KRX_CHECK(v.ok());
  return *v == kRootCred;
}

RunResult ExploitLab::RunRopChain(const std::vector<uint64_t>& chain, uint64_t max_steps) {
  KRX_CHECK(!chain.empty());
  KRX_CHECK(chain.size() * 8 <= kPageSize);
  for (size_t i = 0; i < chain.size(); ++i) {
    KRX_CHECK(image().Poke64(payload_buf_ + 8 * i, chain[i]).ok());
  }
  // Hijacked control transfer: %rsp pivoted onto the payload; execution
  // "returns" into the first chain entry.
  cpu_.set_reg(Reg::kRsp, payload_buf_ + 8);
  return cpu_.RunAt(chain[0], RunOptions{.max_steps = max_steps});
}

std::vector<uint8_t> ExploitLab::DumpText() const {
  const PlacedSection* text = kernel_->image->FindSection(".text");
  KRX_CHECK(text != nullptr);
  std::vector<uint8_t> bytes(text->size);
  KRX_CHECK(kernel_->image->PeekBytes(text->vaddr, bytes.data(), bytes.size()).ok());
  return bytes;
}

uint64_t ExploitLab::TextBase() const {
  const PlacedSection* text = kernel_->image->FindSection(".text");
  KRX_CHECK(text != nullptr);
  return text->vaddr;
}

std::vector<uint64_t> ExploitLab::CollectReturnSites() const {
  std::vector<uint64_t> sites;
  const SymbolTable& symbols = kernel_->image->symbols();
  for (size_t i = 0; i < symbols.size(); ++i) {
    const Symbol& s = symbols.at(static_cast<int32_t>(i));
    if (!s.defined || s.kind != SymbolKind::kFunction || s.size == 0) {
      continue;
    }
    std::vector<uint8_t> bytes(s.size);
    if (!kernel_->image->PeekBytes(s.address, bytes.data(), bytes.size()).ok()) {
      continue;
    }
    size_t pos = 0;
    while (pos < bytes.size()) {
      auto dec = DecodeInstruction(bytes.data(), bytes.size(), pos);
      if (!dec.ok()) {
        break;
      }
      pos += dec->size;
      if (dec->inst.IsCall()) {
        sites.push_back(s.address + pos);
      }
    }
  }
  return sites;
}

AttackOutcome DirectRopAttack(ExploitLab& reference, ExploitLab& target) {
  AttackOutcome out;

  // Offline phase: the attacker disassembles the reference (vanilla) image
  // and precomputes gadget/function addresses.
  GadgetScanner scanner;
  std::vector<uint8_t> ref_text = reference.DumpText();
  std::vector<Gadget> gadgets = scanner.Scan(ref_text.data(), ref_text.size(),
                                             reference.TextBase());
  auto pop_rdi = GadgetScanner::FindPopReg(gadgets, Reg::kRdi);
  auto commit = reference.image().symbols().AddressOf(kCommitCredsName);
  if (!pop_rdi.has_value() || !commit.ok()) {
    out.detail = "reference build lacks the required gadgets";
    return out;
  }

  // Online phase: replay the precomputed chain against the target.
  target.ResetCreds();
  std::vector<uint64_t> chain = {pop_rdi->address, kRootCred, *commit, Cpu::kReturnSentinel};
  RunResult r = target.RunRopChain(chain);
  out.success = target.IsRoot();
  out.detail = out.success ? "current_cred overwritten via precomputed ROP chain"
                           : std::string("chain derailed: stop=") +
                                 (r.reason == StopReason::kException
                                      ? ExceptionKindName(r.exception)
                                      : "no-escalation");
  return out;
}

AttackOutcome DirectJitRopAttack(ExploitLab& target, int max_pages) {
  AttackOutcome out;
  DisclosureOracle oracle(&target.cpu());
  target.ResetCreds();

  auto finish = [&](bool success, std::string detail) {
    out.success = success;
    out.kernel_killed = oracle.kernel_killed();
    out.leaks = oracle.leaks_performed();
    out.detail = std::move(detail);
    return out;
  };

  // Stage 0: read code pointers from the (readable) syscall table.
  auto table = target.image().symbols().AddressOf(kSyscallTableName);
  if (!table.ok()) {
    return finish(false, "no syscall table");
  }
  int32_t table_sym = target.image().symbols().Find(kSyscallTableName);
  uint64_t table_size = target.image().symbols().at(table_sym).size;
  uint64_t slots = std::max<uint64_t>(table_size / 8, 1);
  std::vector<uint64_t> entries;
  for (uint64_t i = 0; i < slots; ++i) {
    auto v = oracle.Leak(*table + 8 * i);
    if (!v.ok()) {
      return finish(false, "kernel killed while reading syscall table");
    }
    entries.push_back(*v);
  }
  uint64_t commit_entry = entries[kCommitCredsSlot];

  // Stage 1: recursively harvest code pages through the disclosure bug.
  GadgetScanner scanner;
  std::vector<uint64_t> queue;
  std::unordered_set<uint64_t> visited;
  for (uint64_t e : entries) {
    if (InCodeRange(target, e)) {
      queue.push_back(PageFloor(e));
    }
  }
  std::optional<Gadget> pop_rdi;
  int pages_read = 0;
  while (!queue.empty() && !pop_rdi.has_value() && pages_read < max_pages) {
    uint64_t page = queue.back();
    queue.pop_back();
    if (!visited.insert(page).second) {
      continue;
    }
    std::vector<uint8_t> bytes;
    Status s = oracle.LeakBytes(page, kPageSize, &bytes);
    if (!s.ok()) {
      if (oracle.kernel_killed()) {
        return finish(false,
                      "R^X violation on first code-page read; kernel halted (JIT-ROP foiled)");
      }
      continue;  // unmapped page; try others
    }
    ++pages_read;
    std::vector<Gadget> gadgets = scanner.Scan(bytes.data(), bytes.size(), page);
    if (!pop_rdi.has_value()) {
      pop_rdi = GadgetScanner::FindPopReg(gadgets, Reg::kRdi);
    }
    // Follow direct transfers to discover further code pages (the recursive
    // step of JIT-ROP).
    for (size_t off = 0; off < bytes.size(); ++off) {
      auto dec = DecodeInstruction(bytes.data(), bytes.size(), off);
      if (!dec.ok()) {
        continue;
      }
      if (dec->inst.op == Opcode::kCallRel || dec->inst.op == Opcode::kJmpRel) {
        uint64_t dst = page + off + dec->size + static_cast<uint64_t>(dec->inst.imm);
        if (InCodeRange(target, dst) && visited.count(PageFloor(dst)) == 0) {
          queue.push_back(PageFloor(dst));
        }
      }
    }
  }
  if (!pop_rdi.has_value()) {
    return finish(false, "gadget harvest exhausted without a pop rdi; ret gadget");
  }

  // Stage 2: assemble and fire the payload.
  std::vector<uint64_t> chain = {pop_rdi->address, kRootCred, commit_entry,
                                 Cpu::kReturnSentinel};
  target.RunRopChain(chain);
  return finish(target.IsRoot(), target.IsRoot()
                                     ? "JIT-ROP harvested gadgets and escalated privileges"
                                     : "payload ran but escalation failed");
}

IndirectJitRopResult IndirectJitRopAttack(ExploitLab& target, int n_gadgets, int trials,
                                          uint64_t seed) {
  IndirectJitRopResult res;
  res.trials = trials;
  Cpu& cpu = target.cpu();

  // Populate the kernel stack with frames, then let them become remnants.
  auto deep = target.image().symbols().AddressOf(kDeepSyscallName);
  if (!deep.ok()) {
    res.outcome.detail = "no deep syscall to populate the stack";
    return res;
  }
  cpu.CallFunction(*deep, {8});

  // Harvest the (readable, physmap-resident) kernel stack.
  DisclosureOracle oracle(&cpu);
  std::vector<std::pair<uint64_t, uint64_t>> stack_words;  // (addr, value)
  for (uint64_t a = cpu.stack_base(); a + 8 <= cpu.stack_top(); a += 8) {
    auto v = oracle.Leak(a);
    if (v.ok()) {
      stack_words.emplace_back(a, *v);
    } else if (oracle.kernel_killed()) {
      res.outcome.kernel_killed = true;
      res.outcome.detail = "kernel killed while reading the stack";
      return res;
    }
  }
  res.outcome.leaks = oracle.leaks_performed();

  // Ground truth for verdicts (not attacker-visible).
  std::vector<uint64_t> sites_vec = target.CollectReturnSites();
  std::set<uint64_t> return_sites(sites_vec.begin(), sites_vec.end());

  // Classify: adjacent code-pointer pairs => decoy scheme; isolated code
  // pointers => cleartext return addresses.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  std::vector<uint64_t> singles;
  for (size_t i = 0; i < stack_words.size(); ++i) {
    bool cur = InCodeRange(target, stack_words[i].second);
    bool next = i + 1 < stack_words.size() && InCodeRange(target, stack_words[i + 1].second);
    if (cur && next) {
      pairs.emplace_back(stack_words[i].second, stack_words[i + 1].second);
      ++i;
    } else if (cur) {
      singles.push_back(stack_words[i].second);
    }
  }
  res.pairs_harvested = pairs.size();

  if (pairs.empty()) {
    // No {real, decoy} pairs. Either cleartext return addresses (no RA
    // protection: attack succeeds outright) or encrypted garbage.
    int usable = 0;
    for (uint64_t v : singles) {
      if (return_sites.count(v) > 0) {
        ++usable;
      }
    }
    if (usable >= n_gadgets) {
      res.successes = trials;
      res.success_rate = 1.0;
      res.outcome.success = true;
      res.outcome.detail = "cleartext return addresses harvested; call-preceded gadgets usable";
    } else {
      res.outcome.detail = "no usable return addresses on the stack (encryption in effect)";
    }
    return res;
  }

  // Decoy scheme: for each needed gadget the attacker must guess which of
  // the two adjacent values is the real return site.
  Rng rng(seed);
  if (static_cast<int>(pairs.size()) < n_gadgets) {
    res.outcome.detail = "not enough harvested pairs for the requested chain length";
    return res;
  }
  for (int t = 0; t < trials; ++t) {
    bool all_real = true;
    // Pick n distinct pairs for this trial.
    std::vector<size_t> idx(pairs.size());
    for (size_t i = 0; i < idx.size(); ++i) {
      idx[i] = i;
    }
    rng.Shuffle(idx);
    for (int g = 0; g < n_gadgets; ++g) {
      const auto& pr = pairs[idx[static_cast<size_t>(g)]];
      uint64_t guess = rng.NextBool(0.5) ? pr.first : pr.second;
      if (return_sites.count(guess) == 0) {
        all_real = false;  // stepped on the tripwire
        break;
      }
    }
    if (all_real) {
      ++res.successes;
    }
  }
  res.success_rate = static_cast<double>(res.successes) / static_cast<double>(trials);
  res.outcome.success = res.success_rate > 0.9;
  res.outcome.detail = "decoy guessing game";
  return res;
}

AttackOutcome KaslrSlideBypassAttack(ExploitLab& reference, ExploitLab& target) {
  AttackOutcome out;

  // Offline: gadget + anchor offsets from the reference build.
  GadgetScanner scanner;
  std::vector<uint8_t> ref_text = reference.DumpText();
  std::vector<Gadget> gadgets = scanner.Scan(ref_text.data(), ref_text.size(),
                                             reference.TextBase());
  auto pop_rdi = GadgetScanner::FindPopReg(gadgets, Reg::kRdi);
  auto ref_commit = reference.image().symbols().AddressOf(kCommitCredsName);
  if (!pop_rdi.has_value() || !ref_commit.ok()) {
    out.detail = "reference build lacks the required gadgets";
    return out;
  }

  // Online: leak one code pointer (syscall-table slot 0 = commit_creds) and
  // infer the slide. The table's own slide is found by scanning the .rodata
  // region for the table signature — modelled here by reading slot 0 at the
  // target's (slid) table address through the oracle.
  DisclosureOracle oracle(&target.cpu());
  auto table = target.image().symbols().AddressOf(kSyscallTableName);
  if (!table.ok()) {
    out.detail = "no syscall table";
    return out;
  }
  auto leaked = oracle.Leak(*table);
  out.leaks = oracle.leaks_performed();
  if (!leaked.ok()) {
    out.kernel_killed = oracle.kernel_killed();
    out.detail = "leak failed";
    return out;
  }
  uint64_t slide = *leaked - *ref_commit;

  target.ResetCreds();
  std::vector<uint64_t> chain = {pop_rdi->address + slide, kRootCred, *leaked,
                                 Cpu::kReturnSentinel};
  RunResult r = target.RunRopChain(chain);
  out.success = target.IsRoot();
  out.detail = out.success
                   ? "slide inferred from one leaked pointer; rebased chain escalated"
                   : std::string("rebased chain derailed: ") +
                         (r.reason == StopReason::kException ? ExceptionKindName(r.exception)
                                                             : "no-escalation");
  return out;
}

AttackOutcome DataOnlyFunctionPointerAttack(ExploitLab& target) {
  AttackOutcome out;
  target.ResetCreds();

  // Leak commit_creds' entry from the readable syscall table.
  DisclosureOracle oracle(&target.cpu());
  auto table = target.image().symbols().AddressOf(kSyscallTableName);
  auto hook = target.image().symbols().AddressOf("notifier_hook");
  auto trigger = target.image().symbols().AddressOf("run_notifier");
  if (!table.ok() || !hook.ok() || !trigger.ok()) {
    out.detail = "corpus lacks the notifier surface";
    return out;
  }
  auto commit_entry = oracle.Leak(*table);  // slot 0 = commit_creds
  out.leaks = oracle.leaks_performed();
  if (!commit_entry.ok()) {
    out.kernel_killed = oracle.kernel_killed();
    out.detail = "leak failed";
    return out;
  }

  // The corruption primitive from the threat model (§3): overwrite the
  // writable function pointer. Data pages are attacker-corruptible.
  KRX_CHECK(target.image().Poke64(*hook, *commit_entry).ok());

  // Trigger the dereference with a chosen argument (a syscall argument).
  RunResult r = target.cpu().CallFunction(*trigger, {kRootCred});
  out.success = target.IsRoot() && r.reason == StopReason::kReturned;
  out.detail = out.success
                   ? "whole-function reuse through a corrupted pointer (residual surface)"
                   : "data-only attack failed";
  return out;
}

AttackOutcome Ret2UsrAttack(ExploitLab& target, bool smep_enabled) {
  AttackOutcome out;
  target.cpu().mmu().set_smep(smep_enabled);
  target.ResetCreds();

  auto cred = target.image().symbols().AddressOf(kCurrentCredName);
  if (!cred.ok()) {
    out.detail = "no credential witness";
    return out;
  }

  // Map a user page and plant shellcode: current_cred = 0; jump out.
  constexpr uint64_t kUserCode = 0x0000000000400000ULL;
  auto page = target.image().MapUserPages(kUserCode, 1);
  if (!page.ok()) {
    out.detail = "user mapping failed";
    return out;
  }
  std::vector<uint8_t> shellcode;
  EncodeInstruction(Instruction::MovRI(Reg::kRcx, static_cast<int64_t>(*cred)), shellcode);
  EncodeInstruction(Instruction::MovRI(Reg::kRax, static_cast<int64_t>(kRootCred)), shellcode);
  EncodeInstruction(Instruction::Store(MemOperand::Base(Reg::kRcx, 0), Reg::kRax), shellcode);
  EncodeInstruction(Instruction::MovRI(Reg::kRbx, static_cast<int64_t>(Cpu::kReturnSentinel)),
                    shellcode);
  EncodeInstruction(Instruction::JmpR(Reg::kRbx), shellcode);
  KRX_CHECK(target.image().PokeBytes(kUserCode, shellcode.data(), shellcode.size()).ok());

  // Hijacked kernel control transfer into user space.
  Cpu& cpu = target.cpu();
  cpu.set_reg(Reg::kRsp, cpu.stack_top() - 64);
  RunResult r = cpu.RunAt(kUserCode, RunOptions{.max_steps = 64});

  out.success = target.IsRoot();
  if (out.success) {
    out.detail = "kernel executed user-space shellcode (no SMEP)";
  } else if (r.reason == StopReason::kException && r.exception == ExceptionKind::kPageFault &&
             cpu.mmu().last_fault().kind == FaultKind::kSmepViolation) {
    out.detail = "SMEP: supervisor fetch from user page faulted";
  } else {
    out.detail = "hijack derailed";
  }
  target.cpu().mmu().set_smep(false);
  return out;
}

bool DecoyTripwireFires(ExploitLab& target) {
  Cpu& cpu = target.cpu();
  auto deep = target.image().symbols().AddressOf(kDeepSyscallName);
  if (!deep.ok()) {
    return false;
  }
  cpu.CallFunction(*deep, {8});

  std::vector<uint64_t> sites_vec = target.CollectReturnSites();
  std::set<uint64_t> return_sites(sites_vec.begin(), sites_vec.end());

  for (uint64_t a = cpu.stack_base(); a + 16 <= cpu.stack_top(); a += 8) {
    auto v1 = target.image().Peek64(a);
    auto v2 = target.image().Peek64(a + 8);
    if (!v1.ok() || !v2.ok()) {
      continue;
    }
    if (!InCodeRange(target, *v1) || !InCodeRange(target, *v2)) {
      continue;
    }
    uint64_t decoy;
    if (return_sites.count(*v1) > 0 && return_sites.count(*v2) == 0) {
      decoy = *v2;
    } else if (return_sites.count(*v2) > 0 && return_sites.count(*v1) == 0) {
      decoy = *v1;
    } else {
      continue;
    }
    RunResult r = cpu.RunAt(decoy, RunOptions{.max_steps = 16});
    return r.reason == StopReason::kException && r.exception == ExceptionKind::kBreakpoint;
  }
  return false;
}

}  // namespace krx
