// Gadget discovery over raw code bytes.
//
// Mirrors the first stage of (JIT-)ROP: disassemble at every byte offset
// (the encoding is variable-length, so unaligned decoding yields instruction
// streams the compiler never emitted) and keep short sequences that end in
// ret. Classification helpers find the payload building blocks the attack
// engines need (pop-reg/ret, mov/ret, function-call primitives).
#ifndef KRX_SRC_ATTACK_GADGET_SCANNER_H_
#define KRX_SRC_ATTACK_GADGET_SCANNER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/isa/instruction.h"

namespace krx {

enum class GadgetKind : uint8_t {
  kRop,  // ends in ret
  kJop,  // ends in an indirect jmp/call (jmp*/callq* through reg or mem)
};

struct Gadget {
  uint64_t address = 0;
  GadgetKind kind = GadgetKind::kRop;
  std::vector<Instruction> insts;  // last instruction is the terminator

  // Number of instructions excluding the terminator.
  size_t payload_len() const { return insts.empty() ? 0 : insts.size() - 1; }

  std::string ToString() const;
};

struct GadgetScanOptions {
  size_t max_insts = 4;  // gadget length cap (excluding ret)
};

class GadgetScanner {
 public:
  explicit GadgetScanner(GadgetScanOptions options = GadgetScanOptions()) : options_(options) {}

  // Scans [bytes, bytes+len) mapped at base_vaddr for ROP gadgets.
  std::vector<Gadget> Scan(const uint8_t* bytes, size_t len, uint64_t base_vaddr) const;

  // Scans for JOP gadgets: short sequences ending in an indirect branch
  // (jmp*/callq* %reg or through memory).
  std::vector<Gadget> ScanJop(const uint8_t* bytes, size_t len, uint64_t base_vaddr) const;

  // Finds the first "pop %reg; ret" gadget.
  static std::optional<Gadget> FindPopReg(const std::vector<Gadget>& gadgets, Reg reg);

  // Finds the first "mov %src, %dst; ret" gadget.
  static std::optional<Gadget> FindMovRR(const std::vector<Gadget>& gadgets, Reg dst, Reg src);

  // Finds a "store %src to [%dst_base + disp]; ret" gadget.
  static std::optional<Gadget> FindStore(const std::vector<Gadget>& gadgets, Reg base, Reg src);

 private:
  std::vector<Gadget> ScanFor(const uint8_t* bytes, size_t len, uint64_t base_vaddr,
                              GadgetKind kind) const;

  GadgetScanOptions options_;
};

}  // namespace krx

#endif  // KRX_SRC_ATTACK_GADGET_SCANNER_H_
