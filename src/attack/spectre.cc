#include "src/attack/spectre.h"

#include <string>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/mem/mmu.h"
#include "src/mem/phys_mem.h"

namespace krx {
namespace {

CpuOptions SpecCpuOptions(bool mpx) {
  CpuOptions o;
  o.mpx_enabled = mpx;
  o.spec.enabled = true;
  return o;
}

// Data-view physical address of `vaddr` — what a wrong-path access of it
// lands on, and therefore what the observer records.
bool PhysOf(const KernelImage& image, uint64_t vaddr, uint64_t* paddr) {
  const Pte* pte = image.page_table().Lookup(vaddr);
  if (pte == nullptr || !pte->flags.present) {
    return false;
  }
  const uint64_t frame = pte->has_data_frame ? pte->data_frame : pte->frame;
  *paddr = (frame << kPageShift) | PageOffset(vaddr);
  return true;
}

}  // namespace

SpectreV1Result SpectreV1Attack(CompiledKernel& kernel, size_t secret_bytes) {
  SpectreV1Result res;
  KernelImage& image = *kernel.image;

  auto victim = image.symbols().AddressOf("spec_victim");
  auto arr = image.symbols().AddressOf("spec_array");
  auto target = image.symbols().AddressOf(kCommitCredsName);
  if (!victim.ok() || !arr.ok() || !target.ok()) {
    res.outcome.detail = "corpus lacks the spec_victim gadget";
    return res;
  }

  // Flush+reload stand-in: one page-aligned probe line per byte value.
  const uint64_t probe_bytes = 256u << SideChannelObserver::kLineShift;
  auto probe = image.AllocDataPages(probe_bytes >> kPageShift);
  if (!probe.ok()) {
    res.outcome.detail = "probe buffer allocation failed";
    return res;
  }

  // Ground truth (god-mode, for scoring only): the code bytes the attack
  // tries to exfiltrate across the R^X boundary.
  std::vector<uint8_t> truth(secret_bytes);
  if (!image.PeekBytes(*target, truth.data(), truth.size()).ok()) {
    res.outcome.detail = "ground-truth read failed";
    return res;
  }

  Cpu cpu(&image, CostModel(), SpecCpuOptions(kernel.config.mpx));
  SideChannelObserver observer;
  cpu.set_side_channel_observer(&observer);

  for (size_t i = 0; i < secret_bytes; ++i) {
    // Train the victim's bounds branch (and the instrumentation's check
    // branches) not-taken with in-bounds indices.
    for (uint64_t t = 0; t < 4; ++t) {
      cpu.CallFunction(*victim, {t + 1, *probe});
    }
    observer.Clear();
    // The out-of-bounds index wraps spec_array + idx onto the target code
    // byte; the architectural path rejects it (rax == 0), the wrong path
    // may not.
    const uint64_t idx = (*target + i) - *arr;
    RunResult run = cpu.CallFunction(*victim, {idx, *probe});
    ++res.bytes_attempted;
    if (run.reason != StopReason::kReturned || run.rax != 0) {
      res.outcome.kernel_killed = run.reason != StopReason::kReturned;
      continue;  // the architectural contract itself misbehaved
    }
    // Reconstruct: exactly one probe line touched = one candidate byte.
    int hit = -1;
    bool ambiguous = false;
    for (int v = 0; v < 256; ++v) {
      uint64_t paddr;
      if (!PhysOf(image, *probe + (static_cast<uint64_t>(v)
                                   << SideChannelObserver::kLineShift),
                  &paddr)) {
        continue;
      }
      if (observer.LineTouched(paddr)) {
        ambiguous = hit >= 0;
        hit = v;
      }
    }
    if (hit >= 0 && !ambiguous && hit == truth[i]) {
      ++res.bytes_leaked;
    }
  }

  const SpecStats& sp = cpu.spec_stats();
  res.windows_opened = sp.windows_opened;
  res.fence_kills = sp.fence_kills;
  res.transient_faults = sp.transient_faults;
  res.outcome.success = res.bytes_leaked > 0;
  res.outcome.leaks = res.bytes_leaked;
  res.outcome.detail =
      "leaked " + std::to_string(res.bytes_leaked) + "/" +
      std::to_string(res.bytes_attempted) + " code bytes transiently (" +
      std::to_string(res.windows_opened) + " windows, " +
      std::to_string(res.fence_kills) + " fence kills, " +
      std::to_string(res.transient_faults) + " transient faults)";
  return res;
}

}  // namespace krx
