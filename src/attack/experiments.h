// End-to-end attack experiments reproducing §7.3 ("Security").
//
// The canonical exploitation goal, standing in for the CVE-2013-2094
// privilege-escalation exploit the paper uses, is to overwrite the kernel's
// current_cred with the root credential — either by ROP-calling
// commit_creds(KROOT) or by stitching gadgets that store to it directly.
#ifndef KRX_SRC_ATTACK_EXPERIMENTS_H_
#define KRX_SRC_ATTACK_EXPERIMENTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/attack/disclosure.h"
#include "src/attack/gadget_scanner.h"
#include "src/cpu/cpu.h"
#include "src/plugin/pipeline.h"

namespace krx {

// Canonical symbols the workload corpus exports (src/workload/corpus.h
// defines them; the attack layer only knows the contract).
inline constexpr const char* kCommitCredsName = "commit_creds";
inline constexpr const char* kCurrentCredName = "current_cred";
inline constexpr const char* kSyscallTableName = "sys_call_table";
inline constexpr uint64_t kUnprivilegedCred = 0x1000;
inline constexpr uint64_t kRootCred = 0;

struct AttackOutcome {
  bool success = false;
  bool kernel_killed = false;  // kR^X halted the machine mid-exploit
  uint64_t leaks = 0;
  std::string detail;
};

// A compiled kernel under attack: CPU, credential witness, payload staging.
class ExploitLab {
 public:
  explicit ExploitLab(CompiledKernel* kernel);

  Cpu& cpu() { return cpu_; }
  KernelImage& image() { return *kernel_->image; }
  const KernelImage& image() const { return *kernel_->image; }
  const CompiledKernel& kernel() const { return *kernel_; }

  // Resets current_cred to the unprivileged value.
  void ResetCreds();
  bool IsRoot() const;

  // Stages a ROP payload in attacker-sprayed kernel heap memory and
  // triggers the hijacked control transfer: %rsp pivoted to the payload,
  // execution enters chain[0] (the classic stack-pivot kernel ROP entry).
  RunResult RunRopChain(const std::vector<uint64_t>& chain, uint64_t max_steps = 200'000);

  // God-mode helpers (ground truth for experiment verdicts, not available
  // to the simulated attacker).
  std::vector<uint8_t> DumpText() const;
  uint64_t TextBase() const;
  // All legitimate return sites (addresses immediately following call
  // instructions), gathered by walking every function's instruction stream.
  std::vector<uint64_t> CollectReturnSites() const;

 private:
  CompiledKernel* kernel_;
  Cpu cpu_;
  uint64_t payload_buf_ = 0;
};

// E6 — Direct ROP (§7.3 "Direct ROP/JOP"): gadget addresses precomputed on
// a reference (vanilla) build, replayed against the target.
AttackOutcome DirectRopAttack(ExploitLab& reference, ExploitLab& target);

// E7 — Direct JIT-ROP: leaked code pointer from sys_call_table, recursive
// code-page harvesting through the disclosure bug, on-the-fly payload.
AttackOutcome DirectJitRopAttack(ExploitLab& target, int max_pages = 64);

// E8 — Indirect JIT-ROP: harvest return addresses from the kernel stack and
// guess real vs. decoy. Runs `trials` independent experiments needing
// `n_gadgets` correct call-preceded gadgets each; reports the empirical
// success rate (paper: Psucc = 1/2^n under decoys, 0 under encryption,
// 1 without return-address protection).
struct IndirectJitRopResult {
  AttackOutcome outcome;
  int trials = 0;
  int successes = 0;
  uint64_t pairs_harvested = 0;
  double success_rate = 0.0;
};
IndirectJitRopResult IndirectJitRopAttack(ExploitLab& target, int n_gadgets, int trials,
                                          uint64_t seed);

// Demonstrates that stepping on a decoy return address raises the int3
// tripwire (#BP). Returns true if the exception fired.
bool DecoyTripwireFires(ExploitLab& target);

// Coarse-KASLR bypass (§1: "hijacked ... effectively bypassing KASLR"):
// with standard whole-image KASLR the internal layout is intact, so one
// leaked code pointer (here: a syscall-table entry read through the
// disclosure bug) reveals the slide and rebases a precomputed chain.
// Against fine-grained KASLR the same rebasing fails: relative offsets
// within the image are what got randomized.
AttackOutcome KaslrSlideBypassAttack(ExploitLab& reference, ExploitLab& target);

// §7.3's residual surface, demonstrated: "kR^X effectively restricts the
// attacker to data-only type of attacks on function pointers". The attacker
// (armed with the threat model's corruption primitive) overwrites the
// writable notifier_hook with the *entry point* of commit_creds — leaked
// from the readable syscall table — and triggers the kernel path that
// dereferences it with a chosen argument. Whole-function reuse of this kind
// still works under full kR^X; gadget-grade reuse (pointing the hook into
// the middle of a function) does not.
AttackOutcome DataOnlyFunctionPointerAttack(ExploitLab& target);

// The pre-kR^X baseline attack (§1, §2): ret2usr. The attacker maps a user
// page, plants shellcode that overwrites current_cred, and hijacks kernel
// control flow into it. With SMEP (the paper's hardening assumption, §3)
// the supervisor fetch from the user page faults — which is exactly why
// attackers moved on to (JIT-)ROP.
AttackOutcome Ret2UsrAttack(ExploitLab& target, bool smep_enabled);

}  // namespace krx

#endif  // KRX_SRC_ATTACK_EXPERIMENTS_H_
