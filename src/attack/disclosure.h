// Arbitrary kernel-memory disclosure oracle.
//
// Models the retrofitted debugfs vulnerability of §7.3 (footnote 11): an
// unprivileged user can make the kernel dereference an arbitrary
// kernel-space pointer and return sizeof(unsigned long) bytes. Crucially,
// the leak executes *kernel* code, so under kR^X the dereference is range
// checked: leaking from the code region diverts control to krx_handler and
// the machine halts — which the oracle reports as a killed kernel.
#ifndef KRX_SRC_ATTACK_DISCLOSURE_H_
#define KRX_SRC_ATTACK_DISCLOSURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/cpu/cpu.h"

namespace krx {

inline constexpr const char* kLeakSymbolName = "debugfs_leak_read";

class DisclosureOracle {
 public:
  DisclosureOracle(Cpu* cpu, std::string leak_symbol = kLeakSymbolName);

  // Leaks 8 bytes at `vaddr` by triggering the vulnerability.
  Result<uint64_t> Leak(uint64_t vaddr);

  // Convenience: leaks `len` bytes into `out` (stops early if killed).
  Status LeakBytes(uint64_t vaddr, uint64_t len, std::vector<uint8_t>* out);

  // Once kR^X halts the system the exploit is over.
  bool kernel_killed() const { return kernel_killed_; }
  uint64_t leaks_performed() const { return leaks_performed_; }

 private:
  Cpu* cpu_;
  uint64_t leak_entry_ = 0;
  bool kernel_killed_ = false;
  uint64_t leaks_performed_ = 0;
};

}  // namespace krx

#endif  // KRX_SRC_ATTACK_DISCLOSURE_H_
