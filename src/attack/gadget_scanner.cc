#include "src/attack/gadget_scanner.h"

#include "src/isa/encoding.h"

namespace krx {
namespace {

// Instructions that make a candidate sequence useless as a gadget: traps,
// privileged operations, or control transfers before the final ret.
bool Disqualifies(const Instruction& inst) {
  switch (inst.op) {
    case Opcode::kInt3:
    case Opcode::kUd2:
    case Opcode::kHlt:
    case Opcode::kSyscall:
    case Opcode::kSysret:
    case Opcode::kWrmsr:
    case Opcode::kLoadBnd0:
    case Opcode::kJmpRel:
    case Opcode::kJcc:
    case Opcode::kJmpR:
    case Opcode::kJmpM:
    case Opcode::kCallRel:
    case Opcode::kCallR:
    case Opcode::kCallM:
      return true;
    default:
      return false;
  }
}

}  // namespace

std::string Gadget::ToString() const {
  std::string out;
  char addr[32];
  std::snprintf(addr, sizeof(addr), "0x%llx: ", static_cast<unsigned long long>(address));
  out += addr;
  for (size_t i = 0; i < insts.size(); ++i) {
    if (i > 0) {
      out += "; ";
    }
    out += FormatInstruction(insts[i]);
  }
  return out;
}

namespace {

bool IsIndirectBranch(Opcode op) {
  return op == Opcode::kJmpR || op == Opcode::kJmpM || op == Opcode::kCallR ||
         op == Opcode::kCallM;
}

}  // namespace

std::vector<Gadget> GadgetScanner::ScanFor(const uint8_t* bytes, size_t len, uint64_t base_vaddr,
                                           GadgetKind kind) const {
  std::vector<Gadget> out;
  for (size_t off = 0; off < len; ++off) {
    Gadget g;
    g.address = base_vaddr + off;
    g.kind = kind;
    size_t pos = off;
    bool ok = false;
    for (size_t n = 0; n <= options_.max_insts; ++n) {
      auto dec = DecodeInstruction(bytes, len, pos);
      if (!dec.ok()) {
        break;
      }
      g.insts.push_back(dec->inst);
      pos += dec->size;
      const bool terminates = kind == GadgetKind::kRop ? dec->inst.op == Opcode::kRet
                                                       : IsIndirectBranch(dec->inst.op);
      if (terminates) {
        ok = true;
        break;
      }
      if (Disqualifies(dec->inst)) {
        break;
      }
    }
    if (ok) {
      out.push_back(std::move(g));
    }
  }
  return out;
}

std::vector<Gadget> GadgetScanner::Scan(const uint8_t* bytes, size_t len,
                                        uint64_t base_vaddr) const {
  return ScanFor(bytes, len, base_vaddr, GadgetKind::kRop);
}

std::vector<Gadget> GadgetScanner::ScanJop(const uint8_t* bytes, size_t len,
                                           uint64_t base_vaddr) const {
  return ScanFor(bytes, len, base_vaddr, GadgetKind::kJop);
}

std::optional<Gadget> GadgetScanner::FindPopReg(const std::vector<Gadget>& gadgets, Reg reg) {
  for (const Gadget& g : gadgets) {
    if (g.insts.size() == 2 && g.insts[0].op == Opcode::kPopR && g.insts[0].r1 == reg) {
      return g;
    }
  }
  return std::nullopt;
}

std::optional<Gadget> GadgetScanner::FindMovRR(const std::vector<Gadget>& gadgets, Reg dst,
                                               Reg src) {
  for (const Gadget& g : gadgets) {
    if (g.insts.size() == 2 && g.insts[0].op == Opcode::kMovRR && g.insts[0].r1 == dst &&
        g.insts[0].r2 == src) {
      return g;
    }
  }
  return std::nullopt;
}

std::optional<Gadget> GadgetScanner::FindStore(const std::vector<Gadget>& gadgets, Reg base,
                                               Reg src) {
  for (const Gadget& g : gadgets) {
    if (g.insts.size() == 2 && g.insts[0].op == Opcode::kStore && g.insts[0].r1 == src &&
        g.insts[0].mem.base == base && !g.insts[0].mem.has_index()) {
      return g;
    }
  }
  return std::nullopt;
}

}  // namespace krx
