// The survivable oops path: run a kernel entry under an oops policy.
//
// Under kPanic a trap ends the run (the paper's default handler "halts the
// system"). Under kKillTask the supervisor plays the role of the oops
// handler's do_exit path: it reaps the offending scheduler task (state :=
// free, so the round-robin never picks it again), restores the init task's
// saved task_switch context, and resumes execution there — the remaining
// tasks' workloads must complete correctly. The kernel being supervised
// must have been built with AddSched (src/workload/sched.h); the supervisor
// reads the task table through the exported struct offsets.
#ifndef KRX_SRC_FAULT_RECOVERY_H_
#define KRX_SRC_FAULT_RECOVERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/fault/oops.h"

namespace krx {

struct RecoveryOutcome {
  RunResult result;                  // the final (post-recovery) stop
  std::vector<KernelOops> oopses;    // one record per trap survived or not
  std::vector<uint64_t> killed_tasks;
  uint64_t total_instructions = 0;   // across all resumed segments
  bool panicked = false;             // policy or state forced a stop

  bool survived() const { return !panicked && result.reason == StopReason::kReturned; }
};

class OopsSupervisor {
 public:
  OopsSupervisor(Cpu* cpu, OopsPolicy policy) : cpu_(cpu), policy_(policy) {}

  RecoveryOutcome Run(const std::string& entry_symbol, const std::vector<uint64_t>& args,
                      uint64_t max_steps = 2'000'000);

 private:
  // Reaps sched_current and restores the init task's saved context; returns
  // the resume rip, or an error when recovery is impossible (no scheduler,
  // or the init task itself oopsed — "attempted to kill init").
  Result<uint64_t> KillCurrentTask(RecoveryOutcome* outcome);

  Cpu* cpu_;
  OopsPolicy policy_;
};

}  // namespace krx

#endif  // KRX_SRC_FAULT_RECOVERY_H_
