// Deterministic fault injection against a compiled kernel.
//
// Every injection runs one kernel op under a seeded, precisely-timed fault
// and classifies the outcome against the diagnostic contract of its fault
// class. A golden (fault-free) run of each op is recorded first — result,
// instruction count, executed-%rip trace, and the window during which the
// harness return address sits encrypted on the stack — so injections can be
// aimed: text corruption lands on an address that is *known* to execute
// after the trigger, xkey flips land strictly inside the encryption window.
//
// The contract per class (Detection::… = what must catch it):
//   kDataBitFlip      flipped bit in the op scratch buffer. Benign domain:
//                     data faults are outside the R^X guarantee — a clean
//                     return is kBenign (silent data corruption is recorded
//                     via result_changed), a trap (#PF / range-check /
//                     #BR) is contained and counts as kTrap.
//   kXkeyBitFlip      high bit of the entry's xkey$ flipped mid-run: the
//                     epilogue decrypt garbles the return address into an
//                     unmapped page => kTrap (#PF), always.
//   kPtePresentClear  present bit of a buffer PTE cleared mid-run =>
//                     kTrap (#PF inside the buffer) or kBenign (clean
//                     return with the golden result: page no longer used).
//   kPteWxSet         writable bit set on a code page mid-run: execution
//                     is unaffected (golden result required) — only the
//                     post-run W^X page-table audit may catch it => kAudit.
//   kTextInt3         a traced instruction byte overwritten with int3 =>
//                     kTrap (#BP) at first execution after the trigger.
//   kTextUndecodable  same with an undecodable byte (0xFF) => kTrap (#UD).
//   kDisclosureRead   debugfs_leak_read aimed at kernel text => kTrap
//                     (SFI halt in krx_handler, or #BR under MPX).
//   kModuleLoadFault  loader failpoint before a random load step =>
//                     kLoadError, with full rollback proven (page count,
//                     bump cursors, symbol table) and a clean reload.
#ifndef KRX_SRC_FAULT_INJECTOR_H_
#define KRX_SRC_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/cpu/cpu.h"
#include "src/kernel/module_loader.h"
#include "src/plugin/pipeline.h"

namespace krx {

enum class FaultClass : uint8_t {
  kDataBitFlip = 0,
  kXkeyBitFlip,
  kPtePresentClear,
  kPteWxSet,
  kTextInt3,
  kTextUndecodable,
  kDisclosureRead,
  kModuleLoadFault,
  kNumFaultClasses,
};

const char* FaultClassName(FaultClass cls);

enum class Detection : uint8_t {
  kSilent = 0,  // MISSED: nothing caught the fault and it was not benign
  kTrap,        // the run stopped with the class's expected trap
  kAudit,       // a post-run invariant audit caught it (W^X scan)
  kLoadError,   // the module loader rejected the load and rolled back
  kBenign,      // proven harmless (golden behaviour reproduced / contained)
};

const char* DetectionName(Detection detection);

struct InjectionOutcome {
  FaultClass cls = FaultClass::kDataBitFlip;
  Detection detection = Detection::kSilent;
  bool correct = false;  // detection matches the class contract
  ExceptionKind exception = ExceptionKind::kNone;
  bool krx_violation = false;
  uint64_t trigger_step = 0;   // instructions retired when the fault landed
  uint64_t detect_step = 0;    // instructions retired when it was caught
  uint64_t latency = 0;        // detect - trigger, for kTrap detections
  bool result_changed = false; // benign return but rax != golden (SDC)
  std::string detail;          // human-readable description of the injection
};

// A recorded fault-free run of one op.
struct GoldenRun {
  uint64_t rax = 0;
  uint64_t instructions = 0;
  std::vector<uint64_t> rip_trace;  // rip_trace[k] = address of instruction k
  // Retired-count window [enc_first, enc_last] during which the harness
  // sentinel return address is xkey-encrypted on the stack (kEncrypt only).
  uint64_t enc_first = 0;
  uint64_t enc_last = 0;
  bool has_enc_window = false;
};

class FaultInjector {
 public:
  explicit FaultInjector(CompiledKernel* kernel, uint64_t buffer_seed = 0xB0F);

  // Fault classes applicable to this kernel's protection config.
  std::vector<FaultClass> EligibleClasses() const;

  // Injects one fault of `cls` into a run of `op_symbol` ("sys_…"). The
  // image is restored afterwards (text bytes, PTE bits, xkeys), so
  // injections compose. Statuses are host-side failures (bad symbol,
  // out of memory), not fault detections.
  Result<InjectionOutcome> Inject(FaultClass cls, const std::string& op_symbol, Rng& rng);

  // The golden run of `op_symbol` (computed once, cached).
  Result<const GoldenRun*> Golden(const std::string& op_symbol);

  ModuleLoader& loader() { return loader_; }

 private:
  // Resets registers + flags and refills the scratch buffer so every run
  // starts from identical machine state.
  Status ResetForRun();

  // The per-class dispatch behind Inject (which wraps it with telemetry).
  Result<InjectionOutcome> InjectDispatch(FaultClass cls, const std::string& op_symbol,
                                          Rng& rng);
  Result<InjectionOutcome> InjectDataBitFlip(const std::string& op, Rng& rng);
  Result<InjectionOutcome> InjectXkeyBitFlip(const std::string& op, Rng& rng);
  Result<InjectionOutcome> InjectPtePresentClear(const std::string& op, Rng& rng);
  Result<InjectionOutcome> InjectPteWxSet(const std::string& op, Rng& rng);
  Result<InjectionOutcome> InjectTextCorruption(const std::string& op, Rng& rng, bool int3);
  Result<InjectionOutcome> InjectDisclosureRead(Rng& rng);
  Result<InjectionOutcome> InjectModuleLoadFault(Rng& rng);

  CompiledKernel* kernel_;
  uint64_t buffer_seed_;
  ModuleLoader loader_;
  std::unique_ptr<Cpu> cpu_;
  uint64_t buffer_vaddr_ = 0;
  Status setup_error_ = Status::Ok();
  std::map<std::string, GoldenRun> golden_;
  int module_counter_ = 0;
};

}  // namespace krx

#endif  // KRX_SRC_FAULT_INJECTOR_H_
