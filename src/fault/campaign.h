// Seeded fault-injection campaigns and the kill-task survival scenario.
//
// RunFaultCampaign builds three protected kernels (SFI-O3, MPX, SFI+X) from
// the bench source tree and drives N seeded injections across them, cycling
// through each kernel's eligible fault classes and aiming every injection
// at a random LMBench op. The report aggregates, per class: how many were
// injected, how each was detected (trap / audit / load-error / benign), the
// detection latency in instructions from injection to trap, and — the
// number that matters — how many were misclassified. The acceptance bar is
// zero: every injected fault is either detected with the right diagnostic
// class or proven benign.
#ifndef KRX_SRC_FAULT_CAMPAIGN_H_
#define KRX_SRC_FAULT_CAMPAIGN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/injector.h"
#include "src/fault/recovery.h"

namespace krx {

struct CampaignOptions {
  uint64_t seed = 0xFA017;
  int injections = 500;
};

struct ClassStats {
  uint64_t injected = 0;
  uint64_t trapped = 0;
  uint64_t audited = 0;
  uint64_t load_errors = 0;
  uint64_t benign = 0;
  uint64_t misclassified = 0;
  uint64_t sdc = 0;  // benign returns whose result differed from golden
  uint64_t latency_sum = 0;
  uint64_t latency_max = 0;
  uint64_t latency_samples = 0;

  uint64_t detected() const { return trapped + audited + load_errors; }
  double mean_latency() const {
    return latency_samples == 0
               ? 0.0
               : static_cast<double>(latency_sum) / static_cast<double>(latency_samples);
  }
};

struct CampaignReport {
  CampaignOptions options;
  ClassStats per_class[static_cast<int>(FaultClass::kNumFaultClasses)];
  uint64_t total = 0;
  uint64_t detected = 0;
  uint64_t benign = 0;
  uint64_t misclassified = 0;
  // Details of the misclassified injections (capped), for diagnosis.
  std::vector<InjectionOutcome> failures;

  // The acceptance criterion: every fault detected correctly or benign.
  bool AllAccounted() const { return misclassified == 0; }
  double DetectionRate() const {
    const uint64_t adversarial = total - benign;
    return adversarial == 0 ? 1.0
                            : static_cast<double>(detected) / static_cast<double>(adversarial);
  }
  std::string ToString() const;
  std::string ToJson() const;
};

Result<CampaignReport> RunFaultCampaign(const CampaignOptions& options);

// The survivable-oops scenario: an SFI-O3 kernel with the scheduler and a
// rogue worker whose third run performs a wild read of kernel text. Under
// kKillTask the supervisor must reap the rogue task and the remaining
// workers must complete their workloads correctly; under kPanic the first
// oops ends the run.
struct SurvivalReport {
  bool survived = false;
  std::vector<uint64_t> killed_tasks;
  size_t oops_count = 0;
  uint64_t worker_a_runs = 0;
  uint64_t worker_b_runs = 0;
  uint64_t worker_c_runs = 0;
  uint64_t counter = 0;  // final sched_counter
  std::string first_oops;  // rendered oops record, for display
};

Result<SurvivalReport> RunKillTaskScenario(uint64_t seed,
                                           OopsPolicy policy = OopsPolicy::kKillTask);

}  // namespace krx

#endif  // KRX_SRC_FAULT_CAMPAIGN_H_
