// Structured kernel oops records (the survivable replacement for the bare
// RunResult.krx_violation flag).
//
// When a run stops on a trap — an SFI range-check violation halting inside
// krx_handler, an MPX #BR, a tripwire #BP, a #PF from a garbled return
// address — BuildOops harvests everything a kernel oops would print: the
// exception class, %rip, the faulting address, a full register snapshot,
// the krx_violation_count / kernel_log diagnostics, and a backtrace scan of
// the active stack. The backtrace is RA-decryption-aware: under the X
// scheme the saved return addresses on the stack are XOR-encrypted with
// per-function xkeys, so the scanner also tries every live xkey and marks
// frames it could only resolve after decryption.
#ifndef KRX_SRC_FAULT_OOPS_H_
#define KRX_SRC_FAULT_OOPS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cpu/cpu.h"

namespace krx {

// What the kernel does after an oops: stop the machine, or reap the
// offending task and keep scheduling (see src/fault/recovery.h).
enum class OopsPolicy : uint8_t {
  kPanic = 0,
  kKillTask,
};

const char* OopsPolicyName(OopsPolicy policy);

struct OopsFrame {
  uint64_t slot_addr = 0;   // stack slot the value was read from
  uint64_t value = 0;       // raw slot contents
  uint64_t code_addr = 0;   // resolved code address (== value unless decrypted)
  bool decrypted = false;   // resolved only after XORing with a live xkey
  std::string function;     // containing function symbol
  uint64_t offset = 0;      // code_addr - function start
};

struct KernelOops {
  StopReason reason = StopReason::kException;
  ExceptionKind exception = ExceptionKind::kNone;
  bool krx_violation = false;
  bool xnr_violation = false;
  uint64_t rip = 0;
  uint64_t fault_addr = 0;
  uint64_t instructions = 0;          // retired in the segment that trapped
  uint64_t regs[kNumGpRegs] = {};
  uint64_t violation_count = 0;       // krx_violation_count global, if present
  uint64_t log_marker = 0;            // kernel_log slot ("BUG: kR^X" marker)
  std::vector<OopsFrame> backtrace;

  std::string ToString() const;
};

// True when the result represents an in-kernel fault an oops handler would
// see: an exception, or a halt with a detected violation.
bool IsOopsWorthy(const RunResult& result);

// Harvests an oops record from the machine state a stopped run left behind.
KernelOops BuildOops(const Cpu& cpu, const RunResult& result);

}  // namespace krx

#endif  // KRX_SRC_FAULT_OOPS_H_
