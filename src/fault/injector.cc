#include "src/fault/injector.h"

#include <cinttypes>
#include <cstdio>

#include "src/ir/builder.h"
#include "src/kernel/assembler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/corpus.h"
#include "src/workload/ops.h"

namespace krx {
namespace {

// Undecodable opcode byte: the decoder rejects any opcode >= kNumOpcodes,
// so 0xFF always raises #UD.
constexpr uint8_t kUndecodableByte = 0xFF;

std::string Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIx64, v);
  return buf;
}

}  // namespace

const char* FaultClassName(FaultClass cls) {
  switch (cls) {
    case FaultClass::kDataBitFlip: return "data-bit-flip";
    case FaultClass::kXkeyBitFlip: return "xkey-bit-flip";
    case FaultClass::kPtePresentClear: return "pte-present-clear";
    case FaultClass::kPteWxSet: return "pte-wx-set";
    case FaultClass::kTextInt3: return "text-int3";
    case FaultClass::kTextUndecodable: return "text-undecodable";
    case FaultClass::kDisclosureRead: return "disclosure-read";
    case FaultClass::kModuleLoadFault: return "module-load-fault";
    case FaultClass::kNumFaultClasses: break;
  }
  return "??";
}

const char* DetectionName(Detection detection) {
  switch (detection) {
    case Detection::kSilent: return "SILENT";
    case Detection::kTrap: return "trap";
    case Detection::kAudit: return "audit";
    case Detection::kLoadError: return "load-error";
    case Detection::kBenign: return "benign";
  }
  return "??";
}

FaultInjector::FaultInjector(CompiledKernel* kernel, uint64_t buffer_seed)
    : kernel_(kernel),
      buffer_seed_(buffer_seed),
      loader_(kernel->image.get(), /*key_seed=*/buffer_seed ^ 0xFA017) {
  CpuOptions options;
  options.mpx_enabled = kernel_->config.mpx;
  cpu_ = std::make_unique<Cpu>(kernel_->image.get(), CostModel(), options);
  if (!cpu_->init_error().empty()) {
    setup_error_ = InternalError(cpu_->init_error());
    return;
  }
  auto buf = SetUpOpBuffer(*kernel_->image, buffer_seed_);
  if (!buf.ok()) {
    setup_error_ = buf.status();
    return;
  }
  buffer_vaddr_ = *buf;
}

std::vector<FaultClass> FaultInjector::EligibleClasses() const {
  std::vector<FaultClass> classes = {
      FaultClass::kDataBitFlip,    FaultClass::kPtePresentClear,
      FaultClass::kPteWxSet,       FaultClass::kTextInt3,
      FaultClass::kTextUndecodable, FaultClass::kModuleLoadFault,
  };
  if (kernel_->config.ra == RaScheme::kEncrypt) {
    classes.push_back(FaultClass::kXkeyBitFlip);
  }
  if (kernel_->config.HasRangeChecks() || kernel_->config.mpx) {
    classes.push_back(FaultClass::kDisclosureRead);
  }
  return classes;
}

Status FaultInjector::ResetForRun() {
  for (int i = 0; i < kNumGpRegs; ++i) {
    cpu_->set_reg(static_cast<Reg>(i), 0);
  }
  cpu_->rflags() = RFlags();
  cpu_->set_step_observer(nullptr);
  return FillOpBuffer(*kernel_->image, buffer_vaddr_, buffer_seed_);
}

Result<const GoldenRun*> FaultInjector::Golden(const std::string& op_symbol) {
  if (!setup_error_.ok()) {
    return setup_error_;
  }
  auto it = golden_.find(op_symbol);
  if (it != golden_.end()) {
    return &it->second;
  }
  auto entry = kernel_->image->symbols().AddressOf(op_symbol);
  if (!entry.ok()) {
    return entry.status();
  }
  KRX_RETURN_IF_ERROR(ResetForRun());

  GoldenRun g;
  g.rip_trace.push_back(*entry);
  // The harness sentinel sits at stack_top - 24 (see Cpu::CallFunction);
  // under return-address encryption the entry's prologue XORs it in place,
  // so watching the slot exposes the encryption window.
  const uint64_t sentinel_slot = cpu_->stack_top() - 24;
  const KernelImage* image = kernel_->image.get();
  uint64_t retired = 0;
  cpu_->set_step_observer([&](const Cpu& c) {
    ++retired;
    g.rip_trace.push_back(c.rip());
    auto slot = image->Peek64(sentinel_slot);
    if (slot.ok() && *slot != Cpu::kReturnSentinel) {
      if (!g.has_enc_window) {
        g.has_enc_window = true;
        g.enc_first = retired;
      }
      g.enc_last = retired;
    }
  });
  RunResult r = cpu_->CallFunction(*entry, {buffer_vaddr_});
  cpu_->set_step_observer(nullptr);
  if (r.reason != StopReason::kReturned) {
    return InternalError("golden run of " + op_symbol + " did not return cleanly: " +
                         StopReasonName(r.reason));
  }
  g.rax = r.rax;
  g.instructions = r.instructions;
  // The observer does not fire for the final (stopping) ret, so the trace
  // holds exactly the addresses of instructions 0 .. N-1.
  if (g.rip_trace.size() > g.instructions) {
    g.rip_trace.resize(g.instructions);
  }
  auto [pos, inserted] = golden_.emplace(op_symbol, std::move(g));
  (void)inserted;
  return &pos->second;
}

Result<InjectionOutcome> FaultInjector::Inject(FaultClass cls, const std::string& op_symbol,
                                               Rng& rng) {
  Result<InjectionOutcome> outcome = InjectDispatch(cls, op_symbol, rng);
#if !defined(KRX_TELEMETRY_DISABLED)
  if (telemetry::MetricsEnabled()) {
    telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::Global();
    reg.GetCounter("fault.injections").Increment();
    reg.GetCounter(std::string("fault.class.") + FaultClassName(cls)).Increment();
    if (outcome.ok()) {
      reg.GetCounter(std::string("fault.detection.") + DetectionName(outcome->detection))
          .Increment();
      if (!outcome->correct) {
        reg.GetCounter("fault.contract_misses").Increment();
      }
    } else {
      reg.GetCounter("fault.inject_errors").Increment();
    }
  }
  if (outcome.ok()) {
    telemetry::EmitEvent(telemetry::TraceEventType::kFaultInject, FaultClassName(cls),
                         static_cast<uint64_t>(cls), outcome->trigger_step);
  }
#endif
  return outcome;
}

Result<InjectionOutcome> FaultInjector::InjectDispatch(FaultClass cls,
                                                       const std::string& op_symbol, Rng& rng) {
  if (!setup_error_.ok()) {
    return setup_error_;
  }
  switch (cls) {
    case FaultClass::kDataBitFlip:
      return InjectDataBitFlip(op_symbol, rng);
    case FaultClass::kXkeyBitFlip:
      return InjectXkeyBitFlip(op_symbol, rng);
    case FaultClass::kPtePresentClear:
      return InjectPtePresentClear(op_symbol, rng);
    case FaultClass::kPteWxSet:
      return InjectPteWxSet(op_symbol, rng);
    case FaultClass::kTextInt3:
      return InjectTextCorruption(op_symbol, rng, /*int3=*/true);
    case FaultClass::kTextUndecodable:
      return InjectTextCorruption(op_symbol, rng, /*int3=*/false);
    case FaultClass::kDisclosureRead:
      return InjectDisclosureRead(rng);
    case FaultClass::kModuleLoadFault:
      return InjectModuleLoadFault(rng);
    case FaultClass::kNumFaultClasses:
      break;
  }
  return InvalidArgumentError("unknown fault class");
}

Result<InjectionOutcome> FaultInjector::InjectDataBitFlip(const std::string& op, Rng& rng) {
  auto golden = Golden(op);
  if (!golden.ok()) {
    return golden.status();
  }
  const GoldenRun& g = **golden;
  InjectionOutcome out;
  out.cls = FaultClass::kDataBitFlip;

  const uint64_t byte_off = rng.NextBelow(kOpBufferBytes);
  const int bit = static_cast<int>(rng.NextBelow(8));
  const uint64_t trigger =
      g.instructions > 2 ? static_cast<uint64_t>(rng.NextInRange(
                               1, static_cast<int64_t>(g.instructions) - 1))
                         : 1;
  out.trigger_step = trigger;
  out.detail = op + ": flip bit " + std::to_string(bit) + " of buffer+" + Hex(byte_off) +
               " at step " + std::to_string(trigger);

  KRX_RETURN_IF_ERROR(ResetForRun());
  KernelImage* image = kernel_->image.get();
  const uint64_t target = buffer_vaddr_ + byte_off;
  uint64_t retired = 0;
  cpu_->set_step_observer([&](const Cpu&) {
    if (++retired == trigger) {
      uint8_t b = 0;
      if (image->PeekBytes(target, &b, 1).ok()) {
        b = static_cast<uint8_t>(b ^ (1u << bit));
        (void)image->PokeBytes(target, &b, 1);
      }
    }
  });
  RunResult r = cpu_->CallFunction(op, {buffer_vaddr_});
  cpu_->set_step_observer(nullptr);

  out.exception = r.exception;
  out.krx_violation = r.krx_violation;
  out.detect_step = r.instructions;
  if (r.reason == StopReason::kReturned) {
    // Data faults are outside the R^X guarantee: a clean return is benign
    // for the protection invariants; a changed result is recorded as SDC.
    out.detection = Detection::kBenign;
    out.result_changed = r.rax != g.rax;
    out.correct = true;
  } else if (r.reason == StopReason::kException ||
             (r.reason == StopReason::kHalted && r.krx_violation)) {
    // Contained: the poisoned value escaped the data domain and was caught
    // (#PF on a wild pointer, range check, #BR, tripwire...).
    out.detection = Detection::kTrap;
    out.correct = true;
    out.latency = r.instructions > trigger ? r.instructions - trigger : 0;
  }
  return out;
}

Result<InjectionOutcome> FaultInjector::InjectXkeyBitFlip(const std::string& op, Rng& rng) {
  auto golden = Golden(op);
  if (!golden.ok()) {
    return golden.status();
  }
  const GoldenRun& g = **golden;
  InjectionOutcome out;
  out.cls = FaultClass::kXkeyBitFlip;

  auto key_addr = kernel_->image->symbols().AddressOf("xkey$" + op);
  if (!key_addr.ok()) {
    return key_addr.status();
  }
  if (!g.has_enc_window || g.enc_last <= g.enc_first) {
    return FailedPreconditionError("no usable RA-encryption window for " + op);
  }
  // Flip a high bit ([32, 62]) strictly inside the window: the epilogue
  // decrypt then produces sentinel ^ bit — an address far from every mapped
  // region, so the return lands on an unmapped page and fetch-faults.
  const int bit = static_cast<int>(rng.NextInRange(32, 62));
  const uint64_t trigger = static_cast<uint64_t>(
      rng.NextInRange(static_cast<int64_t>(g.enc_first), static_cast<int64_t>(g.enc_last)));
  out.trigger_step = trigger;
  out.detail = op + ": flip bit " + std::to_string(bit) + " of xkey$" + op + " at step " +
               std::to_string(trigger) + " (enc window [" + std::to_string(g.enc_first) +
               ", " + std::to_string(g.enc_last) + "])";

  KernelImage* image = kernel_->image.get();
  auto orig_key = image->Peek64(*key_addr);
  if (!orig_key.ok()) {
    return orig_key.status();
  }
  KRX_RETURN_IF_ERROR(ResetForRun());
  uint64_t retired = 0;
  cpu_->set_step_observer([&](const Cpu&) {
    if (++retired == trigger) {
      (void)image->Poke64(*key_addr, *orig_key ^ (1ULL << bit));
    }
  });
  RunResult r = cpu_->CallFunction(op, {buffer_vaddr_});
  cpu_->set_step_observer(nullptr);
  KRX_RETURN_IF_ERROR(image->Poke64(*key_addr, *orig_key));

  out.exception = r.exception;
  out.krx_violation = r.krx_violation;
  out.detect_step = r.instructions;
  if (r.reason == StopReason::kException &&
      (r.exception == ExceptionKind::kPageFault ||
       r.exception == ExceptionKind::kGeneralProtection)) {
    out.detection = Detection::kTrap;
    out.correct = true;
    out.latency = r.instructions > trigger ? r.instructions - trigger : 0;
  }
  return out;
}

Result<InjectionOutcome> FaultInjector::InjectPtePresentClear(const std::string& op, Rng& rng) {
  auto golden = Golden(op);
  if (!golden.ok()) {
    return golden.status();
  }
  const GoldenRun& g = **golden;
  InjectionOutcome out;
  out.cls = FaultClass::kPtePresentClear;

  const uint64_t page = rng.NextBelow(kOpBufferBytes >> kPageShift);
  const uint64_t page_vaddr = buffer_vaddr_ + (page << kPageShift);
  const uint64_t trigger =
      g.instructions > 2 ? static_cast<uint64_t>(rng.NextInRange(
                               1, static_cast<int64_t>(g.instructions) - 1))
                         : 1;
  out.trigger_step = trigger;
  out.detail = op + ": clear PTE present bit of buffer page " + std::to_string(page) +
               " at step " + std::to_string(trigger);

  KernelImage* image = kernel_->image.get();
  Pte* pte = image->page_table().LookupMutable(page_vaddr);
  if (pte == nullptr) {
    return NotFoundError("buffer page not mapped: " + Hex(page_vaddr));
  }
  const PteFlags saved = pte->flags;
  KRX_RETURN_IF_ERROR(ResetForRun());
  uint64_t retired = 0;
  cpu_->set_step_observer([&](const Cpu&) {
    if (++retired == trigger) {
      pte->flags.present = false;
      image->page_table().BumpGeneration();
    }
  });
  RunResult r = cpu_->CallFunction(op, {buffer_vaddr_});
  cpu_->set_step_observer(nullptr);
  pte->flags = saved;
  image->page_table().BumpGeneration();

  out.exception = r.exception;
  out.krx_violation = r.krx_violation;
  out.detect_step = r.instructions;
  if (r.reason == StopReason::kException && r.exception == ExceptionKind::kPageFault &&
      r.fault_addr >= buffer_vaddr_ && r.fault_addr < buffer_vaddr_ + kOpBufferBytes) {
    out.detection = Detection::kTrap;
    out.correct = true;
    out.latency = r.instructions > trigger ? r.instructions - trigger : 0;
  } else if (r.reason == StopReason::kReturned && r.rax == g.rax) {
    // The op no longer touched that page after the trigger: proven benign
    // by reproducing the golden result.
    out.detection = Detection::kBenign;
    out.correct = true;
  }
  return out;
}

Result<InjectionOutcome> FaultInjector::InjectPteWxSet(const std::string& op, Rng& rng) {
  auto golden = Golden(op);
  if (!golden.ok()) {
    return golden.status();
  }
  const GoldenRun& g = **golden;
  InjectionOutcome out;
  out.cls = FaultClass::kPteWxSet;

  // Corrupt the PTE of a page the op is known to execute from.
  const uint64_t victim_rip = g.rip_trace[rng.NextBelow(g.rip_trace.size())];
  const uint64_t trigger =
      g.instructions > 2 ? static_cast<uint64_t>(rng.NextInRange(
                               1, static_cast<int64_t>(g.instructions) - 1))
                         : 1;
  out.trigger_step = trigger;
  out.detail = op + ": set writable on text page of " + Hex(victim_rip) + " at step " +
               std::to_string(trigger);

  KernelImage* image = kernel_->image.get();
  Pte* pte = image->page_table().LookupMutable(victim_rip);
  if (pte == nullptr) {
    return NotFoundError("text page not mapped: " + Hex(victim_rip));
  }
  const PteFlags saved = pte->flags;
  KRX_RETURN_IF_ERROR(ResetForRun());
  uint64_t retired = 0;
  cpu_->set_step_observer([&](const Cpu&) {
    if (++retired == trigger) {
      pte->flags.writable = true;
      image->page_table().BumpGeneration();
    }
  });
  RunResult r = cpu_->CallFunction(op, {buffer_vaddr_});
  cpu_->set_step_observer(nullptr);

  // Execution must be unaffected; only the W^X page-table audit can see
  // this fault. Run the audit before restoring the bit.
  const bool audit_caught = !image->page_table().FindWxViolations().empty();
  pte->flags = saved;
  image->page_table().BumpGeneration();

  out.exception = r.exception;
  out.krx_violation = r.krx_violation;
  out.detect_step = r.instructions;
  if (audit_caught && r.reason == StopReason::kReturned && r.rax == g.rax) {
    out.detection = Detection::kAudit;
    out.correct = true;
  }
  return out;
}

Result<InjectionOutcome> FaultInjector::InjectTextCorruption(const std::string& op, Rng& rng,
                                                             bool int3) {
  auto golden = Golden(op);
  if (!golden.ok()) {
    return golden.status();
  }
  const GoldenRun& g = **golden;
  InjectionOutcome out;
  out.cls = int3 ? FaultClass::kTextInt3 : FaultClass::kTextUndecodable;
  if (g.instructions < 4) {
    return FailedPreconditionError("op too short for runtime text corruption: " + op);
  }

  // Trigger at step c, victim = an instruction the golden trace proves will
  // execute at some step >= c, so the trap is guaranteed.
  const uint64_t trigger = static_cast<uint64_t>(
      rng.NextInRange(1, static_cast<int64_t>(g.instructions) - 2));
  const uint64_t victim_idx = static_cast<uint64_t>(rng.NextInRange(
      static_cast<int64_t>(trigger), static_cast<int64_t>(g.instructions) - 1));
  const uint64_t victim = g.rip_trace[victim_idx];
  const uint8_t evil = int3 ? kTextPadByte : kUndecodableByte;
  out.trigger_step = trigger;
  out.detail = op + ": poke " + (int3 ? std::string("int3") : std::string("0xFF")) + " at " +
               Hex(victim) + " (instruction " + std::to_string(victim_idx) + ") at step " +
               std::to_string(trigger);

  KernelImage* image = kernel_->image.get();
  uint8_t orig = 0;
  KRX_RETURN_IF_ERROR(image->PeekBytes(victim, &orig, 1));
  KRX_RETURN_IF_ERROR(ResetForRun());
  uint64_t retired = 0;
  cpu_->set_step_observer([&](const Cpu&) {
    if (++retired == trigger) {
      (void)image->PokeBytes(victim, &evil, 1);
    }
  });
  RunResult r = cpu_->CallFunction(op, {buffer_vaddr_});
  cpu_->set_step_observer(nullptr);
  KRX_RETURN_IF_ERROR(image->PokeBytes(victim, &orig, 1));

  out.exception = r.exception;
  out.krx_violation = r.krx_violation;
  out.detect_step = r.instructions;
  const ExceptionKind expected =
      int3 ? ExceptionKind::kBreakpoint : ExceptionKind::kInvalidOpcode;
  if (r.reason == StopReason::kException && r.exception == expected) {
    out.detection = Detection::kTrap;
    out.correct = true;
    out.latency = r.instructions > trigger ? r.instructions - trigger : 0;
  }
  return out;
}

Result<InjectionOutcome> FaultInjector::InjectDisclosureRead(Rng& rng) {
  InjectionOutcome out;
  out.cls = FaultClass::kDisclosureRead;

  // Aim the leak primitive at a random defined function's code.
  const SymbolTable& symbols = kernel_->image->symbols();
  std::vector<uint64_t> targets;
  for (size_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols.at(static_cast<int32_t>(i));
    if (sym.kind == SymbolKind::kFunction && sym.defined &&
        kernel_->image->InCodeRegion(sym.address)) {
      targets.push_back(sym.address);
    }
  }
  if (targets.empty()) {
    return FailedPreconditionError("no code-region functions to probe");
  }
  const uint64_t target = targets[rng.NextBelow(targets.size())];
  out.detail = "debugfs_leak_read(" + Hex(target) + ")";

  KRX_RETURN_IF_ERROR(ResetForRun());
  RunResult r = cpu_->CallFunction("debugfs_leak_read", {target});

  out.exception = r.exception;
  out.krx_violation = r.krx_violation;
  out.detect_step = r.instructions;
  out.latency = r.instructions;
  if (kernel_->config.mpx) {
    out.correct =
        r.reason == StopReason::kException && r.exception == ExceptionKind::kBoundRange;
  } else {
    out.correct = r.reason == StopReason::kHalted && r.krx_violation;
  }
  if (out.correct) {
    out.detection = Detection::kTrap;
  }
  return out;
}

Result<InjectionOutcome> FaultInjector::InjectModuleLoadFault(Rng& rng) {
  InjectionOutcome out;
  out.cls = FaultClass::kModuleLoadFault;

  KernelImage* image = kernel_->image.get();
  const std::string name = "fltmod" + std::to_string(module_counter_++);

  // A small module with one exported function (instrumented with the
  // kernel's own config, so it carries xkeys under RA encryption) and one
  // data object, so the data-section load steps and their rollback are
  // exercised too.
  FunctionBuilder b(name + "_probe");
  b.Emit(Instruction::MovRI(Reg::kRax, 0x7e57));
  b.Emit(Instruction::AddRI(Reg::kRax, static_cast<int64_t>(module_counter_)));
  b.Emit(Instruction::Ret());
  std::vector<Function> fns;
  fns.push_back(b.Build());
  DataObject state;
  state.name = name + "_state";
  state.kind = SectionKind::kData;
  state.bytes.assign(16, 0x5a);
  std::vector<DataObject> data;
  data.push_back(std::move(state));
  auto module =
      CompileModule(name, std::move(fns), std::move(data), image->symbols(), kernel_->config);
  if (!module.ok()) {
    return module.status();
  }

  // Pick a failpoint among the steps this module actually reaches: the
  // xkey-replenish step only exists when the module carries RA keys.
  std::vector<ModuleLoadStep> steps = {
      ModuleLoadStep::kAllocText, ModuleLoadStep::kAllocData,
      ModuleLoadStep::kBindSymbols, ModuleLoadStep::kRelocate,
      ModuleLoadStep::kPlaceText, ModuleLoadStep::kPlaceData,
  };
  if (module->xkey_bytes > 0) {
    steps.push_back(ModuleLoadStep::kReplenishXkeys);
  }
  if (image->layout() == LayoutKind::kKrx) {
    steps.push_back(ModuleLoadStep::kUnmapSynonyms);
  }
  const ModuleLoadStep step = steps[rng.NextBelow(steps.size())];
  out.detail = "module " + name + ": fail before " + ModuleLoadStepName(step);

  const size_t pages_before = image->page_table().MappedPageCount();
  const auto cursors_before = image->module_cursors();
  const size_t modules_before = loader_.module_count();

  loader_.set_failpoint(step);
  auto failed = loader_.Load(*module);
  loader_.clear_failpoint();
  if (failed.ok()) {
    out.detail += " — load unexpectedly succeeded";
    return out;  // kSilent
  }

  // Rollback must be total: address space, page tables, symbol namespace.
  const bool rolled_back =
      image->page_table().MappedPageCount() == pages_before &&
      image->module_cursors().text == cursors_before.text &&
      image->module_cursors().data == cursors_before.data &&
      loader_.module_count() == modules_before &&
      image->symbols().AddressOf(name + "_probe").ok() == false &&
      image->symbols().AddressOf(name + "_state").ok() == false;
  if (!rolled_back) {
    out.detail += " — rollback incomplete";
    return out;  // kSilent: the fault was reported but state leaked
  }

  // And the failure must be transient: the same module loads cleanly now,
  // its function runs, and it unloads.
  auto handle = loader_.Load(*module);
  if (!handle.ok()) {
    out.detail += " — clean reload failed: " + handle.status().message();
    return out;
  }
  KRX_RETURN_IF_ERROR(ResetForRun());
  RunResult r = cpu_->CallFunction(name + "_probe", {});
  const bool ran = r.reason == StopReason::kReturned &&
                   r.rax == 0x7e57 + static_cast<uint64_t>(module_counter_);
  Status unloaded = loader_.Unload(*handle);
  if (!ran || !unloaded.ok()) {
    out.detail += " — post-reload run/unload failed";
    return out;
  }
  out.detection = Detection::kLoadError;
  out.correct = true;
  return out;
}

}  // namespace krx
