#include "src/fault/campaign.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/lmbench.h"
#include "src/workload/sched.h"

namespace krx {
namespace {

constexpr size_t kMaxRecordedFailures = 32;

void Record(CampaignReport& report, const InjectionOutcome& outcome) {
  ClassStats& cs = report.per_class[static_cast<int>(outcome.cls)];
  ++cs.injected;
  ++report.total;
  switch (outcome.detection) {
    case Detection::kTrap:
      ++cs.trapped;
      break;
    case Detection::kAudit:
      ++cs.audited;
      break;
    case Detection::kLoadError:
      ++cs.load_errors;
      break;
    case Detection::kBenign:
      ++cs.benign;
      ++report.benign;
      break;
    case Detection::kSilent:
      break;
  }
  if (outcome.correct && outcome.detection != Detection::kBenign &&
      outcome.detection != Detection::kSilent) {
    ++report.detected;
  }
  if (!outcome.correct) {
    ++cs.misclassified;
    ++report.misclassified;
    if (report.failures.size() < kMaxRecordedFailures) {
      report.failures.push_back(outcome);
    }
  }
  if (outcome.correct && outcome.detection == Detection::kTrap) {
    cs.latency_sum += outcome.latency;
    cs.latency_max = std::max(cs.latency_max, outcome.latency);
    ++cs.latency_samples;
  }
  if (outcome.result_changed) {
    ++cs.sdc;
  }
}

}  // namespace

Result<CampaignReport> RunFaultCampaign(const CampaignOptions& options) {
  struct Variant {
    const char* name;
    ProtectionConfig config;
  };
  const Variant variants[] = {
      {"sfi-o3", ProtectionConfig::SfiOnly(SfiLevel::kO3)},
      {"mpx", ProtectionConfig::MpxOnly()},
      {"sfi+x", ProtectionConfig::Full(false, RaScheme::kEncrypt, options.seed)},
  };

  std::vector<CompiledKernel> kernels;
  std::vector<std::unique_ptr<FaultInjector>> injectors;
  for (const Variant& v : variants) {
    auto kernel = CompileKernel(MakeBenchSource(options.seed), {v.config, LayoutKind::kKrx});
    if (!kernel.ok()) {
      return InternalError(std::string("building ") + v.name +
                           " kernel failed: " + kernel.status().message());
    }
    kernels.push_back(std::move(*kernel));
  }
  for (CompiledKernel& k : kernels) {
    injectors.push_back(std::make_unique<FaultInjector>(&k, options.seed ^ 0xB0F));
  }

  const std::vector<LmbenchRow>& rows = LmbenchRows();
  CampaignReport report;
  report.options = options;
  Rng rng(options.seed);
  std::vector<size_t> class_cursor(kernels.size(), 0);

  for (int i = 0; i < options.injections; ++i) {
    const size_t k = static_cast<size_t>(i) % kernels.size();
    const std::vector<FaultClass> classes = injectors[k]->EligibleClasses();
    const FaultClass cls = classes[class_cursor[k]++ % classes.size()];
    const std::string op =
        "sys_" + rows[rng.NextBelow(rows.size())].profile.name;
    auto outcome = injectors[k]->Inject(cls, op, rng);
    if (!outcome.ok()) {
      return InternalError("injection " + std::to_string(i) + " (" +
                           FaultClassName(cls) + " on " + variants[k].name +
                           ") failed host-side: " + outcome.status().message());
    }
    Record(report, *outcome);
  }
  return report;
}

std::string CampaignReport::ToString() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "fault campaign: %d injections, seed 0x%" PRIx64 "\n",
                options.injections, options.seed);
  out += buf;
  std::snprintf(buf, sizeof(buf), "%-20s %8s %8s %8s %8s %10s %10s\n", "class", "injected",
                "detected", "benign", "missed", "mean-lat", "max-lat");
  out += buf;
  for (int c = 0; c < static_cast<int>(FaultClass::kNumFaultClasses); ++c) {
    const ClassStats& cs = per_class[c];
    if (cs.injected == 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), "%-20s %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64
                  " %10.1f %10" PRIu64 "\n",
                  FaultClassName(static_cast<FaultClass>(c)), cs.injected, cs.detected(),
                  cs.benign, cs.misclassified, cs.mean_latency(), cs.latency_max);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "total %" PRIu64 ": %" PRIu64 " detected, %" PRIu64 " benign, %" PRIu64
                " misclassified (detection rate %.1f%% of adversarial faults)\n",
                total, detected, benign, misclassified, 100.0 * DetectionRate());
  out += buf;
  for (const InjectionOutcome& f : failures) {
    out += "  MISSED [" + std::string(FaultClassName(f.cls)) + "] " + f.detail + "\n";
  }
  return out;
}

std::string CampaignReport::ToJson() const {
  char buf[256];
  std::string out = "{\n";
  std::snprintf(buf, sizeof(buf),
                "  \"seed\": %" PRIu64 ",\n  \"injections\": %d,\n  \"total\": %" PRIu64
                ",\n  \"detected\": %" PRIu64 ",\n  \"benign\": %" PRIu64
                ",\n  \"misclassified\": %" PRIu64 ",\n  \"detection_rate\": %.4f,\n",
                options.seed, options.injections, total, detected, benign, misclassified,
                DetectionRate());
  out += buf;
  out += "  \"classes\": [\n";
  bool first = true;
  for (int c = 0; c < static_cast<int>(FaultClass::kNumFaultClasses); ++c) {
    const ClassStats& cs = per_class[c];
    if (cs.injected == 0) {
      continue;
    }
    if (!first) {
      out += ",\n";
    }
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"injected\": %" PRIu64 ", \"trapped\": %" PRIu64
                  ", \"audited\": %" PRIu64 ", \"load_errors\": %" PRIu64
                  ", \"benign\": %" PRIu64 ", \"misclassified\": %" PRIu64
                  ", \"sdc\": %" PRIu64 ", \"mean_latency\": %.2f, \"max_latency\": %" PRIu64
                  "}",
                  FaultClassName(static_cast<FaultClass>(c)), cs.injected, cs.trapped,
                  cs.audited, cs.load_errors, cs.benign, cs.misclassified, cs.sdc,
                  cs.mean_latency(), cs.latency_max);
    out += buf;
  }
  out += "\n  ]\n}\n";
  return out;
}

Result<SurvivalReport> RunKillTaskScenario(uint64_t seed, OopsPolicy policy) {
  KernelSource src = MakeBaseSource();
  AddSched(&src, /*with_rogue_worker=*/true);
  ProtectionConfig config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  config.seed = seed;
  for (const std::string& name : SchedExemptFunctions()) {
    config.exempt_functions.insert(name);
  }
  auto kernel = CompileKernel(std::move(src), {config, LayoutKind::kKrx});
  if (!kernel.ok()) {
    return kernel.status();
  }
  KRX_RETURN_IF_ERROR(SetUpTaskStacks(*kernel->image));
  Cpu cpu(kernel->image.get());

  // Spawn the two honest workers and the rogue one, then run the scheduler
  // under the oops supervisor.
  for (uint64_t slot : {0ULL, 1ULL, 2ULL}) {
    RunResult r = cpu.CallFunction("sys_spawn", {slot});
    if (r.reason != StopReason::kReturned || static_cast<int64_t>(r.rax) < 0) {
      return InternalError("sys_spawn failed for slot " + std::to_string(slot));
    }
  }
  OopsSupervisor supervisor(&cpu, policy);
  RecoveryOutcome outcome = supervisor.Run("sched_run", {64});

  SurvivalReport report;
  report.survived = outcome.survived();
  report.killed_tasks = outcome.killed_tasks;
  report.oops_count = outcome.oopses.size();
  if (!outcome.oopses.empty()) {
    report.first_oops = outcome.oopses.front().ToString();
  }
  auto global = [&](const char* name) -> uint64_t {
    auto addr = kernel->image->symbols().AddressOf(name);
    if (!addr.ok()) {
      return 0;
    }
    auto v = kernel->image->Peek64(*addr);
    return v.ok() ? *v : 0;
  };
  report.worker_a_runs = global("worker_a_runs");
  report.worker_b_runs = global("worker_b_runs");
  report.worker_c_runs = global("worker_c_runs");
  report.counter = global("sched_counter");
  return report;
}

}  // namespace krx
