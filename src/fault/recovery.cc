#include "src/fault/recovery.h"

#include "src/workload/sched.h"

namespace krx {

Result<uint64_t> OopsSupervisor::KillCurrentTask(RecoveryOutcome* outcome) {
  KernelImage* image = cpu_->image();
  const SymbolTable& symbols = image->symbols();

  auto current_addr = symbols.AddressOf("sched_current");
  if (!current_addr.ok()) {
    return FailedPreconditionError("kill-task policy requires a scheduler: " +
                                   current_addr.status().ToString());
  }
  auto current = image->Peek64(*current_addr);
  if (!current.ok()) {
    return current.status();
  }
  if (*current == 0 || *current >= static_cast<uint64_t>(kSchedMaxTasks)) {
    return FailedPreconditionError("attempted to kill init (oops in task 0)");
  }

  auto tasks_addr = symbols.AddressOf("sched_tasks");
  if (!tasks_addr.ok()) {
    return tasks_addr.status();
  }

  // Reap: the slot becomes free, so sched_yield's round-robin scan never
  // selects it again (and sys_spawn may reuse it).
  const uint64_t task = *tasks_addr + *current * kSchedTaskBytes;
  KRX_RETURN_IF_ERROR(
      image->Poke64(task + kSchedTaskStateOffset, static_cast<uint64_t>(kSchedStateFree)));
  outcome->killed_tasks.push_back(*current);

  // Restore the init task's saved task_switch frame: callee-saved registers
  // below the saved %rsp, then the return address into sched_yield.
  auto saved_rsp = image->Peek64(*tasks_addr + kSchedTaskRspOffset);
  if (!saved_rsp.ok()) {
    return saved_rsp.status();
  }
  static constexpr Reg kFrameRegs[] = {Reg::kR15, Reg::kR14, Reg::kR13,
                                       Reg::kR12, Reg::kRbp, Reg::kRbx};
  for (int i = 0; i < 6; ++i) {
    auto v = image->Peek64(*saved_rsp + 8ULL * static_cast<uint64_t>(i));
    if (!v.ok()) {
      return v.status();
    }
    cpu_->set_reg(kFrameRegs[i], *v);
  }
  auto resume_ra = image->Peek64(*saved_rsp + 48);
  if (!resume_ra.ok()) {
    return resume_ra.status();
  }
  cpu_->set_reg(Reg::kRsp, *saved_rsp + kSchedSwitchFrameBytes);
  KRX_RETURN_IF_ERROR(image->Poke64(*current_addr, 0));
  return *resume_ra;
}

RecoveryOutcome OopsSupervisor::Run(const std::string& entry_symbol,
                                    const std::vector<uint64_t>& args, uint64_t max_steps) {
  RecoveryOutcome outcome;
  RunResult r = cpu_->CallFunction(entry_symbol, args, RunOptions{.max_steps = max_steps});
  outcome.total_instructions = r.instructions;

  while (IsOopsWorthy(r)) {
    outcome.oopses.push_back(BuildOops(*cpu_, r));
    if (policy_ == OopsPolicy::kPanic) {
      outcome.panicked = true;
      break;
    }
    auto resume_rip = KillCurrentTask(&outcome);
    if (!resume_rip.ok()) {
      outcome.panicked = true;
      break;
    }
    const uint64_t remaining =
        max_steps > outcome.total_instructions ? max_steps - outcome.total_instructions : 0;
    if (remaining == 0) {
      r.reason = StopReason::kStepLimit;
      break;
    }
    r = cpu_->RunAt(*resume_rip, RunOptions{.max_steps = remaining});
    outcome.total_instructions += r.instructions;
  }
  outcome.result = r;
  return outcome;
}

}  // namespace krx
