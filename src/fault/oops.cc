#include "src/fault/oops.h"

#include <cinttypes>
#include <cstdio>

namespace krx {
namespace {

// How far above the stopped %rsp the backtrace scanner looks for saved
// return addresses (64 8-byte slots ~ a handful of frames).
constexpr int kBacktraceScanSlots = 64;
constexpr int kBacktraceMaxFrames = 16;

// Resolves `addr` to a containing defined function symbol; returns the
// symbol index or -1.
int32_t ResolveFunction(const SymbolTable& symbols, uint64_t addr) {
  for (size_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols.at(static_cast<int32_t>(i));
    if (sym.kind != SymbolKind::kFunction || !sym.defined || sym.size == 0) {
      continue;
    }
    if (addr >= sym.address && addr < sym.address + sym.size) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

}  // namespace

const char* OopsPolicyName(OopsPolicy policy) {
  switch (policy) {
    case OopsPolicy::kPanic:
      return "panic";
    case OopsPolicy::kKillTask:
      return "kill-task";
  }
  return "?";
}

bool IsOopsWorthy(const RunResult& result) {
  if (result.reason == StopReason::kException) {
    return true;
  }
  if (result.reason == StopReason::kHalted &&
      (result.krx_violation || result.xnr_violation)) {
    return true;
  }
  return false;
}

KernelOops BuildOops(const Cpu& cpu, const RunResult& result) {
  KernelOops oops;
  oops.reason = result.reason;
  oops.exception = result.exception;
  oops.krx_violation = result.krx_violation;
  oops.xnr_violation = result.xnr_violation;
  oops.rip = cpu.rip();
  oops.fault_addr = result.fault_addr;
  oops.instructions = result.instructions;
  for (int i = 0; i < kNumGpRegs; ++i) {
    oops.regs[i] = cpu.reg(static_cast<Reg>(i));
  }

  const KernelImage* image = cpu.image();
  if (image == nullptr) {
    return oops;
  }
  const SymbolTable& symbols = image->symbols();

  // Diagnostics the violation handler maintains.
  auto read_global = [&](const char* name, uint64_t* out) {
    int32_t idx = symbols.Find(name);
    if (idx < 0 || !symbols.at(idx).defined) {
      return;
    }
    auto v = image->Peek64(symbols.at(idx).address);
    if (v.ok()) {
      *out = *v;
    }
  };
  read_global("krx_violation_count", &oops.violation_count);
  read_global("kernel_log", &oops.log_marker);

  // Collect the current value of every live xkey once: under return-address
  // encryption a saved RA on the stack is `real_ra ^ xkey$fn`, so the raw
  // slot value resolves to nothing — but XORing with the right key does.
  std::vector<uint64_t> xkeys;
  for (size_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols.at(static_cast<int32_t>(i));
    if (sym.defined && sym.name.compare(0, 5, "xkey$") == 0) {
      auto v = image->Peek64(sym.address);
      if (v.ok() && *v != 0) {
        xkeys.push_back(*v);
      }
    }
  }

  // Scan the stack upward from the stopped %rsp for return addresses.
  const uint64_t rsp = cpu.reg(Reg::kRsp);
  for (int slot = 0; slot < kBacktraceScanSlots &&
                     oops.backtrace.size() < kBacktraceMaxFrames;
       ++slot) {
    const uint64_t addr = rsp + 8ULL * static_cast<uint64_t>(slot);
    auto v = image->Peek64(addr);
    if (!v.ok()) {
      break;  // walked off the mapped stack
    }
    OopsFrame frame;
    frame.slot_addr = addr;
    frame.value = *v;
    if (*v == Cpu::kReturnSentinel) {
      frame.code_addr = *v;
      frame.function = "<harness sentinel>";
      oops.backtrace.push_back(frame);
      break;  // bottom of the kernel stack walk
    }
    int32_t fn = ResolveFunction(symbols, *v);
    if (fn >= 0) {
      frame.code_addr = *v;
      frame.function = symbols.at(fn).name;
      frame.offset = *v - symbols.at(fn).address;
      oops.backtrace.push_back(frame);
      continue;
    }
    // Not a plaintext code address: try every live xkey (the scanner does
    // not know which function's frame this is, so it brute-forces the
    // per-function keys — cheap here, and exactly what a human reading an
    // encrypted-RA oops would script).
    for (uint64_t key : xkeys) {
      const uint64_t dec = *v ^ key;
      fn = ResolveFunction(symbols, dec);
      if (fn >= 0) {
        frame.code_addr = dec;
        frame.decrypted = true;
        frame.function = symbols.at(fn).name;
        frame.offset = dec - symbols.at(fn).address;
        oops.backtrace.push_back(frame);
        break;
      }
    }
  }
  return oops;
}

std::string KernelOops::ToString() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "kernel oops: %s", StopReasonName(reason));
  out += buf;
  if (reason == StopReason::kException) {
    std::snprintf(buf, sizeof(buf), " (%s)", ExceptionKindName(exception));
    out += buf;
  }
  if (krx_violation) {
    out += " [kR^X violation]";
  }
  if (xnr_violation) {
    out += " [XnR violation]";
  }
  std::snprintf(buf, sizeof(buf),
                "\n  rip=0x%016" PRIx64 " fault_addr=0x%016" PRIx64
                " instructions=%" PRIu64,
                rip, fault_addr, instructions);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "\n  krx_violation_count=%" PRIu64 " kernel_log=0x%016" PRIx64,
                violation_count, log_marker);
  out += buf;
  for (int i = 0; i < kNumGpRegs; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%s=0x%016" PRIx64,
                  (i % 4 == 0) ? "\n  " : "  ", RegName(static_cast<Reg>(i)),
                  regs[i]);
    out += buf;
  }
  out += "\n  backtrace:";
  if (backtrace.empty()) {
    out += " <none>";
  }
  for (const OopsFrame& f : backtrace) {
    std::snprintf(buf, sizeof(buf), "\n    [0x%016" PRIx64 "] %s+0x%" PRIx64 "%s",
                  f.slot_addr, f.function.c_str(), f.offset,
                  f.decrypted ? " (RA-decrypted)" : "");
    out += buf;
  }
  return out;
}

}  // namespace krx
