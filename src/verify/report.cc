#include "src/verify/report.h"

#include <cinttypes>
#include <cstdio>

namespace krx {

const char* RuleName(RuleId rule) {
  switch (rule) {
    case RuleId::kCfgDecode: return "CFG_DECODE";
    case RuleId::kRxLayout: return "RX_LAYOUT";
    case RuleId::kRxPhysmap: return "RX_PHYSMAP";
    case RuleId::kRxGuard: return "RX_GUARD";
    case RuleId::kRxCheckDisp: return "RX_CHECK_DISP";
    case RuleId::kRxRead: return "RX_READ";
    case RuleId::kRxXkeys: return "RX_XKEYS";
    case RuleId::kRaXPrologue: return "RA_X_PROLOGUE";
    case RuleId::kRaXEpilogue: return "RA_X_EPILOGUE";
    case RuleId::kRaXCallSite: return "RA_X_CALLSITE";
    case RuleId::kRaDPrologue: return "RA_D_PROLOGUE";
    case RuleId::kRaDEpilogue: return "RA_D_EPILOGUE";
    case RuleId::kRaDTripwire: return "RA_D_TRIPWIRE";
    case RuleId::kDivEntry: return "DIV_ENTRY";
    case RuleId::kDivEntropy: return "DIV_ENTROPY";
    case RuleId::kSpecBarrier: return "SPEC_BARRIER";
    case RuleId::kSpecMask: return "SPEC_MASK";
    case RuleId::kNumRules: break;
  }
  return "??";
}

std::string Diagnostic::ToString() const {
  char head[128];
  if (address != 0) {
    std::snprintf(head, sizeof(head), "[%s] %s @ 0x%016" PRIx64 ": ", RuleName(rule),
                  function.empty() ? "<image>" : function.c_str(), address);
  } else {
    std::snprintf(head, sizeof(head), "[%s] %s: ", RuleName(rule),
                  function.empty() ? "<image>" : function.c_str());
  }
  std::string out = head;
  out += message;
  if (!snippet.empty()) {
    out += "\n    | " + snippet;
  }
  return out;
}

std::map<RuleId, uint64_t> VerifyReport::RuleCounts() const {
  std::map<RuleId, uint64_t> counts;
  for (const Diagnostic& d : diagnostics) {
    ++counts[d.rule];
  }
  return counts;
}

bool VerifyReport::Violates(RuleId rule) const {
  for (const Diagnostic& d : diagnostics) {
    if (d.rule == rule) {
      return true;
    }
  }
  return false;
}

std::string VerifyReport::Summary(size_t max_diagnostics) const {
  std::string out;
  if (diagnostics.empty()) {
    out = "verified: no violations\n";
  } else {
    out = "violations by rule:\n";
    for (const auto& [rule, count] : RuleCounts()) {
      out += "  " + std::string(RuleName(rule)) + ": " + std::to_string(count) + "\n";
    }
    size_t shown = 0;
    for (const Diagnostic& d : diagnostics) {
      if (max_diagnostics != 0 && shown == max_diagnostics) {
        out += "  ... " + std::to_string(diagnostics.size() - shown) + " more\n";
        break;
      }
      out += d.ToString() + "\n";
      ++shown;
    }
  }
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "checked: %" PRIu64 " functions (%" PRIu64 " exempt), %" PRIu64
                " reads (%" PRIu64 " safe, %" PRIu64 " rsp, %" PRIu64 " check-justified), %" PRIu64
                " range checks, %" PRIu64 " RA sites, %" PRIu64 " tripwires\n",
                counters.functions_checked, counters.functions_exempt, counters.reads_seen,
                counters.safe_reads, counters.rsp_reads, counters.justified_reads,
                counters.range_checks_seen, counters.ra_sites_checked,
                counters.tripwires_verified);
  out += buf;
  return out;
}

}  // namespace krx
