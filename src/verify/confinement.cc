#include "src/verify/confinement.h"

#include <algorithm>
#include <map>
#include <vector>

namespace krx {
namespace {

// The per-register fact is a displacement *window*: `cover[r] = [lo, hi]`
// means that on every path to this point a check (or known constant) proved
// that for every displacement d in [lo, hi], the effective address r + d is
// >= 0 and <= edata without unsigned wrap, with r unchanged since. A read
// [r + d] is justified iff lo <= d <= hi.
//
// The lower edge is what makes the `sub r, imm` congruence sound: a plain
// upper-bound fact (the old scalar domain, implicitly [0, D]) shifted up by
// a subtraction would claim r - imm <= edata - D - imm, but r <u imm wraps
// r - imm to the top of the address space — above edata — while the shifted
// scalar fact still "covers" it. Shifting a window keeps the no-wrap proof:
// [lo, hi] derived through dst = src + delta becomes [lo - delta, hi - delta]
// and dst + d re-associates to src + (delta + d) with delta + d inside the
// original proven window.
struct CoverWindow {
  int64_t lo = 0;
  int64_t hi = 0;
};

// `exact` holds fully-checked operands (lea-form checks and full-operand
// bndcu) whose effective address was proven <= edata.
struct Facts {
  bool top = true;  // optimistic "unvisited" element of the meet lattice
  std::map<Reg, CoverWindow> cover;
  std::vector<MemOperand> exact;
};

// Both windows proven at the same program point for the same register:
// r + d lands in [0, edata] at the edges of both intervals, and real-valued
// monotonicity in d closes any gap between them, so the hull is justified.
CoverWindow Hull(const CoverWindow& a, const CoverWindow& b) {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

bool HasExact(const Facts& f, const MemOperand& mem) {
  return std::find(f.exact.begin(), f.exact.end(), mem) != f.exact.end();
}

void AddExact(Facts& f, const MemOperand& mem) {
  if (!HasExact(f, mem)) {
    f.exact.push_back(mem);
  }
}

// Intersection meet: facts survive only if proven on every predecessor
// path, with the weakest coverage. Returns true if `into` changed.
bool MeetInto(Facts& into, const Facts& contrib) {
  if (contrib.top) {
    return false;
  }
  if (into.top) {
    into = contrib;
    into.top = false;
    return true;
  }
  bool changed = false;
  for (auto it = into.cover.begin(); it != into.cover.end();) {
    auto other = contrib.cover.find(it->first);
    if (other == contrib.cover.end()) {
      it = into.cover.erase(it);
      changed = true;
    } else {
      // Window intersection: only displacements proven on both paths
      // survive; an empty intersection is no fact at all.
      CoverWindow met{std::max(it->second.lo, other->second.lo),
                      std::min(it->second.hi, other->second.hi)};
      if (met.lo > met.hi) {
        it = into.cover.erase(it);
        changed = true;
        continue;
      }
      if (met.lo != it->second.lo || met.hi != it->second.hi) {
        it->second = met;
        changed = true;
      }
      ++it;
    }
  }
  for (auto it = into.exact.begin(); it != into.exact.end();) {
    if (!HasExact(contrib, *it)) {
      it = into.exact.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  return changed;
}

bool MemUsesReg(const MemOperand& mem, Reg r) { return mem.base == r || mem.index == r; }

// Congruence rule of the interval domain: `dst = src + delta` with a known
// constant delta, so `cover[dst] = [lo - delta, hi - delta]` (the proven
// window shifts opposite to the offset; it may drift entirely negative, at
// which point it justifies no actual read but stays exact for further
// derivations).
//
// This is the verifier-side superset of RegOffsetDerivation in
// src/ir/analysis.cc — kept inline because krx_verify deliberately does not
// link the IR analyses it is meant to distrust. Every derivation the O4
// pass uses to elide a check MUST be reproduced here (the converse need
// not hold: kSubRI is checker-side only, the pass never elides across a
// subtraction), or elisions turn into post-link kRxRead failures.
bool DeriveRegOffset(const Instruction& inst, Reg* dst, Reg* src, int64_t* delta) {
  switch (inst.op) {
    case Opcode::kMovRR:
      *dst = inst.r1;
      *src = inst.r2;
      *delta = 0;
      return true;
    case Opcode::kAddRI:
      if (inst.imm < 0) {
        return false;  // negative add is kSubRI's job; keep the rules disjoint
      }
      *dst = inst.r1;
      *src = inst.r1;
      *delta = inst.imm;
      return true;
    case Opcode::kSubRI:
      // `sub r, imm` shifts the window up: the lower edge of the incoming
      // window is what proves the subtraction cannot wrap under the
      // unsigned compare (see CoverWindow).
      if (inst.imm < 0) {
        return false;
      }
      *dst = inst.r1;
      *src = inst.r1;
      *delta = -inst.imm;
      return true;
    case Opcode::kLea:
      if (!inst.mem.has_base() || inst.mem.has_index() || inst.mem.rip_relative ||
          inst.mem.disp < 0) {
        return false;
      }
      *dst = inst.r1;
      *src = inst.mem.base;
      *delta = inst.mem.disp;
      return true;
    default:
      return false;
  }
}

// Offsets past this are dropped instead of subtracted: no real derivation
// chain gets here (the pass caps at the guard size), and the bound keeps
// the int64 cover arithmetic far from overflow.
constexpr int64_t kMaxDerivationDelta = int64_t{1} << 40;

// A candidate fact between a `cmp reg, imm` and the `ja` that consumes its
// flags. Instructions in between (e.g. a decoy phantom mov) may clobber
// parts of it.
struct PendingCheck {
  bool valid = false;
  Reg reg = Reg::kNone;
  int64_t imm = 0;
  bool reg_intact = false;       // reg unwritten/unspilled since the cmp
  bool has_exact = false;        // cmp'd reg held a lea'd effective address
  MemOperand exact;
  bool exact_intact = false;     // the lea'd operand's registers unwritten
};

// Facts a conditional block exit adds on its fallthrough edge.
struct FallExtra {
  bool has_cover = false;
  Reg reg = Reg::kNone;
  CoverWindow cover;
  bool has_exact = false;
  MemOperand exact;
};

// Resolves whether `target` is a violation site: a (possibly connector-jmp
// reached, possibly decoy-instrumented) `callq krx_handler`.
bool IsViolationTarget(const DecodedFunction& fn, uint64_t target, uint64_t handler) {
  if (handler == 0) {
    return false;
  }
  for (int hops = 0; hops < 8; ++hops) {
    const DecodedInst* di = fn.InstAt(target);
    if (di == nullptr) {
      return false;
    }
    switch (di->inst.op) {
      case Opcode::kJmpRel: {  // connector jmp into the (shuffled) block
        uint64_t t = di->BranchTarget();
        if (!fn.Contains(t)) {
          return false;
        }
        target = t;
        continue;
      }
      case Opcode::kLea:  // decoy tripwire lea preceding the handler call
        if (!di->inst.mem.rip_relative) {
          return false;
        }
        target = di->address + di->size;
        continue;
      case Opcode::kCallRel:
        return di->BranchTarget() == handler;
      default:
        return false;
    }
  }
  return false;
}

class ConfinementChecker {
 public:
  ConfinementChecker(const DecodedFunction& fn, const ConfinementParams& params,
                     VerifyReport* report)
      : fn_(fn), params_(params), report_(report) {}

  void Run() {
    const size_t n = fn_.blocks.size();
    if (n == 0) {
      return;
    }
    std::vector<Facts> in(n);
    in[0].top = false;  // entry: nothing proven yet

    // Greatest-fixpoint iteration. This is at least as precise as the
    // pass's analyses — facts survive loop back edges via the intersection
    // meet, matching O4's availability fixpoint — so every read the pass
    // left uninstrumented because a dominating check covers it is also
    // justified here, and block permutation cannot manufacture spurious
    // violations.
    //
    // Termination needs widening: a net-positive derivation cycle (an
    // `add $c, %r` around a loop) drives cover[r] down by c per round
    // forever. After the CFG has had time to stabilize (n + 8 rounds) a
    // snapshot is taken, and any cover entry still descending below its
    // snapshot value is widened to "unknown" (erased). Erasure only ever
    // weakens facts, so the result stays a sound over-approximation — and
    // it mirrors the O4 pass's own widening, which keeps the in-loop check
    // in exactly these situations.
    const size_t widen_after = n + 8;
    std::vector<Facts> widen_base;
    size_t round = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      ++round;
      if (round == widen_after) {
        widen_base = in;
      }
      for (size_t b = 0; b < n; ++b) {
        if (!fn_.blocks[b].reachable || in[b].top) {
          continue;
        }
        if (round > widen_after && !widen_base[b].top) {
          const Facts& base = widen_base[b];
          for (auto it = in[b].cover.begin(); it != in[b].cover.end();) {
            auto snap = base.cover.find(it->first);
            // A window still shrinking at either edge (a net derivation
            // cycle around a loop) is widened to "unknown".
            if (snap != base.cover.end() &&
                (it->second.hi < snap->second.hi || it->second.lo > snap->second.lo)) {
              it = in[b].cover.erase(it);
            } else {
              ++it;
            }
          }
        }
        FallExtra extra;
        Facts out = Transfer(b, in[b], /*verify=*/false, &extra);
        const VerifierBlock& blk = fn_.blocks[b];
        if (blk.taken >= 0) {
          changed |= MeetInto(in[static_cast<size_t>(blk.taken)], out);
        }
        if (blk.fall >= 0) {
          ApplyExtra(out, extra);
          changed |= MeetInto(in[static_cast<size_t>(blk.fall)], out);
        }
      }
    }

    for (size_t b = 0; b < n; ++b) {
      if (!fn_.blocks[b].reachable || in[b].top) {
        continue;
      }
      FallExtra extra;
      Transfer(b, in[b], /*verify=*/true, &extra);
    }
  }

 private:
  static void ApplyExtra(Facts& f, const FallExtra& extra) {
    if (extra.has_cover) {
      auto it = f.cover.find(extra.reg);
      f.cover[extra.reg] =
          it == f.cover.end() ? extra.cover : Hull(it->second, extra.cover);
    }
    if (extra.has_exact) {
      AddExact(f, extra.exact);
    }
  }

  void KillReg(Facts& f, std::map<Reg, MemOperand>& lea_ea, PendingCheck& pending, Reg r) {
    f.cover.erase(r);
    f.exact.erase(std::remove_if(f.exact.begin(), f.exact.end(),
                                 [r](const MemOperand& m) { return MemUsesReg(m, r); }),
                  f.exact.end());
    for (auto it = lea_ea.begin(); it != lea_ea.end();) {
      if (it->first == r || MemUsesReg(it->second, r)) {
        it = lea_ea.erase(it);
      } else {
        ++it;
      }
    }
    if (pending.valid) {
      if (pending.reg == r) {
        pending.reg_intact = false;
      }
      if (pending.has_exact && MemUsesReg(pending.exact, r)) {
        pending.exact_intact = false;
      }
    }
  }

  // Mirrors ApplySfiPass's ApplyInstructionKills: calls clear everything
  // (or, with byte-level callee-clobber masks, exactly the registers the
  // callee may write), register writes kill per-register facts, and a
  // store/push of a register spill-kills it (its value escapes to writable
  // memory, §5.1.2).
  void ApplyKills(Facts& f, std::map<Reg, MemOperand>& lea_ea, PendingCheck& pending,
                  const DecodedInst& di) {
    const Instruction& inst = di.inst;
    if (inst.IsCall()) {
      if (inst.op == Opcode::kCallRel && params_.callee_clobbers != nullptr) {
        auto it = params_.callee_clobbers->find(di.BranchTarget());
        if (it != params_.callee_clobbers->end()) {
          for (int r = 0; r < kNumGpRegs; ++r) {
            if (((it->second >> r) & 1) != 0) {
              KillReg(f, lea_ea, pending, static_cast<Reg>(r));
            }
          }
          // The callee's flags are not summarized: any pending cmp's flags
          // are stale after the call regardless of the register mask.
          pending.valid = false;
          return;
        }
      }
      f.cover.clear();
      f.exact.clear();
      lea_ea.clear();
      pending.valid = false;
      return;
    }
    Reg written[6];
    int wcount = 0;
    InstructionRegWrites(inst, written, &wcount);
    for (int i = 0; i < wcount; ++i) {
      KillReg(f, lea_ea, pending, written[i]);
    }
    if (inst.op == Opcode::kStore || inst.op == Opcode::kPushR) {
      KillReg(f, lea_ea, pending, inst.r1);
    }
  }

  void Diagnose(RuleId rule, uint64_t address, std::string message) {
    Diagnostic d;
    d.rule = rule;
    d.function = fn_.name;
    d.address = address;
    d.snippet = fn_.SnippetAt(address);
    d.message = std::move(message);
    report_->Add(std::move(d));
  }

  // Records a recognized range check's coverage and enforces the
  // coalescing bound: a dominating check may have had its displacement
  // raised, but never past the guard-section size (the distance overshoot
  // the layout can absorb).
  void NoteCheck(bool verify, uint64_t address, int64_t coverage) {
    if (!verify) {
      return;
    }
    ++report_->counters.range_checks_seen;
    if (params_.guard_size > 0 && coverage > static_cast<int64_t>(params_.guard_size)) {
      Diagnose(RuleId::kRxCheckDisp, address,
               "check coverage " + std::to_string(coverage) + " exceeds guard size " +
                   std::to_string(params_.guard_size));
    }
  }

  // True if reading through `mem` is proven in-bounds by current facts.
  bool Justified(const Facts& f, const MemOperand& mem) const {
    if (mem.has_base() && !mem.has_index()) {
      auto it = f.cover.find(mem.base);
      if (it != f.cover.end() && it->second.lo <= mem.disp && mem.disp <= it->second.hi) {
        return true;
      }
    }
    return HasExact(f, mem);
  }

  // Peephole for rep-prefixed string reads: the paper places their check
  // *after* the instruction ("postmortem detection", §5.1.2), so look
  // forward for [pushfq]? cmp <base>, imm ; ja <viol>  (or a bndcu).
  bool StringCheckFollows(size_t i, Reg base) const {
    size_t j = i + 1;
    auto skippable = [&](const Instruction& inst) {
      if (inst.op == Opcode::kPushfq) {
        return true;
      }
      if (inst.WritesFlags() || inst.IsCall() || inst.ReadsMemory() || inst.WritesMemory()) {
        return false;
      }
      Reg written[6];
      int wcount = 0;
      InstructionRegWrites(inst, written, &wcount);
      for (int k = 0; k < wcount; ++k) {
        if (written[k] == base) {
          return false;
        }
      }
      return true;
    };
    for (int steps = 0; steps < 8 && j < fn_.insts.size(); ++steps, ++j) {
      const Instruction& inst = fn_.insts[j].inst;
      if (inst.op == Opcode::kBndcu) {
        return inst.mem.base == base && !inst.mem.has_index() && inst.mem.disp >= 0;
      }
      if (inst.op == Opcode::kCmpRI) {
        if (inst.r1 != base ||
            static_cast<uint64_t>(inst.imm) > params_.edata) {
          return false;
        }
        // Find the ja consuming these flags.
        for (size_t k = j + 1; k < fn_.insts.size() && k < j + 4; ++k) {
          const Instruction& next = fn_.insts[k].inst;
          if (next.op == Opcode::kJcc) {
            return next.cond == Cond::kA &&
                   IsViolationTarget(fn_, fn_.insts[k].BranchTarget(), params_.handler_address);
          }
          if (!skippable(next)) {
            return false;
          }
        }
        return false;
      }
      if (!skippable(inst)) {
        return false;
      }
    }
    return false;
  }

  void VerifyRead(const Facts& f, size_t i) {
    const DecodedInst& di = fn_.insts[i];
    const Instruction& inst = di.inst;
    ++report_->counters.reads_seen;
    if (inst.IsString()) {
      Reg base = inst.StringReadBase();
      auto it = f.cover.find(base);
      // A string read starts at displacement 0: the window must contain it.
      bool ok = (it != f.cover.end() && it->second.lo <= 0 && it->second.hi >= 0) ||
                StringCheckFollows(i, base);
      if (ok) {
        ++report_->counters.justified_reads;
      } else {
        Diagnose(RuleId::kRxRead, di.address,
                 std::string("string read through %") + RegName(base) +
                     " has no dominating or postmortem range check");
      }
      return;
    }
    const MemOperand& mem = inst.mem;
    if (mem.IsSafeAddress()) {
      ++report_->counters.safe_reads;
      return;
    }
    if (mem.IsPlainRspAccess()) {
      ++report_->counters.rsp_reads;
      report_->counters.max_rsp_disp = std::max(report_->counters.max_rsp_disp, mem.disp);
      return;
    }
    if (Justified(f, mem)) {
      ++report_->counters.justified_reads;
    } else {
      Diagnose(RuleId::kRxRead, di.address,
               "read " + FormatMemOperand(mem) + " not dominated by a range check");
    }
  }

  // Walks one block from `in`, producing the exit facts and any
  // fallthrough-edge extra from a trailing check's cmp/ja pair. With
  // `verify` set, also validates every read against the incoming facts.
  Facts Transfer(size_t b, const Facts& in, bool verify, FallExtra* extra) {
    const VerifierBlock& blk = fn_.blocks[b];
    Facts f = in;
    std::map<Reg, MemOperand> lea_ea;  // reg -> effective address it holds
    PendingCheck pending;

    for (size_t i = blk.first; i < blk.first + blk.count; ++i) {
      const DecodedInst& di = fn_.insts[i];
      const Instruction& inst = di.inst;

      if (verify && inst.ReadsMemory()) {
        VerifyRead(f, i);
      }

      // A flag-writing instruction invalidates any pending cmp (the ja
      // would consume the newer flags). The cmp handled below re-arms it.
      if (inst.WritesFlags() && inst.op != Opcode::kCmpRI) {
        pending.valid = false;
      }

      // Congruence derivation against the *pre-kill* facts: `add $8, %rdi`
      // both redefines %rdi and re-derives it from its own old value.
      bool has_derived = false;
      Reg derived_dst = Reg::kNone;
      CoverWindow derived_cover;
      {
        Reg dst = Reg::kNone;
        Reg src = Reg::kNone;
        int64_t delta = 0;
        if (DeriveRegOffset(inst, &dst, &src, &delta) && delta <= kMaxDerivationDelta &&
            delta >= -kMaxDerivationDelta) {
          auto it = f.cover.find(src);
          if (it != f.cover.end()) {
            has_derived = true;
            derived_dst = dst;
            derived_cover = {it->second.lo - delta, it->second.hi - delta};
          }
        }
      }

      ApplyKills(f, lea_ea, pending, di);

      if (has_derived) {
        auto it = f.cover.find(derived_dst);
        f.cover[derived_dst] =
            it == f.cover.end() ? derived_cover : Hull(it->second, derived_cover);
      }

      switch (inst.op) {
        case Opcode::kBndcu:
          // bndcu traps if EA > %bnd0.ub (= edata, installed at kernel
          // entry): the full operand is proven, and for base-only forms
          // the base is covered up to the checked displacement.
          NoteCheck(verify, di.address, inst.mem.has_index() ? 0 : inst.mem.disp);
          AddExact(f, inst.mem);
          if (inst.mem.has_base() && !inst.mem.has_index() && inst.mem.disp >= 0) {
            const CoverWindow armed{0, inst.mem.disp};
            auto it = f.cover.find(inst.mem.base);
            f.cover[inst.mem.base] =
                it == f.cover.end() ? armed : Hull(it->second, armed);
          }
          // The trap only fires architecturally; a mispredicted path still
          // issues the guarded load transiently, so the hardening contracts
          // constrain the bndcu itself.
          if (verify && params_.mitigation == SpecMitigation::kBarrier) {
            const bool fenced = i + 1 < blk.first + blk.count &&
                                fn_.insts[i + 1].inst.op == Opcode::kSpecFence;
            if (!fenced) {
              Diagnose(RuleId::kSpecBarrier, di.address,
                       "bndcu check not immediately followed by lfence");
            }
          }
          if (verify && params_.mitigation == SpecMitigation::kMask) {
            Diagnose(RuleId::kSpecMask, di.address,
                     "speculation-prone bndcu check survives under spec-mask");
          }
          break;
        case Opcode::kMaskRI: {
          // mask clamps r1 into [0, imm] unconditionally — the same
          // post-state the ja-not-taken edge of a cmp/ja check proves, but
          // branchless, so there is no predictor window to steer. r1 + d
          // stays within [0, edata] for d in [0, edata - imm]. The bound is
          // an address, compared unsigned exactly as the Cpu clamps it (the
          // sign-extended imm32 is negative as int64 under high layouts).
          const uint64_t bound = static_cast<uint64_t>(inst.imm);
          if (bound <= params_.edata) {
            const int64_t coverage = static_cast<int64_t>(params_.edata - bound);
            NoteCheck(verify, di.address, coverage);
            f.cover[inst.r1] = {0, coverage};
          }
          break;
        }
        case Opcode::kLea:
          // Remember the EA the destination now holds, unless the operand
          // involves the destination itself (the value would be stale).
          if (!inst.mem.rip_relative && !inst.mem.is_absolute() &&
              !MemUsesReg(inst.mem, inst.r1)) {
            lea_ea[inst.r1] = inst.mem;
          }
          break;
        case Opcode::kMovRI:
          // The register now holds a known constant: if it is within the
          // data region, any displacement in [-imm, edata - imm] stays
          // within it.
          if (inst.imm >= 0 && static_cast<uint64_t>(inst.imm) <= params_.edata) {
            f.cover[inst.r1] = {-inst.imm, static_cast<int64_t>(params_.edata) - inst.imm};
          }
          break;
        case Opcode::kCmpRI: {
          pending.valid = true;
          pending.reg = inst.r1;
          pending.imm = inst.imm;
          pending.reg_intact = true;
          auto it = lea_ea.find(inst.r1);
          pending.has_exact = it != lea_ea.end();
          pending.exact_intact = pending.has_exact;
          if (pending.has_exact) {
            pending.exact = it->second;
          }
          break;
        }
        default:
          break;
      }
    }

    *extra = FallExtra{};
    const DecodedInst& last = fn_.insts[blk.first + blk.count - 1];
    if (last.inst.op == Opcode::kJcc && last.inst.cond == Cond::kA && pending.valid &&
        static_cast<uint64_t>(pending.imm) <= params_.edata &&
        IsViolationTarget(fn_, last.BranchTarget(), params_.handler_address)) {
      // ja-not-taken proves reg <=u imm: the fallthrough edge learns the
      // coverage fact (and the lea'd operand fact, if any).
      int64_t coverage = static_cast<int64_t>(params_.edata) - pending.imm;
      NoteCheck(verify, last.address, coverage);
      // The architectural proof above says nothing about the wrong path: a
      // trained predictor can fall through transiently with reg > imm. The
      // hardening contracts are enforced on the recognized check itself.
      if (verify && params_.mitigation == SpecMitigation::kBarrier) {
        const VerifierBlock* fall_blk =
            blk.fall >= 0 ? &fn_.blocks[static_cast<size_t>(blk.fall)] : nullptr;
        const bool fenced = fall_blk != nullptr && fall_blk->count > 0 &&
                            fn_.insts[fall_blk->first].inst.op == Opcode::kSpecFence;
        if (!fenced) {
          Diagnose(RuleId::kSpecBarrier, last.address,
                   "range check's fallthrough path does not begin with lfence");
        }
      }
      if (verify && params_.mitigation == SpecMitigation::kMask) {
        Diagnose(RuleId::kSpecMask, last.address,
                 "speculation-prone cmp/ja check survives under spec-mask");
      }
      if (pending.reg_intact) {
        // ja-not-taken proves reg <=u imm (so reg + d cannot wrap for
        // d >= 0, nor exceed edata for d <= coverage).
        extra->has_cover = true;
        extra->reg = pending.reg;
        extra->cover = {0, coverage};
      }
      if (pending.has_exact && pending.exact_intact) {
        extra->has_exact = true;
        extra->exact = pending.exact;
      }
    }
    return f;
  }

  const DecodedFunction& fn_;
  const ConfinementParams& params_;
  VerifyReport* report_;
};

}  // namespace

void CheckReadConfinement(const DecodedFunction& fn, const ConfinementParams& params,
                          VerifyReport* report) {
  const VerifyCounters before = report->counters;
  ConfinementChecker(fn, params, report).Run();
  FunctionReadCensus census;
  census.reads_seen = report->counters.reads_seen - before.reads_seen;
  census.justified_reads = report->counters.justified_reads - before.justified_reads;
  census.range_checks_seen = report->counters.range_checks_seen - before.range_checks_seen;
  report->per_function.emplace_back(fn.name, census);
}

std::map<uint64_t, uint64_t> ComputeByteCalleeClobbers(
    const std::vector<const DecodedFunction*>& functions, uint64_t handler_address) {
  constexpr uint64_t kAllRegs = (uint64_t{1} << kNumGpRegs) - 1;
  struct Node {
    uint64_t mask = 0;
    std::vector<uint64_t> callees;  // entry addresses
  };
  std::map<uint64_t, Node> nodes;
  for (const DecodedFunction* fn : functions) {
    nodes.emplace(fn->address, Node{});
  }
  for (const DecodedFunction* fn : functions) {
    Node& node = nodes[fn->address];
    bool unknown = false;
    for (const DecodedInst& di : fn->insts) {
      const Instruction& inst = di.inst;
      Reg written[6];
      int wcount = 0;
      InstructionRegWrites(inst, written, &wcount);
      for (int i = 0; i < wcount; ++i) {
        if (IsGpReg(written[i])) {
          node.mask |= uint64_t{1} << RegIndex(written[i]);
        }
      }
      switch (inst.op) {
        case Opcode::kCallRel: {
          const uint64_t target = di.BranchTarget();
          if (handler_address != 0 && target == handler_address) {
            break;  // violation path: call; hlt — never returns
          }
          if (nodes.count(target) > 0) {
            node.callees.push_back(target);
          } else {
            unknown = true;
          }
          break;
        }
        case Opcode::kJmpRel: {
          const uint64_t target = di.BranchTarget();
          if (!fn->Contains(target)) {  // tail transfer out of the function
            if (handler_address != 0 && target == handler_address) {
              break;
            }
            if (nodes.count(target) > 0) {
              node.callees.push_back(target);
            } else {
              unknown = true;
            }
          }
          break;
        }
        case Opcode::kCallR:
        case Opcode::kCallM:
        case Opcode::kJmpR:
        case Opcode::kJmpM:
          unknown = true;
          break;
        default:
          break;
      }
    }
    if (unknown) {
      node.mask = kAllRegs;
    }
  }
  // Transitive closure: masks only grow and are bounded, so this converges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [addr, node] : nodes) {
      (void)addr;
      uint64_t m = node.mask;
      for (uint64_t c : node.callees) {
        auto it = nodes.find(c);
        m |= it == nodes.end() ? kAllRegs : it->second.mask;
      }
      if (m != node.mask) {
        node.mask = m;
        changed = true;
      }
    }
  }
  std::map<uint64_t, uint64_t> out;
  for (const auto& [addr, node] : nodes) {
    out.emplace(addr, node.mask);
  }
  return out;
}

}  // namespace krx
