#include "src/verify/ra_check.h"

#include "src/base/math_util.h"
#include "src/isa/encoding.h"

namespace krx {
namespace {

void Diagnose(VerifyReport* report, const DecodedFunction& fn, RuleId rule, uint64_t address,
              std::string message) {
  Diagnostic d;
  d.rule = rule;
  d.function = fn.name;
  d.address = address;
  d.snippet = address != 0 ? fn.SnippetAt(address) : "";
  d.message = std::move(message);
  report->Add(std::move(d));
}

// Index of the first real instruction: under diversification the function
// begins with the pinned `jmp <original entry>` trampoline.
int64_t EntryIndex(const DecodedFunction& fn) {
  if (fn.insts.empty()) {
    return -1;
  }
  int64_t idx = 0;
  for (int hops = 0; hops < 16; ++hops) {
    const DecodedInst& di = fn.insts[static_cast<size_t>(idx)];
    if (di.inst.op != Opcode::kJmpRel) {
      return idx;
    }
    uint64_t target = di.BranchTarget();
    if (!fn.Contains(target)) {
      return idx;  // tail-call trampoline: treat the jmp itself as the body
    }
    int64_t next = fn.InstIndexAt(target);
    if (next < 0) {
      return -1;
    }
    idx = next;
  }
  return -1;
}

bool IsXorRspR11(const Instruction& inst) {
  return inst.op == Opcode::kXorMR && inst.r1 == kRangeCheckScratch &&
         inst.mem == MemOperand::Base(Reg::kRsp, 0);
}

bool IsXkeyLoad(const Instruction& inst) {
  return inst.op == Opcode::kLoad && inst.r1 == kRangeCheckScratch && inst.mem.rip_relative;
}

bool IsTailCall(const DecodedFunction& fn, const DecodedInst& di) {
  return di.inst.op == Opcode::kJmpRel && !fn.Contains(di.BranchTarget());
}

// The decoy pass may drop a phantom `mov $imm, %r11` right before a
// tripwire lea; pattern matching on physically-preceding instructions must
// look through them.
int64_t PrevSkippingPhantoms(const DecodedFunction& fn, int64_t idx) {
  for (--idx; idx >= 0; --idx) {
    const Instruction& inst = fn.insts[static_cast<size_t>(idx)].inst;
    if (inst.op == Opcode::kMovRI && inst.r1 == kRangeCheckScratch) {
      continue;
    }
    return idx;
  }
  return -1;
}

// Follows the physical successor of a call through connector jmps to the
// instruction that actually executes next after the callee returns.
const DecodedInst* AfterCall(const DecodedFunction& fn, size_t i) {
  uint64_t addr = fn.insts[i].address + fn.insts[i].size;
  for (int hops = 0; hops < 16; ++hops) {
    const DecodedInst* di = fn.InstAt(addr);
    if (di == nullptr) {
      return nullptr;
    }
    if (di->inst.op == Opcode::kJmpRel && fn.Contains(di->BranchTarget())) {
      addr = di->BranchTarget();
      continue;
    }
    return di;
  }
  return nullptr;
}

}  // namespace

void CheckRaEncrypt(const DecodedFunction& fn, const KernelImage& image,
                    const RaCheckParams& params, VerifyReport* report) {
  (void)image;
  // ---- Prologue: mov xkey$fn(%rip), %r11 ; xor %r11, (%rsp). ----
  int64_t entry = EntryIndex(fn);
  uint64_t xkey_ea = 0;
  bool have_prologue = false;
  if (entry < 0 || static_cast<size_t>(entry) + 1 >= fn.insts.size() ||
      !IsXkeyLoad(fn.insts[static_cast<size_t>(entry)].inst) ||
      !IsXorRspR11(fn.insts[static_cast<size_t>(entry) + 1].inst)) {
    Diagnose(report, fn, RuleId::kRaXPrologue, entry >= 0 ? fn.insts[static_cast<size_t>(entry)].address : fn.address,
             "entry does not encrypt the return address with an xkey XOR pair");
  } else {
    const DecodedInst& load = fn.insts[static_cast<size_t>(entry)];
    xkey_ea = load.RipRelTarget();
    have_prologue = true;
    ++report->counters.ra_sites_checked;
    if (params.edata != 0 && xkey_ea < params.edata) {
      Diagnose(report, fn, RuleId::kRaXPrologue, load.address,
               "xkey loaded from the readable data region");
    }
  }

  // ---- Epilogues: every ret / tail jmp decrypts with the same key. ----
  for (size_t i = 0; i < fn.insts.size(); ++i) {
    const DecodedInst& di = fn.insts[i];
    if (!di.reachable) {
      continue;
    }
    if (di.inst.op == Opcode::kRet || IsTailCall(fn, di)) {
      if (i < 2 || !IsXorRspR11(fn.insts[i - 1].inst) || !IsXkeyLoad(fn.insts[i - 2].inst)) {
        Diagnose(report, fn, RuleId::kRaXEpilogue, di.address,
                 "return/tail-jmp not preceded by the decrypting XOR pair");
        continue;
      }
      ++report->counters.ra_sites_checked;
      if (have_prologue && fn.insts[i - 2].RipRelTarget() != xkey_ea) {
        Diagnose(report, fn, RuleId::kRaXEpilogue, fn.insts[i - 2].address,
                 "epilogue decrypts with a different key than the prologue encrypted with");
      }
    }
    // ---- Return sites: zap the stale plaintext below %rsp (§5.2.2). ----
    if (di.inst.IsCall()) {
      const DecodedInst* next = AfterCall(fn, i);
      bool zaps = next != nullptr && next->inst.op == Opcode::kStoreImm && next->inst.imm == 0 &&
                  next->inst.mem == MemOperand::Base(Reg::kRsp, -8);
      if (zaps) {
        ++report->counters.ra_sites_checked;
      } else {
        Diagnose(report, fn, RuleId::kRaXCallSite, di.address,
                 "call not followed by the stale-return-address zap store");
      }
    }
  }
}

void CheckRaDecoy(const DecodedFunction& fn, const KernelImage& image,
                  const RaCheckParams& params, VerifyReport* report) {
  (void)params;
  // ---- Prologue: detect which {real, decoy} ordering this function drew.
  // Variant (a): push %r11. Variant (b): mov (%rsp),%rax ; mov %r11,(%rsp) ;
  // push %rax (Figure 3). ----
  int64_t entry = EntryIndex(fn);
  enum class Variant { kUnknown, kDecoyOnTop, kRealOnTop };
  Variant variant = Variant::kUnknown;
  if (entry >= 0) {
    size_t e = static_cast<size_t>(entry);
    const Instruction& first = fn.insts[e].inst;
    if (first.op == Opcode::kPushR && first.r1 == kRangeCheckScratch) {
      variant = Variant::kDecoyOnTop;
    } else if (e + 2 < fn.insts.size() && first.op == Opcode::kLoad &&
               first.r1 == Reg::kRax && first.mem == MemOperand::Base(Reg::kRsp, 0) &&
               fn.insts[e + 1].inst.op == Opcode::kStore &&
               fn.insts[e + 1].inst.r1 == kRangeCheckScratch &&
               fn.insts[e + 1].inst.mem == MemOperand::Base(Reg::kRsp, 0) &&
               fn.insts[e + 2].inst.op == Opcode::kPushR &&
               fn.insts[e + 2].inst.r1 == Reg::kRax) {
      variant = Variant::kRealOnTop;
    }
  }
  if (variant == Variant::kUnknown) {
    Diagnose(report, fn, RuleId::kRaDPrologue,
             entry >= 0 ? fn.insts[static_cast<size_t>(entry)].address : fn.address,
             "entry does not set up a {real, decoy} return-address pair");
  } else {
    ++report->counters.ra_sites_checked;
  }

  for (size_t i = 0; i < fn.insts.size(); ++i) {
    const DecodedInst& di = fn.insts[i];
    if (!di.reachable) {
      continue;
    }
    // ---- Epilogues must consume the two-slot pair per variant. ----
    if (di.inst.op == Opcode::kRet) {
      if (variant == Variant::kRealOnTop) {
        Diagnose(report, fn, RuleId::kRaDEpilogue, di.address,
                 "plain ret in a function whose real return address is below the decoy");
      } else if (variant == Variant::kDecoyOnTop) {
        bool ok = i >= 1 && fn.insts[i - 1].inst.op == Opcode::kAddRI &&
                  fn.insts[i - 1].inst.r1 == Reg::kRsp && fn.insts[i - 1].inst.imm == 8;
        if (ok) {
          ++report->counters.ra_sites_checked;
        } else {
          Diagnose(report, fn, RuleId::kRaDEpilogue, di.address,
                   "ret does not drop the decoy slot first");
        }
      }
    }
    if (di.inst.op == Opcode::kJmpR && di.inst.r1 == kRangeCheckScratch) {
      bool ok = variant == Variant::kRealOnTop && i >= 2 &&
                fn.insts[i - 1].inst.op == Opcode::kAddRI &&
                fn.insts[i - 1].inst.r1 == Reg::kRsp && fn.insts[i - 1].inst.imm == 8 &&
                fn.insts[i - 2].inst.op == Opcode::kPopR &&
                fn.insts[i - 2].inst.r1 == kRangeCheckScratch;
      if (ok) {
        ++report->counters.ra_sites_checked;
      } else {
        Diagnose(report, fn, RuleId::kRaDEpilogue, di.address,
                 "indirect return through %r11 without the pop/drop epilogue");
      }
    }
    // ---- Every call / tail call passes a live tripwire via %r11. ----
    const bool tail = IsTailCall(fn, di);
    if (di.inst.IsCall() || tail) {
      bool lea_ok = i >= 1 && fn.insts[i - 1].inst.op == Opcode::kLea &&
                    fn.insts[i - 1].inst.r1 == kRangeCheckScratch &&
                    fn.insts[i - 1].inst.mem.rip_relative;
      if (!lea_ok) {
        Diagnose(report, fn, RuleId::kRaDTripwire, di.address,
                 "call/tail-call without a preceding tripwire lea");
        continue;
      }
      // The decoy address must land on an int3 byte (inside a phantom
      // instruction's immediate): following it must trap, not execute.
      uint64_t tripwire = fn.insts[i - 1].RipRelTarget();
      uint8_t byte = 0;
      bool trap = false;
      if (image.PeekBytes(tripwire, &byte, 1).ok()) {
        auto dec = DecodeInstruction(&byte, 1, 0);
        trap = dec.ok() && dec->inst.op == Opcode::kInt3;
      }
      if (trap) {
        ++report->counters.tripwires_verified;
      } else {
        Diagnose(report, fn, RuleId::kRaDTripwire, fn.insts[i - 1].address,
                 "tripwire does not point at an int3 byte (decoy would execute)");
      }
      // Tail calls additionally drop/restore this frame's decoy slot.
      if (tail && variant != Variant::kUnknown) {
        int64_t p = PrevSkippingPhantoms(fn, static_cast<int64_t>(i) - 1);
        bool fixup_ok;
        if (variant == Variant::kDecoyOnTop) {
          fixup_ok = p >= 0 && fn.insts[static_cast<size_t>(p)].inst.op == Opcode::kAddRI &&
                     fn.insts[static_cast<size_t>(p)].inst.r1 == Reg::kRsp &&
                     fn.insts[static_cast<size_t>(p)].inst.imm == 8;
        } else {
          fixup_ok = p >= 2 && fn.insts[static_cast<size_t>(p)].inst.op == Opcode::kPushR &&
                     fn.insts[static_cast<size_t>(p)].inst.r1 == kDecoyScratch &&
                     fn.insts[static_cast<size_t>(p) - 1].inst.op == Opcode::kAddRI &&
                     fn.insts[static_cast<size_t>(p) - 1].inst.r1 == Reg::kRsp &&
                     fn.insts[static_cast<size_t>(p) - 1].inst.imm == 8 &&
                     fn.insts[static_cast<size_t>(p) - 2].inst.op == Opcode::kPopR &&
                     fn.insts[static_cast<size_t>(p) - 2].inst.r1 == kDecoyScratch;
        }
        if (!fixup_ok) {
          Diagnose(report, fn, RuleId::kRaDEpilogue, di.address,
                   "tail call does not drop the decoy slot before transferring");
        }
      }
    }
  }
}

void CheckDiversification(const DecodedFunction& fn, const RaCheckParams& params,
                          VerifyReport* report) {
  if (fn.insts.empty()) {
    return;
  }
  // ---- Pinned entry trampoline: `jmp <somewhere inside>` followed by an
  // unreachable phantom pad (int3 run closed by ud2), so a leaked function
  // pointer reveals nothing about the body layout (§5.2.1). ----
  const DecodedInst& first = fn.insts[0];
  bool entry_ok = first.inst.op == Opcode::kJmpRel && fn.Contains(first.BranchTarget()) &&
                  fn.insts.size() > 1 && !fn.insts[1].reachable &&
                  (fn.insts[1].inst.op == Opcode::kInt3 || fn.insts[1].inst.op == Opcode::kUd2);
  if (!entry_ok) {
    Diagnose(report, fn, RuleId::kDivEntry, fn.address,
             "function does not start with the pinned entry trampoline + phantom pad");
  }

  // ---- Permutation entropy: count independently movable units — maximal
  // reachable code runs (each ends at exactly one unconditional transfer)
  // plus ud2-headed phantom blocks — minus the pinned entry jmp and entry
  // pad. Pass-side chunks are unions of these units, so this bound is
  // necessary (never spuriously low) at the finest slicing granularity. ----
  uint64_t code_units = 0;
  uint64_t phantom_units = 0;
  for (const DecodedInst& di : fn.insts) {
    switch (di.inst.op) {
      case Opcode::kJmpRel:
      case Opcode::kJmpR:
      case Opcode::kJmpM:
      case Opcode::kRet:
      case Opcode::kHlt:
      case Opcode::kSysret:
        if (di.reachable) {
          ++code_units;
        }
        break;
      case Opcode::kUd2:
        if (di.reachable) {
          ++code_units;  // a genuine trap-terminated code run
        } else {
          ++phantom_units;  // phantom-block header
        }
        break;
      default:
        break;
    }
  }
  uint64_t movable = (code_units > 0 ? code_units - 1 : 0) +
                     (phantom_units > 0 ? phantom_units - 1 : 0);
  double bits = PermutationEntropyBits(movable);
  if (bits < static_cast<double>(params.entropy_bits_k)) {
    Diagnose(report, fn, RuleId::kDivEntropy, fn.address,
             std::to_string(movable) + " movable units = " + std::to_string(bits) +
                 " bits of permutation entropy < required " +
                 std::to_string(params.entropy_bits_k));
  }
}

}  // namespace krx
