// Read-confinement verification: proves that every memory read in a
// function's final bytes is justified under the kR^X R^X contract (§5.1.2).
//
// A read is justified if it is (a) a safe address (rip-relative/absolute),
// (b) a plain (%rsp)-relative access (guarded by .krx_phantom; the
// displacement bound is checked image-wide), or (c) dominated on every path
// by a range check — cmp/ja against _krx_edata or a bndcu — that covers its
// displacement with no intervening redefinition, spill or call of the base
// register.
//
// The availability analysis is a small abstract interpreter over the
// decoded CFG with an interval domain per register (`cover[r] = D` means
// r <= edata - D on every path) — a greatest fixpoint with intersection
// joins at merge points, so facts survive loop back edges, plus a
// congruence transfer for mov/add/lea register derivations. That makes it
// strictly stronger than the instrumentation passes' own O3/O4 analyses
// (src/plugin/sfi_pass.cc): every check elision the pass performs —
// including O4's cross-block elision and loop hoisting — must be
// independently re-provable here from the final bytes alone, or the build
// fails post-link verification.
#ifndef KRX_SRC_VERIFY_CONFINEMENT_H_
#define KRX_SRC_VERIFY_CONFINEMENT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/plugin/pass_config.h"
#include "src/verify/decoded_function.h"
#include "src/verify/report.h"

namespace krx {

struct ConfinementParams {
  uint64_t edata = 0;            // _krx_edata the checks must compare against
  uint64_t handler_address = 0;  // resolved krx_handler entry (0 if absent)
  uint64_t guard_size = 0;       // mapped .krx_phantom size (0 if absent)
  // Byte-level callee clobber masks keyed by function entry address (bit
  // RegIndex(r), from ComputeByteCalleeClobbers). When present, a direct
  // call to a summarized entry kills only the masked registers instead of
  // every fact — the independent re-proof of the O4 pass's
  // CalleeClobberSummary-based elisions. Null keeps the classic
  // kill-everything-at-calls rule.
  const std::map<uint64_t, uint64_t>* callee_clobbers = nullptr;
  // Speculation-hardening contract the bytes must additionally satisfy:
  // kBarrier demands an lfence immediately after every recognized check
  // (SPEC_BARRIER); kMask demands that no speculation-prone check (cmp/ja
  // to the handler, bndcu) survives at all (SPEC_MASK) — reads must be
  // justified by kMaskRI clamps instead.
  SpecMitigation mitigation = SpecMitigation::kNone;
};

void CheckReadConfinement(const DecodedFunction& fn, const ConfinementParams& params,
                          VerifyReport* report);

// Byte-level callee-clobber masks for the decoded functions of an image
// (exempt functions included — their bodies still execute as callees): per
// entry address, the union over every decoded instruction of the registers
// written, plus transitively the mask of every direct callee or
// out-of-function tail jump. Indirect calls/jumps and direct transfers to
// un-decoded targets yield the all-registers mask. Calls to
// `handler_address` are excluded: the violation path never returns
// (call; hlt), so its effects cannot reach a returning path.
std::map<uint64_t, uint64_t> ComputeByteCalleeClobbers(
    const std::vector<const DecodedFunction*>& functions, uint64_t handler_address);

}  // namespace krx

#endif  // KRX_SRC_VERIFY_CONFINEMENT_H_
