#include "src/verify/decoded_function.h"

#include <algorithm>
#include <set>

#include "src/isa/encoding.h"

namespace krx {
namespace {

// Ends a basic block: any control transfer, conditional or not.
bool EndsBlock(const Instruction& inst) {
  return inst.IsTerminator() || inst.op == Opcode::kJcc;
}

}  // namespace

const DecodedInst* DecodedFunction::InstAt(uint64_t addr) const {
  int64_t idx = InstIndexAt(addr);
  return idx < 0 ? nullptr : &insts[static_cast<size_t>(idx)];
}

int64_t DecodedFunction::InstIndexAt(uint64_t addr) const {
  auto it = std::lower_bound(insts.begin(), insts.end(), addr,
                             [](const DecodedInst& di, uint64_t a) { return di.address < a; });
  if (it == insts.end() || it->address != addr) {
    return -1;
  }
  return it - insts.begin();
}

std::string DecodedFunction::SnippetAt(uint64_t addr) const {
  const DecodedInst* di = InstAt(addr);
  if (di == nullptr) {
    return "<no instruction boundary>";
  }
  return FormatInstruction(di->inst);
}

Result<DecodedFunction> DecodeFunction(const KernelImage& image, const std::string& name,
                                       uint64_t address, uint64_t size) {
  DecodedFunction fn;
  fn.name = name;
  fn.address = address;
  fn.size = size;

  std::vector<uint8_t> bytes(size);
  KRX_RETURN_IF_ERROR(image.PeekBytes(address, bytes.data(), bytes.size()));

  // ---- Linear sweep. The assembler lays instructions back to back within
  // a symbol range (phantom padding included), so a decode failure at any
  // offset is itself a verification finding. ----
  size_t pos = 0;
  while (pos < bytes.size()) {
    auto dec = DecodeInstruction(bytes.data(), bytes.size(), pos);
    if (!dec.ok()) {
      return InternalError(name + ": undecodable bytes at +0x" + std::to_string(pos) + ": " +
                           dec.status().message());
    }
    DecodedInst di;
    di.address = address + pos;
    di.size = dec->size;
    di.inst = dec->inst;
    fn.insts.push_back(di);
    pos += dec->size;
  }

  if (fn.insts.empty()) {
    return fn;
  }

  // ---- Block boundaries: function entry, every direct-branch target, and
  // the instruction after every control transfer. ----
  std::set<uint64_t> starts;
  starts.insert(address);
  for (const DecodedInst& di : fn.insts) {
    if (di.inst.op == Opcode::kJcc || di.inst.op == Opcode::kJmpRel) {
      uint64_t target = di.BranchTarget();
      if (fn.Contains(target)) {
        starts.insert(target);
      }
    }
    if (EndsBlock(di.inst)) {
      starts.insert(di.address + di.size);
    }
  }

  std::vector<size_t> block_of(fn.insts.size(), 0);
  for (size_t i = 0; i < fn.insts.size(); ++i) {
    if (starts.count(fn.insts[i].address) > 0) {
      VerifierBlock b;
      b.first = i;
      fn.blocks.push_back(b);
    }
    if (fn.blocks.empty()) {
      return InternalError(name + ": no block covers entry");
    }
    fn.blocks.back().count += 1;
    block_of[i] = fn.blocks.size() - 1;
  }

  auto block_at = [&](uint64_t addr) -> int32_t {
    int64_t idx = fn.InstIndexAt(addr);
    if (idx < 0) {
      return -1;
    }
    size_t b = block_of[static_cast<size_t>(idx)];
    return fn.blocks[b].first == static_cast<size_t>(idx) ? static_cast<int32_t>(b) : -1;
  };

  // ---- Successors. ----
  for (size_t b = 0; b < fn.blocks.size(); ++b) {
    VerifierBlock& blk = fn.blocks[b];
    const DecodedInst& last = fn.insts[blk.first + blk.count - 1];
    const bool has_next = b + 1 < fn.blocks.size();
    if (last.inst.op == Opcode::kJcc) {
      uint64_t target = last.BranchTarget();
      if (fn.Contains(target)) {
        blk.taken = block_at(target);
      }
      blk.fall = has_next ? static_cast<int32_t>(b + 1) : -1;
    } else if (last.inst.op == Opcode::kJmpRel) {
      uint64_t target = last.BranchTarget();
      if (fn.Contains(target)) {
        blk.taken = block_at(target);
      }
      // A jmp out of the symbol range is a tail call: no intra successor.
    } else if (last.inst.IsTerminator()) {
      // ret / indirect jmp / hlt / ud2 / sysret: no static successor.
    } else {
      blk.fall = has_next ? static_cast<int32_t>(b + 1) : -1;
    }
  }

  // ---- Reachability from the entry block. ----
  std::vector<int32_t> work = {0};
  while (!work.empty()) {
    int32_t b = work.back();
    work.pop_back();
    if (b < 0 || fn.blocks[static_cast<size_t>(b)].reachable) {
      continue;
    }
    VerifierBlock& blk = fn.blocks[static_cast<size_t>(b)];
    blk.reachable = true;
    for (size_t i = 0; i < blk.count; ++i) {
      fn.insts[blk.first + i].reachable = true;
    }
    work.push_back(blk.fall);
    work.push_back(blk.taken);
  }

  return fn;
}

}  // namespace krx
