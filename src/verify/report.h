// Structured diagnostics for the binary-level kR^X verifier.
//
// Every violated invariant is reported as a Diagnostic carrying the rule
// id, the offending function and address, and a disassembly (or structural)
// snippet — never as a bare boolean. A VerifyReport aggregates diagnostics
// plus coverage counters so callers can see *what* was proven, not just
// that nothing failed.
#ifndef KRX_SRC_VERIFY_REPORT_H_
#define KRX_SRC_VERIFY_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace krx {

// Invariants the verifier proves over the linked image. Grouped by the
// paper section they come from: R^X enforcement (§5.1), return-address
// protection (§5.2.2) and fine-grained KASLR (§5.2.1).
enum class RuleId : uint8_t {
  kCfgDecode = 0,   // function bytes do not decode to a well-formed CFG
  kRxLayout,        // section placement violates the kR^X-KAS split at _krx_edata
  kRxPhysmap,       // a code-region frame keeps a readable physmap synonym
  kRxGuard,         // %rsp-relative read displacement exceeds the phantom guard
  kRxCheckDisp,     // a (coalesced) check's coverage exceeds the guard size
  kRxRead,          // memory read not dominated by any range-check justification
  kRxXkeys,         // xkey outside the execute-only region, or never replenished
  kRaXPrologue,     // missing/malformed xkey XOR at function entry
  kRaXEpilogue,     // ret/tail-jmp not preceded by the decrypting XOR pair
  kRaXCallSite,     // call not followed by the stale-plaintext zap store
  kRaDPrologue,     // missing/malformed {real,decoy} pair setup at entry
  kRaDEpilogue,     // epilogue does not consume the decoy slot correctly
  kRaDTripwire,     // call/tail-call without a tripwire lea, or dead tripwire
  kDivEntry,        // diversified function lacks the pinned entry trampoline
  kDivEntropy,      // permutable units give fewer than k bits of entropy
  kSpecBarrier,     // an emitted range check is not followed by lfence
  kSpecMask,        // a speculation-prone check survives under spec-mask
  kNumRules,
};

const char* RuleName(RuleId rule);

struct Diagnostic {
  RuleId rule = RuleId::kRxRead;
  std::string function;  // empty for image-level structural rules
  uint64_t address = 0;  // 0 when no single address is implicated
  std::string snippet;   // disassembly / structural context at `address`
  std::string message;

  std::string ToString() const;
};

// Counters describing what the verifier covered. Mirrors SfiStats where the
// concepts line up so `krx_objdump` can show both side by side.
struct VerifyCounters {
  uint64_t functions_checked = 0;
  uint64_t functions_exempt = 0;
  uint64_t reads_seen = 0;
  uint64_t safe_reads = 0;
  uint64_t rsp_reads = 0;
  uint64_t justified_reads = 0;
  uint64_t range_checks_seen = 0;
  uint64_t ra_sites_checked = 0;
  uint64_t tripwires_verified = 0;
  int64_t max_rsp_disp = 0;
};

// Read-confinement census of a single function: what the abstract
// interpreter saw and proved there. Lines up with the pass side's
// per-function SfiStats so krx_objdump/krx_verify can print both.
struct FunctionReadCensus {
  uint64_t reads_seen = 0;
  uint64_t justified_reads = 0;
  uint64_t range_checks_seen = 0;
};

struct VerifyReport {
  std::vector<Diagnostic> diagnostics;
  VerifyCounters counters;
  // Filled by CheckReadConfinement, in verification order.
  std::vector<std::pair<std::string, FunctionReadCensus>> per_function;

  bool ok() const { return diagnostics.empty(); }
  void Add(Diagnostic d) { diagnostics.push_back(std::move(d)); }

  // Number of diagnostics per violated rule (violated rules only).
  std::map<RuleId, uint64_t> RuleCounts() const;
  bool Violates(RuleId rule) const;

  // Multi-line human-readable rendering; `max_diagnostics` caps the listing
  // (0 = unlimited) — the per-rule totals are always printed in full.
  std::string Summary(size_t max_diagnostics = 0) const;
};

}  // namespace krx

#endif  // KRX_SRC_VERIFY_REPORT_H_
