// Top-level kR^X binary verifier: proves the R^X and diversification
// contract on a linked KernelImage from decoded bytes alone — an
// SFI-verifier-style independent check that distrusts the instrumentation
// passes (the paper's §4 invariants, enforced on the artifact).
#ifndef KRX_SRC_VERIFY_VERIFIER_H_
#define KRX_SRC_VERIFY_VERIFIER_H_

#include <set>
#include <string>

#include "src/kernel/image.h"
#include "src/plugin/pass_config.h"
#include "src/verify/report.h"

namespace krx {

// Which invariants to prove. Derive from a ProtectionConfig with ForConfig,
// or set fields directly (the CLI forces check_rx on vanilla images to
// demonstrate where they fail).
struct VerifyOptions {
  bool check_rx = false;          // layout, physmap, read confinement, guard
  bool mpx = false;               // reads may also be justified by bndcu
  bool check_ra_encrypt = false;  // xkey XOR pairing + zaps + key residency
  bool check_ra_decoy = false;    // decoy slot discipline + live tripwires
  bool check_diversify = false;   // entry trampoline + permutation entropy
  // Speculation-hardening contract the range checks must satisfy: under
  // kBarrier every check must be fenced, under kMask no speculation-prone
  // check may survive at all (src/verify/confinement.cc).
  SpecMitigation spec = SpecMitigation::kNone;
  int entropy_bits_k = 30;
  // Functions the pipeline left uninstrumented (hand-written-assembly
  // analogues, §6); the verifier skips them and counts them as exempt.
  std::set<std::string> exempt_functions;

  static VerifyOptions ForConfig(const ProtectionConfig& config);

  bool AnyChecks() const {
    return check_rx || check_ra_encrypt || check_ra_decoy || check_diversify;
  }
};

// Runs every enabled checker over every defined function symbol plus the
// whole-image structural checks. Never fails as a Status: problems are
// diagnostics in the returned report (report.ok() == verified).
VerifyReport VerifyImage(const KernelImage& image, const VerifyOptions& options);

}  // namespace krx

#endif  // KRX_SRC_VERIFY_VERIFIER_H_
