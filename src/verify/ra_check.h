// Return-address protection and fine-grained-KASLR invariant checkers
// (§5.2): xkey XOR pairing at prologue/epilogue and zapping after calls
// (encryption scheme), decoy slot discipline and live tripwires (decoy
// scheme), and the pinned entry trampoline plus per-function permutation
// entropy (diversification). All checks run over decoded bytes.
#ifndef KRX_SRC_VERIFY_RA_CHECK_H_
#define KRX_SRC_VERIFY_RA_CHECK_H_

#include <cstdint>

#include "src/kernel/image.h"
#include "src/verify/decoded_function.h"
#include "src/verify/report.h"

namespace krx {

struct RaCheckParams {
  uint64_t edata = 0;      // 0: xkey region containment not checkable
  bool diversify = false;  // an entry trampoline precedes the prologue
  int entropy_bits_k = 30;
};

void CheckRaEncrypt(const DecodedFunction& fn, const KernelImage& image,
                    const RaCheckParams& params, VerifyReport* report);

void CheckRaDecoy(const DecodedFunction& fn, const KernelImage& image,
                  const RaCheckParams& params, VerifyReport* report);

void CheckDiversification(const DecodedFunction& fn, const RaCheckParams& params,
                          VerifyReport* report);

}  // namespace krx

#endif  // KRX_SRC_VERIFY_RA_CHECK_H_
