// Structural (whole-image) invariant checkers for the kR^X verifier:
// section disjointness around _krx_edata, physmap synonym removal, the
// phantom-guard bound on %rsp-relative reads, and xkey residency in the
// execute-only region.
#ifndef KRX_SRC_VERIFY_STRUCTURAL_H_
#define KRX_SRC_VERIFY_STRUCTURAL_H_

#include "src/kernel/image.h"
#include "src/verify/report.h"

namespace krx {

// kR^X-KAS layout (§5.1.1): data sections end below _krx_edata, code-region
// sections (.text, .krx_xkeys, __ex_table, module text) start at or above
// it, the .krx_phantom guard fills [edata, code base), and no two sections
// overlap.
void CheckImageLayout(const KernelImage& image, VerifyReport* report);

// No physical frame backing a code-region section may keep a readable
// physmap alias (§5.1.1 "physmap").
void CheckPhysmapSynonyms(const KernelImage& image, VerifyReport* report);

// Uninstrumented (%rsp)-relative reads are only sound while their maximum
// displacement stays below the guard size; called after read confinement
// has accumulated counters.max_rsp_disp.
void CheckGuardBound(const KernelImage& image, VerifyReport* report);

// Return-address encryption (§5.2.2): every xkey$<fn> slot must live in the
// execute-only region and hold a (replenished) nonzero key.
void CheckXkeys(const KernelImage& image, VerifyReport* report);

}  // namespace krx

#endif  // KRX_SRC_VERIFY_STRUCTURAL_H_
