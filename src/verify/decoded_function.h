// Binary-level CFG reconstruction for the kR^X verifier.
//
// DecodeFunction linearly disassembles a function's symbol range out of the
// linked image and rebuilds a conservative CFG from the bytes alone: blocks
// split at every branch target and conditional/unconditional transfer,
// successors follow direct rel32 edges and fallthrough, and reachability is
// computed from the function entry. The verifier deliberately does *not*
// consult any pass-internal IR — it distrusts the compiler, in the spirit
// of SFI verifiers.
#ifndef KRX_SRC_VERIFY_DECODED_FUNCTION_H_
#define KRX_SRC_VERIFY_DECODED_FUNCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/isa/instruction.h"
#include "src/kernel/image.h"

namespace krx {

struct DecodedInst {
  uint64_t address = 0;
  uint8_t size = 0;
  bool reachable = false;
  Instruction inst;

  // Absolute target of a rel32 branch/call (imm is the displacement from the
  // end of the instruction).
  uint64_t BranchTarget() const {
    return address + size + static_cast<uint64_t>(inst.imm);
  }
  // Resolved effective address of a rip-relative memory operand.
  uint64_t RipRelTarget() const {
    return address + size + static_cast<uint64_t>(inst.mem.disp);
  }
};

struct VerifierBlock {
  size_t first = 0;  // index of the block's first instruction in `insts`
  size_t count = 0;
  int32_t fall = -1;   // fallthrough / split successor (block index)
  int32_t taken = -1;  // direct-branch successor (block index)
  bool reachable = false;
};

struct DecodedFunction {
  std::string name;
  uint64_t address = 0;
  uint64_t size = 0;
  std::vector<DecodedInst> insts;
  std::vector<VerifierBlock> blocks;

  bool Contains(uint64_t addr) const { return addr >= address && addr < address + size; }
  // Instruction starting exactly at `addr`, or nullptr.
  const DecodedInst* InstAt(uint64_t addr) const;
  // Index (into insts) of the instruction at `addr`, or -1.
  int64_t InstIndexAt(uint64_t addr) const;
  // Disassembly of the instruction at `addr` (best effort, for snippets).
  std::string SnippetAt(uint64_t addr) const;
};

// Decodes `size` bytes at `address` and reconstructs the CFG. Fails (for a
// CFG_DECODE diagnostic) if any byte position reached by linear sweep does
// not decode.
Result<DecodedFunction> DecodeFunction(const KernelImage& image, const std::string& name,
                                       uint64_t address, uint64_t size);

}  // namespace krx

#endif  // KRX_SRC_VERIFY_DECODED_FUNCTION_H_
