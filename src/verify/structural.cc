#include "src/verify/structural.h"

#include <algorithm>

#include "src/kernel/layout.h"

namespace krx {
namespace {

void AddImageDiag(VerifyReport* report, RuleId rule, uint64_t address, std::string snippet,
                  std::string message) {
  Diagnostic d;
  d.rule = rule;
  d.address = address;
  d.snippet = std::move(snippet);
  d.message = std::move(message);
  report->Add(std::move(d));
}

}  // namespace

void CheckImageLayout(const KernelImage& image, VerifyReport* report) {
  const uint64_t edata = image.krx_edata();
  if (image.layout() != LayoutKind::kKrx || edata == 0) {
    AddImageDiag(report, RuleId::kRxLayout, 0, "",
                 "image does not use the kR^X-KAS layout (no _krx_edata split): code and "
                 "data share readable regions");
    return;
  }
  // The instrumentation compares against the _krx_edata *symbol*; it must
  // agree with the layout the linker actually produced.
  int32_t sym = image.symbols().Find("_krx_edata");
  if (sym >= 0 && image.symbols().at(sym).address != edata) {
    AddImageDiag(report, RuleId::kRxLayout, image.symbols().at(sym).address, "_krx_edata",
                 "_krx_edata symbol disagrees with the linked layout");
  }

  const PlacedSection* guard = nullptr;
  for (const PlacedSection& s : image.sections()) {
    switch (s.kind) {
      case SectionKind::kText:
      case SectionKind::kXkeys:
      case SectionKind::kExTable:
        if (s.vaddr < edata) {
          AddImageDiag(report, RuleId::kRxLayout, s.vaddr, s.name,
                       "code-region section placed below _krx_edata");
        }
        break;
      case SectionKind::kRodata:
      case SectionKind::kData:
      case SectionKind::kBss:
        if (s.vaddr + s.mapped_size > edata) {
          AddImageDiag(report, RuleId::kRxLayout, s.vaddr, s.name,
                       "data section reaches into the execute-only region");
        }
        break;
      case SectionKind::kPhantomGuard:
        guard = &s;
        if (s.vaddr != edata) {
          AddImageDiag(report, RuleId::kRxLayout, s.vaddr, s.name,
                       "phantom guard does not start at _krx_edata");
        }
        break;
    }
  }
  if (guard == nullptr) {
    AddImageDiag(report, RuleId::kRxLayout, edata, "",
                 "no .krx_phantom guard section above _krx_edata");
  }

  // Pairwise disjointness of mapped ranges.
  std::vector<const PlacedSection*> sorted;
  for (const PlacedSection& s : image.sections()) {
    sorted.push_back(&s);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const PlacedSection* a, const PlacedSection* b) { return a->vaddr < b->vaddr; });
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    if (sorted[i]->vaddr + sorted[i]->mapped_size > sorted[i + 1]->vaddr) {
      AddImageDiag(report, RuleId::kRxLayout, sorted[i + 1]->vaddr,
                   sorted[i]->name + " / " + sorted[i + 1]->name, "sections overlap");
    }
  }
}

void CheckPhysmapSynonyms(const KernelImage& image, VerifyReport* report) {
  for (const PlacedSection& s : image.sections()) {
    if (!SectionKindIsCodeRegion(s.kind)) {
      continue;
    }
    uint64_t aliased = 0;
    uint64_t first_alias = 0;
    const uint64_t pages = s.mapped_size >> kPageShift;
    for (uint64_t p = 0; p < pages; ++p) {
      uint64_t alias = image.PhysmapVaddr(s.first_frame + p);
      const Pte* pte = image.page_table().Lookup(alias);
      if (pte != nullptr && pte->flags.present) {
        if (aliased == 0) {
          first_alias = alias;
        }
        ++aliased;
      }
    }
    if (aliased > 0) {
      AddImageDiag(report, RuleId::kRxPhysmap, first_alias, s.name,
                   std::to_string(aliased) + " of " + std::to_string(pages) +
                       " code pages keep a readable physmap synonym");
    }
  }
}

void CheckGuardBound(const KernelImage& image, VerifyReport* report) {
  const PlacedSection* guard = image.FindSection(".krx_phantom");
  if (guard == nullptr) {
    if (report->counters.rsp_reads > 0) {
      AddImageDiag(report, RuleId::kRxGuard, 0, "",
                   "uninstrumented %rsp-relative reads but no .krx_phantom guard section");
    }
    return;
  }
  // An 8-byte read at disp(%rsp) may stray at most guard-size bytes past
  // _krx_edata before touching code (§5.1.2 "Stack Reads").
  const int64_t max_reach = report->counters.max_rsp_disp + 8;
  if (max_reach > static_cast<int64_t>(guard->mapped_size)) {
    AddImageDiag(report, RuleId::kRxGuard, guard->vaddr, guard->name,
                 "max %rsp read reach " + std::to_string(max_reach) + " exceeds guard size " +
                     std::to_string(guard->mapped_size));
  }
}

void CheckXkeys(const KernelImage& image, VerifyReport* report) {
  const uint64_t edata = image.krx_edata();
  const SymbolTable& symbols = image.symbols();
  for (int32_t i = 0; i < static_cast<int32_t>(symbols.size()); ++i) {
    const Symbol& sym = symbols.at(i);
    if (!sym.defined || sym.name.rfind("xkey$", 0) != 0) {
      continue;
    }
    if (edata == 0 || sym.address < edata) {
      AddImageDiag(report, RuleId::kRxXkeys, sym.address, sym.name,
                   "xkey stored outside the execute-only region (disclosable)");
      continue;
    }
    auto value = image.Peek64(sym.address);
    if (!value.ok()) {
      AddImageDiag(report, RuleId::kRxXkeys, sym.address, sym.name, "xkey slot unreadable");
    } else if (*value == 0) {
      AddImageDiag(report, RuleId::kRxXkeys, sym.address, sym.name,
                   "xkey never replenished (zero key: return addresses effectively "
                   "cleartext)");
    }
  }
}

}  // namespace krx
