#include "src/verify/verifier.h"

#include "src/verify/confinement.h"
#include "src/verify/decoded_function.h"
#include "src/verify/ra_check.h"
#include "src/verify/structural.h"

namespace krx {

VerifyOptions VerifyOptions::ForConfig(const ProtectionConfig& config) {
  VerifyOptions opts;
  opts.check_rx = config.HasRangeChecks() || config.mpx;
  opts.mpx = config.mpx;
  opts.check_ra_encrypt = config.ra == RaScheme::kEncrypt;
  opts.check_ra_decoy = config.ra == RaScheme::kDecoy;
  opts.check_diversify = config.diversify;
  opts.spec = config.spec;
  opts.entropy_bits_k = config.entropy_bits_k;
  opts.exempt_functions = config.exempt_functions;
  return opts;
}

VerifyReport VerifyImage(const KernelImage& image, const VerifyOptions& options) {
  VerifyReport report;

  ConfinementParams rx;
  rx.edata = image.krx_edata();
  auto handler = image.symbols().AddressOf(kKrxHandlerName);
  rx.handler_address = handler.ok() ? *handler : 0;
  const PlacedSection* guard = image.FindSection(".krx_phantom");
  rx.guard_size = guard != nullptr ? guard->mapped_size : 0;
  rx.mitigation = options.spec;

  RaCheckParams ra;
  ra.edata = image.krx_edata();
  ra.diversify = options.check_diversify;
  ra.entropy_bits_k = options.entropy_bits_k;

  // First sweep: decode every defined function — exempt ones included,
  // because their bodies still execute as callees and feed the byte-level
  // callee-clobber masks that let the confinement checker re-prove the O4
  // pass's call-transparent elisions. Decode diagnostics are only raised
  // for functions that are actually checked below.
  const SymbolTable& symbols = image.symbols();
  struct FnDecode {
    const Symbol* sym;
    bool exempt;
    Result<DecodedFunction> decoded;
  };
  std::vector<FnDecode> decodes;
  for (int32_t i = 0; i < static_cast<int32_t>(symbols.size()); ++i) {
    const Symbol& sym = symbols.at(i);
    if (!sym.defined || sym.kind != SymbolKind::kFunction || sym.size == 0) {
      continue;
    }
    const bool exempt =
        sym.name == kKrxHandlerName || options.exempt_functions.count(sym.name) > 0;
    decodes.push_back(
        FnDecode{&sym, exempt, DecodeFunction(image, sym.name, sym.address, sym.size)});
  }

  std::vector<const DecodedFunction*> summarizable;
  for (const FnDecode& entry : decodes) {
    if (entry.decoded.ok()) {
      summarizable.push_back(&*entry.decoded);
    }
  }
  const std::map<uint64_t, uint64_t> callee_clobbers =
      ComputeByteCalleeClobbers(summarizable, rx.handler_address);
  rx.callee_clobbers = &callee_clobbers;

  for (const FnDecode& entry : decodes) {
    const Symbol& sym = *entry.sym;
    if (entry.exempt) {
      ++report.counters.functions_exempt;
      continue;
    }
    if (!entry.decoded.ok()) {
      Diagnostic d;
      d.rule = RuleId::kCfgDecode;
      d.function = sym.name;
      d.address = sym.address;
      d.message = entry.decoded.status().message();
      report.Add(std::move(d));
      continue;
    }
    const DecodedFunction& decoded = *entry.decoded;
    ++report.counters.functions_checked;
    if (options.check_rx) {
      CheckReadConfinement(decoded, rx, &report);
    }
    if (options.check_ra_encrypt) {
      CheckRaEncrypt(decoded, image, ra, &report);
    }
    if (options.check_ra_decoy) {
      CheckRaDecoy(decoded, image, ra, &report);
    }
    if (options.check_diversify) {
      CheckDiversification(decoded, ra, &report);
    }
  }

  // Structural R^X checks: always with read confinement, and also for any
  // kR^X-KAS image being verified at all (a diversified-only build still
  // promises the section split and physmap treatment its layout claims).
  if (options.check_rx ||
      (options.AnyChecks() && image.layout() == LayoutKind::kKrx)) {
    CheckImageLayout(image, &report);
    CheckPhysmapSynonyms(image, &report);
  }
  if (options.check_rx) {
    CheckGuardBound(image, &report);
  }
  if (options.check_ra_encrypt) {
    CheckXkeys(image, &report);
  }
  return report;
}

}  // namespace krx
