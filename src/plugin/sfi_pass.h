// kR^X-SFI / kR^X-MPX range-check instrumentation (§5.1.2, §5.1.3).
//
// The pass confines every unsafe memory *read* to the data region
// (effective address <= _krx_edata) by inserting range checks:
//
//   O0:  pushfq; lea mem, %r11; cmp $_krx_edata, %r11; ja .Lviol; popfq
//   O1:  pushfq/popfq only where %rflags is live (liveness analysis)
//   O2:  cmp $(_krx_edata - disp), %base; ja .Lviol   (base+disp operands)
//   O3:  cmp/ja coalescing: checks on the same base register with no
//        intervening redefinition/spill/call collapse into one check
//        against the maximum displacement
//   O4:  cross-block elision and loop hoisting (extension; src/ir/analysis):
//        a check is elided when a still-valid check on a congruent register
//        value (same register, or derived by mov/add/sub/lea with a known
//        constant offset — the analysis tracks the per-path offset *span*,
//        so sub-derived values are covered when the read's displacement
//        provably restores a non-negative address) is available on every
//        path — computed as a greatest-fixpoint dataflow, so facts survive
//        loop back edges — and loop-invariant checks are hoisted to a
//        preheader with the bound widened to the maximum in-loop
//        displacement
//   MPX: bndcu mem, %bnd0   (no flags, no scratch, #BR on violation)
//
// Speculation hardening (config.spec; reproduction extension, src/spec):
//   spec-barrier: every materialized check is immediately followed by a
//        kSpecFence (lfence) that kills the transient window before the
//        guarded read can issue on a mispredicted path;
//   spec-mask: checks are replaced by a branchless kMaskRI clamp of the
//        address register (no branch -> no misprediction -> no window);
//        out-of-range addresses clamp to 0 instead of trapping, and rep
//        string sites are clamped *before* the instruction (the postmortem
//        trap has no branchless equivalent).
//
// Exemptions, exactly as in the paper:
//   - safe reads: rip-relative and absolute addresses (encoded in the
//     instruction, immutable under W^X),
//   - plain (%rsp)/disp(%rsp) reads, guarded by the .krx_phantom section
//     (the pass reports the maximum such displacement so the guard can be
//     sized),
//   - string operations are checked through %rsi (%rdi for scas); for
//     rep-prefixed forms the check lands *after* the instruction
//     (postmortem detection, footnote 7).
#ifndef KRX_SRC_PLUGIN_SFI_PASS_H_
#define KRX_SRC_PLUGIN_SFI_PASS_H_

#include <cstdint>

#include "src/base/status.h"
#include "src/ir/analysis.h"
#include "src/ir/function.h"
#include "src/kernel/object.h"
#include "src/plugin/pass_config.h"

namespace krx {

struct SfiStats {
  uint64_t read_sites = 0;        // all data-read sites considered
  uint64_t safe_reads = 0;        // rip-relative / absolute
  uint64_t rsp_reads = 0;         // plain %rsp accesses (guard-covered)
  uint64_t string_checks = 0;
  uint64_t checks_emitted = 0;    // materialized range checks
  uint64_t checks_coalesced = 0;  // removed by O3/O4 (elided)
  uint64_t checks_hoisted = 0;    // O4 loop-preheader checks emitted
  uint64_t wrappers_kept = 0;     // pushfq/popfq pairs emitted
  uint64_t wrappers_eliminated = 0;
  uint64_t lea_kept = 0;          // checks still needing lea (+scratch)
  uint64_t lea_eliminated = 0;    // base+disp checks (O2 form)
  uint64_t spec_barriers = 0;     // lfences placed after checks (spec-barrier)
  uint64_t spec_masks = 0;        // branchless clamps emitted (spec-mask)
  int64_t max_rsp_disp = 0;       // drives .krx_phantom sizing

  void Accumulate(const SfiStats& o);
  double WrapperEliminationRate() const;
  double LeaEliminationRate() const;
  double CoalescingRate() const;
  double SafeReadRate() const;
};

// Instruments `fn` in place. `krx_handler_sym` is the symbol index of the
// violation handler (used by the SFI flavour; MPX raises #BR directly but
// the check placement and coalescing logic are shared).
// `edata_imm` is the link-time value the checks compare against; the
// reproduction resolves _krx_edata at instrumentation time (the real plugin
// emits a symbolic immediate the linker fills — same effect).
// `callee_clobbers` (optional, O4 only) lets the availability analysis keep
// facts across direct calls whose callee provably never writes the checked
// base register, and hoist checks out of loops whose bodies make only such
// calls; null falls back to the conservative kill-everything-at-calls rule.
Status ApplySfiPass(Function& fn, const ProtectionConfig& config, int32_t krx_handler_sym,
                    int64_t edata_imm, SfiStats* stats,
                    const CalleeClobberSummary* callee_clobbers = nullptr);

}  // namespace krx

#endif  // KRX_SRC_PLUGIN_SFI_PASS_H_
