// Fine-grained KASLR: code-block slicing, phantom blocks and permutation
// (§5.2.1 "Foundational Diversification").
//
// The pass runs last (after R^X instrumentation and return-address
// protection, §6) and:
//   1. slices routines at call sites (code blocks ending with callq);
//   2. if lg(B!) < k, re-slices at basic-block granularity;
//   3. if entropy is still insufficient, pads with phantom blocks (random
//      runs of int3 tripwires) until lg(B!) >= k;
//   4. prepends an entry phantom block whose first instruction jumps to the
//      original first code block (so a leaked function pointer only exposes
//      a whole-function trampoline);
//   5. makes chunk-boundary fallthroughs explicit and randomly permutes the
//      chunks, patching the CFG so the original control flow is unchanged.
//
// Function-level permutation (section granularity) is done by the pipeline,
// which shuffles the order functions are assembled in.
#ifndef KRX_SRC_PLUGIN_KASLR_PASS_H_
#define KRX_SRC_PLUGIN_KASLR_PASS_H_

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/ir/function.h"

namespace krx {

struct KaslrStats {
  uint64_t functions = 0;
  uint64_t single_block_functions = 0;  // one basic block before slicing
  uint64_t total_chunks = 0;
  uint64_t phantom_blocks = 0;
  uint64_t connector_jmps = 0;
  double min_entropy_bits = 1e9;
  double total_entropy_bits = 0;

  void Note(double entropy_bits) {
    total_entropy_bits += entropy_bits;
    if (entropy_bits < min_entropy_bits) {
      min_entropy_bits = entropy_bits;
    }
  }
};

Status ApplyKaslrPass(Function& fn, int entropy_bits_k, Rng& rng, KaslrStats* stats);

}  // namespace krx

#endif  // KRX_SRC_PLUGIN_KASLR_PASS_H_
