// Return-address encryption (§5.2.2, scheme X).
//
// Every routine gets a secret xkey placed in the non-readable (code) region.
// Prologues and epilogues XOR the saved return address with the key:
//
//   mov xkey$fn(%rip), %r11     ; safe read — not range-checked
//   xor %r11, (%rsp)            ; plain %rsp access — guard-covered
//
// The address stays encrypted for the whole activation; it is decrypted
// just before retq and before tail calls (the new callee re-encrypts with
// its own key). Return sites are instrumented to zap the stale decrypted
// return address left below the stack pointer.
#ifndef KRX_SRC_PLUGIN_RA_ENCRYPT_PASS_H_
#define KRX_SRC_PLUGIN_RA_ENCRYPT_PASS_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/ir/function.h"
#include "src/kernel/object.h"

namespace krx {

// Grows as functions are instrumented: one 8-byte slot per function. The
// slots are merged into the contiguous .krx_xkeys section at link time and
// replenished with random values at boot (§5.2.2).
struct XkeyLayout {
  std::vector<std::pair<int32_t, uint64_t>> symbol_offsets;
  uint64_t size_bytes = 0;

  // Registers a new xkey slot for symbol `sym`; returns its offset.
  uint64_t Add(int32_t sym) {
    uint64_t off = size_bytes;
    symbol_offsets.emplace_back(sym, off);
    size_bytes += 8;
    return off;
  }
};

Status ApplyRaEncryptPass(Function& fn, SymbolTable& symbols, XkeyLayout* xkeys);

}  // namespace krx

#endif  // KRX_SRC_PLUGIN_RA_ENCRYPT_PASS_H_
