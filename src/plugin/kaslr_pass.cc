#include "src/plugin/kaslr_pass.h"

#include "src/base/math_util.h"

namespace krx {
namespace {

bool FallsThrough(const BasicBlock& b) {
  return b.insts.empty() || !b.insts.back().IsTerminator();
}

BasicBlock MakePhantomBlock(Function& fn, Rng& rng) {
  BasicBlock pb;
  pb.id = fn.AllocateBlockId();
  pb.phantom = true;
  // int3 padding closed by a ud2. Both trap if reached; the trailing ud2
  // additionally makes phantom blocks recoverable from bytes alone (an
  // unreachable ud2 is never emitted otherwise), which the binary verifier
  // uses to lower-bound the permutation entropy.
  uint64_t count = 1 + rng.NextBelow(8);
  for (uint64_t i = 0; i + 1 < count; ++i) {
    Instruction tripwire = Instruction::Int3();
    tripwire.origin = InstOrigin::kPhantomBlock;
    pb.insts.push_back(tripwire);
  }
  Instruction marker = Instruction::Ud2();
  marker.origin = InstOrigin::kPhantomBlock;
  pb.insts.push_back(marker);
  return pb;
}

}  // namespace

Status ApplyKaslrPass(Function& fn, int entropy_bits_k, Rng& rng, KaslrStats* stats) {
  if (fn.blocks().empty()) {
    return Status::Ok();
  }
  KaslrStats local;
  local.functions = 1;
  if (fn.blocks().size() == 1) {
    local.single_block_functions = 1;
  }

  // ---- 1. Slice at call sites: code blocks end with callq. ----
  std::vector<BasicBlock> sliced;
  for (BasicBlock& b : fn.blocks()) {
    BasicBlock current;
    current.id = b.id;
    current.phantom = b.phantom;
    for (size_t j = 0; j < b.insts.size(); ++j) {
      const bool is_call = b.insts[j].IsCall();
      current.insts.push_back(std::move(b.insts[j]));
      if (is_call && j + 1 != b.insts.size()) {
        sliced.push_back(std::move(current));
        current = BasicBlock();
        current.id = fn.AllocateBlockId();
      }
    }
    sliced.push_back(std::move(current));
  }

  const int32_t original_entry_id = sliced.front().id;

  // ---- 2. Chunk at call-site granularity; refine if entropy is short. ----
  // A chunk is a run of layout-consecutive blocks; boundaries fall after
  // blocks ending in callq.
  std::vector<std::vector<BasicBlock>> chunks;
  chunks.emplace_back();
  for (size_t i = 0; i < sliced.size(); ++i) {
    bool ends_with_call = !sliced[i].insts.empty() && sliced[i].insts.back().IsCall();
    chunks.back().push_back(std::move(sliced[i]));
    if (ends_with_call && i + 1 != sliced.size()) {
      chunks.emplace_back();
    }
  }
  if (PermutationEntropyBits(chunks.size()) < entropy_bits_k) {
    // Re-slice at basic-block granularity: every block its own chunk.
    std::vector<std::vector<BasicBlock>> fine;
    for (auto& chunk : chunks) {
      for (auto& b : chunk) {
        fine.push_back({std::move(b)});
      }
    }
    chunks = std::move(fine);
  }

  // ---- 3. Connectors: make chunk-boundary fallthroughs explicit. ----
  for (size_t i = 0; i + 1 < chunks.size(); ++i) {
    BasicBlock& last = chunks[i].back();
    if (FallsThrough(last)) {
      Instruction jmp = Instruction::JmpBlock(chunks[i + 1].front().id);
      jmp.origin = InstOrigin::kDiversifier;
      last.insts.push_back(jmp);
      ++local.connector_jmps;
    }
  }

  // ---- 4. Pad with phantom blocks until lg(B!) >= k. ----
  while (PermutationEntropyBits(chunks.size()) < entropy_bits_k) {
    chunks.push_back({MakePhantomBlock(fn, rng)});
    ++local.phantom_blocks;
  }
  local.total_chunks = chunks.size();
  local.Note(PermutationEntropyBits(chunks.size()));

  // ---- 5. Entry phantom block: jmp to the original entry, followed by a
  // pinned run of tripwire padding. A leaked function pointer only reveals
  // this trampoline. ----
  BasicBlock entry;
  entry.id = fn.AllocateBlockId();
  {
    Instruction jmp = Instruction::JmpBlock(original_entry_id);
    jmp.origin = InstOrigin::kDiversifier;
    entry.insts.push_back(jmp);
  }
  BasicBlock entry_pad = MakePhantomBlock(fn, rng);

  // ---- 6. Permute and rebuild. ----
  rng.Shuffle(chunks);
  std::vector<BasicBlock> final_blocks;
  final_blocks.push_back(std::move(entry));
  final_blocks.push_back(std::move(entry_pad));
  for (auto& chunk : chunks) {
    for (auto& b : chunk) {
      final_blocks.push_back(std::move(b));
    }
  }
  fn.blocks() = std::move(final_blocks);

  if (stats != nullptr) {
    stats->functions += local.functions;
    stats->single_block_functions += local.single_block_functions;
    stats->total_chunks += local.total_chunks;
    stats->phantom_blocks += local.phantom_blocks;
    stats->connector_jmps += local.connector_jmps;
    stats->Note(PermutationEntropyBits(local.total_chunks));
  }
  return fn.Validate();
}

}  // namespace krx
