// Configuration of the kR^X instrumentation pipeline — the reproduction's
// equivalent of the krx/kaslr GCC plugin knobs (§6).
#ifndef KRX_SRC_PLUGIN_PASS_CONFIG_H_
#define KRX_SRC_PLUGIN_PASS_CONFIG_H_

#include <cstdint>
#include <set>
#include <string>

namespace krx {

// R^X enforcement flavour and optimization level (§5.1.2, §5.1.3).
enum class SfiLevel : uint8_t {
  kNone = 0,
  kO0,  // [pushfq; lea; cmp; ja; popfq] around every unsafe read
  kO1,  // + pushfq/popfq elimination via %rflags liveness
  kO2,  // + lea elimination for base+disp operands
  kO3,  // + cmp/ja coalescing (maximum optimization; plugin default)
  // Reproduction extension past the paper's O3: dominance/value-range based
  // cross-block check elision plus loop-invariant check hoisting into
  // preheaders with a widened bound (src/ir/analysis). Every elision is
  // independently re-proven by the post-link verifier's interval-domain
  // abstract interpreter (src/verify/confinement.cc).
  kO4,
};

// Return-address protection scheme (§5.2.2).
enum class RaScheme : uint8_t {
  kNone = 0,
  kEncrypt,  // X: per-function xkey, XOR at prologue/epilogue
  kDecoy,    // D: tripwire decoys next to saved return addresses
};

// Speculation-hardening variant applied to the emitted range checks
// (reproduction extension; see src/spec). Architectural range checks stop
// an architectural adversary but a mispredicted check branch still lets a
// wrong-path load leak transiently — these close that window.
enum class SpecMitigation : uint8_t {
  kNone = 0,
  // lfence (kSpecFence) immediately after every emitted check: the fence
  // kills the speculative window before the guarded read can issue.
  kBarrier,
  // Branchless clamped addressing (kMaskRI) instead of the cmp/ja or bndcu
  // check: no branch, no misprediction, no window. An out-of-range address
  // clamps to 0 instead of reaching the violation handler.
  kMask,
};

struct ProtectionConfig {
  SfiLevel sfi = SfiLevel::kNone;
  bool mpx = false;          // replace SFI range checks with bndcu
  bool diversify = false;    // fine-grained KASLR (function + block permutation)
  // Standard ("coarse") KASLR: slide the whole image by a random page
  // offset, leaving the internal layout intact. The §1/§2 baseline that a
  // single leaked code pointer defeats.
  bool coarse_kaslr = false;
  RaScheme ra = RaScheme::kNone;
  // §5.3's suggested complement: per-function permutation of the renameable
  // register pool, foiling call-preceded gadget chaining (extension; see
  // src/plugin/reg_rand_pass.h for the contract).
  bool randomize_registers = false;
  // Speculation hardening of the emitted checks (spec-barrier / spec-mask
  // config axes). Only meaningful when sfi or mpx emits checks.
  SpecMitigation spec = SpecMitigation::kNone;
  int entropy_bits_k = 30;   // per-routine randomization entropy target
  uint64_t seed = 0x6b525852ULL;  // deterministic diversification seed ("kRXR")

  // Functions excluded from R^X instrumentation — the reproduction's
  // analogue of the cloned get_next/peek_next/memcpy/... routines that
  // ftrace, KProbes and the module loader use to legitimately read code
  // (§6 "Legitimate Code Reads").
  std::set<std::string> exempt_functions;

  static ProtectionConfig Vanilla() { return ProtectionConfig{}; }

  // Full-protection presets used throughout the benchmarks.
  static ProtectionConfig SfiOnly(SfiLevel level) {
    ProtectionConfig c;
    c.sfi = level;
    return c;
  }
  static ProtectionConfig MpxOnly() {
    ProtectionConfig c;
    c.sfi = SfiLevel::kO3;
    c.mpx = true;
    return c;
  }
  // SFI at the plugin-default level with speculation-hardened checks — the
  // spec-barrier / spec-mask config axes of the benchmarks.
  static ProtectionConfig SpecHardened(SpecMitigation mitigation) {
    ProtectionConfig c;
    c.sfi = SfiLevel::kO3;
    c.spec = mitigation;
    return c;
  }
  static ProtectionConfig DiversifyOnly(RaScheme ra_scheme, uint64_t seed_value) {
    ProtectionConfig c;
    c.diversify = true;
    c.ra = ra_scheme;
    c.seed = seed_value;
    return c;
  }
  static ProtectionConfig Full(bool with_mpx, RaScheme ra_scheme, uint64_t seed_value) {
    ProtectionConfig c;
    c.sfi = SfiLevel::kO3;
    c.mpx = with_mpx;
    c.diversify = true;
    c.ra = ra_scheme;
    c.seed = seed_value;
    return c;
  }

  bool HasRangeChecks() const { return sfi != SfiLevel::kNone; }
};

}  // namespace krx

#endif  // KRX_SRC_PLUGIN_PASS_CONFIG_H_
