#include "src/plugin/ra_encrypt_pass.h"

namespace krx {
namespace {

// mov xkey$fn(%rip), %r11 ; xor %r11, (%rsp)
void EmitCrypt(std::vector<Instruction>& out, int32_t xkey_sym) {
  Instruction load = Instruction::Load(kRangeCheckScratch, MemOperand::RipRelSym(xkey_sym));
  load.origin = InstOrigin::kRaProtection;
  out.push_back(load);
  Instruction crypt = Instruction::XorMR(MemOperand::Base(Reg::kRsp, 0), kRangeCheckScratch);
  crypt.origin = InstOrigin::kRaProtection;
  out.push_back(crypt);
}

}  // namespace

Status ApplyRaEncryptPass(Function& fn, SymbolTable& symbols, XkeyLayout* xkeys) {
  int32_t xkey_sym = symbols.Intern("xkey$" + fn.name(), SymbolKind::kData);
  xkeys->Add(xkey_sym);

  bool first_block = true;
  for (BasicBlock& b : fn.blocks()) {
    std::vector<Instruction> out;
    out.reserve(b.insts.size() + 4);
    if (first_block) {
      // Prologue: encrypt the just-pushed return address.
      EmitCrypt(out, xkey_sym);
      first_block = false;
    }
    for (const Instruction& inst : b.insts) {
      const bool is_ret = inst.op == Opcode::kRet;
      const bool is_tail_call = inst.op == Opcode::kJmpRel && inst.target_symbol >= 0;
      if (is_ret || is_tail_call) {
        // Epilogue: decrypt before the control transfer. A tail-called
        // function re-encrypts with its own key.
        EmitCrypt(out, xkey_sym);
      }
      out.push_back(inst);
      if (inst.IsCall()) {
        // Return site: zap the stale decrypted return address the callee's
        // epilogue left just below the stack pointer.
        Instruction zap = Instruction::StoreImm(MemOperand::Base(Reg::kRsp, -8), 0);
        zap.origin = InstOrigin::kRaProtection;
        out.push_back(zap);
      }
    }
    b.insts = std::move(out);
  }
  return fn.Validate();
}

}  // namespace krx
