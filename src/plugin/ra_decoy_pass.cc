#include "src/plugin/ra_decoy_pass.h"

#include <cstddef>

#include "src/ir/liveness.h"
#include "src/isa/opcode.h"

namespace krx {
namespace {

Instruction Tagged(Instruction inst) {
  inst.origin = InstOrigin::kRaProtection;
  return inst;
}

// A NOP-like instruction whose immediate embeds an int3 opcode byte at
// kTripwireByteOffset. Executing it only clobbers %r11 (dead at every
// insertion point the pass picks); jumping *into* it raises #BP.
Instruction MakePhantomInstruction(Rng& rng, int32_t label) {
  uint64_t imm = (rng.Next() & ~0xFFULL) | static_cast<uint64_t>(Opcode::kInt3);
  Instruction phantom = Instruction::MovRI(kRangeCheckScratch, static_cast<int64_t>(imm));
  phantom.origin = InstOrigin::kPhantomInst;
  phantom.inst_label = label;
  return phantom;
}

// lea tripwire(%rip), %r11 — passes the decoy address to the callee.
Instruction MakeTripwireLea(int32_t label) {
  Instruction lea = Instruction::Lea(kRangeCheckScratch, MemOperand::RipRel(0));
  lea.mem_label = label;
  lea.mem_label_byte_off = kTripwireByteOffset;
  lea.origin = InstOrigin::kRaProtection;
  return lea;
}

// Legal phantom-instruction insertion points: any position with an in-block
// predecessor that (i) is not pass-inserted instrumentation and (ii) does
// not produce a live %r11, and that is not past a block terminator.
bool PositionIsLegal(const BasicBlock& b, size_t idx) {
  if (idx == 0 || idx > b.insts.size()) {
    return false;
  }
  const Instruction& prev = b.insts[idx - 1];
  if (prev.IsTerminator()) {
    return false;
  }
  // Inserting directly before a tripwire lea is always safe: the lea
  // redefines %r11 anyway. (This keeps pure-trampoline functions, whose
  // only original instruction is a tail jmp, instrumentable.)
  if (idx < b.insts.size() && b.insts[idx].mem_label >= 0) {
    return true;
  }
  if (prev.origin == InstOrigin::kRaProtection || prev.origin == InstOrigin::kPhantomInst) {
    return false;  // don't split prologue/epilogue sequences
  }
  if (InstructionWritesReg(prev, kRangeCheckScratch)) {
    return false;  // would split a producer/consumer pair (RC lea, call-site lea)
  }
  return true;
}

}  // namespace

Status ApplyRaDecoyPass(Function& fn, Rng& rng, DecoyStats* stats) {
  // "The exact ordering is decided randomly at compile time" (§5.2.2).
  const bool decoy_on_top = rng.NextBool(0.5);  // variant (a)

  DecoyStats local;
  if (decoy_on_top) {
    ++local.variant_a_functions;
  } else {
    ++local.variant_b_functions;
  }

  std::vector<int32_t> pending_phantom_labels;

  bool first_block = true;
  for (BasicBlock& b : fn.blocks()) {
    std::vector<Instruction> out;
    out.reserve(b.insts.size() + 6);
    if (first_block) {
      // Prologue (Figure 3): store {real, decoy} in the chosen order.
      if (decoy_on_top) {
        out.push_back(Tagged(Instruction::PushR(kRangeCheckScratch)));
      } else {
        out.push_back(Tagged(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRsp, 0))));
        out.push_back(Tagged(Instruction::Store(MemOperand::Base(Reg::kRsp, 0),
                                                kRangeCheckScratch)));
        out.push_back(Tagged(Instruction::PushR(Reg::kRax)));
      }
      first_block = false;
    }
    for (const Instruction& inst : b.insts) {
      if (inst.IsCall()) {
        // Pair the return site with a fresh tripwire, passed via %r11.
        int32_t label = fn.AllocateLabel();
        pending_phantom_labels.push_back(label);
        out.push_back(MakeTripwireLea(label));
        out.push_back(inst);
        ++local.call_sites;
        continue;
      }
      if (inst.op == Opcode::kRet) {
        // Epilogue: consume the {real, decoy} pair, return through the
        // real address.
        if (decoy_on_top) {
          out.push_back(Tagged(Instruction::AddRI(Reg::kRsp, 8)));
          out.push_back(inst);
        } else {
          out.push_back(Tagged(Instruction::PopR(kRangeCheckScratch)));
          out.push_back(Tagged(Instruction::AddRI(Reg::kRsp, 8)));
          Instruction jmp = Tagged(Instruction::JmpR(kRangeCheckScratch));
          jmp.origin = InstOrigin::kRaProtection;
          out.push_back(jmp);
        }
        continue;
      }
      if (inst.op == Opcode::kJmpRel && inst.target_symbol >= 0) {
        // Tail call: drop this frame's decoy slot, then pass a fresh
        // tripwire for the new callee.
        if (decoy_on_top) {
          out.push_back(Tagged(Instruction::AddRI(Reg::kRsp, 8)));
        } else {
          out.push_back(Tagged(Instruction::PopR(kDecoyScratch)));
          out.push_back(Tagged(Instruction::AddRI(Reg::kRsp, 8)));
          out.push_back(Tagged(Instruction::PushR(kDecoyScratch)));
        }
        int32_t label = fn.AllocateLabel();
        pending_phantom_labels.push_back(label);
        out.push_back(MakeTripwireLea(label));
        out.push_back(inst);
        ++local.call_sites;
        continue;
      }
      out.push_back(inst);
    }
    b.insts = std::move(out);
  }

  // Randomly place one phantom instruction per call site in the routine's
  // code stream. Code-block permutation (which runs after this pass) then
  // dissociates tripwires from their return sites.
  for (int32_t label : pending_phantom_labels) {
    std::vector<std::pair<size_t, size_t>> legal;  // (layout idx, inst idx)
    for (size_t bi = 0; bi < fn.blocks().size(); ++bi) {
      const BasicBlock& b = fn.blocks()[bi];
      for (size_t j = 1; j <= b.insts.size(); ++j) {
        if (PositionIsLegal(b, j)) {
          legal.emplace_back(bi, j);
        }
      }
    }
    KRX_CHECK(!legal.empty());
    auto [bi, j] = legal[rng.NextBelow(legal.size())];
    BasicBlock& b = fn.blocks()[bi];
    b.insts.insert(b.insts.begin() + static_cast<ptrdiff_t>(j),
                   MakePhantomInstruction(rng, label));
    ++local.phantom_insts;
  }

  if (stats != nullptr) {
    stats->call_sites += local.call_sites;
    stats->phantom_insts += local.phantom_insts;
    stats->variant_a_functions += local.variant_a_functions;
    stats->variant_b_functions += local.variant_b_functions;
  }
  return fn.Validate();
}

}  // namespace krx
