// The kR^X toolchain pipeline: the reproduction's equivalent of
// GCC -fplugin=krx -fplugin=kaslr + binutils + the patched kernel build.
//
// Pass order follows §6: the krx (R^X) instrumentation runs first, then
// return-address protection, and code block slicing/permutation is the
// final step. Function permutation happens at assembly time by shuffling
// the order in which functions are laid out in .text.
#ifndef KRX_SRC_PLUGIN_PIPELINE_H_
#define KRX_SRC_PLUGIN_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/ir/function.h"
#include "src/kernel/image.h"
#include "src/kernel/module_loader.h"
#include "src/kernel/object.h"
#include "src/plugin/kaslr_pass.h"
#include "src/plugin/pass_config.h"
#include "src/plugin/ra_decoy_pass.h"
#include "src/plugin/ra_encrypt_pass.h"
#include "src/plugin/reg_rand_pass.h"
#include "src/plugin/sfi_pass.h"
#include "src/rerand/rerand_map.h"

namespace krx {

// A kernel "source tree": IR functions plus data objects. Symbols referenced
// by the functions (call targets, data) must be interned in `symbols`.
struct KernelSource {
  std::vector<Function> functions;
  std::vector<DataObject> data_objects;
  SymbolTable symbols;
  uint64_t phys_bytes = 64ULL << 20;
};

struct PipelineStats {
  SfiStats sfi;
  KaslrStats kaslr;
  DecoyStats decoy;
  RegRandStats reg_rand;
  uint64_t functions = 0;
  uint64_t instrumented_functions = 0;
  uint64_t xkeys = 0;
  uint64_t phantom_guard_size = 0;
  // How many post-link-verify failures CompileKernel recovered from by
  // rebuilding with a rotated diversification seed (0 on a clean build).
  uint64_t verify_retries = 0;
  // Per-function SFI census (function name -> that function's SfiStats),
  // in instrumentation order. Drives the per-function elided/kept/hoisted
  // tables in krx_objdump/krx_verify and the O4 check-census benches.
  std::vector<std::pair<std::string, SfiStats>> per_function;
};

// Everything a copy-on-write tenant materialization (src/fleet) needs to
// re-link a private image without re-running the expensive protect/assemble
// phases: the pristine (pre-relocation) text blob plus the pre-link inputs
// LinkKernel otherwise consumes. Immutable once captured; shared across
// every tenant of a pristine group — the `pristine` pointer here is the
// *same object* each tenant's RerandMap aliases, which is what makes the
// per-tenant cost the relocated image, not a private copy of the blob.
struct LinkArtifacts {
  std::shared_ptr<const TextBlob> pristine;
  std::vector<uint8_t> xkeys;  // zero template; each link replenishes keys
  std::vector<std::pair<int32_t, uint64_t>> xkey_symbols;
  std::vector<DataObject> data_objects;
  std::vector<RerandMap::PendingPtrSite> pending_ptr_sites;
  SymbolTable symbols;  // pre-link (no addresses bound)
  uint64_t phantom_guard_size = 0;
  uint64_t phys_bytes = 0;

  // Host-side footprint of the shared artifacts — what the naive
  // copy-per-tenant baseline would duplicate per tenant.
  uint64_t ApproxBytes() const;
};

struct CompiledKernel {
  std::unique_ptr<KernelImage> image;
  PipelineStats stats;
  ProtectionConfig config;
  LayoutKind layout = LayoutKind::kVanilla;
  // Live re-randomization metadata (pristine text, function extents, xkey
  // slots, patchable pointer sites) — what RerandEngine epochs consume.
  // Always populated; shared so engines and tools can outlive moves of the
  // CompiledKernel wrapper.
  std::shared_ptr<RerandMap> rerand;
  // Pre-link artifacts for CoW tenant materialization. Always populated by
  // CompileKernel; tenants materialized from this build alias the same
  // object (never copy it).
  std::shared_ptr<const LinkArtifacts> artifacts;
};

// The _krx_edata value the instrumentation will compare against, given the
// guard size the pipeline chooses. Exposed for tests.
int64_t ComputeEdata(uint64_t phantom_guard_size);

// Applies the configured passes to the functions in place; returns the
// xkey layout (encryption scheme) and accumulated statistics.
Status ApplyProtection(std::vector<Function>& functions, SymbolTable& symbols,
                       const ProtectionConfig& config, int64_t edata_imm, XkeyLayout* xkeys,
                       PipelineStats* stats, Rng& rng);

// Upper bound on rebuild attempts after a post-link verification failure.
inline constexpr int kMaxVerifyRetries = 3;

// Everything that parameterizes a kernel build, in one place. Replaces the
// old positional (config, layout) signature; call sites read
//   CompileKernel(src, {config, layout})
// or spell fields out for the less common knobs:
//   CompileKernel(src, {.config = cfg, .layout = LayoutKind::kKrx,
//                       .seed = s, .verify = BuildOptions::Verify::kOff})
struct BuildOptions {
  ProtectionConfig config;
  LayoutKind layout = LayoutKind::kVanilla;
  // Nonzero overrides config.seed — the compiled-kernel cache and bench
  // matrices sweep seeds without cloning whole configs.
  uint64_t seed = 0;
  // Post-link verification policy. kDefault consults the process-wide
  // setting (KRX_POST_LINK_VERIFY / SetPostLinkVerify); kOn / kOff force it
  // for this build only.
  enum class Verify : uint8_t { kDefault, kOn, kOff };
  Verify verify = Verify::kDefault;
  // Upper bound on seed-rotated rebuilds after a verify failure.
  int max_verify_retries = kMaxVerifyRetries;
};

// Full build: transform, permute, assemble, link, replenish xkeys — then,
// when post-link verification is enabled, prove the kR^X contract on the
// linked bytes with the src/verify checker and fail the build on violations.
// A verify failure is retried up to options.max_verify_retries times with
// the next diversification seed (bounded, logged to stderr) before the
// build fails.
Result<CompiledKernel> CompileKernel(KernelSource source, const BuildOptions& options);

// Test hook: runs on the linked image just before the post-link verifier,
// with the zero-based build attempt number. Lets the fault tests corrupt
// selected attempts to exercise the retry path. Pass nullptr to clear.
void SetPostLinkMutatorForTest(std::function<void(KernelImage&, int attempt)> mutator);

// Post-link verification toggle. Defaults to the KRX_POST_LINK_VERIFY
// environment variable ("1"/"0"); SetPostLinkVerify overrides it for the
// process. The test suite runs with it on.
bool PostLinkVerifyEnabled();
void SetPostLinkVerify(bool enabled);

// Compiles a module object against a (shared) kernel symbol table with its
// own protection config — kR^X supports mixed protected/unprotected code
// (§6). Under return-address encryption the module's xkeys are appended to
// its .text (the only execute-only memory a module owns) and replenished by
// the loader at load time.
Result<ModuleObject> CompileModule(const std::string& name, std::vector<Function> functions,
                                   std::vector<DataObject> data_objects, SymbolTable& symbols,
                                   const ProtectionConfig& config);

}  // namespace krx

#endif  // KRX_SRC_PLUGIN_PIPELINE_H_
