#include "src/plugin/sfi_pass.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "src/ir/liveness.h"

namespace krx {
namespace {

struct ReadSite {
  int32_t layout_idx = 0;  // block layout index at collection time
  size_t inst_idx = 0;
  bool is_string = false;
  bool place_after = false;  // rep-prefixed string: check lands after
  Reg base = Reg::kNone;     // base register for the O2/O3 check form
  int64_t disp = 0;          // original displacement
  int64_t check_disp = 0;    // possibly raised by coalescing
  MemOperand mem;            // original operand (lea form / MPX)
  bool coalescible = false;  // base-only non-string reads
  bool removed = false;
};

// State of the O3 availability analysis: per base register, the set of kept
// check sites that dominate the current point with no intervening
// redefinition, spill or call.
using AvailState = std::map<Reg, std::set<ReadSite*>>;

void KillReg(AvailState& state, Reg r) { state.erase(r); }

void ApplyInstructionKills(AvailState& state, const Instruction& inst) {
  if (inst.IsCall()) {
    // Conservative: a callee may clobber or spill anything.
    state.clear();
    return;
  }
  // Redefinitions.
  Reg written[6];
  int wcount = 0;
  InstructionRegWrites(inst, written, &wcount);
  for (int i = 0; i < wcount; ++i) {
    KillReg(state, written[i]);
  }
  // Spills: the register's value escapes to (attacker-writable) memory.
  // A subsequent fill is a redefinition, but the paper additionally requires
  // no spill between check and use (temporal attacks, §5.1.2 / [24]).
  if (inst.op == Opcode::kStore || inst.op == Opcode::kPushR) {
    KillReg(state, inst.r1);
  }
}

AvailState MeetPredecessors(const std::vector<AvailState>& exit_states,
                            const std::vector<std::vector<int32_t>>& preds, int32_t idx) {
  AvailState out;
  const auto& ps = preds[static_cast<size_t>(idx)];
  if (ps.empty()) {
    return out;
  }
  for (int32_t p : ps) {
    if (p >= idx) {
      return {};  // back edge: loop header gets the empty state (conservative)
    }
  }
  out = exit_states[static_cast<size_t>(ps[0])];
  for (size_t i = 1; i < ps.size(); ++i) {
    const AvailState& other = exit_states[static_cast<size_t>(ps[i])];
    AvailState merged;
    for (const auto& [reg, sites] : out) {
      auto it = other.find(reg);
      if (it == other.end()) {
        continue;  // not checked on every path
      }
      std::set<ReadSite*> u = sites;
      u.insert(it->second.begin(), it->second.end());
      merged[reg] = std::move(u);
    }
    out = std::move(merged);
  }
  return out;
}

}  // namespace

void SfiStats::Accumulate(const SfiStats& o) {
  read_sites += o.read_sites;
  safe_reads += o.safe_reads;
  rsp_reads += o.rsp_reads;
  string_checks += o.string_checks;
  checks_emitted += o.checks_emitted;
  checks_coalesced += o.checks_coalesced;
  wrappers_kept += o.wrappers_kept;
  wrappers_eliminated += o.wrappers_eliminated;
  lea_kept += o.lea_kept;
  lea_eliminated += o.lea_eliminated;
  max_rsp_disp = std::max(max_rsp_disp, o.max_rsp_disp);
}

double SfiStats::WrapperEliminationRate() const {
  uint64_t total = wrappers_kept + wrappers_eliminated;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(wrappers_eliminated) /
                                static_cast<double>(total);
}

double SfiStats::LeaEliminationRate() const {
  uint64_t total = lea_kept + lea_eliminated;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(lea_eliminated) /
                                static_cast<double>(total);
}

double SfiStats::CoalescingRate() const {
  uint64_t total = checks_emitted + checks_coalesced;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(checks_coalesced) /
                                static_cast<double>(total);
}

double SfiStats::SafeReadRate() const {
  return read_sites == 0 ? 0.0 : 100.0 * static_cast<double>(safe_reads) /
                                     static_cast<double>(read_sites);
}

Status ApplySfiPass(Function& fn, const ProtectionConfig& config, int32_t krx_handler_sym,
                    int64_t edata_imm, SfiStats* stats) {
  if (!config.HasRangeChecks() && !config.mpx) {
    return Status::Ok();
  }
  const bool mpx = config.mpx;
  const SfiLevel level = config.sfi;
  const bool do_lea_elim = mpx || level == SfiLevel::kO2 || level == SfiLevel::kO3;
  const bool do_coalesce = mpx || level == SfiLevel::kO3;

  SfiStats local;

  // ---- Collect read sites. ----
  std::vector<std::vector<ReadSite>> sites_by_block(fn.blocks().size());
  for (size_t bi = 0; bi < fn.blocks().size(); ++bi) {
    const BasicBlock& b = fn.blocks()[bi];
    for (size_t j = 0; j < b.insts.size(); ++j) {
      const Instruction& inst = b.insts[j];
      if (!inst.ReadsMemory()) {
        continue;
      }
      ++local.read_sites;
      ReadSite site;
      site.layout_idx = static_cast<int32_t>(bi);
      site.inst_idx = j;
      if (inst.IsString()) {
        site.is_string = true;
        site.place_after = inst.rep;
        site.base = inst.StringReadBase();
        site.disp = 0;
        site.check_disp = 0;
        site.mem = MemOperand::Base(site.base, 0);
        ++local.string_checks;
        sites_by_block[bi].push_back(site);
        continue;
      }
      const MemOperand& mem = inst.mem;
      if (mem.IsSafeAddress()) {
        ++local.safe_reads;
        continue;
      }
      if (mem.IsPlainRspAccess()) {
        ++local.rsp_reads;
        local.max_rsp_disp = std::max(local.max_rsp_disp, mem.disp);
        continue;
      }
      site.mem = mem;
      if (mem.has_base() && !mem.has_index()) {
        site.base = mem.base;
        site.disp = mem.disp;
        site.coalescible = true;
      } else {
        site.base = Reg::kNone;  // needs lea (or a full-operand bndcu)
        site.disp = mem.disp;
      }
      site.check_disp = site.disp;
      sites_by_block[bi].push_back(site);
    }
  }

  // ---- O3: cmp/ja coalescing. ----
  if (do_coalesce) {
    const size_t n = fn.blocks().size();
    std::vector<std::vector<int32_t>> preds(n);
    for (size_t bi = 0; bi < n; ++bi) {
      for (int32_t succ_id : fn.SuccessorsOf(static_cast<int32_t>(bi))) {
        int32_t sidx = fn.IndexOfBlock(succ_id);
        if (sidx >= 0) {
          preds[static_cast<size_t>(sidx)].push_back(static_cast<int32_t>(bi));
        }
      }
    }
    std::vector<AvailState> exit_states(n);
    for (size_t bi = 0; bi < n; ++bi) {
      AvailState state = MeetPredecessors(exit_states, preds, static_cast<int32_t>(bi));
      auto& block_sites = sites_by_block[bi];
      size_t next_site = 0;
      const BasicBlock& b = fn.blocks()[bi];
      for (size_t j = 0; j < b.insts.size(); ++j) {
        // Check site placed *before* this instruction.
        while (next_site < block_sites.size() && block_sites[next_site].inst_idx == j) {
          ReadSite& site = block_sites[next_site];
          ++next_site;
          if (!site.coalescible || site.place_after) {
            continue;
          }
          auto it = state.find(site.base);
          if (it != state.end()) {
            // Dominated on every path: fold into the dominating checks.
            site.removed = true;
            for (ReadSite* dom : it->second) {
              dom->check_disp = std::max(dom->check_disp, site.disp);
            }
          } else {
            state[site.base] = {&site};
          }
        }
        ApplyInstructionKills(state, b.insts[j]);
      }
      exit_states[bi] = std::move(state);
    }
  }

  // ---- Materialize. ----
  FlagsLiveness liveness(fn);

  bool any_kept = false;
  for (const auto& bs : sites_by_block) {
    for (const ReadSite& s : bs) {
      if (!s.removed) {
        any_kept = true;
      }
    }
  }

  // Violation block (SFI flavour only): callq krx_handler, then halt.
  // Created before the rebuild so block references below stay stable.
  int32_t viol_block = -1;
  if (any_kept && !mpx) {
    viol_block = fn.AddBlock();
    BasicBlock& vb = fn.block_by_id(viol_block);
    Instruction call = Instruction::CallSym(krx_handler_sym);
    call.origin = InstOrigin::kRangeCheck;
    Instruction hlt = Instruction::Hlt();
    hlt.origin = InstOrigin::kRangeCheck;
    vb.insts.push_back(call);
    vb.insts.push_back(hlt);
  }
  auto violation_target = [&]() {
    KRX_CHECK(viol_block >= 0);
    return viol_block;
  };

  // Rebuild blocks that have sites; layout indices of the blocks the sites
  // refer to are unchanged by the violation-block append.
  for (size_t bi = 0; bi < sites_by_block.size(); ++bi) {
    auto& block_sites = sites_by_block[bi];
    bool any = false;
    for (const ReadSite& s : block_sites) {
      if (!s.removed) {
        any = true;
        break;
      }
    }
    if (!any) {
      continue;
    }
    BasicBlock& b = fn.blocks()[bi];
    std::vector<Instruction> out;
    out.reserve(b.insts.size() + block_sites.size() * 5);
    size_t next_site = 0;

    auto emit_check = [&](const ReadSite& site, size_t liveness_point) {
      ++local.checks_emitted;
      if (mpx) {
        MemOperand checked = site.coalescible || site.is_string
                                 ? MemOperand::Base(site.base, site.check_disp)
                                 : site.mem;
        Instruction b1 = Instruction::Bndcu(checked);
        b1.origin = InstOrigin::kRangeCheck;
        out.push_back(b1);
        return;
      }
      const bool base_form = site.is_string || (do_lea_elim && site.coalescible);
      bool preserve;
      if (level == SfiLevel::kO0) {
        preserve = true;
      } else {
        preserve = liveness.LiveBefore(static_cast<int32_t>(bi), liveness_point);
      }
      if (preserve) {
        ++local.wrappers_kept;
        Instruction p = Instruction::Pushfq();
        p.origin = InstOrigin::kRangeCheck;
        out.push_back(p);
      } else {
        ++local.wrappers_eliminated;
      }
      if (base_form) {
        if (!site.is_string) {
          ++local.lea_eliminated;
        }
        Instruction cmp = Instruction::CmpRI(site.base, edata_imm - site.check_disp);
        cmp.origin = InstOrigin::kRangeCheck;
        out.push_back(cmp);
      } else {
        ++local.lea_kept;
        Instruction lea = Instruction::Lea(kRangeCheckScratch, site.mem);
        lea.origin = InstOrigin::kRangeCheck;
        out.push_back(lea);
        Instruction cmp = Instruction::CmpRI(kRangeCheckScratch, edata_imm);
        cmp.origin = InstOrigin::kRangeCheck;
        out.push_back(cmp);
      }
      Instruction ja = Instruction::JccBlock(Cond::kA, violation_target());
      ja.origin = InstOrigin::kRangeCheck;
      out.push_back(ja);
      if (preserve) {
        Instruction p = Instruction::Popfq();
        p.origin = InstOrigin::kRangeCheck;
        out.push_back(p);
      }
    };

    for (size_t j = 0; j < b.insts.size(); ++j) {
      // Before-checks for this instruction.
      size_t si = next_site;
      while (si < block_sites.size() && block_sites[si].inst_idx == j) {
        const ReadSite& site = block_sites[si];
        if (!site.removed && !site.place_after) {
          emit_check(site, j);
        }
        ++si;
      }
      out.push_back(b.insts[j]);
      // After-checks (rep string postmortem check).
      while (next_site < block_sites.size() && block_sites[next_site].inst_idx == j) {
        const ReadSite& site = block_sites[next_site];
        if (!site.removed && site.place_after) {
          emit_check(site, j + 1);
        }
        ++next_site;
      }
    }
    b.insts = std::move(out);
  }

  local.checks_coalesced = 0;
  for (const auto& bs : sites_by_block) {
    for (const ReadSite& s : bs) {
      if (s.removed) {
        ++local.checks_coalesced;
      }
    }
  }

  if (stats != nullptr) {
    stats->Accumulate(local);
  }
  return fn.Validate();
}

}  // namespace krx
