#include "src/plugin/sfi_pass.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "src/ir/analysis.h"
#include "src/ir/liveness.h"
#include "src/kernel/layout.h"

namespace krx {
namespace {

struct ReadSite {
  int32_t layout_idx = 0;  // block layout index at collection time
  size_t inst_idx = 0;
  bool is_string = false;
  bool place_after = false;  // rep-prefixed string: check lands after
  Reg base = Reg::kNone;     // base register for the O2/O3 check form
  int64_t disp = 0;          // original displacement
  int64_t check_disp = 0;    // possibly raised by coalescing
  MemOperand mem;            // original operand (lea form / MPX)
  bool coalescible = false;  // base-only non-string reads
  bool removed = false;
  bool hoisted = false;        // O4: synthetic loop-preheader check
  bool hoist_covered = false;  // O4: a preheader check was created for it
};

// State of the O3 availability analysis: per base register, the set of kept
// check sites that dominate the current point with no intervening
// redefinition, spill or call.
using AvailState = std::map<Reg, std::set<ReadSite*>>;

void KillReg(AvailState& state, Reg r) { state.erase(r); }

void ApplyInstructionKills(AvailState& state, const Instruction& inst) {
  if (inst.IsCall()) {
    // Conservative: a callee may clobber or spill anything.
    state.clear();
    return;
  }
  // Redefinitions.
  Reg written[6];
  int wcount = 0;
  InstructionRegWrites(inst, written, &wcount);
  for (int i = 0; i < wcount; ++i) {
    KillReg(state, written[i]);
  }
  // Spills: the register's value escapes to (attacker-writable) memory.
  // A subsequent fill is a redefinition, but the paper additionally requires
  // no spill between check and use (temporal attacks, §5.1.2 / [24]).
  if (inst.op == Opcode::kStore || inst.op == Opcode::kPushR) {
    KillReg(state, inst.r1);
  }
}

AvailState MeetPredecessors(const std::vector<AvailState>& exit_states,
                            const std::vector<std::vector<int32_t>>& preds, int32_t idx) {
  AvailState out;
  const auto& ps = preds[static_cast<size_t>(idx)];
  if (ps.empty()) {
    return out;
  }
  for (int32_t p : ps) {
    if (p >= idx) {
      return {};  // back edge: loop header gets the empty state (conservative)
    }
  }
  out = exit_states[static_cast<size_t>(ps[0])];
  for (size_t i = 1; i < ps.size(); ++i) {
    const AvailState& other = exit_states[static_cast<size_t>(ps[i])];
    AvailState merged;
    for (const auto& [reg, sites] : out) {
      auto it = other.find(reg);
      if (it == other.end()) {
        continue;  // not checked on every path
      }
      std::set<ReadSite*> u = sites;
      u.insert(it->second.begin(), it->second.end());
      merged[reg] = std::move(u);
    }
    out = std::move(merged);
  }
  return out;
}

// ---------------------------------------------------------------------------
// O4: dominance/value-range check elision and loop-invariant hoisting.
//
// The O3 analysis above is a single layout-order pass that drops all facts
// at loop back edges. O4 replaces it with a greatest-fixpoint dataflow whose
// facts are *congruence-derived* coverage sources: `state[r] = {(S, span)}`
// means that on every path to this point, kept check site S proved some
// value v <= edata - check_disp(S), and r == v + off for some path-dependent
// off in [span.min, span.max] (r was derived from the checked value by
// mov/add/sub/lea per RegOffsetDerivation and has not been redefined,
// spilled or survived a call since). A read through r at displacement d is
// then covered by raising every source's check to span.max + d — capped by
// the phantom-guard size, which bounds how far a check's displacement may
// legally be widened (the post-link verifier enforces the same bound,
// RuleId::kRxCheckDisp) — provided span.min + d >= 0: the checks are
// unsigned compares, and a sub-derived value below the checked one could
// wrap unless the displacement provably restores it. Tracking the lower
// edge is exactly what makes the negative kSubRI delta sound, mirroring
// the verifier's CoverWindow.
//
// The verifier re-derives all of this from the linked bytes with an
// interval-domain abstract interpreter (src/verify/confinement.cc); any
// elision it cannot re-prove fails the build, so this analysis only has to
// be *sound*, never trusted.

// Coverage cap: check displacements may not be raised past the guard that
// absorbs the distance overshoot. The pipeline's guard is always at least
// this large (GuardSizeFor), so the constant is a safe static bound.
constexpr int64_t kO4CoverCap = static_cast<int64_t>(kDefaultPhantomGuardSize);

// Accumulated derivation offset over every path: off in [min, max].
struct O4Span {
  int64_t min = 0;
  int64_t max = 0;

  bool operator==(const O4Span& o) const { return min == o.min && max == o.max; }
  bool operator!=(const O4Span& o) const { return !(*this == o); }
};

// Per register: kept check site -> derivation-offset span along any path.
using O4State = std::map<Reg, std::map<ReadSite*, O4Span>>;

// Intersection meet with per-source span widening to the hull (the weakest
// derivation seen on any path, at both edges).
O4State O4Meet(const O4State& a, const O4State& b) {
  O4State out;
  for (const auto& [reg, sources] : a) {
    auto it = b.find(reg);
    if (it == b.end()) {
      continue;
    }
    std::map<ReadSite*, O4Span> u = sources;
    for (const auto& [site, span] : it->second) {
      auto [slot, fresh] = u.emplace(site, span);
      if (!fresh) {
        slot->second.min = std::min(slot->second.min, span.min);
        slot->second.max = std::max(slot->second.max, span.max);
      }
    }
    out[reg] = std::move(u);
  }
  return out;
}

// Kills + congruence transfer for one instruction.
void O4ApplyInst(O4State& state, const Instruction& inst,
                 const CalleeClobberSummary* clobbers) {
  if (inst.IsCall()) {
    // With a callee-clobber summary, a direct call to a summarized callee
    // kills only the registers the callee (transitively) may write. The
    // summary always contains %rsp and the check scratch, so the call's own
    // push and the callee's instrumentation are covered; anything else —
    // indirect calls, un-summarized targets — stays conservative.
    if (clobbers != nullptr && inst.op == Opcode::kCallRel && inst.target_symbol >= 0 &&
        clobbers->Known(inst.target_symbol)) {
      for (auto it = state.begin(); it != state.end();) {
        if (clobbers->MayClobber(inst.target_symbol, it->first)) {
          it = state.erase(it);
        } else {
          ++it;
        }
      }
      return;
    }
    state.clear();
    return;
  }
  // Derivations are computed against the pre-kill state: `add $8, %rdi`
  // both redefines %rdi and re-derives it from its own old value.
  Reg dst = Reg::kNone;
  Reg src = Reg::kNone;
  int64_t delta = 0;
  std::map<ReadSite*, O4Span> derived;
  if (RegOffsetDerivation(inst, &dst, &src, &delta)) {
    auto it = state.find(src);
    if (it != state.end()) {
      for (const auto& [site, span] : it->second) {
        // Both edges shift by the delta; sources drifting past the cover
        // cap (or symmetrically far below it, keeping the arithmetic far
        // from overflow) are dropped.
        if (span.max + delta <= kO4CoverCap && span.min + delta >= -kO4CoverCap) {
          derived[site] = O4Span{span.min + delta, span.max + delta};
        }
      }
    }
  }
  Reg written[6];
  int wcount = 0;
  InstructionRegWrites(inst, written, &wcount);
  for (int i = 0; i < wcount; ++i) {
    state.erase(written[i]);
  }
  if (inst.op == Opcode::kStore || inst.op == Opcode::kPushR) {
    state.erase(inst.r1);
  }
  if (!derived.empty()) {
    state[dst] = std::move(derived);
  }
}

// Walks one block. Without `commit`, this is the fixpoint transfer; with
// `commit`, elision decisions are written into the sites (removed flags and
// raised check displacements). Site entries at inst_idx == insts.size()
// (synthetic checks in an otherwise empty preheader) are handled by the
// trailing loop iteration.
O4State O4TransferBlock(const BasicBlock& b, std::vector<ReadSite>& block_sites, O4State state,
                        const CalleeClobberSummary* clobbers, bool commit) {
  size_t next_site = 0;
  for (size_t j = 0; j <= b.insts.size(); ++j) {
    while (next_site < block_sites.size() && block_sites[next_site].inst_idx == j) {
      ReadSite& site = block_sites[next_site];
      ++next_site;
      if (!site.coalescible || site.place_after) {
        continue;
      }
      auto it = state.find(site.base);
      bool covered = it != state.end() && !it->second.empty();
      if (covered) {
        for (const auto& [dom, span] : it->second) {
          (void)dom;
          // The raised check must absorb the largest offset (cap-bounded),
          // and the smallest offset must keep the address non-negative —
          // the no-wrap half of the proof for sub-derived values.
          if (span.max + site.disp > kO4CoverCap || span.min + site.disp < 0) {
            covered = false;  // keep this check
            break;
          }
        }
      }
      if (covered) {
        if (commit) {
          site.removed = true;
          for (const auto& [dom, span] : it->second) {
            dom->check_disp = std::max(dom->check_disp, span.max + site.disp);
          }
        }
      } else {
        state[site.base] = {{&site, O4Span{0, 0}}};
      }
    }
    if (j < b.insts.size()) {
      O4ApplyInst(state, b.insts[j], clobbers);
    }
  }
  return state;
}

// Interval widening between rounds: a source whose span is still growing
// at the same block entry — max climbing (an `add $8, %rdi` cycle) or min
// descending (a `sub $8, %rdi` cycle) — will never stabilize: drop it,
// keeping the in-loop check. Stable facts are never touched.
void O4Widen(O4State& in, const O4State& prev) {
  for (auto it = in.begin(); it != in.end();) {
    auto pit = prev.find(it->first);
    if (pit != prev.end()) {
      for (auto sit = it->second.begin(); sit != it->second.end();) {
        auto ps = pit->second.find(sit->first);
        if (ps != pit->second.end() &&
            (sit->second.max > ps->second.max || sit->second.min < ps->second.min)) {
          sit = it->second.erase(sit);
        } else {
          ++sit;
        }
      }
    }
    if (it->second.empty()) {
      it = in.erase(it);
    } else {
      ++it;
    }
  }
}

// Greatest-fixpoint elision over the whole CFG. Returns false if the
// iteration failed to converge within the (generous) round budget — the
// caller then falls back to the O3 analysis, which is always sound.
bool O4Coalesce(Function& fn, std::vector<std::vector<ReadSite>>& sites_by_block,
                const CalleeClobberSummary* clobbers) {
  const size_t n = fn.blocks().size();
  std::vector<std::vector<int32_t>> preds = PredecessorsOf(fn);
  std::vector<O4State> exit_states(n);
  std::vector<O4State> in_states(n);
  std::vector<bool> visited(n, false);

  const size_t widen_after = n + 8;
  const size_t max_rounds = 8 * n + 64;
  size_t round = 0;
  bool changed = true;
  while (changed) {
    if (round++ >= max_rounds) {
      return false;
    }
    changed = false;
    for (size_t bi = 0; bi < n; ++bi) {
      O4State in;
      if (bi != 0) {  // the entry block always meets the caller's empty state
        bool first = true;
        for (int32_t p : preds[bi]) {
          if (!visited[static_cast<size_t>(p)]) {
            continue;  // optimistic: an unvisited predecessor contributes top
          }
          if (first) {
            in = exit_states[static_cast<size_t>(p)];
            first = false;
          } else {
            in = O4Meet(in, exit_states[static_cast<size_t>(p)]);
          }
        }
      }
      if (round > widen_after) {
        O4Widen(in, in_states[bi]);
      }
      in_states[bi] = in;
      O4State out = O4TransferBlock(fn.blocks()[bi], sites_by_block[bi], std::move(in),
                                    clobbers, /*commit=*/false);
      if (!visited[bi] || out != exit_states[bi]) {
        visited[bi] = true;
        exit_states[bi] = std::move(out);
        changed = true;
      }
    }
  }

  // Converged: replay once, committing elisions and raising the survivors.
  for (size_t bi = 0; bi < n; ++bi) {
    O4TransferBlock(fn.blocks()[bi], sites_by_block[bi], in_states[bi], clobbers,
                    /*commit=*/true);
  }
  return true;
}

// Hoists loop-invariant checks: for every natural loop whose body never
// clobbers a checked base register (no redefinition, no spill, and no call
// beyond those whose callee-clobber summary spares the base), a
// synthetic check site is placed in a freshly inserted preheader block. The
// in-loop sites then sit in its coverage and are elided by O4Coalesce,
// which also widens the preheader check to the maximum in-loop
// displacement. Loops are re-derived after each restructure; the chain
// terminates because every hoist marks its covered sites.
void O4HoistLoops(Function& fn, std::vector<std::vector<ReadSite>>& sites_by_block,
                  const CalleeClobberSummary* clobbers, SfiStats* local) {
  for (int iter = 0; iter < 32; ++iter) {
    DominatorTree dom(fn);
    std::vector<NaturalLoop> loops = FindNaturalLoops(fn, dom);
    bool applied = false;
    for (const NaturalLoop& loop : loops) {
      const int32_t h = loop.header;
      // Layout constraint: the block physically before the header must not
      // fall through into it from inside the loop, or the preheader would
      // intercept the back edge.
      if (h > 0 && loop.body.count(h - 1) > 0 &&
          !fn.blocks()[static_cast<size_t>(h - 1)].ends_with_unconditional_transfer()) {
        continue;
      }
      // Clobber summary of the whole loop body.
      bool has_call = false;
      std::set<Reg> clobbered;
      for (int32_t b : loop.body) {
        for (const Instruction& inst : fn.blocks()[static_cast<size_t>(b)].insts) {
          if (inst.IsCall()) {
            // A summarized direct callee clobbers exactly its summary mask
            // (which already includes %rsp and the check scratch); any
            // other call is an analysis horizon and blocks the hoist.
            if (clobbers != nullptr && inst.op == Opcode::kCallRel &&
                inst.target_symbol >= 0 && clobbers->Known(inst.target_symbol)) {
              const uint64_t mask = clobbers->MaskOf(inst.target_symbol);
              for (int r = 0; r < kNumGpRegs; ++r) {
                if (((mask >> r) & 1) != 0) {
                  clobbered.insert(static_cast<Reg>(r));
                }
              }
              continue;
            }
            has_call = true;
            break;
          }
          Reg written[6];
          int wcount = 0;
          InstructionRegWrites(inst, written, &wcount);
          for (int i = 0; i < wcount; ++i) {
            clobbered.insert(written[i]);
          }
          if (inst.op == Opcode::kStore || inst.op == Opcode::kPushR) {
            clobbered.insert(inst.r1);
          }
        }
        if (has_call) {
          break;
        }
      }
      if (has_call) {
        continue;
      }
      // Eligible bases: loop-invariant, all displacements within the cap.
      std::set<Reg> hoistable;
      for (int32_t b : loop.body) {
        for (const ReadSite& site : sites_by_block[static_cast<size_t>(b)]) {
          if (!site.coalescible || site.place_after || site.hoist_covered ||
              clobbered.count(site.base) > 0 || site.disp > kO4CoverCap) {
            continue;
          }
          hoistable.insert(site.base);
        }
      }
      if (hoistable.empty()) {
        continue;
      }

      // Insert the preheader at the header's layout position and steer
      // every entry edge from outside the loop through it (back edges keep
      // targeting the header; an out-of-loop layout predecessor now falls
      // through the preheader into the header).
      const int32_t header_id = fn.blocks()[static_cast<size_t>(h)].id;
      const int32_t preheader_id = fn.AllocateBlockId();
      BasicBlock pb;
      pb.id = preheader_id;
      fn.blocks().insert(fn.blocks().begin() + h, std::move(pb));
      std::set<int32_t> body_shifted;
      for (int32_t b : loop.body) {
        body_shifted.insert(b >= h ? b + 1 : b);
      }
      for (size_t bi = 0; bi < fn.blocks().size(); ++bi) {
        if (static_cast<int32_t>(bi) == h || body_shifted.count(static_cast<int32_t>(bi)) > 0) {
          continue;
        }
        for (Instruction& inst : fn.blocks()[bi].insts) {
          if (inst.target_block == header_id) {
            inst.target_block = preheader_id;
          }
        }
      }

      // Site bookkeeping: shift, then add one synthetic check per base. The
      // synthetic starts at displacement 0 — O4Coalesce widens it while
      // eliding the in-loop sites it covers.
      for (auto& bs : sites_by_block) {
        for (ReadSite& s : bs) {
          if (s.layout_idx >= h) {
            ++s.layout_idx;
          }
        }
      }
      sites_by_block.emplace(sites_by_block.begin() + h);
      for (Reg base : hoistable) {
        ReadSite syn;
        syn.layout_idx = h;
        syn.inst_idx = 0;
        syn.base = base;
        syn.disp = 0;
        syn.check_disp = 0;
        syn.mem = MemOperand::Base(base, 0);
        syn.coalescible = true;
        syn.hoisted = true;
        sites_by_block[static_cast<size_t>(h)].push_back(syn);
      }
      for (int32_t b : body_shifted) {
        for (ReadSite& s : sites_by_block[static_cast<size_t>(b)]) {
          if (s.coalescible && !s.place_after && hoistable.count(s.base) > 0) {
            s.hoist_covered = true;
          }
        }
      }
      (void)local;
      applied = true;
      break;  // re-derive dominators and loops after the restructure
    }
    if (!applied) {
      break;
    }
  }
}

}  // namespace

void SfiStats::Accumulate(const SfiStats& o) {
  read_sites += o.read_sites;
  safe_reads += o.safe_reads;
  rsp_reads += o.rsp_reads;
  string_checks += o.string_checks;
  checks_emitted += o.checks_emitted;
  checks_coalesced += o.checks_coalesced;
  checks_hoisted += o.checks_hoisted;
  wrappers_kept += o.wrappers_kept;
  wrappers_eliminated += o.wrappers_eliminated;
  lea_kept += o.lea_kept;
  lea_eliminated += o.lea_eliminated;
  spec_barriers += o.spec_barriers;
  spec_masks += o.spec_masks;
  max_rsp_disp = std::max(max_rsp_disp, o.max_rsp_disp);
}

double SfiStats::WrapperEliminationRate() const {
  uint64_t total = wrappers_kept + wrappers_eliminated;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(wrappers_eliminated) /
                                static_cast<double>(total);
}

double SfiStats::LeaEliminationRate() const {
  uint64_t total = lea_kept + lea_eliminated;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(lea_eliminated) /
                                static_cast<double>(total);
}

double SfiStats::CoalescingRate() const {
  uint64_t total = checks_emitted + checks_coalesced;
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(checks_coalesced) /
                                static_cast<double>(total);
}

double SfiStats::SafeReadRate() const {
  return read_sites == 0 ? 0.0 : 100.0 * static_cast<double>(safe_reads) /
                                     static_cast<double>(read_sites);
}

Status ApplySfiPass(Function& fn, const ProtectionConfig& config, int32_t krx_handler_sym,
                    int64_t edata_imm, SfiStats* stats,
                    const CalleeClobberSummary* callee_clobbers) {
  if (!config.HasRangeChecks() && !config.mpx) {
    return Status::Ok();
  }
  const bool mpx = config.mpx;
  const SfiLevel level = config.sfi;
  const bool o4 = level == SfiLevel::kO4;
  const bool do_lea_elim = mpx || level == SfiLevel::kO2 || level == SfiLevel::kO3 || o4;
  const bool do_coalesce = mpx || level == SfiLevel::kO3 || o4;
  const bool spec_barrier = config.spec == SpecMitigation::kBarrier;
  // The mask flavour replaces every check — including bndcu under MPX —
  // with the branchless clamp; there is no trap path at all.
  const bool spec_mask = config.spec == SpecMitigation::kMask;

  SfiStats local;

  // ---- Collect read sites. ----
  std::vector<std::vector<ReadSite>> sites_by_block(fn.blocks().size());
  for (size_t bi = 0; bi < fn.blocks().size(); ++bi) {
    const BasicBlock& b = fn.blocks()[bi];
    for (size_t j = 0; j < b.insts.size(); ++j) {
      const Instruction& inst = b.insts[j];
      if (!inst.ReadsMemory()) {
        continue;
      }
      ++local.read_sites;
      ReadSite site;
      site.layout_idx = static_cast<int32_t>(bi);
      site.inst_idx = j;
      if (inst.IsString()) {
        site.is_string = true;
        site.place_after = inst.rep;
        site.base = inst.StringReadBase();
        site.disp = 0;
        site.check_disp = 0;
        site.mem = MemOperand::Base(site.base, 0);
        ++local.string_checks;
        sites_by_block[bi].push_back(site);
        continue;
      }
      const MemOperand& mem = inst.mem;
      if (mem.IsSafeAddress()) {
        ++local.safe_reads;
        continue;
      }
      if (mem.IsPlainRspAccess()) {
        ++local.rsp_reads;
        local.max_rsp_disp = std::max(local.max_rsp_disp, mem.disp);
        continue;
      }
      site.mem = mem;
      if (mem.has_base() && !mem.has_index()) {
        site.base = mem.base;
        site.disp = mem.disp;
        site.coalescible = true;
      } else {
        site.base = Reg::kNone;  // needs lea (or a full-operand bndcu)
        site.disp = mem.disp;
      }
      site.check_disp = site.disp;
      sites_by_block[bi].push_back(site);
    }
  }

  // ---- O4: loop hoisting + cross-block dominance elision. ----
  bool o4_done = false;
  if (o4) {
    O4HoistLoops(fn, sites_by_block, callee_clobbers, &local);
    o4_done = O4Coalesce(fn, sites_by_block, callee_clobbers);
    // On (theoretical) non-convergence the O3 single-pass analysis below
    // runs instead; any synthetic preheader checks are simply kept, which
    // is redundant but sound.
  }

  // ---- O3: cmp/ja coalescing. ----
  if (do_coalesce && !o4_done) {
    const size_t n = fn.blocks().size();
    std::vector<std::vector<int32_t>> preds(n);
    for (size_t bi = 0; bi < n; ++bi) {
      for (int32_t succ_id : fn.SuccessorsOf(static_cast<int32_t>(bi))) {
        int32_t sidx = fn.IndexOfBlock(succ_id);
        if (sidx >= 0) {
          preds[static_cast<size_t>(sidx)].push_back(static_cast<int32_t>(bi));
        }
      }
    }
    std::vector<AvailState> exit_states(n);
    for (size_t bi = 0; bi < n; ++bi) {
      AvailState state = MeetPredecessors(exit_states, preds, static_cast<int32_t>(bi));
      auto& block_sites = sites_by_block[bi];
      size_t next_site = 0;
      const BasicBlock& b = fn.blocks()[bi];
      for (size_t j = 0; j < b.insts.size(); ++j) {
        // Check site placed *before* this instruction.
        while (next_site < block_sites.size() && block_sites[next_site].inst_idx == j) {
          ReadSite& site = block_sites[next_site];
          ++next_site;
          if (!site.coalescible || site.place_after) {
            continue;
          }
          auto it = state.find(site.base);
          if (it != state.end()) {
            // Dominated on every path: fold into the dominating checks.
            site.removed = true;
            for (ReadSite* dom : it->second) {
              dom->check_disp = std::max(dom->check_disp, site.disp);
            }
          } else {
            state[site.base] = {&site};
          }
        }
        ApplyInstructionKills(state, b.insts[j]);
      }
      exit_states[bi] = std::move(state);
    }
  }

  // ---- Materialize. ----
  FlagsLiveness liveness(fn);

  bool any_kept = false;
  for (const auto& bs : sites_by_block) {
    for (const ReadSite& s : bs) {
      if (!s.removed) {
        any_kept = true;
      }
    }
  }

  // Violation block (SFI flavour only): callq krx_handler, then halt.
  // Created before the rebuild so block references below stay stable.
  // spec-mask emits no branches, so it never needs the handler block.
  int32_t viol_block = -1;
  if (any_kept && !mpx && !spec_mask) {
    viol_block = fn.AddBlock();
    BasicBlock& vb = fn.block_by_id(viol_block);
    Instruction call = Instruction::CallSym(krx_handler_sym);
    call.origin = InstOrigin::kRangeCheck;
    Instruction hlt = Instruction::Hlt();
    hlt.origin = InstOrigin::kRangeCheck;
    vb.insts.push_back(call);
    vb.insts.push_back(hlt);
  }
  auto violation_target = [&]() {
    KRX_CHECK(viol_block >= 0);
    return viol_block;
  };

  // Rebuild blocks that have sites; layout indices of the blocks the sites
  // refer to are unchanged by the violation-block append.
  for (size_t bi = 0; bi < sites_by_block.size(); ++bi) {
    auto& block_sites = sites_by_block[bi];
    bool any = false;
    for (const ReadSite& s : block_sites) {
      if (!s.removed) {
        any = true;
        break;
      }
    }
    if (!any) {
      continue;
    }
    BasicBlock& b = fn.blocks()[bi];
    std::vector<Instruction> out;
    out.reserve(b.insts.size() + block_sites.size() * 5);
    size_t next_site = 0;

    // `read_inst` points at the pending copy of the guarded instruction
    // (nullptr for postmortem and synthetic preheader checks): the mask
    // flavour's lea form rewrites its operand to go through the clamped
    // scratch register.
    auto emit_check = [&](const ReadSite& site, size_t liveness_point,
                          Instruction* read_inst) {
      ++local.checks_emitted;
      if (site.hoisted) {
        ++local.checks_hoisted;
      }
      const bool base_form = site.is_string || (do_lea_elim && site.coalescible);
      if (spec_mask) {
        // Branchless clamp: the address register is forced into
        // [0, edata - check_disp], the exact post-state the ja-not-taken
        // edge would have proven — with no branch for a predictor to
        // missteer. kMaskRI writes no flags, so no pushfq/popfq either.
        ++local.spec_masks;
        if (base_form) {
          if (!site.is_string && !site.hoisted) {
            ++local.lea_eliminated;
          }
          Instruction m = Instruction::MaskRI(site.base, edata_imm - site.check_disp);
          m.origin = InstOrigin::kRangeCheck;
          out.push_back(m);
        } else {
          ++local.lea_kept;
          Instruction lea = Instruction::Lea(kRangeCheckScratch, site.mem);
          lea.origin = InstOrigin::kRangeCheck;
          out.push_back(lea);
          Instruction m = Instruction::MaskRI(kRangeCheckScratch, edata_imm);
          m.origin = InstOrigin::kRangeCheck;
          out.push_back(m);
          // The read must go through the clamped address, not recompute
          // the raw one.
          if (read_inst != nullptr) {
            read_inst->mem = MemOperand::Base(kRangeCheckScratch, 0);
          }
        }
        return;
      }
      auto emit_fence = [&]() {
        if (spec_barrier) {
          ++local.spec_barriers;
          Instruction f = Instruction::SpecFence();
          f.origin = InstOrigin::kRangeCheck;
          out.push_back(f);
        }
      };
      if (mpx) {
        MemOperand checked = site.coalescible || site.is_string
                                 ? MemOperand::Base(site.base, site.check_disp)
                                 : site.mem;
        Instruction b1 = Instruction::Bndcu(checked);
        b1.origin = InstOrigin::kRangeCheck;
        out.push_back(b1);
        emit_fence();
        return;
      }
      bool preserve;
      if (level == SfiLevel::kO0) {
        preserve = true;
      } else {
        preserve = liveness.LiveBefore(static_cast<int32_t>(bi), liveness_point);
      }
      if (preserve) {
        ++local.wrappers_kept;
        Instruction p = Instruction::Pushfq();
        p.origin = InstOrigin::kRangeCheck;
        out.push_back(p);
      } else {
        ++local.wrappers_eliminated;
      }
      if (base_form) {
        if (!site.is_string && !site.hoisted) {
          ++local.lea_eliminated;
        }
        Instruction cmp = Instruction::CmpRI(site.base, edata_imm - site.check_disp);
        cmp.origin = InstOrigin::kRangeCheck;
        out.push_back(cmp);
      } else {
        ++local.lea_kept;
        Instruction lea = Instruction::Lea(kRangeCheckScratch, site.mem);
        lea.origin = InstOrigin::kRangeCheck;
        out.push_back(lea);
        Instruction cmp = Instruction::CmpRI(kRangeCheckScratch, edata_imm);
        cmp.origin = InstOrigin::kRangeCheck;
        out.push_back(cmp);
      }
      Instruction ja = Instruction::JccBlock(Cond::kA, violation_target());
      ja.origin = InstOrigin::kRangeCheck;
      out.push_back(ja);
      // The fence lands on the fallthrough (not-taken) path, before any
      // popfq: a mispredicted-not-taken window dies here, before the
      // guarded read can issue.
      emit_fence();
      if (preserve) {
        Instruction p = Instruction::Popfq();
        p.origin = InstOrigin::kRangeCheck;
        out.push_back(p);
      }
    };

    for (size_t j = 0; j < b.insts.size(); ++j) {
      // The guarded instruction is copied so a mask-form check can rewrite
      // its operand before it is appended.
      Instruction cur = b.insts[j];
      // Before-checks for this instruction. Under spec-mask, postmortem
      // (rep string) sites clamp *before* the instruction too: the trap
      // has no branchless equivalent.
      size_t si = next_site;
      while (si < block_sites.size() && block_sites[si].inst_idx == j) {
        const ReadSite& site = block_sites[si];
        if (!site.removed && (!site.place_after || spec_mask)) {
          emit_check(site, j, &cur);
        }
        ++si;
      }
      out.push_back(cur);
      // After-checks (rep string postmortem check).
      while (next_site < block_sites.size() && block_sites[next_site].inst_idx == j) {
        const ReadSite& site = block_sites[next_site];
        if (!site.removed && site.place_after && !spec_mask) {
          emit_check(site, j + 1, nullptr);
        }
        ++next_site;
      }
    }
    // Synthetic preheader checks land in an otherwise empty block (inst_idx
    // == insts.size()), which the loop above never reaches.
    while (next_site < block_sites.size()) {
      const ReadSite& site = block_sites[next_site];
      if (!site.removed) {
        emit_check(site, b.insts.size(), nullptr);
      }
      ++next_site;
    }
    b.insts = std::move(out);
  }

  local.checks_coalesced = 0;
  for (const auto& bs : sites_by_block) {
    for (const ReadSite& s : bs) {
      if (s.removed) {
        ++local.checks_coalesced;
      }
    }
  }

  if (stats != nullptr) {
    stats->Accumulate(local);
  }
  return fn.Validate();
}

}  // namespace krx
