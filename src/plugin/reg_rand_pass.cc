#include "src/plugin/reg_rand_pass.h"

#include <array>

namespace krx {
namespace {

Reg Rename(const std::array<Reg, std::size(kRenamePool)>& perm, Reg r, uint64_t* rewrites) {
  for (size_t i = 0; i < std::size(kRenamePool); ++i) {
    if (kRenamePool[i] == r) {
      if (perm[i] != r) {
        ++*rewrites;
      }
      return perm[i];
    }
  }
  return r;
}

}  // namespace

Status ApplyRegRandPass(Function& fn, Rng& rng, RegRandStats* stats) {
  std::array<Reg, std::size(kRenamePool)> perm;
  for (size_t i = 0; i < perm.size(); ++i) {
    perm[i] = kRenamePool[i];
  }
  // Fisher-Yates over the pool.
  for (size_t i = perm.size() - 1; i > 0; --i) {
    size_t j = static_cast<size_t>(rng.NextBelow(i + 1));
    std::swap(perm[i], perm[j]);
  }

  uint64_t rewrites = 0;
  for (BasicBlock& b : fn.blocks()) {
    for (Instruction& inst : b.insts) {
      inst.r1 = Rename(perm, inst.r1, &rewrites);
      inst.r2 = Rename(perm, inst.r2, &rewrites);
      inst.mem.base = Rename(perm, inst.mem.base, &rewrites);
      inst.mem.index = Rename(perm, inst.mem.index, &rewrites);
    }
  }
  if (stats != nullptr) {
    ++stats->functions_renamed;
    stats->operands_rewritten += rewrites;
  }
  return fn.Validate();
}

}  // namespace krx
