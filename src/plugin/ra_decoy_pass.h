// Return-address decoys (§5.2.2, scheme D).
//
// For every call site (and tail-call site) the caller places a *phantom
// instruction* at a random position in its own code stream — a NOP-like
// `mov $imm, %r11` whose immediate embeds an int3 tripwire byte — and
// passes the tripwire's address to the callee in the predetermined scratch
// register (%r11, as in Figure 3). The callee's prologue stores the decoy
// next to the real return address, in a per-function random order:
//
//   variant (a), decoy on top:        variant (b), real on top:
//     push %r11                         mov (%rsp), %rax
//                                       mov %r11, (%rsp)
//                                       push %rax
//   epilogue:                         epilogue:
//     add $8, %rsp                      pop %r11
//     retq                              add $8, %rsp
//                                       jmp *%r11
//
// Harvesting the stack yields {real, decoy} pairs; picking the decoy lands
// on the int3 tripwire (#BP). With n call-preceded gadgets the attacker
// succeeds with probability 1/2^n (§7.3).
#ifndef KRX_SRC_PLUGIN_RA_DECOY_PASS_H_
#define KRX_SRC_PLUGIN_RA_DECOY_PASS_H_

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/ir/function.h"

namespace krx {

// Byte offset of the tripwire (the int3 opcode byte inside the phantom
// instruction's immediate field): [opcode][reg][imm64...] — the immediate's
// low byte sits at offset 2.
inline constexpr int32_t kTripwireByteOffset = 2;

struct DecoyStats {
  uint64_t call_sites = 0;
  uint64_t phantom_insts = 0;
  uint64_t variant_a_functions = 0;  // decoy stored below the return address
  uint64_t variant_b_functions = 0;
};

Status ApplyRaDecoyPass(Function& fn, Rng& rng, DecoyStats* stats);

}  // namespace krx

#endif  // KRX_SRC_PLUGIN_RA_DECOY_PASS_H_
