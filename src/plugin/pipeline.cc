#include "src/plugin/pipeline.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/base/math_util.h"
#include "src/kernel/assembler.h"
#include "src/kernel/layout.h"
#include "src/supervise/retry.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/verify/verifier.h"

namespace krx {
namespace {

// Times one named compile phase: a kCompilePhase trace event plus a
// per-phase wall-time histogram ("compile.phase_us.<name>", timing-tagged
// so deterministic snapshots omit it). Clock reads only when telemetry is
// live.
class CompilePhaseScope {
 public:
  explicit CompilePhaseScope(const char* name) : name_(name) {
#if !defined(KRX_TELEMETRY_DISABLED)
    if (telemetry::Mode() != 0) {
      t0_ = telemetry::TraceNowUs();
      live_ = true;
    }
#endif
  }
  ~CompilePhaseScope() {
#if !defined(KRX_TELEMETRY_DISABLED)
    if (!live_) {
      return;
    }
    const uint64_t us = telemetry::TraceNowUs() - t0_;
    telemetry::EmitEvent(telemetry::TraceEventType::kCompilePhase, name_, us, 0);
    if (telemetry::MetricsEnabled()) {
      telemetry::MetricsRegistry::Global()
          .GetHistogram(std::string("compile.phase_us.") + name_,
                        telemetry::LatencyBucketsUs(), /*timing=*/true)
          .Observe(us);
    }
#endif
  }
  CompilePhaseScope(const CompilePhaseScope&) = delete;
  CompilePhaseScope& operator=(const CompilePhaseScope&) = delete;

 private:
  const char* name_;
  uint64_t t0_ = 0;
  bool live_ = false;
};

// Check counts and elision rates of a finished build, published through the
// registry (krx_objdump --stats and every bench JSON read them from here).
void PublishCompileMetrics(const PipelineStats& s) {
#if defined(KRX_TELEMETRY_DISABLED)
  (void)s;
#else
  if (!telemetry::MetricsEnabled()) {
    return;
  }
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::Global();
  reg.GetCounter("compile.builds").Increment();
  reg.GetCounter("compile.verify_retries").Add(s.verify_retries);
  reg.GetCounter("compile.functions").Add(s.functions);
  reg.GetCounter("compile.instrumented_functions").Add(s.instrumented_functions);
  reg.GetCounter("compile.xkeys").Add(s.xkeys);
  reg.GetCounter("compile.sfi.read_sites").Add(s.sfi.read_sites);
  reg.GetCounter("compile.sfi.safe_reads").Add(s.sfi.safe_reads);
  reg.GetCounter("compile.sfi.rsp_reads").Add(s.sfi.rsp_reads);
  reg.GetCounter("compile.sfi.string_checks").Add(s.sfi.string_checks);
  reg.GetCounter("compile.sfi.checks_emitted").Add(s.sfi.checks_emitted);
  reg.GetCounter("compile.sfi.checks_coalesced").Add(s.sfi.checks_coalesced);
  reg.GetCounter("compile.sfi.checks_hoisted").Add(s.sfi.checks_hoisted);
  reg.GetCounter("compile.sfi.wrappers_kept").Add(s.sfi.wrappers_kept);
  reg.GetCounter("compile.sfi.wrappers_eliminated").Add(s.sfi.wrappers_eliminated);
  reg.GetCounter("compile.sfi.lea_kept").Add(s.sfi.lea_kept);
  reg.GetCounter("compile.sfi.lea_eliminated").Add(s.sfi.lea_eliminated);
  reg.GetCounter("compile.sfi.spec_barriers").Add(s.sfi.spec_barriers);
  reg.GetCounter("compile.sfi.spec_masks").Add(s.sfi.spec_masks);
#endif
}

// -1: consult the environment on first use; 0/1: explicit override.
int g_post_link_verify = -1;

// Test-only mutation applied to the linked image before verification.
std::function<void(KernelImage&, int)> g_post_link_mutator;

// Guard sizing: the .krx_phantom section must be larger than the maximum
// displacement of any uninstrumented %rsp-relative read (§5.1.2).
uint64_t GuardSizeFor(const std::vector<Function>& functions) {
  int64_t max_disp = 0;
  for (const Function& fn : functions) {
    for (const BasicBlock& b : fn.blocks()) {
      for (const Instruction& inst : b.insts) {
        if (inst.ReadsMemory() && !inst.IsString() && inst.mem.IsPlainRspAccess()) {
          max_disp = std::max(max_disp, inst.mem.disp);
        }
      }
    }
  }
  uint64_t need = static_cast<uint64_t>(std::max<int64_t>(max_disp, 0)) + 16;
  return AlignUp(std::max(need, kDefaultPhantomGuardSize), kPageSize);
}

// The default violation handler "appends a warning message to the kernel
// log and halts the system" (§5.1.2): it bumps krx_violation_count, stores
// a marker in the kernel log slot, and halts.
Function MakeDefaultKrxHandler(SymbolTable& symbols) {
  int32_t count_sym = symbols.Intern("krx_violation_count", SymbolKind::kData);
  int32_t log_sym = symbols.Intern("kernel_log", SymbolKind::kData);
  Function fn(kKrxHandlerName);
  int32_t b = fn.AddBlock();
  auto& insts = fn.block_by_id(b).insts;
  insts.push_back(Instruction::Load(Reg::kR11, MemOperand::RipRelSym(count_sym)));
  insts.push_back(Instruction::AddRI(Reg::kR11, 1));
  insts.push_back(Instruction::Store(MemOperand::RipRelSym(count_sym), Reg::kR11));
  insts.push_back(Instruction::MovRI(Reg::kR11, 0x6b52585f42554721));  // "BUG: kR^X" marker
  insts.push_back(Instruction::Store(MemOperand::RipRelSym(log_sym), Reg::kR11));
  insts.push_back(Instruction::Hlt());
  return fn;
}

// Adds the handler's data objects if the source does not already carry them.
void EnsureHandlerData(KernelSource& source) {
  auto have = [&](const char* name) {
    for (const DataObject& obj : source.data_objects) {
      if (obj.name == name) {
        return true;
      }
    }
    return false;
  };
  if (!have("krx_violation_count")) {
    DataObject count;
    count.name = "krx_violation_count";
    count.kind = SectionKind::kData;
    count.bytes.assign(8, 0);
    source.data_objects.push_back(std::move(count));
  }
  if (!have("kernel_log")) {
    DataObject log;
    log.name = "kernel_log";
    log.kind = SectionKind::kData;
    log.bytes.assign(64, 0);
    source.data_objects.push_back(std::move(log));
  }
}

}  // namespace

bool PostLinkVerifyEnabled() {
  if (g_post_link_verify < 0) {
    const char* env = std::getenv("KRX_POST_LINK_VERIFY");
    g_post_link_verify = (env != nullptr && env[0] == '1') ? 1 : 0;
  }
  return g_post_link_verify == 1;
}

void SetPostLinkVerify(bool enabled) { g_post_link_verify = enabled ? 1 : 0; }

void SetPostLinkMutatorForTest(std::function<void(KernelImage&, int attempt)> mutator) {
  g_post_link_mutator = std::move(mutator);
}

int64_t ComputeEdata(uint64_t phantom_guard_size) {
  return static_cast<int64_t>(kKrxCodeBase - phantom_guard_size);
}

uint64_t LinkArtifacts::ApproxBytes() const {
  uint64_t total = 0;
  if (pristine != nullptr) {
    total += pristine->bytes.size();
    total += pristine->relocs.size() * sizeof(Reloc);
    for (const AssembledFunction& fn : pristine->functions) {
      total += sizeof(AssembledFunction) + fn.name.size();
    }
  }
  total += xkeys.size() + xkey_symbols.size() * sizeof(xkey_symbols[0]);
  for (const DataObject& obj : data_objects) {
    total += sizeof(DataObject) + obj.name.size() + obj.bytes.size() +
             obj.pointer_slots.size() * sizeof(DataObject::PtrInit);
  }
  total += pending_ptr_sites.size() * sizeof(RerandMap::PendingPtrSite);
  for (size_t i = 0; i < symbols.size(); ++i) {
    total += sizeof(Symbol) + symbols.at(static_cast<int32_t>(i)).name.size();
  }
  return total;
}

Status ApplyProtection(std::vector<Function>& functions, SymbolTable& symbols,
                       const ProtectionConfig& config, int64_t edata_imm, XkeyLayout* xkeys,
                       PipelineStats* stats, Rng& rng) {
  int32_t handler_sym = symbols.Intern(kKrxHandlerName, SymbolKind::kFunction);
  // O4 callee-clobber summaries, computed over the pristine IR before any
  // function is mutated. Only armed when no later pass can invalidate them:
  // register randomization renames the registers the summaries speak about,
  // RA protection and diversification insert extra register traffic into
  // callees, and spec hardening rewrites the checks themselves — under any
  // of those ApplySfiPass keeps the conservative kill-everything-at-calls
  // rule. The post-link verifier independently recomputes the masks from
  // the final bytes (src/verify/confinement.cc), so this is never trusted.
  CalleeClobberSummary callee_clobbers;
  const bool use_clobbers = config.sfi == SfiLevel::kO4 && config.ra == RaScheme::kNone &&
                            !config.randomize_registers && !config.diversify &&
                            config.spec == SpecMitigation::kNone;
  if (use_clobbers) {
    callee_clobbers = ComputeCalleeClobbers(functions, [&symbols](const std::string& name) {
      return symbols.Intern(name, SymbolKind::kFunction);
    });
  }
  for (Function& fn : functions) {
    ++stats->functions;
    if (fn.name() == kKrxHandlerName) {
      continue;  // The violation handler stays pristine.
    }
    // Exempt functions model hand-written assembly: the plugins operate on
    // RTL and "cannot handle assembly code" (§6), so exempt routines skip
    // *every* pass — range checks, return-address protection and
    // diversification alike (the ftrace/kprobes clones, context-switch
    // stubs, ...).
    const bool exempt = config.exempt_functions.count(fn.name()) > 0;
    if (exempt) {
      continue;
    }
    if (config.HasRangeChecks() || config.mpx) {
      SfiStats fn_stats;
      KRX_RETURN_IF_ERROR(ApplySfiPass(fn, config, handler_sym, edata_imm, &fn_stats,
                                       use_clobbers ? &callee_clobbers : nullptr));
      stats->sfi.Accumulate(fn_stats);
      stats->per_function.emplace_back(fn.name(), fn_stats);
      ++stats->instrumented_functions;
    }
    switch (config.ra) {
      case RaScheme::kNone:
        break;
      case RaScheme::kEncrypt:
        KRX_RETURN_IF_ERROR(ApplyRaEncryptPass(fn, symbols, xkeys));
        break;
      case RaScheme::kDecoy:
        KRX_RETURN_IF_ERROR(ApplyRaDecoyPass(fn, rng, &stats->decoy));
        break;
    }
    if (config.randomize_registers) {
      KRX_RETURN_IF_ERROR(ApplyRegRandPass(fn, rng, &stats->reg_rand));
    }
    if (config.diversify) {
      KRX_RETURN_IF_ERROR(ApplyKaslrPass(fn, config.entropy_bits_k, rng, &stats->kaslr));
    }
  }
  stats->xkeys = xkeys->symbol_offsets.size();
  return Status::Ok();
}

namespace {

// Prefix of the status message a post-link verification failure carries;
// the retry loop in CompileKernel keys off it (only verify failures are
// retryable — assembler/linker errors are deterministic and final).
constexpr const char* kVerifyFailurePrefix = "post-link verification failed";

Result<CompiledKernel> CompileKernelAttempt(KernelSource source, const ProtectionConfig& config,
                                            LayoutKind layout, bool verify, int attempt) {
  if ((config.HasRangeChecks() || config.mpx) && layout != LayoutKind::kKrx) {
    return InvalidArgumentError(
        "R^X enforcement requires the kR^X-KAS layout (disjoint code/data regions)");
  }

  Rng rng(config.seed);
  CompiledKernel out;
  out.config = config;
  out.layout = layout;

  KRX_TRACE_SPAN_SCOPED("compile");

  uint64_t guard = 0;
  XkeyLayout xkeys;
  {
    CompilePhaseScope phase("protect");

    // Ensure a violation handler exists.
    bool has_handler = false;
    for (const Function& fn : source.functions) {
      if (fn.name() == kKrxHandlerName) {
        has_handler = true;
      }
    }
    if (!has_handler) {
      EnsureHandlerData(source);
      source.functions.push_back(MakeDefaultKrxHandler(source.symbols));
    }

    guard = GuardSizeFor(source.functions);
    out.stats.phantom_guard_size = guard;

    KRX_RETURN_IF_ERROR(ApplyProtection(source.functions, source.symbols, config,
                                        ComputeEdata(guard), &xkeys, &out.stats, rng));

    // Function permutation (section-level fine-grained KASLR).
    if (config.diversify) {
      rng.Shuffle(source.functions);
    }
  }
  const int64_t edata = ComputeEdata(guard);

  Assembler assembler;
  KernelLinkInput link;
  {
    CompilePhaseScope phase("assemble");
    for (const Function& fn : source.functions) {
      KRX_RETURN_IF_ERROR(assembler.Assemble(fn, &link.text));
    }
  }
  link.xkeys.assign(xkeys.size_bytes, 0);
  link.xkey_symbols = xkeys.symbol_offsets;
  link.data_objects = std::move(source.data_objects);
  link.phantom_guard_size = guard;
  link.phys_bytes = source.phys_bytes;
  if (config.coarse_kaslr) {
    // Up to 64MB of page-aligned slide, as coarse KASLR provides.
    link.kaslr_slide = rng.NextBelow(1ULL << 14) << kPageShift;
  }

  // Live re-randomization metadata and the CoW handoff: LinkKernel relocates
  // the blob and consumes the data objects, so the pristine bytes, the
  // pointer-slot descriptors, and the pre-link inputs a tenant
  // materialization re-links from must all be captured now (resolved against
  // the linked image below, once addresses exist). The pristine blob is
  // allocated shared once and aliased by both the RerandMap and the
  // artifacts — tenants later alias the same object, never copy it.
  {
    auto artifacts = std::make_shared<LinkArtifacts>();
    artifacts->pristine = std::make_shared<const TextBlob>(link.text);
    artifacts->xkeys = link.xkeys;
    artifacts->xkey_symbols = link.xkey_symbols;
    artifacts->data_objects = link.data_objects;
    artifacts->symbols = source.symbols;
    artifacts->phantom_guard_size = guard;
    artifacts->phys_bytes = link.phys_bytes;
    out.rerand = std::make_shared<RerandMap>();
    out.rerand->pristine = artifacts->pristine;
    for (const DataObject& obj : link.data_objects) {
      for (const DataObject::PtrInit& p : obj.pointer_slots) {
        out.rerand->pending_ptr_sites.push_back({obj.name, p.offset, p.symbol, p.addend});
      }
    }
    artifacts->pending_ptr_sites = out.rerand->pending_ptr_sites;
    out.artifacts = std::move(artifacts);
  }

  auto image = [&] {
    CompilePhaseScope phase("link");
    return LinkKernel(layout, std::move(link), std::move(source.symbols));
  }();
  if (!image.ok()) {
    return image.status();
  }
  out.image = std::move(*image);

  if (layout == LayoutKind::kKrx) {
    KRX_CHECK(out.image->krx_edata() == static_cast<uint64_t>(edata));
  }

  {
    CompilePhaseScope phase("finalize");
    Rng key_rng = rng.Fork();
    KRX_RETURN_IF_ERROR(out.image->ReplenishXkeys(key_rng));
    KRX_RETURN_IF_ERROR(out.rerand->Finalize(*out.image));
  }

  if (g_post_link_mutator) {
    g_post_link_mutator(*out.image, attempt);
  }

  // Independent post-link check of the just-built artifact: the verifier
  // re-proves from the assembled bytes what the passes claim by
  // construction (SFI-verifier discipline — see src/verify/).
  if (verify) {
    CompilePhaseScope phase("verify");
    VerifyOptions vopts = VerifyOptions::ForConfig(config);
    if (vopts.AnyChecks()) {
      VerifyReport report = VerifyImage(*out.image, vopts);
      if (!report.ok()) {
        return InternalError(std::string(kVerifyFailurePrefix) + ":\n" + report.Summary(8));
      }
    }
  }
  return out;
}

}  // namespace

Result<CompiledKernel> CompileKernel(KernelSource source, const BuildOptions& options) {
  ProtectionConfig base_config = options.config;
  if (options.seed != 0) {
    base_config.seed = options.seed;
  }
  const bool verify = options.verify == BuildOptions::Verify::kDefault
                          ? PostLinkVerifyEnabled()
                          : options.verify == BuildOptions::Verify::kOn;
  // Retry with the next diversification seed: for randomized builds a
  // verify failure is a bad draw, not a dead end. Only verify failures are
  // transient — pass/link/layout errors surface immediately.
  RetryPolicy policy;
  policy.max_attempts = options.max_verify_retries + 1;
  policy.retry_if = [](const Status& s) {
    const std::string& message = s.message();
    return message.compare(0, std::string(kVerifyFailurePrefix).size(), kVerifyFailurePrefix) ==
           0;
  };
  Retrier retrier("compile_verify", policy);
  return retrier.Run<CompiledKernel>([&](int attempt) -> Result<CompiledKernel> {
    ProtectionConfig attempt_config = base_config;
    if (attempt > 0) {
      const uint64_t failed_seed =
          attempt == 1 ? base_config.seed
                       : base_config.seed + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(attempt - 1);
      attempt_config.seed =
          base_config.seed + 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(attempt);
      std::fprintf(stderr,
                   "[krx] post-link verify failed (attempt %d, seed 0x%llx); "
                   "retrying with seed 0x%llx\n",
                   attempt - 1, static_cast<unsigned long long>(failed_seed),
                   static_cast<unsigned long long>(attempt_config.seed));
    }
    auto built = CompileKernelAttempt(source, attempt_config, options.layout, verify, attempt);
    if (built.ok()) {
      built->stats.verify_retries = static_cast<uint64_t>(attempt);
      PublishCompileMetrics(built->stats);
    }
    return built;
  });
}

Result<ModuleObject> CompileModule(const std::string& name, std::vector<Function> functions,
                                   std::vector<DataObject> data_objects, SymbolTable& symbols,
                                   const ProtectionConfig& config) {
  Rng rng(config.seed ^ 0x6d6f64);  // per-module stream
  PipelineStats stats;
  XkeyLayout xkeys;
  const int64_t edata = ComputeEdata(kDefaultPhantomGuardSize);
  KRX_RETURN_IF_ERROR(
      ApplyProtection(functions, symbols, config, edata, &xkeys, &stats, rng));
  if (config.diversify) {
    rng.Shuffle(functions);
  }
  ModuleObject mod;
  mod.name = name;
  Assembler assembler;
  for (const Function& fn : functions) {
    KRX_RETURN_IF_ERROR(assembler.Assemble(fn, &mod.text));
  }
  // Module-local xkeys ride at the tail of the module's .text: they must
  // live in the execute-only region, and a module owns no other memory
  // there. The loader fills them with random values at load time.
  if (xkeys.size_bytes > 0) {
    while (!IsAligned(mod.text.bytes.size(), 16)) {
      mod.text.bytes.push_back(kTextPadByte);
    }
    uint64_t base = mod.text.bytes.size();
    mod.text.bytes.resize(base + xkeys.size_bytes, 0);
    for (auto [sym, off] : xkeys.symbol_offsets) {
      mod.text_symbol_offsets.emplace_back(sym, base + off);
    }
    mod.xkey_bytes = xkeys.size_bytes;
  }
  mod.data_objects = std::move(data_objects);
  return mod;
}

}  // namespace krx
