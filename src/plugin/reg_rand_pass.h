// Register randomization — the complement §5.3 proposes for foiling
// call-preceded gadget chaining ("they can be easily complemented with a
// register randomization scheme [32, 87]").
//
// Each function gets a random permutation of the renameable register pool
// {rbx, r12, r13, r14, r15}: callee-saved registers that are never argument,
// return, string or instrumentation registers. Because the permutation is
// per-function, a call-preceded gadget's *semantics* (which registers it
// moves where) are no longer predictable even if its address leaks —
// exactly the property that undermines payloads stitched from leaked
// return sites.
//
// Contract: renamed registers carry no cross-function meaning (our kernel
// convention already treats every register except %rsp/%rax as clobbered by
// calls), and code must not read them before writing them except in
// save/restore pairs (push/pop of the same register is permutation
// invariant).
#ifndef KRX_SRC_PLUGIN_REG_RAND_PASS_H_
#define KRX_SRC_PLUGIN_REG_RAND_PASS_H_

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/ir/function.h"

namespace krx {

inline constexpr Reg kRenamePool[] = {Reg::kRbx, Reg::kR12, Reg::kR13, Reg::kR14, Reg::kR15};

struct RegRandStats {
  uint64_t functions_renamed = 0;
  uint64_t operands_rewritten = 0;
};

Status ApplyRegRandPass(Function& fn, Rng& rng, RegRandStats* stats);

}  // namespace krx

#endif  // KRX_SRC_PLUGIN_REG_RAND_PASS_H_
