#include "src/isa/instruction.h"

#include <cinttypes>
#include <cstdio>

namespace krx {
namespace {

void Add(Reg out[6], int* count, Reg r) {
  if (r == Reg::kNone) {
    return;
  }
  for (int i = 0; i < *count; ++i) {
    if (out[i] == r) {
      return;
    }
  }
  out[(*count)++] = r;
}

void AddMemRegs(Reg out[6], int* count, const MemOperand& mem) {
  Add(out, count, mem.base);
  Add(out, count, mem.index);
}

}  // namespace

void InstructionRegReads(const Instruction& inst, Reg out[6], int* count) {
  *count = 0;
  switch (inst.op) {
    case Opcode::kMovRR:
      Add(out, count, inst.r2);
      break;
    case Opcode::kMovRI:
      break;
    case Opcode::kLoad:
    case Opcode::kLea:
      AddMemRegs(out, count, inst.mem);
      break;
    case Opcode::kStore:
      Add(out, count, inst.r1);
      AddMemRegs(out, count, inst.mem);
      break;
    case Opcode::kStoreImm:
    case Opcode::kCmpMI:
    case Opcode::kBndcu:
    case Opcode::kJmpM:
    case Opcode::kCallM:
      AddMemRegs(out, count, inst.mem);
      break;
    case Opcode::kPushR:
      Add(out, count, inst.r1);
      Add(out, count, Reg::kRsp);
      break;
    case Opcode::kPopR:
    case Opcode::kPushfq:
    case Opcode::kPopfq:
      Add(out, count, Reg::kRsp);
      break;
    case Opcode::kAddRR:
    case Opcode::kSubRR:
    case Opcode::kAndRR:
    case Opcode::kOrRR:
    case Opcode::kXorRR:
    case Opcode::kImulRR:
    case Opcode::kCmpRR:
    case Opcode::kTestRR:
      Add(out, count, inst.r1);
      Add(out, count, inst.r2);
      break;
    case Opcode::kAddRI:
    case Opcode::kSubRI:
    case Opcode::kAndRI:
    case Opcode::kOrRI:
    case Opcode::kXorRI:
    case Opcode::kShlRI:
    case Opcode::kShrRI:
    case Opcode::kCmpRI:
    case Opcode::kMaskRI:
      Add(out, count, inst.r1);
      break;
    case Opcode::kAddRM:
    case Opcode::kCmpRM:
      Add(out, count, inst.r1);
      AddMemRegs(out, count, inst.mem);
      break;
    case Opcode::kXorMR:
      Add(out, count, inst.r1);
      AddMemRegs(out, count, inst.mem);
      break;
    case Opcode::kJmpR:
    case Opcode::kCallR:
      Add(out, count, inst.r1);
      break;
    case Opcode::kRet:
      Add(out, count, Reg::kRsp);
      break;
    case Opcode::kMovsq:
      Add(out, count, Reg::kRsi);
      Add(out, count, Reg::kRdi);
      break;
    case Opcode::kLodsq:
      Add(out, count, Reg::kRsi);
      break;
    case Opcode::kStosq:
      Add(out, count, Reg::kRdi);
      Add(out, count, Reg::kRax);
      break;
    case Opcode::kCmpsq:
      Add(out, count, Reg::kRsi);
      Add(out, count, Reg::kRdi);
      break;
    case Opcode::kScasq:
      Add(out, count, Reg::kRdi);
      Add(out, count, Reg::kRax);
      break;
    case Opcode::kWrmsr:
      Add(out, count, Reg::kRax);
      Add(out, count, Reg::kRdx);
      Add(out, count, Reg::kRcx);
      break;
    default:
      break;
  }
  if (inst.rep && inst.IsString()) {
    Add(out, count, Reg::kRcx);
  }
}

void InstructionRegWrites(const Instruction& inst, Reg out[6], int* count) {
  *count = 0;
  switch (inst.op) {
    case Opcode::kMovRR:
    case Opcode::kMovRI:
    case Opcode::kLoad:
    case Opcode::kLea:
    case Opcode::kAddRR:
    case Opcode::kAddRI:
    case Opcode::kSubRR:
    case Opcode::kSubRI:
    case Opcode::kAndRR:
    case Opcode::kAndRI:
    case Opcode::kOrRR:
    case Opcode::kOrRI:
    case Opcode::kXorRR:
    case Opcode::kXorRI:
    case Opcode::kShlRI:
    case Opcode::kShrRI:
    case Opcode::kImulRR:
    case Opcode::kAddRM:
    case Opcode::kMaskRI:
      Add(out, count, inst.r1);
      break;
    case Opcode::kPushR:
    case Opcode::kPushfq:
    case Opcode::kPopfq:
    case Opcode::kRet:
      Add(out, count, Reg::kRsp);
      break;
    case Opcode::kPopR:
      Add(out, count, inst.r1);
      Add(out, count, Reg::kRsp);
      break;
    case Opcode::kCallRel:
    case Opcode::kCallR:
    case Opcode::kCallM:
      Add(out, count, Reg::kRsp);
      break;
    case Opcode::kMovsq:
      Add(out, count, Reg::kRsi);
      Add(out, count, Reg::kRdi);
      break;
    case Opcode::kLodsq:
      Add(out, count, Reg::kRax);
      Add(out, count, Reg::kRsi);
      break;
    case Opcode::kStosq:
      Add(out, count, Reg::kRdi);
      break;
    case Opcode::kCmpsq:
      Add(out, count, Reg::kRsi);
      Add(out, count, Reg::kRdi);
      break;
    case Opcode::kScasq:
      Add(out, count, Reg::kRdi);
      break;
    default:
      break;
  }
  if (inst.rep && inst.IsString()) {
    Add(out, count, Reg::kRcx);
  }
}

std::string FormatMemOperand(const MemOperand& mem) {
  char buf[96];
  if (mem.rip_relative) {
    if (mem.symbol >= 0) {
      std::snprintf(buf, sizeof(buf), "sym%d(%%rip)", mem.symbol);
    } else {
      std::snprintf(buf, sizeof(buf), "%" PRId64 "(%%rip)", mem.disp);
    }
    return buf;
  }
  if (mem.is_absolute()) {
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, static_cast<uint64_t>(mem.disp));
    return buf;
  }
  std::string out;
  if (mem.disp != 0) {
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, static_cast<uint64_t>(mem.disp));
    out += buf;
  }
  out += "(";
  if (mem.has_base()) {
    out += "%";
    out += RegName(mem.base);
  }
  if (mem.has_index()) {
    out += ",%";
    out += RegName(mem.index);
    std::snprintf(buf, sizeof(buf), ",%u", mem.scale);
    out += buf;
  }
  out += ")";
  return out;
}

std::string FormatInstruction(const Instruction& inst) {
  char buf[160];
  const char* name = OpcodeName(inst.op);
  std::string rep_prefix = inst.rep ? "rep " : "";
  switch (inst.op) {
    case Opcode::kNop:
    case Opcode::kHlt:
    case Opcode::kInt3:
    case Opcode::kUd2:
    case Opcode::kPushfq:
    case Opcode::kPopfq:
    case Opcode::kRet:
    case Opcode::kSyscall:
    case Opcode::kSysret:
    case Opcode::kWrmsr:
    case Opcode::kSpecFence:
      return std::string(name);
    case Opcode::kMovRR:
    case Opcode::kAddRR:
    case Opcode::kSubRR:
    case Opcode::kAndRR:
    case Opcode::kOrRR:
    case Opcode::kXorRR:
    case Opcode::kImulRR:
    case Opcode::kCmpRR:
    case Opcode::kTestRR:
      std::snprintf(buf, sizeof(buf), "%s %%%s,%%%s", name, RegName(inst.r2), RegName(inst.r1));
      return buf;
    case Opcode::kMovRI:
    case Opcode::kAddRI:
    case Opcode::kSubRI:
    case Opcode::kAndRI:
    case Opcode::kOrRI:
    case Opcode::kXorRI:
    case Opcode::kShlRI:
    case Opcode::kShrRI:
    case Opcode::kCmpRI:
    case Opcode::kMaskRI:
      std::snprintf(buf, sizeof(buf), "%s $0x%" PRIx64 ",%%%s", name,
                    static_cast<uint64_t>(inst.imm), RegName(inst.r1));
      return buf;
    case Opcode::kLoad:
    case Opcode::kAddRM:
    case Opcode::kCmpRM:
    case Opcode::kLea:
      std::snprintf(buf, sizeof(buf), "%s %s,%%%s", name, FormatMemOperand(inst.mem).c_str(),
                    RegName(inst.r1));
      return buf;
    case Opcode::kStore:
    case Opcode::kXorMR:
      std::snprintf(buf, sizeof(buf), "%s %%%s,%s", name, RegName(inst.r1),
                    FormatMemOperand(inst.mem).c_str());
      return buf;
    case Opcode::kStoreImm:
    case Opcode::kCmpMI:
      std::snprintf(buf, sizeof(buf), "%s $0x%" PRIx64 ",%s", name,
                    static_cast<uint64_t>(inst.imm), FormatMemOperand(inst.mem).c_str());
      return buf;
    case Opcode::kPushR:
    case Opcode::kPopR:
    case Opcode::kJmpR:
    case Opcode::kCallR:
      std::snprintf(buf, sizeof(buf), "%s %%%s", name, RegName(inst.r1));
      return buf;
    case Opcode::kJmpM:
    case Opcode::kCallM:
      std::snprintf(buf, sizeof(buf), "%s %s", name, FormatMemOperand(inst.mem).c_str());
      return buf;
    case Opcode::kJmpRel:
      if (inst.target_block >= 0) {
        std::snprintf(buf, sizeof(buf), "jmp .B%d", inst.target_block);
      } else if (inst.target_symbol >= 0) {
        std::snprintf(buf, sizeof(buf), "jmp sym%d", inst.target_symbol);
      } else {
        std::snprintf(buf, sizeof(buf), "jmp %+" PRId64, inst.imm);
      }
      return buf;
    case Opcode::kJcc:
      if (inst.target_block >= 0) {
        std::snprintf(buf, sizeof(buf), "j%s .B%d", CondName(inst.cond), inst.target_block);
      } else {
        std::snprintf(buf, sizeof(buf), "j%s %+" PRId64, CondName(inst.cond), inst.imm);
      }
      return buf;
    case Opcode::kCallRel:
      if (inst.target_symbol >= 0) {
        std::snprintf(buf, sizeof(buf), "callq sym%d", inst.target_symbol);
      } else {
        std::snprintf(buf, sizeof(buf), "callq %+" PRId64, inst.imm);
      }
      return buf;
    case Opcode::kMovsq:
    case Opcode::kLodsq:
    case Opcode::kStosq:
    case Opcode::kCmpsq:
    case Opcode::kScasq:
      return rep_prefix + name;
    case Opcode::kBndcu:
      std::snprintf(buf, sizeof(buf), "bndcu %s,%%bnd0", FormatMemOperand(inst.mem).c_str());
      return buf;
    case Opcode::kLoadBnd0:
      std::snprintf(buf, sizeof(buf), "bndmov $0x%" PRIx64 ",%%bnd0",
                    static_cast<uint64_t>(inst.imm));
      return buf;
    case Opcode::kNumOpcodes:
      break;
  }
  return "??";
}

}  // namespace krx
