// General-purpose register file of the krx64 simulated ISA.
//
// krx64 mirrors the x86-64 integer register file. The reproduction follows
// the paper's register conventions:
//   - %r11 is the scratch register used by kR^X-SFI range checks (lea target)
//     and by return-address encryption (xkey staging).
//   - %r10 is the predetermined scratch register through which call sites
//     pass the tripwire address under the return-address decoy scheme.
//   - %rsp-based reads with plain base+displacement addressing are exempt
//     from range checks (guarded by the .krx_phantom section instead).
//   - string instructions read through %rsi (scas through %rdi).
#ifndef KRX_SRC_ISA_REGISTER_H_
#define KRX_SRC_ISA_REGISTER_H_

#include <cstdint>

namespace krx {

enum class Reg : uint8_t {
  kRax = 0,
  kRcx = 1,
  kRdx = 2,
  kRbx = 3,
  kRsp = 4,
  kRbp = 5,
  kRsi = 6,
  kRdi = 7,
  kR8 = 8,
  kR9 = 9,
  kR10 = 10,
  kR11 = 11,
  kR12 = 12,
  kR13 = 13,
  kR14 = 14,
  kR15 = 15,
  kNone = 0xFF,
};

inline constexpr int kNumGpRegs = 16;

// Scratch registers reserved by the instrumentation (see file comment).
inline constexpr Reg kRangeCheckScratch = Reg::kR11;
inline constexpr Reg kDecoyScratch = Reg::kR10;

inline constexpr uint8_t RegIndex(Reg r) { return static_cast<uint8_t>(r); }

inline constexpr bool IsGpReg(Reg r) { return RegIndex(r) < kNumGpRegs; }

const char* RegName(Reg r);

}  // namespace krx

#endif  // KRX_SRC_ISA_REGISTER_H_
