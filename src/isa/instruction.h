// krx64 instruction representation.
//
// A single Instruction struct serves both as the RTL-level IR node that the
// kR^X passes rewrite (carrying symbolic branch/symbol targets and
// provenance flags) and as the unit the assembler encodes to bytes. This
// mirrors the paper's implementation point: the GCC plugins operate on RTL,
// i.e. on near-machine instructions.
#ifndef KRX_SRC_ISA_INSTRUCTION_H_
#define KRX_SRC_ISA_INSTRUCTION_H_

#include <cstdint>
#include <string>

#include "src/isa/opcode.h"
#include "src/isa/register.h"

namespace krx {

// Memory operand: [base + index*scale + disp], or rip-relative
// [%rip + disp], or absolute [disp]. `symbol` (when >= 0) marks an
// assembler-resolved reference whose displacement is patched at link time.
struct MemOperand {
  Reg base = Reg::kNone;
  Reg index = Reg::kNone;
  uint8_t scale = 1;  // 1, 2, 4 or 8
  int64_t disp = 0;
  bool rip_relative = false;
  int32_t symbol = -1;

  bool has_base() const { return base != Reg::kNone; }
  bool has_index() const { return index != Reg::kNone; }
  bool is_absolute() const { return !has_base() && !has_index() && !rip_relative; }

  // "Safe read" in the paper's sense (§5.1.2): the effective address is
  // fully encoded in the instruction and cannot be influenced at runtime.
  bool IsSafeAddress() const { return rip_relative || is_absolute(); }

  // Plain (%rsp) or disp(%rsp) access: exempt from range checks, guarded by
  // the .krx_phantom section instead (§5.1.2 "Stack Reads").
  bool IsPlainRspAccess() const { return base == Reg::kRsp && !has_index(); }

  static MemOperand Base(Reg b, int64_t d = 0) { return MemOperand{b, Reg::kNone, 1, d, false, -1}; }
  static MemOperand BaseIndex(Reg b, Reg i, uint8_t s, int64_t d = 0) {
    return MemOperand{b, i, s, d, false, -1};
  }
  static MemOperand RipRel(int64_t d) { return MemOperand{Reg::kNone, Reg::kNone, 1, d, true, -1}; }
  static MemOperand RipRelSym(int32_t sym) {
    return MemOperand{Reg::kNone, Reg::kNone, 1, 0, true, sym};
  }
  static MemOperand Absolute(int64_t addr) {
    return MemOperand{Reg::kNone, Reg::kNone, 1, addr, false, -1};
  }

  bool operator==(const MemOperand& o) const = default;
};

// Provenance of an instruction: which tool emitted it. Used by the
// statistics reporting and by tests asserting that phantom code is never
// executed on benign paths.
enum class InstOrigin : uint8_t {
  kOriginal = 0,     // kernel code as compiled
  kRangeCheck,       // kR^X-SFI / kR^X-MPX range check
  kDiversifier,      // connector jmps inserted by code block permutation
  kPhantomBlock,     // int3 padding blocks
  kPhantomInst,      // decoy-scheme phantom instruction (embedded tripwire)
  kRaProtection,     // return-address encryption / decoy instrumentation
};

struct Instruction {
  Opcode op = Opcode::kNop;
  Cond cond = Cond::kE;
  Reg r1 = Reg::kNone;
  Reg r2 = Reg::kNone;
  int64_t imm = 0;
  MemOperand mem;
  bool rep = false;

  // IR-level operands: intra-function branch target (block id) and
  // inter-object symbol target (symbol table index). Exactly one of these is
  // meaningful for branch/call instructions before assembly; after assembly
  // the encoded rel32 takes over.
  int32_t target_block = -1;
  int32_t target_symbol = -1;

  // Instruction-level local labels, used by the return-address decoy scheme:
  // `inst_label` names this instruction; a rip-relative mem operand with
  // `mem_label >= 0` resolves to (address of the instruction carrying that
  // label) + mem_label_byte_off. Labels travel with the instruction across
  // code-block slicing and permutation.
  int32_t inst_label = -1;
  int32_t mem_label = -1;
  int32_t mem_label_byte_off = 0;

  InstOrigin origin = InstOrigin::kOriginal;

  // ---- Factories ----
  static Instruction Nop() { return Op(Opcode::kNop); }
  static Instruction Hlt() { return Op(Opcode::kHlt); }
  static Instruction Int3() { return Op(Opcode::kInt3); }
  static Instruction Ud2() { return Op(Opcode::kUd2); }

  static Instruction MovRR(Reg dst, Reg src) { return RR(Opcode::kMovRR, dst, src); }
  static Instruction MovRI(Reg dst, int64_t v) { return RI(Opcode::kMovRI, dst, v); }
  static Instruction Load(Reg dst, MemOperand m) { return RM(Opcode::kLoad, dst, m); }
  static Instruction Store(MemOperand m, Reg src) { return RM(Opcode::kStore, src, m); }
  static Instruction StoreImm(MemOperand m, int64_t v) {
    Instruction i = Op(Opcode::kStoreImm);
    i.mem = m;
    i.imm = v;
    return i;
  }
  static Instruction Lea(Reg dst, MemOperand m) { return RM(Opcode::kLea, dst, m); }
  static Instruction PushR(Reg r) { return R(Opcode::kPushR, r); }
  static Instruction PopR(Reg r) { return R(Opcode::kPopR, r); }
  static Instruction Pushfq() { return Op(Opcode::kPushfq); }
  static Instruction Popfq() { return Op(Opcode::kPopfq); }

  static Instruction AddRR(Reg d, Reg s) { return RR(Opcode::kAddRR, d, s); }
  static Instruction AddRI(Reg d, int64_t v) { return RI(Opcode::kAddRI, d, v); }
  static Instruction SubRR(Reg d, Reg s) { return RR(Opcode::kSubRR, d, s); }
  static Instruction SubRI(Reg d, int64_t v) { return RI(Opcode::kSubRI, d, v); }
  static Instruction AndRR(Reg d, Reg s) { return RR(Opcode::kAndRR, d, s); }
  static Instruction AndRI(Reg d, int64_t v) { return RI(Opcode::kAndRI, d, v); }
  static Instruction OrRR(Reg d, Reg s) { return RR(Opcode::kOrRR, d, s); }
  static Instruction OrRI(Reg d, int64_t v) { return RI(Opcode::kOrRI, d, v); }
  static Instruction XorRR(Reg d, Reg s) { return RR(Opcode::kXorRR, d, s); }
  static Instruction XorRI(Reg d, int64_t v) { return RI(Opcode::kXorRI, d, v); }
  static Instruction ShlRI(Reg d, int64_t v) { return RI(Opcode::kShlRI, d, v); }
  static Instruction ShrRI(Reg d, int64_t v) { return RI(Opcode::kShrRI, d, v); }
  static Instruction ImulRR(Reg d, Reg s) { return RR(Opcode::kImulRR, d, s); }
  static Instruction CmpRR(Reg a, Reg b) { return RR(Opcode::kCmpRR, a, b); }
  static Instruction CmpRI(Reg a, int64_t v) { return RI(Opcode::kCmpRI, a, v); }
  static Instruction TestRR(Reg a, Reg b) { return RR(Opcode::kTestRR, a, b); }

  static Instruction AddRM(Reg d, MemOperand m) { return RM(Opcode::kAddRM, d, m); }
  static Instruction CmpRM(Reg a, MemOperand m) { return RM(Opcode::kCmpRM, a, m); }
  static Instruction CmpMI(MemOperand m, int64_t v) {
    Instruction i = Op(Opcode::kCmpMI);
    i.mem = m;
    i.imm = v;
    return i;
  }
  static Instruction XorMR(MemOperand m, Reg s) { return RM(Opcode::kXorMR, s, m); }

  static Instruction JmpBlock(int32_t block) {
    Instruction i = Op(Opcode::kJmpRel);
    i.target_block = block;
    return i;
  }
  static Instruction JccBlock(Cond c, int32_t block) {
    Instruction i = Op(Opcode::kJcc);
    i.cond = c;
    i.target_block = block;
    return i;
  }
  static Instruction JmpSym(int32_t sym) {  // tail call / cross-function jump
    Instruction i = Op(Opcode::kJmpRel);
    i.target_symbol = sym;
    return i;
  }
  static Instruction JmpR(Reg r) { return R(Opcode::kJmpR, r); }
  static Instruction JmpM(MemOperand m) {
    Instruction i = Op(Opcode::kJmpM);
    i.mem = m;
    return i;
  }
  static Instruction CallSym(int32_t sym) {
    Instruction i = Op(Opcode::kCallRel);
    i.target_symbol = sym;
    return i;
  }
  static Instruction CallR(Reg r) { return R(Opcode::kCallR, r); }
  static Instruction CallM(MemOperand m) {
    Instruction i = Op(Opcode::kCallM);
    i.mem = m;
    return i;
  }
  static Instruction Ret() { return Op(Opcode::kRet); }

  static Instruction Movsq(bool rep_prefix = false) { return Str(Opcode::kMovsq, rep_prefix); }
  static Instruction Lodsq(bool rep_prefix = false) { return Str(Opcode::kLodsq, rep_prefix); }
  static Instruction Stosq(bool rep_prefix = false) { return Str(Opcode::kStosq, rep_prefix); }
  static Instruction Cmpsq(bool rep_prefix = false) { return Str(Opcode::kCmpsq, rep_prefix); }
  static Instruction Scasq(bool rep_prefix = false) { return Str(Opcode::kScasq, rep_prefix); }

  static Instruction Bndcu(MemOperand m) {
    Instruction i = Op(Opcode::kBndcu);
    i.mem = m;
    return i;
  }
  static Instruction LoadBnd0(int64_t ub) { return RI(Opcode::kLoadBnd0, Reg::kNone, ub); }

  static Instruction Syscall() { return Op(Opcode::kSyscall); }
  static Instruction Sysret() { return Op(Opcode::kSysret); }
  static Instruction Wrmsr() { return Op(Opcode::kWrmsr); }

  static Instruction SpecFence() { return Op(Opcode::kSpecFence); }
  // Branchless clamp: r <- (r >u limit) ? 0 : r. Writes no flags.
  static Instruction MaskRI(Reg r, int64_t limit) { return RI(Opcode::kMaskRI, r, limit); }

  // ---- Instance-level properties ----

  bool ReadsMemory() const { return OpcodeReadsMemory(op); }
  bool WritesMemory() const { return OpcodeWritesMemory(op); }
  bool WritesFlags() const { return OpcodeWritesFlags(op); }
  bool ReadsFlags() const {
    if (OpcodeReadsFlags(op)) {
      return true;
    }
    // rep cmps/scas consult ZF for loop termination.
    return rep && (op == Opcode::kCmpsq || op == Opcode::kScasq);
  }
  bool IsTerminator() const { return OpcodeIsTerminator(op); }
  bool IsCall() const { return OpcodeIsCall(op); }
  bool IsString() const { return OpcodeIsString(op); }
  bool IsRangeCheck() const { return origin == InstOrigin::kRangeCheck; }

  // For string reads: the register the paper's scheme range-checks (%rsi,
  // except scas which reads through %rdi). kNone for non-string opcodes.
  Reg StringReadBase() const {
    switch (op) {
      case Opcode::kMovsq:
      case Opcode::kLodsq:
      case Opcode::kCmpsq:
        return Reg::kRsi;
      case Opcode::kScasq:
        return Reg::kRdi;
      default:
        return Reg::kNone;
    }
  }

  // True if this instruction's data-memory read goes through an explicit
  // MemOperand (vs. the implicit string-op registers).
  bool HasExplicitMemRead() const { return ReadsMemory() && !IsString(); }

  bool operator==(const Instruction& o) const {
    return op == o.op && cond == o.cond && r1 == o.r1 && r2 == o.r2 && imm == o.imm &&
           mem == o.mem && rep == o.rep && target_block == o.target_block &&
           target_symbol == o.target_symbol;
  }

 private:
  static Instruction Op(Opcode o) {
    Instruction i;
    i.op = o;
    return i;
  }
  static Instruction R(Opcode o, Reg r) {
    Instruction i = Op(o);
    i.r1 = r;
    return i;
  }
  static Instruction RR(Opcode o, Reg a, Reg b) {
    Instruction i = Op(o);
    i.r1 = a;
    i.r2 = b;
    return i;
  }
  static Instruction RI(Opcode o, Reg a, int64_t v) {
    Instruction i = Op(o);
    i.r1 = a;
    i.imm = v;
    return i;
  }
  static Instruction RM(Opcode o, Reg a, MemOperand m) {
    Instruction i = Op(o);
    i.r1 = a;
    i.mem = m;
    return i;
  }
  static Instruction Str(Opcode o, bool rep_prefix) {
    Instruction i = Op(o);
    i.rep = rep_prefix;
    return i;
  }
};

// Registers read / written by an instruction (excluding %rflags, which has
// its own queries, and %rip). Results are appended to `out`.
void InstructionRegReads(const Instruction& inst, Reg out[6], int* count);
void InstructionRegWrites(const Instruction& inst, Reg out[6], int* count);

// AT&T-flavoured rendering, e.g. "mov 0x140(%rsi),%rcx".
std::string FormatInstruction(const Instruction& inst);
std::string FormatMemOperand(const MemOperand& mem);

}  // namespace krx

#endif  // KRX_SRC_ISA_INSTRUCTION_H_
