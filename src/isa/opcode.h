// Opcodes and condition codes of the krx64 simulated ISA.
//
// The opcode set is the subset of x86-64 that the kR^X paper's
// transformations manipulate or generate: general data movement, the ALU
// operations that define %rflags, pushfq/popfq, string operations, control
// transfer (direct/indirect call/jmp, conditional jumps, ret), int3
// tripwires, and the MPX bndcu bounds check.
#ifndef KRX_SRC_ISA_OPCODE_H_
#define KRX_SRC_ISA_OPCODE_H_

#include <cstdint>

namespace krx {

enum class Opcode : uint8_t {
  // Miscellaneous.
  kNop = 0,
  kHlt,
  kInt3,   // Tripwire: raises #BR-class exception when executed.
  kUd2,    // Invalid opcode: raises #UD.

  // Data movement.
  kMovRR,     // r1 <- r2
  kMovRI,     // r1 <- imm64
  kLoad,      // r1 <- [mem]                 (memory read)
  kStore,     // [mem] <- r1
  kStoreImm,  // [mem] <- imm32 (sign-extended)
  kLea,       // r1 <- effective_address(mem)
  kPushR,     // push r1
  kPopR,      // pop r1
  kPushfq,    // push %rflags
  kPopfq,     // pop %rflags

  // ALU, register/immediate operands.
  kAddRR,
  kAddRI,
  kSubRR,
  kSubRI,
  kAndRR,
  kAndRI,
  kOrRR,
  kOrRI,
  kXorRR,
  kXorRI,
  kShlRI,
  kShrRI,
  kImulRR,
  kCmpRR,
  kCmpRI,
  kTestRR,

  // ALU involving memory.
  kAddRM,   // r1 += [mem]                   (memory read)
  kCmpRM,   // flags(r1 - [mem])             (memory read)
  kCmpMI,   // flags([mem] - imm32)          (memory read)
  kXorMR,   // [mem] ^= r1                   (memory read + write)

  // Control transfer.
  kJmpRel,   // unconditional, label/rel32
  kJcc,      // conditional, label/rel32
  kJmpR,     // indirect through register
  kJmpM,     // indirect through memory      (memory read)
  kCallRel,  // direct call, symbol/rel32
  kCallR,    // indirect call through register
  kCallM,    // indirect call through memory (memory read)
  kRet,

  // String operations (quadword granularity; optionally rep-prefixed).
  kMovsq,  // [rdi] <- [rsi]; rsi,rdi advance    (memory read via %rsi)
  kLodsq,  // rax <- [rsi]; rsi advances         (memory read via %rsi)
  kStosq,  // [rdi] <- rax; rdi advances
  kCmpsq,  // flags([rsi] - [rdi]); both advance (memory read via %rsi)
  kScasq,  // flags(rax - [rdi]); rdi advances   (memory read via %rdi)

  // MPX.
  kBndcu,     // #BR if effective_address(mem) > bnd0.ub; does not touch flags
  kLoadBnd0,  // bnd0.ub <- imm64 (privileged; used at boot / mode switch)

  // System.
  kSyscall,
  kSysret,
  kWrmsr,  // model of a serializing privileged write; no memory access

  // Transient execution (src/spec).
  kSpecFence,  // speculation barrier: architectural nop; kills a wrong-path
               // window in the spec engine (spec-barrier mitigation)
  kMaskRI,     // r1 <- (r1 >u imm32) ? 0 : r1; branchless address clamp,
               // writes no flags (spec-mask mitigation)

  kNumOpcodes,
};

enum class Cond : uint8_t {
  kE = 0,  // ZF
  kNe,     // !ZF
  kA,      // !CF && !ZF  (unsigned above)
  kAe,     // !CF
  kB,      // CF
  kBe,     // CF || ZF
  kG,      // !ZF && SF==OF (signed greater)
  kGe,     // SF==OF
  kL,      // SF!=OF
  kLe,     // ZF || SF!=OF
  kS,      // SF
  kNs,     // !SF
};

const char* OpcodeName(Opcode op);
const char* CondName(Cond c);

// ---- Static opcode properties (used by the instrumentation passes). ----

// True if executing the instruction performs a data-memory read that is
// subject to R^X confinement when its effective address is attacker
// influenced. Push/pop and the implicit stack accesses of call/ret are not
// included: they go through %rsp and are covered by the .krx_phantom guard,
// mirroring the paper's treatment of stack reads.
bool OpcodeReadsMemory(Opcode op);

// True if the instruction writes data memory.
bool OpcodeWritesMemory(Opcode op);

// True if the instruction (re)defines %rflags.
bool OpcodeWritesFlags(Opcode op);

// True if the instruction's behaviour depends on %rflags.
bool OpcodeReadsFlags(Opcode op);

// True for instructions that end a basic block.
bool OpcodeIsTerminator(Opcode op);

bool OpcodeIsCall(Opcode op);
bool OpcodeIsString(Opcode op);

}  // namespace krx

#endif  // KRX_SRC_ISA_OPCODE_H_
