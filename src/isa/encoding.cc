#include "src/isa/encoding.h"

#include <cstring>

namespace krx {
namespace {

// Operand formats. Each opcode maps to exactly one format; the decoder uses
// the same table, so encode/decode are symmetric by construction.
enum class Format : uint8_t {
  kNone,   // [op]
  kR,      // [op][reg]
  kRR,     // [op][r1<<4 | r2]
  kRI64,   // [op][reg][imm64]
  kRI32,   // [op][reg][imm32]
  kRM,     // [op][reg][mem]
  kMI32,   // [op][mem][imm32]
  kM,      // [op][mem]
  kRel32,  // [op][rel32]
  kJcc,    // [op][cond][rel32]
  kStr,    // [op][rep]
  kI64,    // [op][imm64]
};

Format FormatOf(Opcode op) {
  switch (op) {
    case Opcode::kNop:
    case Opcode::kHlt:
    case Opcode::kInt3:
    case Opcode::kUd2:
    case Opcode::kPushfq:
    case Opcode::kPopfq:
    case Opcode::kRet:
    case Opcode::kSyscall:
    case Opcode::kSysret:
    case Opcode::kWrmsr:
    case Opcode::kSpecFence:
      return Format::kNone;
    case Opcode::kPushR:
    case Opcode::kPopR:
    case Opcode::kJmpR:
    case Opcode::kCallR:
      return Format::kR;
    case Opcode::kMovRR:
    case Opcode::kAddRR:
    case Opcode::kSubRR:
    case Opcode::kAndRR:
    case Opcode::kOrRR:
    case Opcode::kXorRR:
    case Opcode::kImulRR:
    case Opcode::kCmpRR:
    case Opcode::kTestRR:
      return Format::kRR;
    case Opcode::kMovRI:
      return Format::kRI64;
    case Opcode::kAddRI:
    case Opcode::kSubRI:
    case Opcode::kAndRI:
    case Opcode::kOrRI:
    case Opcode::kXorRI:
    case Opcode::kShlRI:
    case Opcode::kShrRI:
    case Opcode::kCmpRI:
    case Opcode::kMaskRI:
      return Format::kRI32;
    case Opcode::kLoad:
    case Opcode::kStore:
    case Opcode::kLea:
    case Opcode::kAddRM:
    case Opcode::kCmpRM:
    case Opcode::kXorMR:
      return Format::kRM;
    case Opcode::kStoreImm:
    case Opcode::kCmpMI:
      return Format::kMI32;
    case Opcode::kJmpM:
    case Opcode::kCallM:
    case Opcode::kBndcu:
      return Format::kM;
    case Opcode::kJmpRel:
    case Opcode::kCallRel:
      return Format::kRel32;
    case Opcode::kJcc:
      return Format::kJcc;
    case Opcode::kMovsq:
    case Opcode::kLodsq:
    case Opcode::kStosq:
    case Opcode::kCmpsq:
    case Opcode::kScasq:
      return Format::kStr;
    case Opcode::kLoadBnd0:
      return Format::kI64;
    case Opcode::kNumOpcodes:
      break;
  }
  return Format::kNone;
}

// Memory operand flag byte layout.
constexpr uint8_t kMemHasBase = 1u << 0;
constexpr uint8_t kMemHasIndex = 1u << 1;
constexpr uint8_t kMemRipRel = 1u << 2;
constexpr uint8_t kMemScaleShift = 3;  // bits 3..4: log2(scale)
constexpr uint8_t kMemScaleMask = 3u << kMemScaleShift;
constexpr uint8_t kMemValidMask = kMemHasBase | kMemHasIndex | kMemRipRel | kMemScaleMask;

uint8_t ScaleLog2(uint8_t scale) {
  switch (scale) {
    case 1: return 0;
    case 2: return 1;
    case 4: return 2;
    case 8: return 3;
  }
  KRX_CHECK(false && "invalid scale");
  return 0;
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void EncodeMem(const MemOperand& mem, std::vector<uint8_t>& out) {
  KRX_CHECK(mem.symbol < 0 && "unresolved symbol reference at encode time");
  uint8_t flags = 0;
  if (mem.has_base()) {
    flags |= kMemHasBase;
  }
  if (mem.has_index()) {
    flags |= kMemHasIndex;
  }
  if (mem.rip_relative) {
    flags |= kMemRipRel;
  }
  flags |= static_cast<uint8_t>(ScaleLog2(mem.scale) << kMemScaleShift);
  out.push_back(flags);
  if (mem.has_base() || mem.has_index()) {
    uint8_t b = mem.has_base() ? RegIndex(mem.base) : 0;
    uint8_t i = mem.has_index() ? RegIndex(mem.index) : 0;
    out.push_back(static_cast<uint8_t>((b << 4) | i));
  }
  if (mem.is_absolute()) {
    PutU64(out, static_cast<uint64_t>(mem.disp));  // Absolute: full 64-bit address.
  } else {
    // disp32, as under -mcmodel=kernel.
    KRX_CHECK(mem.disp >= INT32_MIN && mem.disp <= INT32_MAX);
    PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(mem.disp)));
  }
}

size_t MemEncodedSize(const MemOperand& mem) {
  size_t n = 1;  // flags
  if (mem.has_base() || mem.has_index()) {
    n += 1;
  }
  n += mem.is_absolute() ? 8 : 4;
  return n;
}

struct Reader {
  const uint8_t* bytes;
  size_t len;
  size_t pos;

  bool Take(uint8_t* v) {
    if (pos >= len) {
      return false;
    }
    *v = bytes[pos++];
    return true;
  }
  bool TakeU32(uint32_t* v) {
    if (pos + 4 > len) {
      return false;
    }
    std::memcpy(v, bytes + pos, 4);
    pos += 4;
    return true;
  }
  bool TakeU64(uint64_t* v) {
    if (pos + 8 > len) {
      return false;
    }
    std::memcpy(v, bytes + pos, 8);
    pos += 8;
    return true;
  }
};

// Decode outcome for memory operands: distinguishing truncation from
// malformed bits matters to the CPU, which must turn a truncated fetch at
// an unmapped page boundary into a #PF on the next page, not a #UD.
enum class MemDecode { kOk, kTruncated, kInvalid };

MemDecode DecodeMem(Reader& r, MemOperand* mem) {
  uint8_t flags = 0;
  if (!r.Take(&flags)) {
    return MemDecode::kTruncated;
  }
  if ((flags & ~kMemValidMask) != 0) {
    return MemDecode::kInvalid;
  }
  bool has_base = (flags & kMemHasBase) != 0;
  bool has_index = (flags & kMemHasIndex) != 0;
  mem->rip_relative = (flags & kMemRipRel) != 0;
  if (mem->rip_relative && (has_base || has_index)) {
    return MemDecode::kInvalid;
  }
  mem->scale = static_cast<uint8_t>(1u << ((flags & kMemScaleMask) >> kMemScaleShift));
  mem->base = Reg::kNone;
  mem->index = Reg::kNone;
  if (has_base || has_index) {
    uint8_t regs = 0;
    if (!r.Take(&regs)) {
      return MemDecode::kTruncated;
    }
    if (has_base) {
      mem->base = static_cast<Reg>(regs >> 4);
    }
    if (has_index) {
      mem->index = static_cast<Reg>(regs & 0xF);
    }
  }
  if (!has_base && !has_index && !mem->rip_relative) {
    uint64_t abs = 0;
    if (!r.TakeU64(&abs)) {
      return MemDecode::kTruncated;
    }
    mem->disp = static_cast<int64_t>(abs);
  } else {
    uint32_t d = 0;
    if (!r.TakeU32(&d)) {
      return MemDecode::kTruncated;
    }
    mem->disp = static_cast<int32_t>(d);
  }
  mem->symbol = -1;
  return MemDecode::kOk;
}

Status MemDecodeStatus(MemDecode d) {
  return d == MemDecode::kTruncated ? OutOfRangeError("truncated mem operand")
                                    : InvalidArgumentError("invalid mem operand");
}

}  // namespace

void EncodeInstruction(const Instruction& inst, std::vector<uint8_t>& out) {
  KRX_CHECK(inst.target_block < 0 && "unresolved block target at encode time");
  KRX_CHECK((inst.target_symbol < 0 || FormatOf(inst.op) == Format::kRel32) ||
            !"unresolved symbol target at encode time");
  out.push_back(static_cast<uint8_t>(inst.op));
  switch (FormatOf(inst.op)) {
    case Format::kNone:
      if (inst.IsString()) {  // unreachable; strings are kStr
        break;
      }
      break;
    case Format::kR:
      out.push_back(RegIndex(inst.r1));
      break;
    case Format::kRR:
      out.push_back(static_cast<uint8_t>((RegIndex(inst.r1) << 4) | RegIndex(inst.r2)));
      break;
    case Format::kRI64:
      out.push_back(RegIndex(inst.r1));
      PutU64(out, static_cast<uint64_t>(inst.imm));
      break;
    case Format::kRI32:
      out.push_back(RegIndex(inst.r1));
      KRX_CHECK(inst.imm >= INT32_MIN && inst.imm <= INT32_MAX);
      PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(inst.imm)));
      break;
    case Format::kRM:
      out.push_back(RegIndex(inst.r1));
      EncodeMem(inst.mem, out);
      break;
    case Format::kMI32:
      EncodeMem(inst.mem, out);
      KRX_CHECK(inst.imm >= INT32_MIN && inst.imm <= INT32_MAX);
      PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(inst.imm)));
      break;
    case Format::kM:
      EncodeMem(inst.mem, out);
      break;
    case Format::kRel32:
      KRX_CHECK(inst.target_symbol < 0 && "relocation must be applied before encoding");
      KRX_CHECK(inst.imm >= INT32_MIN && inst.imm <= INT32_MAX);
      PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(inst.imm)));
      break;
    case Format::kJcc:
      out.push_back(static_cast<uint8_t>(inst.cond));
      KRX_CHECK(inst.imm >= INT32_MIN && inst.imm <= INT32_MAX);
      PutU32(out, static_cast<uint32_t>(static_cast<int32_t>(inst.imm)));
      break;
    case Format::kStr:
      out.push_back(inst.rep ? 1 : 0);
      break;
    case Format::kI64:
      PutU64(out, static_cast<uint64_t>(inst.imm));
      break;
  }
}

uint8_t EncodedSize(const Instruction& inst) {
  switch (FormatOf(inst.op)) {
    case Format::kNone:
      return 1;
    case Format::kR:
      return 2;
    case Format::kRR:
      return 2;
    case Format::kRI64:
      return 10;
    case Format::kRI32:
      return 6;
    case Format::kRM:
      return static_cast<uint8_t>(2 + MemEncodedSize(inst.mem));
    case Format::kMI32:
      return static_cast<uint8_t>(1 + MemEncodedSize(inst.mem) + 4);
    case Format::kM:
      return static_cast<uint8_t>(1 + MemEncodedSize(inst.mem));
    case Format::kRel32:
      return 5;
    case Format::kJcc:
      return 6;
    case Format::kStr:
      return 2;
    case Format::kI64:
      return 9;
  }
  return 1;
}

Result<Decoded> DecodeInstruction(const uint8_t* bytes, size_t len, size_t offset) {
  if (offset >= len) {
    return OutOfRangeError("decode past end");
  }
  Reader r{bytes, len, offset};
  uint8_t opb = 0;
  r.Take(&opb);
  if (opb >= static_cast<uint8_t>(Opcode::kNumOpcodes)) {
    return InvalidArgumentError("invalid opcode byte");
  }
  Decoded d;
  d.inst.op = static_cast<Opcode>(opb);
  switch (FormatOf(d.inst.op)) {
    case Format::kNone:
      break;
    case Format::kR: {
      uint8_t reg = 0;
      if (!r.Take(&reg)) {
        return OutOfRangeError("truncated");
      }
      if (reg >= kNumGpRegs) {
        return InvalidArgumentError("invalid register");
      }
      d.inst.r1 = static_cast<Reg>(reg);
      break;
    }
    case Format::kRR: {
      uint8_t regs = 0;
      if (!r.Take(&regs)) {
        return OutOfRangeError("truncated");
      }
      d.inst.r1 = static_cast<Reg>(regs >> 4);
      d.inst.r2 = static_cast<Reg>(regs & 0xF);
      break;
    }
    case Format::kRI64: {
      uint8_t reg = 0;
      uint64_t v = 0;
      if (!r.Take(&reg) || !r.TakeU64(&v)) {
        return OutOfRangeError("truncated");
      }
      if (reg >= kNumGpRegs) {
        return InvalidArgumentError("invalid register");
      }
      d.inst.r1 = static_cast<Reg>(reg);
      d.inst.imm = static_cast<int64_t>(v);
      break;
    }
    case Format::kRI32: {
      uint8_t reg = 0;
      uint32_t v = 0;
      if (!r.Take(&reg) || !r.TakeU32(&v)) {
        return OutOfRangeError("truncated");
      }
      if (reg >= kNumGpRegs) {
        return InvalidArgumentError("invalid register");
      }
      d.inst.r1 = static_cast<Reg>(reg);
      d.inst.imm = static_cast<int32_t>(v);
      break;
    }
    case Format::kRM: {
      uint8_t reg = 0;
      if (!r.Take(&reg)) {
        return OutOfRangeError("truncated");
      }
      if (reg >= kNumGpRegs) {
        return InvalidArgumentError("invalid register");
      }
      d.inst.r1 = static_cast<Reg>(reg);
      if (MemDecode md = DecodeMem(r, &d.inst.mem); md != MemDecode::kOk) {
        return MemDecodeStatus(md);
      }
      break;
    }
    case Format::kMI32: {
      if (MemDecode md = DecodeMem(r, &d.inst.mem); md != MemDecode::kOk) {
        return MemDecodeStatus(md);
      }
      uint32_t v = 0;
      if (!r.TakeU32(&v)) {
        return OutOfRangeError("truncated");
      }
      d.inst.imm = static_cast<int32_t>(v);
      break;
    }
    case Format::kM: {
      if (MemDecode md = DecodeMem(r, &d.inst.mem); md != MemDecode::kOk) {
        return MemDecodeStatus(md);
      }
      break;
    }
    case Format::kRel32: {
      uint32_t v = 0;
      if (!r.TakeU32(&v)) {
        return OutOfRangeError("truncated");
      }
      d.inst.imm = static_cast<int32_t>(v);
      break;
    }
    case Format::kJcc: {
      uint8_t cond = 0;
      uint32_t v = 0;
      if (!r.Take(&cond) || !r.TakeU32(&v)) {
        return OutOfRangeError("truncated");
      }
      if (cond > static_cast<uint8_t>(Cond::kNs)) {
        return InvalidArgumentError("invalid condition");
      }
      d.inst.cond = static_cast<Cond>(cond);
      d.inst.imm = static_cast<int32_t>(v);
      break;
    }
    case Format::kStr: {
      uint8_t rep = 0;
      if (!r.Take(&rep)) {
        return OutOfRangeError("truncated");
      }
      if (rep > 1) {
        return InvalidArgumentError("invalid rep byte");
      }
      d.inst.rep = rep == 1;
      break;
    }
    case Format::kI64: {
      uint64_t v = 0;
      if (!r.TakeU64(&v)) {
        return OutOfRangeError("truncated");
      }
      d.inst.imm = static_cast<int64_t>(v);
      break;
    }
  }
  d.size = static_cast<uint8_t>(r.pos - offset);
  return d;
}

}  // namespace krx
