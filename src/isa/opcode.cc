#include "src/isa/opcode.h"

namespace krx {

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kNop: return "nop";
    case Opcode::kHlt: return "hlt";
    case Opcode::kInt3: return "int3";
    case Opcode::kUd2: return "ud2";
    case Opcode::kMovRR: return "mov";
    case Opcode::kMovRI: return "mov";
    case Opcode::kLoad: return "mov";
    case Opcode::kStore: return "mov";
    case Opcode::kStoreImm: return "movl";
    case Opcode::kLea: return "lea";
    case Opcode::kPushR: return "push";
    case Opcode::kPopR: return "pop";
    case Opcode::kPushfq: return "pushfq";
    case Opcode::kPopfq: return "popfq";
    case Opcode::kAddRR: return "add";
    case Opcode::kAddRI: return "add";
    case Opcode::kSubRR: return "sub";
    case Opcode::kSubRI: return "sub";
    case Opcode::kAndRR: return "and";
    case Opcode::kAndRI: return "and";
    case Opcode::kOrRR: return "or";
    case Opcode::kOrRI: return "or";
    case Opcode::kXorRR: return "xor";
    case Opcode::kXorRI: return "xor";
    case Opcode::kShlRI: return "shl";
    case Opcode::kShrRI: return "shr";
    case Opcode::kImulRR: return "imul";
    case Opcode::kCmpRR: return "cmp";
    case Opcode::kCmpRI: return "cmp";
    case Opcode::kTestRR: return "test";
    case Opcode::kAddRM: return "add";
    case Opcode::kCmpRM: return "cmp";
    case Opcode::kCmpMI: return "cmpl";
    case Opcode::kXorMR: return "xor";
    case Opcode::kJmpRel: return "jmp";
    case Opcode::kJcc: return "j";
    case Opcode::kJmpR: return "jmp*";
    case Opcode::kJmpM: return "jmp*";
    case Opcode::kCallRel: return "callq";
    case Opcode::kCallR: return "callq*";
    case Opcode::kCallM: return "callq*";
    case Opcode::kRet: return "retq";
    case Opcode::kMovsq: return "movsq";
    case Opcode::kLodsq: return "lodsq";
    case Opcode::kStosq: return "stosq";
    case Opcode::kCmpsq: return "cmpsq";
    case Opcode::kScasq: return "scasq";
    case Opcode::kBndcu: return "bndcu";
    case Opcode::kLoadBnd0: return "bndmov";
    case Opcode::kSyscall: return "syscall";
    case Opcode::kSysret: return "sysret";
    case Opcode::kWrmsr: return "wrmsr";
    case Opcode::kSpecFence: return "lfence";
    case Opcode::kMaskRI: return "mask";
    case Opcode::kNumOpcodes: break;
  }
  return "??";
}

const char* CondName(Cond c) {
  switch (c) {
    case Cond::kE: return "e";
    case Cond::kNe: return "ne";
    case Cond::kA: return "a";
    case Cond::kAe: return "ae";
    case Cond::kB: return "b";
    case Cond::kBe: return "be";
    case Cond::kG: return "g";
    case Cond::kGe: return "ge";
    case Cond::kL: return "l";
    case Cond::kLe: return "le";
    case Cond::kS: return "s";
    case Cond::kNs: return "ns";
  }
  return "??";
}

bool OpcodeReadsMemory(Opcode op) {
  switch (op) {
    case Opcode::kLoad:
    case Opcode::kAddRM:
    case Opcode::kCmpRM:
    case Opcode::kCmpMI:
    case Opcode::kXorMR:
    case Opcode::kJmpM:
    case Opcode::kCallM:
    case Opcode::kMovsq:
    case Opcode::kLodsq:
    case Opcode::kCmpsq:
    case Opcode::kScasq:
      return true;
    default:
      return false;
  }
}

bool OpcodeWritesMemory(Opcode op) {
  switch (op) {
    case Opcode::kStore:
    case Opcode::kStoreImm:
    case Opcode::kXorMR:
    case Opcode::kMovsq:
    case Opcode::kStosq:
    case Opcode::kPushR:
    case Opcode::kPushfq:
    case Opcode::kCallRel:
    case Opcode::kCallR:
    case Opcode::kCallM:
      return true;
    default:
      return false;
  }
}

bool OpcodeWritesFlags(Opcode op) {
  switch (op) {
    case Opcode::kAddRR:
    case Opcode::kAddRI:
    case Opcode::kSubRR:
    case Opcode::kSubRI:
    case Opcode::kAndRR:
    case Opcode::kAndRI:
    case Opcode::kOrRR:
    case Opcode::kOrRI:
    case Opcode::kXorRR:
    case Opcode::kXorRI:
    case Opcode::kShlRI:
    case Opcode::kShrRI:
    case Opcode::kImulRR:
    case Opcode::kCmpRR:
    case Opcode::kCmpRI:
    case Opcode::kTestRR:
    case Opcode::kAddRM:
    case Opcode::kCmpRM:
    case Opcode::kCmpMI:
    case Opcode::kXorMR:
    case Opcode::kCmpsq:
    case Opcode::kScasq:
    case Opcode::kPopfq:
      return true;
    // kMaskRI is deliberately absent: the clamp is a conditional move, not a
    // compare — writing no flags is what lets the spec-mask mitigation drop
    // the pushfq/popfq preservation pair around every check.
    // Calls clobber flags across the boundary (callees do not preserve
    // %rflags under the ABI the kernel uses), which the liveness analysis
    // models as a definition.
    case Opcode::kCallRel:
    case Opcode::kCallR:
    case Opcode::kCallM:
      return true;
    default:
      return false;
  }
}

bool OpcodeReadsFlags(Opcode op) {
  switch (op) {
    case Opcode::kJcc:
    case Opcode::kPushfq:
      return true;
    // rep-prefixed cmps/scas terminate on ZF; the flag dependency is modelled
    // conservatively at the instruction level (see Instruction::ReadsFlags).
    default:
      return false;
  }
}

bool OpcodeIsTerminator(Opcode op) {
  switch (op) {
    case Opcode::kJmpRel:
    case Opcode::kJmpR:
    case Opcode::kJmpM:
    case Opcode::kRet:
    case Opcode::kHlt:
    case Opcode::kUd2:
    case Opcode::kSysret:
      return true;
    default:
      return false;
  }
}

bool OpcodeIsCall(Opcode op) {
  return op == Opcode::kCallRel || op == Opcode::kCallR || op == Opcode::kCallM;
}

bool OpcodeIsString(Opcode op) {
  switch (op) {
    case Opcode::kMovsq:
    case Opcode::kLodsq:
    case Opcode::kStosq:
    case Opcode::kCmpsq:
    case Opcode::kScasq:
      return true;
    default:
      return false;
  }
}

}  // namespace krx
