#include "src/isa/register.h"

namespace krx {

const char* RegName(Reg r) {
  switch (r) {
    case Reg::kRax: return "rax";
    case Reg::kRcx: return "rcx";
    case Reg::kRdx: return "rdx";
    case Reg::kRbx: return "rbx";
    case Reg::kRsp: return "rsp";
    case Reg::kRbp: return "rbp";
    case Reg::kRsi: return "rsi";
    case Reg::kRdi: return "rdi";
    case Reg::kR8: return "r8";
    case Reg::kR9: return "r9";
    case Reg::kR10: return "r10";
    case Reg::kR11: return "r11";
    case Reg::kR12: return "r12";
    case Reg::kR13: return "r13";
    case Reg::kR14: return "r14";
    case Reg::kR15: return "r15";
    case Reg::kNone: return "none";
  }
  return "??";
}

}  // namespace krx
