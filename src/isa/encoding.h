// Byte encoding of krx64 instructions.
//
// The encoding is variable length (1..11 bytes), which matters for the
// attack-side components: gadget scanning and JIT-ROP disassemble raw code
// bytes, potentially at unaligned offsets, exactly as on x86. Branch targets
// are encoded as rel32 displacements from the end of the instruction, and
// rip-relative memory operands as disp32 from the end of the instruction,
// mirroring -mcmodel=kernel's ±2GB constraint (§5.1.1).
#ifndef KRX_SRC_ISA_ENCODING_H_
#define KRX_SRC_ISA_ENCODING_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/isa/instruction.h"

namespace krx {

// Appends the encoding of `inst` to `out`. Branch/symbol operands must be
// resolved (imm holds the rel32 / the mem disp holds the final displacement);
// encoding an instruction with an unresolved target_block/target_symbol or a
// symbol-carrying mem operand is a programming error.
void EncodeInstruction(const Instruction& inst, std::vector<uint8_t>& out);

// Size the instruction will occupy once encoded. Independent of operand
// values (displacements are fixed-width), so single-pass layout is exact.
uint8_t EncodedSize(const Instruction& inst);

struct Decoded {
  Instruction inst;
  uint8_t size = 0;
};

// Decodes one instruction from bytes[offset..]. Fails on truncation or on
// byte sequences that do not form a valid instruction (invalid opcode,
// condition, scale or flag bits) — the common case when disassembling at
// unaligned offsets.
Result<Decoded> DecodeInstruction(const uint8_t* bytes, size_t len, size_t offset);

}  // namespace krx

#endif  // KRX_SRC_ISA_ENCODING_H_
