// The parallel benchmark driver.
//
// A bench run is a matrix of BenchTasks — (workload, protection column)
// points — executed by a fixed thread pool. Each task runs on its own Cpu
// (private Mmu, private stack, private block cache) over a compiled kernel
// acquired from the sharded fleet KernelCache, so identically-configured
// tasks share one immutable image and each ImageKey compiles exactly once
// per run. Stateful workloads (VFS fd tables, IPC rings) acquire a private
// build instead — guest globals are not thread-safe.
//
// Per task the driver records guest work (retired instructions,
// deci-cycles), host wall time, block-cache telemetry, and a semantic
// checksum of every return value — the cached-vs-uncached comparison the
// bench_perf tool (and the perf CI stage) asserts on.
#ifndef KRX_SRC_BENCH_RUNNER_BENCH_RUNNER_H_
#define KRX_SRC_BENCH_RUNNER_BENCH_RUNNER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/fleet/kernel_cache.h"
#include "src/fleet/tenant.h"

namespace krx {

class HealthState;
namespace telemetry {
class GuestProfiler;
}  // namespace telemetry

struct BenchTask {
  std::string name;  // unique row id, e.g. "lmbench/read_write@sfi-o3"
  // What to run and under which protection: the same typed spec the
  // multi-tenant fleet consumes (src/fleet/tenant.h). spec.seed == 0 defers
  // to BenchRunnerOptions::seed.
  TenantSpec spec;
  int repeat = 4;  // outer repetitions of the task's call sequence
};

struct TaskResult {
  std::string name;
  std::string config_name;
  WorkloadKind workload = WorkloadKind::kLmbench;
  bool ok = false;
  std::string error;

  uint64_t calls = 0;         // guest entries (CallFunction invocations)
  uint64_t instructions = 0;  // retired guest instructions, summed
  uint64_t deci_cycles = 0;   // simulated cost, summed
  // FNV-fold of every call's %rax: the semantic witness that a cached run
  // computed exactly what the uncached interpreter computes.
  uint64_t rax_checksum = 0;
  double wall_ms = 0;         // host wall time of the call sequence

  // Block-cache telemetry of the task's Cpu.
  double cache_hit_rate = 0;
  uint64_t replayed_insts = 0;
  uint64_t decoded_insts = 0;

  // Superblock telemetry of the task's Cpu (all zero unless the run used
  // ExecEngine::kSuperblock).
  uint64_t sb_chains_built = 0;
  uint64_t sb_entries = 0;
  uint64_t sb_chain_breaks = 0;
  double sb_fastpath_share = 0;
  double sb_tlb_hit_rate = 0;
};

struct BenchRunnerOptions {
  int threads = 1;
  uint64_t seed = 0xB0F;         // source-corpus and build seed
  bool use_block_cache = true;   // forwarded to every RunOptions
  // Engine selection forwarded to every RunOptions; kAuto defers to
  // use_block_cache (the historical mapping). The bench_perf superblock
  // phase sets ExecEngine::kSuperblock here.
  ExecEngine engine = ExecEngine::kAuto;
  uint64_t max_steps = 50'000'000;
  // Supervision hooks (all optional). A deadline preempts a runaway task's
  // guest run (StopReason::kDeadlineExceeded); `health` lets the degradation
  // ladder force the block cache off once it is quarantined; `profiler`
  // gets one PC slot per pool worker ("worker-N") for per-worker
  // attribution of the sampled matrix.
  uint64_t deadline_us = 0;
  HealthState* health = nullptr;
  telemetry::GuestProfiler* profiler = nullptr;
};

class BenchRunner {
 public:
  BenchRunner(const BenchRunnerOptions& options, KernelCache* cache)
      : options_(options), cache_(cache) {}

  // Executes the matrix on `options.threads` workers; results are returned
  // in task order. Individual task failures land in TaskResult::error —
  // the run itself never aborts.
  std::vector<TaskResult> Run(const std::vector<BenchTask>& tasks);

 private:
  TaskResult RunOne(const BenchTask& task) const;

  BenchRunnerOptions options_;
  KernelCache* cache_;
};

// Source factory for the standard bench matrices: the LMBench op corpus
// plus the VFS and IPC subsystems, all in one source tree.
KernelCache::SourceFactory MakeBenchSourceFactory(uint64_t seed);

// The standard matrix: for each config name, every LMBench row (capped at
// `lmbench_rows` per config; <= 0 means all), one VFS task and one IPC
// task. Phoronix mixes are appended when `with_phoronix` is set.
std::vector<BenchTask> MakeBenchMatrix(const std::vector<std::string>& config_names,
                                       int lmbench_rows, int repeat, bool with_phoronix);

}  // namespace krx

#endif  // KRX_SRC_BENCH_RUNNER_BENCH_RUNNER_H_
