#include "src/bench_runner/thread_pool.h"

#include <algorithm>
#include <string>

#include "src/telemetry/telemetry.h"

namespace krx {
namespace {
thread_local int t_worker_index = -1;
}  // namespace

int ThreadPool::CurrentWorkerIndex() { return t_worker_index; }

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] {
      t_worker_index = i;
#if !defined(KRX_TELEMETRY_DISABLED)
      // Only materialize (and label) this thread's trace ring when tracing
      // is actually on — naming allocates the ring.
      if (telemetry::TraceEnabled()) {
        telemetry::SetThreadName("worker-" + std::to_string(i));
      }
#else
      (void)i;
#endif
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ set and nothing left to run
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) {
        idle_cv_.notify_all();
      }
    }
  }
}

}  // namespace krx
