// A minimal fixed-size thread pool for the parallel bench driver.
//
// Deliberately tiny: FIFO queue, no futures, no work stealing. Callers
// Submit() closures and Wait() for the queue to drain; results travel
// through caller-owned slots (the bench runner preallocates one result slot
// per task, so workers never contend on a results container).
#ifndef KRX_SRC_BENCH_RUNNER_THREAD_POOL_H_
#define KRX_SRC_BENCH_RUNNER_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace krx {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  // Drains outstanding work, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  int threads() const { return static_cast<int>(workers_.size()); }

  // The calling thread's worker ordinal within its pool, or -1 when the
  // caller is not a pool worker. Tasks use it for per-worker attribution
  // (profiler slots, result labelling) without threading an id through
  // every closure.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // queue non-empty or shutting down
  std::condition_variable idle_cv_;   // queue empty and nothing in flight
  int in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace krx

#endif  // KRX_SRC_BENCH_RUNNER_THREAD_POOL_H_
