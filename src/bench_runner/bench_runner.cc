#include "src/bench_runner/bench_runner.h"

#include <chrono>

#include "src/base/rng.h"
#include "src/bench_runner/thread_pool.h"
#include "src/supervise/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profiler.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/ipc.h"
#include "src/workload/lmbench.h"
#include "src/workload/phoronix.h"
#include "src/workload/vfs.h"

namespace krx {
namespace {

// FNV-1a fold of each call's return value — order-sensitive, so it also
// witnesses that the cached engine made the same calls in the same order.
void FoldRax(uint64_t rax, uint64_t* checksum) {
  *checksum = (*checksum ^ rax) * 0x100000001B3ULL;
}

struct CallError {
  std::string message;
};

// Runs one guest entry and accumulates its work into `result`. Returns
// false (and fills result->error) when the call did not return cleanly.
bool Call(Cpu& cpu, const std::string& symbol, const std::vector<uint64_t>& args,
          const RunOptions& run, TaskResult* result) {
  RunResult r = cpu.CallFunction(symbol, args, run);
  if (r.reason != StopReason::kReturned) {
    result->error = symbol + " did not return cleanly: " + StopReasonName(r.reason) +
                    (r.reason == StopReason::kException
                         ? std::string(" (") + ExceptionKindName(r.exception) + ")"
                         : "") +
                    (r.reason == StopReason::kHostError ? " (" + r.host_error + ")" : "");
    return false;
  }
  ++result->calls;
  result->instructions += r.instructions;
  result->deci_cycles += r.deci_cycles;
  FoldRax(r.rax, &result->rax_checksum);
  return true;
}

}  // namespace

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kLmbench:
      return "lmbench";
    case WorkloadKind::kPhoronix:
      return "phoronix";
    case WorkloadKind::kVfs:
      return "vfs";
    case WorkloadKind::kIpc:
      return "ipc";
  }
  return "?";
}

TaskResult BenchRunner::RunOne(const BenchTask& task) const {
  KRX_TRACE_SPAN_SCOPED(("task:" + task.name).c_str());
  TaskResult result;
  result.name = task.name;
  result.config_name = task.config_name;
  result.workload = task.workload;

  ProtectionConfig config;
  LayoutKind layout = LayoutKind::kKrx;
  if (!ParseConfigName(task.config_name, options_.seed, &config, &layout)) {
    result.error = "unknown config name: " + task.config_name;
    return result;
  }
  // VFS and IPC mutate guest globals (fd tables, ring indices), so they get
  // a private build; the read-only op workloads share one image per key.
  const bool stateful =
      task.workload == WorkloadKind::kVfs || task.workload == WorkloadKind::kIpc;
  auto kernel = stateful ? cache_->GetExclusive({config, layout})
                         : cache_->Get({config, layout});
  if (!kernel.ok()) {
    result.error = "build failed: " + kernel.status().message();
    return result;
  }
  KernelImage& image = *(*kernel)->image;

  CpuOptions copts;
  copts.mpx_enabled = (*kernel)->config.mpx;
  Cpu cpu(&image, CostModel(), copts);
  if (!cpu.init_error().empty()) {
    result.error = "cpu init failed: " + cpu.init_error();
    return result;
  }
  RunOptions run;
  run.max_steps = options_.max_steps;
  run.use_block_cache = options_.use_block_cache;
  run.deadline_us = options_.deadline_us;
  // Degradation ladder: once the block cache is quarantined, every task
  // falls back to the single-step engine (same semantics, no cache risk).
  if (options_.health != nullptr && !options_.health->block_cache_enabled()) {
    run.use_block_cache = false;
  }
  std::atomic<uint64_t>* pc_slot = nullptr;
  if (options_.profiler != nullptr) {
    const int worker = ThreadPool::CurrentWorkerIndex();
    pc_slot = options_.profiler->AddTarget(
        "worker-" + std::to_string(worker < 0 ? 0 : worker));
    cpu.set_sample_pc_slot(pc_slot);
  }

  const auto t0 = std::chrono::steady_clock::now();
  bool ok = true;
  switch (task.workload) {
    case WorkloadKind::kLmbench: {
      auto buf = SetUpOpBuffer(image, options_.seed);
      if (!buf.ok()) {
        result.error = "op buffer setup failed: " + buf.status().message();
        return result;
      }
      for (int rep = 0; ok && rep < task.repeat; ++rep) {
        ok = Call(cpu, task.op_symbol, {*buf}, run, &result);
      }
      break;
    }
    case WorkloadKind::kPhoronix: {
      auto buf = SetUpOpBuffer(image, options_.seed);
      if (!buf.ok()) {
        result.error = "op buffer setup failed: " + buf.status().message();
        return result;
      }
      for (int rep = 0; ok && rep < task.repeat; ++rep) {
        for (const auto& [symbol, weight] : task.ops) {
          for (int i = 0; ok && i < weight; ++i) {
            ok = Call(cpu, symbol, {*buf}, run, &result);
          }
          if (!ok) break;
        }
      }
      break;
    }
    case WorkloadKind::kVfs: {
      auto user_buf = image.AllocDataPages(1);
      if (!user_buf.ok()) {
        result.error = "buffer alloc failed: " + user_buf.status().message();
        return result;
      }
      for (int rep = 0; ok && rep < task.repeat; ++rep) {
        for (const VfsFile& file : DefaultVfsImage()) {
          VfsPathHashes h = HashPath(file.path);
          RunResult open = cpu.CallFunction("vfs_open", {h.h1, h.h2, h.h3}, run);
          if (open.reason != StopReason::kReturned || static_cast<int64_t>(open.rax) < 0) {
            result.error = "vfs_open failed for " + file.path;
            ok = false;
            break;
          }
          ++result.calls;
          result.instructions += open.instructions;
          result.deci_cycles += open.deci_cycles;
          FoldRax(open.rax, &result.rax_checksum);
          const uint64_t fd = open.rax;
          ok = Call(cpu, "vfs_read", {fd, *user_buf, 8}, run, &result) &&
               Call(cpu, "vfs_fstat", {fd, *user_buf}, run, &result) &&
               Call(cpu, "vfs_close", {fd}, run, &result);
          if (!ok) break;
        }
      }
      break;
    }
    case WorkloadKind::kIpc: {
      auto src = image.AllocDataPages(1);
      auto dst = image.AllocDataPages(1);
      if (!src.ok() || !dst.ok()) {
        result.error = "buffer alloc failed";
        return result;
      }
      Rng rng(options_.seed ^ 5);
      for (int i = 0; i < 64; ++i) {
        Status s = image.Poke64(*src + 8 * i, rng.Next());
        if (!s.ok()) {
          result.error = "buffer fill failed: " + s.message();
          return result;
        }
      }
      for (int rep = 0; ok && rep < task.repeat; ++rep) {
        ok = Call(cpu, "pipe_write", {*src, 64}, run, &result) &&
             Call(cpu, "pipe_read", {*dst, 64}, run, &result) &&
             Call(cpu, "sock_send", {*src, 16}, run, &result) &&
             Call(cpu, "sock_recv", {*dst}, run, &result);
      }
      break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (pc_slot != nullptr) {
    // The worker's slot outlives this task; park it at idle so samples taken
    // between tasks don't re-attribute the last guest PC.
    pc_slot->store(0, std::memory_order_relaxed);
  }

  const BlockCacheStats& cs = cpu.block_cache().stats();
  result.cache_hit_rate = cs.hit_rate();
  result.replayed_insts = cs.replayed_insts;
  result.decoded_insts = cs.decoded_insts;
  result.ok = ok && result.error.empty();
  KRX_COUNTER_ADD("bench.tasks", 1);
  if (!result.ok) {
    KRX_COUNTER_ADD("bench.task_failures", 1);
  }
  KRX_COUNTER_ADD("bench.calls", result.calls);
  KRX_COUNTER_ADD("bench.guest_instructions", result.instructions);
  return result;
}

std::vector<TaskResult> BenchRunner::Run(const std::vector<BenchTask>& tasks) {
  std::vector<TaskResult> results(tasks.size());
  ThreadPool pool(options_.threads);
  for (size_t i = 0; i < tasks.size(); ++i) {
    pool.Submit([this, &tasks, &results, i] { results[i] = RunOne(tasks[i]); });
  }
  KRX_COUNTER_ADD("bench.batches", 1);
  pool.Wait();
  return results;
}

KernelCache::SourceFactory MakeBenchSourceFactory(uint64_t seed) {
  return [seed] {
    KernelSource src = MakeBenchSource(seed);
    AddVfs(&src, DefaultVfsImage());
    AddIpc(&src);
    return src;
  };
}

std::vector<BenchTask> MakeBenchMatrix(const std::vector<std::string>& config_names,
                                       int lmbench_rows, int repeat, bool with_phoronix) {
  std::vector<BenchTask> tasks;
  const std::vector<LmbenchRow>& rows = LmbenchRows();
  const int row_count = (lmbench_rows <= 0 || lmbench_rows > static_cast<int>(rows.size()))
                            ? static_cast<int>(rows.size())
                            : lmbench_rows;
  for (const std::string& config : config_names) {
    for (int i = 0; i < row_count; ++i) {
      BenchTask t;
      t.name = "lmbench/" + rows[i].profile.name + "@" + config;
      t.workload = WorkloadKind::kLmbench;
      t.config_name = config;
      t.op_symbol = "sys_" + rows[i].profile.name;
      t.repeat = repeat;
      tasks.push_back(std::move(t));
    }
    {
      BenchTask t;
      t.name = "vfs/walk@" + config;
      t.workload = WorkloadKind::kVfs;
      t.config_name = config;
      t.repeat = repeat;
      tasks.push_back(std::move(t));
    }
    {
      BenchTask t;
      t.name = "ipc/rings@" + config;
      t.workload = WorkloadKind::kIpc;
      t.config_name = config;
      t.repeat = repeat;
      tasks.push_back(std::move(t));
    }
    if (with_phoronix) {
      for (const PhoronixRow& row : PhoronixRows()) {
        BenchTask t;
        t.name = "phoronix/" + row.name + "@" + config;
        t.workload = WorkloadKind::kPhoronix;
        t.config_name = config;
        t.ops = row.ops;
        t.repeat = repeat;
        tasks.push_back(std::move(t));
      }
    }
  }
  return tasks;
}

}  // namespace krx
