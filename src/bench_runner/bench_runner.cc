#include "src/bench_runner/bench_runner.h"

#include <chrono>

#include "src/bench_runner/thread_pool.h"
#include "src/supervise/health.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profiler.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/harness.h"
#include "src/workload/ipc.h"
#include "src/workload/lmbench.h"
#include "src/workload/phoronix.h"
#include "src/workload/vfs.h"

namespace krx {

TaskResult BenchRunner::RunOne(const BenchTask& task) const {
  KRX_TRACE_SPAN_SCOPED(("task:" + task.name).c_str());
  TaskResult result;
  result.name = task.name;
  result.config_name = task.spec.config_name;
  result.workload = task.spec.workload;

  auto options = task.spec.ResolveBuildOptions(options_.seed);
  if (!options.ok()) {
    result.error = options.status().message();
    return result;
  }
  // VFS and IPC mutate guest globals (fd tables, ring indices), so they get
  // a private build; the read-only op workloads share one image per key.
  auto kernel = cache_->Acquire(
      *options, WorkloadIsStateful(task.spec.workload) ? Sharing::kPrivate : Sharing::kShared);
  if (!kernel.ok()) {
    result.error = "build failed: " + kernel.status().message();
    return result;
  }
  KernelImage& image = *(*kernel)->image;

  CpuOptions copts;
  copts.mpx_enabled = (*kernel)->config.mpx;
  Cpu cpu(&image, CostModel(), copts);
  if (!cpu.init_error().empty()) {
    result.error = "cpu init failed: " + cpu.init_error();
    return result;
  }
  RunOptions run;
  run.max_steps = options_.max_steps;
  run.use_block_cache = options_.use_block_cache;
  run.engine = options_.engine;
  run.deadline_us = options_.deadline_us;
  // Degradation ladder: once the block cache is quarantined, every task
  // falls back to the single-step engine (same semantics, no predecode
  // risk) — superblocks are predecoded state too, so they degrade with it.
  if (options_.health != nullptr && !options_.health->block_cache_enabled()) {
    run.use_block_cache = false;
    run.engine = ExecEngine::kSingleStep;
  }
  std::atomic<uint64_t>* pc_slot = nullptr;
  if (options_.profiler != nullptr) {
    const int worker = ThreadPool::CurrentWorkerIndex();
    pc_slot = options_.profiler->AddTarget(
        "worker-" + std::to_string(worker < 0 ? 0 : worker));
    cpu.set_sample_pc_slot(pc_slot);
  }

  auto buffers = SetUpWorkloadBuffers(image, task.spec.workload, options_.seed);
  if (!buffers.ok()) {
    result.error = "buffer setup failed: " + buffers.status().message();
    return result;
  }

  const auto t0 = std::chrono::steady_clock::now();
  WorkloadCounters counters;
  Status status;
  for (int rep = 0; status.ok() && rep < task.repeat; ++rep) {
    status = RunWorkloadOnce(cpu, task.spec, *buffers, run, &counters);
  }
  const auto t1 = std::chrono::steady_clock::now();
  result.calls = counters.calls;
  result.instructions = counters.instructions;
  result.deci_cycles = counters.deci_cycles;
  result.rax_checksum = counters.rax_checksum;
  result.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  if (!status.ok()) {
    result.error = status.message();
  }
  if (pc_slot != nullptr) {
    // The worker's slot outlives this task; park it at idle so samples taken
    // between tasks don't re-attribute the last guest PC.
    pc_slot->store(0, std::memory_order_relaxed);
  }

  const BlockCacheStats& cs = cpu.block_cache().stats();
  result.cache_hit_rate = cs.hit_rate();
  result.replayed_insts = cs.replayed_insts;
  result.decoded_insts = cs.decoded_insts;
  const SuperblockStats& ss = cpu.superblock_cache().stats();
  result.sb_chains_built = ss.chains_built;
  result.sb_entries = ss.entries;
  result.sb_chain_breaks = ss.chain_breaks;
  result.sb_fastpath_share = ss.fastpath_share();
  result.sb_tlb_hit_rate = ss.tlb_hit_rate();
  result.ok = result.error.empty();
  KRX_COUNTER_ADD("bench.tasks", 1);
  if (!result.ok) {
    KRX_COUNTER_ADD("bench.task_failures", 1);
  }
  KRX_COUNTER_ADD("bench.calls", result.calls);
  KRX_COUNTER_ADD("bench.guest_instructions", result.instructions);
  return result;
}

std::vector<TaskResult> BenchRunner::Run(const std::vector<BenchTask>& tasks) {
  std::vector<TaskResult> results(tasks.size());
  ThreadPool pool(options_.threads);
  for (size_t i = 0; i < tasks.size(); ++i) {
    pool.Submit([this, &tasks, &results, i] { results[i] = RunOne(tasks[i]); });
  }
  KRX_COUNTER_ADD("bench.batches", 1);
  pool.Wait();
  return results;
}

KernelCache::SourceFactory MakeBenchSourceFactory(uint64_t seed) {
  return [seed] {
    KernelSource src = MakeBenchSource(seed);
    AddVfs(&src, DefaultVfsImage());
    AddIpc(&src);
    return src;
  };
}

std::vector<BenchTask> MakeBenchMatrix(const std::vector<std::string>& config_names,
                                       int lmbench_rows, int repeat, bool with_phoronix) {
  std::vector<BenchTask> tasks;
  const std::vector<LmbenchRow>& rows = LmbenchRows();
  const int row_count = (lmbench_rows <= 0 || lmbench_rows > static_cast<int>(rows.size()))
                            ? static_cast<int>(rows.size())
                            : lmbench_rows;
  for (const std::string& config : config_names) {
    for (int i = 0; i < row_count; ++i) {
      BenchTask t;
      t.name = "lmbench/" + rows[i].profile.name + "@" + config;
      t.spec.workload = WorkloadKind::kLmbench;
      t.spec.config_name = config;
      t.spec.op_symbol = "sys_" + rows[i].profile.name;
      t.repeat = repeat;
      tasks.push_back(std::move(t));
    }
    {
      BenchTask t;
      t.name = "vfs/walk@" + config;
      t.spec.workload = WorkloadKind::kVfs;
      t.spec.config_name = config;
      t.repeat = repeat;
      tasks.push_back(std::move(t));
    }
    {
      BenchTask t;
      t.name = "ipc/rings@" + config;
      t.spec.workload = WorkloadKind::kIpc;
      t.spec.config_name = config;
      t.repeat = repeat;
      tasks.push_back(std::move(t));
    }
    if (with_phoronix) {
      for (const PhoronixRow& row : PhoronixRows()) {
        BenchTask t;
        t.name = "phoronix/" + row.name + "@" + config;
        t.spec.workload = WorkloadKind::kPhoronix;
        t.spec.config_name = config;
        t.spec.ops = row.ops;
        t.repeat = repeat;
        tasks.push_back(std::move(t));
      }
    }
  }
  return tasks;
}

}  // namespace krx
