#include "src/bench_runner/kernel_cache.h"

#include <chrono>
#include <sstream>

#include "src/telemetry/metrics.h"

namespace krx {

std::string KernelCache::Key(const BuildOptions& options) {
  const ProtectionConfig& c = options.config;
  std::ostringstream key;
  key << "sfi=" << static_cast<int>(c.sfi) << ";mpx=" << c.mpx << ";div=" << c.diversify
      << ";ckaslr=" << c.coarse_kaslr << ";ra=" << static_cast<int>(c.ra)
      << ";regrand=" << c.randomize_registers << ";k=" << c.entropy_bits_k
      << ";seed=" << (options.seed != 0 ? options.seed : c.seed)
      << ";layout=" << static_cast<int>(options.layout)
      << ";verify=" << static_cast<int>(options.verify)
      << ";retries=" << options.max_verify_retries << ";exempt=";
  for (const std::string& fn : c.exempt_functions) {  // std::set: sorted, stable
    key << fn << ',';
  }
  return key.str();
}

Result<std::shared_ptr<CompiledKernel>> KernelCache::Get(const BuildOptions& options) {
  const std::string key = Key(options);
  std::promise<Built> promise;
  std::shared_future<Built> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      KRX_COUNTER_ADD("kernel_cache.hits", 1);
      future = it->second;
      // A not-yet-ready future means the keyed build is still running: this
      // request was deduplicated into it rather than served from cache.
      if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        ++stats_.inflight_dedup;
        KRX_COUNTER_ADD("kernel_cache.inflight_dedup", 1);
      }
    } else {
      ++stats_.compiles;
      KRX_COUNTER_ADD("kernel_cache.misses", 1);
      future = promise.get_future().share();
      entries_.emplace(key, future);
      builder = true;
    }
  }
  if (builder) {
    // Compile outside the lock: other keys proceed in parallel, and
    // same-key requesters block on the future, not the mutex.
    Built built;
    auto compiled = CompileKernel(factory_(), options);
    if (compiled.ok()) {
      built.kernel = std::make_shared<CompiledKernel>(std::move(*compiled));
    } else {
      built.status = compiled.status();
    }
    promise.set_value(std::move(built));
  }
  const Built& built = future.get();
  if (built.kernel == nullptr) {
    return built.status;
  }
  return built.kernel;
}

Result<std::shared_ptr<CompiledKernel>> KernelCache::GetExclusive(const BuildOptions& options) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.exclusive_compiles;
    KRX_COUNTER_ADD("kernel_cache.exclusive_compiles", 1);
  }
  auto compiled = CompileKernel(factory_(), options);
  if (!compiled.ok()) {
    return compiled.status();
  }
  return std::make_shared<CompiledKernel>(std::move(*compiled));
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace krx
