// Compiled-kernel cache: compile each (ProtectionConfig, LayoutKind, seed)
// point of a bench matrix exactly once, even when many worker threads
// request it concurrently.
//
// The cache keys on the build-relevant fields of BuildOptions (config knobs,
// layout, effective seed). The first requester of a key compiles; concurrent
// requesters block on a shared_future of the same build instead of
// duplicating the (expensive) pipeline run. Returned kernels are shared —
// callers must treat the image as execute-only state: per-thread Cpu
// instances may run on it concurrently (each owns its Mmu and stack; frame
// allocation is thread-safe) but nothing may remap or poke text. Stateful
// workloads that mutate guest globals should request a private build
// (GetExclusive) instead.
#ifndef KRX_SRC_BENCH_RUNNER_KERNEL_CACHE_H_
#define KRX_SRC_BENCH_RUNNER_KERNEL_CACHE_H_

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/plugin/pipeline.h"

namespace krx {

class KernelCache {
 public:
  // `factory` produces the kernel source tree for every build (called once
  // per distinct key, and once per GetExclusive). It must be callable from
  // any worker thread.
  using SourceFactory = std::function<KernelSource()>;

  explicit KernelCache(SourceFactory factory) : factory_(std::move(factory)) {}

  // Returns the shared compiled kernel for `options`, compiling at most
  // once per distinct key across all threads. Thread-safe.
  Result<std::shared_ptr<CompiledKernel>> Get(const BuildOptions& options);

  // Compiles a private, uncached kernel for a task that mutates guest
  // state (VFS tables, IPC rings). Thread-safe.
  Result<std::shared_ptr<CompiledKernel>> GetExclusive(const BuildOptions& options);

  // Serialized build identity: every config field that changes the emitted
  // bytes, plus layout and effective seed. Exposed for tests.
  static std::string Key(const BuildOptions& options);

  struct Stats {
    uint64_t hits = 0;              // served an already-requested key
    uint64_t compiles = 0;          // distinct shared builds
    uint64_t exclusive_compiles = 0;
    // Hits that arrived while the keyed build was still compiling — the
    // requests the shared_future deduplicated into one pipeline run.
    uint64_t inflight_dedup = 0;
  };
  Stats stats() const;

 private:
  struct Built {
    std::shared_ptr<CompiledKernel> kernel;  // null on failure
    Status status;
  };

  SourceFactory factory_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_future<Built>> entries_;
  Stats stats_;
};

}  // namespace krx

#endif  // KRX_SRC_BENCH_RUNNER_KERNEL_CACHE_H_
