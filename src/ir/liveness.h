// Dataflow analyses over the CFG IR.
//
// FlagsLiveness is the backward liveness analysis of the %rflags resource
// used by the O1 optimization of kR^X-SFI (§5.1.2): a range check only needs
// the pushfq/popfq wrapper if %rflags is live at its insertion point.
// The analysis treats %rflags as a single resource (the paper explicitly
// over-preserves rather than tracking individual status bits; footnote 6).
#ifndef KRX_SRC_IR_LIVENESS_H_
#define KRX_SRC_IR_LIVENESS_H_

#include <vector>

#include "src/ir/function.h"

namespace krx {

class FlagsLiveness {
 public:
  // Computes block-level live-in/live-out for `fn`. The function must not be
  // mutated while this analysis is in use.
  explicit FlagsLiveness(const Function& fn);

  // True if %rflags may be read before being redefined, starting at the
  // point just before instruction `inst_idx` of the block at layout index
  // `layout_idx` (inst_idx == insts.size() queries the block's live-out).
  bool LiveBefore(int32_t layout_idx, size_t inst_idx) const;

  bool LiveIn(int32_t layout_idx) const { return live_in_[static_cast<size_t>(layout_idx)]; }
  bool LiveOut(int32_t layout_idx) const { return live_out_[static_cast<size_t>(layout_idx)]; }

 private:
  const Function& fn_;
  std::vector<bool> live_in_;
  std::vector<bool> live_out_;
};

// Tracks, per program point, which instruction most recently wrote each
// register within a block scan. Used by O3 coalescing and by the decoy pass
// when picking safe phantom-instruction insertion points.
bool InstructionWritesReg(const Instruction& inst, Reg r);
bool InstructionReadsReg(const Instruction& inst, Reg r);

}  // namespace krx

#endif  // KRX_SRC_IR_LIVENESS_H_
