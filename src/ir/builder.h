// Convenience builder for constructing IR functions in tests, workloads and
// examples.
#ifndef KRX_SRC_IR_BUILDER_H_
#define KRX_SRC_IR_BUILDER_H_

#include <cstddef>
#include <utility>

#include "src/ir/function.h"

namespace krx {

class FunctionBuilder {
 public:
  explicit FunctionBuilder(std::string name) : fn_(std::move(name)) {
    current_ = fn_.AddBlock();
  }

  // Appends an instruction to the current block. If the instruction is a
  // terminator or a conditional branch, a fresh fallthrough block is opened.
  FunctionBuilder& Emit(Instruction inst) {
    bool opens_new_block = inst.IsTerminator() || inst.op == Opcode::kJcc;
    fn_.block_by_id(current_).insts.push_back(std::move(inst));
    if (opens_new_block) {
      current_ = fn_.AddBlock();
    }
    return *this;
  }

  // Reserves a block id for a forward branch target.
  int32_t ReserveBlock() { return fn_.AddBlock(); }

  // Makes `id` the current block. The block must have been reserved (or
  // previously current) and the builder moves it to the end of the layout so
  // that preceding code falls through naturally only if intended.
  FunctionBuilder& Bind(int32_t id) {
    // Move the block with this id to the end of the layout order.
    auto& blocks = fn_.blocks();
    int32_t idx = fn_.IndexOfBlock(id);
    KRX_CHECK(idx >= 0);
    BasicBlock b = std::move(blocks[static_cast<size_t>(idx)]);
    KRX_CHECK(b.insts.empty() && "binding a non-empty block");
    blocks.erase(blocks.begin() + idx);
    blocks.push_back(std::move(b));
    current_ = id;
    return *this;
  }

  int32_t current_block() const { return current_; }

  // Finishes the function; drops trailing empty, untargeted blocks left by
  // terminators.
  Function Build() {
    auto& blocks = fn_.blocks();
    auto targeted = [&](int32_t id) {
      for (const BasicBlock& b : blocks) {
        for (const Instruction& inst : b.insts) {
          if (inst.target_block == id) {
            return true;
          }
        }
      }
      return false;
    };
    while (!blocks.empty() && blocks.back().insts.empty() && !targeted(blocks.back().id)) {
      blocks.pop_back();
    }
    // Drop interior empty untargeted blocks (pure fallthroughs the Emit
    // discipline leaves behind after terminators).
    for (size_t i = 0; i < blocks.size();) {
      if (blocks[i].insts.empty() && !targeted(blocks[i].id)) {
        blocks.erase(blocks.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
    KRX_CHECK_OK(fn_.Validate());
    return std::move(fn_);
  }

 private:
  Function fn_;
  int32_t current_;
};

}  // namespace krx

#endif  // KRX_SRC_IR_BUILDER_H_
