// Static analyses over the CFG IR that go beyond single-pass dataflow:
// dominator trees, natural-loop discovery and the register-congruence
// derivation rule. Together they power the O4 check-elision/hoisting stage
// of the kR^X-SFI pass (src/plugin/sfi_pass.cc): a range check can be
// elided when a dominating check on a congruent register value is still
// valid, and loop-invariant checks can be hoisted to a preheader with a
// widened bound.
//
// Everything here speaks in *layout indices* (positions in
// Function::blocks()), not block ids — the pass runs before any layout
// permutation, and layout indices are what the availability dataflow and
// the materialization step already use.
#ifndef KRX_SRC_IR_ANALYSIS_H_
#define KRX_SRC_IR_ANALYSIS_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/function.h"

namespace krx {

// Predecessor lists by layout index (inverse of Function::SuccessorsOf,
// resolved to indices).
std::vector<std::vector<int32_t>> PredecessorsOf(const Function& fn);

// Immediate-dominator tree over the layout-index CFG, entry = index 0.
// Iterative Cooper–Harvey–Kennedy on a reverse-postorder numbering.
// Unreachable blocks (e.g. diversification phantoms) have no dominators
// and dominate nothing.
class DominatorTree {
 public:
  explicit DominatorTree(const Function& fn);

  bool Reachable(int32_t idx) const {
    return rpo_number_[static_cast<size_t>(idx)] >= 0;
  }
  // Immediate dominator of `idx`, or -1 for the entry block and
  // unreachable blocks.
  int32_t Idom(int32_t idx) const { return idom_[static_cast<size_t>(idx)]; }
  // Reflexive dominance: Dominates(a, a) is true for reachable a.
  bool Dominates(int32_t a, int32_t b) const;

 private:
  std::vector<int32_t> idom_;
  std::vector<int32_t> rpo_number_;  // -1 = unreachable
};

// A natural loop: `header` dominates every block in `body`, and each latch
// has a back edge latch -> header. Loops sharing a header are merged.
struct NaturalLoop {
  int32_t header = -1;
  std::vector<int32_t> latches;
  std::set<int32_t> body;  // layout indices, header included
};

// Natural loops of `fn`, sorted by header layout index. A back edge is an
// edge u -> h where h dominates u; the body is every block that reaches a
// latch without passing through the header.
std::vector<NaturalLoop> FindNaturalLoops(const Function& fn, const DominatorTree& dom);

// The congruence (value-derivation) rule shared by the O4 availability
// analysis: returns true when `inst` leaves *dst holding exactly the value
// *src held before the instruction, plus the constant *delta:
//
//   mov %src, %dst          -> dst = src + 0
//   add $c, %r    (c >= 0)  -> r   = r'  + c   (dst == src == r)
//   sub $c, %r    (c >= 0)  -> r   = r'  - c   (dst == src == r)
//   lea c(%src), %dst (c>=0)-> dst = src + c   (base-only operand)
//
// A check proving src <= edata - D therefore proves dst <= edata - D + delta,
// so a read through dst at displacement d is covered when delta + d <= D —
// and, because the checks are unsigned compares, the address must also be
// provably non-negative: the O4 span domain tracks [min, max] over every
// path's accumulated delta and requires min + d >= 0, which is what makes
// the negative kSubRI delta sound (a decrement may wrap below zero unless a
// later displacement provably restores it). The verifier's interval
// abstract interpreter (src/verify/confinement.cc) applies the same rule to
// decoded bytes; the two must stay in agreement or O4 images fail
// post-link verify.
bool RegOffsetDerivation(const Instruction& inst, Reg* dst, Reg* src, int64_t* delta);

// ---------------------------------------------------------------------------
// Callee-clobber summaries (O4 call-transparent elision support).
//
// For every function (keyed by its symbol id) the summary records the set of
// general-purpose registers a call to it may leave modified on any returning
// path: the union of the function's own register writes (a pop counts as a
// write — the value made a round trip through attacker-writable memory,
// which the §5.1.2 spill rule already treats as a kill) and, transitively,
// of every direct callee or symbolic tail-jump target. Functions containing
// indirect calls or jumps, or transfers to targets without a summarized
// body, get the all-registers summary. The instrumentation scratch (%r11,
// kRangeCheckScratch) and %rsp are always included: summaries are computed
// over *pristine* IR, but the emitted callee additionally stages check
// addresses through the scratch register and brackets its own checks with
// pushfq/popfq.
//
// The O4 availability analysis uses this to keep coverage facts alive
// across `call`s whose callee provably never writes the checked base
// register, and to hoist checks out of loops whose bodies make only such
// calls. The post-link verifier recomputes an equivalent byte-level summary
// from the linked image and applies the same masked kill, so every elision
// stays independently re-provable (src/verify/confinement.cc).
class CalleeClobberSummary {
 public:
  static constexpr uint64_t kAllRegs = (uint64_t{1} << kNumGpRegs) - 1;

  bool Known(int32_t symbol) const { return masks_.count(symbol) > 0; }
  // Clobber mask of `symbol` (bit RegIndex(r)); kAllRegs when unknown.
  uint64_t MaskOf(int32_t symbol) const {
    auto it = masks_.find(symbol);
    return it == masks_.end() ? kAllRegs : it->second;
  }
  // True when a call to `symbol` may modify `r`; unknown callees may
  // modify anything.
  bool MayClobber(int32_t symbol, Reg r) const {
    return ((MaskOf(symbol) >> RegIndex(r)) & 1) != 0;
  }
  void Set(int32_t symbol, uint64_t mask) { masks_[symbol] = mask; }
  size_t size() const { return masks_.size(); }

 private:
  std::unordered_map<int32_t, uint64_t> masks_;
};

// Computes summaries for `functions`. `symbol_of` resolves a function name
// to its symbol id; a negative id skips the function (calls to it then hit
// the all-clobber default).
CalleeClobberSummary ComputeCalleeClobbers(
    const std::vector<Function>& functions,
    const std::function<int32_t(const std::string&)>& symbol_of);

}  // namespace krx

#endif  // KRX_SRC_IR_ANALYSIS_H_
