// CFG-level intermediate representation.
//
// A Function is an ordered list of BasicBlocks. Order is *layout order*:
// control falls through from one block to the next unless the block ends in
// an unconditional transfer. Blocks carry stable integer ids, so branch
// targets survive reordering; the diversifier makes all fallthroughs
// explicit before permuting layout order.
#ifndef KRX_SRC_IR_FUNCTION_H_
#define KRX_SRC_IR_FUNCTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/isa/instruction.h"

namespace krx {

struct BasicBlock {
  int32_t id = -1;
  std::vector<Instruction> insts;

  // True if this block was introduced as diversification padding (phantom
  // blocks are never targeted by any branch and never executed).
  bool phantom = false;

  bool ends_with_unconditional_transfer() const {
    return !insts.empty() && insts.back().IsTerminator();
  }
};

class Function {
 public:
  Function() = default;
  explicit Function(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  std::vector<BasicBlock>& blocks() { return blocks_; }
  const std::vector<BasicBlock>& blocks() const { return blocks_; }

  // Appends a new empty block at the end of the layout and returns its id.
  int32_t AddBlock();

  // Reserves a fresh block id without inserting a block; the caller is
  // responsible for adding a block with this id (used by passes that
  // restructure the layout wholesale).
  int32_t AllocateBlockId() { return next_block_id_++; }

  // Layout index of the block with the given id, or -1.
  int32_t IndexOfBlock(int32_t id) const;

  BasicBlock& block_by_id(int32_t id);
  const BasicBlock& block_by_id(int32_t id) const;

  // Successor block ids of the block at layout index `layout_idx`:
  // fallthrough and/or explicit branch targets. Indirect transfers and
  // returns contribute no intra-function successors.
  std::vector<int32_t> SuccessorsOf(int32_t layout_idx) const;

  // Total instruction count.
  size_t InstCount() const;

  // Structural sanity: unique block ids, branch targets exist, Jcc/JmpRel
  // with block targets appear only as the last or second-to-last transfer
  // position, phantom blocks are never targeted.
  Status Validate() const;

  // Multi-line disassembly-style listing.
  std::string ToString() const;

  // Next unused local label id (for tripwire labels).
  int32_t AllocateLabel() { return next_label_++; }

 private:
  std::string name_;
  std::vector<BasicBlock> blocks_;
  int32_t next_block_id_ = 0;
  int32_t next_label_ = 0;
};

}  // namespace krx

#endif  // KRX_SRC_IR_FUNCTION_H_
