#include "src/ir/function.h"

#include <unordered_set>

namespace krx {

int32_t Function::AddBlock() {
  BasicBlock b;
  b.id = next_block_id_++;
  blocks_.push_back(std::move(b));
  return blocks_.back().id;
}

int32_t Function::IndexOfBlock(int32_t id) const {
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].id == id) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

BasicBlock& Function::block_by_id(int32_t id) {
  int32_t idx = IndexOfBlock(id);
  KRX_CHECK(idx >= 0);
  return blocks_[static_cast<size_t>(idx)];
}

const BasicBlock& Function::block_by_id(int32_t id) const {
  int32_t idx = IndexOfBlock(id);
  KRX_CHECK(idx >= 0);
  return blocks_[static_cast<size_t>(idx)];
}

std::vector<int32_t> Function::SuccessorsOf(int32_t layout_idx) const {
  std::vector<int32_t> succs;
  const BasicBlock& b = blocks_[static_cast<size_t>(layout_idx)];
  bool falls_through = true;
  for (const Instruction& inst : b.insts) {
    if (inst.op == Opcode::kJcc && inst.target_block >= 0) {
      succs.push_back(inst.target_block);
    }
  }
  if (!b.insts.empty()) {
    const Instruction& last = b.insts.back();
    if (last.op == Opcode::kJmpRel && last.target_block >= 0) {
      succs.push_back(last.target_block);
      falls_through = false;
    } else if (last.IsTerminator()) {
      // ret / indirect jmp / hlt / tail call: no intra-function successor.
      falls_through = false;
    }
  }
  if (falls_through && static_cast<size_t>(layout_idx) + 1 < blocks_.size()) {
    succs.push_back(blocks_[static_cast<size_t>(layout_idx) + 1].id);
  }
  return succs;
}

size_t Function::InstCount() const {
  size_t n = 0;
  for (const BasicBlock& b : blocks_) {
    n += b.insts.size();
  }
  return n;
}

Status Function::Validate() const {
  std::unordered_set<int32_t> ids;
  for (const BasicBlock& b : blocks_) {
    if (!ids.insert(b.id).second) {
      return InternalError("duplicate block id in " + name_);
    }
  }
  for (size_t i = 0; i < blocks_.size(); ++i) {
    const BasicBlock& b = blocks_[i];
    for (size_t j = 0; j < b.insts.size(); ++j) {
      const Instruction& inst = b.insts[j];
      if (inst.target_block >= 0) {
        int32_t idx = IndexOfBlock(inst.target_block);
        if (idx < 0) {
          return InternalError("branch to unknown block in " + name_);
        }
        if (blocks_[static_cast<size_t>(idx)].phantom) {
          return InternalError("branch targets phantom block in " + name_);
        }
      }
      // Conditional branches may appear mid-block: range checks insert
      // rarely-taken `ja .Lviol` branches before confined reads.
      if (inst.IsTerminator() && j + 1 != b.insts.size()) {
        return InternalError("terminator not at block end in " + name_);
      }
    }
    // A block that falls through must have a layout successor.
    if (i + 1 == blocks_.size()) {
      bool falls = b.insts.empty() || !b.insts.back().IsTerminator();
      if (falls && !b.phantom) {
        return InternalError("last block of " + name_ + " falls through");
      }
    }
  }
  return Status::Ok();
}

std::string Function::ToString() const {
  std::string out = name_ + ":\n";
  for (const BasicBlock& b : blocks_) {
    out += ".B" + std::to_string(b.id);
    if (b.phantom) {
      out += " (phantom)";
    }
    out += ":\n";
    for (const Instruction& inst : b.insts) {
      out += "  " + FormatInstruction(inst);
      if (inst.inst_label >= 0) {
        out += "   # L" + std::to_string(inst.inst_label);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace krx
