#include "src/ir/analysis.h"

#include <algorithm>

namespace krx {

std::vector<std::vector<int32_t>> PredecessorsOf(const Function& fn) {
  const size_t n = fn.blocks().size();
  std::vector<std::vector<int32_t>> preds(n);
  for (size_t bi = 0; bi < n; ++bi) {
    for (int32_t succ_id : fn.SuccessorsOf(static_cast<int32_t>(bi))) {
      int32_t sidx = fn.IndexOfBlock(succ_id);
      if (sidx >= 0) {
        preds[static_cast<size_t>(sidx)].push_back(static_cast<int32_t>(bi));
      }
    }
  }
  return preds;
}

namespace {

// Post-order DFS from the entry over successor edges.
void PostOrder(const Function& fn, int32_t idx, std::vector<bool>& seen,
               std::vector<int32_t>& order) {
  seen[static_cast<size_t>(idx)] = true;
  for (int32_t succ_id : fn.SuccessorsOf(idx)) {
    int32_t sidx = fn.IndexOfBlock(succ_id);
    if (sidx >= 0 && !seen[static_cast<size_t>(sidx)]) {
      PostOrder(fn, sidx, seen, order);
    }
  }
  order.push_back(idx);
}

}  // namespace

DominatorTree::DominatorTree(const Function& fn) {
  const size_t n = fn.blocks().size();
  idom_.assign(n, -1);
  rpo_number_.assign(n, -1);
  if (n == 0) {
    return;
  }

  std::vector<bool> seen(n, false);
  std::vector<int32_t> post;
  post.reserve(n);
  PostOrder(fn, 0, seen, post);
  // Reverse postorder: entry first.
  std::vector<int32_t> rpo(post.rbegin(), post.rend());
  for (size_t i = 0; i < rpo.size(); ++i) {
    rpo_number_[static_cast<size_t>(rpo[i])] = static_cast<int32_t>(i);
  }

  std::vector<std::vector<int32_t>> preds = PredecessorsOf(fn);

  auto intersect = [&](int32_t a, int32_t b) {
    while (a != b) {
      while (rpo_number_[static_cast<size_t>(a)] > rpo_number_[static_cast<size_t>(b)]) {
        a = idom_[static_cast<size_t>(a)];
      }
      while (rpo_number_[static_cast<size_t>(b)] > rpo_number_[static_cast<size_t>(a)]) {
        b = idom_[static_cast<size_t>(b)];
      }
    }
    return a;
  };

  idom_[0] = 0;  // sentinel: entry "dominated by itself" during iteration
  bool changed = true;
  while (changed) {
    changed = false;
    for (int32_t b : rpo) {
      if (b == 0) {
        continue;
      }
      int32_t new_idom = -1;
      for (int32_t p : preds[static_cast<size_t>(b)]) {
        if (!Reachable(p) || idom_[static_cast<size_t>(p)] < 0) {
          continue;  // unreachable or not yet processed
        }
        new_idom = new_idom < 0 ? p : intersect(p, new_idom);
      }
      if (new_idom >= 0 && idom_[static_cast<size_t>(b)] != new_idom) {
        idom_[static_cast<size_t>(b)] = new_idom;
        changed = true;
      }
    }
  }
  idom_[0] = -1;  // drop the sentinel: the entry has no immediate dominator
}

bool DominatorTree::Dominates(int32_t a, int32_t b) const {
  if (!Reachable(a) || !Reachable(b)) {
    return false;
  }
  while (true) {
    if (b == a) {
      return true;
    }
    int32_t up = idom_[static_cast<size_t>(b)];
    if (up < 0) {
      return false;
    }
    b = up;
  }
}

std::vector<NaturalLoop> FindNaturalLoops(const Function& fn, const DominatorTree& dom) {
  std::vector<NaturalLoop> loops;
  std::vector<std::vector<int32_t>> preds = PredecessorsOf(fn);
  const size_t n = fn.blocks().size();

  auto loop_for_header = [&loops](int32_t header) -> NaturalLoop& {
    for (NaturalLoop& l : loops) {
      if (l.header == header) {
        return l;
      }
    }
    loops.push_back(NaturalLoop{});
    loops.back().header = header;
    loops.back().body.insert(header);
    return loops.back();
  };

  for (size_t u = 0; u < n; ++u) {
    if (!dom.Reachable(static_cast<int32_t>(u))) {
      continue;
    }
    for (int32_t succ_id : fn.SuccessorsOf(static_cast<int32_t>(u))) {
      int32_t h = fn.IndexOfBlock(succ_id);
      if (h < 0 || !dom.Dominates(h, static_cast<int32_t>(u))) {
        continue;
      }
      // Back edge u -> h: flood the body backwards from the latch.
      NaturalLoop& loop = loop_for_header(h);
      loop.latches.push_back(static_cast<int32_t>(u));
      std::vector<int32_t> work;
      if (loop.body.insert(static_cast<int32_t>(u)).second) {
        work.push_back(static_cast<int32_t>(u));
      }
      while (!work.empty()) {
        int32_t b = work.back();
        work.pop_back();
        if (b == h) {
          continue;
        }
        for (int32_t p : preds[static_cast<size_t>(b)]) {
          if (dom.Reachable(p) && loop.body.insert(p).second) {
            work.push_back(p);
          }
        }
      }
    }
  }

  std::sort(loops.begin(), loops.end(),
            [](const NaturalLoop& a, const NaturalLoop& b) { return a.header < b.header; });
  return loops;
}

bool RegOffsetDerivation(const Instruction& inst, Reg* dst, Reg* src, int64_t* delta) {
  switch (inst.op) {
    case Opcode::kMovRR:
      *dst = inst.r1;
      *src = inst.r2;
      *delta = 0;
      return true;
    case Opcode::kAddRI:
      if (inst.imm < 0) {
        return false;  // negative add is kSubRI's job; keep the rules disjoint
      }
      *dst = inst.r1;
      *src = inst.r1;
      *delta = inst.imm;
      return true;
    case Opcode::kSubRI:
      // Negative delta: the derived value sits *below* the checked one. The
      // O4 span domain tracks the lower edge so it can prove the read's
      // displacement pulls the address back to >= 0 (no unsigned wrap); the
      // verifier's CoverWindow lower bound is the byte-level counterpart.
      if (inst.imm < 0) {
        return false;
      }
      *dst = inst.r1;
      *src = inst.r1;
      *delta = -inst.imm;
      return true;
    case Opcode::kLea:
      if (!inst.mem.has_base() || inst.mem.has_index() || inst.mem.rip_relative ||
          inst.mem.disp < 0) {
        return false;
      }
      *dst = inst.r1;
      *src = inst.mem.base;
      *delta = inst.mem.disp;
      return true;
    default:
      return false;
  }
}

CalleeClobberSummary ComputeCalleeClobbers(
    const std::vector<Function>& functions,
    const std::function<int32_t(const std::string&)>& symbol_of) {
  struct Node {
    int32_t symbol = -1;
    uint64_t mask = 0;
    std::vector<size_t> callees;
  };
  std::vector<Node> nodes;
  std::unordered_map<int32_t, size_t> node_of;  // symbol id -> node index
  nodes.reserve(functions.size());
  for (const Function& fn : functions) {
    const int32_t sym = symbol_of(fn.name());
    if (sym < 0) {
      continue;
    }
    Node n;
    n.symbol = sym;
    node_of.emplace(sym, nodes.size());
    nodes.push_back(std::move(n));
  }
  size_t ni = 0;
  for (const Function& fn : functions) {
    if (symbol_of(fn.name()) < 0) {
      continue;
    }
    Node& node = nodes[ni++];
    bool unknown = false;
    for (const BasicBlock& b : fn.blocks()) {
      for (const Instruction& inst : b.insts) {
        Reg written[6];
        int wcount = 0;
        InstructionRegWrites(inst, written, &wcount);
        for (int i = 0; i < wcount; ++i) {
          if (IsGpReg(written[i])) {
            node.mask |= uint64_t{1} << RegIndex(written[i]);
          }
        }
        // Control that leaves the function and executes as part of this
        // call's effect: direct calls and symbolic tail jumps contribute
        // the target's summary; indirect transfers could go anywhere.
        const bool symbolic =
            (inst.op == Opcode::kCallRel || inst.op == Opcode::kJmpRel) &&
            inst.target_symbol >= 0;
        if (symbolic) {
          auto it = node_of.find(inst.target_symbol);
          if (it != node_of.end()) {
            node.callees.push_back(it->second);
          } else {
            unknown = true;
          }
        } else if (inst.IsCall() || inst.op == Opcode::kJmpR || inst.op == Opcode::kJmpM) {
          unknown = true;
        }
      }
    }
    node.mask |= (uint64_t{1} << RegIndex(kRangeCheckScratch)) |
                 (uint64_t{1} << RegIndex(Reg::kRsp));
    if (unknown) {
      node.mask = CalleeClobberSummary::kAllRegs;
    }
  }
  // Transitive closure: masks only grow and are bounded, so this converges.
  bool changed = true;
  while (changed) {
    changed = false;
    for (Node& node : nodes) {
      uint64_t m = node.mask;
      for (size_t c : node.callees) {
        m |= nodes[c].mask;
      }
      if (m != node.mask) {
        node.mask = m;
        changed = true;
      }
    }
  }
  CalleeClobberSummary out;
  for (const Node& node : nodes) {
    out.Set(node.symbol, node.mask);
  }
  return out;
}

}  // namespace krx
