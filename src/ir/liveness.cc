#include "src/ir/liveness.h"

namespace krx {
namespace {

// Transfer function through one instruction, backward:
// live_before = (live_after && !writes) || reads.
bool FlagsLiveThrough(const Instruction& inst, bool live_after) {
  if (inst.ReadsFlags()) {
    return true;
  }
  if (inst.WritesFlags()) {
    return false;
  }
  return live_after;
}

}  // namespace

FlagsLiveness::FlagsLiveness(const Function& fn) : fn_(fn) {
  const auto& blocks = fn.blocks();
  size_t n = blocks.size();
  live_in_.assign(n, false);
  live_out_.assign(n, false);

  // Map block id -> layout index once.
  std::vector<int32_t> id_to_idx;
  for (size_t i = 0; i < n; ++i) {
    int32_t id = blocks[i].id;
    if (static_cast<size_t>(id) >= id_to_idx.size()) {
      id_to_idx.resize(static_cast<size_t>(id) + 1, -1);
    }
    id_to_idx[static_cast<size_t>(id)] = static_cast<int32_t>(i);
  }

  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t ii = n; ii-- > 0;) {
      bool out = false;
      for (int32_t succ_id : fn.SuccessorsOf(static_cast<int32_t>(ii))) {
        int32_t sidx = id_to_idx[static_cast<size_t>(succ_id)];
        if (sidx >= 0) {
          out = out || live_in_[static_cast<size_t>(sidx)];
        }
      }
      bool in = out;
      const auto& insts = blocks[ii].insts;
      for (size_t j = insts.size(); j-- > 0;) {
        in = FlagsLiveThrough(insts[j], in);
      }
      if (out != live_out_[ii] || in != live_in_[ii]) {
        live_out_[ii] = out;
        live_in_[ii] = in;
        changed = true;
      }
    }
  }
}

bool FlagsLiveness::LiveBefore(int32_t layout_idx, size_t inst_idx) const {
  const BasicBlock& b = fn_.blocks()[static_cast<size_t>(layout_idx)];
  bool live = live_out_[static_cast<size_t>(layout_idx)];
  KRX_CHECK(inst_idx <= b.insts.size());
  for (size_t j = b.insts.size(); j-- > inst_idx;) {
    live = FlagsLiveThrough(b.insts[j], live);
  }
  return live;
}

bool InstructionWritesReg(const Instruction& inst, Reg r) {
  Reg regs[6];
  int count = 0;
  InstructionRegWrites(inst, regs, &count);
  for (int i = 0; i < count; ++i) {
    if (regs[i] == r) {
      return true;
    }
  }
  return false;
}

bool InstructionReadsReg(const Instruction& inst, Reg r) {
  Reg regs[6];
  int count = 0;
  InstructionRegReads(inst, regs, &count);
  for (int i = 0; i < count; ++i) {
    if (regs[i] == r) {
      return true;
    }
  }
  return false;
}

}  // namespace krx
