// Process-wide metrics registry: counters, gauges and fixed-bucket
// histograms with JSON snapshot export.
//
// Ownership: metric objects are created on first Get*() and are NEVER
// destroyed or re-created — call sites may cache the returned reference in
// a function-local static for a lock-free hot path. Reset() zeroes values
// in place, so cached references stay valid across test scenarios.
//
// Determinism: metrics that measure wall-clock (every *_us histogram, the
// per-phase timing counters) are registered with `timing = true` and are
// excluded from SnapshotJson(/*include_timing=*/false). Everything else is
// a pure function of (source, seed, config, workload), which is what the
// determinism test in tests/telemetry_test.cc pins down.
#ifndef KRX_SRC_TELEMETRY_METRICS_H_
#define KRX_SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace krx {
namespace telemetry {

class Counter {
 public:
  explicit Counter(std::string name, bool timing) : name_(std::move(name)), timing_(timing) {}
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  bool timing() const { return timing_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  bool timing_;
  std::atomic<uint64_t> value_{0};
};

class Gauge {
 public:
  explicit Gauge(std::string name, bool timing) : name_(std::move(name)), timing_(timing) {}
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  bool timing() const { return timing_; }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::string name_;
  bool timing_;
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket histogram. `bounds` are inclusive upper bounds in ascending
// order; observations above the last bound land in the overflow bucket.
class Histogram {
 public:
  Histogram(std::string name, std::vector<uint64_t> bounds, bool timing);
  void Observe(uint64_t v);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  const std::vector<uint64_t>& bounds() const { return bounds_; }
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t overflow_count() const { return overflow_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  bool timing() const { return timing_; }
  void Reset();

 private:
  std::string name_;
  std::vector<uint64_t> bounds_;
  bool timing_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> overflow_{0};
};

// Bucket bounds reused across the instrumented subsystems.
std::vector<uint64_t> LatencyBucketsUs();   // 1us .. ~10s, log-ish
std::vector<uint64_t> SmallCountBuckets();  // 1 .. 4096, powers of two

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // First call registers; later calls return the same object (the first
  // call's `timing` flag and — for histograms — bounds win).
  Counter& GetCounter(const std::string& name, bool timing = false);
  Gauge& GetGauge(const std::string& name, bool timing = false);
  Histogram& GetHistogram(const std::string& name, std::vector<uint64_t> bounds,
                          bool timing = false);

  // Zeroes every registered metric in place (objects survive — cached
  // references stay valid).
  void Reset();

  // Deterministic export: objects keyed by name in sorted order. With
  // include_timing = false, wall-clock metrics are omitted so the snapshot
  // is a pure function of the seeded run. `indent` prefixes every line
  // (for embedding in a larger document).
  std::string SnapshotJson(bool include_timing = true, const std::string& indent = "") const;

  // CSV form of the same snapshot: header `kind,name,value` followed by one
  // row per counter/gauge and three rows per histogram (<name>.count,
  // <name>.sum, <name>.overflow). Rows are sorted by (kind, name), so with
  // include_timing = false the document is as deterministic as the JSON
  // snapshot. Names containing `,` or `"` are quoted RFC-4180 style.
  std::string SnapshotCsv(bool include_timing = true) const;

 private:
  MetricsRegistry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace telemetry
}  // namespace krx

#if defined(KRX_TELEMETRY_DISABLED)
#define KRX_COUNTER_ADD(name, n) \
  do {                           \
  } while (0)
#define KRX_HISTO_US(name, v) \
  do {                        \
  } while (0)
#else
// `name` must be a string literal: the resolved metric is cached in a
// function-local static, so the disabled path is one relaxed load + branch
// and the enabled path skips the registry lock after first use.
#define KRX_COUNTER_ADD(name, n)                                              \
  do {                                                                        \
    if (::krx::telemetry::MetricsEnabled()) {                                 \
      static ::krx::telemetry::Counter& krx_tele_counter =                    \
          ::krx::telemetry::MetricsRegistry::Global().GetCounter(name);       \
      krx_tele_counter.Add(n);                                                \
    }                                                                         \
  } while (0)
// Wall-clock histogram in microseconds (registered timing, latency bounds).
#define KRX_HISTO_US(name, v)                                                 \
  do {                                                                        \
    if (::krx::telemetry::MetricsEnabled()) {                                 \
      static ::krx::telemetry::Histogram& krx_tele_histo =                    \
          ::krx::telemetry::MetricsRegistry::Global().GetHistogram(           \
              name, ::krx::telemetry::LatencyBucketsUs(), /*timing=*/true);   \
      krx_tele_histo.Observe(v);                                              \
    }                                                                         \
  } while (0)
#endif

#endif  // KRX_SRC_TELEMETRY_METRICS_H_
