#include "src/telemetry/json.h"

#include <cctype>
#include <cstdlib>

namespace krx {
namespace telemetry {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) {
      return s;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return InvalidArgumentError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWs();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type = JsonType::kString;
        return ParseString(&out->string);
      case 't':
        return ParseLiteral("true", out, JsonType::kBool, true);
      case 'f':
        return ParseLiteral("false", out, JsonType::kBool, false);
      case 'n':
        return ParseLiteral("null", out, JsonType::kNull, false);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber(out);
        }
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  Status ParseLiteral(const char* lit, JsonValue* out, JsonType type, bool b) {
    for (const char* p = lit; *p != '\0'; ++p) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(std::string("bad literal, expected ") + lit);
      }
      ++pos_;
    }
    out->type = type;
    out->boolean = b;
    return Status::Ok();
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (!ConsumeDigits()) {
      return Error("bad number");
    }
    if (Consume('.') && !ConsumeDigits()) {
      return Error("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!ConsumeDigits()) {
        return Error("bad exponent");
      }
    }
    out->type = JsonType::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return Status::Ok();
  }

  bool ConsumeDigits() {
    const size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        return Error("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t cp = 0;
          if (!ParseHex4(&cp)) {
            return Error("bad \\u escape");
          }
          // Surrogate pairs: decode the low half if present; otherwise keep
          // the lone surrogate as a replacement character.
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
              text_[pos_ + 1] == 'u') {
            pos_ += 2;
            uint32_t lo = 0;
            if (!ParseHex4(&lo)) {
              return Error("bad \\u escape");
            }
            if (lo >= 0xDC00 && lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              cp = 0xFFFD;
            }
          } else if (cp >= 0xD800 && cp <= 0xDFFF) {
            cp = 0xFFFD;
          }
          AppendUtf8(out, cp);
          break;
        }
        default:
          return Error("bad escape");
      }
    }
  }

  bool ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) {
      return false;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* out, uint32_t cp) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    out->type = JsonType::kArray;
    SkipWs();
    if (Consume(']')) {
      return Status::Ok();
    }
    while (true) {
      JsonValue elem;
      Status s = ParseValue(&elem, depth + 1);
      if (!s.ok()) {
        return s;
      }
      out->array.push_back(std::move(elem));
      SkipWs();
      if (Consume(']')) {
        return Status::Ok();
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']'");
      }
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    out->type = JsonType::kObject;
    SkipWs();
    if (Consume('}')) {
      return Status::Ok();
    }
    while (true) {
      SkipWs();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) {
        return s;
      }
      SkipWs();
      if (!Consume(':')) {
        return Error("expected ':'");
      }
      JsonValue val;
      s = ParseValue(&val, depth + 1);
      if (!s.ok()) {
        return s;
      }
      out->object[std::move(key)] = std::move(val);
      SkipWs();
      if (Consume('}')) {
        return Status::Ok();
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}'");
      }
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (type != JsonType::kObject) {
    return nullptr;
  }
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

Result<JsonValue> ParseJson(const std::string& text) { return Parser(text).Parse(); }

}  // namespace telemetry
}  // namespace krx
