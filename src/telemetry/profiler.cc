#include "src/telemetry/profiler.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/isa/encoding.h"

namespace krx {
namespace telemetry {
namespace {

// Census-side cost of one instruction, from the CostModel's public fields.
// This intentionally re-derives only the coarse opcode classes (the exact
// per-operand refinements live in the interpreter): the census feeds a
// percentage estimate, where class-level costs are what matters.
uint64_t CensusCost(const Instruction& inst, const CostModel& cost) {
  switch (inst.op) {
    case Opcode::kLoad:
    case Opcode::kAddRM:
    case Opcode::kCmpRM:
    case Opcode::kCmpMI:
      return inst.mem.rip_relative ? cost.load_riprel : cost.load;
    case Opcode::kStore:
    case Opcode::kStoreImm:
      return cost.store;
    case Opcode::kXorMR:
      return cost.rmw;
    case Opcode::kLea:
      return cost.lea;
    case Opcode::kImulRR:
      return cost.imul;
    case Opcode::kPushR:
      return cost.push;
    case Opcode::kPopR:
      return cost.pop;
    case Opcode::kPushfq:
      return cost.pushfq;
    case Opcode::kPopfq:
      return cost.popfq;
    case Opcode::kJcc:
      return cost.branch;
    case Opcode::kJmpRel:
      return cost.jmp;
    case Opcode::kJmpR:
    case Opcode::kJmpM:
    case Opcode::kCallR:
    case Opcode::kCallM:
      return cost.indirect;
    case Opcode::kCallRel:
      return cost.call;
    case Opcode::kRet:
      return cost.ret;
    case Opcode::kMovsq:
    case Opcode::kLodsq:
    case Opcode::kStosq:
    case Opcode::kCmpsq:
    case Opcode::kScasq:
      return cost.string_setup;
    case Opcode::kBndcu:
      return cost.bndcu;
    case Opcode::kLoadBnd0:
      return cost.bnd_load;
    case Opcode::kInt3:
      return cost.int3;
    case Opcode::kNop:
    case Opcode::kUd2:
    case Opcode::kHlt:
      return cost.nop;
    case Opcode::kWrmsr:
      return cost.wrmsr;
    default:
      return cost.alu;
  }
}

}  // namespace

CheckCensus CensusOf(const FunctionExtent& fn, uint64_t handler_lo, uint64_t handler_hi,
                     const CostModel& cost) {
  CheckCensus census;
  const uint8_t* bytes = fn.bytes.data();
  const size_t len = fn.bytes.size();

  // Pre-decode the function into an address-indexed table so branch targets
  // can be chased. kR^X-SFI checks usually branch to a function-local
  // violation block (reason-code setup + jmp into krx_handler) rather than
  // into the handler directly, so "is this Jcc a check" means "does its
  // target reach the handler by straight-line flow".
  std::map<uint64_t, std::pair<Instruction, int>> table;  // va -> (inst, size)
  {
    size_t scan = 0;
    while (scan < len) {
      Result<Decoded> d = DecodeInstruction(bytes, len, scan);
      if (!d.ok()) {
        ++scan;
        continue;
      }
      table.emplace(fn.addr + scan, std::make_pair(d->inst, d->size));
      scan += d->size;
    }
  }
  auto reaches_handler = [&](uint64_t va) {
    for (int hops = 0; hops < 8; ++hops) {
      if (va >= handler_lo && va < handler_hi) {
        return true;
      }
      auto it = table.find(va);
      if (it == table.end()) {
        return false;
      }
      const Instruction& i = it->second.first;
      const int size = it->second.second;
      if (i.op == Opcode::kJmpRel || i.op == Opcode::kCallRel) {
        // The violation block is `callq krx_handler; hlt` — a call into the
        // handler reaches it just as surely as a jump.
        va = va + static_cast<uint64_t>(size) + static_cast<uint64_t>(i.imm);
        continue;
      }
      if (i.op == Opcode::kRet || i.op == Opcode::kJcc || i.op == Opcode::kJmpR ||
          i.op == Opcode::kJmpM || i.op == Opcode::kCallR || i.op == Opcode::kCallM ||
          i.op == Opcode::kHlt || i.op == Opcode::kUd2) {
        return false;
      }
      va += static_cast<uint64_t>(size);  // straight-line (mov reason, ...)
    }
    return false;
  };

  size_t off = 0;
  // Sliding window of the two previous decoded instructions, to price the
  // cmp/lea that feed an SFI check branch.
  Instruction prev1, prev2;
  uint64_t prev1_cost = 0, prev2_cost = 0;
  bool have1 = false, have2 = false;
  while (off < len) {
    Result<Decoded> d = DecodeInstruction(bytes, len, off);
    if (!d.ok()) {
      // Phantom padding / data in the extent: skip a byte and resync.
      ++off;
      continue;
    }
    const Instruction& inst = d->inst;
    const uint64_t c = CensusCost(inst, cost);
    census.total_decicycles += c;
    if (inst.op == Opcode::kBndcu) {
      ++census.mpx_checks;
      census.check_decicycles += c;
    } else if (inst.op == Opcode::kJcc && handler_hi > handler_lo) {
      const uint64_t va = fn.addr + off;
      const uint64_t target =
          va + d->size + static_cast<uint64_t>(static_cast<int64_t>(inst.imm));
      if (reaches_handler(target)) {
        ++census.sfi_checks;
        census.check_decicycles += c;
        // The SFI sequence is lea (effective address) + cmp (against the
        // limit) + jcc into the handler; credit the feeders when present.
        if (have1 && (prev1.op == Opcode::kCmpRR || prev1.op == Opcode::kCmpRI)) {
          census.check_decicycles += prev1_cost;
          if (have2 && prev2.op == Opcode::kLea) {
            census.check_decicycles += prev2_cost;
          }
        }
      }
    }
    prev2 = prev1;
    prev2_cost = prev1_cost;
    have2 = have1;
    prev1 = inst;
    prev1_cost = c;
    have1 = true;
    off += d->size;
  }
  return census;
}

GuestProfiler::~GuestProfiler() { Stop(); }

void GuestProfiler::SetFunctions(std::vector<FunctionExtent> extents, uint64_t handler_lo,
                                 uint64_t handler_hi) {
  std::lock_guard<std::mutex> lock(mu_);
  extents_ = std::move(extents);
  std::sort(extents_.begin(), extents_.end(),
            [](const FunctionExtent& a, const FunctionExtent& b) { return a.addr < b.addr; });
  handler_lo_ = handler_lo;
  handler_hi_ = handler_hi;
  samples_per_fn_.assign(extents_.size(), 0);
  total_samples_ = 0;
  idle_samples_ = 0;
  unattributed_ = 0;
  for (const std::unique_ptr<Target>& t : targets_) {
    t->samples = 0;
    t->idle = 0;
  }
}

std::atomic<uint64_t>* GuestProfiler::AddTarget(const std::string& label) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Target>& t : targets_) {
    if (t->label == label) {
      return &t->pc;
    }
  }
  targets_.push_back(std::make_unique<Target>());
  targets_.back()->label = label;
  return &targets_.back()->pc;
}

void GuestProfiler::Start(std::chrono::microseconds period) {
  if (running_.exchange(true)) {
    return;
  }
  sampler_ = std::thread([this, period] { SamplerLoop(period); });
}

void GuestProfiler::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  sampler_.join();
}

void GuestProfiler::SamplerLoop(std::chrono::microseconds period) {
  while (running_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const std::unique_ptr<Target>& t : targets_) {
        const uint64_t pc = t->pc.load(std::memory_order_relaxed);
        ++total_samples_;
        ++t->samples;
        if (pc == 0) {
          ++idle_samples_;
          ++t->idle;
          continue;
        }
        const int idx = AttributePc(pc);
        if (idx < 0) {
          ++unattributed_;
        } else {
          ++samples_per_fn_[static_cast<size_t>(idx)];
        }
      }
    }
    std::this_thread::sleep_for(period);
  }
}

int GuestProfiler::AttributePc(uint64_t pc) const {
  // extents_ sorted by addr: find the last extent starting at or below pc.
  size_t lo = 0, hi = extents_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (extents_[mid].addr <= pc) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    return -1;
  }
  const FunctionExtent& fn = extents_[lo - 1];
  return pc < fn.addr + fn.size ? static_cast<int>(lo - 1) : -1;
}

ProfileReport GuestProfiler::MakeReport(const CostModel& cost) const {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileReport report;
  report.total_samples = total_samples_;
  report.idle_samples = idle_samples_;
  report.unattributed = unattributed_;
  const uint64_t live = total_samples_ - idle_samples_;
  for (size_t i = 0; i < extents_.size(); ++i) {
    if (samples_per_fn_[i] == 0) {
      continue;
    }
    FunctionProfile fp;
    fp.name = extents_[i].name;
    fp.samples = samples_per_fn_[i];
    fp.sample_pct = live == 0 ? 0 : 100.0 * static_cast<double>(fp.samples) /
                                        static_cast<double>(live);
    fp.census = CensusOf(extents_[i], handler_lo_, handler_hi_, cost);
    fp.check_cost_pct =
        fp.census.total_decicycles == 0
            ? 0
            : 100.0 * static_cast<double>(fp.census.check_decicycles) /
                  static_cast<double>(fp.census.total_decicycles);
    fp.est_check_share = fp.sample_pct * fp.check_cost_pct / 100.0;
    report.functions.push_back(std::move(fp));
  }
  std::sort(report.functions.begin(), report.functions.end(),
            [](const FunctionProfile& a, const FunctionProfile& b) {
              if (a.samples != b.samples) {
                return a.samples > b.samples;
              }
              return a.name < b.name;
            });
  for (const std::unique_ptr<Target>& t : targets_) {
    report.targets.push_back({t->label, t->samples, t->idle});
  }
  return report;
}

}  // namespace telemetry
}  // namespace krx
