#include "src/telemetry/chrome_trace.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace krx {
namespace telemetry {
namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendEvent(std::string* out, bool* first, const char* ph, uint64_t ts_us, uint32_t tid,
                 const char* name, const std::string& args) {
  out->append(*first ? "\n" : ",\n");
  *first = false;
  char head[96];
  std::snprintf(head, sizeof head, "    {\"ph\": \"%s\", \"pid\": 1, \"tid\": %u, \"ts\": %llu",
                ph, tid, static_cast<unsigned long long>(ts_us));
  out->append(head);
  out->append(", \"name\": \"");
  AppendEscaped(out, name);
  out->push_back('"');
  if (ph[0] == 'i') {
    out->append(", \"s\": \"t\"");
  }
  if (!args.empty()) {
    out->append(", \"args\": ");
    out->append(args);
  }
  out->append("}");
}

std::string InstantArgs(const TraceRecord& r) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"type\": \"%s\", \"arg0\": %llu, \"arg1\": %llu}", TraceEventTypeName(r.type),
                static_cast<unsigned long long>(r.arg0),
                static_cast<unsigned long long>(r.arg1));
  return buf;
}

}  // namespace

std::string ExportChromeTrace() {
  std::string out = "{\n  \"traceEvents\": [";
  bool first = true;
  for (const std::shared_ptr<TraceRing>& ring : AllRings()) {
    const std::vector<TraceRecord> records = ring->Snapshot();
    if (!ring->thread_name().empty()) {
      std::string args = "{\"name\": \"";
      AppendEscaped(&args, ring->thread_name().c_str());
      args += "\"}";
      AppendEvent(&out, &first, "M", 0, ring->tid(), "thread_name", args);
    }
    // Open-span bookkeeping so the window (which may have wrapped) exports
    // balanced: indexes into `records` of kSpanBegin without a kSpanEnd yet.
    std::vector<size_t> open;
    uint64_t last_ts = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      const TraceRecord& r = records[i];
      last_ts = r.ts_us;
      switch (r.type) {
        case TraceEventType::kSpanBegin:
          open.push_back(i);
          AppendEvent(&out, &first, "B", r.ts_us, r.tid, r.name, "");
          break;
        case TraceEventType::kSpanEnd:
          // An end whose begin fell off the ring has no "B" in the export;
          // emitting the "E" would close the wrong span. Drop it.
          if (!open.empty()) {
            open.pop_back();
            AppendEvent(&out, &first, "E", r.ts_us, r.tid, r.name, "");
          }
          break;
        case TraceEventType::kNone:
          break;
        default:
          AppendEvent(&out, &first, "i", r.ts_us, r.tid, r.name, InstantArgs(r));
          break;
      }
    }
    // Spans still open at the end of the window close at its last
    // timestamp, innermost first.
    while (!open.empty()) {
      const TraceRecord& b = records[open.back()];
      open.pop_back();
      AppendEvent(&out, &first, "E", last_ts, b.tid, b.name, "");
    }
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

}  // namespace telemetry
}  // namespace krx
