#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cstdio>

namespace krx {
namespace telemetry {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out->append(buf);
}

void AppendCsvField(std::string* out, const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) {
    out->append(s);
    return;
  }
  out->push_back('"');
  for (char c : s) {
    if (c == '"') {
      out->push_back('"');
    }
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

Histogram::Histogram(std::string name, std::vector<uint64_t> bounds, bool timing)
    : name_(std::move(name)), bounds_(std::move(bounds)), timing_(timing),
      buckets_(bounds_.size()) {}

void Histogram::Observe(uint64_t v) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  if (it == bounds_.end()) {
    overflow_.fetch_add(1, std::memory_order_relaxed);
  } else {
    buckets_[static_cast<size_t>(it - bounds_.begin())].fetch_add(1, std::memory_order_relaxed);
  }
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (std::atomic<uint64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  overflow_.store(0, std::memory_order_relaxed);
}

std::vector<uint64_t> LatencyBucketsUs() {
  return {1,      2,      5,       10,      20,      50,      100,     200,
          500,    1000,   2000,    5000,    10000,   20000,   50000,   100000,
          200000, 500000, 1000000, 2000000, 5000000, 10000000};
}

std::vector<uint64_t> SmallCountBuckets() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096};
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked for the same reason as the ring registry: hot paths cache
  // references in function-local statics whose destruction order relative
  // to this object is unspecified.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, bool timing) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(name, timing)).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, bool timing) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(name, timing)).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, std::vector<uint64_t> bounds,
                                         bool timing) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, std::make_unique<Histogram>(name, std::move(bounds), timing))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, g] : gauges_) {
    g->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

std::string MetricsRegistry::SnapshotJson(bool include_timing, const std::string& indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  const std::string in1 = indent + "  ";
  const std::string in2 = indent + "    ";
  out += "{\n";

  out += in1 + "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (c->timing() && !include_timing) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += in2 + "\"";
    AppendEscaped(&out, name);
    out += "\": ";
    AppendU64(&out, c->value());
  }
  out += first ? "},\n" : "\n" + in1 + "},\n";

  out += in1 + "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (g->timing() && !include_timing) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += in2 + "\"";
    AppendEscaped(&out, name);
    out += "\": ";
    AppendI64(&out, g->value());
  }
  out += first ? "},\n" : "\n" + in1 + "},\n";

  out += in1 + "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (h->timing() && !include_timing) {
      continue;
    }
    out += first ? "\n" : ",\n";
    first = false;
    out += in2 + "\"";
    AppendEscaped(&out, name);
    out += "\": {\"count\": ";
    AppendU64(&out, h->count());
    out += ", \"sum\": ";
    AppendU64(&out, h->sum());
    out += ", \"buckets\": [";
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      if (i > 0) {
        out += ", ";
      }
      out += "{\"le\": ";
      AppendU64(&out, h->bounds()[i]);
      out += ", \"n\": ";
      AppendU64(&out, h->bucket_count(i));
      out += "}";
    }
    out += "], \"overflow\": ";
    AppendU64(&out, h->overflow_count());
    out += "}";
  }
  out += first ? "}\n" : "\n" + in1 + "}\n";

  out += indent + "}";
  return out;
}

std::string MetricsRegistry::SnapshotCsv(bool include_timing) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "kind,name,value\n";
  for (const auto& [name, c] : counters_) {
    if (c->timing() && !include_timing) {
      continue;
    }
    out += "counter,";
    AppendCsvField(&out, name);
    out += ",";
    AppendU64(&out, c->value());
    out += "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (g->timing() && !include_timing) {
      continue;
    }
    out += "gauge,";
    AppendCsvField(&out, name);
    out += ",";
    AppendI64(&out, g->value());
    out += "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (h->timing() && !include_timing) {
      continue;
    }
    for (const char* field : {"count", "sum", "overflow"}) {
      out += "histogram,";
      AppendCsvField(&out, name + "." + field);
      out += ",";
      const uint64_t v = field[0] == 'c'   ? h->count()
                         : field[0] == 's' ? h->sum()
                                           : h->overflow_count();
      AppendU64(&out, v);
      out += "\n";
    }
  }
  return out;
}

}  // namespace telemetry
}  // namespace krx
