#include "src/telemetry/telemetry.h"

#include <chrono>
#include <cstdlib>
#include <mutex>

namespace krx {
namespace telemetry {
namespace {

uint32_t InitialMode() {
  const char* env = std::getenv("KRX_TELEMETRY");
  uint32_t mode = kModeMetrics;
  if (env != nullptr && !ParseModeName(env, &mode)) {
    mode = kModeMetrics;
  }
  return mode;
}

std::chrono::steady_clock::time_point TraceOrigin() {
  static const std::chrono::steady_clock::time_point origin = std::chrono::steady_clock::now();
  return origin;
}

struct RingRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceRing>> rings;
};

RingRegistry& Registry() {
  // Leaked: rings must stay valid for thread-local cached pointers held by
  // threads that may outlive any static-destruction order.
  static RingRegistry* registry = new RingRegistry();
  return *registry;
}

}  // namespace

namespace internal {
std::atomic<uint32_t> g_mode{InitialMode()};
}  // namespace internal

void SetMode(uint32_t mode) { internal::g_mode.store(mode, std::memory_order_relaxed); }

uint32_t Mode() { return internal::g_mode.load(std::memory_order_relaxed); }

bool ParseModeName(const std::string& name, uint32_t* mode) {
  if (name == "off") {
    *mode = 0;
  } else if (name == "metrics") {
    *mode = kModeMetrics;
  } else if (name == "trace" || name == "full") {
    *mode = kModeMetrics | kModeTrace;
  } else {
    return false;
  }
  return true;
}

uint64_t TraceNowUs() {
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                   std::chrono::steady_clock::now() - TraceOrigin())
                                   .count());
}

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kNone:
      return "none";
    case TraceEventType::kSpanBegin:
      return "span_begin";
    case TraceEventType::kSpanEnd:
      return "span_end";
    case TraceEventType::kInstant:
      return "instant";
    case TraceEventType::kCpuTrap:
      return "cpu_trap";
    case TraceEventType::kKrxViolation:
      return "krx_violation";
    case TraceEventType::kCheckOutcome:
      return "check_outcome";
    case TraceEventType::kBlockCacheFlush:
      return "block_cache_flush";
    case TraceEventType::kQuiesceWait:
      return "quiesce_wait";
    case TraceEventType::kRerandStep:
      return "rerand_step";
    case TraceEventType::kFaultInject:
      return "fault_inject";
    case TraceEventType::kModuleLoad:
      return "module_load";
    case TraceEventType::kModuleUnload:
      return "module_unload";
    case TraceEventType::kCompilePhase:
      return "compile_phase";
    case TraceEventType::kWatchdogLockup:
      return "watchdog_lockup";
    case TraceEventType::kHealthTransition:
      return "health_transition";
    case TraceEventType::kRetryBackoff:
      return "retry_backoff";
    case TraceEventType::kCheckpoint:
      return "checkpoint";
    case TraceEventType::kSpecWindow:
      return "spec_window";
    case TraceEventType::kSuperblockBuild:
      return "superblock_build";
    case TraceEventType::kSuperblockFlush:
      return "superblock_flush";
  }
  return "unknown";
}

TraceRing::TraceRing(uint32_t tid, size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity), tid_(tid) {}

void TraceRing::Emit(TraceEventType type, const char* name, uint64_t arg0, uint64_t arg1) {
  const uint64_t h = head_.load(std::memory_order_relaxed);
  TraceRecord& slot = slots_[h % slots_.size()];
  slot.ts_us = TraceNowUs();
  slot.arg0 = arg0;
  slot.arg1 = arg1;
  slot.tid = tid_;
  slot.type = type;
  slot.name[0] = '\0';
  if (name != nullptr) {
    std::strncpy(slot.name, name, sizeof(slot.name) - 1);
    slot.name[sizeof(slot.name) - 1] = '\0';
  }
  // Release-publish: a quiescent reader that acquires `head_` sees every
  // slot write that preceded it.
  head_.store(h + 1, std::memory_order_release);
}

std::vector<TraceRecord> TraceRing::Snapshot() const {
  const uint64_t h = head_.load(std::memory_order_acquire);
  const uint64_t n = slots_.size();
  const uint64_t retained = h < n ? h : n;
  std::vector<TraceRecord> out;
  out.reserve(retained);
  for (uint64_t i = h - retained; i < h; ++i) {
    out.push_back(slots_[i % n]);
  }
  return out;
}

void TraceRing::Clear() {
  for (TraceRecord& slot : slots_) {
    slot = TraceRecord{};
  }
  head_.store(0, std::memory_order_release);
}

namespace {
std::atomic<size_t> g_ring_capacity{kDefaultRingCapacity};
}  // namespace

void SetDefaultRingCapacity(size_t capacity) {
  g_ring_capacity.store(capacity == 0 ? 1 : capacity, std::memory_order_relaxed);
}

size_t DefaultRingCapacity() { return g_ring_capacity.load(std::memory_order_relaxed); }

TraceRing& ThreadRing() {
  thread_local TraceRing* ring = [] {
    RingRegistry& reg = Registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto created = std::make_shared<TraceRing>(static_cast<uint32_t>(reg.rings.size()),
                                               DefaultRingCapacity());
    reg.rings.push_back(created);
    return created.get();
  }();
  return *ring;
}

void SetThreadName(const std::string& name) {
  TraceRing& ring = ThreadRing();
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  ring.set_thread_name(name);
}

std::vector<std::shared_ptr<TraceRing>> AllRings() {
  RingRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.rings;
}

void ClearAllRings() {
  for (const std::shared_ptr<TraceRing>& ring : AllRings()) {
    ring->Clear();
  }
}

}  // namespace telemetry
}  // namespace krx
