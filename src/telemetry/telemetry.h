// Unified telemetry: typed event tracing with per-thread binary rings.
//
// This header is the tracing half of the telemetry subsystem (metrics live
// in metrics.h, the sampling guest profiler in profiler.h, the Chrome-trace
// exporter in chrome_trace.h). Everything here is observability-only:
// nothing in the simulator reads telemetry state to make execution
// decisions, so compiling it out or disabling it at runtime cannot change
// guest-visible behaviour.
//
// Layering: TraceRing is a fixed-capacity ring of fixed-size TraceRecords
// owned by exactly one writer thread. Wrap-around overwrites oldest-first
// (the retained window is always the most recent `capacity` records, in
// emission order). Snapshots are taken at quiescence — after the writer
// thread joined, or between runs — matching how the exporters use them.
// Rings are registered globally on first use and outlive their threads, so
// a post-run export sees every thread that ever traced.
//
// Gating contract (DESIGN.md §11):
//   - Compile time: building with KRX_TELEMETRY_DISABLED turns the
//     KRX_TRACE_* / KRX_COUNTER_* macros into nothing. The library still
//     compiles; exporters produce empty documents.
//   - Runtime: the process-wide mode word gates every call site. With
//     tracing off, an event call site costs one relaxed atomic load and a
//     predicted branch; no telemetry call site sits inside the
//     interpreter's per-instruction path (run/block boundaries only — the
//     sole per-instruction hook is the profiler's null-checked PC slot,
//     see src/cpu/cpu.h).
//   - KRX_TELEMETRY environment variable picks the initial mode: "off",
//     "metrics" (default), "trace"/"full" (metrics + event tracing).
#ifndef KRX_SRC_TELEMETRY_TELEMETRY_H_
#define KRX_SRC_TELEMETRY_TELEMETRY_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace krx {
namespace telemetry {

// Mode bits. Metrics and tracing gate independently; the profiler has no
// mode bit — it is armed by installing a PC slot on a Cpu.
inline constexpr uint32_t kModeMetrics = 1u << 0;
inline constexpr uint32_t kModeTrace = 1u << 1;

namespace internal {
extern std::atomic<uint32_t> g_mode;
}  // namespace internal

inline bool MetricsEnabled() {
  return (internal::g_mode.load(std::memory_order_relaxed) & kModeMetrics) != 0;
}
inline bool TraceEnabled() {
  return (internal::g_mode.load(std::memory_order_relaxed) & kModeTrace) != 0;
}

// Sets / reads the process-wide mode word (a bitmask of kMode*). The
// initial value comes from KRX_TELEMETRY ("off" = 0, "metrics" = metrics
// only, "trace"/"full" = metrics + tracing); unset or unparsable means
// "metrics".
void SetMode(uint32_t mode);
uint32_t Mode();
// "off" | "metrics" | "trace" | "full" -> mode bits; false on junk.
bool ParseModeName(const std::string& name, uint32_t* mode);

// Microseconds since the process trace origin (steady clock). All trace
// timestamps share this origin, so spans from different threads align.
uint64_t TraceNowUs();

// Typed records. `arg0`/`arg1` meanings per type are documented inline and
// mirrored by the Chrome exporter's args object.
enum class TraceEventType : uint16_t {
  kNone = 0,
  kSpanBegin,        // paired with kSpanEnd on the same thread; name = span
  kSpanEnd,
  kInstant,          // generic point event
  kCpuTrap,          // arg0 = ExceptionKind, arg1 = fault address
  kKrxViolation,     // arg0 = %rip inside krx_handler (0: harness-observed)
  kCheckOutcome,     // per-run aggregate: arg0 = bndcu retired, arg1 = loads
  kBlockCacheFlush,  // arg0 = new text generation
  kQuiesceWait,      // arg0 = wait in us, arg1 = 1 writer / 0 reader
  kRerandStep,       // arg0 = RerandStep ordinal, arg1 = step wall us
  kFaultInject,      // arg0 = FaultClass ordinal, arg1 = trigger step
  kModuleLoad,       // arg0 = handle, arg1 = text bytes
  kModuleUnload,     // arg0 = handle
  kCompilePhase,     // arg0 = phase wall us
  kWatchdogLockup,   // arg0 = 1 hard / 0 soft, arg1 = stalled ticks
  kHealthTransition, // arg0 = HealthAspect ordinal, arg1 = new HealthLevel
  kRetryBackoff,     // arg0 = attempt (1-based), arg1 = backoff us
  kCheckpoint,       // arg0 = 1 restore / 0 capture, arg1 = bytes or us
  kSpecWindow,       // arg0 = windows this run, arg1 = wrong-path insts
  kSuperblockBuild,  // arg0 = entry rip, arg1 = chained instruction count
  kSuperblockFlush,  // arg0 = new text generation
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceRecord {
  uint64_t ts_us = 0;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint32_t tid = 0;  // ring ordinal, stable for the thread's lifetime
  TraceEventType type = TraceEventType::kNone;
  uint16_t reserved = 0;
  char name[40] = {};  // NUL-terminated, truncated copy
};

inline constexpr size_t kDefaultRingCapacity = 8192;

// Capacity used for rings created after the call (a live thread's ring is
// never resized — call this before the first emission on the threads you
// care about). Tools whose whole run must fit in the retained window (the
// traced security_eval attack suite) raise it; zero is clamped to 1.
void SetDefaultRingCapacity(size_t capacity);
size_t DefaultRingCapacity();

// Single-writer event ring. The owning thread emits; any thread may read
// the atomic counters; Snapshot() must run at writer quiescence (records
// are plain memory — a snapshot racing the writer would tear).
class TraceRing {
 public:
  explicit TraceRing(uint32_t tid, size_t capacity = kDefaultRingCapacity);

  void Emit(TraceEventType type, const char* name, uint64_t arg0 = 0, uint64_t arg1 = 0);
  void Emit(TraceEventType type, const std::string& name, uint64_t arg0 = 0,
            uint64_t arg1 = 0) {
    Emit(type, name.c_str(), arg0, arg1);
  }

  // The retained window, oldest-first. Writer-quiescent callers only.
  std::vector<TraceRecord> Snapshot() const;

  // Drops every retained record (counters restart); writer-quiescent only.
  void Clear();

  uint64_t emitted() const { return head_.load(std::memory_order_acquire); }
  uint64_t dropped() const {
    const uint64_t h = emitted();
    return h > slots_.size() ? h - slots_.size() : 0;
  }
  size_t capacity() const { return slots_.size(); }
  uint32_t tid() const { return tid_; }

  const std::string& thread_name() const { return thread_name_; }
  void set_thread_name(std::string name) { thread_name_ = std::move(name); }

 private:
  std::vector<TraceRecord> slots_;
  std::atomic<uint64_t> head_{0};
  uint32_t tid_;
  std::string thread_name_;
};

// The calling thread's ring: created, registered globally and pinned for
// the process lifetime on first use.
TraceRing& ThreadRing();

// Labels the calling thread's ring in exported traces ("worker-3", ...).
void SetThreadName(const std::string& name);

// Every ring ever registered (includes rings of exited threads).
std::vector<std::shared_ptr<TraceRing>> AllRings();

// Clears the retained records of every registered ring (rings and thread
// bindings survive — unlike dropping the registry, this cannot dangle a
// live thread's cached ring). Tests and tools use it between scenarios.
void ClearAllRings();

// Emission helpers — the macro bodies. The disabled fast path is the
// TraceEnabled() load.
inline void EmitEvent(TraceEventType type, const char* name, uint64_t arg0 = 0,
                      uint64_t arg1 = 0) {
  if (!TraceEnabled()) {
    return;
  }
  ThreadRing().Emit(type, name, arg0, arg1);
}
inline void EmitEvent(TraceEventType type, const std::string& name, uint64_t arg0 = 0,
                      uint64_t arg1 = 0) {
  if (!TraceEnabled()) {
    return;
  }
  ThreadRing().Emit(type, name, arg0, arg1);
}

// RAII span. Captures the enabled decision at construction so a span that
// began is always closed (mode flips mid-span cannot unbalance the trace).
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (TraceEnabled()) {
      ring_ = &ThreadRing();
      std::strncpy(name_, name, sizeof(name_) - 1);
      ring_->Emit(TraceEventType::kSpanBegin, name_);
    }
  }
  explicit SpanScope(const std::string& name) : SpanScope(name.c_str()) {}
  ~SpanScope() {
    if (ring_ != nullptr) {
      ring_->Emit(TraceEventType::kSpanEnd, name_);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  TraceRing* ring_ = nullptr;
  char name_[40] = {};
};

}  // namespace telemetry
}  // namespace krx

// Call-site macros. KRX_TELEMETRY_DISABLED stubs them to nothing at
// compile time; otherwise they compile to the runtime-gated helpers above.
#define KRX_TELE_CAT2(a, b) a##b
#define KRX_TELE_CAT(a, b) KRX_TELE_CAT2(a, b)

#if defined(KRX_TELEMETRY_DISABLED)
#define KRX_TRACE_SPAN(name) \
  do {                       \
  } while (0)
#define KRX_TRACE_SPAN_SCOPED(name) ((void)0)
#define KRX_TRACE_EVENT(type, name, arg0, arg1) \
  do {                                          \
  } while (0)
#else
// Statement form: span covers the rest of the enclosing scope.
#define KRX_TRACE_SPAN_SCOPED(name) \
  ::krx::telemetry::SpanScope KRX_TELE_CAT(krx_tele_span_, __LINE__)(name)
#define KRX_TRACE_SPAN(name) KRX_TRACE_SPAN_SCOPED(name)
#define KRX_TRACE_EVENT(type, name, arg0, arg1) \
  ::krx::telemetry::EmitEvent(::krx::telemetry::TraceEventType::type, (name), (arg0), (arg1))
#endif

#endif  // KRX_SRC_TELEMETRY_TELEMETRY_H_
