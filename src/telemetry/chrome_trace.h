// Chrome-trace-event exporter: turns the per-thread TraceRings into a
// `{"traceEvents": [...]}` JSON document loadable by chrome://tracing and
// Perfetto. Span records become "B"/"E" duration events; every other typed
// record becomes a thread-scoped instant ("i") carrying its decoded args.
//
// Robustness: rings wrap, so a window can open with an unmatched kSpanEnd
// (dropped) or end with an unmatched kSpanBegin (closed at the ring's last
// timestamp) — the exported document is always balanced.
#ifndef KRX_SRC_TELEMETRY_CHROME_TRACE_H_
#define KRX_SRC_TELEMETRY_CHROME_TRACE_H_

#include <string>

namespace krx {
namespace telemetry {

// Serializes every registered ring (writer-quiescent callers only — see
// TraceRing::Snapshot).
std::string ExportChromeTrace();

}  // namespace telemetry
}  // namespace krx

#endif  // KRX_SRC_TELEMETRY_CHROME_TRACE_H_
