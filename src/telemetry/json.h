// Minimal JSON DOM parser. The repo deliberately avoids external
// dependencies, yet the telemetry acceptance tests and krx_trace's
// `validate` subcommand must check that exported documents actually parse
// and have the promised shape. This is a strict-enough recursive-descent
// parser for that job: full JSON value grammar, numbers kept as double,
// \uXXXX escapes decoded to UTF-8. It is a validation tool, not a
// serialization framework — exporters still print their own JSON.
#ifndef KRX_SRC_TELEMETRY_JSON_H_
#define KRX_SRC_TELEMETRY_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace krx {
namespace telemetry {

enum class JsonType : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

class JsonValue {
 public:
  JsonType type = JsonType::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  // Duplicate keys: last one wins (matching common parsers).
  std::map<std::string, JsonValue> object;

  bool is_null() const { return type == JsonType::kNull; }
  bool is_object() const { return type == JsonType::kObject; }
  bool is_array() const { return type == JsonType::kArray; }
  bool is_string() const { return type == JsonType::kString; }
  bool is_number() const { return type == JsonType::kNumber; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  // Convenience accessors with fallbacks for probing optional fields.
  double NumberOr(double fallback) const { return is_number() ? number : fallback; }
  const std::string& StringOr(const std::string& fallback) const {
    return is_string() ? string : fallback;
  }
};

// Parses a complete document; trailing non-whitespace is an error. Error
// statuses carry a byte offset.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace telemetry
}  // namespace krx

#endif  // KRX_SRC_TELEMETRY_JSON_H_
