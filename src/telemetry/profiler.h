// Sampling guest profiler.
//
// A host thread periodically reads per-Cpu "last guest PC" slots (installed
// via Cpu::set_sample_pc_slot — the Cpu publishes its %rip with one relaxed
// store per retired instruction while a slot is installed, and pays only a
// null-pointer test when none is) and attributes each sample to a guest
// function via a caller-provided extent table. Layering: this library sits
// below src/cpu and src/kernel, so it takes plain FunctionExtent data — the
// caller flattens its SymbolTable (see MakeExtentsFromSymbols in
// tools/krx_trace.cc for the idiom).
//
// Cost attribution: combined with the interpreter's CostModel, the profiler
// also reports a static census of protection-check sites per function
// (kBndcu instructions for kR^X-MPX; conditional branches into the
// krx_handler extent for kR^X-SFI, plus their feeding cmp/lea) and the
// deci-cycle price of one execution of each site. Sample share times check
// density yields the per-function share of total check cost — an estimate
// documented as such, not an exact count (sampling is statistical and the
// census assumes straight-line execution of each site).
#ifndef KRX_SRC_TELEMETRY_PROFILER_H_
#define KRX_SRC_TELEMETRY_PROFILER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cpu/cost_model.h"

namespace krx {
namespace telemetry {

struct FunctionExtent {
  std::string name;
  uint64_t addr = 0;
  uint64_t size = 0;
  std::vector<uint8_t> bytes;  // function body, for the check census; may be empty
};

struct CheckCensus {
  uint64_t sfi_checks = 0;   // conditional branches into krx_handler
  uint64_t mpx_checks = 0;   // bndcu instructions
  uint64_t check_decicycles = 0;  // one execution of every counted site
  uint64_t total_decicycles = 0;  // one execution of every instruction
};

// Counts check sites in a function body. `handler_lo/hi` bound the
// krx_handler extent ([lo, hi)); zero range disables SFI counting.
CheckCensus CensusOf(const FunctionExtent& fn, uint64_t handler_lo, uint64_t handler_hi,
                     const CostModel& cost);

struct FunctionProfile {
  std::string name;
  uint64_t samples = 0;
  double sample_pct = 0;       // share of non-idle samples
  CheckCensus census;
  double check_cost_pct = 0;   // static check share of the function's cycles
  double est_check_share = 0;  // sample_pct * check_cost_pct / 100
};

// Per-target (per-worker) attribution: how busy each sampled execution
// context was over the profiling window.
struct TargetProfile {
  std::string label;
  uint64_t samples = 0;  // sampler ticks taken while this slot existed
  uint64_t idle = 0;     // of those, ticks where the slot read 0
};

struct ProfileReport {
  uint64_t total_samples = 0;   // every sampler tick across all targets
  uint64_t idle_samples = 0;    // slot was 0 (no guest code running)
  uint64_t unattributed = 0;    // PC outside every known extent
  std::vector<FunctionProfile> functions;  // sorted by samples, descending
  std::vector<TargetProfile> targets;      // registration order
};

class GuestProfiler {
 public:
  GuestProfiler() = default;
  ~GuestProfiler();
  GuestProfiler(const GuestProfiler&) = delete;
  GuestProfiler& operator=(const GuestProfiler&) = delete;

  // Installs the attribution table. Call before Start(); extents must not
  // overlap (sorted internally).
  void SetFunctions(std::vector<FunctionExtent> extents, uint64_t handler_lo,
                    uint64_t handler_hi);

  // Registers a sampled execution context (one per Cpu). The returned slot
  // stays valid for the profiler's lifetime; install it with
  // Cpu::set_sample_pc_slot and clear it (set_sample_pc_slot(nullptr))
  // before the profiler is destroyed. Re-registering an existing label
  // returns that label's slot (workers in a pool keep one slot per worker
  // across bench iterations).
  std::atomic<uint64_t>* AddTarget(const std::string& label);

  void Start(std::chrono::microseconds period);
  void Stop();
  bool running() const { return running_.load(std::memory_order_relaxed); }

  // Safe after Stop() or while running (sampling pauses for the report).
  ProfileReport MakeReport(const CostModel& cost) const;

 private:
  struct Target {
    std::string label;
    std::atomic<uint64_t> pc{0};
    uint64_t samples = 0;  // guarded by mu_
    uint64_t idle = 0;     // guarded by mu_
  };

  void SamplerLoop(std::chrono::microseconds period);
  // Index into extents_ for pc, or -1.
  int AttributePc(uint64_t pc) const;

  mutable std::mutex mu_;  // guards counts below and extents_
  std::vector<FunctionExtent> extents_;  // sorted by addr
  uint64_t handler_lo_ = 0, handler_hi_ = 0;
  std::vector<std::unique_ptr<Target>> targets_;
  std::vector<uint64_t> samples_per_fn_;
  uint64_t total_samples_ = 0;
  uint64_t idle_samples_ = 0;
  uint64_t unattributed_ = 0;

  std::atomic<bool> running_{false};
  std::thread sampler_;
};

}  // namespace telemetry
}  // namespace krx

#endif  // KRX_SRC_TELEMETRY_PROFILER_H_
