#include "src/supervise/watchdog.h"

#include <utility>

#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace krx {

Watchdog::Watchdog() : Watchdog(Options()) {}

Watchdog::Watchdog(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : RealClock()) {}

Watchdog::~Watchdog() { Stop(); }

std::atomic<uint64_t>* Watchdog::Watch(std::string label,
                                       std::function<void()> on_hard_lockup) {
  std::lock_guard<std::mutex> lock(mu_);
  targets_.push_back(std::make_unique<Target>());
  targets_.back()->label = std::move(label);
  targets_.back()->on_hard = std::move(on_hard_lockup);
  return &targets_.back()->heartbeat;
}

void Watchdog::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      return;
    }
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) {
      return;
    }
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    const Clock::TimePoint until = clock_->Now() + options_.tick;
    if (clock_->WaitUntil(cv_, lock, until, [this] { return stop_; })) {
      break;
    }
    Scan();  // still under mu_
  }
}

void Watchdog::Scan() {
  ticks_.fetch_add(1, std::memory_order_acq_rel);
  KRX_COUNTER_ADD("watchdog.ticks", 1);
  for (const std::unique_ptr<Target>& t : targets_) {
    const uint64_t hb = t->heartbeat.load(std::memory_order_relaxed);
    if (hb == 0) {  // idle marker: no run in flight
      t->last = 0;
      t->stalled = 0;
      t->soft_reported = t->hard_reported = false;
      continue;
    }
    if (hb != t->last) {  // progressing
      t->last = hb;
      t->stalled = 0;
      t->soft_reported = t->hard_reported = false;
      continue;
    }
    ++t->stalled;
    if (!t->soft_reported && t->stalled >= static_cast<uint64_t>(options_.soft_ticks)) {
      t->soft_reported = true;
      soft_lockups_.fetch_add(1, std::memory_order_acq_rel);
      KRX_COUNTER_ADD("watchdog.soft_lockups", 1);
      KRX_TRACE_EVENT(kWatchdogLockup, t->label, /*hard=*/0, t->stalled);
      events_.push_back({t->label, /*hard=*/false, hb, t->stalled});
    }
    if (!t->hard_reported && t->stalled >= static_cast<uint64_t>(options_.hard_ticks)) {
      t->hard_reported = true;
      hard_lockups_.fetch_add(1, std::memory_order_acq_rel);
      KRX_COUNTER_ADD("watchdog.hard_lockups", 1);
      KRX_TRACE_EVENT(kWatchdogLockup, t->label, /*hard=*/1, t->stalled);
      events_.push_back({t->label, /*hard=*/true, hb, t->stalled});
      if (t->on_hard) {
        t->on_hard();
      }
    }
  }
}

std::vector<Watchdog::LockupEvent> Watchdog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

}  // namespace krx
