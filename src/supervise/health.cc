#include "src/supervise/health.h"

#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace krx {

const char* HealthAspectName(HealthAspect aspect) {
  switch (aspect) {
    case HealthAspect::kBlockCache:
      return "block_cache";
    case HealthAspect::kRerandTimer:
      return "rerand_timer";
    case HealthAspect::kCpu:
      return "cpu";
  }
  return "?";
}

const char* HealthLevelName(HealthLevel level) {
  switch (level) {
    case HealthLevel::kNominal:
      return "nominal";
    case HealthLevel::kDegraded:
      return "degraded";
    case HealthLevel::kQuarantined:
      return "quarantined";
  }
  return "?";
}

HealthState::HealthState(HealthThresholds thresholds) : thresholds_(thresholds) {}

void HealthState::Degrade(HealthAspect aspect, int cpu, HealthLevel to, uint64_t failures,
                          const std::string& reason) {
  transitions_.push_back({aspect, cpu, to, failures, reason});
  KRX_COUNTER_ADD("health.degradations", 1);
#if !defined(KRX_TELEMETRY_DISABLED)
  if (telemetry::MetricsEnabled()) {
    telemetry::MetricsRegistry::Global()
        .GetCounter(std::string("health.degrade.") + HealthAspectName(aspect))
        .Add(1);
  }
#endif
  KRX_TRACE_EVENT(kHealthTransition, reason, static_cast<uint64_t>(aspect),
                  static_cast<uint64_t>(to));
}

void HealthState::RecordBlockCacheCorruption(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  ++cache_failures_;
  if (!cache_degraded_ && cache_failures_ >= thresholds_.block_cache_failures) {
    cache_degraded_ = true;
    Degrade(HealthAspect::kBlockCache, -1, HealthLevel::kDegraded,
            static_cast<uint64_t>(cache_failures_), reason);
  }
}

void HealthState::RecordBlockCacheOk() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_failures_ = 0;
}

void HealthState::RecordEpochRollback(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  ++rollbacks_;
  if (!timer_degraded_ && rollbacks_ >= thresholds_.rerand_rollbacks) {
    timer_degraded_ = true;
    Degrade(HealthAspect::kRerandTimer, -1, HealthLevel::kDegraded,
            static_cast<uint64_t>(rollbacks_), reason);
  }
}

void HealthState::RecordEpochCommit() {
  std::lock_guard<std::mutex> lock(mu_);
  rollbacks_ = 0;
}

void HealthState::RecordHardLockup(int cpu, const std::string& reason) {
  std::lock_guard<std::mutex> lock(mu_);
  const int count = ++cpu_lockups_[cpu];
  if (!cpu_quarantined_[cpu] && count >= thresholds_.cpu_hard_lockups) {
    cpu_quarantined_[cpu] = true;
    Degrade(HealthAspect::kCpu, cpu, HealthLevel::kQuarantined, static_cast<uint64_t>(count),
            reason);
  }
}

bool HealthState::block_cache_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !cache_degraded_;
}

bool HealthState::rerand_timer_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !timer_degraded_;
}

bool HealthState::cpu_quarantined(int cpu) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cpu_quarantined_.find(cpu);
  return it != cpu_quarantined_.end() && it->second;
}

int HealthState::quarantined_cpus() const {
  std::lock_guard<std::mutex> lock(mu_);
  int n = 0;
  for (const auto& [cpu, q] : cpu_quarantined_) {
    (void)cpu;
    if (q) ++n;
  }
  return n;
}

std::vector<HealthTransition> HealthState::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

void HealthState::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_failures_ = 0;
  cache_degraded_ = false;
  rollbacks_ = 0;
  timer_degraded_ = false;
  cpu_lockups_.clear();
  cpu_quarantined_.clear();
}

}  // namespace krx
