// Heartbeat watchdog with soft/hard-lockup detection.
//
// Each watched execution context owns one heartbeat slot — an atomic the
// producer bumps as it makes progress and zeroes when idle. The Cpu
// publishes its retired-instruction count through such a slot (see
// Cpu::set_heartbeat_slot, the same one-relaxed-store-per-instruction
// discipline as the profiler's PC slot), so a nonzero heartbeat that stops
// moving across watchdog ticks means a run is in flight but frozen: a
// wedged step observer, a host thread stuck on a gate, a deadlocked
// callback. A heartbeat that keeps advancing is *not* a lockup — runaway-
// but-progressing guests are the deadline's job (RunOptions::deadline_us).
//
// Detection mirrors the kernel's soft/hard lockup split: after
// `soft_ticks` frozen ticks the watchdog records a soft lockup (telemetry
// only); after `hard_ticks` it records a hard lockup and fires the
// target's callback (typically Cpu::RequestPreempt + a HealthState
// quarantine). Both fire once per stall episode; progress or idleness
// rearms them.
//
// Deliberately layered below src/cpu: the watchdog sees only slots and
// callbacks, never a Cpu, so it is trivially testable with a FakeClock.
#ifndef KRX_SRC_SUPERVISE_WATCHDOG_H_
#define KRX_SRC_SUPERVISE_WATCHDOG_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/supervise/clock.h"

namespace krx {

class Watchdog {
 public:
  struct Options {
    std::chrono::milliseconds tick{20};
    int soft_ticks = 2;  // frozen ticks before a soft lockup is recorded
    int hard_ticks = 5;  // frozen ticks before the hard callback fires
    Clock* clock = nullptr;  // null = RealClock()
  };

  struct LockupEvent {
    std::string label;
    bool hard = false;
    uint64_t heartbeat = 0;      // the frozen value
    uint64_t stalled_ticks = 0;  // ticks it had been frozen when reported
  };

  Watchdog();  // default Options (defined out of line: nested-NSDMI rule)
  explicit Watchdog(Options options);
  ~Watchdog();  // stops and joins

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Registers a watched context and returns its heartbeat slot (stable for
  // the watchdog's lifetime). Call before Start(). `on_hard_lockup` runs on
  // the watchdog thread and must not call back into the watchdog.
  std::atomic<uint64_t>* Watch(std::string label,
                               std::function<void()> on_hard_lockup = nullptr);

  void Start();
  void Stop();

  uint64_t ticks() const { return ticks_.load(std::memory_order_acquire); }
  uint64_t soft_lockups() const { return soft_lockups_.load(std::memory_order_acquire); }
  uint64_t hard_lockups() const { return hard_lockups_.load(std::memory_order_acquire); }

  std::vector<LockupEvent> events() const;

 private:
  struct Target {
    std::string label;
    std::atomic<uint64_t> heartbeat{0};
    std::function<void()> on_hard;
    // Watchdog-thread-only stall bookkeeping.
    uint64_t last = 0;
    uint64_t stalled = 0;
    bool soft_reported = false;
    bool hard_reported = false;
  };

  void Loop();
  void Scan();

  Options options_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = true;
  std::vector<std::unique_ptr<Target>> targets_;
  std::vector<LockupEvent> events_;

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> soft_lockups_{0};
  std::atomic<uint64_t> hard_lockups_{0};

  std::thread thread_;
};

}  // namespace krx

#endif  // KRX_SRC_SUPERVISE_WATCHDOG_H_
