// Reusable retry/backoff policy engine.
//
// One RetryPolicy describes how a fallible operation may be re-attempted:
// a bounded attempt count, exponential backoff with optional jitter (drawn
// from a caller-owned LockedRng so concurrent retriers stay multiset-
// deterministic), and a per-class error filter deciding which failures are
// transient. A Retrier executes the attempts, sleeps through an injectable
// Clock (tests use FakeClock), and publishes per-operation counters:
//
//   retry.<name>.attempts   every attempt started
//   retry.<name>.retries    failures that led to another attempt
//   retry.<name>.exhausted  gave up: attempts exhausted or filter said no
//
// Consumers: CompileKernel's post-link verify retry (seed rotation),
// RerandEngine::RunEpochWithRetry (transient epoch failures), and
// LoadModuleWithRetry (transactional module loads).
#ifndef KRX_SRC_SUPERVISE_RETRY_H_
#define KRX_SRC_SUPERVISE_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/supervise/clock.h"

namespace krx {

class ModuleLoader;
struct ModuleObject;

struct RetryPolicy {
  // Total attempts, including the first (1 = no retries; clamped to >= 1).
  int max_attempts = 3;
  // Delay before retry k (1-based) is base_backoff * multiplier^(k-1),
  // scaled by a jitter factor drawn uniformly from [1-jitter, 1+jitter].
  std::chrono::microseconds base_backoff{0};
  double multiplier = 2.0;
  double jitter = 0.0;  // fraction in [0, 1); 0 = deterministic delays
  // Returns true when the failure is transient (worth retrying). Null means
  // every error retries.
  std::function<bool(const Status&)> retry_if;
};

class Retrier {
 public:
  // `name` keys the telemetry counters. `jitter_rng` may be null when
  // policy.jitter == 0; `clock` null means RealClock().
  Retrier(std::string name, RetryPolicy policy, LockedRng* jitter_rng = nullptr,
          Clock* clock = nullptr);

  // Runs `attempt_fn(attempt)` (attempt = 0-based) until it succeeds, the
  // filter rejects the failure, or attempts are exhausted. Returns the last
  // attempt's result either way.
  template <typename T>
  Result<T> Run(const std::function<Result<T>(int)>& attempt_fn) {
    for (int attempt = 0;; ++attempt) {
      NoteAttempt();
      Result<T> r = attempt_fn(attempt);
      if (r.ok() || !HandleFailure(r.status(), attempt)) {
        return r;
      }
    }
  }

  Status RunStatus(const std::function<Status(int)>& attempt_fn) {
    for (int attempt = 0;; ++attempt) {
      NoteAttempt();
      Status s = attempt_fn(attempt);
      if (s.ok() || !HandleFailure(s, attempt)) {
        return s;
      }
    }
  }

  // The backoff delay that precedes retry `attempt` (1-based), jitter
  // applied. Exposed so tests can pin the schedule down.
  std::chrono::microseconds BackoffDelay(int attempt);

  // Attempts started by this retrier so far.
  int attempts() const { return attempts_; }

 private:
  void NoteAttempt();
  // True = sleep happened and the caller should retry.
  bool HandleFailure(const Status& status, int attempt);

  std::string name_;
  RetryPolicy policy_;
  LockedRng* rng_;
  Clock* clock_;
  int attempts_ = 0;
};

// Retries a transactional module load under `policy`. The loader's rollback
// discipline makes every failed attempt side-effect free, which is what
// makes blind re-attempts sound here.
Result<int32_t> LoadModuleWithRetry(ModuleLoader& loader, const ModuleObject& module,
                                    const RetryPolicy& policy, LockedRng* jitter_rng = nullptr,
                                    Clock* clock = nullptr);

}  // namespace krx

#endif  // KRX_SRC_SUPERVISE_RETRY_H_
