// Checkpoint/restore of guest state at quiescent safe points.
//
// A checkpoint is a full snapshot of the guest-visible machine — physical
// memory, the page table, every symbol address — plus the architectural
// state of each tracked Cpu and any registered host-side bookkeeping (the
// rerand map's current function offsets, for example, travel through an
// opaque AddHostState hook so this library needs no dependency on
// src/rerand). Capture and Restore both run under the QuiesceGate when one
// is provided, so a snapshot can never tear against an in-flight run: safe
// points are exactly the run boundaries the re-randomization engine already
// quiesces to.
//
// Restore rewrites physical memory and the page table, resets symbol
// addresses and host state, restores each tracked Cpu's registers, bumps
// the image's text generation (every predecoded block was potentially
// decoded from post-snapshot bytes) and re-resolves the Cpus' cached
// krx_handler extents. The frame allocator's bump cursor is deliberately
// NOT rewound: frames allocated after the snapshot stay allocated, which
// keeps restore monotone (no risk of double-allocating a frame a live
// structure still points at) at the cost of leaking those frames.
//
// Known limitation: modules loaded or unloaded after a capture are not
// transactional against Restore (their text frames are restored bytewise,
// but the loader's handle table is host state the caller would need to
// register via AddHostState).
#ifndef KRX_SRC_SUPERVISE_CHECKPOINT_H_
#define KRX_SRC_SUPERVISE_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/status.h"
#include "src/cpu/cpu.h"
#include "src/kernel/image.h"

namespace krx {

class QuiesceGate;

class CheckpointManager {
 public:
  explicit CheckpointManager(KernelImage* image) : image_(image) {}

  // Cpus whose architectural state is saved/restored with the snapshot.
  void TrackCpu(Cpu* cpu) { cpus_.push_back(cpu); }

  // Registers host-side bookkeeping carried beside guest memory (saved at
  // Capture, rewritten at Restore). Keeps this library decoupled from the
  // owners of that state (RerandMap offsets, scheduler shadows, ...).
  void AddHostState(std::function<std::vector<uint64_t>()> save,
                    std::function<void(const std::vector<uint64_t>&)> restore);

  // Snapshots the machine. With a gate, runs gate-exclusive; timeout_ms > 0
  // bounds the quiesce wait (timeout = FailedPrecondition, no snapshot
  // taken). Replaces any previous checkpoint.
  Status Capture(QuiesceGate* gate = nullptr, uint64_t timeout_ms = 0);

  // Rewinds the machine to the last Capture. Same gating contract.
  Status Restore(QuiesceGate* gate = nullptr, uint64_t timeout_ms = 0);

  bool has_checkpoint() const { return has_checkpoint_; }
  uint64_t snapshot_bytes() const;
  uint64_t captures() const { return captures_; }
  uint64_t restores() const { return restores_; }

 private:
  struct HostStateHook {
    std::function<std::vector<uint64_t>()> save;
    std::function<void(const std::vector<uint64_t>&)> restore;
  };

  void DoCapture();
  void DoRestore();

  KernelImage* image_;
  std::vector<Cpu*> cpus_;
  std::vector<HostStateHook> host_hooks_;

  bool has_checkpoint_ = false;
  std::vector<uint8_t> phys_;
  PageTable page_table_;
  std::vector<uint64_t> symbol_addrs_;
  std::vector<std::vector<uint64_t>> host_state_;
  std::vector<Cpu::ArchState> cpu_state_;
  uint64_t captures_ = 0;
  uint64_t restores_ = 0;
};

}  // namespace krx

#endif  // KRX_SRC_SUPERVISE_CHECKPOINT_H_
