#include "src/supervise/retry.h"

#include <algorithm>

#include "src/kernel/module_loader.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace krx {
namespace {

void BumpRetryCounter(const std::string& name, const char* suffix) {
#if !defined(KRX_TELEMETRY_DISABLED)
  if (telemetry::MetricsEnabled()) {
    telemetry::MetricsRegistry::Global().GetCounter("retry." + name + suffix).Add(1);
  }
#else
  (void)name;
  (void)suffix;
#endif
}

}  // namespace

Retrier::Retrier(std::string name, RetryPolicy policy, LockedRng* jitter_rng, Clock* clock)
    : name_(std::move(name)),
      policy_(std::move(policy)),
      rng_(jitter_rng),
      clock_(clock != nullptr ? clock : RealClock()) {
  policy_.max_attempts = std::max(policy_.max_attempts, 1);
}

std::chrono::microseconds Retrier::BackoffDelay(int attempt) {
  double us = static_cast<double>(policy_.base_backoff.count());
  for (int i = 1; i < attempt; ++i) {
    us *= policy_.multiplier;
  }
  if (policy_.jitter > 0 && rng_ != nullptr && us > 0) {
    // Uniform draw in [1-jitter, 1+jitter] from 20 bits of the shared rng.
    const double u = static_cast<double>(rng_->NextBelow(1u << 20)) /
                     static_cast<double>(1u << 20);
    us *= 1.0 + policy_.jitter * (2.0 * u - 1.0);
  }
  return std::chrono::microseconds(static_cast<int64_t>(us));
}

void Retrier::NoteAttempt() {
  ++attempts_;
  BumpRetryCounter(name_, ".attempts");
}

bool Retrier::HandleFailure(const Status& status, int attempt) {
  const bool transient = !policy_.retry_if || policy_.retry_if(status);
  if (!transient || attempt + 1 >= policy_.max_attempts) {
    BumpRetryCounter(name_, ".exhausted");
    return false;
  }
  BumpRetryCounter(name_, ".retries");
  const std::chrono::microseconds delay = BackoffDelay(attempt + 1);
  KRX_TRACE_EVENT(kRetryBackoff, name_, static_cast<uint64_t>(attempt + 1),
                  static_cast<uint64_t>(delay.count()));
  if (delay.count() > 0) {
    clock_->SleepFor(delay);
  }
  return true;
}

Result<int32_t> LoadModuleWithRetry(ModuleLoader& loader, const ModuleObject& module,
                                    const RetryPolicy& policy, LockedRng* jitter_rng,
                                    Clock* clock) {
  Retrier retrier("module_load", policy, jitter_rng, clock);
  return retrier.Run<int32_t>([&](int) { return loader.Load(module); });
}

}  // namespace krx
