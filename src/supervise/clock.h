// Injectable time source for the supervision layer.
//
// Everything in src/supervise that waits — watchdog ticks, retry backoff,
// the rerand timer trigger — waits *through* a Clock instead of calling
// std::this_thread::sleep_for / cv.wait_for directly. Production code uses
// RealClock() (a process-wide singleton over std::chrono::steady_clock);
// tests inject a FakeClock and drive time with Advance(), which makes every
// timer-dependent test deterministic instead of sleep-based.
//
// The waiting primitive is WaitUntil(cv, lock, until, pred): the caller
// holds `lock` and waits on its *own* condition variable, so external
// wake-ups (StopTimer notifying timer_cv_, Watchdog::Stop) keep working
// unchanged — the clock only decides how the deadline is observed.
//
// FakeClock wake-up protocol (race-free by construction): WaitUntil
// registers {cv, mutex} with the clock before blocking, and Advance()
// acquires each registered waiter's mutex before notifying it. Since the
// waiter holds that mutex from its last predicate check until cv.wait()
// releases it, Advance() can only deliver the notification once the waiter
// is actually inside cv.wait() — a time bump can never slip into the gap
// between "checked the clock" and "went to sleep".
#ifndef KRX_SRC_SUPERVISE_CLOCK_H_
#define KRX_SRC_SUPERVISE_CLOCK_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

namespace krx {

class Clock {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;
  using Duration = std::chrono::steady_clock::duration;

  virtual ~Clock() = default;

  virtual TimePoint Now() = 0;

  // Waits on `cv` (whose mutex `lock` holds) until pred() turns true or the
  // clock reaches `until`. Returns pred() at exit, exactly like
  // std::condition_variable::wait_until.
  virtual bool WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                         TimePoint until, std::function<bool()> pred) = 0;

  // Unconditional sleep built on WaitUntil (a private cv nobody notifies).
  // On a FakeClock this blocks until Advance() passes the deadline.
  void SleepFor(Duration d);
};

// Process-wide steady-clock singleton.
Clock* RealClock();

// Test clock: time is a counter moved only by Advance(). Thread-safe.
class FakeClock : public Clock {
 public:
  FakeClock() = default;

  TimePoint Now() override;
  bool WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                 TimePoint until, std::function<bool()> pred) override;

  // Moves time forward and wakes every registered waiter (see the file
  // comment for why this cannot miss a wake-up).
  void Advance(Duration d);

  // Currently-registered waiters. The wake-up protocol above only covers
  // waiters that have *registered*; a sleeper thread that has not reached
  // WaitUntil yet would compute its deadline from the already-advanced
  // clock and wait forever. Tests hand-shake on this count before the
  // first Advance().
  size_t waiters() const;

 private:
  struct Waiter {
    std::condition_variable* cv;
    std::mutex* mu;
  };

  void Register(const Waiter& w);
  void Unregister(const Waiter& w);

  mutable std::mutex mu_;
  TimePoint now_{};  // epoch = default-constructed steady time_point
  std::vector<Waiter> waiters_;
};

}  // namespace krx

#endif  // KRX_SRC_SUPERVISE_CLOCK_H_
