#include "src/supervise/clock.h"

namespace krx {

void Clock::SleepFor(Duration d) {
  std::condition_variable cv;
  std::mutex mu;
  std::unique_lock<std::mutex> lock(mu);
  WaitUntil(cv, lock, Now() + d, [] { return false; });
}

namespace {

class SteadyClock : public Clock {
 public:
  TimePoint Now() override { return std::chrono::steady_clock::now(); }

  bool WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                 TimePoint until, std::function<bool()> pred) override {
    return cv.wait_until(lock, until, std::move(pred));
  }
};

}  // namespace

Clock* RealClock() {
  static SteadyClock* clock = new SteadyClock();
  return clock;
}

Clock::TimePoint FakeClock::Now() {
  std::lock_guard<std::mutex> lock(mu_);
  return now_;
}

size_t FakeClock::waiters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiters_.size();
}

void FakeClock::Register(const Waiter& w) {
  std::lock_guard<std::mutex> lock(mu_);
  waiters_.push_back(w);
}

void FakeClock::Unregister(const Waiter& w) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
    if (it->cv == w.cv && it->mu == w.mu) {
      waiters_.erase(it);
      return;
    }
  }
}

bool FakeClock::WaitUntil(std::condition_variable& cv, std::unique_lock<std::mutex>& lock,
                          TimePoint until, std::function<bool()> pred) {
  for (;;) {
    if (pred()) {
      return true;
    }
    if (Now() >= until) {
      return pred();
    }
    Waiter self{&cv, lock.mutex()};
    Register(self);
    // Re-check with the registration in place: an Advance() that fired
    // between the checks above and Register() would otherwise be missed.
    if (pred() || Now() >= until) {
      Unregister(self);
      return pred();
    }
    cv.wait(lock);
    Unregister(self);
  }
}

void FakeClock::Advance(Duration d) {
  std::vector<Waiter> waiters;
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += d;
    waiters = waiters_;
  }
  for (const Waiter& w : waiters) {
    // Acquiring the waiter's mutex first guarantees it is either already
    // parked in cv.wait (the notify lands) or still holds its mutex (we
    // block here until it parks). See the header's wake-up protocol.
    { std::lock_guard<std::mutex> sync(*w.mu); }
    w.cv->notify_all();
  }
}

}  // namespace krx
