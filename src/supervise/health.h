// Per-kernel degradation ladder.
//
// HealthState tracks consecutive failures per capability aspect and steps
// the system down a rung when a threshold is crossed, trading capability
// for stability instead of failing the same way forever:
//
//   aspect        failure signal                      degraded behaviour
//   -----------   ---------------------------------   -------------------------
//   kBlockCache   repeated generation-mismatch /      execute single-step
//                 differential corruption             (use_block_cache = false)
//   kRerandTimer  consecutive epoch rollbacks         timer trigger stopped;
//                                                     manual epochs only
//   kCpu          hard lockup (watchdog)              Cpu quarantined: no new
//                                                     work scheduled on it
//
// A success on an aspect resets its consecutive-failure counter but never
// climbs back up a rung — recovery is an explicit operator decision
// (Reset()), matching how kernels treat tainted state. Every downward
// transition is emitted as a telemetry instant (kHealthTransition) plus
// counters (health.degradations, health.degrade.<aspect>), so krx_trace
// shows both *that* and *why* the system degraded.
//
// Thread-safe: all recorders and readers take one internal mutex; readers
// on hot paths (block_cache_enabled) cost a mutex acquire per *task*, not
// per instruction.
#ifndef KRX_SRC_SUPERVISE_HEALTH_H_
#define KRX_SRC_SUPERVISE_HEALTH_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace krx {

enum class HealthAspect : uint8_t { kBlockCache = 0, kRerandTimer, kCpu };
const char* HealthAspectName(HealthAspect aspect);

enum class HealthLevel : uint8_t { kNominal = 0, kDegraded, kQuarantined };
const char* HealthLevelName(HealthLevel level);

struct HealthThresholds {
  int block_cache_failures = 2;  // consecutive corruptions before degrading
  int rerand_rollbacks = 2;      // consecutive rollbacks before manual-only
  int cpu_hard_lockups = 1;      // hard lockups before quarantine
};

struct HealthTransition {
  HealthAspect aspect = HealthAspect::kBlockCache;
  int cpu = -1;  // kCpu transitions only
  HealthLevel to = HealthLevel::kNominal;
  uint64_t failures = 0;  // consecutive failures that triggered it
  std::string reason;
};

class HealthState {
 public:
  explicit HealthState(HealthThresholds thresholds = HealthThresholds());

  // Failure/success signals. Successes reset the aspect's consecutive
  // counter; failures past the threshold degrade (once).
  void RecordBlockCacheCorruption(const std::string& reason);
  void RecordBlockCacheOk();
  void RecordEpochRollback(const std::string& reason);
  void RecordEpochCommit();
  void RecordHardLockup(int cpu, const std::string& reason);

  // Degraded-state queries, consulted by the bench runner (cache), the
  // rerand driver (timer) and schedulers (quarantine).
  bool block_cache_enabled() const;
  bool rerand_timer_enabled() const;
  bool cpu_quarantined(int cpu) const;
  int quarantined_cpus() const;

  std::vector<HealthTransition> transitions() const;

  // Operator-initiated recovery: back to nominal, counters cleared.
  void Reset();

 private:
  // Emits telemetry and records the transition. Caller holds mu_.
  void Degrade(HealthAspect aspect, int cpu, HealthLevel to, uint64_t failures,
               const std::string& reason);

  HealthThresholds thresholds_;

  mutable std::mutex mu_;
  int cache_failures_ = 0;
  bool cache_degraded_ = false;
  int rollbacks_ = 0;
  bool timer_degraded_ = false;
  std::map<int, int> cpu_lockups_;       // cpu -> hard lockups seen
  std::map<int, bool> cpu_quarantined_;  // cpu -> quarantined
  std::vector<HealthTransition> transitions_;
};

}  // namespace krx

#endif  // KRX_SRC_SUPERVISE_HEALTH_H_
