#include "src/supervise/checkpoint.h"

#include <chrono>
#include <utility>

#include "src/rerand/quiesce.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace krx {
namespace {

// Gate-exclusive section with an optional bounded wait. Returns false when
// the quiesce timed out (nothing acquired).
class ExclusiveScope {
 public:
  ExclusiveScope(QuiesceGate* gate, uint64_t timeout_ms) : gate_(gate) {
    if (gate_ == nullptr) {
      acquired_ = true;
    } else if (timeout_ms > 0) {
      acquired_ = gate_->BeginExclusiveFor(std::chrono::milliseconds(timeout_ms));
    } else {
      gate_->BeginExclusive();
      acquired_ = true;
    }
  }
  ~ExclusiveScope() {
    if (gate_ != nullptr && acquired_) {
      gate_->EndExclusive();
    }
  }
  bool acquired() const { return acquired_; }

 private:
  QuiesceGate* gate_;
  bool acquired_ = false;
};

}  // namespace

void CheckpointManager::AddHostState(std::function<std::vector<uint64_t>()> save,
                                     std::function<void(const std::vector<uint64_t>&)> restore) {
  host_hooks_.push_back({std::move(save), std::move(restore)});
}

uint64_t CheckpointManager::snapshot_bytes() const {
  return static_cast<uint64_t>(phys_.size() + symbol_addrs_.size() * sizeof(uint64_t) +
                               cpu_state_.size() * sizeof(Cpu::ArchState));
}

Status CheckpointManager::Capture(QuiesceGate* gate, uint64_t timeout_ms) {
  ExclusiveScope scope(gate, timeout_ms);
  if (!scope.acquired()) {
    KRX_COUNTER_ADD("checkpoint.capture_timeouts", 1);
    return FailedPreconditionError("checkpoint: quiesce timed out; no snapshot taken");
  }
  DoCapture();
  return Status::Ok();
}

void CheckpointManager::DoCapture() {
  const PhysMem& phys = image_->phys();
  phys_.resize(phys.size());
  phys.ReadBytes(0, phys_.data(), phys.size());
  page_table_ = image_->page_table();

  const SymbolTable& syms = image_->symbols();
  symbol_addrs_.resize(syms.size());
  for (size_t i = 0; i < syms.size(); ++i) {
    symbol_addrs_[i] = syms.at(static_cast<int32_t>(i)).address;
  }

  host_state_.clear();
  for (const HostStateHook& hook : host_hooks_) {
    host_state_.push_back(hook.save());
  }

  cpu_state_.clear();
  for (const Cpu* cpu : cpus_) {
    cpu_state_.push_back(cpu->SaveArch());
  }

  has_checkpoint_ = true;
  ++captures_;
  KRX_COUNTER_ADD("checkpoint.captures", 1);
  KRX_TRACE_EVENT(kCheckpoint, "capture", 0, snapshot_bytes());
}

Status CheckpointManager::Restore(QuiesceGate* gate, uint64_t timeout_ms) {
  if (!has_checkpoint_) {
    return FailedPreconditionError("checkpoint: Restore without a prior Capture");
  }
  ExclusiveScope scope(gate, timeout_ms);
  if (!scope.acquired()) {
    KRX_COUNTER_ADD("checkpoint.restore_timeouts", 1);
    return FailedPreconditionError("checkpoint: quiesce timed out; state unchanged");
  }
  const auto t0 = std::chrono::steady_clock::now();
  DoRestore();
  const uint64_t us = static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                                std::chrono::steady_clock::now() - t0)
                                                .count());
  KRX_HISTO_US("checkpoint.restore_us", us);
  KRX_TRACE_EVENT(kCheckpoint, "restore", 1, us);
  return Status::Ok();
}

void CheckpointManager::DoRestore() {
  image_->phys().WriteBytes(0, phys_.data(), phys_.size());
  image_->page_table() = page_table_;

  SymbolTable& syms = image_->symbols();
  for (size_t i = 0; i < symbol_addrs_.size() && i < syms.size(); ++i) {
    syms.at(static_cast<int32_t>(i)).address = symbol_addrs_[i];
  }

  for (size_t i = 0; i < host_hooks_.size(); ++i) {
    host_hooks_[i].restore(host_state_[i]);
  }

  for (size_t i = 0; i < cpus_.size() && i < cpu_state_.size(); ++i) {
    cpus_[i]->RestoreArch(cpu_state_[i]);
  }

  // Predecoded blocks may hold post-snapshot bytes; a moved-and-restored
  // krx_handler must be re-resolved from the restored symbol table.
  image_->BumpTextGeneration();
  for (Cpu* cpu : cpus_) {
    cpu->RefreshKrxHandlerRange();
  }
  ++restores_;
  KRX_COUNTER_ADD("checkpoint.restores", 1);
}

}  // namespace krx
