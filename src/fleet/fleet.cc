#include "src/fleet/fleet.h"

#include <utility>

#include "src/rerand/engine.h"
#include "src/telemetry/metrics.h"

namespace krx {

Result<CompiledKernel> MaterializeTenant(const CompiledKernel& base, const BuildOptions& options,
                                         uint64_t phys_bytes) {
  if (base.artifacts == nullptr || base.artifacts->pristine == nullptr) {
    return FailedPreconditionError("MaterializeTenant: base kernel has no link artifacts");
  }
  const LinkArtifacts& artifacts = *base.artifacts;
  const uint64_t seed = options.seed != 0 ? options.seed : options.config.seed;
  Rng rng(seed ^ 0xF1EE7ULL);

  CompiledKernel out;
  out.stats = base.stats;  // instrumentation ran once, on the base build
  out.config = options.config;
  out.layout = options.layout;
  out.artifacts = base.artifacts;
  out.rerand = std::make_shared<RerandMap>();
  out.rerand->pristine = artifacts.pristine;  // alias the shared blob, never copy
  out.rerand->pending_ptr_sites = artifacts.pending_ptr_sites;

  KernelLinkInput link;
  link.text = *artifacts.pristine;  // LinkKernel relocates its own working copy
  link.xkeys = artifacts.xkeys;
  link.xkey_symbols = artifacts.xkey_symbols;
  link.data_objects = artifacts.data_objects;
  link.phantom_guard_size = artifacts.phantom_guard_size;
  link.phys_bytes = phys_bytes != 0 ? phys_bytes : artifacts.phys_bytes;
  if (options.config.coarse_kaslr) {
    link.kaslr_slide = rng.NextBelow(1ULL << 14) << kPageShift;
  }

  auto image = LinkKernel(options.layout, std::move(link), artifacts.symbols);
  if (!image.ok()) {
    return image.status();
  }
  out.image = std::move(*image);
  Rng key_rng = rng.Fork();
  KRX_RETURN_IF_ERROR(out.image->ReplenishXkeys(key_rng));
  KRX_RETURN_IF_ERROR(out.rerand->Finalize(*out.image));
  KRX_COUNTER_ADD("fleet.cow_materializations", 1);
  return out;
}

TenantFleet::TenantFleet(KernelCache* cache, const FleetOptions& options)
    : cache_(cache), options_(options) {
  if (options_.workers_per_tenant < 1) {
    options_.workers_per_tenant = 1;
  }
}

Result<const TenantFleet::Tenant*> TenantFleet::Admit(const TenantSpec& spec) {
  // The base build for the tenant's pristine group: same config, canonical
  // fleet seed. Every same-config tenant resolves to the same ImageKey here,
  // so the cache compiles the group exactly once and hands back one shared
  // LinkArtifacts.
  TenantSpec base_spec = spec;
  base_spec.seed = 0;
  auto base_options = base_spec.ResolveBuildOptions(options_.base_seed);
  if (!base_options.ok()) {
    return base_options.status();
  }
  auto base = cache_->Acquire(*base_options, Sharing::kShared);
  if (!base.ok()) {
    return base.status();
  }

  auto tenant_options = spec.ResolveBuildOptions(options_.base_seed);
  if (!tenant_options.ok()) {
    return tenant_options.status();
  }
  auto kernel = MaterializeTenant(**base, *tenant_options, options_.phys_bytes);
  if (!kernel.ok()) {
    return kernel.status();
  }

  auto tenant = std::make_unique<Tenant>();
  tenant->spec = spec;
  tenant->effective_seed = spec.seed != 0 ? spec.seed : options_.base_seed;
  tenant->kernel = std::make_shared<CompiledKernel>(std::move(*kernel));

  // Per-tenant layout diversity: one re-randomization epoch seeded by the
  // tenant. No Cpus are registered yet, so quiescence passes trivially.
  if (options_.diversify_tenants && tenant->kernel->config.diversify) {
    RerandOptions ropts;
    ropts.seed = tenant->effective_seed;
    ropts.permute = true;
    ropts.rotate_xkeys = true;
    ropts.verify_after = PostLinkVerifyEnabled();
    RerandEngine engine(tenant->kernel.get(), ropts);
    auto report = engine.RunEpoch(RerandTrigger::kManual);
    if (!report.ok()) {
      return InternalError("tenant diversification epoch failed: " + report.status().message());
    }
    tenant->epochs = engine.epochs_completed();
  }

  KernelImage& image = *tenant->kernel->image;
  tenant->workers.resize(static_cast<size_t>(options_.workers_per_tenant));
  for (Tenant::Worker& worker : tenant->workers) {
    CpuOptions copts;
    copts.mpx_enabled = tenant->kernel->config.mpx;
    worker.cpu = std::make_unique<Cpu>(&image, CostModel(), copts);
    if (!worker.cpu->init_error().empty()) {
      return InternalError("cpu init failed: " + worker.cpu->init_error());
    }
    auto buffers = SetUpWorkloadBuffers(image, spec.workload, tenant->effective_seed);
    if (!buffers.ok()) {
      return buffers.status();
    }
    worker.buffers = *buffers;
  }

  KRX_COUNTER_ADD("fleet.tenants_admitted", 1);
  std::lock_guard<std::mutex> lock(mu_);
  tenant->index = static_cast<int>(tenants_.size());
  tenants_.push_back(std::move(tenant));
  return tenants_.back().get();
}

Result<WorkloadCounters> TenantFleet::Serve(int tenant_index, int worker) {
  Tenant* tenant = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tenant_index < 0 || tenant_index >= static_cast<int>(tenants_.size())) {
      return InvalidArgumentError("no such tenant: " + std::to_string(tenant_index));
    }
    tenant = tenants_[static_cast<size_t>(tenant_index)].get();
  }
  Tenant::Worker& w =
      tenant->workers[static_cast<size_t>(worker) % tenant->workers.size()];

  RunOptions run;
  run.max_steps = options_.max_steps;
  run.use_block_cache = options_.use_block_cache;

  WorkloadCounters counters;
  Status status;
  if (WorkloadIsStateful(tenant->spec.workload)) {
    std::lock_guard<std::mutex> lock(tenant->state_mu);
    status = RunWorkloadOnce(*w.cpu, tenant->spec, w.buffers, run, &counters);
  } else {
    status = RunWorkloadOnce(*w.cpu, tenant->spec, w.buffers, run, &counters);
  }
  KRX_COUNTER_ADD("fleet.requests", 1);
  if (!status.ok()) {
    KRX_COUNTER_ADD("fleet.request_failures", 1);
    return status;
  }
  return counters;
}

int TenantFleet::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(tenants_.size());
}

const TenantFleet::Tenant* TenantFleet::tenant(int tenant_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenant_index < 0 || tenant_index >= static_cast<int>(tenants_.size())) {
    return nullptr;
  }
  return tenants_[static_cast<size_t>(tenant_index)].get();
}

TenantFleet::MemoryReport TenantFleet::MemoryUsage() const {
  std::lock_guard<std::mutex> lock(mu_);
  MemoryReport report;
  report.tenants = static_cast<int>(tenants_.size());
  // Group by the shared LinkArtifacts object itself: aliasing IS the dedup.
  std::vector<const LinkArtifacts*> groups;
  for (const auto& tenant : tenants_) {
    const LinkArtifacts* artifacts = tenant->kernel->artifacts.get();
    bool seen = false;
    for (const LinkArtifacts* g : groups) {
      if (g == artifacts) {
        seen = true;
        break;
      }
    }
    if (!seen) {
      groups.push_back(artifacts);
      report.shared_bytes += artifacts->ApproxBytes();
    }
    const uint64_t image_bytes = tenant->kernel->image->phys().frames_allocated()
                                 << kPageShift;
    report.image_bytes += image_bytes;
    report.naive_total_bytes += artifacts->ApproxBytes() + image_bytes;
  }
  report.pristine_groups = static_cast<int>(groups.size());
  report.cow_total_bytes = report.shared_bytes + report.image_bytes;
  if (report.tenants > 0) {
    report.dedup_ratio = 1.0 - static_cast<double>(report.pristine_groups) /
                                   static_cast<double>(report.tenants);
    report.avg_bytes_per_tenant =
        static_cast<double>(report.cow_total_bytes) / report.tenants;
  }
  return report;
}

}  // namespace krx
