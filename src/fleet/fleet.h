// TenantFleet: the multi-tenant serving layer.
//
// N tenants x M worker Cpus run concurrently, each tenant on its own
// *diversified* kernel image materialized copy-on-write from a shared
// pristine build:
//
//   Admit(spec)
//     -> Acquire(base options, Sharing::kShared)   // one build per config
//     -> MaterializeTenant(base, tenant options)   // re-link, no recompile
//     -> per-tenant rerand epoch (tenant seed)     // unique layout
//     -> per-(tenant, worker) Cpus + scratch buffers
//
// Tenants whose specs differ only in seed (same config) share one pristine
// TextBlob and one LinkArtifacts object — the per-tenant cost is the
// re-linked image, not a private copy of the compile. MemoryUsage() reports
// exactly that split, against the naive copy-per-tenant baseline.
//
// Concurrency: admit all tenants, then Serve() from any number of threads.
// Distinct (tenant, worker) pairs run fully in parallel on read-only
// workloads; stateful workloads (VFS, IPC — guest globals) serialize on a
// per-tenant mutex, never across tenants.
#ifndef KRX_SRC_FLEET_FLEET_H_
#define KRX_SRC_FLEET_FLEET_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/fleet/kernel_cache.h"
#include "src/fleet/tenant.h"

namespace krx {

// Re-links a private tenant image from base.artifacts without re-running
// the protect/assemble phases: fresh placement (tenant layout + coarse-KASLR
// slide), fresh xkeys from the tenant seed, and a fresh RerandMap that
// ALIASES the base's pristine blob (pointer-identical, never copied).
// `phys_bytes` overrides the image's physical-memory size; 0 keeps the
// base's. The result's stats are the base's (instrumentation ran once, on
// the base build).
Result<CompiledKernel> MaterializeTenant(const CompiledKernel& base, const BuildOptions& options,
                                         uint64_t phys_bytes = 0);

struct FleetOptions {
  // Corpus seed and the canonical seed every pristine base build uses —
  // tenants with seed 0 also fall back to it.
  uint64_t base_seed = 0xB0F;
  int workers_per_tenant = 1;  // M Cpus per tenant
  bool use_block_cache = true;
  uint64_t max_steps = 50'000'000;
  // Physical memory per tenant image; 0 keeps the base build's size. The
  // base source defaults to 64MB/tenant — fleets of 16+ tenants usually
  // want this smaller.
  uint64_t phys_bytes = 0;
  // Run the per-tenant diversification epoch for configs with diversify
  // set. Off only for A/B experiments (all same-config tenants then share
  // one layout modulo the KASLR slide).
  bool diversify_tenants = true;
};

class TenantFleet {
 public:
  TenantFleet(KernelCache* cache, const FleetOptions& options);

  struct Tenant {
    int index = 0;  // admit order; the id Serve() takes
    TenantSpec spec;
    uint64_t effective_seed = 0;
    std::shared_ptr<CompiledKernel> kernel;  // CoW-materialized private image
    uint64_t epochs = 0;                     // diversification epochs run at admit

    // One Cpu + scratch buffers per worker (private Mmu / stack / block
    // cache; buffers are deterministic per tenant seed, so workers are
    // witnesses of each other).
    struct Worker {
      std::unique_ptr<Cpu> cpu;
      WorkloadBuffers buffers;
    };
    std::vector<Worker> workers;

    // Serializes stateful (guest-global-mutating) requests on this tenant.
    std::mutex state_mu;
  };

  // Materializes the tenant and its workers. Thread-compatible (serialize
  // admissions); returns the admitted tenant, owned by the fleet.
  Result<const Tenant*> Admit(const TenantSpec& spec);

  // Runs ONE workload request for tenant `tenant_index` on worker `worker`
  // (wrapped modulo the worker count). Thread-safe after admissions stop.
  Result<WorkloadCounters> Serve(int tenant_index, int worker);

  int tenant_count() const;
  const Tenant* tenant(int tenant_index) const;

  // The CoW memory split, against the naive copy-per-tenant baseline.
  struct MemoryReport {
    int tenants = 0;
    // Distinct shared LinkArtifacts sets (one per pristine group).
    int pristine_groups = 0;
    uint64_t shared_bytes = 0;       // sum of ApproxBytes over the groups
    uint64_t image_bytes = 0;        // used guest frames x page, all tenants
    uint64_t cow_total_bytes = 0;    // shared_bytes + image_bytes
    uint64_t naive_total_bytes = 0;  // every tenant carrying its own artifacts
    // 1 - pristine_groups / tenants: the fraction of per-tenant compiles
    // (and artifact copies) the fleet deduplicated away.
    double dedup_ratio = 0;
    double avg_bytes_per_tenant = 0;  // cow_total_bytes / tenants
  };
  MemoryReport MemoryUsage() const;

 private:
  KernelCache* cache_;
  FleetOptions options_;
  mutable std::mutex mu_;  // guards tenants_ (admissions vs lookups)
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace krx

#endif  // KRX_SRC_FLEET_FLEET_H_
