#include "src/fleet/image_key.h"

#include <sstream>
#include <tuple>

namespace krx {
namespace {

// FNV-1a over the key's field stream; strings are folded byte-wise with a
// terminator so {"a","b"} and {"ab"} cannot collide.
struct Fnv {
  uint64_t h = 0xCBF29CE484222325ULL;
  void Fold(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001B3ULL;
    }
  }
  void Fold(const std::string& s) {
    for (char c : s) {
      h = (h ^ static_cast<uint8_t>(c)) * 0x100000001B3ULL;
    }
    h = (h ^ 0xFF) * 0x100000001B3ULL;
  }
};

}  // namespace

ImageKey ImageKey::FromOptions(const BuildOptions& options) {
  const ProtectionConfig& c = options.config;
  ImageKey key;
  key.sfi = c.sfi;
  key.mpx = c.mpx;
  key.spec = c.spec;
  key.diversify = c.diversify;
  key.coarse_kaslr = c.coarse_kaslr;
  key.ra = c.ra;
  key.randomize_registers = c.randomize_registers;
  key.entropy_bits_k = c.entropy_bits_k;
  key.seed = options.seed != 0 ? options.seed : c.seed;
  key.exempt.assign(c.exempt_functions.begin(), c.exempt_functions.end());
  key.layout = options.layout;
  key.verify = options.verify;
  key.max_verify_retries = options.max_verify_retries;
  return key;
}

ImageKey ImageKey::PristineKey() const {
  ImageKey pristine = *this;
  pristine.seed = 0;
  pristine.layout = LayoutKind::kVanilla;
  pristine.coarse_kaslr = false;
  pristine.verify = BuildOptions::Verify::kDefault;
  pristine.max_verify_retries = 0;
  return pristine;
}

bool ImageKey::operator==(const ImageKey& other) const {
  return std::tie(sfi, mpx, spec, diversify, coarse_kaslr, ra, randomize_registers,
                  entropy_bits_k, seed, exempt, layout, verify, max_verify_retries) ==
         std::tie(other.sfi, other.mpx, other.spec, other.diversify, other.coarse_kaslr,
                  other.ra, other.randomize_registers, other.entropy_bits_k, other.seed,
                  other.exempt, other.layout, other.verify, other.max_verify_retries);
}

size_t ImageKey::Hash() const {
  Fnv fnv;
  fnv.Fold(static_cast<uint64_t>(sfi));
  fnv.Fold((static_cast<uint64_t>(mpx) << 0) | (static_cast<uint64_t>(diversify) << 1) |
           (static_cast<uint64_t>(coarse_kaslr) << 2) |
           (static_cast<uint64_t>(randomize_registers) << 3) |
           (static_cast<uint64_t>(spec) << 4));
  fnv.Fold(static_cast<uint64_t>(ra));
  fnv.Fold(static_cast<uint64_t>(entropy_bits_k));
  fnv.Fold(seed);
  for (const std::string& fn : exempt) {
    fnv.Fold(fn);
  }
  fnv.Fold(static_cast<uint64_t>(layout));
  fnv.Fold(static_cast<uint64_t>(verify));
  fnv.Fold(static_cast<uint64_t>(max_verify_retries));
  return static_cast<size_t>(fnv.h);
}

std::string ImageKey::DebugString() const {
  std::ostringstream key;
  key << "sfi=" << static_cast<int>(sfi) << ";mpx=" << mpx
      << ";spec=" << static_cast<int>(spec) << ";div=" << diversify
      << ";ckaslr=" << coarse_kaslr << ";ra=" << static_cast<int>(ra)
      << ";regrand=" << randomize_registers << ";k=" << entropy_bits_k << ";seed=" << seed
      << ";layout=" << static_cast<int>(layout) << ";verify=" << static_cast<int>(verify)
      << ";retries=" << max_verify_retries << ";exempt=";
  for (const std::string& fn : exempt) {  // sorted, stable
    key << fn << ',';
  }
  return key.str();
}

}  // namespace krx
