// TenantSpec: the typed identity of one fleet tenant and its workload.
//
// Promotes what used to be loose BenchTask fields (config_name / op_symbol /
// ops strings side by side) into one spec consumed by both the bench matrix
// (src/bench_runner) and the multi-tenant fleet (src/fleet/fleet.h): which
// protection config the tenant runs, its private diversification seed, and
// the workload it drives. Also home of WorkloadKind, which moved here from
// bench_runner so the fleet can execute workloads without depending on the
// bench driver.
#ifndef KRX_SRC_FLEET_TENANT_H_
#define KRX_SRC_FLEET_TENANT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/cpu/cpu.h"
#include "src/plugin/pipeline.h"

namespace krx {

enum class WorkloadKind : uint8_t {
  kLmbench,   // one synthetic kernel op, called with the scratch buffer
  kPhoronix,  // weighted mix of kernel ops (Table 2 row)
  kVfs,       // open/read/fstat/close walks over the baked-in filesystem
  kIpc,       // pipe ring + checksummed socket round trips
};

const char* WorkloadKindName(WorkloadKind kind);

// VFS and IPC mutate guest globals (fd tables, ring indices): they need a
// private image, or serialization, where lmbench/phoronix ops are read-only
// and safe to run concurrently on one shared image.
inline bool WorkloadIsStateful(WorkloadKind kind) {
  return kind == WorkloadKind::kVfs || kind == WorkloadKind::kIpc;
}

struct TenantSpec {
  int tenant_id = 0;
  std::string config_name;  // ParseConfigName vocabulary ("vanilla", "sfi-o3", ...)
  // Per-tenant diversification seed; 0 defers to the consumer's default
  // seed. Two tenants with the same config but different seeds share one
  // pristine blob in the fleet and diverge only in layout.
  uint64_t seed = 0;
  WorkloadKind workload = WorkloadKind::kLmbench;
  std::string op_symbol;                         // kLmbench: the op to call
  std::vector<std::pair<std::string, int>> ops;  // kPhoronix: (symbol, weight)

  // The build this spec asks for: ParseConfigName(config_name, effective
  // seed) packed into BuildOptions. Fails on an unknown config name.
  Result<BuildOptions> ResolveBuildOptions(uint64_t default_seed) const;
};

// ---- Workload execution (shared by BenchRunner::RunOne and the fleet). ----

// Guest-side scratch buffers a workload needs, allocated once per
// (tenant, worker) session and reused across requests — AllocDataPages is a
// bump allocator, so per-request allocation would leak frames.
struct WorkloadBuffers {
  uint64_t op_buffer = 0;  // lmbench/phoronix scratch
  uint64_t vfs_buf = 0;    // vfs_read / vfs_fstat destination page
  uint64_t ipc_src = 0;    // prefilled pipe/socket payload page
  uint64_t ipc_dst = 0;    // pipe/socket receive page
};

// Allocates (and deterministically fills) the buffers `workload` needs on
// `image`, seeded so identical (seed, workload) sessions produce identical
// guest inputs — the rax checksum witness depends on it.
Result<WorkloadBuffers> SetUpWorkloadBuffers(KernelImage& image, WorkloadKind workload,
                                             uint64_t seed);

// Accumulated guest work; rax_checksum is the order-sensitive FNV-1a fold
// of every call's return value — the semantic witness that two runs (cached
// vs uncached, CoW tenant vs private control) computed the same thing.
struct WorkloadCounters {
  uint64_t calls = 0;
  uint64_t instructions = 0;
  uint64_t deci_cycles = 0;
  uint64_t rax_checksum = 0;
};

void FoldRax(uint64_t rax, uint64_t* checksum);

// Runs ONE iteration of the spec's workload (one op call / one weighted op
// mix / one VFS walk / one IPC round) on `cpu`, accumulating into
// `counters`. Returns the first failing call's description as an error
// status. The caller owns concurrency: stateful workloads on a shared image
// must be serialized per image.
Status RunWorkloadOnce(Cpu& cpu, const TenantSpec& spec, const WorkloadBuffers& buffers,
                       const RunOptions& run, WorkloadCounters* counters);

}  // namespace krx

#endif  // KRX_SRC_FLEET_TENANT_H_
