// The compiled-image store: compile each distinct ImageKey exactly once,
// even when many worker threads request it concurrently.
//
// This is the sharded successor of the old single-mutex bench_runner
// KernelCache. The store is hash-partitioned over the typed ImageKey
// (src/fleet/image_key.h): each shard owns its own mutex and map, so a
// fleet of workers acquiring different keys never serializes on one lock,
// and a compile holds no lock at all — same-key requesters block on a
// shared_future of the in-flight build instead.
//
// The old Get/GetExclusive pair is collapsed into one entry point:
//
//   cache.Acquire(options, Sharing::kShared)   // cached, one build per key
//   cache.Acquire(options, Sharing::kPrivate)  // uncached private build
//
// Shared kernels are execute-only state: per-thread Cpu instances may run
// on one concurrently (each owns its Mmu and stack; frame allocation is
// thread-safe) but nothing may remap or poke text. Stateful workloads that
// mutate guest globals (VFS fd tables, IPC rings) — and tenant
// materializations that need a mutable image — request Sharing::kPrivate.
#ifndef KRX_SRC_FLEET_KERNEL_CACHE_H_
#define KRX_SRC_FLEET_KERNEL_CACHE_H_

#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/fleet/image_key.h"
#include "src/plugin/pipeline.h"

namespace krx {

// How an acquired kernel may be used. kShared returns the one cached build
// for the key (immutable image, many concurrent readers); kPrivate compiles
// a fresh uncached kernel the caller owns outright.
enum class Sharing : uint8_t { kShared, kPrivate };

const char* SharingName(Sharing sharing);

class KernelCache {
 public:
  // `factory` produces the kernel source tree for every build (called once
  // per distinct shared key, and once per private acquire). It must be
  // callable from any worker thread. `shard_count` is rounded up to a power
  // of two; 0 picks the default (16).
  using SourceFactory = std::function<KernelSource()>;
  explicit KernelCache(SourceFactory factory, int shard_count = 0);

  // The one entry point. Thread-safe.
  Result<std::shared_ptr<CompiledKernel>> Acquire(const BuildOptions& options, Sharing sharing);

  // Per-sharing-mode accounting (the old flat hits/compiles/
  // exclusive_compiles triple, folded into one shape per mode).
  struct ModeStats {
    uint64_t requests = 0;
    uint64_t hits = 0;      // shared only: served an already-requested key
    uint64_t compiles = 0;  // builds actually run in this mode
    // Shared only: hits that arrived while the keyed build was still
    // compiling — requests the shared_future deduplicated into one run.
    uint64_t inflight_dedup = 0;
  };
  struct Stats {
    ModeStats shared_mode;
    ModeStats private_mode;
  };
  Stats stats() const;

  int shard_count() const { return static_cast<int>(shards_.size()); }
  // Which shard a key lands on (hash-partitioned). Exposed for tests.
  int ShardIndex(const ImageKey& key) const {
    return static_cast<int>(key.Hash() & (shards_.size() - 1));
  }

 private:
  struct Built {
    std::shared_ptr<CompiledKernel> kernel;  // null on failure
    Status status;
  };
  struct Shard {
    std::mutex mu;
    std::unordered_map<ImageKey, std::shared_future<Built>> entries;
  };

  SourceFactory factory_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace krx

#endif  // KRX_SRC_FLEET_KERNEL_CACHE_H_
