// ImageKey: the typed identity of a compiled kernel image.
//
// Replaces the old stringly-typed KernelCache::Key(BuildOptions) ->
// std::string. An ImageKey carries exactly the fields that change the
// emitted image — every build-relevant ProtectionConfig knob, the layout,
// the effective diversification seed, and the verify policy — as typed
// values with operator== and a std::hash specialization, so the sharded
// compiled-image store (src/fleet/kernel_cache.h) can hash-partition and
// dedupe on it directly. The serialized string form survives only as
// DebugString(), a debug formatter for krx_objdump/stats output.
#ifndef KRX_SRC_FLEET_IMAGE_KEY_H_
#define KRX_SRC_FLEET_IMAGE_KEY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/plugin/pipeline.h"

namespace krx {

struct ImageKey {
  // Build-relevant ProtectionConfig fields (everything that changes the
  // emitted bytes).
  SfiLevel sfi = SfiLevel::kNone;
  bool mpx = false;
  SpecMitigation spec = SpecMitigation::kNone;
  bool diversify = false;
  bool coarse_kaslr = false;
  RaScheme ra = RaScheme::kNone;
  bool randomize_registers = false;
  int entropy_bits_k = 0;
  uint64_t seed = 0;  // effective: BuildOptions::seed when nonzero, else config.seed
  std::vector<std::string> exempt;  // sorted (std::set order preserved)

  // Link / policy fields.
  LayoutKind layout = LayoutKind::kVanilla;
  BuildOptions::Verify verify = BuildOptions::Verify::kDefault;
  int max_verify_retries = 0;

  static ImageKey FromOptions(const BuildOptions& options);

  // The identity of the *pristine* (pre-relocation, pre-placement) text
  // blob this key's build would produce, i.e. this key with every field
  // that only affects linking or build policy — seed, layout, coarse-KASLR
  // slide, verify policy — canonicalized away. Two tenants whose keys share
  // a PristineKey differ only in layout/seed and can be served
  // copy-on-write from one shared blob (src/fleet/fleet.h).
  ImageKey PristineKey() const;

  bool operator==(const ImageKey& other) const;
  bool operator!=(const ImageKey& other) const { return !(*this == other); }
  size_t Hash() const;

  // The legacy serialized form ("sfi=3;mpx=0;..."), kept only as a debug
  // formatter (krx_objdump --stats, fleet stats dumps). Never used as a
  // map key.
  std::string DebugString() const;
};

}  // namespace krx

namespace std {
template <>
struct hash<krx::ImageKey> {
  size_t operator()(const krx::ImageKey& key) const { return key.Hash(); }
};
}  // namespace std

#endif  // KRX_SRC_FLEET_IMAGE_KEY_H_
