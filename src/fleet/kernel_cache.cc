#include "src/fleet/kernel_cache.h"

#include <chrono>

#include "src/telemetry/metrics.h"

namespace krx {
namespace {

size_t RoundUpPow2(int n) {
  size_t p = 1;
  while (static_cast<int>(p) < n) p <<= 1;
  return p;
}

}  // namespace

const char* SharingName(Sharing sharing) {
  switch (sharing) {
    case Sharing::kShared:
      return "shared";
    case Sharing::kPrivate:
      return "private";
  }
  return "?";
}

KernelCache::KernelCache(SourceFactory factory, int shard_count)
    : factory_(std::move(factory)) {
  const size_t shards = RoundUpPow2(shard_count > 0 ? shard_count : 16);
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Result<std::shared_ptr<CompiledKernel>> KernelCache::Acquire(const BuildOptions& options,
                                                             Sharing sharing) {
  if (sharing == Sharing::kPrivate) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.private_mode.requests;
      ++stats_.private_mode.compiles;
    }
    KRX_COUNTER_ADD("kernel_cache.private_compiles", 1);
    auto compiled = CompileKernel(factory_(), options);
    if (!compiled.ok()) {
      return compiled.status();
    }
    return std::make_shared<CompiledKernel>(std::move(*compiled));
  }

  const ImageKey key = ImageKey::FromOptions(options);
  Shard& shard = *shards_[static_cast<size_t>(ShardIndex(key))];
  std::promise<Built> promise;
  std::shared_future<Built> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      future = it->second;
    } else {
      future = promise.get_future().share();
      shard.entries.emplace(key, future);
      builder = true;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shared_mode.requests;
    if (builder) {
      ++stats_.shared_mode.compiles;
    } else {
      ++stats_.shared_mode.hits;
      // A not-yet-ready future means the keyed build is still running: this
      // request was deduplicated into it rather than served from cache.
      if (future.wait_for(std::chrono::seconds(0)) != std::future_status::ready) {
        ++stats_.shared_mode.inflight_dedup;
        KRX_COUNTER_ADD("kernel_cache.inflight_dedup", 1);
      }
    }
  }
  if (builder) {
    KRX_COUNTER_ADD("kernel_cache.misses", 1);
    // Compile outside every lock: other keys proceed in parallel, and
    // same-key requesters block on the future, not a mutex.
    Built built;
    auto compiled = CompileKernel(factory_(), options);
    if (compiled.ok()) {
      built.kernel = std::make_shared<CompiledKernel>(std::move(*compiled));
    } else {
      built.status = compiled.status();
    }
    promise.set_value(std::move(built));
  } else {
    KRX_COUNTER_ADD("kernel_cache.hits", 1);
  }
  const Built& built = future.get();
  if (built.kernel == nullptr) {
    return built.status;
  }
  return built.kernel;
}

KernelCache::Stats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace krx
