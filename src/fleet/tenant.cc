#include "src/fleet/tenant.h"

#include "src/base/rng.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/ipc.h"
#include "src/workload/vfs.h"

namespace krx {

const char* WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kLmbench:
      return "lmbench";
    case WorkloadKind::kPhoronix:
      return "phoronix";
    case WorkloadKind::kVfs:
      return "vfs";
    case WorkloadKind::kIpc:
      return "ipc";
  }
  return "?";
}

Result<BuildOptions> TenantSpec::ResolveBuildOptions(uint64_t default_seed) const {
  const uint64_t effective = seed != 0 ? seed : default_seed;
  BuildOptions options;
  if (!ParseConfigName(config_name, effective, &options.config, &options.layout)) {
    return InvalidArgumentError("unknown config name: " + config_name);
  }
  options.seed = effective;
  return options;
}

void FoldRax(uint64_t rax, uint64_t* checksum) {
  *checksum = (*checksum ^ rax) * 0x100000001B3ULL;
}

Result<WorkloadBuffers> SetUpWorkloadBuffers(KernelImage& image, WorkloadKind workload,
                                             uint64_t seed) {
  WorkloadBuffers buffers;
  switch (workload) {
    case WorkloadKind::kLmbench:
    case WorkloadKind::kPhoronix: {
      auto buf = SetUpOpBuffer(image, seed);
      if (!buf.ok()) {
        return buf.status();
      }
      buffers.op_buffer = *buf;
      break;
    }
    case WorkloadKind::kVfs: {
      auto buf = image.AllocDataPages(1);
      if (!buf.ok()) {
        return buf.status();
      }
      buffers.vfs_buf = *buf;
      break;
    }
    case WorkloadKind::kIpc: {
      auto src = image.AllocDataPages(1);
      auto dst = image.AllocDataPages(1);
      if (!src.ok() || !dst.ok()) {
        return InternalError("ipc buffer alloc failed");
      }
      buffers.ipc_src = *src;
      buffers.ipc_dst = *dst;
      Rng rng(seed ^ 5);
      for (int i = 0; i < 64; ++i) {
        KRX_RETURN_IF_ERROR(image.Poke64(*src + 8 * i, rng.Next()));
      }
      break;
    }
  }
  return buffers;
}

namespace {

// Runs one guest entry and accumulates its work. Non-OK status carries the
// failing symbol and stop reason.
Status Call(Cpu& cpu, const std::string& symbol, const std::vector<uint64_t>& args,
            const RunOptions& run, WorkloadCounters* counters) {
  RunResult r = cpu.CallFunction(symbol, args, run);
  if (r.reason != StopReason::kReturned) {
    return InternalError(symbol + " did not return cleanly: " + StopReasonName(r.reason) +
                         (r.reason == StopReason::kException
                              ? std::string(" (") + ExceptionKindName(r.exception) + ")"
                              : "") +
                         (r.reason == StopReason::kHostError ? " (" + r.host_error + ")" : ""));
  }
  ++counters->calls;
  counters->instructions += r.instructions;
  counters->deci_cycles += r.deci_cycles;
  FoldRax(r.rax, &counters->rax_checksum);
  return Status::Ok();
}

}  // namespace

Status RunWorkloadOnce(Cpu& cpu, const TenantSpec& spec, const WorkloadBuffers& buffers,
                       const RunOptions& run, WorkloadCounters* counters) {
  switch (spec.workload) {
    case WorkloadKind::kLmbench:
      return Call(cpu, spec.op_symbol, {buffers.op_buffer}, run, counters);
    case WorkloadKind::kPhoronix:
      for (const auto& [symbol, weight] : spec.ops) {
        for (int i = 0; i < weight; ++i) {
          KRX_RETURN_IF_ERROR(Call(cpu, symbol, {buffers.op_buffer}, run, counters));
        }
      }
      return Status::Ok();
    case WorkloadKind::kVfs:
      for (const VfsFile& file : DefaultVfsImage()) {
        VfsPathHashes h = HashPath(file.path);
        RunResult open = cpu.CallFunction("vfs_open", {h.h1, h.h2, h.h3}, run);
        if (open.reason != StopReason::kReturned || static_cast<int64_t>(open.rax) < 0) {
          return InternalError("vfs_open failed for " + file.path);
        }
        ++counters->calls;
        counters->instructions += open.instructions;
        counters->deci_cycles += open.deci_cycles;
        FoldRax(open.rax, &counters->rax_checksum);
        const uint64_t fd = open.rax;
        KRX_RETURN_IF_ERROR(Call(cpu, "vfs_read", {fd, buffers.vfs_buf, 8}, run, counters));
        KRX_RETURN_IF_ERROR(Call(cpu, "vfs_fstat", {fd, buffers.vfs_buf}, run, counters));
        KRX_RETURN_IF_ERROR(Call(cpu, "vfs_close", {fd}, run, counters));
      }
      return Status::Ok();
    case WorkloadKind::kIpc:
      KRX_RETURN_IF_ERROR(Call(cpu, "pipe_write", {buffers.ipc_src, 64}, run, counters));
      KRX_RETURN_IF_ERROR(Call(cpu, "pipe_read", {buffers.ipc_dst, 64}, run, counters));
      KRX_RETURN_IF_ERROR(Call(cpu, "sock_send", {buffers.ipc_src, 16}, run, counters));
      KRX_RETURN_IF_ERROR(Call(cpu, "sock_recv", {buffers.ipc_dst}, run, counters));
      return Status::Ok();
  }
  return InternalError("unknown workload kind");
}

}  // namespace krx
