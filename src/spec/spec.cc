#include "src/spec/spec.h"

namespace krx {

// The predictor and observer are header-inline (they sit on the Cpu's
// hottest path); this TU only anchors the library. Static sanity checks on
// the table geometry live here so a bad edit fails the build, not a run.
static_assert((BranchPredictor::kEntries & (BranchPredictor::kEntries - 1)) == 0,
              "predictor table size must be a power of two");
static_assert(SideChannelObserver::kLineShift == 6,
              "probe reconstruction assumes 64-byte cache lines");

}  // namespace krx
