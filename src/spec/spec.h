// Bounded transient-execution semantics for krx64.
//
// kR^X's range checks (and the O4 elision ladder on top of them) are
// architecturally sound, but a Spectre-v1 adversary does not need the
// architectural path: a mispredicted conditional branch lets a wrong-path
// load read confined memory and leak the value through the data cache
// before the pipeline rolls back. This header holds the pieces the Cpu's
// speculation engine is built from:
//
//  - SpecConfig: per-Cpu knobs (off by default; enabling forces the
//    interpreter onto the single-step path so every branch is observed).
//  - BranchPredictor: a trainable direct-mapped table of 2-bit saturating
//    counters. A misprediction opens a *window*: the Cpu simulates the
//    wrong path against shadow register/memory state for up to
//    `window_depth` instructions and then discards everything — except the
//    cache footprint.
//  - SideChannelObserver: the covert channel. Physical cache-line
//    addresses touched by wrong-path data accesses survive rollback here;
//    an attacker reconstructs secrets by probing line membership.
//  - SpecStats: cumulative per-Cpu counters surfaced as spec.* metrics.
//
// The window models *leakage*, not timing: wrong-path instructions retire
// no architectural state, no InstMix entries, and no deci-cycles, so a run
// with the window enabled is bit-identical (RunResult-wise) to the same
// run with it disabled. That invariant is what the fuzz-differential spec
// axis pins down.
#ifndef KRX_SRC_SPEC_SPEC_H_
#define KRX_SRC_SPEC_SPEC_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>

namespace krx {

// Per-Cpu speculation configuration (CpuOptions::spec).
struct SpecConfig {
  bool enabled = false;
  // Maximum wrong-path instructions simulated per misprediction window.
  // Skylake's ~224-entry ROB would correspond to a far deeper window; 32 is
  // enough to cover every gadget in the corpus while keeping windows cheap.
  uint32_t window_depth = 32;
};

// Direct-mapped table of 2-bit saturating counters (0/1 predict not-taken,
// 2/3 predict taken), indexed by a hash of the branch vaddr. Deliberately
// attacker-trainable: repeated same-direction executions of the victim's
// branch steer later predictions, exactly the property Spectre v1 abuses.
class BranchPredictor {
 public:
  static constexpr size_t kEntries = 1024;

  BranchPredictor() { Reset(); }

  bool PredictTaken(uint64_t branch_vaddr) const {
    return table_[IndexOf(branch_vaddr)] >= 2;
  }

  void Update(uint64_t branch_vaddr, bool taken) {
    uint8_t& c = table_[IndexOf(branch_vaddr)];
    if (taken) {
      if (c < 3) ++c;
    } else {
      if (c > 0) --c;
    }
  }

  // All counters back to 1 (weakly not-taken).
  void Reset() {
    for (size_t i = 0; i < kEntries; ++i) table_[i] = 1;
  }

 private:
  static size_t IndexOf(uint64_t vaddr) {
    // Instructions are byte-addressed and dense; fold the high bits so
    // functions relocated by KASLR still spread across the table.
    return static_cast<size_t>((vaddr ^ (vaddr >> 13) ^ (vaddr >> 29)) &
                               (kEntries - 1));
  }

  uint8_t table_[kEntries];
};

// Records the physical cache lines touched by wrong-path data accesses.
// This is the microarchitectural residue that survives rollback: a
// flush+reload attacker cannot read the transient value, but can test
// which of its probe lines became cached.
class SideChannelObserver {
 public:
  static constexpr uint64_t kLineShift = 6;  // 64-byte lines

  void Touch(uint64_t paddr) { lines_.insert(paddr >> kLineShift); }
  bool LineTouched(uint64_t paddr) const {
    return lines_.count(paddr >> kLineShift) > 0;
  }
  void Clear() { lines_.clear(); }
  size_t line_count() const { return lines_.size(); }

 private:
  std::unordered_set<uint64_t> lines_;
};

// Cumulative per-Cpu speculation counters. Deliberately *not* part of
// RunResult: architectural run comparisons must stay bit-identical whether
// the window is on or off.
struct SpecStats {
  uint64_t predictions = 0;            // conditional branches predicted
  uint64_t mispredictions = 0;         // windows requested
  uint64_t windows_opened = 0;         // windows actually simulated
  uint64_t wrong_path_insts = 0;       // shadow instructions executed
  uint64_t nested_branches = 0;        // predictor-steered branches in-window
  uint64_t fence_kills = 0;            // windows ended by kSpecFence
  uint64_t transient_br_deferred = 0;  // bndcu #BR suppressed in-window
  uint64_t transient_faults = 0;       // windows ended by shadow faults
  uint64_t lines_touched = 0;          // wrong-path data touches recorded
};

}  // namespace krx

#endif  // KRX_SRC_SPEC_SPEC_H_
