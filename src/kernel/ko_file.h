// The on-disk module format ("ELF-lite .ko").
//
// §5.1.1: "Although kernel modules (.ko files) are also ELF objects, their
// on-disk layout is left unaltered by kR^X, as the separation of .text from
// all other (data) sections occurs during load time." This file implements
// exactly that contract: a serialized module is one conventional blob —
// text followed by data sections, with *named* symbol references — and the
// kR^X-aware loader-linker (ModuleLoader) does the slicing, placement,
// relocation and eager binding when it is loaded.
#ifndef KRX_SRC_KERNEL_KO_FILE_H_
#define KRX_SRC_KERNEL_KO_FILE_H_

#include <cstdint>
#include <vector>

#include "src/base/status.h"
#include "src/kernel/module_loader.h"

namespace krx {

inline constexpr uint64_t kKoMagic = 0x314F4B58526BULL;  // "kRXKO1"

// Serializes `module` into the on-disk image. Symbol references (relocation
// targets, text-symbol definitions) are stored by *name*, so the image is
// independent of any particular kernel's symbol-table indices — like real
// .ko files, which bind at load time.
Result<std::vector<uint8_t>> SerializeModule(const ModuleObject& module,
                                             const SymbolTable& symbols);

// Parses an on-disk image, interning its symbol names into `kernel_symbols`
// (the namespace of the kernel about to load it). Fails on bad magic,
// truncation, or malformed records.
Result<ModuleObject> ParseModule(const std::vector<uint8_t>& bytes,
                                 SymbolTable& kernel_symbols);

}  // namespace krx

#endif  // KRX_SRC_KERNEL_KO_FILE_H_
