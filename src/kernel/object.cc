#include "src/kernel/object.h"

namespace krx {

bool SectionKindIsCodeRegion(SectionKind kind) {
  switch (kind) {
    case SectionKind::kText:
    case SectionKind::kXkeys:
    case SectionKind::kExTable:
      return true;
    default:
      return false;
  }
}

int32_t SymbolTable::Intern(const std::string& name, SymbolKind kind) {
  int32_t idx = Find(name);
  if (idx >= 0) {
    return idx;
  }
  Symbol s;
  s.name = name;
  s.kind = kind;
  symbols_.push_back(std::move(s));
  return static_cast<int32_t>(symbols_.size() - 1);
}

int32_t SymbolTable::Find(const std::string& name) const {
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i].name == name) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

Result<uint64_t> SymbolTable::AddressOf(const std::string& name) const {
  int32_t idx = Find(name);
  if (idx < 0 || !symbols_[static_cast<size_t>(idx)].defined) {
    return NotFoundError("undefined symbol: " + name);
  }
  return symbols_[static_cast<size_t>(idx)].address;
}

}  // namespace krx
