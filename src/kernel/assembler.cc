#include "src/kernel/assembler.h"

#include <unordered_map>

#include "src/base/math_util.h"
#include "src/isa/encoding.h"

namespace krx {
namespace {

// Byte offset (from instruction start) of the rip-relative disp32 field of
// an instruction carrying a symbol/label mem operand.
uint64_t DispFieldOffset(const Instruction& inst, uint8_t size) {
  if (inst.op == Opcode::kStoreImm || inst.op == Opcode::kCmpMI) {
    return static_cast<uint64_t>(size) - 8;  // disp32 followed by imm32
  }
  return static_cast<uint64_t>(size) - 4;
}

}  // namespace

Status Assembler::Assemble(const Function& fn, TextBlob* blob) {
  KRX_RETURN_IF_ERROR(fn.Validate());

  // Align the function start.
  while (!IsAligned(blob->bytes.size(), 16)) {
    blob->bytes.push_back(kTextPadByte);
  }
  const uint64_t fn_start = blob->bytes.size();

  // Pass 1: offsets of blocks and labeled instructions (blob-relative).
  std::unordered_map<int32_t, uint64_t> block_off;
  std::unordered_map<int32_t, uint64_t> label_off;
  uint64_t off = fn_start;
  for (const BasicBlock& b : fn.blocks()) {
    KRX_CHECK(block_off.emplace(b.id, off).second);
    for (const Instruction& inst : b.insts) {
      if (inst.inst_label >= 0) {
        KRX_CHECK(label_off.emplace(inst.inst_label, off).second);
      }
      off += EncodedSize(inst);
    }
  }
  const uint64_t fn_end = off;

  // Pass 2: emit.
  for (const BasicBlock& b : fn.blocks()) {
    for (const Instruction& orig : b.insts) {
      Instruction inst = orig;
      const uint64_t inst_off = blob->bytes.size();
      const uint8_t size = EncodedSize(inst);
      const uint64_t inst_end = inst_off + size;

      if (inst.target_block >= 0) {
        auto it = block_off.find(inst.target_block);
        if (it == block_off.end()) {
          return InternalError("branch to unknown block in " + fn.name());
        }
        inst.imm = static_cast<int64_t>(it->second) - static_cast<int64_t>(inst_end);
        inst.target_block = -1;
      } else if (inst.target_symbol >= 0) {
        blob->relocs.push_back(
            Reloc{RelocKind::kRel32, inst_end - 4, inst_end, inst.target_symbol});
        inst.imm = 0;
        inst.target_symbol = -1;
      }

      if (inst.mem_label >= 0) {
        auto it = label_off.find(inst.mem_label);
        if (it == label_off.end()) {
          return InternalError("reference to unknown local label in " + fn.name());
        }
        KRX_CHECK(inst.mem.rip_relative);
        inst.mem.disp = static_cast<int64_t>(it->second) + inst.mem_label_byte_off -
                        static_cast<int64_t>(inst_end);
        inst.mem_label = -1;
      } else if (inst.mem.symbol >= 0) {
        KRX_CHECK(inst.mem.rip_relative);
        blob->relocs.push_back(Reloc{RelocKind::kRel32, inst_off + DispFieldOffset(inst, size),
                                     inst_end, inst.mem.symbol});
        inst.mem.symbol = -1;
        inst.mem.disp = 0;
      }

      EncodeInstruction(inst, blob->bytes);
      KRX_CHECK(blob->bytes.size() == inst_end);
    }
  }
  KRX_CHECK(blob->bytes.size() == fn_end);

  blob->functions.push_back(AssembledFunction{fn.name(), fn_start, fn_end - fn_start});
  return Status::Ok();
}

}  // namespace krx
