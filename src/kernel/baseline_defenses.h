// Baseline execute-only-memory defenses the paper positions kR^X against
// (§2): XnR [11] and HideM [51]. Both hide code from *direct* reads but,
// unlike kR^X, do not protect code pointers — which is exactly how indirect
// JIT-ROP bypasses them (Davi et al. [37], Conti et al. [24]). The
// reproduction implements both so that the bypass narrative is executable
// (bench/baseline_defenses).
#ifndef KRX_SRC_KERNEL_BASELINE_DEFENSES_H_
#define KRX_SRC_KERNEL_BASELINE_DEFENSES_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "src/base/status.h"
#include "src/kernel/image.h"

namespace krx {

// ---- XnR ("You Can Run but You Can't Read") ----
//
// Code pages are kept "Not Present"; an instruction fetch #PF is serviced
// by the OS handler, which makes the page present and maintains a sliding
// window of at most `window_size` present code pages (evicting the oldest).
// A *data* access #PF on an XnR page is a detected disclosure attempt: the
// handler terminates. Inherent limitation (faithfully modelled): data reads
// of pages currently inside the window succeed, because on x86 a present
// page is always readable.
class XnrState {
 public:
  XnrState(PageTable* pt, size_t window_size) : pt_(pt), window_size_(window_size) {}

  // Registers a code page range; unmaps (marks not-present) all of it.
  void Protect(uint64_t vaddr, uint64_t num_pages);

  bool IsProtected(uint64_t vaddr) const {
    return pages_.count(PageFloor(vaddr)) != 0;
  }
  bool IsResident(uint64_t vaddr) const;

  // Services an instruction-fetch fault: returns true if the page is XnR
  // protected and was made present (the fetch should be retried).
  bool HandleFetchFault(uint64_t vaddr);

  // A data access faulting on an XnR page = disclosure attempt.
  bool IsDisclosureAttempt(uint64_t vaddr) const {
    return IsProtected(vaddr) && !IsResident(vaddr);
  }

  uint64_t fetch_faults() const { return fetch_faults_; }
  size_t resident_pages() const { return window_.size(); }

 private:
  PageTable* pt_;
  size_t window_size_;
  // vpage -> saved PTE of every protected page.
  std::unordered_map<uint64_t, Pte> pages_;
  std::deque<uint64_t> window_;  // resident vpages, oldest first
  uint64_t fetch_faults_ = 0;
};

// Installs XnR over every text section of the image. Returns the state
// object, owned by the image.
XnrState* EnableXnr(KernelImage& image, size_t window_size);

// ---- Heisenbyte / NEAR (destructive code reads, §8) ----
//
// Data reads of executable pages succeed but destroy what they disclosed
// (the bytes are garbled in place), so a JIT-ROP payload assembled from the
// disclosure crashes when executed. Snow et al.'s code-inference bypass
// still applies: duplicated code (e.g. the kernel's cloned memcpy) lets the
// attacker read one copy and execute the intact twin
// (tests/baseline_defenses_test.cc demonstrates it).
inline void EnableHeisenbyte(KernelImage& image) { image.set_destructive_code_reads(true); }

// The fill pattern destructive reads leave behind (decodes as garbage).
inline constexpr uint8_t kDestroyedByte = 0xD7;

// ---- HideM (ITLB/DTLB desynchronization) ----
//
// Every text page gets a shadow "data view" frame filled with a poison
// pattern; data reads of code see only poison while fetches execute the
// real bytes. Returns the number of pages split.
Result<uint64_t> EnableHidem(KernelImage& image, uint8_t poison = 0);

}  // namespace krx

#endif  // KRX_SRC_KERNEL_BASELINE_DEFENSES_H_
