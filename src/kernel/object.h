// "ELF-lite" object model: sections, symbols and relocations.
//
// The reproduction does not parse on-disk ELF; it keeps the same
// responsibilities in memory: the kernel image and every module are
// collections of sections referencing a symbol table, with relocations
// applied at link/load time (eager binding, as the Linux module
// loader-linker does — §5.1.1 "Kernel Modules").
#ifndef KRX_SRC_KERNEL_OBJECT_H_
#define KRX_SRC_KERNEL_OBJECT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"

namespace krx {

enum class SectionKind : uint8_t {
  kText,      // executable code
  kRodata,    // read-only data
  kData,      // read-write data
  kBss,       // zero-initialized read-write data
  kXkeys,     // per-function return-address keys; lives in the code region
  kExTable,   // code-pointer-bearing tables placed in the code region (§5.1.1 fn.5)
  kPhantomGuard,  // .krx_phantom guard section
};

bool SectionKindIsCodeRegion(SectionKind kind);

enum class SymbolKind : uint8_t { kFunction, kData };

struct Symbol {
  std::string name;
  SymbolKind kind = SymbolKind::kFunction;
  bool defined = false;
  // Filled at link time.
  uint64_t address = 0;
  uint64_t size = 0;
};

// Shared symbol table: the kernel and its modules bind against one table,
// modelling the kernel's exported-symbol namespace.
class SymbolTable {
 public:
  // Returns the index of `name`, creating an undefined entry if new.
  int32_t Intern(const std::string& name, SymbolKind kind = SymbolKind::kFunction);

  // Index of `name` or -1.
  int32_t Find(const std::string& name) const;

  Symbol& at(int32_t idx) { return symbols_[static_cast<size_t>(idx)]; }
  const Symbol& at(int32_t idx) const { return symbols_[static_cast<size_t>(idx)]; }
  size_t size() const { return symbols_.size(); }

  Result<uint64_t> AddressOf(const std::string& name) const;

 private:
  std::vector<Symbol> symbols_;
};

enum class RelocKind : uint8_t {
  kRel32,   // 32-bit pc-relative: field := sym - inst_end
  kAbs64,   // 64-bit absolute: field := sym (function pointers in data)
};

struct Reloc {
  RelocKind kind = RelocKind::kRel32;
  uint64_t field_offset = 0;  // byte offset of the patched field in the section
  uint64_t inst_end_offset = 0;  // for kRel32: offset just past the instruction
  int32_t symbol = -1;
  int64_t addend = 0;  // kAbs64: field := sym + addend
};

// A data object destined for .rodata/.data/.bss. `pointer_slots` name
// 8-byte slots initialized with the final address of a symbol (dispatch
// tables, the syscall table, function-pointer-bearing structs — the raw
// material of indirect JIT-ROP).
struct DataObject {
  std::string name;
  SectionKind kind = SectionKind::kData;
  std::vector<uint8_t> bytes;  // for kBss: only size matters (must be zero-filled)
  struct PtrInit {
    uint64_t offset;
    int32_t symbol;
    int64_t addend = 0;  // e.g. &page_cache + 4096
  };
  std::vector<PtrInit> pointer_slots;
};

}  // namespace krx

#endif  // KRX_SRC_KERNEL_OBJECT_H_
