#include "src/kernel/ko_file.h"

#include <cstring>
#include <string>

namespace krx {
namespace {

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>* out) : out_(out) {}

  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void Str(const std::string& s) {
    U64(s.size());
    out_->insert(out_->end(), s.begin(), s.end());
  }
  void Bytes(const std::vector<uint8_t>& b) {
    U64(b.size());
    out_->insert(out_->end(), b.begin(), b.end());
  }

 private:
  std::vector<uint8_t>* out_;
};

class Parser {
 public:
  Parser(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

  Result<uint64_t> U64() {
    if (pos_ + 8 > bytes_.size()) {
      return OutOfRangeError("truncated .ko image");
    }
    uint64_t v = 0;
    std::memcpy(&v, bytes_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }
  Result<std::string> Str() {
    auto len = U64();
    if (!len.ok()) {
      return len.status();
    }
    if (*len > 4096 || pos_ + *len > bytes_.size()) {
      return OutOfRangeError("truncated .ko string");
    }
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                  static_cast<size_t>(*len));
    pos_ += *len;
    return s;
  }
  Result<std::vector<uint8_t>> Bytes() {
    auto len = U64();
    if (!len.ok()) {
      return len.status();
    }
    if (pos_ + *len > bytes_.size()) {
      return OutOfRangeError("truncated .ko blob");
    }
    std::vector<uint8_t> b(bytes_.begin() + static_cast<long>(pos_),
                           bytes_.begin() + static_cast<long>(pos_ + *len));
    pos_ += *len;
    return b;
  }
  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<uint8_t>& bytes_;
  size_t pos_ = 0;
};

Result<std::string> SymbolName(const SymbolTable& symbols, int32_t idx) {
  if (idx < 0 || static_cast<size_t>(idx) >= symbols.size()) {
    return InternalError("relocation against invalid symbol index");
  }
  return symbols.at(idx).name;
}

}  // namespace

Result<std::vector<uint8_t>> SerializeModule(const ModuleObject& module,
                                             const SymbolTable& symbols) {
  std::vector<uint8_t> out;
  Writer w(&out);
  w.U64(kKoMagic);
  w.Str(module.name);
  // One conventional .text blob; no slicing on disk.
  w.Bytes(module.text.bytes);
  w.U64(module.xkey_bytes);

  w.U64(module.text.functions.size());
  for (const AssembledFunction& f : module.text.functions) {
    w.Str(f.name);
    w.U64(f.offset);
    w.U64(f.size);
  }
  w.U64(module.text.relocs.size());
  for (const Reloc& r : module.text.relocs) {
    auto name = SymbolName(symbols, r.symbol);
    if (!name.ok()) {
      return name.status();
    }
    w.U64(static_cast<uint64_t>(r.kind));
    w.U64(r.field_offset);
    w.U64(r.inst_end_offset);
    w.Str(*name);
    w.U64(static_cast<uint64_t>(r.addend));
  }
  w.U64(module.text_symbol_offsets.size());
  for (auto [sym, off] : module.text_symbol_offsets) {
    auto name = SymbolName(symbols, sym);
    if (!name.ok()) {
      return name.status();
    }
    w.Str(*name);
    w.U64(off);
  }
  w.U64(module.data_objects.size());
  for (const DataObject& obj : module.data_objects) {
    w.Str(obj.name);
    w.U64(static_cast<uint64_t>(obj.kind));
    w.Bytes(obj.bytes);
    w.U64(obj.pointer_slots.size());
    for (const DataObject::PtrInit& p : obj.pointer_slots) {
      auto name = SymbolName(symbols, p.symbol);
      if (!name.ok()) {
        return name.status();
      }
      w.U64(p.offset);
      w.Str(*name);
      w.U64(static_cast<uint64_t>(p.addend));
    }
  }
  return out;
}

Result<ModuleObject> ParseModule(const std::vector<uint8_t>& bytes,
                                 SymbolTable& kernel_symbols) {
  Parser p(bytes);
  auto magic = p.U64();
  if (!magic.ok()) {
    return magic.status();
  }
  if (*magic != kKoMagic) {
    return InvalidArgumentError("not a .ko image (bad magic)");
  }
  ModuleObject mod;
  auto name = p.Str();
  if (!name.ok()) {
    return name.status();
  }
  mod.name = *name;
  auto text = p.Bytes();
  if (!text.ok()) {
    return text.status();
  }
  mod.text.bytes = std::move(*text);
  auto xkeys = p.U64();
  if (!xkeys.ok()) {
    return xkeys.status();
  }
  mod.xkey_bytes = *xkeys;

  auto nfuncs = p.U64();
  if (!nfuncs.ok()) {
    return nfuncs.status();
  }
  for (uint64_t i = 0; i < *nfuncs; ++i) {
    auto fname = p.Str();
    auto off = p.U64();
    auto size = p.U64();
    if (!fname.ok() || !off.ok() || !size.ok()) {
      return OutOfRangeError("truncated function record");
    }
    if (*off + *size > mod.text.bytes.size()) {
      return InvalidArgumentError("function record outside .text");
    }
    mod.text.functions.push_back(AssembledFunction{*fname, *off, *size});
  }
  auto nrelocs = p.U64();
  if (!nrelocs.ok()) {
    return nrelocs.status();
  }
  for (uint64_t i = 0; i < *nrelocs; ++i) {
    auto kind = p.U64();
    auto field = p.U64();
    auto inst_end = p.U64();
    auto sym = p.Str();
    auto addend = p.U64();
    if (!kind.ok() || !field.ok() || !inst_end.ok() || !sym.ok() || !addend.ok()) {
      return OutOfRangeError("truncated relocation record");
    }
    if (*kind > static_cast<uint64_t>(RelocKind::kAbs64)) {
      return InvalidArgumentError("unknown relocation kind");
    }
    if (*field + 4 > mod.text.bytes.size()) {
      return InvalidArgumentError("relocation outside .text");
    }
    mod.text.relocs.push_back(Reloc{static_cast<RelocKind>(*kind), *field, *inst_end,
                                    kernel_symbols.Intern(*sym),
                                    static_cast<int64_t>(*addend)});
  }
  auto ntextsyms = p.U64();
  if (!ntextsyms.ok()) {
    return ntextsyms.status();
  }
  for (uint64_t i = 0; i < *ntextsyms; ++i) {
    auto sname = p.Str();
    auto off = p.U64();
    if (!sname.ok() || !off.ok()) {
      return OutOfRangeError("truncated text-symbol record");
    }
    mod.text_symbol_offsets.emplace_back(kernel_symbols.Intern(*sname, SymbolKind::kData),
                                         *off);
  }
  auto nobjs = p.U64();
  if (!nobjs.ok()) {
    return nobjs.status();
  }
  for (uint64_t i = 0; i < *nobjs; ++i) {
    DataObject obj;
    auto oname = p.Str();
    auto kind = p.U64();
    auto content = p.Bytes();
    auto nslots = p.U64();
    if (!oname.ok() || !kind.ok() || !content.ok() || !nslots.ok()) {
      return OutOfRangeError("truncated data-object record");
    }
    if (*kind > static_cast<uint64_t>(SectionKind::kPhantomGuard)) {
      return InvalidArgumentError("unknown section kind");
    }
    obj.name = *oname;
    obj.kind = static_cast<SectionKind>(*kind);
    obj.bytes = std::move(*content);
    for (uint64_t s = 0; s < *nslots; ++s) {
      auto off = p.U64();
      auto sym = p.Str();
      auto addend = p.U64();
      if (!off.ok() || !sym.ok() || !addend.ok()) {
        return OutOfRangeError("truncated pointer-slot record");
      }
      obj.pointer_slots.push_back(
          {*off, kernel_symbols.Intern(*sym), static_cast<int64_t>(*addend)});
    }
    mod.data_objects.push_back(std::move(obj));
  }
  if (!p.AtEnd()) {
    return InvalidArgumentError("trailing bytes after .ko image");
  }
  return mod;
}

}  // namespace krx
