// The linked, loaded kernel image: physical memory, page tables, placed
// sections, resolved symbols, and the physmap direct map.
#ifndef KRX_SRC_KERNEL_IMAGE_H_
#define KRX_SRC_KERNEL_IMAGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/kernel/assembler.h"
#include "src/kernel/layout.h"
#include "src/kernel/object.h"
#include "src/mem/mmu.h"
#include "src/mem/phys_mem.h"

namespace krx {

class XnrState;

struct PlacedSection {
  std::string name;
  SectionKind kind = SectionKind::kData;
  uint64_t vaddr = 0;
  uint64_t size = 0;        // content size
  uint64_t mapped_size = 0; // page-aligned
  uint64_t first_frame = 0;
};

// Name of the R^X violation handler the SFI instrumentation calls.
inline constexpr const char* kKrxHandlerName = "krx_handler";

class KernelImage {
 public:
  KernelImage(LayoutKind layout, uint64_t phys_bytes);
  ~KernelImage();  // out of line: XnrState is incomplete here

  LayoutKind layout() const { return layout_; }
  PhysMem& phys() { return phys_; }
  PageTable& page_table() { return page_table_; }
  const PageTable& page_table() const { return page_table_; }
  Mmu& mmu() { return mmu_; }
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // End of the data region under kR^X-KAS; 0 under the vanilla layout.
  uint64_t krx_edata() const { return krx_edata_; }
  void set_krx_edata(uint64_t v) { krx_edata_ = v; }

  const std::vector<PlacedSection>& sections() const { return sections_; }
  const PlacedSection* FindSection(const std::string& name) const;

  // Places a section's content at `vaddr`: allocates frames, copies bytes,
  // maps pages with permissions derived from the section kind (x86
  // semantics; text is mapped executable and therefore also readable).
  Result<PlacedSection*> PlaceSection(const std::string& name, SectionKind kind, uint64_t vaddr,
                                      const std::vector<uint8_t>& bytes,
                                      uint64_t min_size = 0);

  // Maps the entire physical memory at kPhysmapBase (RW, NX): the direct
  // map. Called once before sections are placed.
  void MapPhysmap();

  // Removes the physmap synonyms of every code-region section currently
  // placed (kR^X physmap treatment, §5.1.1). Returns pages unmapped.
  uint64_t UnmapCodeSynonyms();

  // Physmap alias of a physical frame.
  uint64_t PhysmapVaddr(uint64_t frame) const { return kPhysmapBase + (frame << kPageShift); }

  // Kernel dynamic allocation (kmalloc-style, page granularity): allocates
  // frames and returns their physmap virtual address. Kernel stacks and
  // heap objects come from here — i.e. from the readable data region, which
  // is what makes stack harvesting (indirect JIT-ROP) possible.
  Result<uint64_t> AllocDataPages(uint64_t num_pages);

  // Maps attacker-controlled *user* pages (U/S = 1, RWX — the attacker owns
  // their own mapping) in the lower canonical half. Used by the ret2usr
  // experiments: with SMEP enabled the kernel cannot fetch from these.
  Result<uint64_t> MapUserPages(uint64_t vaddr, uint64_t num_pages);

  // God-mode accessors for setup/inspection that bypass permissions (used
  // by the loader and the test harness, never by simulated code).
  Status PokeBytes(uint64_t vaddr, const uint8_t* src, uint64_t len);
  Status PeekBytes(uint64_t vaddr, uint8_t* dst, uint64_t len) const;
  Result<uint64_t> Peek64(uint64_t vaddr) const;
  Status Poke64(uint64_t vaddr, uint64_t value);

  // Overwrites every xkey slot with fresh random values. Boot-time only:
  // it does not re-encrypt return addresses already on live stacks, so any
  // in-flight call chain would decrypt with the wrong key afterwards. For
  // live rotation use the re-randomization engine (src/rerand/engine.h),
  // whose kRotateKeys + kRewriteStacks steps rotate the keys *and* rewrite
  // the encrypted return addresses under quiescence.
  Status ReplenishXkeys(Rng& rng);

  // Bump allocators for module placement.
  Result<uint64_t> AllocModuleText(uint64_t size);
  Result<uint64_t> AllocModuleData(uint64_t size);

  // Snapshot/restore of the module-region bump cursors: a transactional
  // module load saves them up front and restores them on rollback, so a
  // failed load leaks no module address space.
  struct ModuleCursors {
    uint64_t text = 0;
    uint64_t data = 0;
  };
  ModuleCursors module_cursors() const { return {module_text_cursor_, module_data_cursor_}; }
  void RestoreModuleCursors(ModuleCursors c) {
    module_text_cursor_ = c.text;
    module_data_cursor_ = c.data;
  }

  // Unmaps a placed section, fills its frames with `fill`, and forgets it.
  // The physical frames are not refunded (PhysMem is a bump allocator);
  // they are zapped so no stale bytes survive. Used by module unload and
  // load rollback.
  Status RemoveSection(const std::string& name, uint8_t fill = 0);

  // Region queries.
  bool InCodeRegion(uint64_t addr) const;

  // ---- Text-generation counter (predecoded-block-cache invalidation). ----
  //
  // Monotonic counter bumped on every event that can change the bytes an
  // instruction fetch would observe, or their fetchability: host-side pokes
  // that touch a code frame, section placement/removal (module load/unload,
  // fault-injector corruption goes through PokeBytes), new executable
  // mappings, and guest stores that alias executable frames (the Cpu calls
  // BumpTextGeneration via VaddrAliasesCode). Block caches tag entries with
  // the generation they decoded under and drop them on mismatch, so cached
  // execution stays bit-identical to the uncached interpreter. Atomic: the
  // parallel bench driver runs many Cpus over one shared image.
  uint64_t text_generation() const {
    return text_generation_.load(std::memory_order_acquire);
  }
  void BumpTextGeneration() { text_generation_.fetch_add(1, std::memory_order_acq_rel); }

  // True when the physical frame backing `vaddr` also backs executable
  // pages — i.e. a data write through `vaddr` is (possibly synonym-mediated)
  // self-modification of code. Checks the page of `vaddr` and of
  // `vaddr + span - 1` so straddling stores are caught.
  bool VaddrAliasesCode(uint64_t vaddr, uint64_t span = 8) const;
  bool FrameIsCode(uint64_t frame) const;

  // XnR baseline-defense state (see src/kernel/baseline_defenses.h); null
  // unless EnableXnr() was called on this image.
  XnrState* xnr() { return xnr_.get(); }
  void set_xnr(std::unique_ptr<XnrState> state);

  // Heisenbyte/NEAR-style destructive code reads (§8): when enabled, a data
  // read of an executable page succeeds but garbles the bytes it returned,
  // so disclosed gadgets cannot be executed afterwards.
  bool destructive_code_reads() const { return destructive_code_reads_; }
  void set_destructive_code_reads(bool on) { destructive_code_reads_ = on; }

 private:
  LayoutKind layout_;
  PhysMem phys_;
  PageTable page_table_;
  Mmu mmu_;
  SymbolTable symbols_;
  std::vector<PlacedSection> sections_;
  uint64_t krx_edata_ = 0;
  bool physmap_mapped_ = false;

  uint64_t module_text_cursor_ = 0;
  uint64_t module_data_cursor_ = 0;
  std::unique_ptr<XnrState> xnr_;
  bool destructive_code_reads_ = false;

  std::atomic<uint64_t> text_generation_{0};
  // Frame ranges [first, end) backing executable mappings (.text, module
  // text, user RWX pages). A handful of entries; linear scan.
  std::vector<std::pair<uint64_t, uint64_t>> code_frame_ranges_;
};

// Links a compiled kernel (text blob + extra code-region sections + data
// objects) into a KernelImage.
struct KernelLinkInput {
  TextBlob text;
  std::vector<uint8_t> xkeys;     // empty unless return-address encryption
  // Offsets of each per-function xkey symbol within the xkeys section.
  std::vector<std::pair<int32_t, uint64_t>> xkey_symbols;
  std::vector<DataObject> data_objects;
  uint64_t phantom_guard_size = kDefaultPhantomGuardSize;
  uint64_t phys_bytes = 64ULL << 20;
  // Coarse-KASLR slide: page-aligned offset added to the image placement
  // (and, under kR^X-KAS, to the code-region placement above _krx_edata).
  uint64_t kaslr_slide = 0;
};

Result<std::unique_ptr<KernelImage>> LinkKernel(LayoutKind layout, KernelLinkInput input,
                                                SymbolTable symbols);

// Applies `relocs` to `bytes` given the final section base address.
Status ApplyRelocs(std::vector<uint8_t>& bytes, const std::vector<Reloc>& relocs,
                   uint64_t section_base, const SymbolTable& symbols);

}  // namespace krx

#endif  // KRX_SRC_KERNEL_IMAGE_H_
