#include "src/kernel/image.h"

#include <cstring>

#include "src/base/math_util.h"
#include "src/kernel/baseline_defenses.h"

namespace krx {
namespace {

PteFlags FlagsForSection(SectionKind kind) {
  PteFlags f;
  f.present = true;
  switch (kind) {
    case SectionKind::kText:
      f.writable = false;
      f.nx = false;  // executable — and therefore readable (x86 semantics)
      break;
    case SectionKind::kRodata:
    case SectionKind::kXkeys:
    case SectionKind::kExTable:
    case SectionKind::kPhantomGuard:
      f.writable = false;
      f.nx = true;
      break;
    case SectionKind::kData:
    case SectionKind::kBss:
      f.writable = true;
      f.nx = true;
      break;
  }
  return f;
}

}  // namespace

KernelImage::KernelImage(LayoutKind layout, uint64_t phys_bytes)
    : layout_(layout), phys_(phys_bytes), mmu_(&phys_, &page_table_) {}

KernelImage::~KernelImage() = default;

void KernelImage::set_xnr(std::unique_ptr<XnrState> state) { xnr_ = std::move(state); }

const PlacedSection* KernelImage::FindSection(const std::string& name) const {
  for (const PlacedSection& s : sections_) {
    if (s.name == name) {
      return &s;
    }
  }
  return nullptr;
}

Result<PlacedSection*> KernelImage::PlaceSection(const std::string& name, SectionKind kind,
                                                 uint64_t vaddr,
                                                 const std::vector<uint8_t>& bytes,
                                                 uint64_t min_size) {
  KRX_CHECK(PageOffset(vaddr) == 0);
  uint64_t size = std::max<uint64_t>(bytes.size(), min_size);
  uint64_t mapped = AlignUp(std::max<uint64_t>(size, 1), kPageSize);
  auto frames = phys_.AllocFrames(mapped >> kPageShift);
  if (!frames.ok()) {
    return frames.status();
  }
  if (!bytes.empty()) {
    phys_.WriteBytes(*frames << kPageShift, bytes.data(), bytes.size());
  }
  page_table_.MapRange(vaddr, *frames, mapped >> kPageShift, FlagsForSection(kind));
  sections_.push_back(PlacedSection{name, kind, vaddr, size, mapped, *frames});
  if (kind == SectionKind::kText) {
    code_frame_ranges_.emplace_back(*frames, *frames + (mapped >> kPageShift));
  }
  // New mapped bytes: any block cache predecoded before this placement is
  // stale (a previously-unfetchable %rip may now decode).
  BumpTextGeneration();
  return &sections_.back();
}

Status KernelImage::RemoveSection(const std::string& name, uint8_t fill) {
  for (size_t i = 0; i < sections_.size(); ++i) {
    if (sections_[i].name != name) {
      continue;
    }
    const PlacedSection s = sections_[i];
    phys_.Fill(s.first_frame << kPageShift, fill, s.mapped_size);
    page_table_.UnmapRange(s.vaddr, s.mapped_size >> kPageShift);
    sections_.erase(sections_.begin() + static_cast<std::ptrdiff_t>(i));
    if (s.kind == SectionKind::kText) {
      const uint64_t end = s.first_frame + (s.mapped_size >> kPageShift);
      for (size_t r = 0; r < code_frame_ranges_.size(); ++r) {
        if (code_frame_ranges_[r].first == s.first_frame &&
            code_frame_ranges_[r].second == end) {
          code_frame_ranges_.erase(code_frame_ranges_.begin() +
                                   static_cast<std::ptrdiff_t>(r));
          break;
        }
      }
    }
    // Unmapped (and zapped) code: stale predecoded blocks must not replay.
    BumpTextGeneration();
    return Status::Ok();
  }
  return NotFoundError("no such section: " + name);
}

void KernelImage::MapPhysmap() {
  KRX_CHECK(!physmap_mapped_);
  PteFlags f;
  f.present = true;
  f.writable = true;
  f.nx = true;
  page_table_.MapRange(kPhysmapBase, 0, phys_.num_frames(), f);
  physmap_mapped_ = true;
}

uint64_t KernelImage::UnmapCodeSynonyms() {
  uint64_t unmapped = 0;
  for (const PlacedSection& s : sections_) {
    if (!SectionKindIsCodeRegion(s.kind)) {
      continue;
    }
    page_table_.UnmapRange(PhysmapVaddr(s.first_frame), s.mapped_size >> kPageShift);
    unmapped += s.mapped_size >> kPageShift;
  }
  return unmapped;
}

Result<uint64_t> KernelImage::AllocDataPages(uint64_t num_pages) {
  auto frames = phys_.AllocFrames(num_pages);
  if (!frames.ok()) {
    return frames.status();
  }
  KRX_CHECK(physmap_mapped_);
  return PhysmapVaddr(*frames);
}

Result<uint64_t> KernelImage::MapUserPages(uint64_t vaddr, uint64_t num_pages) {
  KRX_CHECK(PageOffset(vaddr) == 0);
  KRX_CHECK(vaddr < 0x0000800000000000ULL);  // lower canonical half
  auto frames = phys_.AllocFrames(num_pages);
  if (!frames.ok()) {
    return frames.status();
  }
  PteFlags f;
  f.present = true;
  f.writable = true;
  f.nx = false;
  f.user = true;
  page_table_.MapRange(vaddr, *frames, num_pages, f);
  // User pages are RWX: their frames back executable mappings, so writes to
  // them are self-modification and new mappings invalidate block caches.
  code_frame_ranges_.emplace_back(*frames, *frames + num_pages);
  BumpTextGeneration();
  return vaddr;
}

bool KernelImage::FrameIsCode(uint64_t frame) const {
  for (const auto& [first, end] : code_frame_ranges_) {
    if (frame >= first && frame < end) {
      return true;
    }
  }
  return false;
}

bool KernelImage::VaddrAliasesCode(uint64_t vaddr, uint64_t span) const {
  const Pte* pte = page_table_.Lookup(vaddr);
  if (pte != nullptr && FrameIsCode(pte->frame)) {
    return true;
  }
  const uint64_t last = vaddr + (span == 0 ? 0 : span - 1);
  if (PageFloor(last) != PageFloor(vaddr)) {
    const Pte* tail = page_table_.Lookup(last);
    if (tail != nullptr && FrameIsCode(tail->frame)) {
      return true;
    }
  }
  return false;
}

Status KernelImage::PokeBytes(uint64_t vaddr, const uint8_t* src, uint64_t len) {
  bool touched_code = false;
  for (uint64_t done = 0; done < len;) {
    const Pte* pte = page_table_.Lookup(vaddr + done);
    if (pte == nullptr) {
      return NotFoundError("poke to unmapped address");
    }
    uint64_t in_page = kPageSize - PageOffset(vaddr + done);
    uint64_t n = std::min(in_page, len - done);
    phys_.WriteBytes((pte->frame << kPageShift) | PageOffset(vaddr + done), src + done, n);
    touched_code = touched_code || FrameIsCode(pte->frame);
    done += n;
  }
  if (touched_code) {
    BumpTextGeneration();
  }
  return Status::Ok();
}

Status KernelImage::PeekBytes(uint64_t vaddr, uint8_t* dst, uint64_t len) const {
  for (uint64_t done = 0; done < len;) {
    const Pte* pte = page_table_.Lookup(vaddr + done);
    if (pte == nullptr) {
      return NotFoundError("peek of unmapped address");
    }
    uint64_t in_page = kPageSize - PageOffset(vaddr + done);
    uint64_t n = std::min(in_page, len - done);
    phys_.ReadBytes((pte->frame << kPageShift) | PageOffset(vaddr + done), dst + done, n);
    done += n;
  }
  return Status::Ok();
}

Result<uint64_t> KernelImage::Peek64(uint64_t vaddr) const {
  uint64_t v = 0;
  KRX_RETURN_IF_ERROR(PeekBytes(vaddr, reinterpret_cast<uint8_t*>(&v), 8));
  return v;
}

Status KernelImage::Poke64(uint64_t vaddr, uint64_t value) {
  return PokeBytes(vaddr, reinterpret_cast<const uint8_t*>(&value), 8);
}

Status KernelImage::ReplenishXkeys(Rng& rng) {
  const PlacedSection* s = FindSection(".krx_xkeys");
  if (s == nullptr) {
    return Status::Ok();  // No encryption scheme in this build.
  }
  for (uint64_t off = 0; off + 8 <= s->size; off += 8) {
    uint64_t key = 0;
    while (key == 0) {
      key = rng.Next();
    }
    phys_.Write64((s->first_frame << kPageShift) + off, key);
  }
  return Status::Ok();
}

Result<uint64_t> KernelImage::AllocModuleText(uint64_t size) {
  uint64_t aligned = AlignUp(std::max<uint64_t>(size, 1), kPageSize);
  uint64_t limit = layout_ == LayoutKind::kKrx ? kKrxModulesTextLen : kVanillaModulesLen;
  uint64_t base = layout_ == LayoutKind::kKrx ? kKrxModulesTextBase : kVanillaModulesBase;
  // The (correct form of the) module_alloc() sanity check from Appendix A.
  if (size > limit || module_text_cursor_ + aligned > limit) {
    return ResourceExhaustedError("modules_text region exhausted");
  }
  uint64_t vaddr = base + module_text_cursor_;
  module_text_cursor_ += aligned;
  return vaddr;
}

Result<uint64_t> KernelImage::AllocModuleData(uint64_t size) {
  uint64_t aligned = AlignUp(std::max<uint64_t>(size, 1), kPageSize);
  if (layout_ == LayoutKind::kVanilla) {
    // Vanilla layout interleaves module text and data in one region.
    if (module_text_cursor_ + aligned > kVanillaModulesLen) {
      return ResourceExhaustedError("modules region exhausted");
    }
    uint64_t vaddr = kVanillaModulesBase + module_text_cursor_;
    module_text_cursor_ += aligned;
    return vaddr;
  }
  if (size > kKrxModulesDataLen || module_data_cursor_ + aligned > kKrxModulesDataLen) {
    return ResourceExhaustedError("modules_data region exhausted");
  }
  uint64_t vaddr = kKrxModulesDataBase + module_data_cursor_;
  module_data_cursor_ += aligned;
  return vaddr;
}

bool KernelImage::InCodeRegion(uint64_t addr) const {
  if (layout_ != LayoutKind::kKrx) {
    const PlacedSection* text = FindSection(".text");
    return text != nullptr && addr >= text->vaddr && addr < text->vaddr + text->mapped_size;
  }
  return addr >= krx_edata_;
}

Status ApplyRelocs(std::vector<uint8_t>& bytes, const std::vector<Reloc>& relocs,
                   uint64_t section_base, const SymbolTable& symbols) {
  for (const Reloc& r : relocs) {
    if (r.symbol < 0 || static_cast<size_t>(r.symbol) >= symbols.size()) {
      return InternalError("relocation against invalid symbol index");
    }
    const Symbol& sym = symbols.at(r.symbol);
    if (!sym.defined) {
      return NotFoundError("relocation against undefined symbol: " + sym.name);
    }
    switch (r.kind) {
      case RelocKind::kRel32: {
        int64_t rel = static_cast<int64_t>(sym.address) -
                      static_cast<int64_t>(section_base + r.inst_end_offset);
        if (rel < INT32_MIN || rel > INT32_MAX) {
          return OutOfRangeError("rel32 overflow to symbol " + sym.name +
                                 " (violates -mcmodel=kernel 2GB constraint)");
        }
        int32_t rel32 = static_cast<int32_t>(rel);
        KRX_CHECK(r.field_offset + 4 <= bytes.size());
        std::memcpy(bytes.data() + r.field_offset, &rel32, 4);
        break;
      }
      case RelocKind::kAbs64: {
        KRX_CHECK(r.field_offset + 8 <= bytes.size());
        uint64_t value = sym.address + static_cast<uint64_t>(r.addend);
        std::memcpy(bytes.data() + r.field_offset, &value, 8);
        break;
      }
    }
  }
  return Status::Ok();
}

namespace {

// Concatenates data objects of one kind into a section blob, 16-byte
// aligning each object; defines its symbol and rewrites pointer-slot
// initializers as section-relative Abs64 relocs.
struct DataSectionBuild {
  std::vector<uint8_t> bytes;
  uint64_t bss_size = 0;
  std::vector<Reloc> relocs;
  struct SymLoc {
    int32_t symbol;
    uint64_t offset;
    uint64_t size;
  };
  std::vector<SymLoc> symbol_offsets;
};

DataSectionBuild BuildDataSection(const std::vector<DataObject>& objects, SectionKind kind,
                                  SymbolTable& symbols) {
  DataSectionBuild out;
  uint64_t cursor = 0;
  for (const DataObject& obj : objects) {
    if (obj.kind != kind) {
      continue;
    }
    cursor = AlignUp(cursor, 16);
    int32_t sym = symbols.Intern(obj.name, SymbolKind::kData);
    out.symbol_offsets.push_back({sym, cursor, obj.bytes.size()});
    if (kind == SectionKind::kBss) {
      KRX_CHECK(obj.pointer_slots.empty());
      cursor += obj.bytes.size();
      out.bss_size = cursor;
      continue;
    }
    out.bytes.resize(cursor, 0);
    out.bytes.insert(out.bytes.end(), obj.bytes.begin(), obj.bytes.end());
    for (const DataObject::PtrInit& p : obj.pointer_slots) {
      out.relocs.push_back(Reloc{RelocKind::kAbs64, cursor + p.offset, 0, p.symbol, p.addend});
    }
    cursor += obj.bytes.size();
  }
  return out;
}

}  // namespace

Result<std::unique_ptr<KernelImage>> LinkKernel(LayoutKind layout, KernelLinkInput input,
                                                SymbolTable symbols) {
  auto image = std::make_unique<KernelImage>(layout, input.phys_bytes);
  image->MapPhysmap();

  DataSectionBuild rodata = BuildDataSection(input.data_objects, SectionKind::kRodata, symbols);
  DataSectionBuild data = BuildDataSection(input.data_objects, SectionKind::kData, symbols);
  DataSectionBuild bss = BuildDataSection(input.data_objects, SectionKind::kBss, symbols);
  // Code-pointer-bearing tables (__ex_table, __jump_table, ...): under
  // kR^X-KAS they are placed in the code region and marked non-executable
  // (footnote 5), so they can be neither harvested nor executed.
  DataSectionBuild extable = BuildDataSection(input.data_objects, SectionKind::kExTable, symbols);

  // ---- Assign section base addresses. ----
  uint64_t text_base, xkeys_base, rodata_base, data_base, bss_base, guard_base = 0;
  uint64_t extable_base = 0;
  uint64_t edata = 0;
  auto bump = [](uint64_t& cursor, uint64_t size) {
    uint64_t base = cursor;
    cursor = AlignUp(cursor + std::max<uint64_t>(size, 1), kPageSize);
    return base;
  };
  KRX_CHECK(PageOffset(input.kaslr_slide) == 0);
  if (layout == LayoutKind::kVanilla) {
    // Conventional order: .text at the beginning of the image (§5.1.1).
    uint64_t cursor = kImageBase + input.kaslr_slide;
    text_base = bump(cursor, input.text.bytes.size());
    xkeys_base = input.xkeys.empty() ? 0 : bump(cursor, input.xkeys.size());
    extable_base = extable.bytes.empty() ? 0 : bump(cursor, extable.bytes.size());
    rodata_base = bump(cursor, rodata.bytes.size());
    data_base = bump(cursor, data.bytes.size());
    bss_base = bump(cursor, bss.bss_size);
  } else {
    // kR^X-KAS: flipped image — data sections at the image base, .text at
    // the end (the code region); .krx_phantom guard in between. A coarse
    // slide moves placements inside the fixed regions, so _krx_edata (and
    // the range checks that hard-code it) stay valid.
    uint64_t cursor = kImageBase + input.kaslr_slide;
    rodata_base = bump(cursor, rodata.bytes.size());
    data_base = bump(cursor, data.bytes.size());
    bss_base = bump(cursor, bss.bss_size);
    uint64_t guard = AlignUp(std::max<uint64_t>(input.phantom_guard_size, kPageSize), kPageSize);
    guard_base = kKrxCodeBase - guard;
    edata = guard_base;
    uint64_t code_cursor = kKrxCodeBase + input.kaslr_slide;
    xkeys_base = input.xkeys.empty() ? 0 : bump(code_cursor, input.xkeys.size());
    extable_base = extable.bytes.empty() ? 0 : bump(code_cursor, extable.bytes.size());
    text_base = bump(code_cursor, input.text.bytes.size());
  }

  // ---- Define symbols. ----
  for (const AssembledFunction& f : input.text.functions) {
    int32_t idx = symbols.Intern(f.name, SymbolKind::kFunction);
    Symbol& s = symbols.at(idx);
    if (s.defined) {
      return AlreadyExistsError("duplicate function symbol: " + f.name);
    }
    s.defined = true;
    s.address = text_base + f.offset;
    s.size = f.size;
  }
  for (auto [sym, off] : input.xkey_symbols) {
    Symbol& s = symbols.at(sym);
    s.defined = true;
    s.address = xkeys_base + off;
    s.size = 8;
  }
  auto define_data_syms = [&](const DataSectionBuild& b, uint64_t base) {
    for (const auto& loc : b.symbol_offsets) {
      Symbol& s = symbols.at(loc.symbol);
      s.defined = true;
      s.address = base + loc.offset;
      s.size = loc.size;
    }
  };
  define_data_syms(rodata, rodata_base);
  define_data_syms(data, data_base);
  define_data_syms(bss, bss_base);
  define_data_syms(extable, extable_base);

  {
    int32_t t = symbols.Intern("_text", SymbolKind::kData);
    symbols.at(t).defined = true;
    symbols.at(t).address = layout == LayoutKind::kKrx ? kKrxCodeBase : text_base;
    int32_t e = symbols.Intern("_krx_edata", SymbolKind::kData);
    symbols.at(e).defined = true;
    symbols.at(e).address = edata;
  }

  // ---- Apply relocations. ----
  KRX_RETURN_IF_ERROR(ApplyRelocs(input.text.bytes, input.text.relocs, text_base, symbols));
  KRX_RETURN_IF_ERROR(ApplyRelocs(rodata.bytes, rodata.relocs, rodata_base, symbols));
  KRX_RETURN_IF_ERROR(ApplyRelocs(data.bytes, data.relocs, data_base, symbols));
  KRX_RETURN_IF_ERROR(ApplyRelocs(extable.bytes, extable.relocs, extable_base, symbols));

  // ---- Place sections. ----
  std::vector<uint8_t> empty;
  if (layout == LayoutKind::kKrx) {
    uint64_t guard = kKrxCodeBase - guard_base;
    auto g = image->PlaceSection(".krx_phantom", SectionKind::kPhantomGuard, guard_base, empty,
                                 guard);
    if (!g.ok()) {
      return g.status();
    }
  }
  if (!input.xkeys.empty()) {
    auto s = image->PlaceSection(".krx_xkeys", SectionKind::kXkeys, xkeys_base, input.xkeys);
    if (!s.ok()) {
      return s.status();
    }
  }
  if (!extable.bytes.empty()) {
    auto s2 = image->PlaceSection("__ex_table", SectionKind::kExTable, extable_base,
                                  extable.bytes);
    if (!s2.ok()) {
      return s2.status();
    }
  }
  auto t = image->PlaceSection(".text", SectionKind::kText, text_base, input.text.bytes);
  if (!t.ok()) {
    return t.status();
  }
  if (!rodata.bytes.empty()) {
    auto s = image->PlaceSection(".rodata", SectionKind::kRodata, rodata_base, rodata.bytes);
    if (!s.ok()) {
      return s.status();
    }
  }
  if (!data.bytes.empty()) {
    auto s = image->PlaceSection(".data", SectionKind::kData, data_base, data.bytes);
    if (!s.ok()) {
      return s.status();
    }
  }
  if (bss.bss_size > 0) {
    auto s = image->PlaceSection(".bss", SectionKind::kBss, bss_base, empty, bss.bss_size);
    if (!s.ok()) {
      return s.status();
    }
  }

  image->set_krx_edata(edata);
  if (layout == LayoutKind::kKrx) {
    image->UnmapCodeSynonyms();
  }
  image->symbols() = std::move(symbols);
  return image;
}

}  // namespace krx
