// Two-pass assembler: IR functions -> text-section bytes + relocations.
//
// Instruction encodings have operand-independent sizes, so a single sizing
// pass computes exact offsets for blocks and instruction labels; the second
// pass emits bytes, resolving intra-function branches and local labels and
// recording relocations for symbol references (calls, tail jumps,
// rip-relative data references).
#ifndef KRX_SRC_KERNEL_ASSEMBLER_H_
#define KRX_SRC_KERNEL_ASSEMBLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/ir/function.h"
#include "src/kernel/object.h"

namespace krx {

struct AssembledFunction {
  std::string name;
  uint64_t offset = 0;  // within the text blob
  uint64_t size = 0;
};

struct TextBlob {
  std::vector<uint8_t> bytes;
  std::vector<Reloc> relocs;  // offsets relative to the blob
  std::vector<AssembledFunction> functions;
};

// Byte used to pad between functions. Chosen to decode as int3, like the
// 0xCC fill binutils emits between functions.
inline constexpr uint8_t kTextPadByte = 2;  // Opcode::kInt3

class Assembler {
 public:
  // Appends `fn` (16-byte aligned) to `blob`.
  Status Assemble(const Function& fn, TextBlob* blob);
};

}  // namespace krx

#endif  // KRX_SRC_KERNEL_ASSEMBLER_H_
