// Kernel address-space layouts: vanilla x86-64 Linux vs. kR^X-KAS (§5.1.1).
//
// All kernel image / module addresses live in the top 2GB of the virtual
// address space ([0xFFFFFFFF80000000, 2^64)), honouring -mcmodel=kernel:
// rip-relative disp32 and sign-extended imm32 reach the whole region. The
// physmap (direct map) sits lower in the upper canonical half, as on Linux.
//
// Vanilla layout: the kernel image is .text first, then data sections;
// modules interleave per-module .text and .data inside one region.
//
// kR^X-KAS: code and data live in disjoint contiguous regions. The kernel
// image is "flipped" (.text last, landing in the code region); the modules
// region is split into modules_data (below fixmap) and modules_text (in the
// code region); _krx_edata marks the end of the data region, followed by the
// .krx_phantom guard section and then code.
#ifndef KRX_SRC_KERNEL_LAYOUT_H_
#define KRX_SRC_KERNEL_LAYOUT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace krx {

enum class LayoutKind : uint8_t { kVanilla, kKrx };

// ---- Region bases (upper canonical half) ----
inline constexpr uint64_t kPhysmapBase = 0xFFFF888000000000ULL;
inline constexpr uint64_t kVmallocBase = 0xFFFFC90000000000ULL;
inline constexpr uint64_t kVmemmapBase = 0xFFFFEA0000000000ULL;

// Vanilla: image (.text first) and one interleaved modules region.
inline constexpr uint64_t kImageBase = 0xFFFFFFFF81000000ULL;
inline constexpr uint64_t kVanillaModulesBase = 0xFFFFFFFFA0000000ULL;
inline constexpr uint64_t kVanillaModulesLen = 512ULL << 20;

// kR^X-KAS: data image base is the same; code region carved from the top.
inline constexpr uint64_t kKrxModulesDataBase = 0xFFFFFFFFA0000000ULL;
// sizeof(modules)/2 in spirit; capped at 480MB so the region ends exactly
// at the (pushed-down) fixmap base and the data regions stay disjoint.
inline constexpr uint64_t kKrxModulesDataLen = 480ULL << 20;
inline constexpr uint64_t kKrxFixmapBase = 0xFFFFFFFFBE000000ULL;  // "pushed" below edata
inline constexpr uint64_t kKrxCodeBase = 0xFFFFFFFFC0000000ULL;    // __START_KERNEL_map
inline constexpr uint64_t kKrxModulesTextBase = 0xFFFFFFFFE0000000ULL;
inline constexpr uint64_t kKrxModulesTextLen = 512ULL << 20;

// Default .krx_phantom guard size; must exceed the maximum displacement of
// any uninstrumented %rsp-relative read (asserted by the pass pipeline).
inline constexpr uint64_t kDefaultPhantomGuardSize = 4096;

struct Region {
  std::string name;
  uint64_t base = 0;
  uint64_t size = 0;

  uint64_t end() const { return base + size; }
  bool Contains(uint64_t addr) const { return addr >= base && addr < end(); }
};

}  // namespace krx

#endif  // KRX_SRC_KERNEL_LAYOUT_H_
