// kR^X-KAS-aware module loader-linker (§5.1.1 "Kernel Modules").
//
// A module arrives as a compiled object (text blob + data objects). Loading
// slices the .text from the data sections: under kR^X-KAS the text lands in
// modules_text, all other allocatable sections in modules_data; under the
// vanilla layout the two are placed back-to-back in the single modules
// region. Relocation and symbol binding are eager. Unloading zaps the text
// (preventing code-layout inference, §5.1.1 "Physmap"), zeroes the module's
// xkeys, and restores the physmap synonyms that were removed at load time.
//
// Load is transactional: a failure at any step — allocator exhaustion,
// symbol redefinition, relocation overflow, placement failure — rolls the
// image back completely (no dangling symbols, no leaked modules_text
// address space, physmap synonym state restored). set_failpoint() lets the
// fault-injection campaign interpose a failure before any step.
#ifndef KRX_SRC_KERNEL_MODULE_LOADER_H_
#define KRX_SRC_KERNEL_MODULE_LOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/kernel/image.h"

namespace krx {

struct ModuleObject {
  std::string name;
  TextBlob text;
  std::vector<DataObject> data_objects;
  // Non-function symbols defined inside the text blob (module-local xkeys:
  // they must live in the execute-only region, so they ride along with the
  // module's .text and are replenished at load time).
  std::vector<std::pair<int32_t, uint64_t>> text_symbol_offsets;
  uint64_t xkey_bytes = 0;  // size of the trailing xkey area in `text`
};

struct LoadedModule {
  std::string name;
  uint64_t text_vaddr = 0;
  uint64_t text_size = 0;
  uint64_t data_vaddr = 0;
  uint64_t data_size = 0;
  uint64_t text_first_frame = 0;
  uint64_t text_pages = 0;
  uint64_t xkey_bytes = 0;       // trailing xkey area (zeroed on unload)
  std::vector<int32_t> symbols;  // symbols this module defined
  // Relocations retained past load so a re-randomization epoch can re-patch
  // the module's references to moved kernel functions: text relocs (fields
  // are guest-immutable under R^X, recomputed unconditionally) and data
  // pointer-slot relocs (conditional — the module may overwrite its own
  // data). Cleared on unload.
  std::vector<Reloc> text_relocs;
  std::vector<Reloc> data_relocs;
  bool loaded = false;
};

// The interposable steps of a module load, in execution order. A failpoint
// set to one of these makes the next Load fail *before* that step runs.
enum class ModuleLoadStep : uint8_t {
  kAllocText = 0,   // carve modules_text address space
  kAllocData,       // carve modules_data address space
  kBindSymbols,     // define text/function/data symbols
  kRelocate,        // apply text + data relocations
  kPlaceText,       // allocate frames + map the text section
  kPlaceData,       // allocate frames + map the data section
  kReplenishXkeys,  // fill the module's xkeys with fresh keys
  kUnmapSynonyms,   // remove the text pages' physmap synonyms
  kNumSteps,
};

const char* ModuleLoadStepName(ModuleLoadStep step);

class ModuleLoader {
 public:
  explicit ModuleLoader(KernelImage* image, uint64_t key_seed = 0x6b6579)
      : image_(image), key_rng_(key_seed) {}

  // Loads the module; binds its relocations against the kernel symbol
  // table; returns a handle index. On any failure the load is rolled back
  // completely before the error is returned.
  Result<int32_t> Load(const ModuleObject& module);

  Status Unload(int32_t handle);

  // Fault injection: every subsequent Load fails just before `step`
  // (sticky until clear_failpoint). Models allocator exhaustion /
  // relocation failure mid-load.
  void set_failpoint(ModuleLoadStep step) { failpoint_ = static_cast<int>(step); }
  void clear_failpoint() { failpoint_ = -1; }

  const LoadedModule& module(int32_t handle) const {
    return modules_[static_cast<size_t>(handle)];
  }
  size_t module_count() const { return modules_.size(); }

 private:
  KernelImage* image_;
  Rng key_rng_;
  std::vector<LoadedModule> modules_;
  int failpoint_ = -1;
};

}  // namespace krx

#endif  // KRX_SRC_KERNEL_MODULE_LOADER_H_
