#include "src/kernel/module_loader.h"

#include "src/base/math_util.h"
#include "src/kernel/assembler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace krx {

const char* ModuleLoadStepName(ModuleLoadStep step) {
  switch (step) {
    case ModuleLoadStep::kAllocText: return "alloc-text";
    case ModuleLoadStep::kAllocData: return "alloc-data";
    case ModuleLoadStep::kBindSymbols: return "bind-symbols";
    case ModuleLoadStep::kRelocate: return "relocate";
    case ModuleLoadStep::kPlaceText: return "place-text";
    case ModuleLoadStep::kPlaceData: return "place-data";
    case ModuleLoadStep::kReplenishXkeys: return "replenish-xkeys";
    case ModuleLoadStep::kUnmapSynonyms: return "unmap-synonyms";
    case ModuleLoadStep::kNumSteps: break;
  }
  return "??";
}

namespace {

// Tracks everything a partially executed Load has changed, so a failure at
// any step can be unwound completely.
struct LoadTransaction {
  KernelImage* image;
  KernelImage::ModuleCursors saved_cursors;
  std::vector<int32_t> defined_symbols;
  bool text_placed = false;
  bool data_placed = false;
  bool synonyms_unmapped = false;
  uint64_t synonym_frame = 0;
  uint64_t synonym_pages = 0;
  std::string text_section;
  std::string data_section;

  void Rollback() {
    if (synonyms_unmapped) {
      PteFlags f;
      f.present = true;
      f.writable = true;
      f.nx = true;
      image->page_table().MapRange(image->PhysmapVaddr(synonym_frame), synonym_frame,
                                   synonym_pages, f);
    }
    // Placed sections: unmap and zap (text gets the tripwire pad byte, as
    // unload does, so no partially loaded code survives).
    if (text_placed) {
      (void)image->RemoveSection(text_section, kTextPadByte);
    }
    if (data_placed) {
      (void)image->RemoveSection(data_section, 0);
    }
    for (int32_t idx : defined_symbols) {
      Symbol& s = image->symbols().at(idx);
      s.defined = false;
      s.address = 0;
      s.size = 0;
    }
    image->RestoreModuleCursors(saved_cursors);
  }
};

}  // namespace

Result<int32_t> ModuleLoader::Load(const ModuleObject& module) {
  SymbolTable& symbols = image_->symbols();

  KRX_TRACE_SPAN_SCOPED("module.load");
  LoadTransaction txn;
  txn.image = image_;
  txn.saved_cursors = image_->module_cursors();
  txn.text_section = ".text$" + module.name;
  txn.data_section = ".data$" + module.name;

  auto fail = [&](Status status) -> Status {
    txn.Rollback();
    KRX_COUNTER_ADD("module.load_failures", 1);
    return status;
  };
  auto failpoint = [&](ModuleLoadStep step) -> Status {
    if (failpoint_ == static_cast<int>(step)) {
      return ResourceExhaustedError(std::string("injected module-load fault before step ") +
                                    ModuleLoadStepName(step));
    }
    return Status::Ok();
  };

  // Slice: .text into the text area, all other sections into the data area.
  if (Status s = failpoint(ModuleLoadStep::kAllocText); !s.ok()) {
    return fail(s);
  }
  auto text_vaddr = image_->AllocModuleText(module.text.bytes.size());
  if (!text_vaddr.ok()) {
    return fail(text_vaddr.status());
  }

  // Build a single data blob for the module's data objects.
  std::vector<uint8_t> data_bytes;
  std::vector<Reloc> data_relocs;
  std::vector<std::pair<int32_t, uint64_t>> data_syms;
  for (const DataObject& obj : module.data_objects) {
    uint64_t off = AlignUp(data_bytes.size(), 16);
    data_bytes.resize(off, 0);
    data_syms.emplace_back(symbols.Intern(obj.name, SymbolKind::kData), off);
    data_bytes.insert(data_bytes.end(), obj.bytes.begin(), obj.bytes.end());
    for (const DataObject::PtrInit& p : obj.pointer_slots) {
      data_relocs.push_back(Reloc{RelocKind::kAbs64, off + p.offset, 0, p.symbol, p.addend});
    }
  }
  if (Status s = failpoint(ModuleLoadStep::kAllocData); !s.ok()) {
    return fail(s);
  }
  auto data_vaddr = image_->AllocModuleData(std::max<uint64_t>(data_bytes.size(), 1));
  if (!data_vaddr.ok()) {
    return fail(data_vaddr.status());
  }

  LoadedModule lm;
  lm.name = module.name;
  lm.text_vaddr = *text_vaddr;
  lm.text_size = module.text.bytes.size();
  lm.data_vaddr = *data_vaddr;
  lm.data_size = data_bytes.size();
  lm.xkey_bytes = module.xkey_bytes;
  // Retained for re-randomization epochs: an epoch that moves kernel
  // functions re-patches these sites in place (see src/rerand/engine.h).
  lm.text_relocs = module.text.relocs;
  lm.data_relocs = data_relocs;

  if (Status s = failpoint(ModuleLoadStep::kBindSymbols); !s.ok()) {
    return fail(s);
  }
  auto define = [&](int32_t idx, uint64_t address, uint64_t size) -> Status {
    Symbol& s = symbols.at(idx);
    if (s.defined) {
      return AlreadyExistsError("module redefines symbol: " + s.name);
    }
    s.defined = true;
    s.address = address;
    s.size = size;
    txn.defined_symbols.push_back(idx);
    return Status::Ok();
  };
  // Non-function text symbols (module xkeys) first.
  for (auto [idx, off] : module.text_symbol_offsets) {
    if (Status s = define(idx, *text_vaddr + off, 8); !s.ok()) {
      return fail(s);
    }
  }
  // Define this module's symbols (eager binding: everything resolved now).
  for (const AssembledFunction& f : module.text.functions) {
    int32_t idx = symbols.Intern(f.name, SymbolKind::kFunction);
    if (Status s = define(idx, *text_vaddr + f.offset, f.size); !s.ok()) {
      return fail(s);
    }
  }
  for (auto [idx, off] : data_syms) {
    if (Status s = define(idx, *data_vaddr + off, 0); !s.ok()) {
      return fail(s);
    }
  }

  // Relocate against the now-complete symbol table.
  if (Status s = failpoint(ModuleLoadStep::kRelocate); !s.ok()) {
    return fail(s);
  }
  std::vector<uint8_t> text_bytes = module.text.bytes;
  if (Status s = ApplyRelocs(text_bytes, module.text.relocs, *text_vaddr, symbols); !s.ok()) {
    return fail(s);
  }
  if (Status s = ApplyRelocs(data_bytes, data_relocs, *data_vaddr, symbols); !s.ok()) {
    return fail(s);
  }

  // Place into memory.
  if (Status s = failpoint(ModuleLoadStep::kPlaceText); !s.ok()) {
    return fail(s);
  }
  auto text_sec = image_->PlaceSection(txn.text_section, SectionKind::kText, *text_vaddr,
                                       text_bytes);
  if (!text_sec.ok()) {
    return fail(text_sec.status());
  }
  txn.text_placed = true;
  lm.text_first_frame = (*text_sec)->first_frame;
  lm.text_pages = (*text_sec)->mapped_size >> kPageShift;
  if (!data_bytes.empty()) {
    if (Status s = failpoint(ModuleLoadStep::kPlaceData); !s.ok()) {
      return fail(s);
    }
    auto data_sec = image_->PlaceSection(txn.data_section, SectionKind::kData, *data_vaddr,
                                         data_bytes);
    if (!data_sec.ok()) {
      return fail(data_sec.status());
    }
    txn.data_placed = true;
  }

  // Replenish the module's xkeys with fresh random values (load-time
  // analogue of the boot-time kernel xkey replenishment, §5.2.2).
  if (module.xkey_bytes > 0) {
    if (Status s = failpoint(ModuleLoadStep::kReplenishXkeys); !s.ok()) {
      return fail(s);
    }
    uint64_t xkeys_start = lm.text_size - module.xkey_bytes;
    for (uint64_t off = 0; off + 8 <= module.xkey_bytes; off += 8) {
      uint64_t key = 0;
      while (key == 0) {
        key = key_rng_.Next();
      }
      if (Status s = image_->Poke64(*text_vaddr + xkeys_start + off, key); !s.ok()) {
        return fail(s);
      }
    }
  }

  // kR^X: remove the physmap synonyms of the module's text pages.
  if (image_->layout() == LayoutKind::kKrx) {
    if (Status s = failpoint(ModuleLoadStep::kUnmapSynonyms); !s.ok()) {
      return fail(s);
    }
    image_->page_table().UnmapRange(image_->PhysmapVaddr(lm.text_first_frame), lm.text_pages);
    txn.synonyms_unmapped = true;
    txn.synonym_frame = lm.text_first_frame;
    txn.synonym_pages = lm.text_pages;
  }

  lm.symbols = std::move(txn.defined_symbols);
  lm.loaded = true;
  modules_.push_back(std::move(lm));
  const int32_t handle = static_cast<int32_t>(modules_.size() - 1);
  KRX_COUNTER_ADD("module.loads", 1);
  KRX_TRACE_EVENT(kModuleLoad, module.name, static_cast<uint64_t>(handle),
                  modules_.back().text_size);
  return handle;
}

Status ModuleLoader::Unload(int32_t handle) {
  if (handle < 0 || static_cast<size_t>(handle) >= modules_.size()) {
    return InvalidArgumentError("bad module handle");
  }
  LoadedModule& lm = modules_[static_cast<size_t>(handle)];
  if (!lm.loaded) {
    return FailedPreconditionError("module already unloaded");
  }

  // Zap the text contents before the pages become reachable again, to
  // prevent code-layout inference attacks (§5.1.1 "Physmap"): unmap the
  // module's text from the code region, fill the frames with the tripwire
  // pad byte, and drop the section record.
  KRX_RETURN_IF_ERROR(image_->RemoveSection(".text$" + lm.name, kTextPadByte));

  // Destroy the key material outright: the xkey tail is zeroed, not merely
  // padded, so no stale return-address keys survive an unload.
  if (lm.xkey_bytes > 0) {
    uint64_t xkeys_start = lm.text_size - lm.xkey_bytes;
    image_->phys().Fill((lm.text_first_frame << kPageShift) + xkeys_start, 0, lm.xkey_bytes);
  }

  // The data section goes away with the module as well.
  if (lm.data_size > 0) {
    KRX_RETURN_IF_ERROR(image_->RemoveSection(".data$" + lm.name, 0));
  }

  // Restore the physmap synonyms.
  if (image_->layout() == LayoutKind::kKrx) {
    PteFlags f;
    f.present = true;
    f.writable = true;
    f.nx = true;
    image_->page_table().MapRange(image_->PhysmapVaddr(lm.text_first_frame), lm.text_first_frame,
                                  lm.text_pages, f);
  }

  // Remove the module's symbols from the namespace.
  for (int32_t idx : lm.symbols) {
    Symbol& s = image_->symbols().at(idx);
    s.defined = false;
    s.address = 0;
  }
  lm.text_relocs.clear();
  lm.data_relocs.clear();
  lm.loaded = false;
  KRX_COUNTER_ADD("module.unloads", 1);
  KRX_TRACE_EVENT(kModuleUnload, lm.name, static_cast<uint64_t>(handle), 0);
  return Status::Ok();
}

}  // namespace krx
