#include "src/kernel/module_loader.h"

#include "src/base/math_util.h"
#include "src/kernel/assembler.h"

namespace krx {

Result<int32_t> ModuleLoader::Load(const ModuleObject& module) {
  SymbolTable& symbols = image_->symbols();

  // Slice: .text into the text area, all other sections into the data area.
  auto text_vaddr = image_->AllocModuleText(module.text.bytes.size());
  if (!text_vaddr.ok()) {
    return text_vaddr.status();
  }

  // Build a single data blob for the module's data objects.
  std::vector<uint8_t> data_bytes;
  std::vector<Reloc> data_relocs;
  std::vector<std::pair<int32_t, uint64_t>> data_syms;
  for (const DataObject& obj : module.data_objects) {
    uint64_t off = AlignUp(data_bytes.size(), 16);
    data_bytes.resize(off, 0);
    data_syms.emplace_back(symbols.Intern(obj.name, SymbolKind::kData), off);
    data_bytes.insert(data_bytes.end(), obj.bytes.begin(), obj.bytes.end());
    for (const DataObject::PtrInit& p : obj.pointer_slots) {
      data_relocs.push_back(Reloc{RelocKind::kAbs64, off + p.offset, 0, p.symbol, p.addend});
    }
  }
  auto data_vaddr = image_->AllocModuleData(std::max<uint64_t>(data_bytes.size(), 1));
  if (!data_vaddr.ok()) {
    return data_vaddr.status();
  }

  LoadedModule lm;
  lm.name = module.name;
  lm.text_vaddr = *text_vaddr;
  lm.text_size = module.text.bytes.size();
  lm.data_vaddr = *data_vaddr;
  lm.data_size = data_bytes.size();

  // Non-function text symbols (module xkeys) first.
  for (auto [idx, off] : module.text_symbol_offsets) {
    Symbol& s = symbols.at(idx);
    if (s.defined) {
      return AlreadyExistsError("module redefines symbol: " + s.name);
    }
    s.defined = true;
    s.address = *text_vaddr + off;
    s.size = 8;
    lm.symbols.push_back(idx);
  }

  // Define this module's symbols (eager binding: everything resolved now).
  for (const AssembledFunction& f : module.text.functions) {
    int32_t idx = symbols.Intern(f.name, SymbolKind::kFunction);
    Symbol& s = symbols.at(idx);
    if (s.defined) {
      return AlreadyExistsError("module redefines symbol: " + f.name);
    }
    s.defined = true;
    s.address = *text_vaddr + f.offset;
    s.size = f.size;
    lm.symbols.push_back(idx);
  }
  for (auto [idx, off] : data_syms) {
    Symbol& s = symbols.at(idx);
    if (s.defined) {
      return AlreadyExistsError("module redefines symbol: " + s.name);
    }
    s.defined = true;
    s.address = *data_vaddr + off;
    lm.symbols.push_back(idx);
  }

  // Relocate against the now-complete symbol table.
  std::vector<uint8_t> text_bytes = module.text.bytes;
  KRX_RETURN_IF_ERROR(ApplyRelocs(text_bytes, module.text.relocs, *text_vaddr, symbols));
  KRX_RETURN_IF_ERROR(ApplyRelocs(data_bytes, data_relocs, *data_vaddr, symbols));

  // Place into memory.
  auto text_sec = image_->PlaceSection(".text$" + module.name, SectionKind::kText, *text_vaddr,
                                       text_bytes);
  if (!text_sec.ok()) {
    return text_sec.status();
  }
  lm.text_first_frame = (*text_sec)->first_frame;
  lm.text_pages = (*text_sec)->mapped_size >> kPageShift;
  if (!data_bytes.empty()) {
    auto data_sec = image_->PlaceSection(".data$" + module.name, SectionKind::kData, *data_vaddr,
                                         data_bytes);
    if (!data_sec.ok()) {
      return data_sec.status();
    }
  }

  // Replenish the module's xkeys with fresh random values (load-time
  // analogue of the boot-time kernel xkey replenishment, §5.2.2).
  if (module.xkey_bytes > 0) {
    uint64_t xkeys_start = lm.text_size - module.xkey_bytes;
    for (uint64_t off = 0; off + 8 <= module.xkey_bytes; off += 8) {
      uint64_t key = 0;
      while (key == 0) {
        key = key_rng_.Next();
      }
      KRX_RETURN_IF_ERROR(image_->Poke64(*text_vaddr + xkeys_start + off, key));
    }
  }

  // kR^X: remove the physmap synonyms of the module's text pages.
  if (image_->layout() == LayoutKind::kKrx) {
    image_->page_table().UnmapRange(image_->PhysmapVaddr(lm.text_first_frame), lm.text_pages);
  }

  lm.loaded = true;
  modules_.push_back(std::move(lm));
  return static_cast<int32_t>(modules_.size() - 1);
}

Status ModuleLoader::Unload(int32_t handle) {
  if (handle < 0 || static_cast<size_t>(handle) >= modules_.size()) {
    return InvalidArgumentError("bad module handle");
  }
  LoadedModule& lm = modules_[static_cast<size_t>(handle)];
  if (!lm.loaded) {
    return FailedPreconditionError("module already unloaded");
  }

  // Zap the text contents before the pages become reachable again, to
  // prevent code-layout inference attacks (§5.1.1 "Physmap").
  image_->phys().Fill(lm.text_first_frame << kPageShift, kTextPadByte,
                      lm.text_pages << kPageShift);

  // Unmap the module's text from the code region.
  image_->page_table().UnmapRange(lm.text_vaddr, lm.text_pages);

  // Restore the physmap synonyms.
  if (image_->layout() == LayoutKind::kKrx) {
    PteFlags f;
    f.present = true;
    f.writable = true;
    f.nx = true;
    image_->page_table().MapRange(image_->PhysmapVaddr(lm.text_first_frame), lm.text_first_frame,
                                  lm.text_pages, f);
  }

  // Remove the module's symbols from the namespace.
  for (int32_t idx : lm.symbols) {
    Symbol& s = image_->symbols().at(idx);
    s.defined = false;
    s.address = 0;
  }
  lm.loaded = false;
  return Status::Ok();
}

}  // namespace krx
