#include "src/kernel/baseline_defenses.h"

#include <vector>

namespace krx {

void XnrState::Protect(uint64_t vaddr, uint64_t num_pages) {
  for (uint64_t i = 0; i < num_pages; ++i) {
    uint64_t page = PageFloor(vaddr) + i * kPageSize;
    const Pte* pte = pt_->Lookup(page);
    if (pte == nullptr) {
      continue;
    }
    pages_[page] = *pte;
    pt_->Unmap(page);
  }
}

bool XnrState::IsResident(uint64_t vaddr) const {
  uint64_t page = PageFloor(vaddr);
  for (uint64_t r : window_) {
    if (r == page) {
      return true;
    }
  }
  return false;
}

bool XnrState::HandleFetchFault(uint64_t vaddr) {
  uint64_t page = PageFloor(vaddr);
  auto it = pages_.find(page);
  if (it == pages_.end()) {
    return false;
  }
  if (IsResident(page)) {
    return false;  // present already; the fault was something else
  }
  ++fetch_faults_;
  // Evict the oldest resident page to keep the window bounded.
  while (window_.size() >= window_size_ && !window_.empty()) {
    uint64_t victim = window_.front();
    window_.pop_front();
    pt_->Unmap(victim);
  }
  pt_->Map(page, it->second.frame, it->second.flags);
  window_.push_back(page);
  return true;
}

XnrState* EnableXnr(KernelImage& image, size_t window_size) {
  auto state = std::make_unique<XnrState>(&image.page_table(), window_size);
  for (const PlacedSection& s : image.sections()) {
    if (s.kind == SectionKind::kText) {
      state->Protect(s.vaddr, s.mapped_size >> kPageShift);
    }
  }
  XnrState* raw = state.get();
  image.set_xnr(std::move(state));
  return raw;
}

Result<uint64_t> EnableHidem(KernelImage& image, uint8_t poison) {
  uint64_t split = 0;
  for (const PlacedSection& s : image.sections()) {
    if (s.kind != SectionKind::kText) {
      continue;
    }
    uint64_t pages = s.mapped_size >> kPageShift;
    auto shadow = image.phys().AllocFrames(pages);
    if (!shadow.ok()) {
      return shadow.status();
    }
    image.phys().Fill(*shadow << kPageShift, poison, pages << kPageShift);
    for (uint64_t i = 0; i < pages; ++i) {
      Pte* pte = image.page_table().LookupMutable(s.vaddr + i * kPageSize);
      KRX_CHECK(pte != nullptr);
      pte->has_data_frame = true;
      pte->data_frame = *shadow + i;
      ++split;
    }
    image.page_table().BumpGeneration();
  }
  return split;
}

}  // namespace krx
