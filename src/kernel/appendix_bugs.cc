#include "src/kernel/appendix_bugs.h"

namespace krx {
namespace {

// The kernel routines build an equivalent flags mask in a local declared
// `unsigned long val`. On 64-bit that type is 64 bits wide; on 32-bit it is
// 32 bits wide and the XD bit (bit 63) cannot survive the round trip.
uint64_t CopyThroughVal(uint64_t flags, WordSize word_size) {
  if (word_size == WordSize::k32) {
    uint32_t val = static_cast<uint32_t>(flags);  // XD (bit 63) cleared here.
    return val;
  }
  uint64_t val = flags;
  return val;
}

}  // namespace

uint64_t PgprotLarge2_4k(uint64_t flags, WordSize word_size) {
  uint64_t val = CopyThroughVal(flags, word_size);
  val &= ~kPteFlagPse;  // 4KB entries do not carry the PSE bit.
  return val;
}

uint64_t Pgprot4k_2Large(uint64_t flags, WordSize word_size) {
  uint64_t val = CopyThroughVal(flags, word_size);
  val |= kPteFlagPse;
  return val;
}

uint64_t SplitLargePageFlags(uint64_t large_flags, WordSize word_size) {
  return PgprotLarge2_4k(large_flags, word_size);
}

bool IsWxViolation(uint64_t flags) {
  return (flags & kPteFlagPresent) != 0 && (flags & kPteFlagWritable) != 0 &&
         (flags & kPteFlagXd) == 0;
}

bool ModuleAllocSizeCheckPasses(uint64_t size, uint64_t modules_len, bool modules_len_buggy) {
  uint64_t effective_len = modules_len_buggy ? ~modules_len : modules_len;
  // module_alloc() rejects requests larger than the modules region.
  return size <= effective_len;
}

}  // namespace krx
