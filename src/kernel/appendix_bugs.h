// Models of the two Linux kernel bugs discovered during the development of
// kR^X-KAS (paper, Appendix A).
//
// Bug 1 (security critical): pgprot_large_2_4k()/pgprot_4k_2_large() copy
// PTE flags between 2MB and 4KB page representations through an
// `unsigned long` local. On x86 (32-bit) that local is 32 bits wide, so the
// eXecute-Disable bit — bit 63 of the 64-bit PAE entry — is always cleared,
// silently marking the resulting pages executable (a W^X violation when the
// pages are writable).
//
// Bug 2 (benign): module_alloc()'s sanity check compares the requested size
// against MODULES_LEN, but on x86 (32-bit) MODULES_LEN was assigned its
// complementary value, so the check can never fail; only the subsequent
// vmalloc failure saves the day.
#ifndef KRX_SRC_KERNEL_APPENDIX_BUGS_H_
#define KRX_SRC_KERNEL_APPENDIX_BUGS_H_

#include <cstdint>

namespace krx {

// 64-bit PAE page-table entry flag bits used by the model.
inline constexpr uint64_t kPteFlagPresent = 1ULL << 0;
inline constexpr uint64_t kPteFlagWritable = 1ULL << 1;
inline constexpr uint64_t kPteFlagAccessed = 1ULL << 5;
inline constexpr uint64_t kPteFlagDirty = 1ULL << 6;
inline constexpr uint64_t kPteFlagPse = 1ULL << 7;  // large (2MB) page
inline constexpr uint64_t kPteFlagGlobal = 1ULL << 8;
inline constexpr uint64_t kPteFlagXd = 1ULL << 63;  // eXecute-Disable

enum class WordSize : uint8_t { k32, k64 };

// Converts a 2MB-page protection mask to its 4KB-page equivalent (the PSE
// bit is dropped). `word_size` selects the width of the internal `val`
// local: WordSize::k32 reproduces the bug (XD is lost), WordSize::k64 is
// the correct behaviour.
uint64_t PgprotLarge2_4k(uint64_t flags, WordSize word_size);

// Converts a 4KB-page protection mask to its 2MB-page equivalent (the PSE
// bit is added). Same truncation bug under WordSize::k32.
uint64_t Pgprot4k_2Large(uint64_t flags, WordSize word_size);

// Splits a 2MB mapping into 512 4KB entries, returning the flag mask the
// children receive. A writable, XD 2MB page split under the 32-bit model
// yields writable+executable children: the W^X violation from Appendix A.
uint64_t SplitLargePageFlags(uint64_t large_flags, WordSize word_size);

// True if `flags` describes a W^X-violating mapping (writable and
// executable at once).
bool IsWxViolation(uint64_t flags);

// Appendix A's module_alloc() size check. `modules_len_buggy` selects the
// x86 (32-bit) misassignment of MODULES_LEN (its complementary value):
// with the bug the check never rejects, regardless of `size`.
bool ModuleAllocSizeCheckPasses(uint64_t size, uint64_t modules_len, bool modules_len_buggy);

}  // namespace krx

#endif  // KRX_SRC_KERNEL_APPENDIX_BUGS_H_
