// Kernel dynamic-memory allocators: a Bonwick-style slab allocator
// (kmalloc size-class caches over physmap pages) and a vmalloc arena
// (page-granular mappings with guard gaps).
//
// §5.1.1 argues that kR^X-KAS — unlike bit-masking SFI layouts — is
// *transparent* to these allocators: no alignment constraints, no address
// space carving. The reproduction demonstrates that by running the same
// allocators unchanged under both layouts (tests/allocator_test.cc).
#ifndef KRX_SRC_KERNEL_ALLOCATOR_H_
#define KRX_SRC_KERNEL_ALLOCATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/base/status.h"
#include "src/kernel/image.h"

namespace krx {

// kmalloc: power-of-two size classes from 32 bytes to one page, each backed
// by single-page slabs carved from the physmap (direct-mapped) region.
class SlabAllocator {
 public:
  explicit SlabAllocator(KernelImage* image) : image_(image) {}

  // Smallest size class >= `size`; at most kPageSize.
  Result<uint64_t> Kmalloc(uint64_t size);
  Status Kfree(uint64_t vaddr);

  struct Stats {
    uint64_t slabs = 0;
    uint64_t live_objects = 0;
    uint64_t allocations = 0;
    uint64_t frees = 0;
  };
  const Stats& stats() const { return stats_; }

  static constexpr uint64_t kMinObject = 32;

 private:
  struct Slab {
    uint64_t base = 0;       // page vaddr (physmap)
    uint64_t object_size = 0;
    uint64_t free_mask = 0;  // bit i set = object i free (<= 64 objects at 64B min... 128 at 32B)
    // 4096/32 = 128 objects exceeds 64 bits; use two words.
    uint64_t free_mask_hi = 0;

    uint64_t capacity() const { return kPageSize / object_size; }
    bool Full() const;
    bool Empty() const;
    int TakeFreeIndex();
    void Release(uint64_t index);
  };

  Result<Slab*> SlabWithSpace(uint64_t object_size);

  KernelImage* image_;
  // size class -> slabs
  std::map<uint64_t, std::vector<Slab>> caches_;
  // page vaddr -> (size class) for O(log n) kfree
  std::map<uint64_t, uint64_t> page_class_;
  Stats stats_;
};

// vmalloc: virtually contiguous page-range allocations inside the vmalloc
// arena, each followed by an unmapped guard page (as Linux does), so linear
// overflows fault instead of corrupting the neighbour.
class VmallocArena {
 public:
  explicit VmallocArena(KernelImage* image, uint64_t arena_pages = 4096)
      : image_(image), arena_pages_(arena_pages) {}

  Result<uint64_t> Vmalloc(uint64_t bytes);
  Status Vfree(uint64_t vaddr);

  uint64_t live_ranges() const { return static_cast<uint64_t>(ranges_.size()); }

 private:
  KernelImage* image_;
  uint64_t arena_pages_;
  uint64_t cursor_pages_ = 0;
  std::map<uint64_t, uint64_t> ranges_;  // vaddr -> num_pages
};

}  // namespace krx

#endif  // KRX_SRC_KERNEL_ALLOCATOR_H_
