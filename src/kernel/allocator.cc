#include "src/kernel/allocator.h"

#include "src/base/math_util.h"

namespace krx {
namespace {

uint64_t SizeClassFor(uint64_t size) {
  uint64_t cls = SlabAllocator::kMinObject;
  while (cls < size) {
    cls <<= 1;
  }
  return cls;
}

}  // namespace

bool SlabAllocator::Slab::Full() const { return free_mask == 0 && free_mask_hi == 0; }

bool SlabAllocator::Slab::Empty() const {
  uint64_t cap = capacity();
  if (cap <= 64) {
    return free_mask == (cap == 64 ? ~0ULL : (1ULL << cap) - 1);
  }
  return free_mask == ~0ULL && free_mask_hi == (1ULL << (cap - 64)) - 1;
}

int SlabAllocator::Slab::TakeFreeIndex() {
  if (free_mask != 0) {
    int idx = __builtin_ctzll(free_mask);
    free_mask &= free_mask - 1;
    return idx;
  }
  if (free_mask_hi != 0) {
    int idx = __builtin_ctzll(free_mask_hi);
    free_mask_hi &= free_mask_hi - 1;
    return 64 + idx;
  }
  return -1;
}

void SlabAllocator::Slab::Release(uint64_t index) {
  if (index < 64) {
    KRX_CHECK((free_mask & (1ULL << index)) == 0 && "double free");
    free_mask |= 1ULL << index;
  } else {
    KRX_CHECK((free_mask_hi & (1ULL << (index - 64))) == 0 && "double free");
    free_mask_hi |= 1ULL << (index - 64);
  }
}

Result<SlabAllocator::Slab*> SlabAllocator::SlabWithSpace(uint64_t object_size) {
  auto& slabs = caches_[object_size];
  for (Slab& s : slabs) {
    if (!s.Full()) {
      return &s;
    }
  }
  auto page = image_->AllocDataPages(1);
  if (!page.ok()) {
    return page.status();
  }
  Slab s;
  s.base = *page;
  s.object_size = object_size;
  uint64_t cap = s.capacity();
  if (cap <= 64) {
    s.free_mask = cap == 64 ? ~0ULL : (1ULL << cap) - 1;
  } else {
    s.free_mask = ~0ULL;
    s.free_mask_hi = (1ULL << (cap - 64)) - 1;
  }
  slabs.push_back(s);
  page_class_[*page] = object_size;
  ++stats_.slabs;
  return &slabs.back();
}

Result<uint64_t> SlabAllocator::Kmalloc(uint64_t size) {
  if (size == 0 || size > kPageSize) {
    return InvalidArgumentError("kmalloc size out of range");
  }
  auto slab = SlabWithSpace(SizeClassFor(size));
  if (!slab.ok()) {
    return slab.status();
  }
  int idx = (*slab)->TakeFreeIndex();
  KRX_CHECK(idx >= 0);
  ++stats_.allocations;
  ++stats_.live_objects;
  return (*slab)->base + static_cast<uint64_t>(idx) * (*slab)->object_size;
}

Status SlabAllocator::Kfree(uint64_t vaddr) {
  uint64_t page = PageFloor(vaddr);
  auto it = page_class_.find(page);
  if (it == page_class_.end()) {
    return InvalidArgumentError("kfree of non-slab address");
  }
  uint64_t object_size = it->second;
  if ((vaddr - page) % object_size != 0) {
    return InvalidArgumentError("kfree of interior pointer");
  }
  for (Slab& s : caches_[object_size]) {
    if (s.base == page) {
      s.Release((vaddr - page) / object_size);
      ++stats_.frees;
      --stats_.live_objects;
      return Status::Ok();
    }
  }
  return InternalError("slab bookkeeping inconsistent");
}

Result<uint64_t> VmallocArena::Vmalloc(uint64_t bytes) {
  if (bytes == 0) {
    return InvalidArgumentError("vmalloc of zero bytes");
  }
  uint64_t pages = AlignUp(bytes, kPageSize) >> kPageShift;
  // +1 unmapped guard page after the range.
  if (cursor_pages_ + pages + 1 > arena_pages_) {
    return ResourceExhaustedError("vmalloc arena exhausted");
  }
  uint64_t vaddr = kVmallocBase + (cursor_pages_ << kPageShift);
  cursor_pages_ += pages + 1;

  auto frames = image_->phys().AllocFrames(pages);
  if (!frames.ok()) {
    return frames.status();
  }
  PteFlags flags;
  flags.present = true;
  flags.writable = true;
  flags.nx = true;
  image_->page_table().MapRange(vaddr, *frames, pages, flags);
  ranges_[vaddr] = pages;
  return vaddr;
}

Status VmallocArena::Vfree(uint64_t vaddr) {
  auto it = ranges_.find(vaddr);
  if (it == ranges_.end()) {
    return InvalidArgumentError("vfree of unknown range");
  }
  image_->page_table().UnmapRange(vaddr, it->second);
  ranges_.erase(it);
  return Status::Ok();
}

}  // namespace krx
