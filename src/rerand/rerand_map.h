// RerandMap: the build-time metadata that makes a linked kernel image
// re-randomizable at runtime.
//
// The pipeline captures, just before linking, everything the live
// re-randomization engine (src/rerand/engine.h) needs to re-lay-out the
// image from scratch during an epoch:
//   - the *pristine* (pre-relocation) text blob with its blob-relative
//     relocation records and per-function extents — krx64 encodings have
//     operand-independent sizes, so rewriting every relocated field never
//     changes layout, and the pristine bytes can be re-placed in any
//     function order;
//   - the xkey slots (one 8-byte return-address key per instrumented
//     function, resident in the execute-only .krx_xkeys section);
//   - the patchable pointer sites: every 8-byte data slot the linker
//     initialized with the address of a symbol (dispatch tables, the
//     syscall table, function-pointer-bearing structs).
// Finalize() resolves the captured records against the linked image and
// precomputes each function's *return sites* (offsets just past every call
// instruction) — the oracle the stack re-encryption walk uses to recognize
// encrypted in-flight return addresses.
#ifndef KRX_SRC_RERAND_RERAND_MAP_H_
#define KRX_SRC_RERAND_RERAND_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/kernel/assembler.h"
#include "src/kernel/image.h"
#include "src/kernel/object.h"

namespace krx {

// A movable function: pristine extent (immutable, from the build) plus its
// current placement (updated by every completed epoch).
struct RerandFunction {
  std::string name;
  int32_t symbol = -1;          // index in the image's symbol table
  uint64_t pristine_offset = 0; // extent start within the pristine blob
  uint64_t size = 0;
  uint64_t current_offset = 0;  // extent start within the live .text content
  // Function-relative offsets just past each call instruction: the only
  // places a (decrypted) return address may legitimately point.
  std::vector<uint64_t> return_sites;
};

// One per-function return-address key slot in .krx_xkeys. The slot address
// is fixed (the xkeys section never moves); only its value rotates.
struct RerandXkeySlot {
  int32_t key_symbol = -1;  // the xkey$<fn> data symbol
  int32_t fn_symbol = -1;   // the owning function's symbol (or -1)
  uint64_t vaddr = 0;       // absolute slot address
  std::string fn_name;
};

// An 8-byte data slot the linker initialized with `symbol + addend`. The
// epoch rewrites it to the symbol's post-epoch address — but only if it
// still holds the pre-epoch value (the guest may have overwritten it).
struct RerandPtrSite {
  uint64_t vaddr = 0;   // absolute slot address
  int32_t symbol = -1;
  int64_t addend = 0;
  std::string object;   // owning data object (debugging / objdump)
  uint64_t offset = 0;  // slot offset within the object
};

struct RerandMap {
  // Captured by the pipeline before LinkKernel consumes (and relocates) the
  // blob: bytes are pre-relocation, relocs/extents are blob-relative.
  //
  // Sharing contract (multi-tenant fleet, src/fleet): the blob is immutable
  // once captured and may be referenced by many RerandMaps at once — every
  // copy-on-write tenant materialized from the same base build aliases the
  // base's blob instead of carrying its own. Epochs only *read* the pristine
  // bytes (they rebuild the live .text from them); anything that would
  // mutate the blob must copy first. Never null after CompileKernel.
  std::shared_ptr<const TextBlob> pristine;

  // Pointer-slot records captured before the data objects are linked away;
  // Finalize() resolves them into ptr_sites.
  struct PendingPtrSite {
    std::string object;
    uint64_t offset = 0;
    int32_t symbol = -1;
    int64_t addend = 0;
  };
  std::vector<PendingPtrSite> pending_ptr_sites;

  // Filled by Finalize().
  std::vector<RerandFunction> functions;
  std::vector<RerandXkeySlot> xkey_slots;
  std::vector<RerandPtrSite> ptr_sites;
  uint64_t text_base = 0;
  uint64_t text_content_size = 0;  // the .text section's content size
  uint64_t text_mapped_size = 0;   // page-aligned capacity of the mapping
  bool finalized = false;

  // Resolves the captured records against the linked image: text placement,
  // function symbols, xkey slots (every defined `xkey$...` symbol), pointer
  // sites, and per-function return sites decoded from the pristine bytes.
  // Validates that every text relocation lies inside a function extent (an
  // epoch could not shift it otherwise).
  Status Finalize(const KernelImage& image);
};

}  // namespace krx

#endif  // KRX_SRC_RERAND_RERAND_MAP_H_
