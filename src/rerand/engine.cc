#include "src/rerand/engine.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "src/cpu/cpu.h"
#include "src/kernel/assembler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/verify/verifier.h"

namespace krx {
namespace {

uint64_t Align16(uint64_t v) { return (v + 15) & ~15ULL; }

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* RerandTriggerName(RerandTrigger trigger) {
  switch (trigger) {
    case RerandTrigger::kManual: return "manual";
    case RerandTrigger::kTimer: return "timer";
    case RerandTrigger::kOops: return "oops";
    case RerandTrigger::kDisclosure: return "disclosure";
  }
  return "?";
}

const char* RerandStepName(RerandStep step) {
  switch (step) {
    case RerandStep::kQuiesce: return "quiesce";
    case RerandStep::kRelayout: return "relayout";
    case RerandStep::kPatchText: return "patch_text";
    case RerandStep::kRotateKeys: return "rotate_keys";
    case RerandStep::kRewriteStacks: return "rewrite_stacks";
    case RerandStep::kPatchPointers: return "patch_pointers";
    case RerandStep::kPatchModules: return "patch_modules";
    case RerandStep::kVerify: return "verify";
    case RerandStep::kNumSteps: break;
  }
  return "?";
}

// Byte-level write journal: every mutation records the prior bytes first, so
// a failed epoch replays the journal in reverse and the image is restored
// bit-for-bit (the module loader's rollback discipline, applied here).
struct RerandEngine::Journal {
  struct Entry {
    uint64_t vaddr = 0;
    std::vector<uint8_t> old_bytes;
  };
  std::vector<Entry> entries;

  Status Poke(KernelImage& image, uint64_t vaddr, const uint8_t* src, uint64_t len) {
    Entry e;
    e.vaddr = vaddr;
    e.old_bytes.resize(len);
    KRX_RETURN_IF_ERROR(image.PeekBytes(vaddr, e.old_bytes.data(), len));
    entries.push_back(std::move(e));
    return image.PokeBytes(vaddr, src, len);
  }

  Status Poke64(KernelImage& image, uint64_t vaddr, uint64_t value) {
    uint8_t le[8];
    std::memcpy(le, &value, 8);
    return Poke(image, vaddr, le, 8);
  }
};

struct RerandEngine::Layout {
  std::vector<uint64_t> new_offsets;  // indexed like map().functions
  uint64_t front_gap = 0;
  uint64_t moved = 0;
};

RerandEngine::RerandEngine(CompiledKernel* kernel, RerandOptions options)
    : kernel_(kernel), map_(kernel->rerand.get()), options_(options), rng_(options.seed) {
  KRX_CHECK(kernel_ != nullptr && kernel_->image != nullptr);
  KRX_CHECK(map_ != nullptr && map_->finalized);
}

RerandEngine::~RerandEngine() { StopTimer(); }

void RerandEngine::RegisterCpu(Cpu* cpu) {
  cpu->set_quiesce_gate(&gate_);
  cpus_.push_back(cpu);
}

Status RerandEngine::CheckFailpoint(RerandStep step) {
  if (failpoint_ == static_cast<int>(step)) {
    return InternalError(std::string("rerand failpoint: injected failure before ") +
                         RerandStepName(step));
  }
  return Status::Ok();
}

Status RerandEngine::DrawLayout(Layout* layout) {
  const auto& fns = map_->functions;
  const uint64_t capacity = map_->text_content_size;
  const size_t n = fns.size();

  // The function with the largest 16-byte alignment pad goes last so the
  // total never exceeds the pristine content size for any permutation
  // (total = gap + sum(align16(size)) - pad(last)).
  size_t max_pad_idx = 0;
  uint64_t max_pad = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t pad = Align16(fns[i].size) - fns[i].size;
    if (pad >= max_pad) {
      max_pad = pad;
      max_pad_idx = i;
    }
  }

  std::vector<size_t> order(n);
  std::vector<uint64_t> offsets(n);
  uint64_t best_moved = 0;
  bool have_best = false;
  // Draw a handful of permutations and keep the one that moves the most
  // functions — a plain shuffle can leave a prefix in place, and the whole
  // point of an epoch is that disclosed addresses go stale.
  for (int attempt = 0; attempt < 40; ++attempt) {
    for (size_t i = 0; i < n; ++i) order[i] = i;
    rng_.Shuffle(order);
    auto it = std::find(order.begin(), order.end(), max_pad_idx);
    std::rotate(it, it + 1, order.end());  // move max-pad function to the end

    uint64_t cursor = 0;
    for (size_t idx : order) {
      cursor = Align16(cursor);
      offsets[idx] = cursor;
      cursor += fns[idx].size;
    }
    if (cursor > capacity) {
      return InternalError("rerand layout exceeds .text capacity");  // unreachable by design
    }
    const uint64_t slack = capacity - cursor;
    const uint64_t gap = 16 * rng_.NextBelow(slack / 16 + 1);

    uint64_t moved = 0;
    for (size_t i = 0; i < n; ++i) {
      if (offsets[i] + gap != fns[i].current_offset) ++moved;
    }
    if (!have_best || moved > best_moved) {
      have_best = true;
      best_moved = moved;
      layout->new_offsets.assign(offsets.begin(), offsets.end());
      for (auto& off : layout->new_offsets) off += gap;
      layout->front_gap = gap;
      layout->moved = moved;
    }
    if (best_moved == n) break;
  }
  return Status::Ok();
}

Status RerandEngine::PatchText(const Layout& layout, Journal* journal) {
  KernelImage& image = *kernel_->image;
  SymbolTable& syms = image.symbols();
  const uint64_t base = map_->text_base;
  const auto& fns = map_->functions;

  // Rebuild the whole content extent from the pristine blob: start from an
  // int3 sea (stale bytes from the previous layout must not survive as
  // gadgets), place each function at its new offset, then re-apply the
  // relocations shifted into the new layout.
  std::vector<uint8_t> content(map_->text_content_size, kTextPadByte);
  for (size_t i = 0; i < fns.size(); ++i) {
    std::memcpy(content.data() + layout.new_offsets[i],
                map_->pristine->bytes.data() + fns[i].pristine_offset, fns[i].size);
  }

  std::vector<Reloc> shifted;
  shifted.reserve(map_->pristine->relocs.size());
  for (const Reloc& r : map_->pristine->relocs) {
    size_t owner = fns.size();
    for (size_t i = 0; i < fns.size(); ++i) {
      if (r.field_offset >= fns[i].pristine_offset &&
          r.field_offset < fns[i].pristine_offset + fns[i].size) {
        owner = i;
        break;
      }
    }
    if (owner == fns.size()) {
      return InternalError("rerand: text reloc outside every function extent");
    }
    Reloc s = r;
    const uint64_t delta = layout.new_offsets[owner] - fns[owner].pristine_offset;
    s.field_offset += delta;
    s.inst_end_offset += delta;
    shifted.push_back(s);
  }

  // New function addresses must be bound before relocation (calls between
  // moved functions resolve against the new layout).
  for (size_t i = 0; i < fns.size(); ++i) {
    syms.at(fns[i].symbol).address = base + layout.new_offsets[i];
  }
  KRX_RETURN_IF_ERROR(ApplyRelocs(content, shifted, base, syms));
  KRX_RETURN_IF_ERROR(journal->Poke(image, base, content.data(), content.size()));
  for (size_t i = 0; i < fns.size(); ++i) {
    map_->functions[i].current_offset = layout.new_offsets[i];
  }
  return Status::Ok();
}

Status RerandEngine::RotateKeys(std::vector<uint64_t>* old_keys, std::vector<uint64_t>* new_keys,
                                Journal* journal, EpochReport* report) {
  KernelImage& image = *kernel_->image;
  const auto& slots = map_->xkey_slots;
  old_keys->resize(slots.size());
  new_keys->resize(slots.size());
  for (size_t k = 0; k < slots.size(); ++k) {
    auto cur = image.Peek64(slots[k].vaddr);
    KRX_RETURN_IF_ERROR(cur.status());
    (*old_keys)[k] = *cur;
    if (options_.rotate_xkeys) {
      uint64_t nk;
      do {
        nk = rng_.Next();
      } while (nk == 0 || nk == *cur);  // key must change and stay nonzero
      KRX_RETURN_IF_ERROR(journal->Poke64(image, slots[k].vaddr, nk));
      (*new_keys)[k] = nk;
      ++report->keys_rotated;
    } else {
      (*new_keys)[k] = *cur;
    }
  }
  return Status::Ok();
}

Status RerandEngine::RewriteStacks(const std::vector<uint64_t>& old_offsets,
                                   const std::vector<uint64_t>& old_keys,
                                   const std::vector<uint64_t>& new_keys, Journal* journal,
                                   EpochReport* report) {
  KernelImage& image = *kernel_->image;
  const auto& fns = map_->functions;
  const uint64_t base = map_->text_base;

  std::vector<std::pair<uint64_t, uint64_t>> ranges = extra_stack_ranges_;
  if (stack_ranges_provider_) {
    auto provided = stack_ranges_provider_(image);
    KRX_RETURN_IF_ERROR(provided.status());
    ranges.insert(ranges.end(), provided->begin(), provided->end());
  }
  if (ranges.empty()) return Status::Ok();

  // Old-layout oracle: function extents (plaintext code pointers) and
  // return-site addresses (encrypted return addresses).
  struct Extent {
    uint64_t lo, hi;
    size_t fn;
  };
  std::vector<Extent> extents;
  extents.reserve(fns.size());
  std::unordered_map<uint64_t, std::pair<size_t, uint64_t>> site_of;  // addr -> (fn, rel)
  for (size_t i = 0; i < fns.size(); ++i) {
    const uint64_t lo = base + old_offsets[i];
    extents.push_back({lo, lo + fns[i].size, i});
    for (uint64_t rel : fns[i].return_sites) {
      site_of.emplace(lo + rel, std::make_pair(i, rel));
    }
  }

  for (const auto& [range_lo, range_hi] : ranges) {
    uint64_t lo = (range_lo + 7) & ~7ULL;
    for (uint64_t addr = lo; addr + 8 <= range_hi; addr += 8) {
      auto word = image.Peek64(addr);
      KRX_RETURN_IF_ERROR(word.status());
      const uint64_t w = *word;
      ++report->stack_words_scanned;
      if (w == 0 || w == Cpu::kReturnSentinel) continue;

      std::vector<uint64_t> candidates;
      // Plaintext code pointer into a moved function (unencrypted return
      // addresses of exempt functions, spawned-task entry points, ...).
      for (const Extent& e : extents) {
        if (w >= e.lo && w < e.hi) {
          candidates.push_back(base + fns[e.fn].current_offset + (w - e.lo));
          break;
        }
      }
      // Encrypted return address: some callee's old key decrypts it to a
      // legitimate return site. The key slot is the callee's; the site lives
      // in the caller — they move independently.
      for (size_t k = 0; k < old_keys.size(); ++k) {
        auto it = site_of.find(w ^ old_keys[k]);
        if (it == site_of.end()) continue;
        const auto [fn, rel] = it->second;
        candidates.push_back((base + fns[fn].current_offset + rel) ^ new_keys[k]);
      }

      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
      if (candidates.empty()) continue;
      if (candidates.size() > 1) {
        // Two interpretations disagree on the rewrite. Guessing would corrupt
        // a live stack; abort the epoch (full rollback) instead.
        return InternalError("rerand: ambiguous stack word at " + std::to_string(addr));
      }
      if (candidates[0] != w) {
        KRX_RETURN_IF_ERROR(journal->Poke64(image, addr, candidates[0]));
        ++report->stack_words_rewritten;
      }
    }
  }
  return Status::Ok();
}

Status RerandEngine::PatchPointers(const std::vector<uint64_t>& old_symbol_addrs,
                                   Journal* journal, EpochReport* report) {
  KernelImage& image = *kernel_->image;
  const SymbolTable& syms = image.symbols();
  for (const RerandPtrSite& site : map_->ptr_sites) {
    const uint64_t expected = old_symbol_addrs[static_cast<size_t>(site.symbol)] +
                              static_cast<uint64_t>(site.addend);
    auto cur = image.Peek64(site.vaddr);
    KRX_RETURN_IF_ERROR(cur.status());
    if (*cur != expected) {
      // The guest overwrote this slot at runtime; it no longer holds the
      // address we initialized it with, so it is not ours to repatch.
      ++report->ptr_sites_skipped;
      continue;
    }
    const uint64_t fresh = syms.at(site.symbol).address + static_cast<uint64_t>(site.addend);
    if (fresh != *cur) {
      KRX_RETURN_IF_ERROR(journal->Poke64(image, site.vaddr, fresh));
      ++report->ptr_sites_patched;
    }
  }
  return Status::Ok();
}

Status RerandEngine::PatchModules(const std::vector<uint64_t>& old_symbol_addrs,
                                  Journal* journal, EpochReport* report) {
  if (module_loader_ == nullptr) return Status::Ok();
  KernelImage& image = *kernel_->image;
  const SymbolTable& syms = image.symbols();
  for (size_t h = 0; h < module_loader_->module_count(); ++h) {
    const LoadedModule& lm = module_loader_->module(static_cast<int32_t>(h));
    if (!lm.loaded) continue;
    // Text relocations: recomputed unconditionally — module text is
    // guest-immutable under R^X, so the fields still hold what we linked.
    for (const Reloc& r : lm.text_relocs) {
      const Symbol& sym = syms.at(r.symbol);
      switch (r.kind) {
        case RelocKind::kRel32: {
          int64_t rel = static_cast<int64_t>(sym.address) -
                        static_cast<int64_t>(lm.text_vaddr + r.inst_end_offset);
          if (rel < INT32_MIN || rel > INT32_MAX) {
            return OutOfRangeError("rerand: module rel32 overflow to " + sym.name);
          }
          int32_t rel32 = static_cast<int32_t>(rel);
          uint8_t le[4];
          std::memcpy(le, &rel32, 4);
          uint8_t old[4];
          KRX_RETURN_IF_ERROR(image.PeekBytes(lm.text_vaddr + r.field_offset, old, 4));
          if (std::memcmp(old, le, 4) != 0) {
            KRX_RETURN_IF_ERROR(journal->Poke(image, lm.text_vaddr + r.field_offset, le, 4));
            ++report->module_sites_patched;
          }
          break;
        }
        case RelocKind::kAbs64: {
          const uint64_t fresh = sym.address + static_cast<uint64_t>(r.addend);
          auto cur = image.Peek64(lm.text_vaddr + r.field_offset);
          KRX_RETURN_IF_ERROR(cur.status());
          if (*cur != fresh) {
            KRX_RETURN_IF_ERROR(journal->Poke64(image, lm.text_vaddr + r.field_offset, fresh));
            ++report->module_sites_patched;
          }
          break;
        }
      }
    }
    // Data relocations: conditional, like kernel pointer sites — the module
    // may have overwritten its own data at runtime.
    for (const Reloc& r : lm.data_relocs) {
      if (r.kind != RelocKind::kAbs64) continue;
      const uint64_t expected = old_symbol_addrs[static_cast<size_t>(r.symbol)] +
                                static_cast<uint64_t>(r.addend);
      auto cur = image.Peek64(lm.data_vaddr + r.field_offset);
      KRX_RETURN_IF_ERROR(cur.status());
      if (*cur != expected) continue;
      const uint64_t fresh = syms.at(r.symbol).address + static_cast<uint64_t>(r.addend);
      if (fresh != *cur) {
        KRX_RETURN_IF_ERROR(journal->Poke64(image, lm.data_vaddr + r.field_offset, fresh));
        ++report->module_sites_patched;
      }
    }
  }
  return Status::Ok();
}

void RerandEngine::Rollback(const Journal& journal,
                            const std::vector<uint64_t>& old_symbol_addrs,
                            const std::vector<uint64_t>& old_offsets) {
  KernelImage& image = *kernel_->image;
  for (auto it = journal.entries.rbegin(); it != journal.entries.rend(); ++it) {
    KRX_CHECK_OK(image.PokeBytes(it->vaddr, it->old_bytes.data(), it->old_bytes.size()));
  }
  SymbolTable& syms = image.symbols();
  for (size_t i = 0; i < old_symbol_addrs.size(); ++i) {
    syms.at(static_cast<int32_t>(i)).address = old_symbol_addrs[i];
  }
  for (size_t i = 0; i < old_offsets.size(); ++i) {
    map_->functions[i].current_offset = old_offsets[i];
  }
}

Result<EpochReport> RerandEngine::RunEpoch(RerandTrigger trigger) {
  std::lock_guard<std::mutex> epoch_lock(epoch_mu_);
  KRX_TRACE_SPAN_SCOPED("rerand.epoch");
  EpochReport report;
  report.trigger = trigger;
  Status st = DoEpoch(trigger, &report);
  if (!st.ok()) {
    epoch_failures_.fetch_add(1, std::memory_order_acq_rel);
    KRX_COUNTER_ADD("rerand.epoch_failures", 1);
    return st;
  }
  KRX_COUNTER_ADD("rerand.epochs", 1);
  KRX_COUNTER_ADD("rerand.functions_moved", report.functions_moved);
  KRX_COUNTER_ADD("rerand.keys_rotated", report.keys_rotated);
  KRX_COUNTER_ADD("rerand.stack_words_rewritten", report.stack_words_rewritten);
  KRX_HISTO_US("rerand.stw_us", static_cast<uint64_t>(report.stw_ms * 1000.0));
  KRX_HISTO_US("rerand.quiesce_wait_us",
               static_cast<uint64_t>(report.quiesce_wait_ms * 1000.0));
  last_report_ = report;
  return report;
}

Status RerandEngine::DoEpoch(RerandTrigger trigger, EpochReport* report) {
  (void)trigger;
  KernelImage& image = *kernel_->image;

  KRX_RETURN_IF_ERROR(CheckFailpoint(RerandStep::kQuiesce));
  const auto t_request = std::chrono::steady_clock::now();
  if (options_.quiesce_timeout_ms > 0) {
    if (!gate_.BeginExclusiveFor(std::chrono::milliseconds(options_.quiesce_timeout_ms))) {
      KRX_COUNTER_ADD("rerand.quiesce_timeouts", 1);
      return FailedPreconditionError(
          "rerand: quiesce did not drain within " +
          std::to_string(options_.quiesce_timeout_ms) + "ms; epoch aborted");
    }
  } else {
    gate_.BeginExclusive();
  }
  const auto t_quiesced = std::chrono::steady_clock::now();
  report->quiesce_wait_ms =
      std::chrono::duration<double, std::milli>(t_quiesced - t_request).count();

  // Per-step trace marks: one kRerandStep event per completed pipeline
  // step, carrying the step's wall time. Clock reads happen only with
  // tracing enabled.
  auto t_step = t_quiesced;
  (void)t_step;
  auto mark_step = [&](RerandStep step) {
    (void)step;
#if !defined(KRX_TELEMETRY_DISABLED)
    if (telemetry::TraceEnabled()) {
      const auto now = std::chrono::steady_clock::now();
      const uint64_t us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(now - t_step).count());
      t_step = now;
      telemetry::EmitEvent(telemetry::TraceEventType::kRerandStep, RerandStepName(step),
                           static_cast<uint64_t>(step), us);
    }
#endif
  };
  mark_step(RerandStep::kQuiesce);

  // Snapshots for rollback and for old->new address mapping.
  SymbolTable& syms = image.symbols();
  std::vector<uint64_t> old_symbol_addrs(syms.size());
  for (size_t i = 0; i < syms.size(); ++i) {
    old_symbol_addrs[i] = syms.at(static_cast<int32_t>(i)).address;
  }
  std::vector<uint64_t> old_offsets(map_->functions.size());
  for (size_t i = 0; i < map_->functions.size(); ++i) {
    old_offsets[i] = map_->functions[i].current_offset;
  }
  Journal journal;

  auto fail = [&](Status s) {
    Rollback(journal, old_symbol_addrs, old_offsets);
    gate_.EndExclusive();
    return s;
  };

  Status st = CheckFailpoint(RerandStep::kRelayout);
  if (!st.ok()) return fail(st);
  Layout layout;
  layout.new_offsets = old_offsets;
  if (options_.permute && !map_->functions.empty()) {
    st = DrawLayout(&layout);
    if (!st.ok()) return fail(st);
  }
  mark_step(RerandStep::kRelayout);

  st = CheckFailpoint(RerandStep::kPatchText);
  if (!st.ok()) return fail(st);
  if (options_.permute && !map_->functions.empty()) {
    st = PatchText(layout, &journal);
    if (!st.ok()) return fail(st);
    report->functions_moved = layout.moved;
    report->front_gap = layout.front_gap;
  }
  mark_step(RerandStep::kPatchText);

  st = CheckFailpoint(RerandStep::kRotateKeys);
  if (!st.ok()) return fail(st);
  std::vector<uint64_t> old_keys, new_keys;
  st = RotateKeys(&old_keys, &new_keys, &journal, report);
  if (!st.ok()) return fail(st);
  mark_step(RerandStep::kRotateKeys);

  st = CheckFailpoint(RerandStep::kRewriteStacks);
  if (!st.ok()) return fail(st);
  st = RewriteStacks(old_offsets, old_keys, new_keys, &journal, report);
  if (!st.ok()) return fail(st);
  mark_step(RerandStep::kRewriteStacks);

  st = CheckFailpoint(RerandStep::kPatchPointers);
  if (!st.ok()) return fail(st);
  st = PatchPointers(old_symbol_addrs, &journal, report);
  if (!st.ok()) return fail(st);
  mark_step(RerandStep::kPatchPointers);

  st = CheckFailpoint(RerandStep::kPatchModules);
  if (!st.ok()) return fail(st);
  st = PatchModules(old_symbol_addrs, &journal, report);
  if (!st.ok()) return fail(st);
  mark_step(RerandStep::kPatchModules);

  st = CheckFailpoint(RerandStep::kVerify);
  if (!st.ok()) return fail(st);
  if (options_.verify_after) {
    VerifyOptions vo = VerifyOptions::ForConfig(kernel_->config);
    if (vo.AnyChecks()) {
      VerifyReport vr = VerifyImage(image, vo);
      if (!vr.ok()) {
        return fail(InternalError("rerand: post-epoch verification failed:\n" + vr.Summary(8)));
      }
      report->verified = true;
    }
  }
  mark_step(RerandStep::kVerify);

  // Commit: every block cache must re-decode under the new layout, and each
  // registered Cpu re-resolves the (moved) krx_handler extent it caches.
  image.BumpTextGeneration();
  for (Cpu* cpu : cpus_) cpu->RefreshKrxHandlerRange();
  report->epoch = epochs_completed_.fetch_add(1, std::memory_order_acq_rel) + 1;
  report->stw_ms = MsSince(t_quiesced);
  gate_.EndExclusive();
  return Status::Ok();
}

Result<EpochReport> RerandEngine::RunEpochWithRetry(RerandTrigger trigger) {
  if (!has_retry_policy_) return RunEpoch(trigger);
  Retrier retrier("rerand_epoch", retry_policy_, &retry_rng_);
  return retrier.Run<EpochReport>(
      [this, trigger](int /*attempt*/) { return RunEpoch(trigger); });
}

void RerandEngine::StartTimer(std::chrono::milliseconds period, Clock* clock) {
  StopTimer();
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = false;
  }
  Clock* ck = clock != nullptr ? clock : RealClock();
  timer_thread_ = std::thread([this, period, ck] {
    std::unique_lock<std::mutex> lock(timer_mu_);
    while (!timer_stop_) {
      if (ck->WaitUntil(timer_cv_, lock, ck->Now() + period,
                        [this] { return timer_stop_; })) {
        break;
      }
      lock.unlock();
      // A failed tick counts in epoch_failures(); the timer keeps running.
      (void)RunEpochWithRetry(RerandTrigger::kTimer);
      lock.lock();
    }
  });
}

void RerandEngine::StopTimer() {
  {
    std::lock_guard<std::mutex> lock(timer_mu_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  if (timer_thread_.joinable()) timer_thread_.join();
}

}  // namespace krx
