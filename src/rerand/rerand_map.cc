#include "src/rerand/rerand_map.h"

#include <algorithm>

#include "src/isa/encoding.h"
#include "src/isa/instruction.h"

namespace krx {
namespace {

constexpr const char* kXkeyPrefix = "xkey$";

bool IsCallOpcode(Opcode op) {
  return op == Opcode::kCallRel || op == Opcode::kCallR || op == Opcode::kCallM;
}

}  // namespace

Status RerandMap::Finalize(const KernelImage& image) {
  if (finalized) {
    return FailedPreconditionError("RerandMap already finalized");
  }
  if (pristine == nullptr) {
    return FailedPreconditionError("RerandMap: no pristine blob captured");
  }
  const PlacedSection* text = image.FindSection(".text");
  if (text == nullptr) {
    return NotFoundError("RerandMap: image has no .text section");
  }
  if (text->size != pristine->bytes.size()) {
    return InternalError("RerandMap: pristine blob size " +
                         std::to_string(pristine->bytes.size()) +
                         " != linked .text content size " + std::to_string(text->size));
  }
  text_base = text->vaddr;
  text_content_size = text->size;
  text_mapped_size = text->mapped_size;

  const SymbolTable& syms = image.symbols();

  // Function extents. The initial layout is the pristine layout: the link
  // placed each function at its blob offset.
  functions.clear();
  functions.reserve(pristine->functions.size());
  for (const AssembledFunction& fn : pristine->functions) {
    RerandFunction rf;
    rf.name = fn.name;
    rf.symbol = syms.Find(fn.name);
    if (rf.symbol < 0 || !syms.at(rf.symbol).defined) {
      return NotFoundError("RerandMap: no defined symbol for function " + fn.name);
    }
    rf.pristine_offset = fn.offset;
    rf.size = fn.size;
    rf.current_offset = fn.offset;
    // Decode the pristine extent to find return sites (offset just past each
    // call). Sizes are operand-independent, so unapplied relocations do not
    // perturb the decode walk; an operand field that happens to hold a
    // placeholder still decodes with the correct size and opcode.
    uint64_t off = fn.offset;
    const uint64_t end = fn.offset + fn.size;
    while (off < end) {
      auto dec = DecodeInstruction(pristine->bytes.data(), pristine->bytes.size(), off);
      if (!dec.ok()) {
        // Alignment padding inside the extent would be a build bug; surface it.
        return InternalError("RerandMap: undecodable byte at pristine offset " +
                             std::to_string(off) + " in " + fn.name + ": " +
                             dec.status().message());
      }
      off += dec->size;
      if (IsCallOpcode(dec->inst.op)) {
        rf.return_sites.push_back(off - fn.offset);
      }
    }
    functions.push_back(std::move(rf));
  }

  // Every text relocation must fall inside some function extent, or an epoch
  // could not shift it with its function.
  for (const Reloc& r : pristine->relocs) {
    bool covered = false;
    for (const RerandFunction& rf : functions) {
      if (r.field_offset >= rf.pristine_offset &&
          r.field_offset + 4 <= rf.pristine_offset + rf.size) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      return InternalError("RerandMap: text reloc at blob offset " +
                           std::to_string(r.field_offset) +
                           " lies outside every function extent");
    }
  }

  // Xkey slots: every defined data symbol named xkey$<fn>. Absent when the
  // build did not enable return-address encryption.
  xkey_slots.clear();
  for (size_t i = 0; i < syms.size(); ++i) {
    const Symbol& s = syms.at(static_cast<int32_t>(i));
    if (!s.defined || s.name.rfind(kXkeyPrefix, 0) != 0) continue;
    RerandXkeySlot slot;
    slot.key_symbol = static_cast<int32_t>(i);
    slot.vaddr = s.address;
    slot.fn_name = s.name.substr(std::string(kXkeyPrefix).size());
    slot.fn_symbol = syms.Find(slot.fn_name);
    xkey_slots.push_back(std::move(slot));
  }

  // Pointer sites: resolve object-relative slots to absolute addresses.
  ptr_sites.clear();
  ptr_sites.reserve(pending_ptr_sites.size());
  for (const PendingPtrSite& p : pending_ptr_sites) {
    auto base = syms.AddressOf(p.object);
    if (!base.ok()) {
      return NotFoundError("RerandMap: pointer-slot owner " + p.object +
                           " has no linked address");
    }
    RerandPtrSite site;
    site.vaddr = *base + p.offset;
    site.symbol = p.symbol;
    site.addend = p.addend;
    site.object = p.object;
    site.offset = p.offset;
    ptr_sites.push_back(std::move(site));
  }
  pending_ptr_sites.clear();

  finalized = true;
  return Status::Ok();
}

}  // namespace krx
