// Quiescence protocol between running Cpus and the re-randomization engine.
//
// Safe points are run boundaries: a Cpu enters the gate for the whole of one
// CallFunction/RunAt and leaves it when the run returns. An epoch takes the
// gate exclusively, which (a) waits for every in-flight run to reach its
// boundary and (b) holds new runs at the entry until the epoch completes.
// This is a readers/writer lock with writer priority — without priority a
// steady stream of runs would starve the epoch thread indefinitely.
//
// Deliberately header-only: src/cpu only forward-declares QuiesceGate and
// keeps no link dependency on src/rerand; src/cpu/cpu.cc includes this
// header for the inline definitions.
//
// Rules (enforced by construction, documented in DESIGN.md §10):
//   - A thread must never start an epoch while it is itself inside a run on
//     a gated Cpu (self-deadlock).
//   - Cpu entry points acquire the gate exactly once per run; internal
//     delegation (CallFunction(name) -> CallFunction(entry)) must not
//     re-enter, or a waiting writer wedges the nested acquisition.
#ifndef KRX_SRC_RERAND_QUIESCE_H_
#define KRX_SRC_RERAND_QUIESCE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace krx {

class QuiesceGate {
 public:
  // Reader side: a Cpu run. Blocks while an epoch is active or waiting
  // (writer priority).
  void BeginRun() {
    std::unique_lock<std::mutex> lock(mu_);
    // The wait is timed only when this run actually blocks (an epoch is in
    // flight or queued): the uncontended fast path stays clock-free.
    if (exclusive_ || writers_waiting_ != 0) {
      const uint64_t t0 = WaitClockUs();
      cv_.wait(lock, [this] { return !exclusive_ && writers_waiting_ == 0; });
      RecordWait(/*writer=*/false, WaitClockUs() - t0);
    }
    ++active_runs_;
  }
  void EndRun() {
    std::lock_guard<std::mutex> lock(mu_);
    --active_runs_;
    if (active_runs_ == 0) cv_.notify_all();
  }

  // Writer side: an epoch. Returns once every in-flight run has drained;
  // new runs are held at BeginRun until EndExclusive.
  void BeginExclusive() {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    if (exclusive_ || active_runs_ != 0) {
      const uint64_t t0 = WaitClockUs();
      cv_.wait(lock, [this] { return !exclusive_ && active_runs_ == 0; });
      RecordWait(/*writer=*/true, WaitClockUs() - t0);
    }
    --writers_waiting_;
    exclusive_ = true;
  }
  void EndExclusive() {
    std::lock_guard<std::mutex> lock(mu_);
    exclusive_ = false;
    cv_.notify_all();
  }

  // Bounded-wait writer acquisition: true = gate held exclusively (caller
  // must EndExclusive), false = in-flight runs did not drain within
  // `timeout` and nothing was acquired. The supervision layer's epoch abort
  // path: a wedged reader bounds the epoch's wait instead of hanging it.
  bool BeginExclusiveFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    bool drained = !exclusive_ && active_runs_ == 0;
    if (!drained) {
      const uint64_t t0 = WaitClockUs();
      drained = cv_.wait_for(lock, timeout,
                             [this] { return !exclusive_ && active_runs_ == 0; });
      RecordWait(/*writer=*/true, WaitClockUs() - t0);
    }
    --writers_waiting_;
    if (!drained) {
      KRX_COUNTER_ADD("quiesce.writer_timeouts", 1);
      // Writer priority held readers out while we waited; release them.
      if (writers_waiting_ == 0) cv_.notify_all();
      return false;
    }
    exclusive_ = true;
    return true;
  }

  // Snapshot for diagnostics/benchmarks; racy by nature.
  uint64_t active_runs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_runs_;
  }

 private:
  static uint64_t WaitClockUs() {
#if defined(KRX_TELEMETRY_DISABLED)
    return 0;
#else
    return telemetry::Mode() == 0 ? 0 : telemetry::TraceNowUs();
#endif
  }
  static void RecordWait(bool writer, uint64_t waited_us) {
    (void)writer;
    (void)waited_us;
    if (writer) {
      KRX_COUNTER_ADD("quiesce.writer_waits", 1);
      KRX_HISTO_US("quiesce.writer_wait_us", waited_us);
    } else {
      KRX_COUNTER_ADD("quiesce.reader_waits", 1);
      KRX_HISTO_US("quiesce.reader_wait_us", waited_us);
    }
    KRX_TRACE_EVENT(kQuiesceWait, writer ? "quiesce_wait_writer" : "quiesce_wait_reader",
                    waited_us, writer ? 1 : 0);
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t active_runs_ = 0;
  uint64_t writers_waiting_ = 0;
  bool exclusive_ = false;
};

// RAII reader scope; tolerates a null gate (ungated Cpu, the default).
class QuiesceRunScope {
 public:
  explicit QuiesceRunScope(QuiesceGate* gate) : gate_(gate) {
    if (gate_ != nullptr) gate_->BeginRun();
  }
  ~QuiesceRunScope() {
    if (gate_ != nullptr) gate_->EndRun();
  }
  QuiesceRunScope(const QuiesceRunScope&) = delete;
  QuiesceRunScope& operator=(const QuiesceRunScope&) = delete;

 private:
  QuiesceGate* gate_;
};

}  // namespace krx

#endif  // KRX_SRC_RERAND_QUIESCE_H_
