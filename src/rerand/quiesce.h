// Quiescence protocol between running Cpus and the re-randomization engine.
//
// Safe points are run boundaries: a Cpu enters the gate for the whole of one
// CallFunction/RunAt and leaves it when the run returns. An epoch takes the
// gate exclusively, which (a) waits for every in-flight run to reach its
// boundary and (b) holds new runs at the entry until the epoch completes.
// This is a readers/writer lock with writer priority — without priority a
// steady stream of runs would starve the epoch thread indefinitely.
//
// Deliberately header-only: src/cpu only forward-declares QuiesceGate and
// keeps no link dependency on src/rerand; src/cpu/cpu.cc includes this
// header for the inline definitions.
//
// Rules (enforced by construction, documented in DESIGN.md §10):
//   - A thread must never start an epoch while it is itself inside a run on
//     a gated Cpu (self-deadlock).
//   - Cpu entry points acquire the gate exactly once per run; internal
//     delegation (CallFunction(name) -> CallFunction(entry)) must not
//     re-enter, or a waiting writer wedges the nested acquisition.
#ifndef KRX_SRC_RERAND_QUIESCE_H_
#define KRX_SRC_RERAND_QUIESCE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace krx {

class QuiesceGate {
 public:
  // Reader side: a Cpu run. Blocks while an epoch is active or waiting
  // (writer priority).
  void BeginRun() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !exclusive_ && writers_waiting_ == 0; });
    ++active_runs_;
  }
  void EndRun() {
    std::lock_guard<std::mutex> lock(mu_);
    --active_runs_;
    if (active_runs_ == 0) cv_.notify_all();
  }

  // Writer side: an epoch. Returns once every in-flight run has drained;
  // new runs are held at BeginRun until EndExclusive.
  void BeginExclusive() {
    std::unique_lock<std::mutex> lock(mu_);
    ++writers_waiting_;
    cv_.wait(lock, [this] { return !exclusive_ && active_runs_ == 0; });
    --writers_waiting_;
    exclusive_ = true;
  }
  void EndExclusive() {
    std::lock_guard<std::mutex> lock(mu_);
    exclusive_ = false;
    cv_.notify_all();
  }

  // Snapshot for diagnostics/benchmarks; racy by nature.
  uint64_t active_runs() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_runs_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  uint64_t active_runs_ = 0;
  uint64_t writers_waiting_ = 0;
  bool exclusive_ = false;
};

// RAII reader scope; tolerates a null gate (ungated Cpu, the default).
class QuiesceRunScope {
 public:
  explicit QuiesceRunScope(QuiesceGate* gate) : gate_(gate) {
    if (gate_ != nullptr) gate_->BeginRun();
  }
  ~QuiesceRunScope() {
    if (gate_ != nullptr) gate_->EndRun();
  }
  QuiesceRunScope(const QuiesceRunScope&) = delete;
  QuiesceRunScope& operator=(const QuiesceRunScope&) = delete;

 private:
  QuiesceGate* gate_;
};

}  // namespace krx

#endif  // KRX_SRC_RERAND_QUIESCE_H_
