// RerandEngine: epoch-based live re-randomization of a compiled kernel.
//
// Each epoch — triggered manually, by a timer tick, by an oops, or by a
// disclosure-detector signal — runs entirely under the quiescence gate:
//
//   quiesce -> relayout -> patch text -> rotate xkeys -> rewrite stacks
//           -> patch data pointers -> patch module relocs -> verify
//
// On any failure the epoch rolls back atomically (byte-level write journal
// replayed in reverse, symbol addresses and layout bookkeeping restored),
// reusing the module loader's transactional discipline; set_failpoint()
// lets the fault campaign interpose a failure before any step. A completed
// epoch bumps the image's text generation (every predecoded block cache
// drops its entries), refreshes the registered Cpus' cached krx_handler
// range, and — unless disabled — re-proves the full src/verify check matrix
// on the post-epoch bytes before execution resumes.
//
// Threading contract: RunEpoch may be called from any thread that is NOT
// currently inside a run on a gate-registered Cpu (self-deadlock otherwise);
// concurrent RunEpoch calls serialize. Safe points are run boundaries only —
// a suspended RunAt continuation across an epoch is unsupported.
#ifndef KRX_SRC_RERAND_ENGINE_H_
#define KRX_SRC_RERAND_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/base/rng.h"
#include "src/base/status.h"
#include "src/kernel/module_loader.h"
#include "src/plugin/pipeline.h"
#include "src/rerand/quiesce.h"
#include "src/rerand/rerand_map.h"
#include "src/supervise/clock.h"
#include "src/supervise/retry.h"

namespace krx {

class Cpu;

enum class RerandTrigger : uint8_t { kManual = 0, kTimer, kOops, kDisclosure };
const char* RerandTriggerName(RerandTrigger trigger);

// The interposable steps of an epoch, in execution order. A failpoint set to
// one of these makes the next epoch fail *before* that step runs (sticky
// until clear_failpoint), mirroring ModuleLoadStep.
enum class RerandStep : uint8_t {
  kQuiesce = 0,     // drain all gated Cpus to their run boundaries
  kRelayout,        // draw the new function permutation + front gap
  kPatchText,       // rebuild .text from pristine bytes at the new layout
  kRotateKeys,      // overwrite every xkey slot with a fresh key
  kRewriteStacks,   // re-encrypt in-flight return addresses, move code ptrs
  kPatchPointers,   // retained PtrInit sites in kernel data objects
  kPatchModules,    // retained module text/data relocations
  kVerify,          // re-prove the src/verify matrix on the new image
  kNumSteps,
};
const char* RerandStepName(RerandStep step);

struct RerandOptions {
  uint64_t seed = 0x43A0C4;
  bool permute = true;        // re-permute function layout
  bool rotate_xkeys = true;   // rotate return-address keys
  bool verify_after = true;   // run src/verify on the post-epoch image
  // Bound on the kQuiesce drain, in milliseconds; 0 = wait indefinitely.
  // A timed-out quiesce aborts the epoch (counted in epoch_failures(),
  // nothing journaled yet so nothing to roll back) instead of wedging the
  // epoch thread behind a stuck reader.
  uint64_t quiesce_timeout_ms = 0;
};

// What one completed epoch did (the bench and tests read these).
struct EpochReport {
  uint64_t epoch = 0;  // 1-based ordinal of this completed epoch
  RerandTrigger trigger = RerandTrigger::kManual;
  uint64_t functions_moved = 0;
  uint64_t front_gap = 0;            // random int3 gap before the first function
  uint64_t keys_rotated = 0;
  uint64_t stack_words_scanned = 0;
  uint64_t stack_words_rewritten = 0;
  uint64_t ptr_sites_patched = 0;
  uint64_t ptr_sites_skipped = 0;    // guest overwrote the slot; left alone
  uint64_t module_sites_patched = 0;
  double quiesce_wait_ms = 0;        // time draining in-flight runs
  double stw_ms = 0;                 // total stop-the-world time
  bool verified = false;
};

class RerandEngine {
 public:
  // `kernel` must outlive the engine and carry a finalized RerandMap
  // (CompileKernel attaches one to every build).
  RerandEngine(CompiledKernel* kernel, RerandOptions options = RerandOptions());
  ~RerandEngine();

  // The gate Cpus must run under to participate in quiescence. RegisterCpu
  // wires a Cpu to it and records it for post-epoch cache refreshes.
  QuiesceGate& gate() { return gate_; }
  void RegisterCpu(Cpu* cpu);

  // Live stack ranges to walk during kRewriteStacks, each [lo, hi) in bytes.
  // The provider is consulted at epoch time (workloads report their
  // suspended-task stacks, e.g. SchedLiveStackRanges); AddStackRange pins a
  // fixed extra range.
  using StackRangeProvider =
      std::function<Result<std::vector<std::pair<uint64_t, uint64_t>>>(const KernelImage&)>;
  void set_stack_range_provider(StackRangeProvider provider) {
    stack_ranges_provider_ = std::move(provider);
  }
  void AddStackRange(uint64_t lo, uint64_t hi) { extra_stack_ranges_.emplace_back(lo, hi); }

  // Modules whose retained relocations are re-patched each epoch.
  void set_module_loader(ModuleLoader* loader) { module_loader_ = loader; }

  // Fault injection: the next epochs fail just before `step` (sticky).
  void set_failpoint(RerandStep step) { failpoint_ = static_cast<int>(step); }
  void clear_failpoint() { failpoint_ = -1; }

  // Runs one epoch to completion (or full rollback). Thread-safe.
  Result<EpochReport> RunEpoch(RerandTrigger trigger = RerandTrigger::kManual);

  // Retry wrapper around epoch commits: re-attempts per the configured
  // policy (set_retry_policy; without one this is plain RunEpoch). Each
  // failed attempt still rolls back fully and counts in epoch_failures().
  Result<EpochReport> RunEpochWithRetry(RerandTrigger trigger = RerandTrigger::kManual);
  void set_retry_policy(RetryPolicy policy) {
    retry_policy_ = std::move(policy);
    has_retry_policy_ = true;
  }

  // Trigger adapters for the oops path and a disclosure detector.
  Result<EpochReport> NotifyOops() { return RunEpoch(RerandTrigger::kOops); }
  Result<EpochReport> NotifyDisclosure() { return RunEpoch(RerandTrigger::kDisclosure); }

  // Periodic epochs from a background thread. StopTimer (and the
  // destructor) joins the thread; a tick whose epoch fails only counts
  // epoch_failures() — the timer keeps running. Ticks go through the
  // retry policy when one is set. `clock` (null = RealClock()) is the tick
  // time source; tests inject a FakeClock and Advance() it, making
  // timer-trigger tests deterministic instead of sleep-based.
  void StartTimer(std::chrono::milliseconds period, Clock* clock = nullptr);
  void StopTimer();

  uint64_t epochs_completed() const { return epochs_completed_.load(std::memory_order_acquire); }
  uint64_t epoch_failures() const { return epoch_failures_.load(std::memory_order_acquire); }
  // Only stable when no epoch can be in flight (timer stopped / same thread).
  const EpochReport& last_report() const { return last_report_; }
  const RerandMap& map() const { return *map_; }

 private:
  struct Journal;
  struct Layout;

  Status DoEpoch(RerandTrigger trigger, EpochReport* report);
  Status CheckFailpoint(RerandStep step);
  Status DrawLayout(Layout* layout);
  Status PatchText(const Layout& layout, Journal* journal);
  Status RotateKeys(std::vector<uint64_t>* old_keys, std::vector<uint64_t>* new_keys,
                    Journal* journal, EpochReport* report);
  Status RewriteStacks(const std::vector<uint64_t>& old_offsets,
                       const std::vector<uint64_t>& old_keys,
                       const std::vector<uint64_t>& new_keys, Journal* journal,
                       EpochReport* report);
  Status PatchPointers(const std::vector<uint64_t>& old_symbol_addrs, Journal* journal,
                       EpochReport* report);
  Status PatchModules(const std::vector<uint64_t>& old_symbol_addrs, Journal* journal,
                      EpochReport* report);
  void Rollback(const Journal& journal, const std::vector<uint64_t>& old_symbol_addrs,
                const std::vector<uint64_t>& old_offsets);

  CompiledKernel* kernel_;
  RerandMap* map_;
  RerandOptions options_;
  Rng rng_;
  QuiesceGate gate_;
  std::vector<Cpu*> cpus_;
  ModuleLoader* module_loader_ = nullptr;
  StackRangeProvider stack_ranges_provider_;
  std::vector<std::pair<uint64_t, uint64_t>> extra_stack_ranges_;

  std::mutex epoch_mu_;  // serializes epochs (timer tick vs manual call)
  RetryPolicy retry_policy_;
  bool has_retry_policy_ = false;
  LockedRng retry_rng_{0x8E77A11D};  // backoff jitter only
  int failpoint_ = -1;
  std::atomic<uint64_t> epochs_completed_{0};
  std::atomic<uint64_t> epoch_failures_{0};
  EpochReport last_report_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::thread timer_thread_;
  bool timer_stop_ = false;
};

}  // namespace krx

#endif  // KRX_SRC_RERAND_ENGINE_H_
