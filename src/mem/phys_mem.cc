#include "src/mem/phys_mem.h"

namespace krx {

PhysMem::PhysMem(uint64_t size_bytes) {
  KRX_CHECK(size_bytes % kPageSize == 0);
  bytes_.assign(size_bytes, 0);
}

Result<uint64_t> PhysMem::AllocFrames(uint64_t count) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  if (next_free_frame_ + count > num_frames()) {
    return ResourceExhaustedError("out of physical frames");
  }
  uint64_t first = next_free_frame_;
  next_free_frame_ += count;
  return first;
}

}  // namespace krx
