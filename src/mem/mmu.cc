#include "src/mem/mmu.h"

namespace krx {

void PageTable::Map(uint64_t vaddr, uint64_t frame, PteFlags flags) {
  entries_[vaddr >> kPageShift] = Pte{frame, flags};
  BumpGeneration();
}

void PageTable::Unmap(uint64_t vaddr) {
  entries_.erase(vaddr >> kPageShift);
  BumpGeneration();
}

const Pte* PageTable::Lookup(uint64_t vaddr) const {
  auto it = entries_.find(vaddr >> kPageShift);
  if (it == entries_.end()) {
    return nullptr;
  }
  return &it->second;
}

Pte* PageTable::LookupMutable(uint64_t vaddr) {
  auto it = entries_.find(vaddr >> kPageShift);
  if (it == entries_.end()) {
    return nullptr;
  }
  return &it->second;
}

void PageTable::MapRange(uint64_t vaddr, uint64_t first_frame, uint64_t num_pages,
                         PteFlags flags) {
  KRX_CHECK(PageOffset(vaddr) == 0);
  for (uint64_t i = 0; i < num_pages; ++i) {
    Map(vaddr + i * kPageSize, first_frame + i, flags);
  }
}

void PageTable::UnmapRange(uint64_t vaddr, uint64_t num_pages) {
  KRX_CHECK(PageOffset(vaddr) == 0);
  for (uint64_t i = 0; i < num_pages; ++i) {
    Unmap(vaddr + i * kPageSize);
  }
}

std::vector<uint64_t> PageTable::FindWxViolations() const {
  std::vector<uint64_t> out;
  for (const auto& [vpage, pte] : entries_) {
    if (pte.flags.present && pte.flags.writable && !pte.flags.nx) {
      out.push_back(vpage << kPageShift);
    }
  }
  return out;
}

Result<uint64_t> Mmu::Translate(uint64_t vaddr, Access access) {
  if (access == Access::kExec) {
    ++stats_.itlb_lookups;
  } else {
    ++stats_.dtlb_lookups;
  }
  const Pte* pte = pt_->Lookup(vaddr);
  if (pte == nullptr || !pte->flags.present) {
    ++stats_.faults;
    last_fault_ = PageFault{FaultKind::kNotPresent, vaddr, access};
    return PermissionDeniedError("#PF: not present");
  }
  switch (access) {
    case Access::kRead:
      // x86: present implies readable — even for code pages. Execute-only
      // is not expressible here; this is the premise of the paper.
      if (smap_ && pte->flags.user) {
        ++stats_.faults;
        last_fault_ = PageFault{FaultKind::kSmapViolation, vaddr, access};
        return PermissionDeniedError("#PF: SMAP");
      }
      break;
    case Access::kWrite:
      if (!pte->flags.writable) {
        ++stats_.faults;
        last_fault_ = PageFault{FaultKind::kWriteProtect, vaddr, access};
        return PermissionDeniedError("#PF: write-protected");
      }
      if (smap_ && pte->flags.user) {
        ++stats_.faults;
        last_fault_ = PageFault{FaultKind::kSmapViolation, vaddr, access};
        return PermissionDeniedError("#PF: SMAP");
      }
      break;
    case Access::kExec:
      if (pte->flags.nx) {
        ++stats_.faults;
        last_fault_ = PageFault{FaultKind::kNxViolation, vaddr, access};
        return PermissionDeniedError("#PF: NX");
      }
      // SMEP: supervisor-mode fetch from a user page — the ret2usr killer.
      if (smep_ && pte->flags.user) {
        ++stats_.faults;
        last_fault_ = PageFault{FaultKind::kSmepViolation, vaddr, access};
        return PermissionDeniedError("#PF: SMEP");
      }
      break;
  }
  // Split ITLB/DTLB view (HideM baseline): data accesses may be steered to
  // a shadow frame.
  if (pte->has_data_frame && access != Access::kExec) {
    return (pte->data_frame << kPageShift) | PageOffset(vaddr);
  }
  return (pte->frame << kPageShift) | PageOffset(vaddr);
}

Result<uint64_t> Mmu::Read64(uint64_t vaddr) {
  // Handle potential page-boundary crossing bytewise when unaligned.
  if (PageOffset(vaddr) + 8 <= kPageSize) {
    auto pa = Translate(vaddr, Access::kRead);
    if (!pa.ok()) {
      return pa.status();
    }
    return phys_->Read64(*pa);
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    auto b = Read8(vaddr + static_cast<uint64_t>(i));
    if (!b.ok()) {
      return b.status();
    }
    v |= static_cast<uint64_t>(*b) << (8 * i);
  }
  return v;
}

Status Mmu::Write64(uint64_t vaddr, uint64_t value) {
  if (PageOffset(vaddr) + 8 <= kPageSize) {
    auto pa = Translate(vaddr, Access::kWrite);
    if (!pa.ok()) {
      return pa.status();
    }
    phys_->Write64(*pa, value);
    return Status::Ok();
  }
  for (int i = 0; i < 8; ++i) {
    KRX_RETURN_IF_ERROR(Write8(vaddr + static_cast<uint64_t>(i),
                               static_cast<uint8_t>(value >> (8 * i))));
  }
  return Status::Ok();
}

Result<uint8_t> Mmu::Read8(uint64_t vaddr) {
  auto pa = Translate(vaddr, Access::kRead);
  if (!pa.ok()) {
    return pa.status();
  }
  return phys_->Read8(*pa);
}

Status Mmu::Write8(uint64_t vaddr, uint8_t value) {
  auto pa = Translate(vaddr, Access::kWrite);
  if (!pa.ok()) {
    return pa.status();
  }
  phys_->Write8(*pa, value);
  return Status::Ok();
}

Result<uint64_t> Mmu::FetchCode(uint64_t vaddr, uint8_t* buf, uint64_t len) {
  uint64_t copied = 0;
  while (copied < len) {
    auto pa = Translate(vaddr + copied, Access::kExec);
    if (!pa.ok()) {
      if (copied == 0) {
        return pa.status();
      }
      break;  // Partial fetch up to the unmapped boundary.
    }
    uint64_t in_page = kPageSize - PageOffset(vaddr + copied);
    uint64_t n = std::min(in_page, len - copied);
    phys_->ReadBytes(*pa, buf + copied, n);
    copied += n;
  }
  return copied;
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kNotPresent: return "not-present";
    case FaultKind::kWriteProtect: return "write-protect";
    case FaultKind::kNxViolation: return "nx-violation";
    case FaultKind::kSmepViolation: return "smep-violation";
    case FaultKind::kSmapViolation: return "smap-violation";
  }
  return "??";
}

}  // namespace krx
