// Page tables and MMU with x86-64 permission semantics.
//
// The crucial fidelity point for the kR^X reproduction (§2, footnote 1): on
// x86, the execute permission implies read access. A present page is always
// readable; NX only revokes execution. Execute-only memory is therefore not
// expressible in these page tables — which is exactly why kR^X enforces R^X
// with instrumentation instead of paging. The MMU models that rule: a data
// read succeeds on any present page, including code pages.
#ifndef KRX_SRC_MEM_MMU_H_
#define KRX_SRC_MEM_MMU_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/base/status.h"
#include "src/mem/phys_mem.h"

namespace krx {

// Page-table entry flags, modelled after x86-64 PTE bits.
struct PteFlags {
  bool present = true;
  bool writable = false;
  bool nx = false;    // eXecute-Disable
  bool user = false;  // U/S bit: user-accessible page

  bool operator==(const PteFlags&) const = default;
};

struct Pte {
  uint64_t frame = 0;  // physical frame number
  PteFlags flags;
  // HideM-style split view (§2): when set, *data* accesses translate to
  // this frame while instruction fetches use `frame` — the ITLB/DTLB
  // desynchronization trick, expressible because the simulated MMU lets a
  // kernel install per-access-type translations.
  bool has_data_frame = false;
  uint64_t data_frame = 0;
};

enum class Access : uint8_t { kRead, kWrite, kExec };

enum class FaultKind : uint8_t {
  kNone = 0,
  kNotPresent,    // #PF: no translation
  kWriteProtect,  // #PF: write to read-only page
  kNxViolation,   // #PF: instruction fetch from NX page
  kSmepViolation, // #PF: supervisor instruction fetch from a user page (SMEP)
  kSmapViolation, // #PF: supervisor data access to a user page (SMAP)
};

struct PageFault {
  FaultKind kind = FaultKind::kNone;
  uint64_t vaddr = 0;
  Access access = Access::kRead;
};

class PageTable {
 public:
  PageTable() = default;
  // Checkpoint capture copies the table by value; the copy starts with the
  // source's generation (a fresh object has no cached translations yet).
  PageTable(const PageTable& o)
      : entries_(o.entries_),
        generation_(o.generation_.load(std::memory_order_acquire)) {}
  // Checkpoint restore copy-assigns entries back into the live table. The
  // generation stays monotonic and is bumped — never rewound — so any
  // translation cached against this table before the restore is invalid
  // afterwards (a rewound counter could re-validate stale entries).
  PageTable& operator=(const PageTable& o) {
    if (this != &o) {
      entries_ = o.entries_;
      BumpGeneration();
    }
    return *this;
  }

  // Maps the virtual page containing `vaddr` to `frame`. Remapping an
  // existing page replaces the entry.
  void Map(uint64_t vaddr, uint64_t frame, PteFlags flags);
  void Unmap(uint64_t vaddr);

  const Pte* Lookup(uint64_t vaddr) const;
  Pte* LookupMutable(uint64_t vaddr);

  // Maps `num_pages` consecutive virtual pages starting at `vaddr` (page
  // aligned) to consecutive frames starting at `first_frame`.
  void MapRange(uint64_t vaddr, uint64_t first_frame, uint64_t num_pages, PteFlags flags);
  void UnmapRange(uint64_t vaddr, uint64_t num_pages);

  size_t MappedPageCount() const { return entries_.size(); }

  // Scans for W+X mappings (kernel W^X policy audit).
  std::vector<uint64_t> FindWxViolations() const;

  // Page-generation counter: bumped by every Map/Unmap (and by callers that
  // mutate a Pte in place through LookupMutable — XnR present-bit flips, the
  // fault injector's permission corruption). Cached translations (the
  // superblock engine's inline TLB) are tagged with the generation at fill
  // time and revalidate with one acquire load per hit, so rerand epochs,
  // module load/unload and any other remap flush exactly the entries cached
  // against an older table. The counter is shared by every Cpu's Mmu view,
  // like the entries themselves.
  uint64_t generation() const { return generation_.load(std::memory_order_acquire); }
  void BumpGeneration() { generation_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::unordered_map<uint64_t, Pte> entries_;  // key: vaddr >> kPageShift
  std::atomic<uint64_t> generation_{0};
};

// Memory-access statistics, including split ITLB/DTLB lookups (the paper
// discusses HideM's ITLB/DTLB desynchronization; we keep the split counters
// to show that the kR^X design does not rely on TLB tricks).
struct MmuStats {
  uint64_t itlb_lookups = 0;
  uint64_t dtlb_lookups = 0;
  uint64_t faults = 0;
};

class Mmu {
 public:
  Mmu(PhysMem* phys, PageTable* pt) : phys_(phys), pt_(pt) {}

  // Hardening assumptions of the paper's threat model (§3): all simulated
  // execution is supervisor-mode, so SMEP forbids fetching from user pages
  // (kills ret2usr) and SMAP forbids data access to user pages.
  void set_smep(bool on) { smep_ = on; }
  void set_smap(bool on) { smap_ = on; }
  bool smep() const { return smep_; }
  bool smap() const { return smap_; }

  // Translates vaddr for the given access; on success returns the physical
  // address. x86 semantics: kRead succeeds on any present page (X implies R).
  Result<uint64_t> Translate(uint64_t vaddr, Access access);

  // Data accessors (raise faults via Result). Multi-byte accesses may cross
  // page boundaries.
  Result<uint64_t> Read64(uint64_t vaddr);
  Status Write64(uint64_t vaddr, uint64_t value);
  Result<uint8_t> Read8(uint64_t vaddr);
  Status Write8(uint64_t vaddr, uint8_t value);

  // Instruction fetch of up to `len` bytes into `buf`; returns bytes copied
  // (may be < len at unmapped boundary; 0 => fault).
  Result<uint64_t> FetchCode(uint64_t vaddr, uint8_t* buf, uint64_t len);

  const PageFault& last_fault() const { return last_fault_; }
  const MmuStats& stats() const { return stats_; }
  PageTable* page_table() { return pt_; }
  PhysMem* phys() { return phys_; }

 private:
  PhysMem* phys_;
  PageTable* pt_;
  PageFault last_fault_;
  MmuStats stats_;
  bool smep_ = false;
  bool smap_ = false;
};

const char* FaultKindName(FaultKind kind);

}  // namespace krx

#endif  // KRX_SRC_MEM_MMU_H_
