// Simulated physical memory with a bump frame allocator.
#ifndef KRX_SRC_MEM_PHYS_MEM_H_
#define KRX_SRC_MEM_PHYS_MEM_H_

#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/base/status.h"

namespace krx {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;

inline uint64_t PageFloor(uint64_t addr) { return addr & ~(kPageSize - 1); }
inline uint64_t PageOffset(uint64_t addr) { return addr & (kPageSize - 1); }

class PhysMem {
 public:
  explicit PhysMem(uint64_t size_bytes);

  uint64_t size() const { return static_cast<uint64_t>(bytes_.size()); }
  uint64_t num_frames() const { return size() >> kPageShift; }

  // Allocates `count` contiguous frames; returns the first frame number.
  // Thread-safe: the parallel bench driver sets up per-thread CPU stacks and
  // scratch buffers on a shared image concurrently.
  Result<uint64_t> AllocFrames(uint64_t count);

  // Frames handed out so far (bump cursor). The fleet memory accounting
  // reads this as an image's *used* footprint, as opposed to size(), the
  // reserved capacity. Thread-safe.
  uint64_t frames_allocated() const {
    std::lock_guard<std::mutex> lock(alloc_mu_);
    return next_free_frame_;
  }

  uint8_t Read8(uint64_t paddr) const {
    KRX_CHECK(paddr < size());
    return bytes_[paddr];
  }
  void Write8(uint64_t paddr, uint8_t v) {
    KRX_CHECK(paddr < size());
    bytes_[paddr] = v;
  }

  uint64_t Read64(uint64_t paddr) const {
    KRX_CHECK(paddr + 8 <= size());
    uint64_t v;
    std::memcpy(&v, bytes_.data() + paddr, 8);
    return v;
  }
  void Write64(uint64_t paddr, uint64_t v) {
    KRX_CHECK(paddr + 8 <= size());
    std::memcpy(bytes_.data() + paddr, &v, 8);
  }

  void WriteBytes(uint64_t paddr, const uint8_t* src, uint64_t len) {
    KRX_CHECK(paddr + len <= size());
    std::memcpy(bytes_.data() + paddr, src, len);
  }
  void ReadBytes(uint64_t paddr, uint8_t* dst, uint64_t len) const {
    KRX_CHECK(paddr + len <= size());
    std::memcpy(dst, bytes_.data() + paddr, len);
  }
  void Fill(uint64_t paddr, uint8_t value, uint64_t len) {
    KRX_CHECK(paddr + len <= size());
    std::memset(bytes_.data() + paddr, value, len);
  }

  const uint8_t* raw(uint64_t paddr) const { return bytes_.data() + paddr; }

 private:
  std::vector<uint8_t> bytes_;
  mutable std::mutex alloc_mu_;
  uint64_t next_free_frame_ = 0;
};

}  // namespace krx

#endif  // KRX_SRC_MEM_PHYS_MEM_H_
