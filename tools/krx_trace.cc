// krx-trace: the telemetry subsystem's CLI.
//
//   krx_trace trace [--out PATH] [--seed S]
//     Run a small bench matrix plus one live re-randomization epoch under
//     full event tracing and export the rings as a Chrome trace-event JSON
//     (load in chrome://tracing or Perfetto).
//   krx_trace top [--n N] [--seed S] [--ms W] [--threads T]
//     Sample the parallel lmbench bench matrix with the guest profiler and
//     print the top-N functions with their protection-check cost
//     attribution and their superblock engine usage (chains rooted in the
//     function, fastpath retirement share), plus a per-worker busy/idle
//     breakdown.
//   krx_trace metrics [--seed S] [--csv] [config]
//     Compile + run one op under the chosen config — plus a supervised
//     scenario (watchdog-caught wedged run, rerand degradation ladder) so
//     the lockup/retry/degradation counters are populated — and print the
//     metrics registry snapshot (the same JSON the bench artifacts embed),
//     or the flat CSV form with --csv.
//   krx_trace validate FILE
//     Parse FILE and require the Chrome trace shape ({"traceEvents": [...]}).
//     CI smoke for exported traces.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/bench_runner/bench_runner.h"
#include "src/cpu/superblock/sb_report.h"
#include "src/rerand/engine.h"
#include "src/supervise/health.h"
#include "src/supervise/watchdog.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/json.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profiler.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/lmbench.h"

namespace krx {
namespace {

// Flattens the image's symbol table into profiler extents: every defined
// function with a body, bytes peeked for the check census. Returns the
// krx_handler extent separately (zero range when absent).
std::vector<telemetry::FunctionExtent> MakeExtentsFromSymbols(const KernelImage& image,
                                                              uint64_t* handler_lo,
                                                              uint64_t* handler_hi) {
  std::vector<telemetry::FunctionExtent> extents;
  const SymbolTable& symbols = image.symbols();
  *handler_lo = *handler_hi = 0;
  for (size_t i = 0; i < symbols.size(); ++i) {
    const Symbol& sym = symbols.at(static_cast<int32_t>(i));
    if (!sym.defined || sym.kind != SymbolKind::kFunction || sym.size == 0) {
      continue;
    }
    telemetry::FunctionExtent fn;
    fn.name = sym.name;
    fn.addr = sym.address;
    fn.size = sym.size;
    fn.bytes.resize(sym.size);
    if (!image.PeekBytes(sym.address, fn.bytes.data(), fn.bytes.size()).ok()) {
      fn.bytes.clear();  // execute-only the hard way; census skipped
    }
    if (sym.name == "krx_handler") {
      *handler_lo = sym.address;
      *handler_hi = sym.address + sym.size;
    }
    extents.push_back(std::move(fn));
  }
  return extents;
}

int CmdTrace(const std::string& out_path, uint64_t seed) {
  telemetry::SetMode(telemetry::kModeMetrics | telemetry::kModeTrace);
  telemetry::ClearAllRings();
  telemetry::SetThreadName("main");

  // A small matrix: enough to produce nested compile -> task -> cpu.run
  // spans from several worker threads without taking seconds.
  KernelCache cache(MakeBenchSourceFactory(seed));
  BenchRunnerOptions opts;
  opts.threads = 2;
  opts.seed = seed;
  const std::vector<BenchTask> tasks =
      MakeBenchMatrix({"vanilla", "sfi-o3"}, /*lmbench_rows=*/3, /*repeat=*/4,
                      /*with_phoronix=*/false);
  std::vector<TaskResult> results = BenchRunner(opts, &cache).Run(tasks);
  int failures = 0;
  for (const TaskResult& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "task failed: %s: %s\n", r.name.c_str(), r.error.c_str());
      ++failures;
    }
  }

  // One live epoch so the trace shows the rerand step breakdown.
  ProtectionConfig config;
  LayoutKind layout;
  KRX_CHECK(ParseConfigName("sfi+x", seed, &config, &layout));
  auto kernel = CompileKernel(MakeBenchSource(seed), {config, layout});
  if (!kernel.ok()) {
    std::fprintf(stderr, "epoch kernel build failed: %s\n",
                 kernel.status().ToString().c_str());
    return 1;
  }
  RerandEngine engine(&*kernel);
  auto epoch = engine.RunEpoch();
  if (!epoch.ok()) {
    std::fprintf(stderr, "epoch failed: %s\n", epoch.status().ToString().c_str());
    return 1;
  }

  const std::string chrome = telemetry::ExportChromeTrace();
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << chrome;
  size_t records = 0;
  for (const auto& ring : telemetry::AllRings()) {
    records += ring->Snapshot().size();
  }
  std::printf("wrote %s: %zu bytes from %zu ring(s), %zu retained records\n",
              out_path.c_str(), chrome.size(), telemetry::AllRings().size(), records);
  return failures == 0 ? 0 : 1;
}

int CmdTop(int top_n, uint64_t seed, int window_ms, int threads) {
  const std::string config_name = "sfi-o3";
  ProtectionConfig config;
  LayoutKind layout;
  KRX_CHECK(ParseConfigName(config_name, seed, &config, &layout));

  // The profiled matrix runs through the same cache + runner the bench
  // tools use, so every worker samples the one shared image whose symbol
  // table feeds the extent table below.
  KernelCache cache(MakeBenchSourceFactory(seed));
  auto kernel = cache.Acquire({config, layout}, Sharing::kShared);
  if (!kernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", kernel.status().ToString().c_str());
    return 1;
  }
  KernelImage& image = *(*kernel)->image;

  telemetry::GuestProfiler profiler;
  uint64_t handler_lo = 0, handler_hi = 0;
  // Two statements: the out-params must be filled before they are passed.
  std::vector<telemetry::FunctionExtent> extents =
      MakeExtentsFromSymbols(image, &handler_lo, &handler_hi);
  profiler.SetFunctions(std::move(extents), handler_lo, handler_hi);

  BenchRunnerOptions opts;
  opts.threads = threads;
  opts.seed = seed;
  opts.profiler = &profiler;
  BenchRunner runner(opts, &cache);

  // lmbench-only matrix: the stateful vfs/ipc workloads run on private
  // exclusive images whose symbols sit at different addresses than the
  // shared extent table, so sampling them would only inflate
  // "unattributed".
  std::vector<BenchTask> tasks;
  for (const LmbenchRow& row : LmbenchRows()) {
    BenchTask t;
    t.name = "lmbench/" + row.profile.name + "@" + config_name;
    t.spec.workload = WorkloadKind::kLmbench;
    t.spec.config_name = config_name;
    t.spec.op_symbol = "sys_" + row.profile.name;
    t.repeat = 4;
    tasks.push_back(std::move(t));
  }

  profiler.Start(std::chrono::microseconds(50));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(window_ms);
  uint64_t calls = 0, batches = 0;
  bool ok = true;
  do {
    std::vector<TaskResult> results = runner.Run(tasks);
    ++batches;
    for (const TaskResult& r : results) {
      if (!r.ok) {
        std::fprintf(stderr, "task failed: %s: %s\n", r.name.c_str(), r.error.c_str());
        ok = false;
      }
      calls += r.calls;
    }
  } while (ok && std::chrono::steady_clock::now() < deadline);
  profiler.Stop();
  if (!ok) {
    return 1;
  }

  // Superblock usage for the same op set: chains are per-Cpu state, and the
  // pool workers' Cpus are gone by now, so one local superblocked pass over
  // the shared image regenerates them. Entry addresses bucket by the same
  // symbol extents the profiler attributes samples to.
  std::vector<SbFunctionUsage> sb_rows;
  if (auto sb_buf = SetUpOpBuffer(image, seed); sb_buf.ok()) {
    Cpu sb_cpu(&image, CostModel(), CpuOptions{});
    RunOptions sb_run;
    sb_run.engine = ExecEngine::kSuperblock;
    for (const LmbenchRow& row : LmbenchRows()) {
      for (int rep = 0; rep < 4; ++rep) {
        (void)sb_cpu.CallFunction("sys_" + row.profile.name, {*sb_buf}, sb_run);
      }
    }
    sb_rows = AggregateSuperblocksBySymbol(sb_cpu.superblock_cache(), image.symbols());
  }

  const telemetry::ProfileReport report = profiler.MakeReport(CostModel());
  const uint64_t busy = report.total_samples - report.idle_samples;
  std::printf("guest profile: %llu samples (%llu idle, %llu unattributed), %llu calls in "
              "%llu batch(es), config=%s, %d worker(s)\n\n",
              (unsigned long long)report.total_samples,
              (unsigned long long)report.idle_samples,
              (unsigned long long)report.unattributed, (unsigned long long)calls,
              (unsigned long long)batches, config_name.c_str(), threads);
  std::printf("%-28s %8s %7s %6s %6s %9s %9s %7s %6s\n", "function", "samples", "pct", "sfi",
              "mpx", "check%", "est.share", "chains", "fast%");
  int shown = 0;
  for (const telemetry::FunctionProfile& fn : report.functions) {
    if (fn.samples == 0 || shown >= top_n) {
      break;
    }
    std::printf("%-28s %8llu %6.1f%% %6llu %6llu %8.1f%% %8.2f%%", fn.name.c_str(),
                (unsigned long long)fn.samples, fn.sample_pct,
                (unsigned long long)fn.census.sfi_checks,
                (unsigned long long)fn.census.mpx_checks, fn.check_cost_pct,
                fn.est_check_share);
    const SbFunctionUsage* usage = nullptr;
    for (const SbFunctionUsage& row : sb_rows) {
      if (row.name == fn.name) {
        usage = &row;
        break;
      }
    }
    if (usage != nullptr && usage->insts > 0) {
      std::printf(" %7llu %5.1f%%\n", (unsigned long long)usage->chains,
                  100.0 * usage->fast_share());
    } else {
      // The function never rooted a chain (cold, or only ever reached as a
      // chained callee of another entry point).
      std::printf(" %7s %6s\n", "-", "-");
    }
    ++shown;
  }
  std::printf("\n%-12s %10s %10s %8s\n", "worker", "samples", "busy", "busy%");
  for (const telemetry::TargetProfile& t : report.targets) {
    const uint64_t worker_busy = t.samples - t.idle;
    std::printf("%-12s %10llu %10llu %7.1f%%\n", t.label.c_str(),
                (unsigned long long)t.samples, (unsigned long long)worker_busy,
                t.samples == 0 ? 0.0
                               : 100.0 * static_cast<double>(worker_busy) /
                                     static_cast<double>(t.samples));
  }
  if (busy == 0) {
    std::printf("(no busy samples — window too short for this machine?)\n");
  }
  return 0;
}

int CmdMetrics(const std::string& config_name, uint64_t seed, bool csv) {
  telemetry::MetricsRegistry::Global().Reset();
  telemetry::SetMode(telemetry::kModeMetrics);
  ProtectionConfig config;
  LayoutKind layout;
  if (!ParseConfigName(config_name, seed, &config, &layout)) {
    std::fprintf(stderr, "unknown config '%s'\n", config_name.c_str());
    return 2;
  }
  auto kernel = CompileKernel(MakeBenchSource(seed), {config, layout});
  if (!kernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", kernel.status().ToString().c_str());
    return 1;
  }
  KernelImage& image = *kernel->image;
  auto buf = SetUpOpBuffer(image, seed);
  if (buf.ok()) {
    Cpu cpu(&image, CostModel(), CpuOptions{});
    (void)cpu.CallFunction("sys_null_syscall", {*buf});
  }

  // Supervised scenario, part 1: a genuinely wedged run. The step observer
  // freezes mid-run with the heartbeat slot nonzero; the watchdog escalates
  // soft -> hard lockup and its hard callback preempts the run
  // (kDeadlineExceeded), populating the watchdog.* and cpu.deadline_exceeded
  // counters with a real detection, not a synthetic bump.
  if (buf.ok()) {
    Watchdog::Options wopts;
    wopts.tick = std::chrono::milliseconds(5);
    wopts.soft_ticks = 2;
    wopts.hard_ticks = 4;
    Watchdog watchdog(wopts);
    Cpu cpu(&image, CostModel(), CpuOptions{});
    std::atomic<uint64_t>* hb = watchdog.Watch("cpu0", [&] { cpu.RequestPreempt(); });
    cpu.set_heartbeat_slot(hb);
    uint64_t steps = 0;
    cpu.set_step_observer([&](const Cpu&) {
      if (++steps != 8) {  // wedge once, with the heartbeat already nonzero
        return;
      }
      const auto bound = std::chrono::steady_clock::now() + std::chrono::seconds(2);
      while (watchdog.hard_lockups() == 0 && std::chrono::steady_clock::now() < bound) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    watchdog.Start();
    (void)cpu.CallFunction("sys_null_syscall", {*buf});
    watchdog.Stop();
    cpu.set_heartbeat_slot(nullptr);
    cpu.set_step_observer(nullptr);
  }

  // Part 2: the rerand degradation ladder. Two consecutive failpoint-failed
  // epochs cross the default rollback threshold, stepping the timer aspect
  // down to manual-only (health.degradations, health.degrade.rerand_timer).
  {
    HealthState health;
    RerandEngine engine(&*kernel);
    engine.set_failpoint(RerandStep::kRelayout);
    for (int i = 0; i < 2; ++i) {
      auto epoch = engine.RunEpoch();
      if (!epoch.ok()) {
        health.RecordEpochRollback(epoch.status().message());
      }
    }
    engine.clear_failpoint();
  }

  // Part 3: speculation telemetry. Train the Spectre victim's bounds
  // branch in-bounds, then call once out-of-bounds on a spec-enabled Cpu:
  // the mispredicted window runs the guarded load transiently, so the
  // spec.* counters (windows, predictions, wrong-path instructions, lines
  // touched) land in the snapshot exactly as a hardened deployment's
  // monitoring would see them.
  if (buf.ok()) {
    CpuOptions sopts;
    sopts.spec.enabled = true;
    Cpu cpu(&image, CostModel(), sopts);
    for (int i = 0; i < 4; ++i) {
      (void)cpu.CallFunction("spec_victim", {0, *buf});
    }
    (void)cpu.CallFunction("spec_victim", {1ull << 20, *buf});
  }

  if (csv) {
    std::printf("%s", telemetry::MetricsRegistry::Global().SnapshotCsv().c_str());
  } else {
    std::printf("%s\n", telemetry::MetricsRegistry::Global().SnapshotJson().c_str());
  }
  return 0;
}

int CmdValidate(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  auto doc = telemetry::ParseJson(ss.str());
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return 1;
  }
  const telemetry::JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    std::fprintf(stderr, "%s: not a Chrome trace (no traceEvents array)\n", path.c_str());
    return 1;
  }
  size_t begins = 0, ends = 0, instants = 0;
  for (const telemetry::JsonValue& ev : events->array) {
    const std::string ph = ev.Find("ph") ? ev.Find("ph")->StringOr("") : "";
    if (ph == "B") ++begins;
    if (ph == "E") ++ends;
    if (ph == "i") ++instants;
  }
  if (begins != ends) {
    std::fprintf(stderr, "%s: unbalanced spans (%zu B vs %zu E)\n", path.c_str(), begins,
                 ends);
    return 1;
  }
  std::printf("%s: OK — %zu events (%zu spans, %zu instants)\n", path.c_str(),
              events->array.size(), begins, instants);
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: krx_trace trace [--out PATH] [--seed S]\n"
               "       krx_trace top [--n N] [--seed S] [--ms W] [--threads T]\n"
               "       krx_trace metrics [--seed S] [--csv] [config]\n"
               "       krx_trace validate FILE\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    return Usage();
  }
  const std::string cmd = argv[1];
  uint64_t seed = 0x72ACE;
  if (cmd == "trace") {
    std::string out = "krx_trace.json";
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
        out = argv[++i];
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        seed = std::strtoull(argv[++i], nullptr, 0);
      } else {
        return Usage();
      }
    }
    return CmdTrace(out, seed);
  }
  if (cmd == "top") {
    int top_n = 10, window_ms = 400, threads = 2;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
        top_n = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        seed = std::strtoull(argv[++i], nullptr, 0);
      } else if (std::strcmp(argv[i], "--ms") == 0 && i + 1 < argc) {
        window_ms = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
        threads = std::atoi(argv[++i]);
      } else {
        return Usage();
      }
    }
    return CmdTop(top_n, seed, window_ms, threads);
  }
  if (cmd == "metrics") {
    std::string config = "sfi+x";
    bool csv = false;
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        seed = std::strtoull(argv[++i], nullptr, 0);
      } else if (std::strcmp(argv[i], "--csv") == 0) {
        csv = true;
      } else {
        config = argv[i];
      }
    }
    return CmdMetrics(config, seed, csv);
  }
  if (cmd == "validate") {
    if (argc != 3) {
      return Usage();
    }
    return CmdValidate(argv[2]);
  }
  return Usage();
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Main(argc, argv); }
