// krx-objdump: build the bench corpus kernel under a chosen protection
// config and inspect it — sections, symbols, per-function disassembly and a
// gadget census. The reproduction's answer to `objdump -d vmlinux`.
//
// Usage:
//   krx_objdump [config] [function ...]
//     config: vanilla | sfi-o0..sfi-o3 | mpx | d | x | sfi+d | sfi+x |
//             mpx+d | mpx+x          (default: sfi+x)
//     function: names to disassemble (default: a small showcase set)
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/attack/gadget_scanner.h"
#include "src/isa/encoding.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

bool ParseConfig(const std::string& name, ProtectionConfig* config, LayoutKind* layout) {
  const uint64_t seed = 0xD15A;
  *layout = LayoutKind::kKrx;
  if (name == "vanilla") {
    *config = ProtectionConfig::Vanilla();
    *layout = LayoutKind::kVanilla;
  } else if (name == "sfi-o0") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO0);
  } else if (name == "sfi-o1") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO1);
  } else if (name == "sfi-o2") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO2);
  } else if (name == "sfi-o3" || name == "sfi") {
    *config = ProtectionConfig::SfiOnly(SfiLevel::kO3);
  } else if (name == "mpx") {
    *config = ProtectionConfig::MpxOnly();
  } else if (name == "d") {
    *config = ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, seed);
  } else if (name == "x") {
    *config = ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, seed);
  } else if (name == "sfi+d") {
    *config = ProtectionConfig::Full(false, RaScheme::kDecoy, seed);
  } else if (name == "sfi+x") {
    *config = ProtectionConfig::Full(false, RaScheme::kEncrypt, seed);
  } else if (name == "mpx+d") {
    *config = ProtectionConfig::Full(true, RaScheme::kDecoy, seed);
  } else if (name == "mpx+x") {
    *config = ProtectionConfig::Full(true, RaScheme::kEncrypt, seed);
  } else {
    return false;
  }
  return true;
}

void Disassemble(const KernelImage& image, const Symbol& sym) {
  std::printf("\n%016" PRIx64 " <%s>:  (%" PRIu64 " bytes)\n", sym.address, sym.name.c_str(),
              sym.size);
  std::vector<uint8_t> bytes(sym.size);
  if (!image.PeekBytes(sym.address, bytes.data(), bytes.size()).ok()) {
    std::printf("  <unreadable>\n");
    return;
  }
  size_t pos = 0;
  while (pos < bytes.size()) {
    auto dec = DecodeInstruction(bytes.data(), bytes.size(), pos);
    if (!dec.ok()) {
      std::printf("  %016" PRIx64 ":  <undecodable>\n", sym.address + pos);
      break;
    }
    std::printf("  %016" PRIx64 ":  ", sym.address + pos);
    for (int i = 0; i < dec->size; ++i) {
      std::printf("%02x", bytes[pos + static_cast<size_t>(i)]);
    }
    for (int i = dec->size; i < 12; ++i) {
      std::printf("  ");
    }
    // Resolve branch targets into absolute addresses for readability.
    Instruction inst = dec->inst;
    std::string text = FormatInstruction(inst);
    if ((inst.op == Opcode::kJmpRel || inst.op == Opcode::kJcc ||
         inst.op == Opcode::kCallRel)) {
      char resolved[64];
      std::snprintf(resolved, sizeof(resolved), "  # -> 0x%" PRIx64,
                    sym.address + pos + dec->size + static_cast<uint64_t>(inst.imm));
      text += resolved;
    }
    std::printf("  %s\n", text.c_str());
    pos += dec->size;
  }
}

int Main(int argc, char** argv) {
  std::string config_name = argc > 1 ? argv[1] : "sfi+x";
  ProtectionConfig config;
  LayoutKind layout;
  if (!ParseConfig(config_name, &config, &layout)) {
    std::fprintf(stderr,
                 "unknown config '%s'\nusage: krx_objdump "
                 "[vanilla|sfi-o0..o3|mpx|d|x|sfi+d|sfi+x|mpx+d|mpx+x] [function...]\n",
                 config_name.c_str());
    return 2;
  }

  auto kernel = CompileKernel(MakeBenchSource(0xD15A), config, layout);
  if (!kernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", kernel.status().ToString().c_str());
    return 1;
  }
  const KernelImage& image = *kernel->image;

  std::printf("kR^X kernel image, config=%s, layout=%s\n\n", config_name.c_str(),
              layout == LayoutKind::kKrx ? "kR^X-KAS" : "vanilla");
  std::printf("Sections:\n%-16s %-18s %10s  %s\n", "name", "vaddr", "size", "region");
  for (const PlacedSection& s : image.sections()) {
    std::printf("%-16s 0x%016" PRIx64 " %10" PRIu64 "  %s\n", s.name.c_str(), s.vaddr, s.size,
                layout == LayoutKind::kKrx
                    ? (s.vaddr >= image.krx_edata() ? "code (execute-only)" : "data")
                    : "-");
  }
  if (layout == LayoutKind::kKrx) {
    std::printf("_krx_edata = 0x%016" PRIx64 "\n", image.krx_edata());
  }

  // Gadget census over .text.
  {
    const PlacedSection* text = image.FindSection(".text");
    std::vector<uint8_t> bytes(text->size);
    KRX_CHECK(image.PeekBytes(text->vaddr, bytes.data(), bytes.size()).ok());
    GadgetScanner scanner;
    auto rop = scanner.Scan(bytes.data(), bytes.size(), text->vaddr);
    auto jop = scanner.ScanJop(bytes.data(), bytes.size(), text->vaddr);
    std::printf("\nGadget census: %zu ROP, %zu JOP (discoverable only if code is readable)\n",
                rop.size(), jop.size());
  }

  // Disassembly.
  std::vector<std::string> wanted;
  for (int i = 2; i < argc; ++i) {
    wanted.push_back(argv[i]);
  }
  if (wanted.empty()) {
    wanted = {"commit_creds", "debugfs_leak_read", "sys_null_syscall"};
  }
  for (const std::string& name : wanted) {
    int32_t idx = image.symbols().Find(name);
    if (idx < 0 || !image.symbols().at(idx).defined) {
      std::printf("\n<%s>: not found\n", name.c_str());
      continue;
    }
    Disassemble(image, image.symbols().at(idx));
  }
  return 0;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Main(argc, argv); }
