// krx-objdump: build the bench corpus kernel under a chosen protection
// config and inspect it — sections, symbols, per-function disassembly and a
// gadget census. The reproduction's answer to `objdump -d vmlinux`.
//
// Usage:
//   krx_objdump [--per-function] [config] [function ...]
//     config: vanilla | sfi-o0..sfi-o4 | mpx | mpx-o4 | d | x | sfi+d |
//             sfi+x | mpx+d | mpx+x  (default: sfi+x)
//     function: names to disassemble (default: a small showcase set)
//     --per-function: print the per-function check census — pass side
//     (emitted/elided/hoisted) next to the verifier's independent count of
//     reads it proved justified there
//   krx_objdump --rerand [config]
//     dump the retained re-randomization metadata (RerandMap) instead:
//     function extents and return sites, xkey slots, pointer sites — then
//     run one live epoch and show the before/after layout.
//   krx_objdump --stats [config]
//     compile under the config and print the metrics-registry snapshot of
//     the build (compile.* counters and per-phase timings) as JSON, then
//     run the lmbench op set through the superblock engine and print the
//     per-function chain/fastpath table (which functions root chains, how
//     much of their retirement takes the specialized handlers).
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/attack/gadget_scanner.h"
#include "src/cpu/cpu.h"
#include "src/cpu/superblock/sb_report.h"
#include "src/fleet/image_key.h"
#include "src/isa/encoding.h"
#include "src/rerand/engine.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/verify/verifier.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"
#include "src/workload/lmbench.h"

namespace krx {
namespace {

void Disassemble(const KernelImage& image, const Symbol& sym) {
  std::printf("\n%016" PRIx64 " <%s>:  (%" PRIu64 " bytes)\n", sym.address, sym.name.c_str(),
              sym.size);
  std::vector<uint8_t> bytes(sym.size);
  if (!image.PeekBytes(sym.address, bytes.data(), bytes.size()).ok()) {
    std::printf("  <unreadable>\n");
    return;
  }
  size_t pos = 0;
  while (pos < bytes.size()) {
    auto dec = DecodeInstruction(bytes.data(), bytes.size(), pos);
    if (!dec.ok()) {
      std::printf("  %016" PRIx64 ":  <undecodable>\n", sym.address + pos);
      break;
    }
    std::printf("  %016" PRIx64 ":  ", sym.address + pos);
    for (int i = 0; i < dec->size; ++i) {
      std::printf("%02x", bytes[pos + static_cast<size_t>(i)]);
    }
    for (int i = dec->size; i < 12; ++i) {
      std::printf("  ");
    }
    // Resolve branch targets into absolute addresses for readability.
    Instruction inst = dec->inst;
    std::string text = FormatInstruction(inst);
    if ((inst.op == Opcode::kJmpRel || inst.op == Opcode::kJcc ||
         inst.op == Opcode::kCallRel)) {
      char resolved[64];
      std::snprintf(resolved, sizeof(resolved), "  # -> 0x%" PRIx64,
                    sym.address + pos + dec->size + static_cast<uint64_t>(inst.imm));
      text += resolved;
    }
    std::printf("  %s\n", text.c_str());
    pos += dec->size;
  }
}

// --rerand: dump the RerandMap the pipeline retains for live epochs, then
// run one epoch and show the relocated layout.
int DumpRerand(const std::string& config_name) {
  ProtectionConfig config;
  LayoutKind layout;
  if (!ParseConfigName(config_name, 0xD15A, &config, &layout)) {
    std::fprintf(stderr, "unknown config '%s'\n", config_name.c_str());
    return 2;
  }
  auto kernel = CompileKernel(MakeBenchSource(0xD15A), {config, layout});
  if (!kernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", kernel.status().ToString().c_str());
    return 1;
  }
  RerandEngine engine(&*kernel);
  const RerandMap& map = engine.map();
  std::printf("RerandMap, config=%s\n", config_name.c_str());
  std::printf(".text base 0x%016" PRIx64 ", content %" PRIu64 " bytes, mapped %" PRIu64
              " bytes (%.1f%% slack)\n\n",
              map.text_base, map.text_content_size, map.text_mapped_size,
              100.0 * static_cast<double>(map.text_mapped_size - map.text_content_size) /
                  static_cast<double>(map.text_mapped_size));

  std::vector<uint64_t> boot_offsets;
  for (const RerandFunction& fn : map.functions) {
    boot_offsets.push_back(fn.current_offset);
  }
  auto epoch = engine.RunEpoch();
  if (!epoch.ok()) {
    std::fprintf(stderr, "epoch failed: %s\n", epoch.status().ToString().c_str());
    return 1;
  }

  std::printf("%-28s %10s %10s %10s %6s %8s\n", "function", "pristine", "boot", "epoch1",
              "size", "retsites");
  for (size_t i = 0; i < map.functions.size(); ++i) {
    const RerandFunction& fn = map.functions[i];
    std::printf("%-28s 0x%08" PRIx64 " 0x%08" PRIx64 " 0x%08" PRIx64 " %6" PRIu64 " %8zu\n",
                fn.name.c_str(), fn.pristine_offset, boot_offsets[i], fn.current_offset,
                fn.size, fn.return_sites.size());
  }
  std::printf("\nxkey slots: %zu\n", map.xkey_slots.size());
  for (const RerandXkeySlot& slot : map.xkey_slots) {
    std::printf("  0x%016" PRIx64 "  xkey$%s\n", slot.vaddr, slot.fn_name.c_str());
  }
  std::printf("\npointer sites (retained PtrInit relocations in data objects): %zu\n",
              map.ptr_sites.size());
  for (const RerandPtrSite& site : map.ptr_sites) {
    std::printf("  0x%016" PRIx64 "  %s+%" PRIu64 " -> sym#%d+%" PRId64 "\n", site.vaddr,
                site.object.c_str(), site.offset, site.symbol, site.addend);
  }
  std::printf("\nepoch 1: %" PRIu64 " functions moved, front gap %" PRIu64 " bytes, %" PRIu64
              " keys rotated, %" PRIu64 " ptr sites patched, stw %.2f ms, verified=%s\n",
              epoch->functions_moved, epoch->front_gap, epoch->keys_rotated,
              epoch->ptr_sites_patched, epoch->stw_ms, epoch->verified ? "yes" : "no");
  return 0;
}

// --stats: one compile under the config, observed through the metrics
// registry — the pipeline's own counters and phase timings, as JSON.
int DumpStats(const std::string& config_name) {
  ProtectionConfig config;
  LayoutKind layout;
  if (!ParseConfigName(config_name, 0xD15A, &config, &layout)) {
    std::fprintf(stderr, "unknown config '%s'\n", config_name.c_str());
    return 2;
  }
  telemetry::MetricsRegistry::Global().Reset();
  telemetry::SetMode(telemetry::Mode() | telemetry::kModeMetrics);
  const BuildOptions options{config, layout};
  auto kernel = CompileKernel(MakeBenchSource(0xD15A), options);
  if (!kernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", kernel.status().ToString().c_str());
    return 1;
  }
  // The image's typed identity, in the legacy serialized form (kept only as
  // this debug formatter — nothing keys on the string anymore).
  std::printf("image_key: %s\n", ImageKey::FromOptions(options).DebugString().c_str());
  std::printf("%s\n", telemetry::MetricsRegistry::Global().SnapshotJson().c_str());

  // Runtime view: the lmbench op set through the translate-and-chain
  // engine, attributed by symbol extent — the build stats above say what
  // was instrumented, this table says what actually chains when it runs.
  KernelImage& image = *kernel->image;
  auto buf = SetUpOpBuffer(image, 0xD15A);
  if (!buf.ok()) {
    std::fprintf(stderr, "op buffer setup failed: %s\n", buf.status().ToString().c_str());
    return 1;
  }
  Cpu cpu(&image, CostModel(), CpuOptions{});
  RunOptions run;
  run.engine = ExecEngine::kSuperblock;
  for (const LmbenchRow& row : LmbenchRows()) {
    for (int rep = 0; rep < 4; ++rep) {
      (void)cpu.CallFunction("sys_" + row.profile.name, {*buf}, run);
    }
  }
  const SuperblockStats& ss = cpu.superblock_cache().stats();
  std::printf("\nSuperblock engine (lmbench op set): %" PRIu64 " chains (%" PRIu64
              " blocks), %" PRIu64 " dispatches, %" PRIu64
              " chain breaks, fastpath %.1f%%, inline-TLB hit %.1f%%\n",
              ss.chains_built, ss.blocks_chained, ss.entries, ss.chain_breaks,
              100.0 * ss.fastpath_share(), 100.0 * ss.tlb_hit_rate());
  std::printf("\n%-28s %7s %9s %10s %10s %6s\n", "function", "chains", "entered", "insts",
              "fastpath", "fast%");
  for (const SbFunctionUsage& fn :
       AggregateSuperblocksBySymbol(cpu.superblock_cache(), image.symbols())) {
    std::printf("%-28s %7" PRIu64 " %9" PRIu64 " %10" PRIu64 " %10" PRIu64 " %5.1f%%\n",
                fn.name.c_str(), fn.chains, fn.entered, fn.insts, fn.fast,
                100.0 * fn.fast_share());
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--rerand") == 0) {
    return DumpRerand(argc > 2 ? argv[2] : "sfi+x");
  }
  if (argc > 1 && std::strcmp(argv[1], "--stats") == 0) {
    return DumpStats(argc > 2 ? argv[2] : "sfi+x");
  }
  int argi = 1;
  bool per_function = false;
  if (argi < argc && std::strcmp(argv[argi], "--per-function") == 0) {
    per_function = true;
    ++argi;
  }
  std::string config_name = argi < argc ? argv[argi++] : "sfi+x";
  ProtectionConfig config;
  LayoutKind layout;
  if (!ParseConfigName(config_name, 0xD15A, &config, &layout)) {
    std::fprintf(stderr,
                 "unknown config '%s'\nusage: krx_objdump [--per-function] [%s] [function...]\n",
                 config_name.c_str(), kConfigNamesUsage);
    return 2;
  }

  auto kernel = CompileKernel(MakeBenchSource(0xD15A), {config, layout});
  if (!kernel.ok()) {
    std::fprintf(stderr, "build failed: %s\n", kernel.status().ToString().c_str());
    return 1;
  }
  const KernelImage& image = *kernel->image;

  std::printf("kR^X kernel image, config=%s, layout=%s\n\n", config_name.c_str(),
              layout == LayoutKind::kKrx ? "kR^X-KAS" : "vanilla");
  std::printf("Sections:\n%-16s %-18s %10s  %s\n", "name", "vaddr", "size", "region");
  for (const PlacedSection& s : image.sections()) {
    std::printf("%-16s 0x%016" PRIx64 " %10" PRIu64 "  %s\n", s.name.c_str(), s.vaddr, s.size,
                layout == LayoutKind::kKrx
                    ? (s.vaddr >= image.krx_edata() ? "code (execute-only)" : "data")
                    : "-");
  }
  if (layout == LayoutKind::kKrx) {
    std::printf("_krx_edata = 0x%016" PRIx64 "\n", image.krx_edata());
  }

  // Gadget census over .text.
  const PlacedSection* text = image.FindSection(".text");
  if (text == nullptr) {
    std::fprintf(stderr, "no .text section in this image; skipping gadget census\n");
  } else {
    std::vector<uint8_t> bytes(text->size);
    KRX_CHECK(image.PeekBytes(text->vaddr, bytes.data(), bytes.size()).ok());
    GadgetScanner scanner;
    auto rop = scanner.Scan(bytes.data(), bytes.size(), text->vaddr);
    auto jop = scanner.ScanJop(bytes.data(), bytes.size(), text->vaddr);
    std::printf("\nGadget census: %zu ROP, %zu JOP (discoverable only if code is readable)\n",
                rop.size(), jop.size());
  }

  // Instrumentation statistics (pass-side view).
  {
    const SfiStats& s = kernel->stats.sfi;
    std::printf("\nSFI stats: %" PRIu64 " read sites (%" PRIu64 " safe, %" PRIu64
                " rsp-guarded, %" PRIu64 " string), %" PRIu64 " checks emitted, %" PRIu64
                " coalesced (%.1f%%), %" PRIu64 " hoisted, wrappers %" PRIu64 " kept / %" PRIu64
                " elided, lea %" PRIu64 " kept / %" PRIu64 " elided, spec %" PRIu64
                " barriers / %" PRIu64 " masks\n",
                s.read_sites, s.safe_reads, s.rsp_reads, s.string_checks, s.checks_emitted,
                s.checks_coalesced, s.CoalescingRate(), s.checks_hoisted, s.wrappers_kept,
                s.wrappers_eliminated, s.lea_kept, s.lea_eliminated, s.spec_barriers,
                s.spec_masks);
  }

  // Verifier view of the same image (binary-level, pass-independent). On a
  // vanilla build the R^X checks are forced on to show what it fails.
  VerifyReport report;
  {
    VerifyOptions vopts = VerifyOptions::ForConfig(config);
    if (layout == LayoutKind::kVanilla) {
      vopts.check_rx = true;
    }
    report = VerifyImage(image, vopts);
    const VerifyCounters& c = report.counters;
    std::printf("\nVerifier: %" PRIu64 " functions checked (%" PRIu64 " exempt), %" PRIu64
                " reads seen (%" PRIu64 " safe, %" PRIu64 " rsp, %" PRIu64
                " check-justified), %" PRIu64 " range checks, %" PRIu64 " RA sites, %" PRIu64
                " tripwires\n",
                c.functions_checked, c.functions_exempt, c.reads_seen, c.safe_reads, c.rsp_reads,
                c.justified_reads, c.range_checks_seen, c.ra_sites_checked,
                c.tripwires_verified);
    if (report.ok()) {
      std::printf("Verifier verdict: PASS (no rule violations)\n");
    } else {
      std::printf("Verifier verdict: FAIL —");
      for (const auto& [rule, count] : report.RuleCounts()) {
        std::printf(" %s:%" PRIu64, RuleName(rule), count);
      }
      std::printf("\n");
    }
  }

  // Per-function census: the pass's emitted/elided/hoisted counts next to
  // what the verifier independently proved in the same function.
  if (per_function) {
    std::printf("\n%-28s %8s %8s %8s %8s %8s | %8s %10s %8s\n", "function", "emitted", "elided",
                "hoisted", "barrier", "mask", "reads", "justified", "checks");
    for (const auto& [fn, s] : kernel->stats.per_function) {
      std::printf("%-28s %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64 " %8" PRIu64,
                  fn.c_str(), s.checks_emitted, s.checks_coalesced, s.checks_hoisted,
                  s.spec_barriers, s.spec_masks);
      const FunctionReadCensus* census = nullptr;
      for (const auto& [vfn, vc] : report.per_function) {
        if (vfn == fn) {
          census = &vc;
          break;
        }
      }
      if (census != nullptr) {
        std::printf(" | %8" PRIu64 " %10" PRIu64 " %8" PRIu64 "\n", census->reads_seen,
                    census->justified_reads, census->range_checks_seen);
      } else {
        std::printf(" | %8s %10s %8s\n", "-", "-", "-");
      }
    }
  }

  // Disassembly.
  std::vector<std::string> wanted;
  for (int i = argi; i < argc; ++i) {
    wanted.push_back(argv[i]);
  }
  if (wanted.empty()) {
    wanted = {"commit_creds", "debugfs_leak_read", "sys_null_syscall"};
  }
  for (const std::string& name : wanted) {
    int32_t idx = image.symbols().Find(name);
    if (idx < 0 || !image.symbols().at(idx).defined) {
      std::printf("\n<%s>: not found\n", name.c_str());
      continue;
    }
    Disassemble(image, image.symbols().at(idx));
  }
  return 0;
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Main(argc, argv); }
