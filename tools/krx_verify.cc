// krx-verify: build the bench corpus kernel under a protection config and
// statically prove the kR^X contract on the linked bytes (src/verify/).
//
// Usage:
//   krx_verify [--expect-fail] [--per-function] <config>
//   krx_verify all                        verify the whole config matrix
//     config: vanilla | sfi-o0..sfi-o4 | mpx | mpx-o4 | spec-barrier |
//             spec-mask | d | x | sfi+d | sfi+x | mpx+d | mpx+x
//
// --per-function additionally prints, for every verified function, how many
// reads the read-confinement abstract interpreter saw, how many it proved
// justified, and how many materialized range checks it recognized — the
// checker-side census that krx_objdump --stats shows from the pass side.
//
// Checks are derived from the config (confinement for SFI/MPX builds, RA
// rules for X/D, entropy for diversified builds). On a vanilla build the
// R^X group is forced on — it is *supposed* to fail (code and data share
// readable regions), which `all` asserts.
//
// Exit codes: 0 = expectations met (verified, or failed as expected),
//             1 = rule violations (or an expected failure did not occur),
//             2 = usage or build error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/verify/verifier.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

constexpr uint64_t kSeed = 0xD15A;

// Returns 0/1/2 like main; prints the report summary.
int VerifyOneConfig(const std::string& name, bool expect_fail, bool per_function = false) {
  ProtectionConfig config;
  LayoutKind layout;
  if (!ParseConfigName(name, kSeed, &config, &layout)) {
    std::fprintf(stderr, "unknown config '%s'\n", name.c_str());
    return 2;
  }
  // The hook would reject unverifiable builds before we get to report them.
  SetPostLinkVerify(false);
  auto kernel = CompileKernel(MakeBenchSource(kSeed), {config, layout});
  if (!kernel.ok()) {
    std::fprintf(stderr, "%s: build failed: %s\n", name.c_str(),
                 kernel.status().ToString().c_str());
    return 2;
  }
  VerifyOptions opts = VerifyOptions::ForConfig(config);
  if (layout == LayoutKind::kVanilla) {
    // A vanilla build enables no checks on its own; force the R^X group so
    // the tool demonstrates exactly which invariants the baseline violates.
    opts.check_rx = true;
  }
  VerifyReport report = VerifyImage(*kernel->image, opts);

  std::printf("== %s ==\n%s", name.c_str(), report.Summary(8).c_str());
  if (per_function && !report.per_function.empty()) {
    std::printf("%-28s %8s %10s %8s\n", "function", "reads", "justified", "checks");
    for (const auto& [fn, census] : report.per_function) {
      std::printf("%-28s %8llu %10llu %8llu\n", fn.c_str(),
                  static_cast<unsigned long long>(census.reads_seen),
                  static_cast<unsigned long long>(census.justified_reads),
                  static_cast<unsigned long long>(census.range_checks_seen));
    }
  }
  if (expect_fail) {
    if (report.ok()) {
      std::printf("result: UNEXPECTED PASS (violations were expected)\n\n");
      return 1;
    }
    std::printf("result: FAIL (as expected)\n\n");
    return 0;
  }
  std::printf("result: %s\n\n", report.ok() ? "PASS" : "FAIL");
  return report.ok() ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool expect_fail = false;
  bool per_function = false;
  std::string config_name;
  for (const std::string& a : args) {
    if (a == "--expect-fail") {
      expect_fail = true;
    } else if (a == "--per-function") {
      per_function = true;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", a.c_str());
      return 2;
    } else if (config_name.empty()) {
      config_name = a;
    } else {
      std::fprintf(stderr, "extra argument '%s'\n", a.c_str());
      return 2;
    }
  }
  if (config_name.empty()) {
    std::fprintf(stderr, "usage: krx_verify [--expect-fail] [--per-function] <%s> | all\n",
                 kConfigNamesUsage);
    return 2;
  }

  if (config_name == "all") {
    // Vanilla must fail R^X; every kR^X config must verify clean.
    int worst = VerifyOneConfig("vanilla", /*expect_fail=*/true);
    for (const char* name : {"sfi-o0", "sfi-o1", "sfi-o2", "sfi-o3", "sfi-o4", "mpx", "mpx-o4",
                             "spec-barrier", "spec-mask", "d", "x", "sfi+d", "sfi+x", "mpx+d",
                             "mpx+x"}) {
      int rc = VerifyOneConfig(name, /*expect_fail=*/false, per_function);
      worst = std::max(worst, rc);
    }
    std::printf("matrix: %s\n", worst == 0 ? "all expectations met" : "FAILURES");
    return worst;
  }
  return VerifyOneConfig(config_name, expect_fail, per_function);
}

}  // namespace
}  // namespace krx

int main(int argc, char** argv) { return krx::Main(argc, argv); }
