#!/bin/sh
# CI driver: builds the default and ASan+UBSan presets, runs the tier-1
# suite, the sanitizer subset, the fault-injection campaigns, the live
# re-randomization (rerand) stage, the perf stage (block-cache equivalence
# tests + parallel bench smoke matrix with the telemetry overhead gate), the
# superblock stage (translate-and-chain engine equivalence, invalidation
# and inline-TLB tests; the TSan preset re-runs them for the concurrent
# invalidation protocol), the telemetry stage (subsystem tests + krx_trace
# export/validate smoke + the
# traced security_eval attack timeline), the supervise stage (watchdog,
# deadline, retry, degradation-ladder and checkpoint/restore tests) with the
# chaos campaign acceptance gate, the fleet stage (multi-tenant CoW sharing
# tests plus the Poisson traffic bench with its dedup-ratio and
# thread-scaling gates), the spec stage (transient-execution subsystem tests
# plus the Spectre-v1 mitigation bench, which fails if a hardened config
# leaks or the unhardened baseline does not), and the static-analysis stage
# (krx_verify over the full config matrix — including spec-barrier and
# spec-mask — proving every image still carries a sufficient dominating
# check, fence, or clamp for each load/store).
# Produces the BENCH_fault.json, BENCH_rerand.json, BENCH_perf.json,
# BENCH_chaos.json, BENCH_fleet.json, BENCH_trace.json, BENCH_spec.json and
# BENCH_attacks_trace.json artifacts.
# The full (non-quick) run re-verifies under the ASan preset and adds a
# ThreadSanitizer preset pass over the telemetry-labelled suites.
#
# Usage: tools/ci.sh [--quick]
#   --quick   skip the ASan and TSan presets (default preset stages only)
set -eu

cd "$(dirname "$0")/.."
QUICK=0
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK=1 ;;
    *) echo "usage: tools/ci.sh [--quick]" >&2; exit 2 ;;
  esac
done

echo "==> configure + build (default preset)"
cmake --preset default
cmake --build --preset default -j

echo "==> tier-1 tests (default preset)"
ctest --preset default -j8

echo "==> fault-injection labels (default preset)"
ctest --test-dir build -L fault --output-on-failure -j4

echo "==> fault campaign artifact (build/BENCH_fault.json)"
./build/bench/fault_campaign --n 500 --json > build/BENCH_fault.json
./build/bench/fault_campaign --n 500 > /dev/null || {
  echo "fault campaign acceptance failed" >&2; exit 1;
}

echo "==> rerand stage: live re-randomization epoch tests"
ctest --test-dir build -L rerand --output-on-failure -j4

echo "==> rerand bench artifact (build/BENCH_rerand.json)"
./build/bench/rerand_epoch --quick --json > build/BENCH_rerand.json

echo "==> perf stage: engine-equivalence tests + bench smoke matrix"
ctest --test-dir build -L perf --output-on-failure -j4
./build/bench/bench_perf --quick --json build/BENCH_perf.json \
    --trace build/BENCH_perf_trace.json || {
  echo "bench_perf smoke matrix failed" >&2; exit 1;
}

echo "==> superblock stage: translate-and-chain engine tests"
ctest --test-dir build -L superblock --output-on-failure -j4

echo "==> telemetry stage: subsystem tests + trace export smoke"
ctest --test-dir build -L telemetry --output-on-failure -j4
./build/tools/krx_trace trace --out build/BENCH_trace.json
./build/tools/krx_trace validate build/BENCH_trace.json || {
  echo "exported chrome trace failed validation" >&2; exit 1;
}
./build/tools/krx_trace validate build/BENCH_perf_trace.json || {
  echo "bench_perf chrome trace failed validation" >&2; exit 1;
}

echo "==> telemetry stage: per-attack timeline (build/BENCH_attacks_trace.json)"
./build/bench/security_eval --trace build/BENCH_attacks_trace.json > /dev/null
./build/tools/krx_trace validate build/BENCH_attacks_trace.json || {
  echo "security_eval chrome trace failed validation" >&2; exit 1;
}

echo "==> spec stage: transient-execution tests + mitigation bench (build/BENCH_spec.json)"
ctest --test-dir build -L spec --output-on-failure -j4
./build/bench/spec_eval --quick --json > build/BENCH_spec.json || {
  echo "spec_eval acceptance failed (hardened config leaked, or sfi-o3 did not)" >&2
  exit 1
}

echo "==> supervise stage: watchdog/retry/health/checkpoint tests"
ctest --test-dir build -L supervise --output-on-failure -j4

echo "==> fleet stage: multi-tenant CoW tests + traffic bench (build/BENCH_fleet.json)"
ctest --test-dir build -L fleet --output-on-failure -j4
./build/bench/fleet --quick --json build/BENCH_fleet.json || {
  echo "fleet bench acceptance failed (request failures, dedup floor, or scaling gate)" >&2
  exit 1
}

echo "==> chaos stage: self-healing campaign (build/BENCH_chaos.json)"
./build/bench/chaos_campaign --quick --json > build/BENCH_chaos.json || {
  echo "chaos campaign acceptance failed" >&2; exit 1;
}

echo "==> static-analysis stage: verifier over the full config matrix"
./build/tools/krx_verify all || {
  echo "static-analysis verification failed (default preset)" >&2; exit 1;
}

if [ "$QUICK" -eq 0 ]; then
  echo "==> configure + build (asan preset)"
  cmake --preset asan
  cmake --build --preset asan -j

  echo "==> sanitize label (asan preset)"
  ctest --preset asan -j8

  echo "==> fault-injection labels (asan preset)"
  ctest --test-dir build-asan -L fault --output-on-failure -j4

  echo "==> rerand labels (asan preset)"
  ctest --test-dir build-asan -L rerand --output-on-failure -j4

  echo "==> telemetry labels (asan preset)"
  ctest --test-dir build-asan -L telemetry --output-on-failure -j4

  echo "==> superblock labels (asan preset)"
  ctest --test-dir build-asan -L superblock --output-on-failure -j4

  echo "==> spec labels (asan preset)"
  ctest --test-dir build-asan -L spec --output-on-failure -j4

  echo "==> supervise labels (asan preset)"
  ctest --test-dir build-asan -L supervise --output-on-failure -j4

  echo "==> fleet labels (asan preset)"
  ctest --test-dir build-asan -L fleet --output-on-failure -j4

  echo "==> static-analysis stage (asan preset)"
  ./build-asan/tools/krx_verify all || {
    echo "static-analysis verification failed (asan preset)" >&2; exit 1;
  }

  echo "==> configure + build (tsan preset)"
  cmake --preset tsan
  cmake --build --preset tsan -j

  echo "==> telemetry + concurrency + superblock labels (tsan preset)"
  ctest --preset tsan -j8
fi

echo "==> CI OK"
