// Quickstart: build a kR^X-hardened kernel from IR, inspect the kR^X-KAS
// layout (paper Figure 1(b)), run a syscall, and watch the R^X enforcement
// stop a code read.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <inttypes.h>

#include "src/attack/disclosure.h"
#include "src/kernel/allocator.h"
#include "src/cpu/cpu.h"
#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"

using namespace krx;

int main() {
  // 1. A kernel "source tree": the shared corpus plus one custom syscall.
  KernelSource source = MakeBaseSource();
  {
    FunctionBuilder b("sys_hello");
    b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));  // range-checked
    b.Emit(Instruction::AddRI(Reg::kRax, 1));
    b.Emit(Instruction::Ret());
    source.functions.push_back(b.Build());
    source.symbols.Intern("sys_hello");
  }

  // 2. Compile with full kR^X protection: SFI range checks (O3),
  //    fine-grained KASLR, return-address encryption, kR^X-KAS layout.
  auto kernel = CompileKernel(std::move(source), {ProtectionConfig::Full(/*with_mpx=*/false, RaScheme::kEncrypt,
                                                     /*seed_value=*/2024), LayoutKind::kKrx});
  if (!kernel.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", kernel.status().ToString().c_str());
    return 1;
  }

  // 3. The kR^X-KAS layout (Figure 1(b)): disjoint data and code regions.
  std::printf("kR^X-KAS layout (code | data split at _krx_edata):\n");
  std::printf("  %-14s %-18s %-10s\n", "section", "address", "size");
  for (const PlacedSection& s : kernel->image->sections()) {
    std::printf("  %-14s 0x%016" PRIx64 " %8" PRIu64 "  [%s]\n", s.name.c_str(), s.vaddr,
                s.size, s.vaddr >= kernel->image->krx_edata() ? "code region" : "data region");
  }
  std::printf("  _krx_edata = 0x%016" PRIx64 "\n\n", kernel->image->krx_edata());
  std::printf("instrumentation: %" PRIu64 " range checks (%" PRIu64 " coalesced away), "
              "%" PRIu64 " xkeys, %" PRIu64 " phantom blocks\n\n",
              kernel->stats.sfi.checks_emitted, kernel->stats.sfi.checks_coalesced,
              kernel->stats.xkeys, kernel->stats.kaslr.phantom_blocks);

  // 4. Boot a CPU, kmalloc a kernel object, and make a "syscall".
  Cpu cpu(kernel->image.get());
  SlabAllocator slab(kernel->image.get());
  auto heap = slab.Kmalloc(64);
  KRX_CHECK(heap.ok());
  KRX_CHECK(kernel->image->Poke64(*heap, 41).ok());
  RunResult r = cpu.CallFunction("sys_hello", {*heap});
  std::printf("sys_hello(&41) -> %" PRIu64 " in %.1f cycles (%" PRIu64 " instructions)\n\n",
              r.rax, r.cycles(), r.instructions);

  // 5. Exploit attempt: leak kernel code through the retrofitted
  //    arbitrary-read bug. The read's range check fires and the machine
  //    halts in krx_handler.
  DisclosureOracle oracle(&cpu);
  const PlacedSection* text = kernel->image->FindSection(".text");
  std::printf("attacker: leaking a data address ... ");
  auto ok_leak = oracle.Leak(*heap);
  std::printf("%s\n", ok_leak.ok() ? "leaked (data is readable)" : "failed");
  std::printf("attacker: leaking kernel .text ...   ");
  auto bad_leak = oracle.Leak(text->vaddr);
  std::printf("%s\n", bad_leak.ok() ? "LEAKED (defense failed!)"
                                    : bad_leak.status().ToString().c_str());
  std::printf("kernel killed by kR^X: %s\n", oracle.kernel_killed() ? "yes" : "no");
  return oracle.kernel_killed() ? 0 : 1;
}
