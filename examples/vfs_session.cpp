// A "user session" against the mini-VFS running on a fully protected
// kernel: open/read/stat/close real files, then watch the same kernel stop
// an exploit that tries to read its own code — all in one process.
//
//   $ ./examples/vfs_session
#include <cstdio>
#include <inttypes.h>

#include "src/attack/disclosure.h"
#include "src/cpu/cpu.h"
#include "src/workload/corpus.h"
#include "src/workload/vfs.h"

using namespace krx;

int main() {
  KernelSource src = MakeBaseSource();
  AddVfs(&src, DefaultVfsImage());
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Full(false, RaScheme::kDecoy, 0xF11E), LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  Cpu cpu(kernel->image.get());
  auto buf = kernel->image->AllocDataPages(1);
  KRX_CHECK(buf.ok());

  auto open = [&](const char* path) -> int64_t {
    VfsPathHashes h = HashPath(path);
    return static_cast<int64_t>(cpu.CallFunction("vfs_open", {h.h1, h.h2, h.h3}).rax);
  };

  std::printf("$ cat /etc/passwd\n");
  int64_t fd = open("etc/passwd");
  RunResult read = cpu.CallFunction("vfs_read", {static_cast<uint64_t>(fd), *buf, 8});
  std::vector<uint8_t> bytes(64);
  KRX_CHECK(kernel->image->PeekBytes(*buf, bytes.data(), bytes.size()).ok());
  std::printf("%.*s", static_cast<int>(8 * read.rax), reinterpret_cast<char*>(bytes.data()));
  cpu.CallFunction("vfs_close", {static_cast<uint64_t>(fd)});

  std::printf("\n$ stat /var/log/dmesg\n");
  fd = open("var/log/dmesg");
  cpu.CallFunction("vfs_fstat", {static_cast<uint64_t>(fd), *buf});
  auto size = kernel->image->Peek64(*buf);
  auto perms = kernel->image->Peek64(*buf + 8);
  std::printf("  size: %" PRIu64 " bytes, mode: %" PRIo64 "\n", *size, *perms);
  cpu.CallFunction("vfs_close", {static_cast<uint64_t>(fd)});

  std::printf("\n$ cat /etc/shadow\n");
  std::printf("  open: %s\n", open("etc/shadow") < 0 ? "No such file" : "?!");

  std::printf("\n$ exploit --leak-kernel-text   (debugfs arbitrary-read bug)\n");
  DisclosureOracle oracle(&cpu);
  const PlacedSection* text = kernel->image->FindSection(".text");
  auto leak = oracle.Leak(text->vaddr);
  std::printf("  %s\n", leak.ok() ? "leaked (?!)" : leak.status().ToString().c_str());
  auto count = kernel->image->symbols().AddressOf("krx_violation_count");
  auto violations = kernel->image->Peek64(*count);
  std::printf("  dmesg | tail -1: BUG: kR^X violation (count=%" PRIu64 "), system halted\n",
              *violations);
  return *violations == 1 ? 0 : 1;
}
