// The full §7.3 attack narrative, one defense layer at a time:
//   1. vanilla kernel           -> direct ROP with precomputed addresses
//   2. + fine-grained KASLR     -> precomputed ROP dies; JIT-ROP still wins
//   3. + R^X (full kR^X)        -> JIT-ROP dies on the first code-page read
//
//   $ ./examples/jitrop_attack
#include <cstdio>

#include "src/attack/experiments.h"
#include "src/workload/harness.h"

using namespace krx;

namespace {

void Banner(const char* title) { std::printf("\n==== %s ====\n", title); }

void Verdict(const AttackOutcome& out) {
  std::printf("  -> %s%s\n     %s (leaks used: %llu)\n",
              out.success ? "PRIVILEGES ESCALATED" : "attack defeated",
              out.kernel_killed ? " [machine halted by kR^X]" : "", out.detail.c_str(),
              static_cast<unsigned long long>(out.leaks));
}

}  // namespace

int main() {
  const uint64_t seed = 0xC4FE;
  KernelSource src = MakeBenchSource(seed);

  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  auto kaslr = CompileKernel(src, {ProtectionConfig::DiversifyOnly(RaScheme::kNone, seed), LayoutKind::kKrx});
  auto krx = CompileKernel(src, {ProtectionConfig::Full(false, RaScheme::kDecoy, seed), LayoutKind::kKrx});
  if (!vanilla.ok() || !kaslr.ok() || !krx.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }

  Banner("stage 1: vanilla kernel vs. precomputed ROP (CVE-2013-2094 style)");
  std::printf("  attacker disassembles the distribution vmlinux offline, picks\n"
              "  'pop %%rdi; ret' + commit_creds, and replays the chain.\n");
  {
    ExploitLab ref(&*vanilla), target(&*vanilla);
    Verdict(DirectRopAttack(ref, target));
  }

  Banner("stage 2: fine-grained KASLR vs. the same precomputed chain");
  std::printf("  function + code-block permutation moved every gadget.\n");
  {
    ExploitLab ref(&*vanilla), target(&*kaslr);
    Verdict(DirectRopAttack(ref, target));
  }

  Banner("stage 3: fine-grained KASLR vs. JIT-ROP (arbitrary read, no R^X)");
  std::printf("  the attacker reads code pages through the debugfs bug,\n"
              "  disassembles them on the fly, and rebuilds the payload.\n");
  {
    ExploitLab target(&*kaslr);
    Verdict(DirectJitRopAttack(target));
  }

  Banner("stage 4: full kR^X vs. JIT-ROP");
  std::printf("  same attack — but now the first read of execute-only memory\n"
              "  trips a range check and control diverts to krx_handler.\n");
  {
    ExploitLab target(&*krx);
    Verdict(DirectJitRopAttack(target));
  }

  Banner("stage 5: full kR^X vs. indirect JIT-ROP (stack harvesting)");
  std::printf("  the attacker harvests return addresses from the kernel stack\n"
              "  instead of reading code; decoys force guessing (Psucc = 1/2^n).\n");
  {
    ExploitLab target(&*krx);
    for (int n : {1, 2, 4}) {
      IndirectJitRopResult r = IndirectJitRopAttack(target, n, 256, seed + n);
      std::printf("  n=%d call-preceded gadgets: success rate %.3f (expected %.3f)\n", n,
                  r.success_rate, 1.0 / (1 << n));
    }
    std::printf("  stepping on a decoy: %s\n",
                DecoyTripwireFires(target) ? "int3 tripwire fired (#BP)" : "no trap (?)");
  }
  return 0;
}
