// Mixed-code module loading under kR^X-KAS (§5.1.1 "Kernel Modules", §6):
// a kR^X-protected module and an unprotected legacy module coexist in the
// same kernel; text is sliced into modules_text, data into modules_data;
// unloading zaps the text and restores the physmap synonyms.
//
//   $ ./examples/module_loading
#include <cstdio>
#include <inttypes.h>

#include "src/cpu/cpu.h"
#include "src/kernel/ko_file.h"
#include "src/ir/builder.h"
#include "src/plugin/pipeline.h"
#include "src/workload/corpus.h"

using namespace krx;

namespace {

std::vector<Function> MakeModuleFunctions(const std::string& prefix, SymbolTable& symbols) {
  std::vector<Function> fns;
  FunctionBuilder b(prefix + "_ioctl");
  b.Emit(Instruction::SubRI(Reg::kRsp, 8));
  b.Emit(Instruction::Load(Reg::kRax, MemOperand::Base(Reg::kRdi, 0)));  // checked if protected
  b.Emit(Instruction::CallSym(symbols.Intern("commit_creds_noop")));
  b.Emit(Instruction::AddRI(Reg::kRax, 2));
  b.Emit(Instruction::AddRI(Reg::kRsp, 8));
  b.Emit(Instruction::Ret());
  fns.push_back(b.Build());
  return fns;
}

}  // namespace

int main() {
  KernelSource source = MakeBaseSource();
  {
    FunctionBuilder b("commit_creds_noop");  // an exported kernel API the modules bind to
    b.Emit(Instruction::MovRI(Reg::kRax, 0));
    b.Emit(Instruction::Ret());
    source.functions.push_back(b.Build());
    source.symbols.Intern("commit_creds_noop");
  }
  auto kernel = CompileKernel(std::move(source), {ProtectionConfig::Full(false, RaScheme::kDecoy, 99), LayoutKind::kKrx});
  KRX_CHECK(kernel.ok());
  KernelImage& image = *kernel->image;
  ModuleLoader loader(&image);

  // --- Module A: compiled with the kR^X plugins (protected). ---
  {
    std::vector<Function> fns = MakeModuleFunctions("moda", image.symbols());
    auto mod = CompileModule("moda", std::move(fns), {}, image.symbols(),
                             ProtectionConfig::Full(false, RaScheme::kDecoy, 7));
    KRX_CHECK(mod.ok());
    auto handle = loader.Load(*mod);
    KRX_CHECK(handle.ok());
    const LoadedModule& lm = loader.module(*handle);
    std::printf("moda (kR^X-protected) loaded:\n");
    std::printf("  .text  -> modules_text 0x%016" PRIx64 " (%" PRIu64 " bytes)\n", lm.text_vaddr,
                lm.text_size);
    std::printf("  .data  -> modules_data 0x%016" PRIx64 "\n", lm.data_vaddr);
    std::printf("  physmap synonym of its text unmapped: %s\n\n",
                image.page_table().Lookup(image.PhysmapVaddr(lm.text_first_frame)) == nullptr
                    ? "yes"
                    : "no");
  }

  // --- Module B: legacy, compiled without instrumentation (mixed code),
  // and shipped through the on-disk .ko path: the image is one conventional
  // blob; the kR^X-aware loader does the text/data slicing at load time
  // (§5.1.1). ---
  int32_t modb_handle;
  {
    SymbolTable vendor;  // built on a machine that has never seen this kernel
    std::vector<Function> fns = MakeModuleFunctions("modb", vendor);
    auto mod = CompileModule("modb", std::move(fns), {}, vendor, ProtectionConfig::Vanilla());
    KRX_CHECK(mod.ok());
    auto ko = SerializeModule(*mod, vendor);
    KRX_CHECK(ko.ok());
    std::printf("modb.ko built: %zu bytes on disk (conventional layout, unsliced)\n", ko->size());
    auto parsed = ParseModule(*ko, image.symbols());
    KRX_CHECK(parsed.ok());
    auto handle = loader.Load(*parsed);
    KRX_CHECK(handle.ok());
    modb_handle = *handle;
    std::printf("modb (unprotected legacy module) loaded alongside — mixed code works.\n\n");
  }

  // Call into both modules.
  Cpu cpu(&image);
  auto buf = image.AllocDataPages(1);
  KRX_CHECK(buf.ok());
  KRX_CHECK(image.Poke64(*buf, 40).ok());
  for (const char* entry : {"moda_ioctl", "modb_ioctl"}) {
    RunResult r = cpu.CallFunction(entry, {*buf});
    std::printf("%s(&40) -> %" PRIu64 " (%s)\n", entry, r.rax,
                r.reason == StopReason::kReturned ? "clean return" : "fault");
  }

  // Unload modb: text zapped, synonym restored, symbols dropped.
  const LoadedModule& lm = loader.module(modb_handle);
  uint64_t frame = lm.text_first_frame;
  KRX_CHECK(loader.Unload(modb_handle).ok());
  auto first_byte = image.phys().Read8(frame << kPageShift);
  std::printf("\nmodb unloaded: text zapped (first byte now int3: %s), synonym restored: %s, "
              "symbol gone: %s\n",
              first_byte == 2 ? "yes" : "no",
              image.page_table().Lookup(image.PhysmapVaddr(frame)) != nullptr ? "yes" : "no",
              image.symbols().AddressOf("modb_ioctl").ok() ? "no" : "yes");
  return 0;
}
