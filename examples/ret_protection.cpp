// Return-address protection close-up (§5.2.2): what the kernel stack looks
// like under no protection, encryption (X), and decoys (D), and what an
// attacker harvesting it can (not) do.
//
//   $ ./examples/ret_protection
#include <cstdio>
#include <inttypes.h>

#include <set>

#include "src/attack/experiments.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

using namespace krx;

namespace {

void DumpStack(const char* title, CompiledKernel& kernel) {
  Cpu cpu(kernel.image.get());
  cpu.CallFunction("sys_deep_call", {0});

  ExploitLab lab(&kernel);
  std::vector<uint64_t> sites_vec = lab.CollectReturnSites();
  std::set<uint64_t> sites(sites_vec.begin(), sites_vec.end());

  std::printf("\n-- %s --\n", title);
  std::printf("stack remnants after a 10-deep call chain (code-pointer-looking slots):\n");
  int shown = 0;
  for (uint64_t a = cpu.stack_top(); a > cpu.stack_base() + 8 && shown < 12; a -= 8) {
    auto v = kernel.image->Peek64(a - 8);
    if (!v.ok() || *v < kKrxCodeBase) {
      continue;
    }
    const char* what = sites.count(*v) != 0 ? "REAL return site"
                       : *v == Cpu::kReturnSentinel ? "harness sentinel"
                                                    : "decoy / ciphertext / other";
    std::printf("  [0x%016" PRIx64 "] = 0x%016" PRIx64 "  %s\n", a - 8, *v, what);
    ++shown;
  }
  if (shown == 0) {
    std::printf("  (no code-region pointers at all — encrypted values look random)\n");
  }
}

}  // namespace

int main() {
  const uint64_t seed = 0xDECAF;
  KernelSource src = MakeBaseSource();

  auto plain = CompileKernel(src, {ProtectionConfig::DiversifyOnly(RaScheme::kNone, seed), LayoutKind::kKrx});
  auto enc = CompileKernel(src, {ProtectionConfig::DiversifyOnly(RaScheme::kEncrypt, seed), LayoutKind::kKrx});
  auto dec = CompileKernel(src, {ProtectionConfig::DiversifyOnly(RaScheme::kDecoy, seed), LayoutKind::kKrx});
  KRX_CHECK(plain.ok() && enc.ok() && dec.ok());

  DumpStack("no RA protection: cleartext return addresses", *plain);
  DumpStack("scheme X (encryption): ciphertexts only", *enc);
  DumpStack("scheme D (decoys): {real, tripwire} pairs", *dec);

  std::printf("\n-- what the attacker can do with the harvest --\n");
  {
    ExploitLab lab(&*plain);
    IndirectJitRopResult r = IndirectJitRopAttack(lab, 2, 128, 1);
    std::printf("no protection: chain of 2 call-preceded gadgets succeeds %.0f%% of the time\n",
                100 * r.success_rate);
  }
  {
    ExploitLab lab(&*enc);
    IndirectJitRopResult r = IndirectJitRopAttack(lab, 1, 128, 1);
    std::printf("encryption:    %.0f%% (%s)\n", 100 * r.success_rate, r.outcome.detail.c_str());
  }
  {
    ExploitLab lab(&*dec);
    for (int n : {1, 2, 3}) {
      IndirectJitRopResult r = IndirectJitRopAttack(lab, n, 512, 7 + n);
      std::printf("decoys, n=%d:   %.1f%% (expected %.1f%%)\n", n, 100 * r.success_rate,
                  100.0 / (1 << n));
    }
    std::printf("wrong guess raises #BP: %s\n", DecoyTripwireFires(lab) ? "yes" : "no");
  }
  return 0;
}
