file(REMOVE_RECURSE
  "CMakeFiles/krx_objdump.dir/krx_objdump.cc.o"
  "CMakeFiles/krx_objdump.dir/krx_objdump.cc.o.d"
  "krx_objdump"
  "krx_objdump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_objdump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
