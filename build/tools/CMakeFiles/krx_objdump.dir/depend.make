# Empty dependencies file for krx_objdump.
# This may be replaced when dependencies are built.
