# Empty dependencies file for reg_rand_test.
# This may be replaced when dependencies are built.
