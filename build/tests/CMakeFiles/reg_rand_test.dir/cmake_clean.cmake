file(REMOVE_RECURSE
  "CMakeFiles/reg_rand_test.dir/reg_rand_test.cc.o"
  "CMakeFiles/reg_rand_test.dir/reg_rand_test.cc.o.d"
  "reg_rand_test"
  "reg_rand_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reg_rand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
