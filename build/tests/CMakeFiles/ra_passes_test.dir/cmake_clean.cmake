file(REMOVE_RECURSE
  "CMakeFiles/ra_passes_test.dir/ra_passes_test.cc.o"
  "CMakeFiles/ra_passes_test.dir/ra_passes_test.cc.o.d"
  "ra_passes_test"
  "ra_passes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_passes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
