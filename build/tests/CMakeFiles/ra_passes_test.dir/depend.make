# Empty dependencies file for ra_passes_test.
# This may be replaced when dependencies are built.
