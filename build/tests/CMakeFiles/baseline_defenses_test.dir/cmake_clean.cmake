file(REMOVE_RECURSE
  "CMakeFiles/baseline_defenses_test.dir/baseline_defenses_test.cc.o"
  "CMakeFiles/baseline_defenses_test.dir/baseline_defenses_test.cc.o.d"
  "baseline_defenses_test"
  "baseline_defenses_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_defenses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
