# Empty compiler generated dependencies file for baseline_defenses_test.
# This may be replaced when dependencies are built.
