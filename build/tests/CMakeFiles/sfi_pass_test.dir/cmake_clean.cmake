file(REMOVE_RECURSE
  "CMakeFiles/sfi_pass_test.dir/sfi_pass_test.cc.o"
  "CMakeFiles/sfi_pass_test.dir/sfi_pass_test.cc.o.d"
  "sfi_pass_test"
  "sfi_pass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfi_pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
