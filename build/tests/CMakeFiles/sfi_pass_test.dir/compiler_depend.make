# Empty compiler generated dependencies file for sfi_pass_test.
# This may be replaced when dependencies are built.
