file(REMOVE_RECURSE
  "CMakeFiles/kernel_link_test.dir/kernel_link_test.cc.o"
  "CMakeFiles/kernel_link_test.dir/kernel_link_test.cc.o.d"
  "kernel_link_test"
  "kernel_link_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
