file(REMOVE_RECURSE
  "CMakeFiles/module_protection_test.dir/module_protection_test.cc.o"
  "CMakeFiles/module_protection_test.dir/module_protection_test.cc.o.d"
  "module_protection_test"
  "module_protection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_protection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
