# Empty dependencies file for module_protection_test.
# This may be replaced when dependencies are built.
