# Empty dependencies file for ko_file_test.
# This may be replaced when dependencies are built.
