file(REMOVE_RECURSE
  "CMakeFiles/ko_file_test.dir/ko_file_test.cc.o"
  "CMakeFiles/ko_file_test.dir/ko_file_test.cc.o.d"
  "ko_file_test"
  "ko_file_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ko_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
