# Empty dependencies file for kaslr_pass_test.
# This may be replaced when dependencies are built.
