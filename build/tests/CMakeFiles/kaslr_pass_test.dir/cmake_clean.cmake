file(REMOVE_RECURSE
  "CMakeFiles/kaslr_pass_test.dir/kaslr_pass_test.cc.o"
  "CMakeFiles/kaslr_pass_test.dir/kaslr_pass_test.cc.o.d"
  "kaslr_pass_test"
  "kaslr_pass_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kaslr_pass_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
