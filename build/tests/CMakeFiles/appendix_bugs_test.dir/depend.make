# Empty dependencies file for appendix_bugs_test.
# This may be replaced when dependencies are built.
