file(REMOVE_RECURSE
  "CMakeFiles/appendix_bugs_test.dir/appendix_bugs_test.cc.o"
  "CMakeFiles/appendix_bugs_test.dir/appendix_bugs_test.cc.o.d"
  "appendix_bugs_test"
  "appendix_bugs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_bugs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
