# Empty dependencies file for ipc_ops.
# This may be replaced when dependencies are built.
