file(REMOVE_RECURSE
  "CMakeFiles/ipc_ops.dir/ipc_ops.cc.o"
  "CMakeFiles/ipc_ops.dir/ipc_ops.cc.o.d"
  "ipc_ops"
  "ipc_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
