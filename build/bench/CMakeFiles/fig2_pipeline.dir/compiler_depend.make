# Empty compiler generated dependencies file for fig2_pipeline.
# This may be replaced when dependencies are built.
