# Empty compiler generated dependencies file for race_window.
# This may be replaced when dependencies are built.
