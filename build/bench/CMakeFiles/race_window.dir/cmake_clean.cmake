file(REMOVE_RECURSE
  "CMakeFiles/race_window.dir/race_window.cc.o"
  "CMakeFiles/race_window.dir/race_window.cc.o.d"
  "race_window"
  "race_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/race_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
