# Empty dependencies file for entropy_stats.
# This may be replaced when dependencies are built.
