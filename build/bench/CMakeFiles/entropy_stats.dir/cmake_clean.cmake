file(REMOVE_RECURSE
  "CMakeFiles/entropy_stats.dir/entropy_stats.cc.o"
  "CMakeFiles/entropy_stats.dir/entropy_stats.cc.o.d"
  "entropy_stats"
  "entropy_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/entropy_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
