# Empty dependencies file for security_eval.
# This may be replaced when dependencies are built.
