file(REMOVE_RECURSE
  "CMakeFiles/security_eval.dir/security_eval.cc.o"
  "CMakeFiles/security_eval.dir/security_eval.cc.o.d"
  "security_eval"
  "security_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
