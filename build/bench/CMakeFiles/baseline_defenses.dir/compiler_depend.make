# Empty compiler generated dependencies file for baseline_defenses.
# This may be replaced when dependencies are built.
