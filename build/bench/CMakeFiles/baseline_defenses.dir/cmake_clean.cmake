file(REMOVE_RECURSE
  "CMakeFiles/baseline_defenses.dir/baseline_defenses.cc.o"
  "CMakeFiles/baseline_defenses.dir/baseline_defenses.cc.o.d"
  "baseline_defenses"
  "baseline_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
