file(REMOVE_RECURSE
  "CMakeFiles/table1_lmbench.dir/table1_lmbench.cc.o"
  "CMakeFiles/table1_lmbench.dir/table1_lmbench.cc.o.d"
  "table1_lmbench"
  "table1_lmbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_lmbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
