# Empty compiler generated dependencies file for table1_lmbench.
# This may be replaced when dependencies are built.
