# Empty dependencies file for ctx_switch.
# This may be replaced when dependencies are built.
