file(REMOVE_RECURSE
  "CMakeFiles/ctx_switch.dir/ctx_switch.cc.o"
  "CMakeFiles/ctx_switch.dir/ctx_switch.cc.o.d"
  "ctx_switch"
  "ctx_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctx_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
