file(REMOVE_RECURSE
  "CMakeFiles/instrumentation_stats.dir/instrumentation_stats.cc.o"
  "CMakeFiles/instrumentation_stats.dir/instrumentation_stats.cc.o.d"
  "instrumentation_stats"
  "instrumentation_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumentation_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
