# Empty compiler generated dependencies file for instrumentation_stats.
# This may be replaced when dependencies are built.
