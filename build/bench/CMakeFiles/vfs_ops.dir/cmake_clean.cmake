file(REMOVE_RECURSE
  "CMakeFiles/vfs_ops.dir/vfs_ops.cc.o"
  "CMakeFiles/vfs_ops.dir/vfs_ops.cc.o.d"
  "vfs_ops"
  "vfs_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
