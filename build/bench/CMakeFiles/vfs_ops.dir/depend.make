# Empty dependencies file for vfs_ops.
# This may be replaced when dependencies are built.
