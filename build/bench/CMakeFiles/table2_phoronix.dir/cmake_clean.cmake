file(REMOVE_RECURSE
  "CMakeFiles/table2_phoronix.dir/table2_phoronix.cc.o"
  "CMakeFiles/table2_phoronix.dir/table2_phoronix.cc.o.d"
  "table2_phoronix"
  "table2_phoronix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_phoronix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
