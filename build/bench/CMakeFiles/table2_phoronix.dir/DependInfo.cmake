
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_phoronix.cc" "bench/CMakeFiles/table2_phoronix.dir/table2_phoronix.cc.o" "gcc" "bench/CMakeFiles/table2_phoronix.dir/table2_phoronix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/krx_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/krx_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/plugin/CMakeFiles/krx_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/krx_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/krx_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/krx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/krx_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/krx_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/krx_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
