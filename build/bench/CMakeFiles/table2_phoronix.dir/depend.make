# Empty dependencies file for table2_phoronix.
# This may be replaced when dependencies are built.
