# Empty dependencies file for overhead_breakdown.
# This may be replaced when dependencies are built.
