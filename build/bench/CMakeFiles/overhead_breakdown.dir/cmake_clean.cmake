file(REMOVE_RECURSE
  "CMakeFiles/overhead_breakdown.dir/overhead_breakdown.cc.o"
  "CMakeFiles/overhead_breakdown.dir/overhead_breakdown.cc.o.d"
  "overhead_breakdown"
  "overhead_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
