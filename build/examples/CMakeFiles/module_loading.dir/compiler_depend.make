# Empty compiler generated dependencies file for module_loading.
# This may be replaced when dependencies are built.
