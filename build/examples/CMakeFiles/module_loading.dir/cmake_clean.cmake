file(REMOVE_RECURSE
  "CMakeFiles/module_loading.dir/module_loading.cpp.o"
  "CMakeFiles/module_loading.dir/module_loading.cpp.o.d"
  "module_loading"
  "module_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
