# Empty dependencies file for jitrop_attack.
# This may be replaced when dependencies are built.
