file(REMOVE_RECURSE
  "CMakeFiles/jitrop_attack.dir/jitrop_attack.cpp.o"
  "CMakeFiles/jitrop_attack.dir/jitrop_attack.cpp.o.d"
  "jitrop_attack"
  "jitrop_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jitrop_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
