# Empty dependencies file for vfs_session.
# This may be replaced when dependencies are built.
