file(REMOVE_RECURSE
  "CMakeFiles/vfs_session.dir/vfs_session.cpp.o"
  "CMakeFiles/vfs_session.dir/vfs_session.cpp.o.d"
  "vfs_session"
  "vfs_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
