# Empty compiler generated dependencies file for vfs_session.
# This may be replaced when dependencies are built.
