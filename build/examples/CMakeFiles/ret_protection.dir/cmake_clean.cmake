file(REMOVE_RECURSE
  "CMakeFiles/ret_protection.dir/ret_protection.cpp.o"
  "CMakeFiles/ret_protection.dir/ret_protection.cpp.o.d"
  "ret_protection"
  "ret_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ret_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
