# Empty compiler generated dependencies file for ret_protection.
# This may be replaced when dependencies are built.
