# Empty compiler generated dependencies file for krx_isa.
# This may be replaced when dependencies are built.
