file(REMOVE_RECURSE
  "libkrx_isa.a"
)
