file(REMOVE_RECURSE
  "CMakeFiles/krx_isa.dir/encoding.cc.o"
  "CMakeFiles/krx_isa.dir/encoding.cc.o.d"
  "CMakeFiles/krx_isa.dir/instruction.cc.o"
  "CMakeFiles/krx_isa.dir/instruction.cc.o.d"
  "CMakeFiles/krx_isa.dir/opcode.cc.o"
  "CMakeFiles/krx_isa.dir/opcode.cc.o.d"
  "CMakeFiles/krx_isa.dir/register.cc.o"
  "CMakeFiles/krx_isa.dir/register.cc.o.d"
  "libkrx_isa.a"
  "libkrx_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
