
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/function.cc" "src/ir/CMakeFiles/krx_ir.dir/function.cc.o" "gcc" "src/ir/CMakeFiles/krx_ir.dir/function.cc.o.d"
  "/root/repo/src/ir/liveness.cc" "src/ir/CMakeFiles/krx_ir.dir/liveness.cc.o" "gcc" "src/ir/CMakeFiles/krx_ir.dir/liveness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/krx_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/krx_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
