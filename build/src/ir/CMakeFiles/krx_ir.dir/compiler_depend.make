# Empty compiler generated dependencies file for krx_ir.
# This may be replaced when dependencies are built.
