file(REMOVE_RECURSE
  "CMakeFiles/krx_ir.dir/function.cc.o"
  "CMakeFiles/krx_ir.dir/function.cc.o.d"
  "CMakeFiles/krx_ir.dir/liveness.cc.o"
  "CMakeFiles/krx_ir.dir/liveness.cc.o.d"
  "libkrx_ir.a"
  "libkrx_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
