file(REMOVE_RECURSE
  "libkrx_ir.a"
)
