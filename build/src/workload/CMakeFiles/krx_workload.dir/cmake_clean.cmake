file(REMOVE_RECURSE
  "CMakeFiles/krx_workload.dir/corpus.cc.o"
  "CMakeFiles/krx_workload.dir/corpus.cc.o.d"
  "CMakeFiles/krx_workload.dir/fig2.cc.o"
  "CMakeFiles/krx_workload.dir/fig2.cc.o.d"
  "CMakeFiles/krx_workload.dir/harness.cc.o"
  "CMakeFiles/krx_workload.dir/harness.cc.o.d"
  "CMakeFiles/krx_workload.dir/ipc.cc.o"
  "CMakeFiles/krx_workload.dir/ipc.cc.o.d"
  "CMakeFiles/krx_workload.dir/lmbench.cc.o"
  "CMakeFiles/krx_workload.dir/lmbench.cc.o.d"
  "CMakeFiles/krx_workload.dir/ops.cc.o"
  "CMakeFiles/krx_workload.dir/ops.cc.o.d"
  "CMakeFiles/krx_workload.dir/phoronix.cc.o"
  "CMakeFiles/krx_workload.dir/phoronix.cc.o.d"
  "CMakeFiles/krx_workload.dir/sched.cc.o"
  "CMakeFiles/krx_workload.dir/sched.cc.o.d"
  "CMakeFiles/krx_workload.dir/vfs.cc.o"
  "CMakeFiles/krx_workload.dir/vfs.cc.o.d"
  "libkrx_workload.a"
  "libkrx_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
