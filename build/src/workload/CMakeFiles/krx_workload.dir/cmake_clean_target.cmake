file(REMOVE_RECURSE
  "libkrx_workload.a"
)
