# Empty dependencies file for krx_workload.
# This may be replaced when dependencies are built.
