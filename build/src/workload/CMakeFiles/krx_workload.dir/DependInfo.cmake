
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/corpus.cc" "src/workload/CMakeFiles/krx_workload.dir/corpus.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/corpus.cc.o.d"
  "/root/repo/src/workload/fig2.cc" "src/workload/CMakeFiles/krx_workload.dir/fig2.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/fig2.cc.o.d"
  "/root/repo/src/workload/harness.cc" "src/workload/CMakeFiles/krx_workload.dir/harness.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/harness.cc.o.d"
  "/root/repo/src/workload/ipc.cc" "src/workload/CMakeFiles/krx_workload.dir/ipc.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/ipc.cc.o.d"
  "/root/repo/src/workload/lmbench.cc" "src/workload/CMakeFiles/krx_workload.dir/lmbench.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/lmbench.cc.o.d"
  "/root/repo/src/workload/ops.cc" "src/workload/CMakeFiles/krx_workload.dir/ops.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/ops.cc.o.d"
  "/root/repo/src/workload/phoronix.cc" "src/workload/CMakeFiles/krx_workload.dir/phoronix.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/phoronix.cc.o.d"
  "/root/repo/src/workload/sched.cc" "src/workload/CMakeFiles/krx_workload.dir/sched.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/sched.cc.o.d"
  "/root/repo/src/workload/vfs.cc" "src/workload/CMakeFiles/krx_workload.dir/vfs.cc.o" "gcc" "src/workload/CMakeFiles/krx_workload.dir/vfs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plugin/CMakeFiles/krx_plugin.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/krx_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/krx_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/krx_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/krx_base.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/krx_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/krx_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
