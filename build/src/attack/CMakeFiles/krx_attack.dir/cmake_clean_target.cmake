file(REMOVE_RECURSE
  "libkrx_attack.a"
)
