# Empty compiler generated dependencies file for krx_attack.
# This may be replaced when dependencies are built.
