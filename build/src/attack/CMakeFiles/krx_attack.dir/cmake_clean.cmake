file(REMOVE_RECURSE
  "CMakeFiles/krx_attack.dir/disclosure.cc.o"
  "CMakeFiles/krx_attack.dir/disclosure.cc.o.d"
  "CMakeFiles/krx_attack.dir/experiments.cc.o"
  "CMakeFiles/krx_attack.dir/experiments.cc.o.d"
  "CMakeFiles/krx_attack.dir/gadget_scanner.cc.o"
  "CMakeFiles/krx_attack.dir/gadget_scanner.cc.o.d"
  "libkrx_attack.a"
  "libkrx_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
