file(REMOVE_RECURSE
  "libkrx_kernel.a"
)
