
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/allocator.cc" "src/kernel/CMakeFiles/krx_kernel.dir/allocator.cc.o" "gcc" "src/kernel/CMakeFiles/krx_kernel.dir/allocator.cc.o.d"
  "/root/repo/src/kernel/appendix_bugs.cc" "src/kernel/CMakeFiles/krx_kernel.dir/appendix_bugs.cc.o" "gcc" "src/kernel/CMakeFiles/krx_kernel.dir/appendix_bugs.cc.o.d"
  "/root/repo/src/kernel/assembler.cc" "src/kernel/CMakeFiles/krx_kernel.dir/assembler.cc.o" "gcc" "src/kernel/CMakeFiles/krx_kernel.dir/assembler.cc.o.d"
  "/root/repo/src/kernel/baseline_defenses.cc" "src/kernel/CMakeFiles/krx_kernel.dir/baseline_defenses.cc.o" "gcc" "src/kernel/CMakeFiles/krx_kernel.dir/baseline_defenses.cc.o.d"
  "/root/repo/src/kernel/image.cc" "src/kernel/CMakeFiles/krx_kernel.dir/image.cc.o" "gcc" "src/kernel/CMakeFiles/krx_kernel.dir/image.cc.o.d"
  "/root/repo/src/kernel/ko_file.cc" "src/kernel/CMakeFiles/krx_kernel.dir/ko_file.cc.o" "gcc" "src/kernel/CMakeFiles/krx_kernel.dir/ko_file.cc.o.d"
  "/root/repo/src/kernel/module_loader.cc" "src/kernel/CMakeFiles/krx_kernel.dir/module_loader.cc.o" "gcc" "src/kernel/CMakeFiles/krx_kernel.dir/module_loader.cc.o.d"
  "/root/repo/src/kernel/object.cc" "src/kernel/CMakeFiles/krx_kernel.dir/object.cc.o" "gcc" "src/kernel/CMakeFiles/krx_kernel.dir/object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/krx_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/krx_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/krx_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/krx_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
