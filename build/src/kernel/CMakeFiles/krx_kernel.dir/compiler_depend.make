# Empty compiler generated dependencies file for krx_kernel.
# This may be replaced when dependencies are built.
