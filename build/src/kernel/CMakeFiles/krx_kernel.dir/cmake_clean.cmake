file(REMOVE_RECURSE
  "CMakeFiles/krx_kernel.dir/allocator.cc.o"
  "CMakeFiles/krx_kernel.dir/allocator.cc.o.d"
  "CMakeFiles/krx_kernel.dir/appendix_bugs.cc.o"
  "CMakeFiles/krx_kernel.dir/appendix_bugs.cc.o.d"
  "CMakeFiles/krx_kernel.dir/assembler.cc.o"
  "CMakeFiles/krx_kernel.dir/assembler.cc.o.d"
  "CMakeFiles/krx_kernel.dir/baseline_defenses.cc.o"
  "CMakeFiles/krx_kernel.dir/baseline_defenses.cc.o.d"
  "CMakeFiles/krx_kernel.dir/image.cc.o"
  "CMakeFiles/krx_kernel.dir/image.cc.o.d"
  "CMakeFiles/krx_kernel.dir/ko_file.cc.o"
  "CMakeFiles/krx_kernel.dir/ko_file.cc.o.d"
  "CMakeFiles/krx_kernel.dir/module_loader.cc.o"
  "CMakeFiles/krx_kernel.dir/module_loader.cc.o.d"
  "CMakeFiles/krx_kernel.dir/object.cc.o"
  "CMakeFiles/krx_kernel.dir/object.cc.o.d"
  "libkrx_kernel.a"
  "libkrx_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
