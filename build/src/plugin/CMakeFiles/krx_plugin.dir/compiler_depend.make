# Empty compiler generated dependencies file for krx_plugin.
# This may be replaced when dependencies are built.
