file(REMOVE_RECURSE
  "CMakeFiles/krx_plugin.dir/kaslr_pass.cc.o"
  "CMakeFiles/krx_plugin.dir/kaslr_pass.cc.o.d"
  "CMakeFiles/krx_plugin.dir/pipeline.cc.o"
  "CMakeFiles/krx_plugin.dir/pipeline.cc.o.d"
  "CMakeFiles/krx_plugin.dir/ra_decoy_pass.cc.o"
  "CMakeFiles/krx_plugin.dir/ra_decoy_pass.cc.o.d"
  "CMakeFiles/krx_plugin.dir/ra_encrypt_pass.cc.o"
  "CMakeFiles/krx_plugin.dir/ra_encrypt_pass.cc.o.d"
  "CMakeFiles/krx_plugin.dir/reg_rand_pass.cc.o"
  "CMakeFiles/krx_plugin.dir/reg_rand_pass.cc.o.d"
  "CMakeFiles/krx_plugin.dir/sfi_pass.cc.o"
  "CMakeFiles/krx_plugin.dir/sfi_pass.cc.o.d"
  "libkrx_plugin.a"
  "libkrx_plugin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_plugin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
