
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plugin/kaslr_pass.cc" "src/plugin/CMakeFiles/krx_plugin.dir/kaslr_pass.cc.o" "gcc" "src/plugin/CMakeFiles/krx_plugin.dir/kaslr_pass.cc.o.d"
  "/root/repo/src/plugin/pipeline.cc" "src/plugin/CMakeFiles/krx_plugin.dir/pipeline.cc.o" "gcc" "src/plugin/CMakeFiles/krx_plugin.dir/pipeline.cc.o.d"
  "/root/repo/src/plugin/ra_decoy_pass.cc" "src/plugin/CMakeFiles/krx_plugin.dir/ra_decoy_pass.cc.o" "gcc" "src/plugin/CMakeFiles/krx_plugin.dir/ra_decoy_pass.cc.o.d"
  "/root/repo/src/plugin/ra_encrypt_pass.cc" "src/plugin/CMakeFiles/krx_plugin.dir/ra_encrypt_pass.cc.o" "gcc" "src/plugin/CMakeFiles/krx_plugin.dir/ra_encrypt_pass.cc.o.d"
  "/root/repo/src/plugin/reg_rand_pass.cc" "src/plugin/CMakeFiles/krx_plugin.dir/reg_rand_pass.cc.o" "gcc" "src/plugin/CMakeFiles/krx_plugin.dir/reg_rand_pass.cc.o.d"
  "/root/repo/src/plugin/sfi_pass.cc" "src/plugin/CMakeFiles/krx_plugin.dir/sfi_pass.cc.o" "gcc" "src/plugin/CMakeFiles/krx_plugin.dir/sfi_pass.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/krx_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/krx_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/krx_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/krx_base.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/krx_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
