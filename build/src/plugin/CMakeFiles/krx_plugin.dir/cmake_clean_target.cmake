file(REMOVE_RECURSE
  "libkrx_plugin.a"
)
