file(REMOVE_RECURSE
  "CMakeFiles/krx_cpu.dir/cost_model.cc.o"
  "CMakeFiles/krx_cpu.dir/cost_model.cc.o.d"
  "CMakeFiles/krx_cpu.dir/cpu.cc.o"
  "CMakeFiles/krx_cpu.dir/cpu.cc.o.d"
  "libkrx_cpu.a"
  "libkrx_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
