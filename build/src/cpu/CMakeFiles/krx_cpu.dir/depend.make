# Empty dependencies file for krx_cpu.
# This may be replaced when dependencies are built.
