file(REMOVE_RECURSE
  "libkrx_cpu.a"
)
