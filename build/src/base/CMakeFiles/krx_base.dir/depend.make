# Empty dependencies file for krx_base.
# This may be replaced when dependencies are built.
