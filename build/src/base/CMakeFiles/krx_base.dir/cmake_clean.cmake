file(REMOVE_RECURSE
  "CMakeFiles/krx_base.dir/rng.cc.o"
  "CMakeFiles/krx_base.dir/rng.cc.o.d"
  "CMakeFiles/krx_base.dir/status.cc.o"
  "CMakeFiles/krx_base.dir/status.cc.o.d"
  "libkrx_base.a"
  "libkrx_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
