file(REMOVE_RECURSE
  "libkrx_base.a"
)
