# Empty compiler generated dependencies file for krx_mem.
# This may be replaced when dependencies are built.
