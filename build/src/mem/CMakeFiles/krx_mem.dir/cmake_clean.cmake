file(REMOVE_RECURSE
  "CMakeFiles/krx_mem.dir/mmu.cc.o"
  "CMakeFiles/krx_mem.dir/mmu.cc.o.d"
  "CMakeFiles/krx_mem.dir/phys_mem.cc.o"
  "CMakeFiles/krx_mem.dir/phys_mem.cc.o.d"
  "libkrx_mem.a"
  "libkrx_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/krx_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
