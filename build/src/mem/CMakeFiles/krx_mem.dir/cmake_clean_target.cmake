file(REMOVE_RECURSE
  "libkrx_mem.a"
)
