// End-to-end pipeline checks: compile the bench corpus under every
// protection column, run kernel ops, and verify semantic transparency and
// R^X enforcement.
#include <gtest/gtest.h>

#include "src/attack/experiments.h"
#include "src/workload/corpus.h"
#include "src/workload/harness.h"

namespace krx {
namespace {

TEST(Integration, VanillaKernelRunsOps) {
  KernelSource src = MakeBenchSource(1);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  auto rows = MeasureAllRows(*kernel);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), LmbenchRows().size());
  for (const auto& m : *rows) {
    EXPECT_GT(m.instructions, 0u) << m.row;
  }
}

class ColumnTest : public ::testing::TestWithParam<int> {};

TEST_P(ColumnTest, SemanticTransparencyAndCleanRuns) {
  const uint64_t seed = 42;
  KernelSource src = MakeBenchSource(seed);
  auto vanilla = CompileKernel(src, {ProtectionConfig::Vanilla(), LayoutKind::kVanilla});
  ASSERT_TRUE(vanilla.ok()) << vanilla.status().ToString();
  auto base = MeasureAllRows(*vanilla);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  Column col = Table1Columns(seed)[static_cast<size_t>(GetParam())];
  auto kernel = CompileKernel(src, {col.config, col.layout});
  ASSERT_TRUE(kernel.ok()) << col.name << ": " << kernel.status().ToString();
  auto rows = MeasureAllRows(*kernel);
  ASSERT_TRUE(rows.ok()) << col.name << ": " << rows.status().ToString();
  for (size_t i = 0; i < rows->size(); ++i) {
    EXPECT_EQ((*rows)[i].rax, (*base)[i].rax) << col.name << " diverged on " << (*rows)[i].row;
    EXPECT_GE((*rows)[i].deci_cycles, (*base)[i].deci_cycles)
        << col.name << " cheaper than vanilla on " << (*rows)[i].row;
  }
}

INSTANTIATE_TEST_SUITE_P(AllColumns, ColumnTest,
                         ::testing::Range(0, static_cast<int>(kNumTable1Columns)),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           std::string n = kTable1ColumnNames[param_info.param];
                           for (char& c : n) {
                             if (!isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(Integration, RangeCheckStopsCodeRead) {
  KernelSource src = MakeBenchSource(7);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::Full(false, RaScheme::kEncrypt, 7), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  ExploitLab lab(&*kernel);
  DisclosureOracle oracle(&lab.cpu());

  // Reading data is fine.
  auto cred = kernel->image->symbols().AddressOf(kCurrentCredName);
  ASSERT_TRUE(cred.ok());
  auto data_leak = oracle.Leak(*cred);
  EXPECT_TRUE(data_leak.ok()) << data_leak.status().ToString();
  EXPECT_EQ(*data_leak, kUnprivilegedCred);

  // Reading code halts the machine.
  auto text = kernel->image->FindSection(".text");
  ASSERT_NE(text, nullptr);
  auto code_leak = oracle.Leak(text->vaddr);
  EXPECT_FALSE(code_leak.ok());
  EXPECT_TRUE(oracle.kernel_killed());
}

TEST(Integration, ViolationHandlerLogsAndCounts) {
  // §5.1.2: "our default handler appends a warning message to the kernel
  // log and halts the system".
  KernelSource src = MakeBenchSource(11);
  auto kernel = CompileKernel(std::move(src), {ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok());
  auto count_addr = kernel->image->symbols().AddressOf("krx_violation_count");
  auto log_addr = kernel->image->symbols().AddressOf("kernel_log");
  ASSERT_TRUE(count_addr.ok() && log_addr.ok());
  auto before = kernel->image->Peek64(*count_addr);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(*before, 0u);

  ExploitLab lab(&*kernel);
  DisclosureOracle oracle(&lab.cpu());
  const PlacedSection* text = kernel->image->FindSection(".text");
  EXPECT_FALSE(oracle.Leak(text->vaddr).ok());

  auto after = kernel->image->Peek64(*count_addr);
  auto log = kernel->image->Peek64(*log_addr);
  ASSERT_TRUE(after.ok() && log.ok());
  EXPECT_EQ(*after, 1u);
  EXPECT_EQ(*log, 0x6b52585f42554721u);  // the warning marker
}

TEST(Integration, OverheadOrderingHolds) {
  // The monotone structure Table 1 rests on: O0 >= O1 >= O2 >= O3 >= MPX
  // in total kernel-op cycles.
  KernelSource src = MakeBenchSource(13);
  auto cycles_for = [&](ProtectionConfig config, LayoutKind layout) {
    auto kernel = CompileKernel(src, {config, layout});
    KRX_CHECK(kernel.ok());
    auto rows = MeasureAllRows(*kernel);
    KRX_CHECK(rows.ok());
    uint64_t total = 0;
    for (const auto& m : *rows) {
      total += m.deci_cycles;
    }
    return total;
  };
  uint64_t vanilla = cycles_for(ProtectionConfig::Vanilla(), LayoutKind::kVanilla);
  uint64_t o0 = cycles_for(ProtectionConfig::SfiOnly(SfiLevel::kO0), LayoutKind::kKrx);
  uint64_t o1 = cycles_for(ProtectionConfig::SfiOnly(SfiLevel::kO1), LayoutKind::kKrx);
  uint64_t o2 = cycles_for(ProtectionConfig::SfiOnly(SfiLevel::kO2), LayoutKind::kKrx);
  uint64_t o3 = cycles_for(ProtectionConfig::SfiOnly(SfiLevel::kO3), LayoutKind::kKrx);
  uint64_t mpx = cycles_for(ProtectionConfig::MpxOnly(), LayoutKind::kKrx);
  EXPECT_GT(o0, o1);
  EXPECT_GE(o1, o2);
  EXPECT_GE(o2, o3);
  EXPECT_GT(o3, mpx);
  EXPECT_GT(mpx, vanilla);
}

TEST(Integration, MpxStopsCodeReadWithBoundRange) {
  KernelSource src = MakeBenchSource(9);
  auto kernel =
      CompileKernel(std::move(src), {ProtectionConfig::MpxOnly(), LayoutKind::kKrx});
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  CpuOptions copts;
  copts.mpx_enabled = true;
  Cpu cpu(kernel->image.get(), CostModel(), copts);
  auto leak = kernel->image->symbols().AddressOf(kLeakSymbolName);
  ASSERT_TRUE(leak.ok());
  auto text = kernel->image->FindSection(".text");
  ASSERT_NE(text, nullptr);
  RunResult r = cpu.CallFunction(*leak, {text->vaddr});
  EXPECT_EQ(r.reason, StopReason::kException);
  EXPECT_EQ(r.exception, ExceptionKind::kBoundRange);
}

}  // namespace
}  // namespace krx
